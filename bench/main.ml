(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via Aging_core.Experiments) and, with the [micro] command,
   runs Bechamel microbenchmarks of the core kernels.

   Every scenario runs inside a recorded telemetry span, and the harness
   writes a machine-readable BENCH.json (per-scenario wall time plus the
   process counters accumulated over the run), then re-reads the file to
   check it parses and names every scenario it was asked to run.

   Usage:
     bench/main.exe                 run all figure reproductions (full mode)
     bench/main.exe --quick         reduced design set / image size
     bench/main.exe fig1 fig5a ...  run selected experiments
     bench/main.exe smoke           tiny-grid smoke scenario (seconds, no cache)
     bench/main.exe scaling         jobs=1 vs jobs=N characterization scaling
     bench/main.exe serve           service round-trip throughput (queries/sec)
     bench/main.exe surrogate       surrogate vs full-sweep characterization
                                    (gates speedup and predicted-point error)
     bench/main.exe micro           Bechamel microbenchmarks only
     bench/main.exe --jobs N        worker domains for scaling (default: auto)
     bench/main.exe --bench-out F   write the report to F (default BENCH.json)
     bench/main.exe --ledger DIR    append one run-ledger record per scenario
                                    (inspect with `relaware obs`)
*)

module Experiments = Aging_core.Experiments
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Json = Aging_obs.Json
module Run_ledger = Aging_obs.Run_ledger
module Runtime = Aging_obs.Runtime

(* Per-scenario runtime story: RSS peak plus the GC work the scenario
   performed (deltas of the cumulative [Runtime.totals] counters), merged
   into the BENCH.json scenario rows next to "seconds". *)
let scenario_runtime : (string, (string * Json.t) list) Hashtbl.t =
  Hashtbl.create 8

let runtime_fields ~(before : Runtime.totals) ~(after : Runtime.totals) =
  let opt name v = Option.map (fun x -> (name, Json.of_float x)) v in
  List.filter_map Fun.id
    [
      opt "peak_rss_mb" after.Runtime.hwm_mb;
      opt "rss_mb" after.Runtime.rss_mb;
      Some
        ( "minor_words",
          Json.of_float (after.Runtime.minor_words -. before.Runtime.minor_words) );
      Some
        ( "promoted_words",
          Json.of_float
            (after.Runtime.promoted_words -. before.Runtime.promoted_words) );
      Some
        ( "major_collections",
          Json.Int
            (after.Runtime.major_collections - before.Runtime.major_collections)
        );
      Some ("heap_mb", Json.of_float after.Runtime.heap_mb);
    ]

let all_figures =
  [ "fig1"; "fig2"; "fig3"; "fig5a"; "fig5b"; "fig5c"; "fig6a"; "fig6b";
    "fig6c"; "fig7"; "libgen"; "ablate-backend"; "ablate-slew"; "ablate-topk" ]

let run_experiment t name =
  let report =
    match name with
    | "fig1" -> Experiments.fig1 t
    | "fig2" -> Experiments.fig2 t
    | "fig3" -> Experiments.fig3 t
    | "fig5a" -> Experiments.fig5a t
    | "fig5b" -> Experiments.fig5b t
    | "fig5c" -> Experiments.fig5c t
    | "fig6a" -> Experiments.fig6a t
    | "fig6b" -> Experiments.fig6b t
    | "fig6c" -> Experiments.fig6c t
    | "fig7" -> Experiments.fig7 t ()
    | "libgen" -> Experiments.libgen t ()
    | "hold" -> Experiments.hold_check t
    | "ablate-backend" -> Experiments.ablate_backend t
    | "ablate-slew" -> Experiments.ablate_slew t
    | "ablate-topk" -> Experiments.ablate_topk t
    | other -> failwith ("unknown experiment " ^ other)
  in
  print_string report;
  print_newline ()

(* ------------------------- smoke scenario ------------------------- *)

(* A few seconds end to end: characterize the cells of a 4-bit counter on
   the coarse 3x3 grid (fresh corner, no cache directory touched) and run
   one STA pass over it.  Exercises engine, characterization and STA
   counters so the emitted BENCH.json has real content. *)
let smoke () =
  let design = Aging_designs.Designs.counter ~bits:4 in
  let names = Hashtbl.create 8 in
  Array.iter
    (fun (inst : Aging_netlist.Netlist.instance) ->
      Hashtbl.replace names
        (Aging_netlist.Netlist.base_cell_name inst.Aging_netlist.Netlist.cell_name)
        ())
    design.Aging_netlist.Netlist.instances;
  let cells =
    Hashtbl.fold
      (fun name () acc -> Aging_cells.Catalog.find_exn name :: acc)
      names []
  in
  let library =
    Aging_liberty.Characterize.fresh_library ~cells
      ~axes:Aging_liberty.Axes.coarse ()
  in
  let analysis = Aging_sta.Timing.analyze ~library design in
  let min_period = Aging_sta.Timing.min_period analysis in
  (* Noted QoR lands in this scenario's ledger record (if --ledger is on);
     without a ledger the accumulator is simply never drained. *)
  Run_ledger.note_qor "smoke.min_period_ps" (min_period *. 1e12);
  Printf.printf "smoke: counter4, %d cells, min period %.3e s\n%!"
    (List.length cells) min_period

(* ------------------------- kernel scenario ------------------------- *)

(* Raw transient-kernel throughput: characterize a small cell set over the
   paper's 7x7 grid (sequential, no cache) and report per-point throughput
   plus the solver effort per point/step.  The QoR rows make `obs diff`
   gate both speed (points/s) and solver effort (Jacobian refreshes and
   Newton iterations), so a kernel regression that trades one for the
   other is caught either way. *)
let kernel () =
  let cells =
    List.map Aging_cells.Catalog.find_exn [ "INV_X1"; "NAND2_X1"; "NOR2_X1" ]
  in
  let scenario =
    Aging_physics.Scenario.scenario Aging_physics.Scenario.worst_case
  in
  let counter name =
    Option.value (Metrics.value_by_name name) ~default:0.
  in
  let steps0 = counter "engine.steps" in
  let jac0 = counter "engine.jacobian_refreshes" in
  let newton0 = counter "engine.newton_iterations" in
  let t0 = Span.elapsed () in
  let _lib, report =
    Aging_liberty.Characterize.library_report ~cells
      ~axes:Aging_liberty.Axes.paper ~name:"kernel" ~scenario ()
  in
  let wall = Span.elapsed () -. t0 in
  let totals = Aging_liberty.Characterize.report_totals report in
  let points = float_of_int totals.Aging_liberty.Characterize.points in
  let steps = counter "engine.steps" -. steps0 in
  let jacs = counter "engine.jacobian_refreshes" -. jac0 in
  let newtons = counter "engine.newton_iterations" -. newton0 in
  let per base v = if base > 0. then v /. base else 0. in
  Run_ledger.note_qor "engine.points_per_s" (per wall points);
  Run_ledger.note_qor "engine.steps_per_point" (per points steps);
  Run_ledger.note_qor "engine.jacobian_refreshes_per_point" (per points jacs);
  Run_ledger.note_qor "engine.newton_iters_per_step" (per steps newtons);
  Printf.printf
    "kernel: %d points in %.2f s (%.0f points/s); per point %.1f steps, %.2f \
     Jacobians; %.2f Newton iters/step\n\
     %!"
    totals.Aging_liberty.Characterize.points wall (per wall points)
    (per points steps) (per points jacs) (per steps newtons)

(* ------------------------- scaling scenario ------------------------- *)

(* The same small characterization run at jobs=1 and jobs=N: the two
   libraries must be entry-for-entry identical (the pool's determinism
   guarantee) and both wall times land in BENCH.json, so the recorded
   scenario seconds capture the parallel speedup. *)
let scaling_build ~jobs =
  let cells =
    List.map Aging_cells.Catalog.find_exn
      [ "INV_X1"; "NAND2_X1"; "NOR2_X1"; "BUF_X1" ]
  in
  let scenario =
    Aging_physics.Scenario.scenario Aging_physics.Scenario.worst_case
  in
  Aging_liberty.Characterize.library ~jobs ~cells
    ~axes:Aging_liberty.Axes.coarse ~name:"scaling" ~scenario ()

(* Entry equality field by field: [Library.entry] holds the catalog
   [Cell.t] (which contains closures, so whole-entry [=] would raise);
   the characterized payload — names, arcs with their NLDM tables, pin
   caps, setup times — is all plain data. *)
let libraries_equal a b =
  let module L = Aging_liberty.Library in
  List.length (L.entries a) = List.length (L.entries b)
  && List.for_all2
       (fun (ea : L.entry) (eb : L.entry) ->
         ea.L.indexed_name = eb.L.indexed_name
         && ea.L.setup_time = eb.L.setup_time
         && ea.L.pin_caps = eb.L.pin_caps
         && ea.L.arcs = eb.L.arcs)
       (L.entries a) (L.entries b)

let scaling ~jobs ~scenario =
  let seq = ref None and par = ref None in
  let t0 = Span.elapsed () in
  scenario "scaling-jobs1" (fun () -> seq := Some (scaling_build ~jobs:1));
  let t1 = Span.elapsed () in
  scenario "scaling-jobsN" (fun () -> par := Some (scaling_build ~jobs));
  let t2 = Span.elapsed () in
  match (!seq, !par) with
  | Some a, Some b when libraries_equal a b ->
    Printf.printf "scaling: jobs=%d identical to jobs=1; speedup %.2fx\n%!"
      jobs ((t1 -. t0) /. Float.max 1e-9 (t2 -. t1))
  | Some _, Some _ ->
    prerr_endline "scaling: parallel library differs from sequential build";
    exit 1
  | _ -> assert false

(* ------------------------- serve scenario ------------------------- *)

(* Sustained service throughput: an in-process daemon (no chaos, no
   corrupt frames — the robustness soak lives in @serve-smoke) hammered
   by concurrent backoff clients for a fixed window.  The sustained
   queries/sec lands in the scenario's ledger record as QoR. *)
let serve_bench () =
  let module Serve = Aging_serve in
  let path = Printf.sprintf "bench-serve-%d.sock" (Unix.getpid ()) in
  let queries =
    Serve.Queries.create ~axes:Aging_liberty.Axes.coarse
      ~cells:[ Aging_cells.Catalog.find_exn "INV_X1" ] ()
  in
  let cfg =
    { Serve.Server.default_config with addr = `Unix path; workers = 2 }
  in
  let server =
    Serve.Server.start ~handler:(Serve.Queries.handle queries) cfg
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.await server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let report =
        Serve.Soak.run
          {
            (Serve.Soak.default ~addr:(`Unix path)) with
            clients = 4;
            duration_s = 1.0;
            deadline_s = 0.5;
            corrupt_rate = 0.;
            heavy_rate = 0.;
            seed = 7;
          }
      in
      if not report.Serve.Soak.server_alive then begin
        prerr_endline "serve: daemon unresponsive after the bench window";
        exit 1
      end;
      Run_ledger.note_qor "serve.qps" report.Serve.Soak.qps;
      (* Tail latency rides the same record, so a ledger diff gates both
         throughput and responsiveness. *)
      Option.iter
        (Run_ledger.note_qor "serve.p50_ms")
        report.Serve.Soak.lat_p50_ms;
      Option.iter
        (Run_ledger.note_qor "serve.p95_ms")
        report.Serve.Soak.lat_p95_ms;
      Printf.printf "serve: %d ok / %d attempts, %.0f q/s%s\n%!"
        report.Serve.Soak.ok report.Serve.Soak.attempts
        report.Serve.Soak.qps
        (match (report.Serve.Soak.lat_p50_ms, report.Serve.Soak.lat_p95_ms) with
        | Some p50, Some p95 ->
          Printf.sprintf ", total latency p50/p95 %.2f/%.2f ms" p50 p95
        | _ -> ""))

(* ------------------------- surrogate scenario ------------------------- *)

(* The surrogate-characterization payoff, measured end to end through the
   production {!Degradation_library} path on the cells where it matters:
   multi-stage FA/DFF/XOR, whose hundreds-of-ps tables sit far above the
   simulator's noise floor (single-stage cells are honestly refused by the
   serve gate at percent tolerances and would show a speedup of 1).  One
   full-fidelity training pass primes the cross-corner pool; the scenario
   then builds a held-out corner twice — surrogate vs full sweep — and
   gates on both axes of the trade:

     - speedup >= 3x marginal wall time, and
     - every *predicted* point within the additive error convention
       |sur - full| <= tol*|full| + 1% of the table's scale.

   The 1%-of-scale floor is the convention the full sweep itself needs:
   re-simulating a table under a different warm-start visit order moves
   chain-sensitive points by up to that much, so holding predictions to a
   bare relative tolerance would fail a bit-exact re-run too.  Both
   numbers land as QoR so `obs diff` tracks them across commits. *)
let surrogate_bench () =
  let module Characterize = Aging_liberty.Characterize in
  let module Axes = Aging_liberty.Axes in
  let module Library = Aging_liberty.Library in
  let module Nldm = Aging_liberty.Nldm in
  let module Scenario = Aging_physics.Scenario in
  let module Deglib = Aging_core.Degradation_library in
  let cells =
    List.map Aging_cells.Catalog.find_exn [ "FA_X1"; "DFF_X1"; "XOR2_X1" ]
  in
  (* Dense geometric grid: the regime where a build is expensive enough
     for a surrogate to pay, and where most points are non-seed. *)
  let geo n lo hi =
    Array.init n (fun i -> lo *. ((hi /. lo) ** (float i /. float (n - 1))))
  in
  let axes =
    {
      Axes.slews = geo 12 Axes.slew_min Axes.slew_max;
      loads = geo 12 Axes.load_min Axes.load_max;
    }
  in
  let tol = 0.02 in
  let deglib =
    Deglib.create ~cells ~axes
      ~surrogate:(Characterize.surrogate ~tol ~sample:24 ())
      ()
  in
  let t0 = Span.elapsed () in
  ignore (Deglib.corner deglib (Scenario.corner ~lambda_p:0.45 ~lambda_n:0.55));
  let train_s = Span.elapsed () -. t0 in
  let corner = Scenario.corner ~lambda_p:0.9 ~lambda_n:0.9 in
  let t0 = Span.elapsed () in
  let sur = Deglib.corner deglib corner in
  let t_sur = Span.elapsed () -. t0 in
  let t0 = Span.elapsed () in
  let full =
    Characterize.library ~cells ~axes ~name:"surrogate-truth"
      ~scenario:(Scenario.scenario corner) ()
  in
  let t_full = Span.elapsed () -. t0 in
  let report =
    match Deglib.build_reports deglib with
    | (_, r) :: _ -> r
    | [] ->
      prerr_endline "surrogate: corner build produced no report";
      exit 1
  in
  let sim, pred, fb =
    match Characterize.report_surrogate report with
    | Some st ->
      ( st.Characterize.fit_simulated,
        st.Characterize.fit_predicted,
        st.Characterize.fit_fallback )
    | None ->
      prerr_endline "surrogate: report carries no surrogate accounting";
      exit 1
  in
  let prov_of cell from_pin to_pin dir =
    List.find_map
      (fun (st : Characterize.arc_stats) ->
        if
          st.Characterize.stat_cell = cell
          && st.Characterize.stat_from = from_pin
          && st.Characterize.stat_to = to_pin
          && st.Characterize.stat_dir = dir
        then st.Characterize.prov
        else None)
      report.Characterize.stats
  in
  (* Worst predicted-point error as a fraction of its additive budget
     (tol*|full| + 1% of the table scale): <= 1 is within convention. *)
  let worst = ref 0. and worst_rel = ref 0. in
  List.iter
    (fun (fe : Library.entry) ->
      let se = Library.find_exn sur fe.Library.indexed_name in
      List.iter2
        (fun (fa : Library.arc) (sa : Library.arc) ->
          List.iter
            (fun (dir, (ft : Nldm.table), (st : Nldm.table)) ->
              let pr =
                prov_of fe.Library.indexed_name fa.Library.from_pin
                  fa.Library.to_pin dir
              in
              let scale =
                Array.fold_left
                  (fun a r ->
                    Array.fold_left (fun a v -> Float.max a (Float.abs v)) a r)
                  0. ft.Nldm.values
              in
              Array.iteri
                (fun i row ->
                  Array.iteri
                    (fun j fv ->
                      match pr with
                      | Some p when p.(i).(j) = Characterize.Predicted ->
                        let e =
                          Float.abs (st.Nldm.values.(i).(j) -. fv)
                        in
                        let budget =
                          (tol *. Float.abs fv) +. (0.01 *. scale)
                        in
                        if e /. budget > !worst then worst := e /. budget;
                        let rel =
                          e /. Float.max (Float.abs fv) (0.01 *. scale)
                        in
                        if rel > !worst_rel then worst_rel := rel
                      | _ -> ())
                    row)
                ft.Nldm.values)
            [
              (Library.Rise, fa.Library.delay_rise, sa.Library.delay_rise);
              (Library.Fall, fa.Library.delay_fall, sa.Library.delay_fall);
              (Library.Rise, fa.Library.slew_rise, sa.Library.slew_rise);
              (Library.Fall, fa.Library.slew_fall, sa.Library.slew_fall);
            ])
        fe.Library.arcs se.Library.arcs)
    (Library.entries full);
  let speedup = t_full /. Float.max 1e-9 t_sur in
  Run_ledger.note_qor "surrogate.speedup" speedup;
  Run_ledger.note_qor "surrogate.train_s" train_s;
  Run_ledger.note_qor "surrogate.predicted" (float_of_int pred);
  Run_ledger.note_qor "surrogate.fallback" (float_of_int fb);
  Run_ledger.note_qor "surrogate.worst_budget_frac" !worst;
  Run_ledger.note_qor "surrogate.max_rel_err_pct" (100. *. !worst_rel);
  Printf.printf
    "surrogate: train %.1f s; corner %s sur %.2f s vs full %.2f s (%.2fx); \
     sim/pred/fb %d/%d/%d; predicted max err %.2f%% (%.0f%% of budget)\n\
     %!"
    train_s
    (Scenario.suffix corner)
    t_sur t_full speedup sim pred fb
    (100. *. !worst_rel)
    (100. *. !worst);
  if pred = 0 then begin
    prerr_endline "surrogate: model served no points";
    exit 1
  end;
  if !worst > 1. then begin
    Printf.eprintf
      "surrogate: predicted point exceeds the error convention (%.2fx the \
       tol*|full| + 1%%-of-scale budget)\n\
       %!"
      !worst;
    exit 1
  end;
  if speedup < 3. then begin
    Printf.eprintf "surrogate: speedup %.2fx below the 3x gate\n%!" speedup;
    exit 1
  end

(* ------------------------- BENCH.json ------------------------- *)

let bench_json ~mode =
  let scenarios =
    List.filter_map
      (fun (s : Span.t) ->
        if s.Span.name <> "bench.scenario" then None
        else
          let name =
            match List.assoc_opt "scenario" s.Span.attrs with
            | Some n -> n
            | None -> s.Span.name
          in
          let runtime =
            Option.value ~default:[] (Hashtbl.find_opt scenario_runtime name)
          in
          Some
            (name, Json.Obj (("seconds", Json.Float s.Span.duration) :: runtime)))
      (Span.roots ())
  in
  let counters =
    List.filter_map
      (function
        | name, Metrics.Counter_value n -> Some (name, Json.Int n)
        | _, (Metrics.Gauge_value _ | Metrics.Histogram_value _) -> None)
      (Metrics.snapshot ())
  in
  Json.Obj
    [
      ("mode", Json.String mode);
      ("scenarios", Json.Obj scenarios);
      ("counters", Json.Obj counters);
    ]

let write_bench path ~mode =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (bench_json ~mode));
  output_char oc '\n';
  close_out oc

(* Re-read what we just wrote: it must parse, and its "scenarios" object
   must name every scenario that ran.  A failure exits nonzero so the dune
   smoke rule doubles as a test of the report format. *)
let validate_bench path ~expected =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let doc =
    try Json.of_string text
    with Json.Parse_error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n%!" path msg;
      exit 1
  in
  let scenarios =
    match Json.member "scenarios" doc with
    | Some (Json.Obj kvs) -> kvs
    | Some _ | None ->
      Printf.eprintf "%s: missing \"scenarios\" object\n%!" path;
      exit 1
  in
  List.iter
    (fun name ->
      match List.assoc_opt name scenarios with
      | Some entry
        when Option.bind (Json.member "seconds" entry) Json.to_float <> None ->
        ()
      | Some _ ->
        Printf.eprintf "%s: scenario %s has no \"seconds\"\n%!" path name;
        exit 1
      | None ->
        Printf.eprintf "%s: scenario %s missing\n%!" path name;
        exit 1)
    expected;
  Printf.printf "%s: %d scenario(s), ok\n%!" path (List.length expected)

(* ------------------------- microbenchmarks ------------------------- *)

let micro () =
  let open Bechamel in
  let deglib =
    Aging_core.Degradation_library.create ~cache_dir:"_libcache" ()
  in
  let fresh = Aging_core.Degradation_library.fresh deglib in
  let nand = Aging_liberty.Library.find_exn fresh "NAND2_X1" in
  let arc = List.hd nand.Aging_liberty.Library.arcs in
  let design = Aging_designs.Designs.risc5 () in
  let structure = Aging_sta.Timing.prepare_structure design in
  let compiled = Aging_netlist.Netlist.compile design in
  let state = Aging_netlist.Netlist.initial_state design in
  let inputs =
    List.map (fun (p, _) -> (p, false)) design.Aging_netlist.Netlist.input_ports
  in
  let cell = Aging_cells.Catalog.find_exn "INV_X1" in
  let scenario =
    Aging_physics.Scenario.scenario Aging_physics.Scenario.worst_case
  in
  let inv_arc = List.hd (Aging_cells.Cell.arcs cell) in
  let tests =
    [
      Test.make ~name:"nldm-lookup" (Staged.stage (fun () ->
          Aging_liberty.Library.delay_of arc ~dir:Aging_liberty.Library.Rise
            ~slew:5.3e-11 ~load:3.1e-15));
      Test.make ~name:"sta-full-pass-risc5" (Staged.stage (fun () ->
          Aging_sta.Timing.analyze ~structure ~library:fresh design));
      Test.make ~name:"cycle-eval-risc5" (Staged.stage (fun () ->
          Aging_netlist.Netlist.compiled_cycle compiled state ~inputs));
      Test.make ~name:"transient-inv-arc" (Staged.stage (fun () ->
          Aging_liberty.Characterize.arc_measure
            Aging_liberty.Characterize.default_backend ~scenario ~cell
            ~arc:inv_arc ~dir:Aging_liberty.Library.Rise ~slew:4e-11
            ~load:2e-15));
      Test.make ~name:"bti-degradation" (Staged.stage (fun () ->
          Aging_physics.Degradation.of_stress
            (Aging_physics.Device.pmos ~w:1.8e-7)
            (Aging_physics.Bti.stress ~duty:0.7 ())));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:None ()) Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------- driver ------------------------- *)

let () =
  let bench_out = ref "BENCH.json" in
  let quick = ref false in
  let jobs = ref (Aging_util.Pool.default_jobs ()) in
  let ledger = ref None in
  let rest = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: tl ->
      quick := true;
      parse tl
    | "--bench-out" :: file :: tl ->
      bench_out := file;
      parse tl
    | [ "--bench-out" ] ->
      prerr_endline "--bench-out requires a file argument";
      exit 2
    | "--ledger" :: dir :: tl ->
      ledger := Some dir;
      parse tl
    | [ "--ledger" ] ->
      prerr_endline "--ledger requires a directory argument";
      exit 2
    | ("--jobs" | "-j") :: n :: tl when int_of_string_opt n <> None ->
      jobs := max 1 (Option.get (int_of_string_opt n));
      parse tl
    | [ ("--jobs" | "-j") ] | ("--jobs" | "-j") :: _ ->
      prerr_endline "--jobs requires an integer argument";
      exit 2
    | a :: tl ->
      rest := a :: !rest;
      parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let args = List.rev !rest in
  if args = [ "micro" ] then micro ()
  else begin
    Span.set_recording true;
    (* One ledger record per scenario: tool "bench", subcommand = scenario
       name, spans restricted to that scenario's root, wall time from the
       monotonic clock, scenario seconds as QoR. *)
    Runtime.start_global ();
    let scenario name f =
      let started_at = Span.now () in
      let t0 = Span.elapsed () in
      let before = Runtime.totals () in
      Span.with_ "bench.scenario" ~attrs:[ ("scenario", name) ] f;
      let wall = Span.elapsed () -. t0 in
      let after = Runtime.totals () in
      Hashtbl.replace scenario_runtime name (runtime_fields ~before ~after);
      Printf.printf "[%s done in %.1f s]\n\n%!" name wall;
      Option.iter
        (fun dir ->
          let spans =
            List.filter
              (fun (s : Span.t) ->
                s.Span.name = "bench.scenario"
                && List.assoc_opt "scenario" s.Span.attrs = Some name)
              (Span.roots ())
          in
          Run_ledger.note_qor "seconds" wall;
          (* The runtime story rides the record too, so `obs history`
             can watch memory growth across bench runs. *)
          Option.iter (Run_ledger.note_qor "peak_rss_mb") after.Runtime.hwm_mb;
          Run_ledger.note_qor "minor_words"
            (after.Runtime.minor_words -. before.Runtime.minor_words);
          Run_ledger.note_qor "major_collections"
            (float_of_int
               (after.Runtime.major_collections
               - before.Runtime.major_collections));
          let record =
            Run_ledger.capture ~tool:"bench" ~subcommand:name ~spans
              ~started_at ~wall_s:wall ()
          in
          ignore (Run_ledger.append ~dir record))
        !ledger
    in
    let mode, selected =
      match args with
      | [ "smoke" ] -> ("smoke", [ "smoke" ])
      | [ "kernel" ] -> ("kernel", [ "kernel" ])
      | [ "scaling" ] -> ("scaling", [ "scaling-jobs1"; "scaling-jobsN" ])
      | [ "serve" ] -> ("serve", [ "serve" ])
      | [ "surrogate" ] -> ("surrogate", [ "surrogate" ])
      | [] -> ((if !quick then "quick" else "full"), all_figures)
      | names -> ((if !quick then "quick" else "full"), names)
    in
    Printf.printf "reliability-aware design reproduction — %s mode\n\n%!" mode;
    if mode = "smoke" then scenario "smoke" smoke
    else if mode = "kernel" then scenario "kernel" kernel
    else if mode = "scaling" then scaling ~jobs:!jobs ~scenario
    else if mode = "serve" then scenario "serve" serve_bench
    else if mode = "surrogate" then scenario "surrogate" surrogate_bench
    else begin
      let t = Experiments.create ~quick:!quick ~jobs:!jobs () in
      List.iter
        (fun name -> scenario name (fun () -> run_experiment t name))
        selected
    end;
    write_bench !bench_out ~mode;
    validate_bench !bench_out ~expected:selected
  end
