module Device = Aging_physics.Device
module Metrics = Aging_obs.Metrics

(* Solver-health counters mirrored into the process-global registry so a
   whole build's solver effort is visible without threading [diagnostics]
   records through every caller. *)
let m_transients = Metrics.counter "engine.transients"
let m_steps = Metrics.counter "engine.steps"
let m_rejected = Metrics.counter "engine.rejected_steps"
let m_non_converged = Metrics.counter "engine.non_converged_steps"
let m_jacobians = Metrics.counter "engine.jacobian_refreshes"
let m_newton = Metrics.counter "engine.newton_iterations"
let m_singular = Metrics.counter "engine.singular_systems"

type options = {
  dt_min : float;
  dt_max : float;
  dv_target : float;
  dv_reject : float;
  newton_tol : float;
  newton_max : int;
  settle_time : float;
  c_floor : float;
  fd_jacobian : bool;
  settle_exit_dv : float;
}

let default_options =
  {
    dt_min = 5e-14;
    dt_max = 4e-11;
    dv_target = 4e-3;
    dv_reject = 8e-2;
    newton_tol = 1e-5;
    newton_max = 25;
    settle_time = 3e-9;
    c_floor = 2e-17;
    fd_jacobian = false;
    settle_exit_dv = 1e-7;
  }

type diagnostics = {
  rejected_steps : int;
  non_converged_steps : int;
  settle_non_converged : int;
  jacobian_refreshes : int;
  newton_iterations : int;
  singular_systems : int;
}

type result = {
  times : float array;
  node_voltages : float array array; (* node_voltages.(node).(sample) *)
  n_steps : int;
  diag : diagnostics;
}

(* ------------------------------------------------------------------ *)
(* Dense LU with an explicit factor/solve split.  The matrix lives in a
   flat row-major float array (unboxed storage, no row indirection); the
   factor overwrites it in place, storing the multipliers below the
   diagonal and the row swaps in [piv], so one factorization serves any
   number of right-hand sides — the heart of the chord-Newton factor
   reuse.  A pivot below [pivot_floor] means the system is singular; that
   is surfaced to the caller instead of clamped, so the step-rejection
   path (not a fabricated solution) handles it. *)

let pivot_floor = 1e-30

(* [lu_factor a piv n] factors the n x n matrix [a] in place.  Returns
   [false] (leaving [a] partially clobbered) when a pivot collapses. *)
let lu_factor a piv n =
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let k0 = !k in
    let pivot = ref k0 in
    for i = k0 + 1 to n - 1 do
      if Float.abs a.((i * n) + k0) > Float.abs a.((!pivot * n) + k0) then
        pivot := i
    done;
    piv.(k0) <- !pivot;
    if !pivot <> k0 then begin
      let rk = k0 * n and rp = !pivot * n in
      for j = 0 to n - 1 do
        let tmp = a.(rk + j) in
        a.(rk + j) <- a.(rp + j);
        a.(rp + j) <- tmp
      done
    end;
    let akk = a.((k0 * n) + k0) in
    if Float.abs akk < pivot_floor then ok := false
    else begin
      for i = k0 + 1 to n - 1 do
        let f = a.((i * n) + k0) /. akk in
        a.((i * n) + k0) <- f;
        if f <> 0. then
          for j = k0 + 1 to n - 1 do
            a.((i * n) + j) <- a.((i * n) + j) -. (f *. a.((k0 * n) + j))
          done
      done;
      incr k
    end
  done;
  !ok

(* [lu_solve a piv n b] back-substitutes one right-hand side in place.
   The running sums accumulate directly into [b] (unboxed float-array
   stores): a local [float ref] would box every assignment under the
   non-flambda compiler, and this runs once per Newton iteration. *)
let lu_solve a piv n b =
  for k = 0 to n - 1 do
    let p = piv.(k) in
    if p <> k then begin
      let tmp = b.(k) in
      b.(k) <- b.(p);
      b.(p) <- tmp
    end
  done;
  for i = 1 to n - 1 do
    let row = i * n in
    for j = 0 to i - 1 do
      b.(i) <- b.(i) -. (a.(row + j) *. b.(j))
    done
  done;
  for i = n - 1 downto 0 do
    let row = i * n in
    for j = i + 1 to n - 1 do
      b.(i) <- b.(i) -. (a.(row + j) *. b.(j))
    done;
    b.(i) <- b.(i) /. a.(row + i)
  done

let clamp_voltage v =
  let lo = -0.3 and hi = Device.vdd +. 0.3 in
  if v < lo then lo else if v > hi then hi else v

let transient ?(options = default_options) ?(init = []) ?stop_when circuit
    ~drives ~t_stop =
  if t_stop <= 0. then invalid_arg "Engine.transient: t_stop <= 0";
  let n_nodes = Circuit.node_count circuit in
  let driven = Array.make n_nodes None in
  List.iter
    (fun (n, stim) ->
      if n = Circuit.gnd || n = Circuit.vdd then
        invalid_arg "Engine.transient: cannot drive a rail";
      if n < 0 || n >= n_nodes then
        invalid_arg "Engine.transient: drive on unknown node";
      if driven.(n) <> None then
        invalid_arg "Engine.transient: duplicate drive";
      driven.(n) <- Some stim)
    drives;
  List.iter
    (fun (n, _) ->
      if n = Circuit.gnd || n = Circuit.vdd then
        invalid_arg "Engine.transient: init on a rail";
      if n < 0 || n >= n_nodes then
        invalid_arg "Engine.transient: init on unknown node";
      if driven.(n) <> None then
        invalid_arg "Engine.transient: init on a driven node")
    init;
  let is_free n = n <> Circuit.gnd && n <> Circuit.vdd && driven.(n) = None in
  let free = ref [] in
  for n = n_nodes - 1 downto 0 do
    if is_free n then free := n :: !free
  done;
  let free = Array.of_list !free in
  let nf = Array.length free in
  let slot = Array.make n_nodes (-1) in
  Array.iteri (fun i n -> slot.(n) <- i) free;
  let cap =
    Array.map
      (fun n -> Float.max options.c_floor (Circuit.capacitance circuit n))
      free
  in
  (* Devices unpacked into parallel arrays: the residual and Jacobian
     assembly loops touch flat int/float/params arrays only.  Devices whose
     drain AND source both sit on rails or driven nodes inject nothing
     into any free-node residual, so they are dropped here once instead of
     skipped in every evaluation (side-input pull networks of multi-input
     cells are full of them). *)
  let mosfets =
    Array.of_list
      (List.filter
         (fun (m : Circuit.mos) -> is_free m.Circuit.d || is_free m.Circuit.s)
         (Circuit.mosfets circuit))
  in
  let n_mos = Array.length mosfets in
  (* Each device compiled once (see {!Mosfet.inst}): constants folded, and
     the strength memo's hits are bit-identical to recomputation, so the
     compilation never perturbs results. *)
  let mos_inst =
    Array.map (fun (m : Circuit.mos) -> Mosfet.inst m.Circuit.dev) mosfets
  in
  let mos_g = Array.map (fun (m : Circuit.mos) -> m.Circuit.g) mosfets in
  let mos_d = Array.map (fun (m : Circuit.mos) -> m.Circuit.d) mosfets in
  let mos_s = Array.map (fun (m : Circuit.mos) -> m.Circuit.s) mosfets in
  let resistors =
    Array.of_list
      (List.filter
         (fun (r : Circuit.res) -> is_free r.Circuit.a || is_free r.Circuit.b)
         (Circuit.resistors circuit))
  in
  let n_res = Array.length resistors in
  let res_a = Array.map (fun (r : Circuit.res) -> r.Circuit.a) resistors in
  let res_b = Array.map (fun (r : Circuit.res) -> r.Circuit.b) resistors in
  let res_g = Array.map (fun (r : Circuit.res) -> 1. /. r.Circuit.ohms) resistors in
  (* Driven nodes flattened out of the option array so the per-step loops
     walk a dense int array instead of scanning every node. *)
  let driven_nodes =
    Array.of_list
      (List.filter (fun n -> driven.(n) <> None)
         (List.init n_nodes (fun n -> n)))
  in
  let n_driven = Array.length driven_nodes in
  let driven_stims =
    Array.map
      (fun n -> match driven.(n) with Some f -> f | None -> assert false)
      driven_nodes
  in
  (* Voltage vector over all nodes; rails pinned, driven set per time. *)
  let v = Array.make n_nodes 0. in
  v.(Circuit.vdd) <- Device.vdd;
  List.iter (fun (n, value) -> v.(n) <- value) init;
  let set_driven time =
    for k = 0 to n_driven - 1 do
      v.(driven_nodes.(k)) <- driven_stims.(k) time
    done
  in
  (* Current injected into each free node by the static elements.  The
     device evaluations go through {!Mosfet.channel_currents_into}: the
     batch call keeps the model's floats unboxed across the module
     boundary, and the scratch arrays below receive the results. *)
  let inject = Array.make nf 0. in
  let mos_i = Array.make (max 1 n_mos) 0. in
  let mos_deriv = Array.make (max 1 (4 * n_mos)) 0. in
  let compute_injections () =
    Array.fill inject 0 nf 0.;
    Mosfet.channel_currents_into mos_inst mos_g mos_d mos_s v mos_i;
    for k = 0 to n_mos - 1 do
      let i_ds = mos_i.(k) in
      let sd = slot.(mos_d.(k)) and ss = slot.(mos_s.(k)) in
      if sd >= 0 then inject.(sd) <- inject.(sd) -. i_ds;
      if ss >= 0 then inject.(ss) <- inject.(ss) +. i_ds
    done;
    for k = 0 to n_res - 1 do
      let i = (v.(res_a.(k)) -. v.(res_b.(k))) *. res_g.(k) in
      let sa = slot.(res_a.(k)) and sb = slot.(res_b.(k)) in
      if sa >= 0 then inject.(sa) <- inject.(sa) -. i;
      if sb >= 0 then inject.(sb) <- inject.(sb) +. i
    done
  in
  let rejected = ref 0 in
  let forced = ref 0 in
  let settle_forced = ref 0 in
  let jac_refreshes = ref 0 in
  let newton_iters = ref 0 in
  let singular = ref 0 in
  let f0 = Array.make nf 0. in
  (* Conductance part of the Jacobian (∂residual/∂v minus the cap/dt
     diagonal): device linearization at some recent operating point.  The
     chord method holds it fixed across Newton iterations AND across
     accepted steps; it is re-assembled only when convergence stalls or a
     factorization collapses.  [lu] is [g + diag(cap/dt)] factored for one
     specific [dt]; a dt change refactors (O(nf^3) on a handful of nodes,
     cheap) without re-linearizing the devices. *)
  let g = Array.make (max 1 (nf * nf)) 0. in
  let lu = Array.make (max 1 (nf * nf)) 0. in
  let piv = Array.make (max 1 nf) 0 in
  let g_valid = ref false in
  let lu_dt = Array.make 1 Float.nan in
  let lu_ok = ref false in
  let fd_base = Array.make nf 0. in
  (* The analytic assembly is fused with the injection computation:
     [Mosfet.channel_current_deriv] returns the current alongside the
     gradient, so one device pass fills both [g] and [inject].  A refresh
     therefore costs about as much as a plain residual evaluation. *)
  let assemble_g_analytic () =
    Array.fill g 0 (nf * nf) 0.;
    Array.fill inject 0 nf 0.;
    Mosfet.channel_current_derivs_into mos_inst mos_g mos_d mos_s v mos_deriv;
    for k = 0 to n_mos - 1 do
      let sg = slot.(mos_g.(k))
      and sd = slot.(mos_d.(k))
      and ss = slot.(mos_s.(k)) in
      let o = 4 * k in
      let i_ds = mos_deriv.(o) in
      let di_dvg = mos_deriv.(o + 1) in
      let di_dvd = mos_deriv.(o + 2) in
      let di_dvs = mos_deriv.(o + 3) in
      (* residual(d) gains +i_ds, residual(s) gains -i_ds. *)
      if sd >= 0 then begin
        inject.(sd) <- inject.(sd) -. i_ds;
        let row = sd * nf in
        if sg >= 0 then g.(row + sg) <- g.(row + sg) +. di_dvg;
        g.(row + sd) <- g.(row + sd) +. di_dvd;
        if ss >= 0 then g.(row + ss) <- g.(row + ss) +. di_dvs
      end;
      if ss >= 0 then begin
        inject.(ss) <- inject.(ss) +. i_ds;
        let row = ss * nf in
        if sg >= 0 then g.(row + sg) <- g.(row + sg) -. di_dvg;
        if sd >= 0 then g.(row + sd) <- g.(row + sd) -. di_dvd;
        g.(row + ss) <- g.(row + ss) -. di_dvs
      end
    done;
    for k = 0 to n_res - 1 do
      let sa = slot.(res_a.(k)) and sb = slot.(res_b.(k)) in
      let gc = res_g.(k) in
      let i = (v.(res_a.(k)) -. v.(res_b.(k))) *. gc in
      if sa >= 0 then begin
        inject.(sa) <- inject.(sa) -. i;
        g.((sa * nf) + sa) <- g.((sa * nf) + sa) +. gc;
        if sb >= 0 then g.((sa * nf) + sb) <- g.((sa * nf) + sb) -. gc
      end;
      if sb >= 0 then begin
        inject.(sb) <- inject.(sb) +. i;
        g.((sb * nf) + sb) <- g.((sb * nf) + sb) +. gc;
        if sa >= 0 then g.((sb * nf) + sa) <- g.((sb * nf) + sa) -. gc
      end
    done
  in
  (* Finite-difference fallback (kept for differential testing): FD of the
     injection currents around the current iterate; the linear cap/dt term
     is added exactly at factor time, so this matches the analytic path's
     split.  Restores [inject] to the base-point values on exit, matching
     the analytic path's fused contract. *)
  let assemble_g_fd () =
    let dv = 1e-4 in
    compute_injections ();
    for i = 0 to nf - 1 do
      fd_base.(i) <- inject.(i)
    done;
    for j = 0 to nf - 1 do
      let saved = v.(free.(j)) in
      v.(free.(j)) <- saved +. dv;
      compute_injections ();
      v.(free.(j)) <- saved;
      for i = 0 to nf - 1 do
        g.((i * nf) + j) <- (fd_base.(i) -. inject.(i)) /. dv
      done
    done;
    Array.blit fd_base 0 inject 0 nf
  in
  (* After [refresh_g], [inject] holds the injections at the current [v]. *)
  let refresh_g () =
    incr jac_refreshes;
    if options.fd_jacobian then assemble_g_fd () else assemble_g_analytic ();
    g_valid := true;
    lu_ok := false;
    lu_dt.(0) <- Float.nan
  in
  (* [ensure_lu dt] makes [lu] hold a valid factorization of
     [g + diag(cap/dt)], re-assembling [g] first if it was invalidated.
     Returns [false] when the system is singular. *)
  let ensure_lu dt =
    if not !g_valid then refresh_g ();
    if (not !lu_ok) || lu_dt.(0) <> dt then begin
      Array.blit g 0 lu 0 (nf * nf);
      for i = 0 to nf - 1 do
        lu.((i * nf) + i) <- lu.((i * nf) + i) +. (cap.(i) /. dt)
      done;
      lu_ok := lu_factor lu piv nf;
      lu_dt.(0) <- dt;
      if not !lu_ok then begin
        incr singular;
        (* The linearization itself may be stale garbage; force a fresh
           assembly before the next attempt. *)
        g_valid := false
      end
    end;
    !lu_ok
  in
  let delta = Array.make nf 0. in
  (* One-float scratch for the max-|change| reductions: a [float ref]
     accumulator would box every assignment (non-flambda), and these
     loops run once or twice per Newton iteration / accepted step. *)
  let fmax = Array.make 1 0. in
  (* One BE step attempt with chord Newton: the residual is re-evaluated
     every iteration against the carried LU factor; the Jacobian is only
     re-linearized when the iteration stalls (2 iterations without this
     step having refreshed, then every 4).  [last_iters] feeds the refresh
     heuristic in [march]: a step that needed several iterations predicts
     a fast-moving operating point, so the next step re-linearizes up
     front (a refresh costs one fused device pass, no more than the
     residual it replaces). *)
  let last_iters = ref 0 in
  let newton_step v_prev dt =
    let refreshed_at = ref (-1) in
    let rec iterate k =
      if k >= options.newton_max then begin
        last_iters := k;
        false
      end
      else begin
        incr newton_iters;
        if
          (not !g_valid)
          || (!refreshed_at < 0 && k >= 2)
          || (!refreshed_at >= 0 && k - !refreshed_at >= 4)
        then begin
          g_valid := false;
          refreshed_at := k
        end;
        let fresh = not !g_valid in
        if not (ensure_lu dt) then begin
          last_iters := k + 1;
          false
        end
        else begin
          (* [refresh_g] (run inside [ensure_lu] when the linearization was
             invalid) leaves [inject] current; otherwise evaluate it here —
             either way one device pass per iteration. *)
          if not fresh then compute_injections ();
          for i = 0 to nf - 1 do
            f0.(i) <- (cap.(i) *. (v.(free.(i)) -. v_prev.(i)) /. dt) -. inject.(i)
          done;
          for i = 0 to nf - 1 do
            delta.(i) <- -.f0.(i)
          done;
          lu_solve lu piv nf delta;
          let max_step = 0.3 in
          fmax.(0) <- 0.;
          for i = 0 to nf - 1 do
            let a = Float.abs delta.(i) in
            if a > fmax.(0) then fmax.(0) <- a
          done;
          let biggest = fmax.(0) in
          let damp = if biggest > max_step then max_step /. biggest else 1.0 in
          for i = 0 to nf - 1 do
            v.(free.(i)) <- clamp_voltage (v.(free.(i)) +. (damp *. delta.(i)))
          done;
          if biggest *. damp < options.newton_tol then begin
            last_iters := k + 1;
            true
          end
          else iterate (k + 1)
        end
      end
    in
    if nf = 0 then true else iterate 0
  in
  (* Append-only sample store: times and the full node-voltage vector per
     accepted step, in flat growable arrays (one blit per sample, no
     per-step boxed snapshots). *)
  let rec_cap = ref 256 in
  let rec_n = ref 0 in
  let rec_times = ref (Array.make !rec_cap 0.) in
  let rec_v = ref (Array.make (!rec_cap * n_nodes) 0.) in
  let record time =
    if !rec_n = !rec_cap then begin
      let cap' = 2 * !rec_cap in
      let t' = Array.make cap' 0. in
      Array.blit !rec_times 0 t' 0 !rec_n;
      let v' = Array.make (cap' * n_nodes) 0. in
      Array.blit !rec_v 0 v' 0 (!rec_n * n_nodes);
      rec_cap := cap';
      rec_times := t';
      rec_v := v'
    end;
    !rec_times.(!rec_n) <- time;
    Array.blit v 0 !rec_v (!rec_n * n_nodes) n_nodes;
    incr rec_n
  in
  let n_steps = ref 0 in
  let v_prev = Array.make nf 0. in
  let v_old = Array.make nf 0. in
  let v_saved = Array.make n_nodes 0. in
  (* March from [t_from] to [t_to]; [recording] controls sample capture.
     Each step starts Newton from a linear extrapolation of the last two
     accepted states (a first-order predictor): on the smooth ramps that
     dominate characterization the predicted point is already near the
     solution, so most steps converge in one iteration even with a stale
     chord Jacobian.  A non-recording march is the pseudo-transient DC
     settle: once the state is stationary at the dt ceiling
     ([settle_exit_dv], a few steps in a row) the operating point is
     reached and the remaining settle window is skipped. *)
  (* [t] / [dt] / [dt_prev] live in one-float arrays for the same
     boxing reason as [fmax]: they are reassigned every step. *)
  let march ~t_from ~t_to ~dt0 ~recording =
    let t = Array.make 1 t_from in
    let dt = Array.make 1 dt0 in
    let dt_prev = Array.make 1 0. in
    let have_old = ref false in
    let stopped = ref false in
    let quiet = ref 0 in
    if recording then record t.(0);
    while (not !stopped) && t.(0) < t_to -. 1e-18 do
      let dt_now = Float.min dt.(0) (t_to -. t.(0)) in
      let t_next = t.(0) +. dt_now in
      for i = 0 to nf - 1 do
        v_prev.(i) <- v.(free.(i))
      done;
      Array.blit v 0 v_saved 0 n_nodes;
      set_driven t_next;
      let driven_change =
        fmax.(0) <- 0.;
        for k = 0 to n_driven - 1 do
          let n = driven_nodes.(k) in
          let a = Float.abs (v.(n) -. v_saved.(n)) in
          if a > fmax.(0) then fmax.(0) <- a
        done;
        fmax.(0)
      in
      (* A step that needed > 2 iterations means the operating point is
         moving faster than the carried linearization tracks: pay one
         up-front refresh next attempt instead of extra iterations. *)
      if !last_iters > 2 then g_valid := false;
      if !have_old && dt_prev.(0) > 0. then begin
        let ratio = dt_now /. dt_prev.(0) in
        for i = 0 to nf - 1 do
          v.(free.(i)) <-
            clamp_voltage (v_prev.(i) +. (ratio *. (v_prev.(i) -. v_old.(i))))
        done
      end;
      let converged = newton_step v_prev dt_now in
      let free_change =
        fmax.(0) <- 0.;
        for i = 0 to nf - 1 do
          let a = Float.abs (v.(free.(i)) -. v_prev.(i)) in
          if a > fmax.(0) then fmax.(0) <- a
        done;
        fmax.(0)
      in
      let change = Float.max driven_change free_change in
      if (not converged || change > options.dv_reject)
         && dt_now > options.dt_min then begin
        (* Reject: restore state and retry with half the step. *)
        incr rejected;
        Array.blit v_saved 0 v 0 n_nodes;
        dt.(0) <- Float.max options.dt_min (dt_now /. 2.)
      end
      else begin
        (* Accepting a step that Newton did not converge (only possible at
           the dt floor) is recorded rather than hidden: callers decide
           whether the run is trustworthy. *)
        if not converged then incr (if recording then forced else settle_forced);
        t.(0) <- t_next;
        incr n_steps;
        Array.blit v_prev 0 v_old 0 nf;
        dt_prev.(0) <- dt_now;
        have_old := true;
        if recording then record t.(0);
        if (not recording) && options.settle_exit_dv > 0. then begin
          if converged && dt_now >= options.dt_max *. 0.999
             && change < options.settle_exit_dv
          then incr quiet
          else quiet := 0;
          if !quiet >= 3 then stopped := true
        end;
        (* Step-size ramp: near-stationary stretches (edge tails, the quiet
           window before an input moves) regrow dt aggressively; active
           regions grow gently so [dv_target] keeps being met without
           rejections.  Growth never loosens accuracy by itself — a too-big
           step is still caught by [dv_reject] and retried at half size. *)
        if change < options.dv_target *. 0.25 then
          dt.(0) <- Float.min options.dt_max (dt_now *. 2.2)
        else if change < options.dv_target then
          dt.(0) <- Float.min options.dt_max (dt_now *. 1.6)
        else if change > options.dv_target *. 8. then
          dt.(0) <- Float.max options.dt_min (dt_now /. 2.);
        match stop_when with
        | Some f when recording && f t.(0) v -> stopped := true
        | Some _ | None -> ()
      end
    done
  in
  (* DC settle with inputs frozen at their t=0 values.  The settle starts
     cautiously (the seed state may be far from the operating point); the
     recording march starts at the dt ceiling, because it begins from the
     settled — stationary — state, and re-ramping from a small dt would
     burn a handful of steps on a provably quiet stretch. *)
  set_driven 0.;
  march ~t_from:(-.options.settle_time) ~t_to:0. ~dt0:(options.dt_max /. 10.)
    ~recording:false;
  march ~t_from:0. ~t_to:t_stop ~dt0:options.dt_max ~recording:true;
  let n_samples = !rec_n in
  let times = Array.sub !rec_times 0 n_samples in
  let rv = !rec_v in
  let node_voltages =
    Array.init n_nodes (fun n ->
        Array.init n_samples (fun s -> rv.((s * n_nodes) + n)))
  in
  Metrics.incr m_transients;
  Metrics.incr ~by:!n_steps m_steps;
  Metrics.incr ~by:!rejected m_rejected;
  Metrics.incr ~by:(!forced + !settle_forced) m_non_converged;
  Metrics.incr ~by:!jac_refreshes m_jacobians;
  Metrics.incr ~by:!newton_iters m_newton;
  Metrics.incr ~by:!singular m_singular;
  {
    times;
    node_voltages;
    n_steps = !n_steps;
    diag =
      {
        rejected_steps = !rejected;
        non_converged_steps = !forced;
        settle_non_converged = !settle_forced;
        jacobian_refreshes = !jac_refreshes;
        newton_iterations = !newton_iters;
        singular_systems = !singular;
      };
  }

let waveform r node =
  { Waveform.times = r.times; values = r.node_voltages.(node) }

let final_voltage r node =
  let vs = r.node_voltages.(node) in
  vs.(Array.length vs - 1)

let final_state r =
  Array.map (fun vs -> vs.(Array.length vs - 1)) r.node_voltages

let settled_state r = Array.map (fun vs -> vs.(0)) r.node_voltages

let steps r = r.n_steps
let diagnostics r = r.diag
let converged r = r.diag.non_converged_steps = 0
