module Device = Aging_physics.Device
module Metrics = Aging_obs.Metrics

(* Solver-health counters mirrored into the process-global registry so a
   whole build's solver effort is visible without threading [diagnostics]
   records through every caller. *)
let m_transients = Metrics.counter "engine.transients"
let m_steps = Metrics.counter "engine.steps"
let m_rejected = Metrics.counter "engine.rejected_steps"
let m_non_converged = Metrics.counter "engine.non_converged_steps"
let m_jacobians = Metrics.counter "engine.jacobian_refreshes"
let m_newton = Metrics.counter "engine.newton_iterations"

type options = {
  dt_min : float;
  dt_max : float;
  dv_target : float;
  dv_reject : float;
  newton_tol : float;
  newton_max : int;
  settle_time : float;
  c_floor : float;
}

let default_options =
  {
    dt_min = 5e-14;
    dt_max = 4e-11;
    dv_target = 4e-3;
    dv_reject = 8e-2;
    newton_tol = 1e-5;
    newton_max = 25;
    settle_time = 3e-9;
    c_floor = 2e-17;
  }

type diagnostics = {
  rejected_steps : int;
  non_converged_steps : int;
  settle_non_converged : int;
  jacobian_refreshes : int;
  newton_iterations : int;
}

type result = {
  times : float array;
  node_voltages : float array array; (* node_voltages.(node).(sample) *)
  n_steps : int;
  diag : diagnostics;
}

(* Dense LU solve with partial pivoting; [a] and [b] are clobbered. *)
let solve_linear a b =
  let n = Array.length b in
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(k) in
      b.(k) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    let akk = a.(k).(k) in
    let akk = if Float.abs akk < 1e-30 then 1e-30 else akk in
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. akk in
      if f <> 0. then begin
        for j = k to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      end
    done
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.(i).(j) *. x.(j))
    done;
    let aii = a.(i).(i) in
    let aii = if Float.abs aii < 1e-30 then 1e-30 else aii in
    x.(i) <- !s /. aii
  done;
  x

let clamp_voltage v =
  let lo = -0.3 and hi = Device.vdd +. 0.3 in
  if v < lo then lo else if v > hi then hi else v

let transient ?(options = default_options) ?(init = []) ?stop_when circuit
    ~drives ~t_stop =
  if t_stop <= 0. then invalid_arg "Engine.transient: t_stop <= 0";
  List.iter
    (fun (n, _) ->
      if n = Circuit.gnd || n = Circuit.vdd then
        invalid_arg "Engine.transient: cannot drive a rail")
    drives;
  let n_nodes = Circuit.node_count circuit in
  let driven = Array.make n_nodes None in
  List.iter (fun (n, stim) -> driven.(n) <- Some stim) drives;
  let is_free n = n <> Circuit.gnd && n <> Circuit.vdd && driven.(n) = None in
  let free = ref [] in
  for n = n_nodes - 1 downto 0 do
    if is_free n then free := n :: !free
  done;
  let free = Array.of_list !free in
  let nf = Array.length free in
  let slot = Array.make n_nodes (-1) in
  Array.iteri (fun i n -> slot.(n) <- i) free;
  let cap =
    Array.map
      (fun n -> Float.max options.c_floor (Circuit.capacitance circuit n))
      free
  in
  let mosfets = Array.of_list (Circuit.mosfets circuit) in
  let resistors = Array.of_list (Circuit.resistors circuit) in
  (* Voltage vector over all nodes; rails pinned, driven set per time. *)
  let v = Array.make n_nodes 0. in
  v.(Circuit.vdd) <- Device.vdd;
  List.iter (fun (n, value) -> if is_free n then v.(n) <- value) init;
  let set_driven time =
    Array.iteri
      (fun n stim -> match stim with Some f -> v.(n) <- f time | None -> ())
      driven
  in
  (* Current injected into each free node by the static elements. *)
  let inject = Array.make nf 0. in
  let compute_injections () =
    Array.fill inject 0 nf 0.;
    let add n i =
      let s = slot.(n) in
      if s >= 0 then inject.(s) <- inject.(s) +. i
    in
    Array.iter
      (fun (m : Circuit.mos) ->
        let i_ds =
          Mosfet.channel_current m.dev ~vg:v.(m.g) ~vd:v.(m.d) ~vs:v.(m.s)
        in
        add m.d (-.i_ds);
        add m.s i_ds)
      mosfets;
    Array.iter
      (fun (r : Circuit.res) ->
        let i = (v.(r.a) -. v.(r.b)) /. r.ohms in
        add r.a (-.i);
        add r.b i)
      resistors
  in
  (* Backward-Euler residual at the current [v] for step size [dt] from
     previous free-node voltages [v_prev]. *)
  let residual v_prev dt out =
    compute_injections ();
    for i = 0 to nf - 1 do
      out.(i) <- (cap.(i) *. (v.(free.(i)) -. v_prev.(i)) /. dt) -. inject.(i)
    done
  in
  let rejected = ref 0 in
  let forced = ref 0 in
  let settle_forced = ref 0 in
  let jac_refreshes = ref 0 in
  let newton_iters = ref 0 in
  let f0 = Array.make nf 0. in
  let f1 = Array.make nf 0. in
  let jac = Array.make_matrix nf nf 0. in
  let refresh_jacobian v_prev dt =
    incr jac_refreshes;
    (* Finite-difference Jacobian around the current iterate; f0 must hold
       the residual at the current point. *)
    let dv = 1e-4 in
    for j = 0 to nf - 1 do
      let saved = v.(free.(j)) in
      v.(free.(j)) <- saved +. dv;
      residual v_prev dt f1;
      v.(free.(j)) <- saved;
      for i = 0 to nf - 1 do
        jac.(i).(j) <- (f1.(i) -. f0.(i)) /. dv
      done
    done
  in
  (* One BE step attempt with chord Newton: the Jacobian is built once per
     step (and rebuilt if convergence stalls) while the residual is
     re-evaluated every iteration. *)
  let newton_step v_prev dt =
    let rec iterate k =
      if k >= options.newton_max then false
      else begin
        incr newton_iters;
        residual v_prev dt f0;
        if k = 0 || k mod 6 = 5 then refresh_jacobian v_prev dt;
        let a = Array.map Array.copy jac in
        let rhs = Array.map (fun x -> -.x) f0 in
        let delta = solve_linear a rhs in
        let max_step = 0.3 in
        let biggest = Array.fold_left (fun m d -> Float.max m (Float.abs d)) 0. delta in
        let damp = if biggest > max_step then max_step /. biggest else 1.0 in
        Array.iteri
          (fun i d ->
            v.(free.(i)) <- clamp_voltage (v.(free.(i)) +. (damp *. d)))
          delta;
        if biggest *. damp < options.newton_tol then true else iterate (k + 1)
      end
    in
    if nf = 0 then true else iterate 0
  in
  let times = ref [] and samples = ref [] in
  let record time =
    times := time :: !times;
    samples := Array.copy v :: !samples
  in
  let n_steps = ref 0 in
  (* March from [t_from] to [t_to]; [recording] controls sample capture. *)
  let march ~t_from ~t_to ~recording =
    let t = ref t_from in
    let dt = ref (options.dt_max /. 10.) in
    let stopped = ref false in
    if recording then record !t;
    while (not !stopped) && !t < t_to -. 1e-18 do
      let dt_now = Float.min !dt (t_to -. !t) in
      let t_next = !t +. dt_now in
      let v_prev = Array.map (fun n -> v.(n)) free in
      let v_saved = Array.copy v in
      set_driven t_next;
      let driven_change =
        let biggest = ref 0. in
        Array.iteri
          (fun n stim ->
            match stim with
            | Some _ ->
              biggest := Float.max !biggest (Float.abs (v.(n) -. v_saved.(n)))
            | None -> ())
          driven;
        !biggest
      in
      let converged = newton_step v_prev dt_now in
      let free_change =
        let biggest = ref 0. in
        Array.iteri
          (fun i n -> biggest := Float.max !biggest (Float.abs (v.(n) -. v_prev.(i))))
          free;
        !biggest
      in
      let change = Float.max driven_change free_change in
      if (not converged || change > options.dv_reject)
         && dt_now > options.dt_min then begin
        (* Reject: restore state and retry with half the step. *)
        incr rejected;
        Array.blit v_saved 0 v 0 n_nodes;
        dt := Float.max options.dt_min (dt_now /. 2.)
      end
      else begin
        (* Accepting a step that Newton did not converge (only possible at
           the dt floor) is recorded rather than hidden: callers decide
           whether the run is trustworthy. *)
        if not converged then incr (if recording then forced else settle_forced);
        t := t_next;
        incr n_steps;
        if recording then record !t;
        if change < options.dv_target then
          dt := Float.min options.dt_max (dt_now *. 1.6)
        else if change > options.dv_target *. 8. then
          dt := Float.max options.dt_min (dt_now /. 2.);
        match stop_when with
        | Some f when recording && f !t v -> stopped := true
        | Some _ | None -> ()
      end
    done
  in
  (* DC settle with inputs frozen at their t=0 values. *)
  set_driven 0.;
  march ~t_from:(-.options.settle_time) ~t_to:0. ~recording:false;
  march ~t_from:0. ~t_to:t_stop ~recording:true;
  let times = Array.of_list (List.rev !times) in
  let samples = Array.of_list (List.rev !samples) in
  let node_voltages =
    Array.init n_nodes (fun n -> Array.map (fun s -> s.(n)) samples)
  in
  Metrics.incr m_transients;
  Metrics.incr ~by:!n_steps m_steps;
  Metrics.incr ~by:!rejected m_rejected;
  Metrics.incr ~by:(!forced + !settle_forced) m_non_converged;
  Metrics.incr ~by:!jac_refreshes m_jacobians;
  Metrics.incr ~by:!newton_iters m_newton;
  {
    times;
    node_voltages;
    n_steps = !n_steps;
    diag =
      {
        rejected_steps = !rejected;
        non_converged_steps = !forced;
        settle_non_converged = !settle_forced;
        jacobian_refreshes = !jac_refreshes;
        newton_iterations = !newton_iters;
      };
  }

let waveform r node =
  { Waveform.times = r.times; values = r.node_voltages.(node) }

let final_voltage r node =
  let vs = r.node_voltages.(node) in
  vs.(Array.length vs - 1)

let steps r = r.n_steps
let diagnostics r = r.diag
let converged r = r.diag.non_converged_steps = 0
