module Device = Aging_physics.Device

let thermal_voltage = 1.380649e-23 *. 350. /. 1.602176634e-19

let saturation_current (dev : Device.params) ~vov =
  if vov <= 0. then 0.
  else
    dev.Device.mu_factor *. dev.Device.beta *. (dev.Device.w /. dev.Device.l)
    *. (vov ** dev.Device.alpha_sat)

(* exp(x) for the exponentials of the model, short-circuited deep in the
   tail: below -26 the result is < 5.2e-12, which is beyond the engine's
   Newton tolerance relative to every other term it ever meets.  Cuts the
   libm call for the common on-state operating points (large vds, positive
   overdrive). *)
let exp_tail x = if x < -26. then 0. else exp x

(* A device compiled for the transient hot path: the derived constants of
   the current equations (threshold, geometry-scaled prefactors, inverse
   thermal slopes) are folded once at construction, so an evaluation does
   no division or parameter-record chasing; and the overdrive-dependent
   strength term — the alpha-power [**] above threshold (idsat) or the
   subthreshold [exp] below it (gate factor) — is memoized in the two
   mutable fields.  Gates mostly sit on driven nodes and sources on rails,
   so vov repeats across every chord-Newton iteration of a step: the libm
   call is paid once per input movement instead of once per residual
   evaluation.  The memo is keyed on the exact vov float (a hit is a
   pure-function memo hit, bit-identical to recomputation) and the key's
   sign disambiguates which quantity is stored.  Never share an [inst]
   between devices with different parameters. *)
type inst = {
  nmos : bool;
  vth : float;         (* effective threshold, aging shift included *)
  sub0 : float;        (* i_sub0 * W/L *)
  inv_nvt : float;     (* 1 / (n_sub * vt) *)
  inv_vt : float;      (* 1 / vt *)
  k_sat : float;       (* mu_factor * beta * W/L *)
  alpha : float;
  vdsat_frac : float;
  lambda : float;
  mutable c_vov : float;
  mutable c_strength : float;
}

let inst (dev : Device.params) =
  let wl = dev.Device.w /. dev.Device.l in
  {
    nmos = (dev.Device.polarity = Device.Nmos);
    vth = Device.effective_vth dev;
    sub0 = dev.Device.i_sub0 *. wl;
    inv_nvt = 1. /. (dev.Device.n_sub *. thermal_voltage);
    inv_vt = 1. /. thermal_voltage;
    k_sat = dev.Device.mu_factor *. dev.Device.beta *. wl;
    alpha = dev.Device.alpha_sat;
    vdsat_frac = dev.Device.vdsat_frac;
    lambda = dev.Device.lambda_clm;
    c_vov = Float.nan;
    c_strength = 0.;
  }

let idsat_at m vov =
  if vov = m.c_vov then m.c_strength
  else begin
    let i = m.k_sat *. (vov ** m.alpha) in
    m.c_vov <- vov;
    m.c_strength <- i;
    i
  end

let gate_factor_at m vov =
  if vov = m.c_vov then m.c_strength
  else begin
    let g = exp_tail (vov *. m.inv_nvt) in
    m.c_vov <- vov;
    m.c_strength <- g;
    g
  end

(* Normalized nMOS-style current for vgs/vds referenced to the true source
   (the lower-potential terminal); always >= 0. *)
let forward_current m ~vgs ~vds =
  let vov = vgs -. m.vth in
  let drain_factor = 1. -. exp_tail (-.vds *. m.inv_vt) in
  let sub =
    (* Continuous across vov = 0: exponential below threshold, constant
       floor above (the strong-inversion term dominates there anyway). *)
    let gate_factor = if vov < 0. then gate_factor_at m vov else 1. in
    m.sub0 *. gate_factor *. drain_factor
  in
  let strong =
    if vov <= 0. then 0.
    else begin
      let idsat = idsat_at m vov in
      let vdsat = m.vdsat_frac *. vov in
      let clm = 1. +. (m.lambda *. vds) in
      if vds >= vdsat then idsat *. clm
      else
        let x = vds /. vdsat in
        idsat *. ((2. -. x) *. x) *. clm
    end
  in
  sub +. strong

(* Value and partial derivatives of [forward_current] with respect to vgs
   and vds.  Every branch mirrors the current equation exactly, so the
   triple is the true gradient of the implemented model (not of the ideal
   physics): the FD-vs-analytic oracle compares against finite differences
   of [forward_current] itself. *)
let forward_current_deriv m ~vgs ~vds =
  let vov = vgs -. m.vth in
  let e_d = exp_tail (-.vds *. m.inv_vt) in
  let drain_factor = 1. -. e_d in
  let d_drain = e_d *. m.inv_vt in
  let gate_factor, d_gate =
    if vov < 0. then
      let g = gate_factor_at m vov in
      (g, g *. m.inv_nvt)
    else (1., 0.)
  in
  let sub = m.sub0 *. gate_factor *. drain_factor in
  let sub_g = m.sub0 *. d_gate *. drain_factor in
  let sub_d = m.sub0 *. gate_factor *. d_drain in
  if vov <= 0. then (sub, sub_g, sub_d)
  else begin
    let idsat = idsat_at m vov in
    let d_idsat = m.alpha *. idsat /. vov in
    let vdsat = m.vdsat_frac *. vov in
    let clm = 1. +. (m.lambda *. vds) in
    if vds >= vdsat then
      ( sub +. (idsat *. clm),
        sub_g +. (d_idsat *. clm),
        sub_d +. (idsat *. m.lambda) )
    else begin
      let x = vds /. vdsat in
      let shape = (2. -. x) *. x in
      (* x depends on vgs through vdsat: dx/dvov = -x/vov. *)
      let strong_g =
        (d_idsat *. shape *. clm)
        -. (idsat *. (2. -. (2. *. x)) *. (x /. vov) *. clm)
      in
      let strong_d =
        (idsat *. (2. -. (2. *. x)) /. vdsat *. clm)
        +. (idsat *. shape *. m.lambda)
      in
      (sub +. (idsat *. shape *. clm), sub_g +. strong_g, sub_d +. strong_d)
    end
  end

let channel_current_inst m ~vg ~vd ~vs =
  if m.nmos then begin
    if vd >= vs then forward_current m ~vgs:(vg -. vs) ~vds:(vd -. vs)
    else -.forward_current m ~vgs:(vg -. vd) ~vds:(vs -. vd)
  end
  else begin
    (* Mirror: the source of a pMOS is its higher-potential terminal; the
       conventional channel current then flows source -> drain, i.e. the
       drain->source current is negative. *)
    if vd <= vs then -.forward_current m ~vgs:(vs -. vg) ~vds:(vs -. vd)
    else forward_current m ~vgs:(vd -. vg) ~vds:(vd -. vs)
  end

let channel_current (dev : Device.params) ~vg ~vd ~vs =
  channel_current_inst (inst dev) ~vg ~vd ~vs

type deriv = { i : float; di_dvg : float; di_dvd : float; di_dvs : float }

(* Chain rule through the same drain/source swap and pMOS mirror as
   [channel_current]; [i] always equals [channel_current] at the same
   terminal voltages. *)
let channel_current_deriv_inst m ~vg ~vd ~vs =
  if m.nmos then begin
    if vd >= vs then
      let i, fg, fd = forward_current_deriv m ~vgs:(vg -. vs) ~vds:(vd -. vs) in
      { i; di_dvg = fg; di_dvd = fd; di_dvs = -.(fg +. fd) }
    else
      let i, fg, fd = forward_current_deriv m ~vgs:(vg -. vd) ~vds:(vs -. vd) in
      { i = -.i; di_dvg = -.fg; di_dvd = fg +. fd; di_dvs = -.fd }
  end
  else begin
    if vd <= vs then
      let i, fg, fd = forward_current_deriv m ~vgs:(vs -. vg) ~vds:(vs -. vd) in
      { i = -.i; di_dvg = fg; di_dvd = fd; di_dvs = -.(fg +. fd) }
    else
      let i, fg, fd = forward_current_deriv m ~vgs:(vd -. vg) ~vds:(vd -. vs) in
      { i; di_dvg = -.fg; di_dvd = fg +. fd; di_dvs = -.fd }
  end

let channel_current_deriv (dev : Device.params) ~vg ~vd ~vs =
  channel_current_deriv_inst (inst dev) ~vg ~vd ~vs

(* Batch entry points for the transient engine.  Keeping the loop on this
   side of the module boundary lets the whole current-equation chain
   inline into the loop body (the fully-inlined evaluators are too large
   to inline across modules), and the array-in/array-out signature keeps
   every float unboxed: the per-call boxing of three terminal voltages
   and a result was a measurable share of the engine's per-iteration
   allocation. *)

let channel_currents_into insts gn dn sn v out =
  for k = 0 to Array.length insts - 1 do
    out.(k) <-
      channel_current_inst insts.(k) ~vg:v.(gn.(k)) ~vd:v.(dn.(k))
        ~vs:v.(sn.(k))
  done

let channel_current_derivs_into insts gn dn sn v out =
  for k = 0 to Array.length insts - 1 do
    let d =
      channel_current_deriv_inst insts.(k) ~vg:v.(gn.(k)) ~vd:v.(dn.(k))
        ~vs:v.(sn.(k))
    in
    let o = 4 * k in
    out.(o) <- d.i;
    out.(o + 1) <- d.di_dvg;
    out.(o + 2) <- d.di_dvd;
    out.(o + 3) <- d.di_dvs
  done
