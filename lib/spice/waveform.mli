(** Sampled waveforms and the delay / slew measurements of characterization.

    Conventions (shared with {!Stimulus} and the NLDM tables):
    {ul
    {- propagation delay: 50 %-Vdd crossing of the input to 50 %-Vdd crossing
       of the output;}
    {- transition time (slew): time between the 20 % and 80 % Vdd crossings
       of the edge.}} *)

type t = { times : float array; values : float array }
(** Sample times are strictly increasing. *)

type direction = Rising | Falling

val value_at : t -> float -> float
(** Linear interpolation between samples; clamps outside the record. *)

val cross : t -> level:float -> direction:direction -> float option
(** First time the waveform crosses [level] in the given direction.
    Crossing times are located by linear bracketing and refined by
    inverse-quadratic interpolation over the neighbouring samples, so they
    are stable against resampling the same trajectory on a different
    adaptive step grid. *)

val cross_last : t -> level:float -> direction:direction -> float option
(** Last such crossing — robust to glitches before the final settling edge. *)

val slew : t -> direction:direction -> vdd:float -> float option
(** 20 %-80 % transition time of the final edge in [direction]: anchored
    on the last far-level crossing, paired with the matching near-level
    crossing {e at or before} it, so a partial re-transition after the
    measured edge (a multi-edge waveform) cannot break the pairing. *)

val delay :
  input:t -> output:t -> out_direction:direction -> vdd:float -> float option
(** 50 %-to-50 % propagation delay; the input edge direction is inferred as
    the opposite when the waveforms are inverting and the same otherwise, by
    choosing whichever input crossing exists (last one).  Negative delays are
    possible for very slow inputs driving fast gates. *)

val settled : t -> vdd:float -> tolerance:float -> bool
(** Whether the last sample is within [tolerance] of either rail. *)
