(** Adaptive backward-Euler transient engine.

    The solver integrates the node-voltage ODE of a {!Circuit.t} with
    backward Euler and a damped Newton iteration per step (dense LU on the
    free-node Jacobian, evaluated by finite differences — circuits here are
    single cells or short paths, a handful of free nodes).  The step size
    adapts to the largest per-step voltage change, including that of driven
    inputs, so slow 1 ns ramps and sub-10 ps edges are both resolved.

    Before [t = 0] the circuit is settled to a DC operating point by
    pseudo-transient continuation with inputs frozen at their [t <= 0]
    values. *)

type result
(** Transient run output: every accepted time point for every node. *)

type diagnostics = {
  rejected_steps : int;
      (** step attempts discarded (Newton failure or too-large voltage
          change) and retried at half the step size *)
  non_converged_steps : int;
      (** recorded ([t >= 0]) steps accepted at the [dt_min] floor without
          Newton convergence — a nonzero count means the waveform may be
          inaccurate and the run should be retried or discarded *)
  settle_non_converged : int;
      (** same, but during the pre-[t=0] DC settling march *)
  jacobian_refreshes : int;
      (** finite-difference Jacobian rebuilds over the whole run *)
  newton_iterations : int;
      (** Newton iterations over the whole run, DC settle included *)
}

type options = {
  dt_min : float;      (** floor on the step size [s] *)
  dt_max : float;      (** ceiling on the step size [s] *)
  dv_target : float;   (** per-step voltage change that keeps dt unchanged [V] *)
  dv_reject : float;   (** per-step change that rejects and halves dt [V] *)
  newton_tol : float;  (** Newton update norm for convergence [V] *)
  newton_max : int;    (** maximum Newton iterations per step *)
  settle_time : float; (** pseudo-transient DC settling duration [s] *)
  c_floor : float;     (** minimum grounded capacitance per free node [F] *)
}

val default_options : options

val transient :
  ?options:options ->
  ?init:(Circuit.node * float) list ->
  ?stop_when:(float -> float array -> bool) ->
  Circuit.t ->
  drives:(Circuit.node * Stimulus.t) list ->
  t_stop:float ->
  result
(** Runs from the settled operating point to [t_stop].  [init] seeds the
    free-node voltages before settling (defaults to 0 V).  [stop_when t v]
    is checked after every accepted step (with the full node-voltage
    vector); returning [true] ends the run early — used by characterization
    to cut the post-transition tail.
    @raise Invalid_argument if a drive targets a rail or [t_stop <= 0]. *)

val waveform : result -> Circuit.node -> Waveform.t
(** Sampled voltage of one node over [0, t_stop]. *)

val final_voltage : result -> Circuit.node -> float

val steps : result -> int
(** Number of accepted time steps (diagnostic). *)

val diagnostics : result -> diagnostics
(** Solver-health counters of the run; see {!diagnostics}. *)

val converged : result -> bool
(** [true] iff no recorded step was accepted without Newton convergence
    ([non_converged_steps = 0]). *)
