(** Adaptive backward-Euler transient engine.

    The solver integrates the node-voltage ODE of a {!Circuit.t} with
    backward Euler and a damped chord-Newton iteration per step.  The
    device linearization (analytic alpha-power derivatives from
    {!Mosfet.channel_current_deriv}; finite differences behind
    [fd_jacobian] for differential testing) is held fixed across Newton
    iterations {e and across accepted steps}, and is re-assembled only
    when the iteration stalls.  Its dense LU factorization is split into
    factor and solve phases: one factorization (flat row-major storage,
    partial pivoting) serves every iteration at a given step size, and a
    step-size change refactors without re-linearizing the devices.  The
    step size adapts to the largest per-step voltage change, including
    that of driven inputs, so slow 1 ns ramps and sub-10 ps edges are both
    resolved.

    Before [t = 0] the circuit is settled to a DC operating point by
    pseudo-transient continuation with inputs frozen at their [t <= 0]
    values; the settle march exits early once the state is stationary at
    the step-size ceiling ([settle_exit_dv]).

    A singular linear system (a collapsed LU pivot, e.g. a free node with
    no capacitance and no conduction path) is never papered over with a
    clamped pivot: the Newton attempt fails, the step is rejected, and the
    occurrence is counted in [singular_systems] (and the process-global
    [engine.singular_systems] counter). *)

type result
(** Transient run output: every accepted time point for every node. *)

type diagnostics = {
  rejected_steps : int;
      (** step attempts discarded (Newton failure, singular system, or
          too-large voltage change) and retried at half the step size *)
  non_converged_steps : int;
      (** recorded ([t >= 0]) steps accepted at the [dt_min] floor without
          Newton convergence — a nonzero count means the waveform may be
          inaccurate and the run should be retried or discarded *)
  settle_non_converged : int;
      (** same, but during the pre-[t=0] DC settling march *)
  jacobian_refreshes : int;
      (** device re-linearizations (Jacobian assemblies) over the whole
          run; with the chord scheme this is far below the step count *)
  newton_iterations : int;
      (** Newton iterations over the whole run, DC settle included *)
  singular_systems : int;
      (** LU factorizations that met a collapsed pivot; each one failed
          the Newton attempt into the step-rejection path *)
}

type options = {
  dt_min : float;      (** floor on the step size [s] *)
  dt_max : float;      (** ceiling on the step size [s] *)
  dv_target : float;   (** per-step voltage change that keeps dt unchanged [V] *)
  dv_reject : float;   (** per-step change that rejects and halves dt [V] *)
  newton_tol : float;  (** Newton update norm for convergence [V] *)
  newton_max : int;    (** maximum Newton iterations per step *)
  settle_time : float; (** pseudo-transient DC settling duration [s] *)
  c_floor : float;     (** minimum grounded capacitance per free node [F] *)
  fd_jacobian : bool;
      (** linearize devices by finite differences instead of the analytic
          derivatives — slower; kept for differential testing (default
          [false]) *)
  settle_exit_dv : float;
      (** stationarity threshold for the early settle exit [V]: the DC
          march stops after three consecutive converged steps at the [dt]
          ceiling that each moved no node by more than this; [0.] runs
          the full [settle_time] window *)
}

val default_options : options

val transient :
  ?options:options ->
  ?init:(Circuit.node * float) list ->
  ?stop_when:(float -> float array -> bool) ->
  Circuit.t ->
  drives:(Circuit.node * Stimulus.t) list ->
  t_stop:float ->
  result
(** Runs from the settled operating point to [t_stop].  [init] seeds the
    free-node voltages before settling (defaults to 0 V) — a warm start
    from a previously solved neighbouring operating point belongs here.
    [stop_when t v] is checked after every accepted step (with the full
    node-voltage vector); returning [true] ends the run early — used by
    characterization to cut the post-transition tail.
    @raise Invalid_argument if [t_stop <= 0], a drive targets a rail or
    an unknown node, two drives target the same node, or an [init] entry
    targets a rail, an unknown node, or a driven node. *)

val waveform : result -> Circuit.node -> Waveform.t
(** Sampled voltage of one node over [0, t_stop]. *)

val final_voltage : result -> Circuit.node -> float

val final_state : result -> float array
(** Final voltage of every node (indexed by node id). *)

val settled_state : result -> float array
(** Voltage of every node at [t = 0], i.e. the DC operating point the
    pre-roll settle converged to — the warm-start seed for a neighbouring
    run on the same circuit topology with the same [t <= 0] drive values
    (pass it as [init] there). *)

val steps : result -> int
(** Number of accepted time steps (diagnostic). *)

val diagnostics : result -> diagnostics
(** Solver-health counters of the run; see {!diagnostics}. *)

val converged : result -> bool
(** [true] iff no recorded step was accepted without Newton convergence
    ([non_converged_steps = 0]). *)
