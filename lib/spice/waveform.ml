type t = { times : float array; values : float array }
type direction = Rising | Falling

let value_at w time =
  let n = Array.length w.times in
  if n = 0 then invalid_arg "Waveform.value_at: empty waveform";
  if time <= w.times.(0) then w.values.(0)
  else if time >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    let i = Aging_util.Interp.bracket w.times time in
    let t0 = w.times.(i) and t1 = w.times.(i + 1) in
    let f = (time -. t0) /. (t1 -. t0) in
    w.values.(i) +. (f *. (w.values.(i + 1) -. w.values.(i)))
  end

(* Inverse quadratic through three consecutive samples: t as a Lagrange
   polynomial in v, evaluated at [level].  Only valid when the values are
   strictly monotone over the triple (t(v) is single-valued there); returns
   None otherwise so the caller falls back to linear. *)
let inv_quad_t w i0 i1 i2 level =
  let v0 = w.values.(i0) and v1 = w.values.(i1) and v2 = w.values.(i2) in
  if (v1 -. v0) *. (v2 -. v1) <= 0. then None
  else begin
    let t0 = w.times.(i0) and t1 = w.times.(i1) and t2 = w.times.(i2) in
    let d01 = v0 -. v1 and d02 = v0 -. v2 and d12 = v1 -. v2 in
    let l0 = (level -. v1) *. (level -. v2) /. (d01 *. d02) in
    let l1 = (level -. v0) *. (level -. v2) /. (-.(d01 *. d12)) in
    let l2 = (level -. v0) *. (level -. v1) /. (d02 *. d12) in
    Some ((l0 *. t0) +. (l1 *. t1) +. (l2 *. t2))
  end

(* Crossing time within segment [i, i+1].  The linear estimate is refined
   by inverse-quadratic interpolation over each three-sample neighbourhood
   of the segment (averaged when both sides apply), which removes the
   leading curvature term of the error — crossing times then barely move
   when the same trajectory is sampled on a different adaptive step grid.
   A refinement that leaves the bracketing segment is discarded: the
   crossing provably lies inside it. *)
let crossing_at w i level =
  let v0 = w.values.(i) and v1 = w.values.(i + 1) in
  let t0 = w.times.(i) and t1 = w.times.(i + 1) in
  let linear = t0 +. ((level -. v0) /. (v1 -. v0) *. (t1 -. t0)) in
  let n = Array.length w.times in
  let inside t = if t >= t0 && t <= t1 then Some t else None in
  let left =
    if i > 0 then Option.bind (inv_quad_t w (i - 1) i (i + 1) level) inside
    else None
  in
  let right =
    if i + 2 < n then Option.bind (inv_quad_t w i (i + 1) (i + 2) level) inside
    else None
  in
  match (left, right) with
  | Some a, Some b -> 0.5 *. (a +. b)
  | Some a, None | None, Some a -> a
  | None, None -> linear

let crosses w i level = function
  | Rising -> w.values.(i) < level && w.values.(i + 1) >= level
  | Falling -> w.values.(i) > level && w.values.(i + 1) <= level

let cross w ~level ~direction =
  let n = Array.length w.times in
  let rec go i =
    if i >= n - 1 then None
    else if crosses w i level direction then Some (crossing_at w i level)
    else go (i + 1)
  in
  go 0

let cross_last w ~level ~direction =
  let n = Array.length w.times in
  let rec go i =
    if i < 0 then None
    else if crosses w i level direction then Some (crossing_at w i level)
    else go (i - 1)
  in
  go (n - 2)

(* Last crossing at or before time [t_max] — the "matching" crossing of an
   edge anchored downstream.  Scanning for the globally-last crossing
   instead would pair levels from different edges: on a waveform with a
   full transition followed by a partial re-transition, the partial edge's
   crossing of one level can postdate the full edge's crossing of the
   other, which is exactly the multi-edge case the global search got
   wrong (it returned no slew at all). *)
let cross_last_at_or_before w ~level ~direction ~t_max =
  let n = Array.length w.times in
  let rec go i =
    if i < 0 then None
    else if crosses w i level direction then begin
      let t = crossing_at w i level in
      if t <= t_max then Some t else go (i - 1)
    end
    else go (i - 1)
  in
  go (n - 2)

let slew w ~direction ~vdd =
  let lo = 0.2 *. vdd and hi = 0.8 *. vdd in
  match direction with
  | Rising -> begin
    (* Anchor on the last 80% crossing, then find the matching 20% crossing
       at or before it so a single edge is measured. *)
    match cross_last w ~level:hi ~direction with
    | None -> None
    | Some t_hi -> begin
      match cross_last_at_or_before w ~level:lo ~direction ~t_max:t_hi with
      | Some t_lo -> Some (t_hi -. t_lo)
      | None -> None
    end
  end
  | Falling -> begin
    match cross_last w ~level:lo ~direction with
    | None -> None
    | Some t_lo -> begin
      match cross_last_at_or_before w ~level:hi ~direction ~t_max:t_lo with
      | Some t_hi -> Some (t_lo -. t_hi)
      | None -> None
    end
  end

let delay ~input ~output ~out_direction ~vdd =
  let mid = 0.5 *. vdd in
  let in_dir =
    (* Prefer the opposite direction (inverting stage); fall back to the same
       direction for non-inverting cells. *)
    let opposite = match out_direction with Rising -> Falling | Falling -> Rising in
    match cross_last input ~level:mid ~direction:opposite with
    | Some _ -> opposite
    | None -> out_direction
  in
  match
    ( cross_last input ~level:mid ~direction:in_dir,
      cross_last output ~level:mid ~direction:out_direction )
  with
  | Some t_in, Some t_out -> Some (t_out -. t_in)
  | None, _ | _, None -> None

let settled w ~vdd ~tolerance =
  let n = Array.length w.values in
  n > 0
  &&
  let v = w.values.(n - 1) in
  Float.abs v < tolerance || Float.abs (v -. vdd) < tolerance
