(** Alpha-power-law MOSFET current equations.

    Substitutes for BSIM4: a Sakurai-Newton alpha-power model with triode /
    saturation regions, channel-length modulation and a continuous
    subthreshold tail.  Mobility enters the drive current linearly and the
    threshold shift reduces the overdrive, which is exactly the coupling the
    paper exploits (Eq. 1: delay ∝ 1/Id, Id ≈ mu/2 (Vdd − Vth − ΔVth)^2),
    so aged devices slow down in the same first-order way as in HSPICE. *)

val thermal_voltage : float
(** kT/q at the nominal 350 K [V]. *)

val channel_current : Aging_physics.Device.params -> vg:float -> vd:float -> vs:float -> float
(** [channel_current dev ~vg ~vd ~vs] is the conventional current flowing
    from the drain terminal to the source terminal through the channel [A]
    (positive when a conducting nMOS has [vd > vs]).  Terminal symmetry
    (drain/source swap) and pMOS polarity are handled internally, so the
    caller can wire the device by position and forget about operating
    region. *)

val saturation_current : Aging_physics.Device.params -> vov:float -> float
(** Saturation current at overdrive [vov] (no channel-length modulation);
    0 for non-positive overdrive.  Exposed for calibration and tests. *)

type inst
(** A device compiled for the transient hot path: derived constants
    (effective threshold, geometry-scaled prefactors, inverse thermal
    slopes) folded once at construction, plus a memo of the
    overdrive-dependent strength term (the alpha-power [**] above
    threshold, the subthreshold [exp] below it).  Gates mostly sit on
    driven nodes and sources on rails, so the overdrive repeats across
    every chord-Newton iteration of a step; the memo pays the libm call
    once per input movement instead of once per residual evaluation.  It
    is keyed on the exact overdrive float, so a hit is always a
    pure-function memo hit — results are bit-identical with and without
    one.  Never share an [inst] between devices with different
    parameters. *)

val inst : Aging_physics.Device.params -> inst
(** Compile a device (memo starts empty). *)

val channel_current_inst : inst -> vg:float -> vd:float -> vs:float -> float
(** {!channel_current} through a compiled device — the transient engine's
    hot path, one [inst] per device instance. *)

type deriv = {
  i : float;       (** the channel current itself, = {!channel_current} *)
  di_dvg : float;  (** ∂I/∂vg at the operating point [A/V] *)
  di_dvd : float;  (** ∂I/∂vd *)
  di_dvs : float;  (** ∂I/∂vs *)
}

val channel_current_deriv :
  Aging_physics.Device.params -> vg:float -> vd:float -> vs:float -> deriv
(** [channel_current] together with its analytic partial derivatives with
    respect to the three terminal voltages — the device stamps of the
    transient engine's Jacobian.  Exact gradient of the implemented model
    on every branch (triode, saturation, subthreshold, swapped terminals);
    the model is continuous but only piecewise differentiable, so at region
    boundaries the one-sided derivative of the branch taken is returned.
    Verified against finite differences by the [jacobian-fd] oracle. *)

val channel_current_deriv_inst : inst -> vg:float -> vd:float -> vs:float -> deriv
(** {!channel_current_deriv} through a compiled device; see
    {!channel_current_inst}. *)

val channel_currents_into :
  inst array -> int array -> int array -> int array -> float array ->
  float array -> unit
(** [channel_currents_into insts gn dn sn v out] evaluates every compiled
    device at the node voltages [v] — device [k]'s terminals are nodes
    [gn.(k)]/[dn.(k)]/[sn.(k)] — and stores its channel current in
    [out.(k)].  The batch form exists for the engine's residual loop:
    arrays in, arrays out, so no float crosses the module boundary boxed. *)

val channel_current_derivs_into :
  inst array -> int array -> int array -> int array -> float array ->
  float array -> unit
(** Same batch shape for {!channel_current_deriv}: device [k]'s current
    and its three partial derivatives land in [out.(4k) .. 4k+3]
    (i, di_dvg, di_dvd, di_dvs) — the engine's Jacobian-assembly loop. *)
