type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------------------- printing ---------------------------- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* 17 significant digits round-trip any double; force a '.' or exponent so
   the value parses back as a Float, not an Int. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let indent n = for _ = 1 to n do Buffer.add_string b "  " done in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          if pretty then begin
            Buffer.add_char b '\n';
            indent (depth + 1)
          end;
          go (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char b '\n';
        indent depth
      end;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          if pretty then begin
            Buffer.add_char b '\n';
            indent (depth + 1)
          end;
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b (if pretty then "\": " else "\":");
          go (depth + 1) item)
        kvs;
      if pretty then begin
        Buffer.add_char b '\n';
        indent depth
      end;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ---------------------------- parsing ----------------------------- *)

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "offset %d: %s" !pos msg))
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "truncated escape";
        let e = text.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> add_utf8 b code
          | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match text.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literal: fall back to float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------------------- accessors --------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String "NaN" -> Some Float.nan
  | String "Infinity" -> Some Float.infinity
  | String "-Infinity" -> Some Float.neg_infinity
  | _ -> None

let of_float f =
  if Float.is_finite f then Float f
  else if Float.is_nan f then String "NaN"
  else if f > 0. then String "Infinity"
  else String "-Infinity"
