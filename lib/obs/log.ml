type level = Debug | Info | Warn | Quiet

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Quiet -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "quiet" | "off" | "none" -> Some Quiet
  | _ -> None

let current =
  ref
    (match Sys.getenv_opt "AGING_LOG" with
    | Some s -> Option.value (level_of_string s) ~default:Info
    | None -> Info)

let set_level l = current := l
let level () = !current
let enabled l = severity l >= severity !current

let label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Quiet -> "quiet"

let warnings = Metrics.counter "log.warnings"

let emit lvl sub fields msg =
  if lvl = Warn then Metrics.incr warnings;
  if enabled lvl then begin
    let suffix =
      match fields with
      | [] -> ""
      | kvs ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
    in
    Printf.eprintf "[%s][%s] %s%s\n%!" (label lvl) sub msg suffix
  end

let logf lvl ?(fields = []) sub fmt =
  Printf.ksprintf (emit lvl sub fields) fmt

let debugf ?fields sub fmt = logf Debug ?fields sub fmt
let infof ?fields sub fmt = logf Info ?fields sub fmt
let warnf ?fields sub fmt = logf Warn ?fields sub fmt
