type level = Debug | Info | Warn | Quiet

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Quiet -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "quiet" | "off" | "none" -> Some Quiet
  | _ -> None

let current =
  ref
    (match Sys.getenv_opt "AGING_LOG" with
    | Some s -> Option.value (level_of_string s) ~default:Info
    | None -> Info)

let set_level l = current := l
let level () = !current
let enabled l = severity l >= severity !current

let label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Quiet -> "quiet"

let warnings = Metrics.counter "log.warnings"

(* Process start on the monotonic clock; every line carries its offset so
   daemon stderr can be correlated with trace and flight-recorder dumps,
   which timestamp on the same clock. *)
let t0_mono = 1e-9 *. Int64.to_float (Monotonic_clock.now ())
let mono_offset () = (1e-9 *. Int64.to_float (Monotonic_clock.now ())) -. t0_mono

let emit lvl sub fields trace msg =
  if lvl = Warn then Metrics.incr warnings;
  if enabled lvl then begin
    let fields =
      match trace with
      | None -> fields
      | Some id -> fields @ [ ("trace", id) ]
    in
    let suffix =
      match fields with
      | [] -> ""
      | kvs ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
    in
    Printf.eprintf "[+%.3f][%s][%s] %s%s\n%!" (mono_offset ()) (label lvl) sub
      msg suffix
  end

let logf lvl ?(fields = []) ?trace sub fmt =
  Printf.ksprintf (emit lvl sub fields trace) fmt

let debugf ?fields ?trace sub fmt = logf Debug ?fields ?trace sub fmt
let infof ?fields ?trace sub fmt = logf Info ?fields ?trace sub fmt
let warnf ?fields ?trace sub fmt = logf Warn ?fields ?trace sub fmt
