let is_legal_head c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_legal c = is_legal_head c || (c >= '0' && c <= '9')

let sanitize_name name =
  if name = "" then "_"
  else begin
    let b = Buffer.create (String.length name + 1) in
    if not (is_legal_head name.[0]) then Buffer.add_char b '_';
    String.iter (fun c -> Buffer.add_char b (if is_legal c then c else '_')) name;
    Buffer.contents b
  end

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP text: escape backslash and newline (quotes are legal there). *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let le_str bound = if Float.is_finite bound then float_str bound else "+Inf"

let render_snapshot values =
  let b = Buffer.create 4096 in
  let header name kind orig =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help orig));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (orig, value) ->
      let name = sanitize_name orig in
      match value with
      | Metrics.Counter_value n ->
          header name "counter" orig;
          Buffer.add_string b (Printf.sprintf "%s_total %d\n" name n)
      | Metrics.Gauge_value g ->
          header name "gauge" orig;
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (float_str g))
      | Metrics.Histogram_value h ->
          header name "histogram" orig;
          let cum = ref 0 in
          List.iter
            (fun (bound, count) ->
              cum := !cum + count;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (le_str bound)
                   !cum))
            h.Metrics.hs_buckets;
          (* A snapshot from stored JSON may elide the +Inf bucket when it
             was empty; the exposition format requires it. *)
          (match List.rev h.Metrics.hs_buckets with
          | (bound, _) :: _ when not (Float.is_finite bound) -> ()
          | _ ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name
                   h.Metrics.hs_count));
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (float_str h.Metrics.hs_sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" name h.Metrics.hs_count))
    values;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let render () = render_snapshot (Metrics.snapshot ())

(* ---- stored-snapshot recovery (ledger records) ---- *)

let values_of_stored_json j =
  match j with
  | Json.Obj entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, entry) :: rest -> (
            let fail what =
              Error (Printf.sprintf "metric %s: %s" name what)
            in
            match Json.member "type" entry with
            | Some (Json.String "counter") -> (
                match Json.member "value" entry with
                | Some (Json.Int n) ->
                    go ((name, Metrics.Counter_value n) :: acc) rest
                | _ -> fail "counter without integer value")
            | Some (Json.String "gauge") -> (
                match Option.bind (Json.member "value" entry) Json.to_float with
                | Some g -> go ((name, Metrics.Gauge_value g) :: acc) rest
                | None -> fail "gauge without numeric value")
            | Some (Json.String "histogram") -> (
                match
                  ( Json.member "count" entry,
                    Option.bind (Json.member "sum" entry) Json.to_float,
                    Metrics.buckets_of_json entry )
                with
                | Some (Json.Int hs_count), Some hs_sum, Some hs_buckets ->
                    go
                      (( name,
                         Metrics.Histogram_value { hs_count; hs_sum; hs_buckets }
                       )
                      :: acc)
                      rest
                | _ -> fail "malformed histogram entry")
            | _ -> fail "missing or unknown type tag")
      in
      go [] entries
  | _ -> Error "metrics snapshot: expected an object"

let render_stored j = Result.map render_snapshot (values_of_stored_json j)

(* ---- parser ---- *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

exception Bad of string

let parse_labels line start =
  (* [line.[start] = '{'].  Returns (labels, index past '}'). *)
  let n = String.length line in
  let labels = ref [] in
  let i = ref (start + 1) in
  let rec skip_ws () = if !i < n && line.[!i] = ' ' then (incr i; skip_ws ()) in
  let parse_one () =
    skip_ws ();
    let name_start = !i in
    while !i < n && line.[!i] <> '=' do incr i done;
    if !i >= n then raise (Bad "label without '='");
    let lname = String.trim (String.sub line name_start (!i - name_start)) in
    incr i;
    if !i >= n || line.[!i] <> '"' then raise (Bad "label value not quoted");
    incr i;
    let b = Buffer.create 16 in
    let rec value () =
      if !i >= n then raise (Bad "unterminated label value")
      else
        match line.[!i] with
        | '"' -> incr i
        | '\\' ->
            if !i + 1 >= n then raise (Bad "trailing backslash");
            (match line.[!i + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | c -> Buffer.add_char b c);
            i := !i + 2;
            value ()
        | c ->
            Buffer.add_char b c;
            incr i;
            value ()
    in
    value ();
    labels := (lname, Buffer.contents b) :: !labels
  in
  let rec all () =
    skip_ws ();
    if !i >= n then raise (Bad "unterminated label set")
    else if line.[!i] = '}' then incr i
    else begin
      parse_one ();
      skip_ws ();
      if !i < n && line.[!i] = ',' then incr i;
      all ()
    end
  in
  all ();
  (List.rev !labels, !i)

let parse_sample_line line =
  let n = String.length line in
  let i = ref 0 in
  if n = 0 || not (is_legal_head line.[0]) then
    raise (Bad "sample line without a legal metric name");
  while !i < n && is_legal line.[!i] do incr i done;
  let s_name = String.sub line 0 !i in
  let s_labels, rest_at =
    if !i < n && line.[!i] = '{' then parse_labels line !i else ([], !i)
  in
  let rest = String.trim (String.sub line rest_at (n - rest_at)) in
  let value_str =
    match String.index_opt rest ' ' with
    | Some j -> String.sub rest 0 j (* ignore a trailing timestamp *)
    | None -> rest
  in
  match float_of_string_opt value_str with
  | Some s_value -> { s_name; s_labels; s_value }
  | None -> raise (Bad (Printf.sprintf "bad sample value %S" value_str))

let parse text =
  let lines = String.split_on_char '\n' text in
  let non_blank = List.filter (fun l -> String.trim l <> "") lines in
  match List.rev non_blank with
  | [] -> Error "empty exposition"
  | last :: _ when String.trim last <> "# EOF" ->
      Error "exposition does not end with # EOF"
  | _ -> (
      try
        Ok
          (List.filter_map
             (fun line ->
               let line = String.trim line in
               if line = "" || line.[0] = '#' then None
               else
                 match parse_sample_line line with
                 | s -> Some s
                 | exception Bad msg ->
                     raise (Bad (Printf.sprintf "%s: %s" msg line)))
             lines)
      with Bad msg -> Error msg)

let find samples ?(labels = []) name =
  List.find_map
    (fun s ->
      if
        s.s_name = name
        && List.for_all
             (fun (k, v) -> List.assoc_opt k s.s_labels = Some v)
             labels
      then Some s.s_value
      else None)
    samples
