(** Flight recorder: a fixed-capacity, domain-safe ring buffer of structured
    events that is always on at negligible cost.

    The service layer records one event per notable state transition (request
    admitted / started / completed / refused, worker death / respawn, deadline
    expiry, chaos injection).  The ring keeps the most recent [capacity]
    events; older ones are overwritten.  After a crash — or on demand via
    SIGQUIT or the [dump_flight] protocol request — the ring is dumped as
    JSONL, giving a post-mortem trail of the last few thousand transitions.

    Recording takes one mutex and one small allocation per event, so it is
    cheap enough to leave enabled in production and under the benchmarks.
    Events carry both a wall-clock and a monotonic timestamp: the wall time
    correlates with external logs, the monotonic time orders events reliably
    across clock adjustments.  Sequence numbers are assigned under the lock
    and are therefore unique and dense even when many domains record
    concurrently. *)

type event = {
  seq : int;  (** dense, unique, assigned in recording order *)
  t_wall : float;  (** [Unix.gettimeofday] at recording *)
  t_mono : float;  (** monotonic seconds ([Span.elapsed] clock) *)
  kind : string;  (** dotted event name, e.g. ["req.completed"] *)
  fields : (string * Json.t) list;  (** structured payload *)
}

type t

val create : ?capacity:int -> unit -> t
(** [create ()] makes an empty recorder.  [capacity] defaults to 4096 and
    must be at least 1. *)

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Resize the ring in place, keeping the newest [min cap surviving]
    events ([recorded] is unaffected).  Safe to call while other threads
    record.  @raise Invalid_argument when [cap < 1]. *)

val record : t -> ?fields:(string * Json.t) list -> string -> unit
(** [record t kind] appends an event, overwriting the oldest one when the
    ring is full.  Safe to call from any domain or thread. *)

val events : t -> event list
(** Surviving events, oldest first (ascending [seq]). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val overwritten : t -> int
(** How many events have been lost to ring wrap ([recorded - capacity],
    floored at 0). *)

val clear : t -> unit

val global : t
(** The process-global recorder used by the service layer.  Its initial
    capacity is [AGING_FLIGHT_CAP] when that environment variable holds a
    positive integer, 4096 otherwise; [relaware serve --flight-cap]
    resizes it via {!set_capacity} before traffic starts. *)

val note : ?fields:(string * Json.t) list -> string -> unit
(** [note kind] is [record global kind]. *)

val event_to_json : event -> Json.t

val event_of_json : Json.t -> (event, string) result

val to_jsonl : t -> string
(** One [event_to_json] line per surviving event, oldest first. *)

val dump_to_file : t -> string -> (unit, string) result
(** Write [to_jsonl] atomically-ish (single [output_string]) to a fresh
    file, truncating any previous dump.  Returns [Error msg] instead of
    raising so it can run from crash handlers. *)

val load_jsonl : string -> (event list, string) result
(** Parse a dump produced by [dump_to_file].  Blank lines are skipped;
    the first malformed line aborts with [Error]. *)
