(** Persistent, append-only run records ("the ledger").

    Telemetry (metrics, spans, logs) evaporates when the process exits;
    the ledger is the durable artifact: every [relaware] subcommand and
    every bench scenario can append one self-contained, schema-versioned
    JSON record — command line, git revision, wall time, outcome, the full
    metrics snapshot, recorded span roots, and domain QoR numbers
    (guardbands, periods, library delay statistics) — to
    [DIR/ledger.jsonl].  Records are diffable across commits
    ([relaware obs diff]), renderable as profiles ([obs report]) and
    exportable as Chrome traces ([obs trace]).

    Writes are a single [write(2)] on an [O_APPEND] descriptor, so
    concurrent writers interleave at whole-record granularity; the loader
    skips (and warns about) an unparseable trailing line rather than
    failing the read.

    Non-finite floats (a NaN duration, an infinite QoR) are not JSON; the
    ledger serializes them {e deterministically} as the strings ["NaN"],
    ["Infinity"] and ["-Infinity"] and maps them back on load, so a
    pathological run is still recorded instead of crashing the dump. *)

val schema_version : int
(** Version written into every record; the loader rejects records from a
    {e newer} schema (older ones must stay loadable). *)

type outcome = Finished | Failed of string

type record = {
  version : int;
  id : string;  (** 12 hex chars, unique per append *)
  tool : string;  (** producing binary, e.g. ["relaware"] or ["bench"] *)
  subcommand : string;
  argv : string list;
  git_rev : string option;  (** HEAD commit, when run inside a repository *)
  started_at : float;  (** Unix epoch [s] *)
  wall_s : float;  (** monotonic wall time of the run [s] *)
  outcome : outcome;
  qor : (string * float) list;  (** domain quality-of-result numbers *)
  notes : (string * Json.t) list;  (** free-form extras (jobs, config) *)
  metrics : Json.t;  (** full {!Metrics.to_json} snapshot *)
  spans : Span.t list;  (** recorded span roots *)
  dropped_spans : int;
}

(** {2 QoR notes}

    Process-global accumulators in the {!Metrics} registry idiom: code
    deep in a flow notes a QoR number as it is computed, and the next
    {!capture} drains everything noted since the previous capture into the
    record.  Safe from any domain. *)

val note_qor : string -> float -> unit
(** [note_qor "guardband_ps" v] — last write per name wins. *)

val note : string -> Json.t -> unit
(** Free-form note ([jobs], configuration echoes, ...). *)

(** {2 Record lifecycle} *)

val capture :
  tool:string ->
  subcommand:string ->
  ?argv:string list ->
  ?outcome:outcome ->
  ?spans:Span.t list ->
  started_at:float ->
  wall_s:float ->
  unit ->
  record
(** Snapshot the process telemetry into a record: drains the QoR/note
    accumulators, snapshots {!Metrics.to_json}, takes {!Span.roots}
    (unless [spans] overrides, e.g. one bench scenario's root), resolves
    the git revision, and mints a fresh [id].  [argv] defaults to
    [Sys.argv]. *)

val append : dir:string -> record -> string
(** Appends one record as a single JSON line to [dir/ledger.jsonl]
    (creating [dir] as needed) and returns the ledger path.  Safe under
    concurrent appenders. *)

val path : dir:string -> string
(** [dir/ledger.jsonl]. *)

val load : dir:string -> (record list, string) result
(** All parseable records, oldest first.  Corrupt lines are skipped with a
    warning; a missing ledger file is an [Error]. *)

val select : record list -> string -> (record, string) result
(** Resolve a RUN selector: an integer index ([0] oldest, [-1] newest) or
    a unique [id] prefix.  An in-range index wins; an all-digit selector
    that is out of range as an index (ids are random hex, so a prefix can
    be purely numeric) is retried as an id prefix. *)

val to_json : record -> Json.t
val of_json : Json.t -> (record, string) result

(** {2 Non-finite float convention} *)

val json_of_float : float -> Json.t
(** Finite floats encode as numbers; [nan]/[infinity]/[neg_infinity] as
    the strings ["NaN"]/["Infinity"]/["-Infinity"]. *)

val float_of_json : Json.t -> float option
(** Inverse of {!json_of_float}; also accepts plain JSON numbers. *)

val git_rev_opt : unit -> string option
(** Best-effort HEAD commit hash (walks up from the cwd to [.git/HEAD],
    following one level of ref indirection); [None] outside a repo. *)
