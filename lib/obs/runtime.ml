let word_mb = float_of_int (Sys.word_size / 8) /. 1e6
let mono_s () = 1e-9 *. Int64.to_float (Monotonic_clock.now ())

(* ---- procfs reads (all optional: absent on non-Linux platforms) ---- *)

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with _ -> None

(* "VmRSS:     123456 kB" -> 123456. *)
let status_kb body key =
  let prefix = key ^ ":" in
  let lines = String.split_on_char '\n' body in
  List.find_map
    (fun line ->
      if String.starts_with ~prefix line then
        let rest =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        let rest = String.trim rest in
        let num =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        float_of_string_opt num
      else None)
    lines

type proc_stats = {
  p_rss_mb : float option;
  p_hwm_mb : float option;
  p_threads : int option;
  p_fds : int option;
}

let proc_stats () =
  let status = read_file "/proc/self/status" in
  let kb key =
    Option.bind status (fun body -> status_kb body key)
    |> Option.map (fun kb -> kb /. 1024.)
  in
  let threads =
    Option.bind status (fun body -> status_kb body "Threads")
    |> Option.map int_of_float
  in
  let fds = try Some (Array.length (Sys.readdir "/proc/self/fd")) with _ -> None in
  { p_rss_mb = kb "VmRSS"; p_hwm_mb = kb "VmHWM"; p_threads = threads; p_fds = fds }

(* ---- gauges ---- *)

let g_minor_words = Metrics.gauge "runtime.gc.minor_words"
let g_promoted_words = Metrics.gauge "runtime.gc.promoted_words"
let g_major_words = Metrics.gauge "runtime.gc.major_words"
let g_minor_colls = Metrics.gauge "runtime.gc.minor_collections"
let g_major_colls = Metrics.gauge "runtime.gc.major_collections"
let g_compactions = Metrics.gauge "runtime.gc.compactions"
let g_heap_mb = Metrics.gauge "runtime.gc.heap_mb"
let g_top_heap_mb = Metrics.gauge "runtime.gc.top_heap_mb"
let g_minor_rate = Metrics.gauge "runtime.rate.minor_words_per_s"
let g_promoted_rate = Metrics.gauge "runtime.rate.promoted_words_per_s"
let g_majors_rate = Metrics.gauge "runtime.rate.majors_per_s"
let g_rss_mb = Metrics.gauge "runtime.mem.rss_mb"
let g_hwm_mb = Metrics.gauge "runtime.mem.hwm_mb"
let g_fds = Metrics.gauge "runtime.fds"
let g_threads = Metrics.gauge "runtime.threads"
let c_samples = Metrics.counter "runtime.samples"

type t = {
  clock : unit -> float;
  lock : Mutex.t;
  mutable last_t : float;  (* nan before the first sample *)
  mutable last_minor : float;
  mutable last_promoted : float;
  mutable last_majors : float;
  mutable period_s : float;
  mutable thread : Thread.t option;
  mutable stopping : bool;
}

let create ?(clock = mono_s) () =
  {
    clock;
    lock = Mutex.create ();
    last_t = Float.nan;
    last_minor = 0.;
    last_promoted = 0.;
    last_majors = 0.;
    period_s = 0.5;
    thread = None;
    stopping = false;
  }

let sample t =
  try
    let now = t.clock () in
    let st = Gc.quick_stat () in
    let proc = proc_stats () in
    Mutex.protect t.lock (fun () ->
        Metrics.set g_minor_words st.Gc.minor_words;
        Metrics.set g_promoted_words st.Gc.promoted_words;
        Metrics.set g_major_words st.Gc.major_words;
        Metrics.set g_minor_colls (float_of_int st.Gc.minor_collections);
        Metrics.set g_major_colls (float_of_int st.Gc.major_collections);
        Metrics.set g_compactions (float_of_int st.Gc.compactions);
        Metrics.set g_heap_mb (float_of_int st.Gc.heap_words *. word_mb);
        Metrics.set g_top_heap_mb (float_of_int st.Gc.top_heap_words *. word_mb);
        let dt = now -. t.last_t in
        if Float.is_finite dt && dt > 0. then begin
          Metrics.set g_minor_rate ((st.Gc.minor_words -. t.last_minor) /. dt);
          Metrics.set g_promoted_rate
            ((st.Gc.promoted_words -. t.last_promoted) /. dt);
          Metrics.set g_majors_rate
            ((float_of_int st.Gc.major_collections -. t.last_majors) /. dt)
        end;
        t.last_t <- now;
        t.last_minor <- st.Gc.minor_words;
        t.last_promoted <- st.Gc.promoted_words;
        t.last_majors <- float_of_int st.Gc.major_collections;
        Option.iter (Metrics.set g_rss_mb) proc.p_rss_mb;
        Option.iter (Metrics.set g_hwm_mb) proc.p_hwm_mb;
        Option.iter (fun n -> Metrics.set g_fds (float_of_int n)) proc.p_fds;
        Option.iter
          (fun n -> Metrics.set g_threads (float_of_int n))
          proc.p_threads;
        Metrics.incr c_samples)
  with _ -> ()

let running t = Mutex.protect t.lock (fun () -> t.thread <> None)

let loop t =
  let rec wait remaining =
    let stop = Mutex.protect t.lock (fun () -> t.stopping) in
    if (not stop) && remaining > 0. then begin
      let chunk = Float.min 0.05 remaining in
      Thread.delay chunk;
      wait (remaining -. chunk)
    end
    else stop
  in
  let rec go () =
    sample t;
    if not (wait t.period_s) then go ()
  in
  go ()

let start ?(period_s = 0.5) t =
  let spawn =
    Mutex.protect t.lock (fun () ->
        if t.thread <> None then false
        else begin
          t.period_s <- Float.max 0.01 period_s;
          t.stopping <- false;
          true
        end)
  in
  if spawn then begin
    let th = Thread.create loop t in
    Mutex.protect t.lock (fun () -> t.thread <- Some th)
  end

let stop t =
  let th =
    Mutex.protect t.lock (fun () ->
        let th = t.thread in
        t.stopping <- true;
        t.thread <- None;
        th)
  in
  Option.iter Thread.join th

let global = lazy (create ())
let sample_global () = sample (Lazy.force global)
let start_global ?period_s () = start ?period_s (Lazy.force global)
let stop_global () = stop (Lazy.force global)

type totals = {
  rss_mb : float option;
  hwm_mb : float option;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_mb : float;
  fds : int option;
  threads : int option;
}

let totals () =
  let st = Gc.quick_stat () in
  let proc = proc_stats () in
  {
    rss_mb = proc.p_rss_mb;
    hwm_mb = proc.p_hwm_mb;
    minor_words = st.Gc.minor_words;
    promoted_words = st.Gc.promoted_words;
    major_words = st.Gc.major_words;
    minor_collections = st.Gc.minor_collections;
    major_collections = st.Gc.major_collections;
    compactions = st.Gc.compactions;
    heap_mb = float_of_int st.Gc.heap_words *. word_mb;
    fds = proc.p_fds;
    threads = proc.p_threads;
  }
