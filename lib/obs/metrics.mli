(** Process-global metrics registry: counters, gauges and histograms.

    Every metric is identified by a dotted name ([subsystem.quantity], e.g.
    ["engine.steps"], ["cache.corrupt"]).  Handles are get-or-create — the
    first call registers the metric, later calls (anywhere in the process)
    return the same storage — so instrumented modules can create their
    handles at initialization and hot paths pay a single unboxed field
    update per event.

    The registry is process-global on purpose: a characterization build
    fans out through engine, retry, cache and STA layers that share no
    state, and the whole point is one place where "how many solver steps
    did this run take" can be answered afterwards.  Exporters ({!to_json},
    {!to_text}) serialize a consistent snapshot; {!reset} zeroes all
    registered metrics in place (handles stay valid), which tests use to
    isolate their deltas.

    Every operation is domain-safe: counters and gauges are single atomic
    words (an [incr] is one lock-free fetch-and-add, cheap enough for the
    solver's per-step counters), histogram observations take a
    per-histogram mutex, and registration/snapshot/reset serialize on a
    registry mutex — so the parallel characterization pool
    ({!Aging_util.Pool}) can drive shared handles from every worker domain
    and a dump still equals the sum of all workers' events. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create.  @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : ?by:int -> counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?bounds:float array -> string -> histogram
(** Get-or-create; [bounds] are ascending bucket upper bounds (an overflow
    bucket is implicit).  The default is fixed log-scale buckets in
    half-decade steps from 1 ns to ~3000 s, sized for wall-time
    observations in seconds.
    @raise Invalid_argument on non-ascending bounds or a kind conflict. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Number of observations. *)

val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** (upper bound, count) per bucket, ascending; the final pair has bound
    [infinity] (the overflow bucket).  Counts are per-bucket, not
    cumulative. *)

val percentile_of_buckets : (float * int) list -> float -> float
(** [percentile_of_buckets buckets q] approximates the [q]-quantile
    ([q] clamped to [0,1]) of the observations summarized by a
    {!bucket_counts}-shaped list.  Within the bucket holding the requested
    rank the value is interpolated geometrically (linear in log space —
    exact for log-uniform values in a log-spaced bucket); the first bucket
    interpolates linearly from 0 and the overflow bucket returns its
    finite lower bound.  [nan] when the buckets are empty. *)

val approx_percentile : histogram -> float -> float
(** [approx_percentile h q] is {!percentile_of_buckets} over [h]'s live
    buckets: an approximate quantile whose error is bounded by the bucket
    width (a factor of sqrt(10) for the default half-decade bounds). *)

(** {2 Snapshot and export} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

and histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;  (** as {!bucket_counts} *)
}

val value_by_name : string -> float option
(** Numeric read of one metric {e without} creating it: a counter's count,
    a gauge's value, a histogram's observation count; [None] if the name
    was never registered.  This is what QoR exporters (the service's
    ledger rows) use so that probing a metric cannot pollute the
    registry. *)

val snapshot : unit -> (string * value) list
(** All registered metrics, sorted by name. *)

val to_json : unit -> Json.t
(** Object keyed by metric name; each value carries a ["type"] tag and its
    data.  Histogram overflow bounds serialize as the string ["+Inf"]. *)

val to_text : unit -> string
(** One line per metric, for human eyes.  Histogram lines include
    approximate p50/p95 (from {!approx_percentile}) when non-empty. *)

val buckets_of_json : Json.t -> (float * int) list option
(** Recovers the bucket list from one histogram entry of a {!to_json}
    export (the value object keyed by the metric name), so percentiles can
    be computed from stored snapshots.  [None] if the entry is not a
    well-formed histogram encoding.  Note: empty buckets are elided by the
    export, which does not change any quantile. *)

val reset : unit -> unit
(** Zeroes every registered metric in place.  Handles held by instrumented
    modules remain valid (and registered) — this clears values, not the
    registry. *)
