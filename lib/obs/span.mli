(** Hierarchical timed spans.

    [with_ "characterize.cell" ~attrs:[("cell", "NAND2_X1")] f] times [f],
    records its nesting relative to enclosing spans, and captures the
    outcome — including an exception raised by [f], which closes the span
    (outcome [Raised]) before re-raising, so the span stack can never be
    left unbalanced.

    Two products come out of every span, at different costs:

    - Always: the duration is observed into the metrics histogram
      ["span.<name>"] (and a raise bumps ["span.<name>.errors"]).  This is
      cheap — two clock reads and a hashtable lookup — so instrumenting hot
      paths is fine.
    - When {!set_recording} is on: the full span tree (name, attributes,
      start time, duration, outcome, children) is kept for export via
      {!roots} / {!to_json}.  Recording is off by default; the CLI's
      [--trace] and the bench harness switch it on.  Completed child spans
      are capped (100k) to bound memory on huge builds — the cap drops
      children, never top-level spans, and {!dropped} reports the loss.

    The open-frame stack is per-domain (via {!Domain.DLS}): spans opened on
    a pool worker nest under that worker's own frames, and a span that
    completes with an empty domain-local stack is recorded as a top-level
    root (the shared root list and both counters are synchronized).  So in
    a parallel characterization the per-arc spans of worker domains appear
    as additional roots rather than children of the spawning domain's
    span — timing histograms are unaffected. *)

type outcome = Completed | Raised of string

type t = {
  name : string;
  attrs : (string * string) list;
  t_start : float;  (** seconds, Unix epoch *)
  duration : float; (** seconds *)
  outcome : outcome;
  children : t list;  (** completed sub-spans, oldest first *)
}

val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the function inside a span named [name] (convention:
    [subsystem.operation]). *)

val set_recording : bool -> unit
val recording : unit -> bool

val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val dropped : unit -> int
(** Child spans discarded because the recording cap was reached. *)

val reset : unit -> unit
(** Clears recorded spans and the drop counter (not the recording flag). *)

val to_json : unit -> Json.t
(** [{"spans": [...], "dropped": n}] with children nested. *)

val now : unit -> float
(** Wall clock, seconds since the Unix epoch (the span timebase), exposed
    so callers can log durations without a second timing API. *)
