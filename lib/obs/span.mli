(** Hierarchical timed spans.

    [with_ "characterize.cell" ~attrs:[("cell", "NAND2_X1")] f] times [f],
    records its nesting relative to enclosing spans, and captures the
    outcome — including an exception raised by [f], which closes the span
    (outcome [Raised]) before re-raising, so the span stack can never be
    left unbalanced.

    Two products come out of every span, at different costs:

    - Always: the duration is observed into the metrics histogram
      ["span.<name>"] (and a raise bumps ["span.<name>.errors"]).  This is
      cheap — two clock reads and a hashtable lookup — so instrumenting hot
      paths is fine.
    - When {!set_recording} is on: the full span tree (name, attributes,
      start time, duration, outcome, children) is kept for export via
      {!roots} / {!to_json}.  Recording is off by default; the CLI's
      [--trace] and the bench harness switch it on.  Completed child spans
      are capped (100k) to bound memory on huge builds — the cap drops
      children, never top-level spans, and {!dropped} reports the loss.

    The open-frame stack is per-domain (via {!Domain.DLS}): spans opened on
    a pool worker nest under that worker's own frames, and a span that
    completes with an empty domain-local stack is recorded as a top-level
    root (the shared root list and both counters are synchronized).  So in
    a parallel characterization the per-arc spans of worker domains appear
    as additional roots rather than children of the spawning domain's
    span — timing histograms are unaffected. *)

type outcome = Completed | Raised of string

type t = {
  name : string;
  attrs : (string * string) list;
  t_start : float;  (** seconds, Unix epoch (display timestamp) *)
  duration : float; (** seconds, measured on the monotonic clock *)
  outcome : outcome;
  children : t list;  (** completed sub-spans, oldest first *)
}

val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the function inside a span named [name] (convention:
    [subsystem.operation]). *)

val emit : t -> unit
(** Records an externally assembled, already-completed span tree as a
    top-level root (subject to {!recording} and the span cap).  For
    instrumentation whose lifetime crosses threads or domains — e.g. the
    server's per-request phase spans, which start on a connection thread
    and finish on a worker domain — where [with_]'s domain-local stack
    does not apply.  Unlike [with_], no ["span.<name>"] histogram is
    observed; such callers keep their own latency histograms. *)

val set_recording : bool -> unit
val recording : unit -> bool

val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val dropped : unit -> int
(** Child spans discarded because the recording cap was reached. *)

val reset : unit -> unit
(** Clears recorded spans and the drop counter (not the recording flag). *)

val to_json : unit -> Json.t
(** [{"spans": [...], "dropped": n}] with children nested. *)

val span_to_json : t -> Json.t
(** The encoding of one span tree (an element of [to_json]'s ["spans"]
    list); {!of_json} is its inverse. *)

val now : unit -> float
(** Wall clock, seconds since the Unix epoch — the timebase of [t_start]
    and of displayed timestamps.  Not suitable for measuring durations:
    an NTP step moves it. *)

val elapsed : unit -> float
(** Monotonic clock, seconds since an arbitrary process-local origin
    (CLOCK_MONOTONIC).  This is the timebase span durations are measured
    on; subtract two readings to time an interval that survives wall-clock
    adjustments. *)

val of_json : Json.t -> (t, string) result
(** Inverse of the per-span encoding used by {!to_json} (one element of
    its ["spans"] list).  [Error msg] names the first malformed field. *)
