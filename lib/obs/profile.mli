(** Inclusive/self-time profiles aggregated from recorded span trees.

    One row per distinct span name: call count, total (inclusive) time,
    self time (inclusive minus direct children — unclamped, so self times
    telescope and their sum over a tree equals the root's duration
    exactly), and optional p50/p95 supplied by a percentile source
    (typically {!Metrics.approx_percentile} over the ["span.<name>"]
    histogram, or {!Metrics.percentile_of_buckets} over a stored
    snapshot). *)

type row = {
  name : string;
  count : int;
  total_s : float;  (** inclusive seconds *)
  self_s : float;   (** exclusive seconds (can be marginally negative) *)
  p50_s : float option;
  p95_s : float option;
}

val of_spans :
  ?percentile:(string -> float -> float option) -> Span.t list -> row list
(** Aggregate the given trees; rows sorted by self time, largest first.
    [percentile name q] supplies the quantile columns. *)

val total_self : row list -> float
(** Sum of self times — equals {!total_roots} of the profiled trees. *)

val total_roots : Span.t list -> float
(** Sum of the root durations. *)

val to_table : ?top:int -> row list -> string
(** Render via {!Aging_util.Tablefmt}; [top] truncates to the hottest N
    rows (0 = all).  The [self%] column is relative to the whole profile,
    not the shown subset. *)
