(** Ledger time-series analytics: trends, sparklines and drift gates.

    [relaware obs diff] compares a run against {e one} baseline; a slow
    regression that moves a few percent per run walks straight through
    such pairwise gates.  This module looks at the last N ledger records
    instead: it extracts one series per QoR row (plus the standard health
    counters out of each record's stored metrics snapshot), renders
    terminal sparklines, and flags drift with a robust z-score — the
    candidate's deviation from the trailing window's median, scaled by
    1.4826 x the median absolute deviation (the MAD-consistent estimate
    of sigma).  Median/MAD rather than mean/stddev so one earlier outlier
    run cannot inflate the scale and mask real drift.

    Health counters (retries, repairs, corrupt cache hits, stalled
    workers) gate {e one-sided}: only an increase is drift — a run with
    fewer faults than usual is good news, not a regression. *)

val median : float array -> float
(** [nan] on an empty array; ignores NaN entries. *)

val mad : float array -> float
(** Median absolute deviation around {!median}; [nan] on empty input. *)

type verdict = {
  z : float;  (** robust z-score; [infinity] for a move off a flat window *)
  drifting : bool;
}

val drift :
  ?one_sided:bool -> z_thresh:float -> window:float array -> float -> verdict
(** [drift ~z_thresh ~window x] scores candidate [x] against the trailing
    [window].  A flat window (MAD ~ 0) uses a small relative tolerance:
    matching the median is fine, any real move is infinite z.  With
    [one_sided] (health counters), [x <= median] never drifts. *)

val sparkline : float array -> string
(** One block character per value, min..max scaled over eight levels;
    NaN renders as a space.  Empty input gives the empty string. *)

(** {2 Series extraction and gating over ledger records} *)

type row = {
  r_name : string;
  r_values : float array;  (** oldest first, one per record holding the row *)
  r_one_sided : bool;  (** health counter: gate increases only *)
}

val default_health_counters : string list

val rows_of_records :
  ?health_counters:string list -> Run_ledger.record list -> row list
(** One row per QoR name seen in the records (two-sided), plus one per
    [health_counters] entry found in the stored metrics snapshots
    (one-sided), sorted by name.  Records lacking a row are skipped in
    that row's series. *)

type status = Pass | Drift | Short

type gated = {
  g_row : row;
  g_median : float;  (** of the trailing window (all but the last value) *)
  g_last : float;
  g_z : float;
  g_status : status;
      (** [Short]: window smaller than [min_window] — informational only *)
}

val gate : ?z_thresh:float -> ?min_window:int -> row -> gated
(** Score a row's newest value against its trailing window.
    [z_thresh] defaults to 4.0, [min_window] to 4. *)
