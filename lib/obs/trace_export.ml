(* Chrome trace_event export of recorded span trees.

   Every span becomes one "complete" event (ph:"X", microsecond ts/dur).
   Thread ids encode concurrency: root spans are packed onto lanes by
   interval partitioning — a root overlapping an earlier root in time gets
   a fresh lane — so the spans of worker domains (which surface as extra
   roots, see Span) render as parallel tracks under one pid in
   Perfetto/chrome://tracing, while sequential roots (bench scenarios)
   share a track.  Children inherit their root's lane, giving the usual
   nested flame rendering. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
  ev_args : (string * string) list;
}

let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let rec emit_span ~base ~tid acc (s : Span.t) =
  let args =
    s.Span.attrs
    @
    match s.Span.outcome with
    | Span.Completed -> []
    | Span.Raised msg -> [ ("raised", msg) ]
  in
  let ev =
    {
      ev_name = s.Span.name;
      ev_cat = category s.Span.name;
      ev_ts_us = (s.Span.t_start -. base) *. 1e6;
      ev_dur_us = s.Span.duration *. 1e6;
      ev_tid = tid;
      ev_args = args;
    }
  in
  List.fold_left (emit_span ~base ~tid) (ev :: acc) s.Span.children

(* Greedy interval partitioning over (start, start + duration): roots
   sorted by start time land on the first lane that is already idle.  The
   small epsilon keeps back-to-back sequential spans (end time == next
   start, up to clock granularity) on one lane. *)
let assign_lanes roots =
  let eps = 1e-9 in
  let sorted =
    List.stable_sort
      (fun (a : Span.t) (b : Span.t) -> Float.compare a.Span.t_start b.Span.t_start)
      roots
  in
  let lanes : float array ref = ref [||] in
  List.map
    (fun (s : Span.t) ->
      let finish = s.Span.t_start +. Float.max 0. s.Span.duration in
      let rec free i =
        if i >= Array.length !lanes then begin
          lanes := Array.append !lanes [| finish |];
          i
        end
        else if !lanes.(i) <= s.Span.t_start +. eps then begin
          !lanes.(i) <- finish;
          i
        end
        else free (i + 1)
      in
      (s, 1 + free 0))
    sorted

let events roots =
  let base =
    List.fold_left
      (fun acc (s : Span.t) -> Float.min acc s.Span.t_start)
      infinity roots
  in
  let base = if Float.is_finite base then base else 0. in
  assign_lanes roots
  |> List.fold_left (fun acc (s, tid) -> emit_span ~base ~tid acc s) []
  |> List.rev

(* Chrome requires numeric ts/dur: a non-finite timing (possible only in
   a rehydrated pathological record) clamps to 0 rather than producing a
   file the viewer rejects. *)
let finite f = if Float.is_finite f then f else 0.

let event_to_json pid ev =
  Json.Obj
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String "X");
      ("ts", Json.Float (finite ev.ev_ts_us));
      ("dur", Json.Float (finite ev.ev_dur_us));
      ("pid", Json.Int pid);
      ("tid", Json.Int ev.ev_tid);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.ev_args) );
    ]

let to_json ?(pid = 1) roots =
  Json.List (List.map (event_to_json pid) (events roots))

let to_string ?pid ?(pretty = false) roots =
  Json.to_string ~pretty (to_json ?pid roots)
