(* Persistent run records: one JSON object per line, appended to
   runs/ledger.jsonl.  Concurrency model: the whole record is serialized
   into one buffer and written with a single write(2) on an O_APPEND
   descriptor, so concurrent writers interleave at record granularity and
   a reader never sees a torn line (short of a crash mid-write, which the
   loader tolerates by skipping the unparseable tail). *)

let schema_version = 1

type outcome = Finished | Failed of string

type record = {
  version : int;
  id : string;
  tool : string;
  subcommand : string;
  argv : string list;
  git_rev : string option;
  started_at : float;
  wall_s : float;
  outcome : outcome;
  qor : (string * float) list;
  notes : (string * Json.t) list;
  metrics : Json.t;
  spans : Span.t list;
  dropped_spans : int;
}

(* ----------------------- non-finite floats ------------------------ *)

(* The Json printer rejects non-finite floats (they are not JSON).  A run
   record must still be appendable when a duration or QoR value went
   non-finite — that is exactly the run one wants recorded — so the ledger
   uses [Json.of_float]'s deterministic string encoding and maps the
   strings back on load. *)
let json_of_float = Json.of_float
let float_of_json = Json.to_float

(* --------------------------- QoR notes ---------------------------- *)

(* Process-global accumulators, mirroring the Metrics registry idiom: a
   subcommand deep in the flow notes "qor.guardband_ps = 42.1" and the
   telemetry finalizer drains everything noted since the last capture into
   the record.  Guarded by one mutex; noted from the main domain in
   practice, but safe from workers. *)
let note_lock = Mutex.create ()
let noted_qor : (string * float) list ref = ref []
let noted : (string * Json.t) list ref = ref []

let note_qor name v =
  Mutex.protect note_lock (fun () ->
      noted_qor := (name, v) :: List.remove_assoc name !noted_qor)

let note name v =
  Mutex.protect note_lock (fun () ->
      noted := (name, v) :: List.remove_assoc name !noted)

let drain_notes () =
  Mutex.protect note_lock (fun () ->
      let q = List.rev !noted_qor and n = List.rev !noted in
      noted_qor := [];
      noted := [];
      (q, n))

(* ---------------------------- git rev ----------------------------- *)

(* Best-effort HEAD discovery without shelling out: walk up from the cwd
   to the first .git/HEAD, follow one level of "ref:" indirection through
   the loose ref or packed-refs.  Any failure is None — a ledger must
   append fine outside a repository. *)
let read_file_opt path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception End_of_file -> None)
  | exception Sys_error _ -> None

let git_rev_opt () =
  let rec find_git dir depth =
    if depth > 16 then None
    else
      let head = Filename.concat dir ".git/HEAD" in
      if Sys.file_exists head then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> None
  | Some root -> (
    match read_file_opt (Filename.concat root ".git/HEAD") with
    | None -> None
    | Some head -> (
      let head = String.trim head in
      match
        if String.length head > 5 && String.sub head 0 5 = "ref: " then
          let refname = String.sub head 5 (String.length head - 5) in
          match
            read_file_opt (Filename.concat root (".git/" ^ refname))
          with
          | Some hash -> Some (String.trim hash)
          | None -> (
            (* loose ref absent: look the ref up in packed-refs *)
            match read_file_opt (Filename.concat root ".git/packed-refs") with
            | None -> None
            | Some packed ->
              String.split_on_char '\n' packed
              |> List.find_map (fun line ->
                     match String.index_opt line ' ' with
                     | Some i
                       when String.sub line (i + 1)
                              (String.length line - i - 1)
                            = refname ->
                       Some (String.sub line 0 i)
                     | _ -> None))
        else Some head
      with
      | Some hash
        when String.length hash >= 7
             && String.for_all
                  (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                  hash ->
        Some hash
      | _ -> None))

(* ---------------------------- capture ----------------------------- *)

let capture_seq = Atomic.make 0

let capture ~tool ~subcommand ?(argv = Array.to_list Sys.argv)
    ?(outcome = Finished) ?spans ~started_at ~wall_s () =
  (* Refresh the runtime.* gauges so every record's metrics snapshot
     carries the process health (GC totals, RSS, fds) of its run. *)
  Runtime.sample_global ();
  let qor, notes = drain_notes () in
  let spans = match spans with Some s -> s | None -> Span.roots () in
  let id =
    String.sub
      (Digest.to_hex
         (Digest.string
            (Printf.sprintf "%.9f:%d:%d:%s" started_at (Unix.getpid ())
               (Atomic.fetch_and_add capture_seq 1)
               (String.concat "\x00" argv))))
      0 12
  in
  {
    version = schema_version;
    id;
    tool;
    subcommand;
    argv;
    git_rev = git_rev_opt ();
    started_at;
    wall_s;
    outcome;
    qor;
    notes;
    metrics = Metrics.to_json ();
    spans;
    dropped_spans = Span.dropped ();
  }

(* -------------------------- (de)serialize -------------------------- *)

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int r.version);
      ("id", Json.String r.id);
      ("tool", Json.String r.tool);
      ("subcommand", Json.String r.subcommand);
      ("argv", Json.List (List.map (fun a -> Json.String a) r.argv));
      ( "git_rev",
        match r.git_rev with Some h -> Json.String h | None -> Json.Null );
      ("started_at", json_of_float r.started_at);
      ("wall_s", json_of_float r.wall_s);
      ( "outcome",
        match r.outcome with
        | Finished -> Json.String "ok"
        | Failed msg -> Json.Obj [ ("failed", Json.String msg) ] );
      ("qor", Json.Obj (List.map (fun (k, v) -> (k, json_of_float v)) r.qor));
      ("notes", Json.Obj r.notes);
      ("metrics", r.metrics);
      ("spans", Json.List (List.map Span.span_to_json r.spans));
      ("dropped_spans", Json.Int r.dropped_spans);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field key =
    match Json.member key json with
    | Some v -> Result.Ok v
    | None -> Result.Error (Printf.sprintf "record: missing %S" key)
  in
  let string_field key =
    let* v = field key in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "record: %S is not a string" key)
  in
  let float_field key =
    let* v = field key in
    match float_of_json v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "record: %S is not a number" key)
  in
  let* version =
    match field "schema_version" with
    | Ok (Json.Int v) -> Ok v
    | Ok _ -> Error "record: \"schema_version\" is not an integer"
    | Error _ as e -> e
  in
  if version > schema_version then
    Error
      (Printf.sprintf "record: schema version %d is newer than supported %d"
         version schema_version)
  else
    let* id = string_field "id" in
    let* tool = string_field "tool" in
    let* subcommand = string_field "subcommand" in
    let* argv =
      match field "argv" with
      | Ok (Json.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "record: argv element is not a string")
          items (Ok [])
      | Ok _ -> Error "record: \"argv\" is not a list"
      | Error _ as e -> e
    in
    let git_rev =
      match Json.member "git_rev" json with
      | Some (Json.String h) -> Some h
      | _ -> None
    in
    let* started_at = float_field "started_at" in
    let* wall_s = float_field "wall_s" in
    let* outcome =
      match field "outcome" with
      | Ok (Json.String "ok") -> Ok Finished
      | Ok (Json.Obj [ ("failed", Json.String msg) ]) -> Ok (Failed msg)
      | Ok _ -> Error "record: unrecognized \"outcome\""
      | Error _ as e -> e
    in
    let* qor =
      match field "qor" with
      | Ok (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            match float_of_json v with
            | Some f -> Ok ((k, f) :: acc)
            | None -> Error (Printf.sprintf "record: qor %S is not a number" k))
          kvs (Ok [])
      | Ok _ -> Error "record: \"qor\" is not an object"
      | Error _ as e -> e
    in
    let notes =
      match Json.member "notes" json with Some (Json.Obj kvs) -> kvs | _ -> []
    in
    let* metrics = field "metrics" in
    let* spans =
      match field "spans" with
      | Ok (Json.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* span = Span.of_json item in
            Ok (span :: acc))
          items (Ok [])
      | Ok _ -> Error "record: \"spans\" is not a list"
      | Error _ as e -> e
    in
    let dropped_spans =
      match Json.member "dropped_spans" json with
      | Some (Json.Int n) -> n
      | _ -> 0
    in
    Ok
      {
        version;
        id;
        tool;
        subcommand;
        argv;
        git_rev;
        started_at;
        wall_s;
        outcome;
        qor;
        notes;
        metrics;
        spans;
        dropped_spans;
      }

(* ----------------------------- append ----------------------------- *)

let ledger_file = "ledger.jsonl"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path ~dir = Filename.concat dir ledger_file

let append ~dir record =
  mkdir_p dir;
  let line = Json.to_string (to_json record) ^ "\n" in
  let fd =
    Unix.openfile (path ~dir)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* One write per record: O_APPEND makes concurrent appends land as
         whole lines (the buffer is far below PIPE_BUF-scale sizes where
         the kernel would split a write only on ENOSPC/signals, which the
         loop below resumes). *)
      let n = String.length line in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd line !written (n - !written)
      done);
  path ~dir

(* ------------------------------ load ------------------------------ *)

let load ~dir =
  let file = path ~dir in
  match read_file_opt file with
  | None -> Error (Printf.sprintf "%s: no such ledger" file)
  | Some text ->
    let lines =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.trim l <> "")
    in
    let total = List.length lines in
    let records =
      List.mapi (fun i line -> (i, line)) lines
      |> List.filter_map (fun (i, line) ->
             match Json.of_string line with
             | json -> (
               match of_json json with
               | Ok r -> Some r
               | Error msg ->
                 Log.warnf "ledger" "%s line %d skipped: %s" file (i + 1) msg;
                 None)
             | exception Json.Parse_error msg ->
               (* The unparseable tail of the file is expected under a
                  concurrent writer; anything else is corruption worth a
                  warning either way. *)
               Log.warnf "ledger" "%s line %d unparseable (%s)%s" file (i + 1)
                 msg
                 (if i = total - 1 then " — in-flight append?" else "");
               None)
    in
    Ok records

let select records sel =
  let n = List.length records in
  let by_prefix ~fallback =
    let prefix_of r =
      String.length r.id >= String.length sel
      && String.sub r.id 0 (String.length sel) = sel
    in
    match List.filter prefix_of records with
    | [ r ] -> Ok r
    | [] -> Error (fallback ())
    | _ :: _ -> Error (Printf.sprintf "run id prefix %S is ambiguous" sel)
  in
  match int_of_string_opt sel with
  | Some i ->
    let idx = if i < 0 then n + i else i in
    if idx >= 0 && idx < n then Ok (List.nth records idx)
    else
      (* Ids are random hex, so an all-digit selector ("914236") can also
         be an id prefix; an index that cannot resolve falls back to
         prefix matching rather than refusing outright. *)
      by_prefix ~fallback:(fun () ->
          Printf.sprintf "run %s out of range (ledger has %d record%s)" sel n
            (if n = 1 then "" else "s"))
  | None ->
    by_prefix ~fallback:(fun () ->
        Printf.sprintf "no run with id prefix %S" sel)
