(** Chrome [trace_event] export of recorded span trees.

    [to_json roots] converts span trees (from {!Span.roots} or a ledger
    record) into a JSON array of complete events — [ph:"X"], microsecond
    [ts]/[dur], one [pid] — loadable directly in Perfetto or
    chrome://tracing.  Span attributes (and a raised outcome) become the
    event's [args].

    Thread ids encode concurrency: root spans are packed onto lanes by
    greedy interval partitioning, so roots that overlap in time — the
    spans of pool worker domains surface as extra roots — get distinct
    [tid]s and render as parallel tracks, while strictly sequential roots
    (bench scenarios) share one track.  Children inherit their root's
    [tid].  Timestamps are relative to the earliest root start. *)

val to_json : ?pid:int -> Span.t list -> Json.t
(** The event array ([pid] defaults to 1). *)

val to_string : ?pid:int -> ?pretty:bool -> Span.t list -> string
(** [Json.to_string] of {!to_json}. *)
