type event = {
  seq : int;
  t_wall : float;
  t_mono : float;
  kind : string;
  fields : (string * Json.t) list;
}

type t = {
  mutable ring : event option array;
  lock : Mutex.t;
  mutable next_seq : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flightrec.create: capacity must be >= 1";
  { ring = Array.make capacity None; lock = Mutex.create (); next_seq = 0 }

let capacity t = Mutex.protect t.lock (fun () -> Array.length t.ring)

let set_capacity t cap =
  if cap < 1 then invalid_arg "Flightrec.set_capacity: capacity must be >= 1";
  Mutex.protect t.lock (fun () ->
      if cap <> Array.length t.ring then begin
        (* Keep the newest [cap] surviving events.  Their seqs are
           consecutive, so [seq mod cap] slots stay collision-free. *)
        let surviving =
          Array.fold_right
            (fun slot acc -> match slot with Some e -> e :: acc | None -> acc)
            t.ring []
          |> List.sort (fun a b -> compare b.seq a.seq)
        in
        let ring = Array.make cap None in
        List.iteri
          (fun i e -> if i < cap then ring.(e.seq mod cap) <- Some e)
          surviving;
        t.ring <- ring
      end)

let mono_s () = 1e-9 *. Int64.to_float (Monotonic_clock.now ())

(* Timestamps are captured outside the lock, so wall/mono times of
   concurrently recorded events may be microscopically out of [seq] order;
   [seq] is the authoritative ordering. *)
let record t ?(fields = []) kind =
  let t_wall = Unix.gettimeofday () in
  let t_mono = mono_s () in
  Mutex.protect t.lock (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.ring.(seq mod Array.length t.ring) <-
        Some { seq; t_wall; t_mono; kind; fields })

let recorded t = Mutex.protect t.lock (fun () -> t.next_seq)
let overwritten t = max 0 (recorded t - capacity t)

let events t =
  let surviving =
    Mutex.protect t.lock (fun () ->
        Array.fold_right
          (fun slot acc -> match slot with Some e -> e :: acc | None -> acc)
          t.ring [])
  in
  List.sort (fun a b -> compare a.seq b.seq) surviving

let clear t =
  Mutex.protect t.lock (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next_seq <- 0)

(* The global ring's initial capacity honours AGING_FLIGHT_CAP so operators
   can size the post-mortem window without a CLI flag (daemons launched from
   supervisors often only control the environment).  Bad values fall back to
   the default rather than aborting the process at module init. *)
let env_capacity () =
  match Sys.getenv_opt "AGING_FLIGHT_CAP" with
  | None | Some "" -> default_capacity
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> default_capacity)

let global = create ~capacity:(env_capacity ()) ()
let note ?fields kind = record global ?fields kind

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("t", Json.of_float e.t_wall);
      ("mono", Json.of_float e.t_mono);
      ("kind", Json.String e.kind);
      ("fields", Json.Obj e.fields);
    ]

let event_of_json j =
  let open Json in
  match (member "seq" j, member "kind" j) with
  | Some (Int seq), Some (String kind) ->
      let flt name =
        match member name j with
        | Some v -> ( match to_float v with Some f -> f | None -> Float.nan)
        | None -> Float.nan
      in
      let fields =
        match member "fields" j with Some (Obj kvs) -> kvs | _ -> []
      in
      Ok { seq; t_wall = flt "t"; t_mono = flt "mono"; kind; fields }
  | _ -> Error "flight event: missing seq or kind"

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let dump_to_file t path =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_jsonl t))
  with
  | () -> Ok ()
  | exception exn -> Error (Printexc.to_string exn)

let load_jsonl path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> loop acc (lineno + 1)
          | line -> (
              match Json.of_string line with
              | exception Json.Parse_error msg ->
                  Error (Printf.sprintf "line %d: bad JSON: %s" lineno msg)
              | j -> (
                  match event_of_json j with
                  | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                  | Ok e -> loop (e :: acc) (lineno + 1)))
        in
        loop [] 1)
  with
  | result -> result
  | exception Sys_error msg -> Error msg
