(** Leveled structured logging.

    Log lines go to stderr as
    [[+offset][level][subsystem] message key=value ...] — the leading
    [+seconds.millis] is the monotonic offset since process start, on the
    same clock as span durations and flight-recorder events, so daemon
    stderr can be correlated with trace dumps.  A library build can narrate
    progress without polluting stdout reports, and [-q] can silence it
    wholesale.  The level comes from the [AGING_LOG]
    environment variable (["debug"], ["info"], ["warn"], ["quiet"]; default
    ["info"]) and can be overridden programmatically (the CLI maps
    [--verbose] to [Debug] and [-q] to [Quiet]).

    Emitted warnings are also counted in the metrics registry
    (["log.warnings"]), so a metrics dump reveals whether a run warned even
    when the text output is gone. *)

type level = Debug | Info | Warn | Quiet

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
(** ["debug" | "info" | "warn" | "quiet"] (case-insensitive). *)

val enabled : level -> bool
(** Would a message at this level currently print? *)

val debugf :
  ?fields:(string * string) list ->
  ?trace:string ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a
(** [debugf sub fmt ...] logs at debug level under subsystem tag [sub];
    [fields] append structured [key=value] pairs and [trace] appends a
    final [trace=<id>] field tying the line to a request trace. *)

val infof :
  ?fields:(string * string) list ->
  ?trace:string ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val warnf :
  ?fields:(string * string) list ->
  ?trace:string ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a
