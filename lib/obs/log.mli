(** Leveled structured logging.

    Log lines go to stderr as [[level][subsystem] message key=value ...] so
    a library build can narrate progress without polluting stdout reports,
    and [-q] can silence it wholesale.  The level comes from the [AGING_LOG]
    environment variable (["debug"], ["info"], ["warn"], ["quiet"]; default
    ["info"]) and can be overridden programmatically (the CLI maps
    [--verbose] to [Debug] and [-q] to [Quiet]).

    Emitted warnings are also counted in the metrics registry
    (["log.warnings"]), so a metrics dump reveals whether a run warned even
    when the text output is gone. *)

type level = Debug | Info | Warn | Quiet

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
(** ["debug" | "info" | "warn" | "quiet"] (case-insensitive). *)

val enabled : level -> bool
(** Would a message at this level currently print? *)

val debugf :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a
(** [debugf sub fmt ...] logs at debug level under subsystem tag [sub];
    [fields] append structured [key=value] pairs. *)

val infof :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val warnf :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a
