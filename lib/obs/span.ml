type outcome = Completed | Raised of string

type t = {
  name : string;
  attrs : (string * string) list;
  t_start : float;
  duration : float;
  outcome : outcome;
  children : t list;
}

type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  f_t0 : float;   (* wall clock, for the displayed start timestamp *)
  f_m0 : float;   (* monotonic clock, for the duration *)
  mutable f_children : t list; (* newest first *)
}

(* Domain safety: the open-frame stack is domain-local state (a worker's
   spans nest under the worker's own frames, never under another domain's),
   while the completed-roots accumulator and its counters are shared and
   synchronized.  A span completed on a worker domain whose stack is empty
   becomes a top-level root — in a parallel characterization the per-arc
   spans therefore surface as roots of their own rather than children of
   the spawning domain's cell span. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let roots_lock = Mutex.create ()
let root_acc : t list ref = ref [] (* newest first; guarded by roots_lock *)
let recording_on = Atomic.make false
let recorded = Atomic.make 0
let dropped_count = Atomic.make 0
let max_recorded = 100_000

let now () = Unix.gettimeofday ()

(* CLOCK_MONOTONIC via bechamel's stub: immune to NTP steps, so span
   durations cannot go negative (or silently inflate) when the wall clock
   is adjusted mid-run.  Wall time is kept only for start timestamps. *)
let elapsed () = 1e-9 *. Int64.to_float (Monotonic_clock.now ())

let set_recording b = Atomic.set recording_on b
let recording () = Atomic.get recording_on
let roots () = Mutex.protect roots_lock (fun () -> List.rev !root_acc)
let dropped () = Atomic.get dropped_count

let reset () =
  Domain.DLS.get stack_key := [];
  Mutex.protect roots_lock (fun () -> root_acc := []);
  Atomic.set recorded 0;
  Atomic.set dropped_count 0

let with_ ?(attrs = []) name f =
  let stack = Domain.DLS.get stack_key in
  let t0 = now () in
  let m0 = elapsed () in
  let frame =
    { f_name = name; f_attrs = attrs; f_t0 = t0; f_m0 = m0; f_children = [] }
  in
  stack := frame :: !stack;
  let finish outcome =
    (* Pop back to (and past) our frame even if an exotic caller left
       deeper frames unclosed. *)
    let rec pop = function
      | fr :: rest when fr == frame -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    stack := pop !stack;
    let duration = elapsed () -. m0 in
    Metrics.observe (Metrics.histogram ("span." ^ name)) duration;
    (match outcome with
    | Raised _ -> Metrics.incr (Metrics.counter ("span." ^ name ^ ".errors"))
    | Completed -> ());
    if Atomic.get recording_on then begin
      let span =
        {
          name;
          attrs;
          t_start = t0;
          duration;
          outcome;
          children = List.rev frame.f_children;
        }
      in
      match !stack with
      | parent :: _ ->
        (* The cap bounds child spans only: top-level spans are the
           artifact (per-scenario wall times) and must survive. *)
        if Atomic.get recorded < max_recorded then begin
          parent.f_children <- span :: parent.f_children;
          ignore (Atomic.fetch_and_add recorded 1)
        end
        else ignore (Atomic.fetch_and_add dropped_count 1)
      | [] ->
        Mutex.protect roots_lock (fun () -> root_acc := span :: !root_acc);
        ignore (Atomic.fetch_and_add recorded 1)
    end
  in
  match f () with
  | v ->
    finish Completed;
    v
  | exception e ->
    finish (Raised (Printexc.to_string e));
    raise e

(* Externally assembled trees (e.g. the server's per-request phase spans,
   whose lifetime crosses threads and domains and so cannot use the
   domain-local [with_] stack) enter as roots.  No [span.<name>] histogram
   here: callers that build their own spans also keep their own, finer
   grained, latency histograms. *)
let emit span =
  if Atomic.get recording_on then
    if Atomic.get recorded < max_recorded then begin
      Mutex.protect roots_lock (fun () -> root_acc := span :: !root_acc);
      ignore (Atomic.fetch_and_add recorded 1)
    end
    else ignore (Atomic.fetch_and_add dropped_count 1)

let rec span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs));
      (* Json.of_float: a pathological non-finite timing still serializes
         (deterministically, as a string) instead of crashing the dump. *)
      ("start", Json.of_float s.t_start);
      ("duration_s", Json.of_float s.duration);
      ( "outcome",
        match s.outcome with
        | Completed -> Json.String "ok"
        | Raised msg -> Json.Obj [ ("raised", Json.String msg) ] );
      ("children", Json.List (List.map span_to_json s.children));
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (roots ())));
      ("dropped", Json.Int (Atomic.get dropped_count));
    ]

(* Inverse of [span_to_json], used by the run ledger to rehydrate recorded
   trees.  Tolerant of nothing: a malformed field is an error naming the
   offending key, so a truncated ledger line cannot yield a half-span. *)
let of_json json =
  let ( let* ) = Result.bind in
  let rec go json =
    let field key =
      match Json.member key json with
      | Some v -> Result.Ok v
      | None -> Result.Error (Printf.sprintf "span: missing %S" key)
    in
    let* name =
      match field "name" with
      | Ok (Json.String s) -> Ok s
      | Ok _ -> Error "span: \"name\" is not a string"
      | Error _ as e -> e
    in
    let* attrs =
      match field "attrs" with
      | Ok (Json.Obj kvs) ->
        List.fold_right
          (fun (k, v) acc ->
            let* acc = acc in
            match v with
            | Json.String s -> Ok ((k, s) :: acc)
            | _ -> Error "span: attr value is not a string")
          kvs (Ok [])
      | Ok _ -> Error "span: \"attrs\" is not an object"
      | Error _ as e -> e
    in
    let number key =
      let* v = field key in
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "span: %S is not a number" key)
    in
    let* t_start = number "start" in
    let* duration = number "duration_s" in
    let* outcome =
      match field "outcome" with
      | Ok (Json.String "ok") -> Ok Completed
      | Ok (Json.Obj [ ("raised", Json.String msg) ]) -> Ok (Raised msg)
      | Ok _ -> Error "span: unrecognized \"outcome\""
      | Error _ as e -> e
    in
    let* children =
      match field "children" with
      | Ok (Json.List items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* child = go item in
            Ok (child :: acc))
          items (Ok [])
      | Ok _ -> Error "span: \"children\" is not a list"
      | Error _ as e -> e
    in
    Ok { name; attrs; t_start; duration; outcome; children }
  in
  go json
