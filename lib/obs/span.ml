type outcome = Completed | Raised of string

type t = {
  name : string;
  attrs : (string * string) list;
  t_start : float;
  duration : float;
  outcome : outcome;
  children : t list;
}

type frame = {
  f_name : string;
  f_attrs : (string * string) list;
  f_t0 : float;
  mutable f_children : t list; (* newest first *)
}

(* Domain safety: the open-frame stack is domain-local state (a worker's
   spans nest under the worker's own frames, never under another domain's),
   while the completed-roots accumulator and its counters are shared and
   synchronized.  A span completed on a worker domain whose stack is empty
   becomes a top-level root — in a parallel characterization the per-arc
   spans therefore surface as roots of their own rather than children of
   the spawning domain's cell span. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let roots_lock = Mutex.create ()
let root_acc : t list ref = ref [] (* newest first; guarded by roots_lock *)
let recording_on = Atomic.make false
let recorded = Atomic.make 0
let dropped_count = Atomic.make 0
let max_recorded = 100_000

let now () = Unix.gettimeofday ()
let set_recording b = Atomic.set recording_on b
let recording () = Atomic.get recording_on
let roots () = Mutex.protect roots_lock (fun () -> List.rev !root_acc)
let dropped () = Atomic.get dropped_count

let reset () =
  Domain.DLS.get stack_key := [];
  Mutex.protect roots_lock (fun () -> root_acc := []);
  Atomic.set recorded 0;
  Atomic.set dropped_count 0

let with_ ?(attrs = []) name f =
  let stack = Domain.DLS.get stack_key in
  let t0 = now () in
  let frame = { f_name = name; f_attrs = attrs; f_t0 = t0; f_children = [] } in
  stack := frame :: !stack;
  let finish outcome =
    (* Pop back to (and past) our frame even if an exotic caller left
       deeper frames unclosed. *)
    let rec pop = function
      | fr :: rest when fr == frame -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    stack := pop !stack;
    let duration = now () -. t0 in
    Metrics.observe (Metrics.histogram ("span." ^ name)) duration;
    (match outcome with
    | Raised _ -> Metrics.incr (Metrics.counter ("span." ^ name ^ ".errors"))
    | Completed -> ());
    if Atomic.get recording_on then begin
      let span =
        {
          name;
          attrs;
          t_start = t0;
          duration;
          outcome;
          children = List.rev frame.f_children;
        }
      in
      match !stack with
      | parent :: _ ->
        (* The cap bounds child spans only: top-level spans are the
           artifact (per-scenario wall times) and must survive. *)
        if Atomic.get recorded < max_recorded then begin
          parent.f_children <- span :: parent.f_children;
          ignore (Atomic.fetch_and_add recorded 1)
        end
        else ignore (Atomic.fetch_and_add dropped_count 1)
      | [] ->
        Mutex.protect roots_lock (fun () -> root_acc := span :: !root_acc);
        ignore (Atomic.fetch_and_add recorded 1)
    end
  in
  match f () with
  | v ->
    finish Completed;
    v
  | exception e ->
    finish (Raised (Printexc.to_string e));
    raise e

let rec span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs));
      ("start", Json.Float s.t_start);
      ("duration_s", Json.Float s.duration);
      ( "outcome",
        match s.outcome with
        | Completed -> Json.String "ok"
        | Raised msg -> Json.Obj [ ("raised", Json.String msg) ] );
      ("children", Json.List (List.map span_to_json s.children));
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (roots ())));
      ("dropped", Json.Int (Atomic.get dropped_count));
    ]
