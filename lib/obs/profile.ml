(* Inclusive/self-time profile aggregated from span trees.

   Self time telescopes: a span's self time is its duration minus the sum
   of its direct children's durations (not clamped — measurement overhead
   can make it marginally negative), so summed over a whole tree the self
   times reproduce the root's duration exactly.  That identity is the
   profile's sanity check: "self" columns account for all recorded time,
   with no double counting. *)

module Tablefmt = Aging_util.Tablefmt

type row = {
  name : string;
  count : int;
  total_s : float;  (* inclusive *)
  self_s : float;
  p50_s : float option;
  p95_s : float option;
}

let of_spans ?percentile roots =
  let acc : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let cell name =
    match Hashtbl.find_opt acc name with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0., ref 0.) in
      Hashtbl.add acc name c;
      c
  in
  let rec walk (s : Span.t) =
    let children_total =
      List.fold_left (fun t (c : Span.t) -> t +. c.Span.duration) 0.
        s.Span.children
    in
    let count, total, self = cell s.Span.name in
    incr count;
    total := !total +. s.Span.duration;
    self := !self +. (s.Span.duration -. children_total);
    List.iter walk s.Span.children
  in
  List.iter walk roots;
  let q name p =
    match percentile with None -> None | Some f -> f name p
  in
  Hashtbl.fold
    (fun name (count, total, self) rows ->
      {
        name;
        count = !count;
        total_s = !total;
        self_s = !self;
        p50_s = q name 0.5;
        p95_s = q name 0.95;
      }
      :: rows)
    acc []
  |> List.sort (fun a b -> Float.compare b.self_s a.self_s)

let total_self rows = List.fold_left (fun t r -> t +. r.self_s) 0. rows
let total_roots roots =
  List.fold_left (fun t (s : Span.t) -> t +. s.Span.duration) 0. roots

let seconds f =
  if Float.is_nan f then "-"
  else if Float.abs f >= 1. then Tablefmt.fs "%.3f s" f
  else if Float.abs f >= 1e-3 then Tablefmt.fs "%.3f ms" (f *. 1e3)
  else Tablefmt.fs "%.3f us" (f *. 1e6)

let to_table ?(top = 0) rows =
  let shown = if top > 0 && List.length rows > top then
      (List.filteri (fun i _ -> i < top) rows)
    else rows
  in
  let all_self = total_self rows in
  let header = [ "span"; "count"; "total"; "self"; "self%"; "p50"; "p95" ] in
  let body =
    List.map
      (fun r ->
        [
          r.name;
          string_of_int r.count;
          seconds r.total_s;
          seconds r.self_s;
          (if all_self <> 0. then
             Tablefmt.fs "%.1f" (r.self_s /. all_self *. 100.)
           else "-");
          (match r.p50_s with Some v -> seconds v | None -> "-");
          (match r.p95_s with Some v -> seconds v | None -> "-");
        ])
      shown
  in
  Tablefmt.render ~align:[ Tablefmt.Left ] ~header body
