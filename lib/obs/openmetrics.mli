(** Prometheus/OpenMetrics text exposition of the metrics registry.

    Renders a {!Metrics.snapshot} — counters, gauges and log-bucket
    histograms — as OpenMetrics text: sanitized metric names with
    [# HELP]/[# TYPE] headers, [_total]-suffixed counter samples,
    histograms as cumulative [le]-labelled buckets plus [_sum]/[_count],
    and a closing [# EOF].  This is what [relaware serve --metrics-port]
    serves on [GET /metrics] and what [relaware obs export --format
    openmetrics] emits for a stored ledger record, so any Prometheus can
    scrape a live daemon or ingest an archived run.

    The module also ships a small parser for the same format ({!parse}),
    used by the soak harness and tests to validate a scrape end to end
    (names legal, buckets cumulative and monotone) without external
    tooling. *)

val sanitize_name : string -> string
(** Map a dotted metric name onto the OpenMetrics charset
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: every illegal character becomes ['_'] and
    a leading digit gains a ['_'] prefix (["serve.latency.p99"] ->
    ["serve_latency_p99"]). *)

val escape_label_value : string -> string
(** Escape a label value for exposition: backslash, double quote and
    newline gain a backslash ([\n] renders as backslash-n). *)

val render_snapshot : (string * Metrics.value) list -> string
(** Full exposition of a snapshot, terminated by [# EOF].  The HELP line
    carries the original dotted name, which survives sanitization
    losslessly for consumers that care. *)

val render : unit -> string
(** [render_snapshot (Metrics.snapshot ())]. *)

val values_of_stored_json : Json.t -> ((string * Metrics.value) list, string) result
(** Recover a snapshot from the {!Metrics.to_json} encoding (the shape
    stored in ledger records' [metrics] field).  Elided empty buckets are
    fine — they do not change the cumulative series. *)

val render_stored : Json.t -> (string, string) result
(** [render_snapshot] over {!values_of_stored_json}. *)

(** {2 Parsing (for scrape validation)} *)

type sample = {
  s_name : string;  (** sample name as exposed, e.g. ["serve_requests_total"] *)
  s_labels : (string * string) list;  (** unescaped label values *)
  s_value : float;
}

val parse : string -> (sample list, string) result
(** Parse an exposition: comment lines are skipped, every sample line
    must be [name[{labels}] value], and the final non-blank line must be
    [# EOF].  [Error] carries the offending line. *)

val find : sample list -> ?labels:(string * string) list -> string -> float option
(** First sample with that name whose labels include all of [labels]. *)
