(** Process runtime-health sampler: GC, memory and descriptor gauges.

    A sampler turns [Gc.quick_stat], [/proc/self/status] (VmRSS/VmHWM,
    thread count) and [/proc/self/fd] into [runtime.*] gauges in the
    process-global metrics registry, plus derived rates (minor words/s,
    promoted words/s, major collections/s) computed from deltas between
    consecutive samples.  Long-running entry points ([relaware serve],
    [soak], [bench], characterization builds) start the global sampler's
    background thread; {!Run_ledger.capture} takes one synchronous sample
    so every ledger record carries the runtime gauges of its run.

    The clock is pluggable so rate computation is deterministic under
    test: pass a fake monotonic clock to [create] and the rates divide by
    exactly the fake deltas.  All [/proc] reads degrade to absent gauges
    on platforms without procfs — sampling never raises.

    Gauges: [runtime.gc.minor_words], [runtime.gc.promoted_words],
    [runtime.gc.major_words], [runtime.gc.minor_collections],
    [runtime.gc.major_collections], [runtime.gc.compactions],
    [runtime.gc.heap_mb], [runtime.gc.top_heap_mb],
    [runtime.rate.minor_words_per_s], [runtime.rate.promoted_words_per_s],
    [runtime.rate.majors_per_s], [runtime.mem.rss_mb],
    [runtime.mem.hwm_mb], [runtime.fds], [runtime.threads]; counter
    [runtime.samples]. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A sampler with no samples taken yet.  [clock] must be monotonic
    seconds; it defaults to the span/flight-recorder clock. *)

val sample : t -> unit
(** Take one sample now: refresh every gauge, update the rates from the
    delta to the previous sample (first sample leaves rates at 0), and
    bump [runtime.samples].  Thread-safe; never raises. *)

val start : ?period_s:float -> t -> unit
(** Start the background sampling thread ([period_s] defaults to 0.5;
    clamped to >= 0.01).  No-op when already running. *)

val stop : t -> unit
(** Stop and join the background thread.  No-op when not running. *)

val running : t -> bool

(** {2 The process-global sampler} *)

val sample_global : unit -> unit
(** One synchronous sample of the shared global sampler (created lazily;
    the background thread is not started). *)

val start_global : ?period_s:float -> unit -> unit
val stop_global : unit -> unit

(** {2 One-shot totals (no registry involved)} *)

type totals = {
  rss_mb : float option;  (** current VmRSS; [None] without procfs *)
  hwm_mb : float option;  (** peak VmHWM (high-water mark) *)
  minor_words : float;  (** cumulative, from [Gc.quick_stat] *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_mb : float;
  fds : int option;  (** open descriptors, from [/proc/self/fd] *)
  threads : int option;  (** OS threads (covers domains), from procfs *)
}

val totals : unit -> totals
(** Read the current totals directly; used by bench scenario rows and
    soak QoR notes to record peak RSS and GC work per run. *)
