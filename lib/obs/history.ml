let finite values =
  Array.of_list
    (List.filter Float.is_finite (Array.to_list values))

let median values =
  let vs = finite values in
  let n = Array.length vs in
  if n = 0 then Float.nan
  else begin
    Array.sort compare vs;
    if n mod 2 = 1 then vs.(n / 2)
    else 0.5 *. (vs.((n / 2) - 1) +. vs.(n / 2))
  end

let mad values =
  let med = median values in
  if Float.is_nan med then Float.nan
  else median (Array.map (fun v -> Float.abs (v -. med)) (finite values))

type verdict = { z : float; drifting : bool }

(* 1.4826 scales the MAD to estimate sigma for normal data. *)
let mad_to_sigma = 1.4826

let drift ?(one_sided = false) ~z_thresh ~window x =
  let med = median window in
  let z =
    if Float.is_nan med || Float.is_nan x then 0.
    else begin
      let dev = x -. med in
      if one_sided && dev <= 0. then 0.
      else begin
        let scale = mad_to_sigma *. mad window in
        let flat_tol = 1e-6 *. Float.max 1.0 (Float.abs med) in
        if scale > flat_tol then Float.abs dev /. scale
        else if Float.abs dev <= flat_tol then 0.
        else Float.infinity
      end
    end
  in
  { z; drifting = z > z_thresh }

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline values =
  let fin = finite values in
  if Array.length fin = 0 then
    String.concat "" (List.map (fun _ -> " ") (Array.to_list values))
  else begin
    let lo = Array.fold_left Float.min fin.(0) fin in
    let hi = Array.fold_left Float.max fin.(0) fin in
    let level v =
      if Float.is_nan v then " "
      else if hi <= lo then spark_levels.(3)
      else begin
        let t = (v -. lo) /. (hi -. lo) in
        let i = int_of_float (t *. 7.99) in
        spark_levels.(max 0 (min 7 i))
      end
    in
    String.concat "" (List.map level (Array.to_list values))
  end

type row = { r_name : string; r_values : float array; r_one_sided : bool }

let default_health_counters =
  [
    "characterize.points.retried";
    "characterize.points.repaired";
    "characterize.points.failed";
    "cache.corrupt";
    "serve.worker.stalled";
    "log.warnings";
  ]

(* A counter's value inside a record's stored metrics snapshot. *)
let stored_counter record name =
  match Json.member name record.Run_ledger.metrics with
  | Some entry -> (
      match (Json.member "type" entry, Json.member "value" entry) with
      | Some (Json.String "counter"), Some (Json.Int n) -> Some (float_of_int n)
      | _ -> None)
  | None -> None

let rows_of_records ?(health_counters = default_health_counters) records =
  let qor_names =
    List.concat_map (fun r -> List.map fst r.Run_ledger.qor) records
    |> List.sort_uniq compare
  in
  let series extract =
    Array.of_list (List.filter_map extract records)
  in
  let qor_rows =
    List.map
      (fun name ->
        {
          r_name = name;
          r_values = series (fun r -> List.assoc_opt name r.Run_ledger.qor);
          r_one_sided = false;
        })
      qor_names
  in
  let health_rows =
    List.filter_map
      (fun name ->
        let values = series (fun r -> stored_counter r name) in
        if Array.length values = 0 then None
        else Some { r_name = name; r_values = values; r_one_sided = true })
      health_counters
  in
  List.sort
    (fun a b -> compare a.r_name b.r_name)
    (qor_rows @ health_rows)

type status = Pass | Drift | Short

type gated = {
  g_row : row;
  g_median : float;
  g_last : float;
  g_z : float;
  g_status : status;
}

let gate ?(z_thresh = 4.0) ?(min_window = 4) row =
  let n = Array.length row.r_values in
  let window = Array.sub row.r_values 0 (max 0 (n - 1)) in
  let last = if n = 0 then Float.nan else row.r_values.(n - 1) in
  let med = median window in
  if n - 1 < min_window then
    { g_row = row; g_median = med; g_last = last; g_z = 0.; g_status = Short }
  else begin
    let v = drift ~one_sided:row.r_one_sided ~z_thresh ~window last in
    {
      g_row = row;
      g_median = med;
      g_last = last;
      g_z = v.z;
      g_status = (if v.drifting then Drift else Pass);
    }
  end
