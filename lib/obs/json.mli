(** Minimal JSON values with a printer and a parser.

    The telemetry exporters ({!Metrics.to_json}, {!Span.to_json}, the bench
    harness's [BENCH.json]) need machine-readable output, and the smoke
    tooling needs to read it back — all without adding dependencies.  This
    is deliberately small: standard JSON, integers kept distinct from
    floats so counter values round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; {!to_string} rejects nan/inf *)
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Serializes; [pretty] indents with two spaces.  Floats print with 17
    significant digits so [of_string (to_string v) = v].
    @raise Invalid_argument on a non-finite [Float]. *)

val of_string : string -> t
(** Parses one JSON document (rejecting trailing garbage).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj kvs)] is the value bound to [key]; [None] when absent
    or when the value is not an object. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a float, and the
    deterministic non-finite encodings of {!of_float} ([String "NaN"],
    ["Infinity"], ["-Infinity"]) map back to their values. *)

val of_float : float -> t
(** Deterministic float encoding for telemetry artifacts: finite values
    as [Float], non-finite values (which {!to_string} rejects, as they
    are not JSON) as the strings ["NaN"] / ["Infinity"] / ["-Infinity"].
    {!to_float} is the inverse. *)
