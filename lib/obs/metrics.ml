(* Domain safety: parallel characterization (Aging_util.Pool) drives these
   handles from several domains at once.  Counters and gauges are single
   atomic words, so the hot-path cost of an [incr] is one fetch-and-add and
   no lock.  Histograms update three fields per observation and take a
   per-histogram mutex; the registry itself (rare: handle creation,
   snapshot, reset) is guarded by one global mutex. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* ascending upper bounds; overflow bucket implicit *)
  counts : int array;    (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable n : int;
  lock : Mutex.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Aging_obs.Metrics: %s is already a %s, not a %s" name
       (kind_name existing) wanted)

(* Get-or-create under the registry lock; [make] must not lock. *)
let register name ~wanted ~make ~cast =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> begin
        match cast m with Some v -> v | None -> mismatch name m wanted
      end
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name m;
        v)

let counter name =
  register name ~wanted:"counter"
    ~make:(fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    ~cast:(function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let value c = Atomic.get c

let gauge name =
  register name ~wanted:"gauge"
    ~make:(fun () ->
      let g = Atomic.make 0. in
      (g, Gauge g))
    ~cast:(function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

(* Half-decade log-scale buckets from 1 ns to ~3000 s: wall times of
   anything from a single NLDM lookup to a full figure reproduction land in
   a meaningful bucket. *)
let default_bounds =
  Array.init 26 (fun i -> 1e-9 *. (10. ** (float_of_int i /. 2.)))

let histogram ?(bounds = default_bounds) name =
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg
          (Printf.sprintf "Aging_obs.Metrics: histogram %s bounds not ascending"
             name))
    bounds;
  register name ~wanted:"histogram"
    ~make:(fun () ->
      let h =
        {
          bounds = Array.copy bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.;
          n = 0;
          lock = Mutex.create ();
        }
      in
      (h, Histogram h))
    ~cast:(function Histogram h -> Some h | _ -> None)

let observe h x =
  let nb = Array.length h.bounds in
  let rec slot i = if i >= nb || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  Mutex.protect h.lock (fun () ->
      h.sum <- h.sum +. x;
      h.n <- h.n + 1;
      h.counts.(i) <- h.counts.(i) + 1)

let histogram_count h = Mutex.protect h.lock (fun () -> h.n)
let histogram_sum h = Mutex.protect h.lock (fun () -> h.sum)

let bucket_counts_locked h =
  List.init
    (Array.length h.counts)
    (fun i ->
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (bound, h.counts.(i)))

let bucket_counts h = Mutex.protect h.lock (fun () -> bucket_counts_locked h)

(* --------------------------- percentiles --------------------------- *)

(* A log-bucket histogram only knows "k observations landed in (lo, hi]";
   within the bucket containing the requested rank we interpolate
   geometrically (linearly in log space), which is exact for values
   log-uniform inside the bucket — the natural assumption for log-spaced
   bounds.  Edge buckets cannot interpolate on both sides: the first
   bucket falls back to linear interpolation from 0, the overflow bucket
   reports its (finite) lower bound.  Non-positive bounds (custom linear
   bucket layouts) also use linear interpolation. *)
let percentile_of_buckets buckets q =
  let q = Float.min 1. (Float.max 0. q) in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
  if total = 0 then Float.nan
  else begin
    let rank = q *. float_of_int total in
    let rec find cum lo = function
      | [] -> lo
      | (hi, count) :: rest ->
        let cum' = cum + count in
        if count > 0 && rank <= float_of_int cum' then
          if Float.is_finite hi then begin
            let frac = (rank -. float_of_int cum) /. float_of_int count in
            if lo > 0. && hi > 0. then
              exp (log lo +. (frac *. (log hi -. log lo)))
            else lo +. (frac *. (hi -. lo))
          end
          else lo (* overflow bucket: no upper edge to interpolate to *)
        else find cum' (if Float.is_finite hi then hi else lo) rest
    in
    find 0 0. buckets
  end

let approx_percentile h q = percentile_of_buckets (bucket_counts h) q

(* ------------------------- snapshot / export ----------------------- *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

and histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
}

let value_by_name name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Some (float_of_int (Atomic.get c))
      | Some (Gauge g) -> Some (Atomic.get g)
      | Some (Histogram h) ->
        Some (Mutex.protect h.lock (fun () -> float_of_int h.n))
      | None -> None)

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | Counter c -> Counter_value (Atomic.get c)
            | Gauge g -> Gauge_value (Atomic.get g)
            | Histogram h ->
              Mutex.protect h.lock (fun () ->
                  Histogram_value
                    {
                      hs_count = h.n;
                      hs_sum = h.sum;
                      hs_buckets = bucket_counts_locked h;
                    })
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match v with
           | Counter_value n ->
             [ ("type", Json.String "counter"); ("value", Json.Int n) ]
           | Gauge_value g ->
             [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
           | Histogram_value h ->
             [
               ("type", Json.String "histogram");
               ("count", Json.Int h.hs_count);
               ("sum", Json.Float h.hs_sum);
               ( "buckets",
                 Json.List
                   (List.filter_map
                      (fun (bound, count) ->
                        (* empty buckets are noise; the overflow bound is not
                           a finite float, so it serializes as "+Inf" *)
                        if count = 0 then None
                        else
                          Some
                            (Json.Obj
                               [
                                 ( "le",
                                   if Float.is_finite bound then
                                     Json.Float bound
                                   else Json.String "+Inf" );
                                 ("count", Json.Int count);
                               ]))
                      h.hs_buckets) );
             ]
         in
         (name, Json.Obj body))
       (snapshot ()))

let to_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_value n -> Buffer.add_string b (Printf.sprintf "%s %d\n" name n)
      | Gauge_value g -> Buffer.add_string b (Printf.sprintf "%s %g\n" name g)
      | Histogram_value h ->
        let mean = if h.hs_count = 0 then 0. else h.hs_sum /. float_of_int h.hs_count in
        if h.hs_count = 0 then
          Buffer.add_string b
            (Printf.sprintf "%s count=0 sum=%.6g mean=%.6g\n" name h.hs_sum mean)
        else
          Buffer.add_string b
            (Printf.sprintf "%s count=%d sum=%.6g mean=%.6g p50=%.3g p95=%.3g\n"
               name h.hs_count h.hs_sum mean
               (percentile_of_buckets h.hs_buckets 0.5)
               (percentile_of_buckets h.hs_buckets 0.95)))
    (snapshot ());
  Buffer.contents b

(* Inverse of one histogram entry of [to_json]: recover the (bound, count)
   bucket list so percentiles can be computed from an exported snapshot
   (the run ledger stores snapshots, not live handles). *)
let buckets_of_json entry =
  match Json.member "buckets" entry with
  | Some (Json.List items) ->
    List.fold_right
      (fun item acc ->
        match acc with
        | None -> None
        | Some acc ->
          let bound =
            match Json.member "le" item with
            | Some (Json.String "+Inf") -> Some infinity
            | Some v -> Json.to_float v
            | None -> None
          in
          (match (bound, Json.member "count" item) with
          | Some b, Some (Json.Int c) -> Some ((b, c) :: acc)
          | _ -> None))
      items (Some [])
  | _ -> None

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.
          | Histogram h ->
            Mutex.protect h.lock (fun () ->
                h.sum <- 0.;
                h.n <- 0;
                Array.fill h.counts 0 (Array.length h.counts) 0))
        registry)
