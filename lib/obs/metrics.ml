type counter = { mutable count : int }
type gauge = { mutable level : float }

type histogram = {
  bounds : float array;  (* ascending upper bounds; overflow bucket implicit *)
  counts : int array;    (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable n : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Aging_obs.Metrics: %s is already a %s, not a %s" name
       (kind_name existing) wanted)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some m -> mismatch name m "counter"
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace registry name (Counter c);
    c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some m -> mismatch name m "gauge"
  | None ->
    let g = { level = 0. } in
    Hashtbl.replace registry name (Gauge g);
    g

let set g v = g.level <- v
let gauge_value g = g.level

(* Half-decade log-scale buckets from 1 ns to ~3000 s: wall times of
   anything from a single NLDM lookup to a full figure reproduction land in
   a meaningful bucket. *)
let default_bounds =
  Array.init 26 (fun i -> 1e-9 *. (10. ** (float_of_int i /. 2.)))

let histogram ?(bounds = default_bounds) name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some m -> mismatch name m "histogram"
  | None ->
    Array.iteri
      (fun i b ->
        if i > 0 && bounds.(i - 1) >= b then
          invalid_arg
            (Printf.sprintf
               "Aging_obs.Metrics: histogram %s bounds not ascending" name))
      bounds;
    let h =
      {
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        n = 0;
      }
    in
    Hashtbl.replace registry name (Histogram h);
    h

let observe h x =
  h.sum <- h.sum +. x;
  h.n <- h.n + 1;
  let nb = Array.length h.bounds in
  let rec slot i = if i >= nb || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1

let histogram_count h = h.n
let histogram_sum h = h.sum

let bucket_counts h =
  List.init
    (Array.length h.counts)
    (fun i ->
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (bound, h.counts.(i)))

(* ------------------------- snapshot / export ----------------------- *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

and histogram_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
}

let snapshot () =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter c -> Counter_value c.count
        | Gauge g -> Gauge_value g.level
        | Histogram h ->
          Histogram_value
            { hs_count = h.n; hs_sum = h.sum; hs_buckets = bucket_counts h }
      in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let body =
           match v with
           | Counter_value n ->
             [ ("type", Json.String "counter"); ("value", Json.Int n) ]
           | Gauge_value g ->
             [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
           | Histogram_value h ->
             [
               ("type", Json.String "histogram");
               ("count", Json.Int h.hs_count);
               ("sum", Json.Float h.hs_sum);
               ( "buckets",
                 Json.List
                   (List.filter_map
                      (fun (bound, count) ->
                        (* empty buckets are noise; the overflow bound is not
                           a finite float, so it serializes as "+Inf" *)
                        if count = 0 then None
                        else
                          Some
                            (Json.Obj
                               [
                                 ( "le",
                                   if Float.is_finite bound then
                                     Json.Float bound
                                   else Json.String "+Inf" );
                                 ("count", Json.Int count);
                               ]))
                      h.hs_buckets) );
             ]
         in
         (name, Json.Obj body))
       (snapshot ()))

let to_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_value n -> Buffer.add_string b (Printf.sprintf "%s %d\n" name n)
      | Gauge_value g -> Buffer.add_string b (Printf.sprintf "%s %g\n" name g)
      | Histogram_value h ->
        let mean = if h.hs_count = 0 then 0. else h.hs_sum /. float_of_int h.hs_count in
        Buffer.add_string b
          (Printf.sprintf "%s count=%d sum=%.6g mean=%.6g\n" name h.hs_count
             h.hs_sum mean))
    (snapshot ());
  Buffer.contents b

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.level <- 0.
      | Histogram h ->
        h.sum <- 0.;
        h.n <- 0;
        Array.fill h.counts 0 (Array.length h.counts) 0)
    registry
