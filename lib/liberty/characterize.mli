(** Cell characterization: measuring NLDM tables under an aging scenario.

    The [Transient] backend reproduces the paper's HSPICE methodology: for
    every timing arc and every (input slew x output load) operating
    condition, the cell's transistor netlist — with every device aged
    according to the scenario — is simulated with {!Aging_spice.Engine} and
    the 50/50 delay and 20/80 output transition are measured.  Multi-stage
    cells (buffers, XOR, MUX, adders, flip-flops) are handled naturally
    because internal slopes are simulated, which is precisely what the paper
    faults closed-form approaches for missing.

    The [Analytic] backend is that faulted state-of-the-art: a closed-form
    switched-RC estimate from the output-stage drive resistance that cannot
    see internal slopes.  It exists for the ablation benchmark.

    {2 Fault tolerance}

    A library build runs thousands of per-point transients, and a single
    non-settling grid point must never abort the build.  Every grid point is
    measured through a typed-result pipeline ({!point_error}), retried up an
    escalation ladder of progressively more conservative solver settings,
    and — when every rung fails — repaired from already-measured neighbour
    grid points or from the analytic model.  Every deviation from a clean
    first-attempt measurement is recorded in a {!report} that callers can
    print and tests can assert on.  The [Faulty] backend wrapper injects
    deterministic point failures so that machinery can be exercised end to
    end.

    {2 Parallelism}

    Characterization is embarrassingly parallel: every (cell, arc,
    direction) grid is independent.  {!library} and {!entry} accept a
    [jobs] count and fan the grids out over an {!Aging_util.Pool} of
    domains — cells across the pool, (arc, direction) grids within a cell
    when the cell level alone cannot fill it.  The result is {e
    deterministic}: entries, tables, and the merged report are assembled in
    input order, never completion order, so [library ~jobs:n] is
    bit-for-bit identical to [library ~jobs:1] for every [n] (the only
    exception being the wall-time fields of {!arc_stats}, which record
    measurements, not results).  [jobs]
    defaults to [1] (sequential); the CLI and benches default it to
    {!Aging_util.Pool.default_jobs}. *)

type point_error =
  | No_settle of float
      (** output never reached the target rail; carries the final voltage *)
  | No_crossing  (** no 50 % delay crossing was found *)
  | No_slew      (** no 20/80 output transition was found *)
  | Non_converged of int
      (** the solver accepted that many non-converged steps at the [dt]
          floor; the waveform is untrustworthy *)

val point_error_to_string : point_error -> string

type fault = {
  rate : float;  (** fraction of grid points sabotaged, in [0, 1] *)
  seed : int;    (** decorrelates which points fail *)
  depth : int;
      (** how many rungs of the escalation ladder fail for a sabotaged
          point: [1] exercises retry-recovery, [max_int] forces the
          degraded fallbacks *)
}

type backend =
  | Transient of Aging_spice.Engine.options
  | Analytic
  | Faulty of fault * backend
      (** deterministic fault-injection wrapper around another backend *)

val default_backend : backend
(** [Transient] with default engine options. *)

(** {2 Surrogate mode}

    A surrogate build simulates only a sparse deterministic sub-lattice of
    each (slew x load) grid — reusing the warm-start chain — fits one
    {!Aging_fit.Ridge} model per (cell, arc, direction, output metric) on
    the results, and serves every remaining point from the model {e if}
    its prediction-interval half-width is within [tol] of the predicted
    value; any lower-confidence point falls back to a real simulation
    (counted in the [fit.points.fallback] metric).  A non-positive [tol]
    therefore degenerates to the exact non-surrogate sweep — same visit
    order, same warm chain, bit-identical tables — with every point
    accounted as a fallback.

    With a cross-corner [pool] (primed by {!Degradation_library} from
    full anchor-corner builds) the fit switches to multi-fidelity ratio
    mode.  The pool corner nearest the target becomes the {e reference};
    the model is a low-degree bivariate surface over (log slew, load)
    fitted on the seed lattice's target/reference {e ratios}, and a
    prediction is the fitted ratio times the reference value.  Aging
    scales a timing surface far more smoothly than it shapes it — the
    sharp (slew, load) structure cancels in the ratio — which is what
    lets a handful of seeds certify percent-level tolerances that no
    absolute-valued fit could reach.  Serving is gated per point by
    {e both} the model's prediction interval and a replayed-anchor
    certificate: the identical (lattice, basis, gate) scheme is re-run at
    the pool corners nearest the target, its served predictions compared
    against their full tables (whose truth the pool already holds), and a
    point is only served where that replayed error also stayed within
    [tol].  Certificates depend only on the (model, axes, reference,
    anchor) tuple, so they are memoized in the config and reused across
    nearby corner builds — the [fit.certs.reused] counter tracks the
    sharing. *)

type surrogate = {
  sur_tol : float;      (** relative confidence tolerance, e.g. 0.02 *)
  sur_sample : int;     (** target seed simulations per grid *)
  sur_lambda : float;   (** ridge penalty *)
  sur_conf : float;     (** confidence-interval multiplier *)
  sur_pool : Aging_fit.Trainset.t option;
      (** frozen cross-corner training pool (see {!Trainset}) *)
  sur_certs : (string, float array array) Hashtbl.t;
      (** memoized replayed-anchor certificate grids, shared across the
          corner builds that use this config *)
  sur_lock : Mutex.t;
      (** guards [sur_certs] against concurrent cell fits and parallel
          corner builds *)
}

val surrogate :
  ?tol:float ->
  ?sample:int ->
  ?lambda:float ->
  ?conf:float ->
  ?pool:Aging_fit.Trainset.t ->
  unit ->
  surrogate
(** Defaults: [tol = 0.02] (2 %), [sample = 12], [lambda = 1e-6],
    [conf = 1.], no pool.  [conf] scales the prediction interval the
    serve gate compares against [tol]; the default is deliberately a
    ~68 % interval because in pooled mode the replayed-anchor
    certificate — actual errors of this exact scheme at corners whose
    truth is known — carries the safety argument, and a wider interval
    starves the certificate itself (the replay serves fewer points, so
    more of the grid reads "not measurable: unsafe").  Raise it when
    running standalone fits whose only gate is the interval.
    @raise Invalid_argument if [sample < 4] or [tol] is not finite. *)

val corner_features : Aging_physics.Scenario.t -> float array
(** Aging features of a corner measured on reference minimum-width
    devices: [[| dVth_p; dVth_n; dmu_p; dmu_n |]] (mobility losses as
    [1 - mu_factor]).  Constant within one corner; the cross-corner pool
    is what makes them informative. *)

val pool_key :
  cell:string ->
  from_pin:string ->
  to_pin:string ->
  dir:Library.direction ->
  metric:string ->
  string
(** Canonical {!Aging_fit.Trainset} key of one per-model training bucket;
    [metric] is ["delay"] or ["slew"]. *)

val point_features :
  corner_feats:float array -> slew:float -> load:float -> float array
(** Model features of one grid point: log slew, load in fF, then the
    corner features.  Exposed so {!Degradation_library} harvests pool
    rows with exactly the features the fit will use. *)

(** {2 Characterization report} *)

type repair = Interpolated | Analytic_fallback

type prov = Seeded | Predicted | Fell_back
(** Provenance of one grid point in a surrogate build: simulated as a
    seed, served by the model, or re-simulated because the model's
    confidence interval exceeded the tolerance. *)

type arc_stats = {
  stat_cell : string;
  stat_from : string;
  stat_to : string;
  stat_dir : Library.direction;
  mutable measured : int;  (** points measured cleanly on the first attempt *)
  mutable retried : int;   (** points recovered by an escalated re-run *)
  mutable repaired : int;  (** points filled by a degraded fallback *)
  mutable failed : int;    (** points lost entirely (never with fallbacks) *)
  mutable predicted : int; (** points served by the surrogate model *)
  mutable repairs : repair list;      (** one entry per repaired point *)
  mutable errors : point_error list;
      (** first error of every non-clean point, newest first *)
  mutable prov : prov array array option;
      (** per-point provenance (slew-major), surrogate builds only *)
  mutable sim_seconds : float;
      (** wall time spent inside point simulations of this grid *)
  mutable grid_seconds : float;  (** wall time of the whole grid *)
}

type report = { mutable stats : arc_stats list }
(** Per-(cell, arc, direction) accounting of one characterization run;
    [stats] is newest-first.  The five counters partition the grid
    points, so their sum is the total point count. *)

val report_create : unit -> report

type totals = {
  points : int;     (** all grid points *)
  clean : int;      (** measured on the first attempt *)
  recovered : int;  (** needed at least one escalated retry *)
  degraded : int;   (** repaired by interpolation or the analytic model *)
  lost : int;       (** failed outright *)
  guessed : int;    (** served by the surrogate model *)
}

val report_totals : report -> totals

val report_clean : report -> bool
(** [true] iff every point was measured on the first attempt. *)

type surrogate_totals = {
  fit_simulated : int;  (** seed simulations *)
  fit_predicted : int;  (** points served by the model *)
  fit_fallback : int;   (** low-confidence points re-simulated *)
  fit_speedup : float;
      (** estimated build speedup: measured mean simulation cost
          extrapolated to the full grid, over the actual wall time *)
}

val report_surrogate : report -> surrogate_totals option
(** Surrogate accounting of the report; [None] when no grid in it was
    built in surrogate mode. *)

val report_to_string : report -> string

(** {2 Characterization} *)

val entry :
  ?backend:backend ->
  ?indexed:bool ->
  ?report:report ->
  ?jobs:int ->
  ?surrogate:surrogate ->
  axes:Axes.t ->
  scenario:Aging_physics.Scenario.t ->
  Aging_cells.Cell.t ->
  Library.entry
(** Characterizes one cell under the scenario.  When [indexed] is true the
    entry name carries the corner suffix ("NAND2_X1\@0.4_0.6"); default
    false (bare name).  Per-point failures are retried and repaired, never
    raised; pass [report] to collect the accounting.  [jobs] (default 1)
    fans the cell's (arc, direction) grids out over that many domains;
    results and report order do not depend on it. *)

val library :
  ?backend:backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?indexed:bool ->
  ?report:report ->
  ?jobs:int ->
  ?surrogate:surrogate ->
  axes:Axes.t ->
  name:string ->
  scenario:Aging_physics.Scenario.t ->
  unit ->
  Library.t
(** Characterizes a whole library (default: the full catalog) under one
    scenario.  Always returns a complete library: full grids for every arc
    of every cell, with failed points repaired (see the module docs).
    [jobs] (default 1) parallelizes across cells (and within them — see
    {e Parallelism} above); the returned library and any [report] are
    identical for every [jobs] value. *)

val library_report :
  ?backend:backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?indexed:bool ->
  ?jobs:int ->
  ?surrogate:surrogate ->
  axes:Axes.t ->
  name:string ->
  scenario:Aging_physics.Scenario.t ->
  unit ->
  Library.t * report
(** [library] plus the fault/repair accounting of the build. *)

val fresh_library :
  ?backend:backend -> ?cells:Aging_cells.Cell.t list -> ?jobs:int ->
  ?surrogate:surrogate -> axes:Axes.t -> unit -> Library.t
(** Convenience: the degradation-unaware (initial) library — zero-duty
    corner, bare names. *)

val arc_measure :
  backend ->
  scenario:Aging_physics.Scenario.t ->
  cell:Aging_cells.Cell.t ->
  arc:Aging_cells.Cell.arc ->
  dir:Library.direction ->
  slew:float ->
  load:float ->
  float * float
(** Measures a single (delay, output slew) point; exposed for the Fig. 1
    surface experiment and for tests.  This is the legacy entry point: the
    escalation ladder still applies, but a point whose every attempt fails
    raises.
    @raise Failure when the full escalation ladder is exhausted. *)
