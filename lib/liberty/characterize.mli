(** Cell characterization: measuring NLDM tables under an aging scenario.

    The [Transient] backend reproduces the paper's HSPICE methodology: for
    every timing arc and every (input slew x output load) operating
    condition, the cell's transistor netlist — with every device aged
    according to the scenario — is simulated with {!Aging_spice.Engine} and
    the 50/50 delay and 20/80 output transition are measured.  Multi-stage
    cells (buffers, XOR, MUX, adders, flip-flops) are handled naturally
    because internal slopes are simulated, which is precisely what the paper
    faults closed-form approaches for missing.

    The [Analytic] backend is that faulted state-of-the-art: a closed-form
    switched-RC estimate from the output-stage drive resistance that cannot
    see internal slopes.  It exists for the ablation benchmark.

    {2 Fault tolerance}

    A library build runs thousands of per-point transients, and a single
    non-settling grid point must never abort the build.  Every grid point is
    measured through a typed-result pipeline ({!point_error}), retried up an
    escalation ladder of progressively more conservative solver settings,
    and — when every rung fails — repaired from already-measured neighbour
    grid points or from the analytic model.  Every deviation from a clean
    first-attempt measurement is recorded in a {!report} that callers can
    print and tests can assert on.  The [Faulty] backend wrapper injects
    deterministic point failures so that machinery can be exercised end to
    end.

    {2 Parallelism}

    Characterization is embarrassingly parallel: every (cell, arc,
    direction) grid is independent.  {!library} and {!entry} accept a
    [jobs] count and fan the grids out over an {!Aging_util.Pool} of
    domains — cells across the pool, (arc, direction) grids within a cell
    when the cell level alone cannot fill it.  The result is {e
    deterministic}: entries, tables, and the merged report are assembled in
    input order, never completion order, so [library ~jobs:n] is
    bit-for-bit identical to [library ~jobs:1] for every [n].  [jobs]
    defaults to [1] (sequential); the CLI and benches default it to
    {!Aging_util.Pool.default_jobs}. *)

type point_error =
  | No_settle of float
      (** output never reached the target rail; carries the final voltage *)
  | No_crossing  (** no 50 % delay crossing was found *)
  | No_slew      (** no 20/80 output transition was found *)
  | Non_converged of int
      (** the solver accepted that many non-converged steps at the [dt]
          floor; the waveform is untrustworthy *)

val point_error_to_string : point_error -> string

type fault = {
  rate : float;  (** fraction of grid points sabotaged, in [0, 1] *)
  seed : int;    (** decorrelates which points fail *)
  depth : int;
      (** how many rungs of the escalation ladder fail for a sabotaged
          point: [1] exercises retry-recovery, [max_int] forces the
          degraded fallbacks *)
}

type backend =
  | Transient of Aging_spice.Engine.options
  | Analytic
  | Faulty of fault * backend
      (** deterministic fault-injection wrapper around another backend *)

val default_backend : backend
(** [Transient] with default engine options. *)

(** {2 Characterization report} *)

type repair = Interpolated | Analytic_fallback

type arc_stats = {
  stat_cell : string;
  stat_from : string;
  stat_to : string;
  stat_dir : Library.direction;
  mutable measured : int;  (** points measured cleanly on the first attempt *)
  mutable retried : int;   (** points recovered by an escalated re-run *)
  mutable repaired : int;  (** points filled by a degraded fallback *)
  mutable failed : int;    (** points lost entirely (never with fallbacks) *)
  mutable repairs : repair list;      (** one entry per repaired point *)
  mutable errors : point_error list;
      (** first error of every non-clean point, newest first *)
}

type report = { mutable stats : arc_stats list }
(** Per-(cell, arc, direction) accounting of one characterization run;
    [stats] is newest-first.  The four counters partition the grid points,
    so their sum is the total point count. *)

val report_create : unit -> report

type totals = {
  points : int;     (** all grid points *)
  clean : int;      (** measured on the first attempt *)
  recovered : int;  (** needed at least one escalated retry *)
  degraded : int;   (** repaired by interpolation or the analytic model *)
  lost : int;       (** failed outright *)
}

val report_totals : report -> totals

val report_clean : report -> bool
(** [true] iff every point was measured on the first attempt. *)

val report_to_string : report -> string

(** {2 Characterization} *)

val entry :
  ?backend:backend ->
  ?indexed:bool ->
  ?report:report ->
  ?jobs:int ->
  axes:Axes.t ->
  scenario:Aging_physics.Scenario.t ->
  Aging_cells.Cell.t ->
  Library.entry
(** Characterizes one cell under the scenario.  When [indexed] is true the
    entry name carries the corner suffix ("NAND2_X1\@0.4_0.6"); default
    false (bare name).  Per-point failures are retried and repaired, never
    raised; pass [report] to collect the accounting.  [jobs] (default 1)
    fans the cell's (arc, direction) grids out over that many domains;
    results and report order do not depend on it. *)

val library :
  ?backend:backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?indexed:bool ->
  ?report:report ->
  ?jobs:int ->
  axes:Axes.t ->
  name:string ->
  scenario:Aging_physics.Scenario.t ->
  unit ->
  Library.t
(** Characterizes a whole library (default: the full catalog) under one
    scenario.  Always returns a complete library: full grids for every arc
    of every cell, with failed points repaired (see the module docs).
    [jobs] (default 1) parallelizes across cells (and within them — see
    {e Parallelism} above); the returned library and any [report] are
    identical for every [jobs] value. *)

val library_report :
  ?backend:backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?indexed:bool ->
  ?jobs:int ->
  axes:Axes.t ->
  name:string ->
  scenario:Aging_physics.Scenario.t ->
  unit ->
  Library.t * report
(** [library] plus the fault/repair accounting of the build. *)

val fresh_library :
  ?backend:backend -> ?cells:Aging_cells.Cell.t list -> ?jobs:int ->
  axes:Axes.t -> unit -> Library.t
(** Convenience: the degradation-unaware (initial) library — zero-duty
    corner, bare names. *)

val arc_measure :
  backend ->
  scenario:Aging_physics.Scenario.t ->
  cell:Aging_cells.Cell.t ->
  arc:Aging_cells.Cell.arc ->
  dir:Library.direction ->
  slew:float ->
  load:float ->
  float * float
(** Measures a single (delay, output slew) point; exposed for the Fig. 1
    surface experiment and for tests.  This is the legacy entry point: the
    escalation ladder still applies, but a point whose every attempt fails
    raises.
    @raise Failure when the full escalation ladder is exhausted. *)
