module Scenario = Aging_physics.Scenario

let indexed_name ~base corner = base ^ "@" ^ Scenario.suffix corner

let split_indexed name =
  match String.index_opt name '@' with
  | None -> (name, None)
  | Some i ->
    let base = String.sub name 0 i in
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    (base, Scenario.of_suffix suffix)

let complete ?backend ?cells ?(years = 10.) ~axes ~corners ~name () =
  let total = List.length corners in
  let libraries =
    List.mapi
      (fun i corner ->
        Aging_obs.Log.infof "liberty.merge" "corner %s (%d/%d)"
          (Scenario.suffix corner) (i + 1) total;
        let scenario = Scenario.scenario ~years corner in
        Characterize.library ?backend ?cells ~indexed:true ~axes
          ~name:(Printf.sprintf "%s[%s]" name (Scenario.suffix corner))
          ~scenario ())
      corners
  in
  match libraries with
  | [] -> invalid_arg "Merge.complete: no corners"
  | first :: rest ->
    let merged = List.fold_left Library.merge_entries first rest in
    Library.create ~lib_name:name ~axes:(Library.axes merged)
      (Library.entries merged)
