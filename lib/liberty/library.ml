type timing_sense = Positive | Negative
type direction = Rise | Fall

type arc = {
  from_pin : string;
  to_pin : string;
  sense : timing_sense;
  when_side : (string * bool) list;
  delay_rise : Nldm.table;
  delay_fall : Nldm.table;
  slew_rise : Nldm.table;
  slew_fall : Nldm.table;
}

type entry = {
  cell : Aging_cells.Cell.t;
  indexed_name : string;
  corner : Aging_physics.Scenario.corner;
  arcs : arc list;
  pin_caps : (string * float) list;
  setup_time : float;
}

type t = {
  lib_name : string;
  axes : Axes.t;
  entries : entry list;
  index : (string, entry) Hashtbl.t;
}

let create ~lib_name ~axes entries =
  let index = Hashtbl.create (max 16 (List.length entries)) in
  List.iter
    (fun e ->
      if Hashtbl.mem index e.indexed_name then
        invalid_arg ("Library.create: duplicate " ^ e.indexed_name);
      Hashtbl.add index e.indexed_name e)
    entries;
  { lib_name; axes; entries; index }

let lib_name t = t.lib_name
let axes t = t.axes
let entries t = t.entries
let find t name = Hashtbl.find_opt t.index name

exception Cell_not_found of { library : string; cell : string }
exception Pin_not_found of { cell : string; pin : string }

let () =
  Printexc.register_printer (function
    | Cell_not_found { library; cell } ->
      Some
        (Printf.sprintf "Library.Cell_not_found: no cell %S in library %S"
           cell library)
    | Pin_not_found { cell; pin } ->
      Some
        (Printf.sprintf "Library.Pin_not_found: cell %S has no input pin %S"
           cell pin)
    | _ -> None)

let find_exn t name =
  match find t name with
  | Some e -> e
  | None -> raise (Cell_not_found { library = t.lib_name; cell = name })

let names t = List.map (fun e -> e.indexed_name) t.entries

let arc_of entry ~from_pin ~to_pin =
  List.find_opt
    (fun a -> a.from_pin = from_pin && a.to_pin = to_pin)
    entry.arcs

let delay_of arc ~dir ~slew ~load =
  let table = match dir with Rise -> arc.delay_rise | Fall -> arc.delay_fall in
  Nldm.lookup table ~slew ~load

let out_slew_of arc ~dir ~slew ~load =
  let table = match dir with Rise -> arc.slew_rise | Fall -> arc.slew_fall in
  Nldm.lookup table ~slew ~load

let out_direction arc ~in_dir =
  match (arc.sense, in_dir) with
  | Positive, d -> d
  | Negative, Rise -> Fall
  | Negative, Fall -> Rise

let input_cap entry pin =
  match List.assoc_opt pin entry.pin_caps with
  | Some c -> c
  | None -> raise (Pin_not_found { cell = entry.indexed_name; pin })

let worst_delay entry =
  List.fold_left
    (fun acc a ->
      Float.max acc
        (Float.max (Nldm.max_value a.delay_rise) (Nldm.max_value a.delay_fall)))
    neg_infinity entry.arcs

let merge_entries a b =
  if a.axes <> b.axes then invalid_arg "Library.merge_entries: axis mismatch";
  create ~lib_name:a.lib_name ~axes:a.axes (a.entries @ b.entries)
