(** Cell libraries: collections of characterized timing entries.

    A library entry pairs a catalog cell with its NLDM timing arcs under one
    aging corner.  A plain (single-corner) library uses bare cell names
    ("NAND2_X1"); the merged complete library (see {!Merge}) uses indexed
    names ("NAND2_X1\@0.4_0.6") carrying the duty-cycle corner, mirroring the
    paper's renaming scheme. *)

type timing_sense = Positive | Negative

type direction = Rise | Fall
(** Output transition direction. *)

type arc = {
  from_pin : string;
  to_pin : string;
  sense : timing_sense;
  when_side : (string * bool) list;
      (** side-input values the arc was characterized under *)
  delay_rise : Nldm.table;   (** delay to output rise [s] *)
  delay_fall : Nldm.table;
  slew_rise : Nldm.table;    (** output transition time on rise [s] *)
  slew_fall : Nldm.table;
}

type entry = {
  cell : Aging_cells.Cell.t;
  indexed_name : string;
  corner : Aging_physics.Scenario.corner;
  arcs : arc list;
  pin_caps : (string * float) list;  (** input pin capacitances [F] *)
  setup_time : float;  (** flip-flops only; 0 for combinational cells *)
}

type t
(** A library; build with {!create}, inspect with {!entries}. *)

exception Cell_not_found of { library : string; cell : string }
(** Raised by {!find_exn} instead of a bare [Not_found], so a failing STA
    or synthesis run names exactly which cell is missing from which
    library. *)

exception Pin_not_found of { cell : string; pin : string }
(** Raised by {!input_cap}; [cell] is the entry's indexed name. *)

val create : lib_name:string -> axes:Axes.t -> entry list -> t
(** @raise Invalid_argument on duplicate indexed names. *)

val lib_name : t -> string
val axes : t -> Axes.t
val entries : t -> entry list

val find : t -> string -> entry option
(** Lookup by indexed name. *)

val find_exn : t -> string -> entry
(** @raise Cell_not_found on an unknown indexed name. *)

val names : t -> string list

val arc_of : entry -> from_pin:string -> to_pin:string -> arc option

val delay_of : arc -> dir:direction -> slew:float -> load:float -> float
(** Delay to the output transitioning in [dir] given the input slew. *)

val out_slew_of : arc -> dir:direction -> slew:float -> load:float -> float

val out_direction : arc -> in_dir:direction -> direction
(** Direction the output moves for an input moving in [in_dir], per the
    arc's timing sense. *)

val input_cap : entry -> string -> float
(** @raise Pin_not_found on an unknown pin. *)

val worst_delay : entry -> float
(** Largest delay value across all arcs/directions/grid points (used by
    area/overview reports). *)

val merge_entries : t -> t -> t
(** Union of the entries of two libraries sharing axes; names must not
    collide.  @raise Invalid_argument otherwise. *)
