module Device = Aging_physics.Device
module Scenario = Aging_physics.Scenario
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform
module Mosfet = Aging_spice.Mosfet
module Cell = Aging_cells.Cell
module Retry = Aging_util.Retry
module Pool = Aging_util.Pool
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log

(* Per-point accounting in the process-global registry; these partition the
   grid exactly like the [report] counters do, so a metrics dump and a
   characterization report must always agree. *)
let m_measured = Metrics.counter "characterize.points.measured"
let m_retried = Metrics.counter "characterize.points.retried"
let m_repaired = Metrics.counter "characterize.points.repaired"
let m_failed = Metrics.counter "characterize.points.failed"
let m_repair_interpolated = Metrics.counter "characterize.repairs.interpolated"
let m_repair_analytic = Metrics.counter "characterize.repairs.analytic"
let m_cells = Metrics.counter "characterize.cells"

(* ------------------------------------------------------------------ *)
(* Typed per-point errors                                              *)
(* ------------------------------------------------------------------ *)

type point_error =
  | No_settle of float
  | No_crossing
  | No_slew
  | Non_converged of int

let point_error_to_string = function
  | No_settle v ->
    Printf.sprintf "output did not settle (%.3f V at the final sample)" v
  | No_crossing -> "no 50% crossing"
  | No_slew -> "no 20/80 transition"
  | Non_converged n ->
    Printf.sprintf "solver accepted %d non-converged step%s at the dt floor" n
      (if n = 1 then "" else "s")

type fault = { rate : float; seed : int; depth : int }

type backend =
  | Transient of Engine.options
  | Analytic
  | Faulty of fault * backend

(* Characterization runs many short cell-level transients; a shorter DC
   settle is plenty for single cells and the post-transition tail is cut by
   [stop_when] below. *)
let char_options = { Engine.default_options with Engine.settle_time = 0.8e-9 }

let default_backend = Transient char_options

let rail value = if value then Device.vdd else 0.

let in_direction (cell : Cell.t) (arc : Cell.arc) ~(dir : Library.direction) =
  match cell.Cell.kind with
  | Cell.Flipflop -> Library.Rise (* launch edge *)
  | Cell.Combinational ->
    if arc.Cell.positive_unate then dir
    else begin
      match dir with Library.Rise -> Library.Fall | Library.Fall -> Library.Rise
    end

let aged_circuit ~scenario (cell : Cell.t) =
  Circuit.map_devices (Scenario.age_device scenario) cell.Cell.built.circuit

(* ------------------------------------------------------------------ *)
(* Transient backend                                                    *)
(* ------------------------------------------------------------------ *)

let transient_measure ?(t_stop_scale = 1.) ?warm ?state_out options
    ~base_circuit ~(cell : Cell.t) ~(arc : Cell.arc) ~dir ~slew ~load =
  let circuit = Circuit.map_devices Fun.id base_circuit in
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let in_node = List.assoc arc.Cell.arc_input cell.Cell.built.input_nodes in
  Circuit.add_cap circuit out_node load;
  let in_dir = in_direction cell arc ~dir in
  let rising = in_dir = Library.Rise in
  let t_start = 5e-11 in
  let input_stim = Stimulus.ramp ~t_start ~slew ~rising () in
  let side_drives =
    List.map
      (fun (pin, value) ->
        (List.assoc pin cell.Cell.built.input_nodes, Stimulus.constant (rail value)))
      arc.Cell.side
  in
  let init =
    match cell.Cell.kind with
    | Cell.Combinational -> begin
      (* Warm start: seed every free node from a neighbouring grid point's
         settled final state (same topology, slightly different slew/load),
         so DC settling starts at — or within a Newton tolerance of — the
         operating point instead of relaxing from 0 V.  Combinational cells
         only: a latch seeded from a foreign state could settle into the
         wrong stored value. *)
      match warm with
      | Some state when Array.length state = Circuit.node_count circuit ->
        let driven = in_node :: List.map fst side_drives in
        let seeds = ref [] in
        for n = Circuit.node_count circuit - 1 downto 0 do
          if n <> Circuit.gnd && n <> Circuit.vdd && not (List.mem n driven)
          then seeds := (n, state.(n)) :: !seeds
        done;
        !seeds
      | Some _ | None -> []
    end
    | Cell.Flipflop ->
      (* Seed the slave latch storage node with the pre-edge state (the
         output is its complement); the clocked keeper maintains it through
         DC settling so the launch edge produces a real Q transition. *)
      let q_pre = (out_node, rail (dir = Library.Fall)) in
      begin
        match Circuit.find_node circuit "SLAVE" with
        | Some slave -> [ (slave, rail (dir = Library.Rise)); q_pre ]
        | None -> [ q_pre ]
      end
  in
  let t_stop = t_start +. Stimulus.full_ramp_time slew +. (t_stop_scale *. 3e-9) in
  let target = rail (dir = Library.Rise) in
  let stop_when time v =
    (* The output started at the opposite rail; once it is pinned to the
       target rail every crossing needed by the measurements has happened —
       but never stop before the input's own 50 % point, which a fast gate
       under a slow ramp can beat (negative delay). *)
    time > t_start +. (0.6 *. Stimulus.full_ramp_time slew)
    && Float.abs (v.(out_node) -. target) < 0.015
  in
  let result =
    Engine.transient ~options ~init ~stop_when circuit
      ~drives:((in_node, input_stim) :: side_drives)
      ~t_stop
  in
  let diag = Engine.diagnostics result in
  if diag.Engine.non_converged_steps > 0 then
    Error (Non_converged diag.Engine.non_converged_steps)
  else begin
    (* Hand the t=0 operating point back for the next grid point's warm
       start: across the grid the [t <= 0] drive values are identical, so
       this settled state is (to Newton tolerance) exactly where the next
       run's DC pre-roll wants to end up.  Only a converged run qualifies;
       the later sanity checks gate the *measurement*, but the settled
       state is a valid operating point either way. *)
    (match state_out with
    | Some r -> r := Some (Engine.settled_state result)
    | None -> ());
    let w_in = Engine.waveform result in_node in
    let w_out = Engine.waveform result out_node in
    let out_dir =
      match dir with Library.Rise -> Waveform.Rising | Library.Fall -> Waveform.Falling
    in
    let final = Engine.final_voltage result out_node in
    if Float.abs (final -. target) > 0.15 then Error (No_settle final)
    else begin
      match
        Waveform.delay ~input:w_in ~output:w_out ~out_direction:out_dir
          ~vdd:Device.vdd
      with
      | None -> Error No_crossing
      | Some delay -> begin
        match Waveform.slew w_out ~direction:out_dir ~vdd:Device.vdd with
        | None -> Error No_slew
        | Some out_slew -> Ok (delay, out_slew)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Analytic backend (state-of-the-art closed form, for ablation)       *)
(* ------------------------------------------------------------------ *)

let stage_count circuit (cell : Cell.t) =
  let input_nodes = List.map snd cell.Cell.built.input_nodes in
  let internal_gates =
    List.sort_uniq compare
      (List.filter_map
         (fun (m : Circuit.mos) ->
           if List.mem m.Circuit.g input_nodes then None else Some m.Circuit.g)
         (Circuit.mosfets circuit))
  in
  1 + List.length internal_gates

let drive_resistance circuit ~out_node ~(dir : Library.direction) =
  let wanted =
    match dir with Library.Rise -> Device.Pmos | Library.Fall -> Device.Nmos
  in
  let total_current =
    List.fold_left
      (fun acc (m : Circuit.mos) ->
        if
          m.Circuit.dev.Device.polarity = wanted
          && (m.Circuit.d = out_node || m.Circuit.s = out_node)
        then
          let vov = Device.vdd -. Device.effective_vth m.Circuit.dev in
          acc +. Mosfet.saturation_current m.Circuit.dev ~vov
        else acc)
      0. (Circuit.mosfets circuit)
  in
  if total_current <= 0. then 1e6
  else 0.9 *. Device.vdd /. total_current

let analytic_measure ~base_circuit ~(cell : Cell.t) ~(arc : Cell.arc) ~dir
    ~slew ~load =
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let r = drive_resistance base_circuit ~out_node ~dir in
  let c = load +. Circuit.capacitance base_circuit out_node in
  let stages = stage_count base_circuit cell in
  let intrinsic = 1.2e-11 *. float_of_int (stages - 1) in
  let delay = intrinsic +. (0.69 *. r *. c) +. (0.2 *. slew) in
  let out_slew = (1.39 *. r *. c) +. (0.1 *. slew) in
  (delay, out_slew)

(* ------------------------------------------------------------------ *)
(* Retry with escalation, fault injection                              *)
(* ------------------------------------------------------------------ *)

type point_key = {
  key_cell : string;
  key_from : string;
  key_to : string;
  key_dir : Library.direction;
  key_slew : float;
  key_load : float;
}

let key_to_string k =
  Printf.sprintf "%s arc %s->%s dir=%s slew=%.1fps load=%.2ffF" k.key_cell
    k.key_from k.key_to
    (match k.key_dir with Library.Rise -> "rise" | Library.Fall -> "fall")
    (k.key_slew *. 1e12) (k.key_load *. 1e15)

(* Rungs beyond the first attempt: progressively smaller dt floor, more
   Newton iterations, longer DC settle, and a longer post-transition tail. *)
let max_escalations = 2

let escalated attempt (o : Engine.options) =
  if attempt = 0 then (o, 1.)
  else
    let f = float_of_int attempt in
    ( {
        o with
        Engine.dt_min = o.Engine.dt_min /. (4. ** f);
        newton_max = o.Engine.newton_max * (attempt + 1);
        settle_time = o.Engine.settle_time *. (1. +. f);
      },
      1. +. f )

(* A fault decides deterministically from the point identity (not the call
   order) whether an attempt is sabotaged, so runs are reproducible and
   retries of the same point see the same injected failures up to [depth]. *)
let injects fault key ~attempt =
  attempt < fault.depth
  && fault.rate > 0.
  && Hashtbl.hash (fault.seed, key) land 0xFFFF
     < int_of_float (Float.min 1. fault.rate *. 65536.)

let injected_error fault key =
  match Hashtbl.hash (key, fault.seed, "error-kind") land 3 with
  | 0 -> No_settle (Device.vdd /. 2.)
  | 1 -> No_crossing
  | 2 -> No_slew
  | _ -> Non_converged 1

let rec attempt_point backend ~attempt ~key ?warm ?state_out ~base_circuit
    ~cell ~arc ~dir ~slew ~load () =
  match backend with
  | Faulty (fault, inner) ->
    if injects fault key ~attempt then Error (injected_error fault key)
    else
      attempt_point inner ~attempt ~key ?warm ?state_out ~base_circuit ~cell
        ~arc ~dir ~slew ~load ()
  | Analytic -> Ok (analytic_measure ~base_circuit ~cell ~arc ~dir ~slew ~load)
  | Transient options ->
    let options, t_stop_scale = escalated attempt options in
    (* Escalation rungs run cold: if the first attempt failed, the warm
       seed is suspect, and the rungs are about robustness, not speed. *)
    let warm = if attempt = 0 then warm else None in
    transient_measure ~t_stop_scale ?warm ?state_out options ~base_circuit
      ~cell ~arc ~dir ~slew ~load

(* Pacing between escalation rungs.  A failed rung is usually a
   deterministic solver problem (retrying immediately with tighter settings
   is right), but under an injected-fault backend — the stand-in for flaky
   shared infrastructure — immediate retries against a persistently failing
   resource just spin.  A short capped-exponential pause with jitter seeded
   from the point key keeps retries deterministic per point while spreading
   concurrent workers' retry times apart. *)
let retry_pause_backoff =
  { Retry.default_backoff with
    Retry.base = 5e-4; cap = 5e-3; factor = 2.; jitter = 0.5 }

let measure_point backend ~key ?warm ?state_out ~base_circuit ~cell ~arc ~dir
    ~slew ~load () =
  let pause =
    match backend with
    | Transient _ | Analytic -> None
    | Faulty _ ->
      let rng =
        Aging_util.Rng.create (Int64.of_int (Hashtbl.hash ("pause", key)))
      in
      Some (fun ~failures ->
          Retry.pause_of_backoff ~rng retry_pause_backoff ~failures)
  in
  Retry.with_escalation ?pause
    ~ladder:(List.init (max_escalations + 1) Fun.id)
    (fun attempt ->
      attempt_point backend ~attempt ~key ?warm ?state_out ~base_circuit ~cell
        ~arc ~dir ~slew ~load ())

(* ------------------------------------------------------------------ *)
(* Characterization report                                             *)
(* ------------------------------------------------------------------ *)

type repair = Interpolated | Analytic_fallback

let repair_to_string = function
  | Interpolated -> "interpolated from neighbour grid points"
  | Analytic_fallback -> "analytic closed-form fallback"

type arc_stats = {
  stat_cell : string;
  stat_from : string;
  stat_to : string;
  stat_dir : Library.direction;
  mutable measured : int;
  mutable retried : int;
  mutable repaired : int;
  mutable failed : int;
  mutable repairs : repair list;
  mutable errors : point_error list;
}

type report = { mutable stats : arc_stats list }

let report_create () = { stats = [] }

(* Fresh, unattached stats record: in a parallel build each (arc, dir) work
   unit owns its record exclusively and the records are appended to the
   report afterwards, in work-unit order, so the report is identical
   whatever the worker interleaving was. *)
let make_arc_stats ~cell ~from_pin ~to_pin ~dir =
  {
    stat_cell = cell;
    stat_from = from_pin;
    stat_to = to_pin;
    stat_dir = dir;
    measured = 0;
    retried = 0;
    repaired = 0;
    failed = 0;
    repairs = [];
    errors = [];
  }

type totals = {
  points : int;
  clean : int;
  recovered : int;
  degraded : int;
  lost : int;
}

let report_totals r =
  List.fold_left
    (fun t s ->
      {
        points = t.points + s.measured + s.retried + s.repaired + s.failed;
        clean = t.clean + s.measured;
        recovered = t.recovered + s.retried;
        degraded = t.degraded + s.repaired;
        lost = t.lost + s.failed;
      })
    { points = 0; clean = 0; recovered = 0; degraded = 0; lost = 0 }
    r.stats

let report_clean r =
  let t = report_totals r in
  t.recovered = 0 && t.degraded = 0 && t.lost = 0

let dir_label = function Library.Rise -> "rise" | Library.Fall -> "fall"

let report_to_string r =
  let b = Buffer.create 1024 in
  let t = report_totals r in
  Buffer.add_string b
    (Printf.sprintf
       "characterization report: %d points (%d measured, %d retried, %d \
        repaired, %d failed)\n"
       t.points t.clean t.recovered t.degraded t.lost);
  List.iter
    (fun s ->
      if s.retried + s.repaired + s.failed > 0 then begin
        Buffer.add_string b
          (Printf.sprintf "  %s %s->%s %s: %d measured, %d retried, %d repaired, %d failed\n"
             s.stat_cell s.stat_from s.stat_to (dir_label s.stat_dir) s.measured
             s.retried s.repaired s.failed);
        List.iter
          (fun e ->
            Buffer.add_string b
              (Printf.sprintf "    - %s\n" (point_error_to_string e)))
          (List.rev s.errors);
        List.iter
          (fun rp ->
            Buffer.add_string b
              (Printf.sprintf "    - repair: %s\n" (repair_to_string rp)))
          (List.rev s.repairs)
      end)
    (List.rev r.stats);
  if t.recovered = 0 && t.degraded = 0 && t.lost = 0 then
    Buffer.add_string b "  all points measured on the first attempt\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Grid measurement with graceful degradation                          *)
(* ------------------------------------------------------------------ *)

(* Fill one (slews x loads) grid.  Pass 1 measures every point through the
   escalation ladder; pass 2 repairs exhausted points from already-measured
   orthogonal neighbours (mean of the adjacent grid values — failures are
   sparse, so this is a local estimate), degrading to the analytic
   closed-form model when an entire neighbourhood is missing.  The grid is
   always complete on return. *)
let measure_grid backend ~(stats : arc_stats) ~(axes : Axes.t) ~base_circuit
    ~cell ~arc ~dir =
  let ns = Array.length axes.Axes.slews and nl = Array.length axes.Axes.loads in
  let delays = Array.make_matrix ns nl 0. in
  let slews_out = Array.make_matrix ns nl 0. in
  let ok = Array.make_matrix ns nl false in
  let holes = ref [] in
  (* Warm-start chain: each point seeds the next one's DC settle with the
     operating point of the last successful measurement.  The chain runs
     inside this (arc, dir) work unit, which is always sequential, so the
     grid values are identical whatever the worker fan-out is. *)
  let warm = ref None in
  let state_out = ref None in
  for i = 0 to ns - 1 do
    for j = 0 to nl - 1 do
      let slew = axes.Axes.slews.(i) and load = axes.Axes.loads.(j) in
      let key =
        {
          key_cell = (cell : Cell.t).Cell.name;
          key_from = (arc : Cell.arc).Cell.arc_input;
          key_to = arc.Cell.arc_output;
          key_dir = dir;
          key_slew = slew;
          key_load = load;
        }
      in
      let outcome =
        Span.with_ "characterize.point"
          ~attrs:
            [
              ("cell", key.key_cell);
              ("slew", Printf.sprintf "%.3g" slew);
              ("load", Printf.sprintf "%.3g" load);
            ]
          (fun () ->
            state_out := None;
            let outcome =
              measure_point backend ~key ?warm:!warm ~state_out ~base_circuit
                ~cell ~arc ~dir ~slew ~load ()
            in
            (match !state_out with
            | Some _ as s -> warm := s
            | None -> ());
            outcome)
      in
      match outcome with
      | Retry.First_try (d, s) ->
        delays.(i).(j) <- d;
        slews_out.(i).(j) <- s;
        ok.(i).(j) <- true;
        stats.measured <- stats.measured + 1;
        Metrics.incr m_measured
      | Retry.Recovered ((d, s), errs) ->
        delays.(i).(j) <- d;
        slews_out.(i).(j) <- s;
        ok.(i).(j) <- true;
        stats.retried <- stats.retried + 1;
        Metrics.incr m_retried;
        stats.errors <- List.hd errs :: stats.errors
      | Retry.Exhausted errs ->
        holes := (i, j) :: !holes;
        stats.errors <- List.hd errs :: stats.errors
    done
  done;
  List.iter
    (fun (i, j) ->
      let neighbours =
        List.filter
          (fun (i', j') -> i' >= 0 && i' < ns && j' >= 0 && j' < nl && ok.(i').(j'))
          [ (i - 1, j); (i + 1, j); (i, j - 1); (i, j + 1) ]
      in
      let repair =
        match neighbours with
        | [] ->
          let d, s =
            analytic_measure ~base_circuit ~cell ~arc ~dir
              ~slew:axes.Axes.slews.(i) ~load:axes.Axes.loads.(j)
          in
          delays.(i).(j) <- d;
          slews_out.(i).(j) <- s;
          Analytic_fallback
        | _ ->
          let n = float_of_int (List.length neighbours) in
          let mean get =
            List.fold_left (fun acc (i', j') -> acc +. get i' j') 0. neighbours /. n
          in
          delays.(i).(j) <- mean (fun i' j' -> delays.(i').(j'));
          slews_out.(i).(j) <- mean (fun i' j' -> slews_out.(i').(j'));
          Interpolated
      in
      stats.repairs <- repair :: stats.repairs;
      stats.repaired <- stats.repaired + 1;
      Metrics.incr m_repaired;
      Metrics.incr
        (match repair with
        | Interpolated -> m_repair_interpolated
        | Analytic_fallback -> m_repair_analytic))
    (List.rev !holes);
  if stats.retried + stats.repaired > 0 then
    Log.debugf "characterize" "%s %s->%s %s: %d measured, %d retried, %d repaired"
      stats.stat_cell stats.stat_from stats.stat_to
      (match stats.stat_dir with Library.Rise -> "rise" | Library.Fall -> "fall")
      stats.measured stats.retried stats.repaired;
  ( Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:delays,
    Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:slews_out )

(* ------------------------------------------------------------------ *)
(* Entry / library assembly                                            *)
(* ------------------------------------------------------------------ *)

let arc_measure backend ~scenario ~(cell : Cell.t) ~(arc : Cell.arc) ~dir ~slew
    ~load =
  let base_circuit = aged_circuit ~scenario cell in
  let key =
    {
      key_cell = cell.Cell.name;
      key_from = arc.Cell.arc_input;
      key_to = arc.Cell.arc_output;
      key_dir = dir;
      key_slew = slew;
      key_load = load;
    }
  in
  (* Legacy single-point entry point: the one place a point failure still
     escapes as an exception, after the full escalation ladder. *)
  match
    measure_point backend ~key ~base_circuit ~cell ~arc ~dir ~slew ~load ()
  with
  | Retry.First_try v | Retry.Recovered (v, _) -> v
  | Retry.Exhausted errs ->
    Metrics.incr m_failed;
    failwith
      (Printf.sprintf "Characterize: %s: %s" (key_to_string key)
         (String.concat "; " (List.map point_error_to_string errs)))

let mid_value table =
  let n_s, n_l = Nldm.dimensions table in
  table.Nldm.values.(n_s / 2).(n_l / 2)

(* The independent work units of one cell, in a fixed canonical order (the
   order the sequential code has always measured them in): every
   combinational arc contributes a Rise and a Fall grid; a flip-flop
   contributes its launch-rise and launch-fall grids.  The two launch arcs
   (Q rise with D=1, Q fall with D=0) merge into one library arc; each
   capture value only yields its own output direction. *)
let grid_jobs (cell : Cell.t) =
  match cell.Cell.kind with
  | Cell.Combinational ->
    List.concat_map
      (fun arc -> [ (arc, Library.Rise); (arc, Library.Fall) ])
      (Cell.arcs cell)
  | Cell.Flipflop ->
    let q_arcs = Cell.arcs cell in
    let rise_arc =
      List.find (fun (a : Cell.arc) -> a.Cell.positive_unate) q_arcs
    in
    let fall_arc =
      List.find (fun (a : Cell.arc) -> not a.Cell.positive_unate) q_arcs
    in
    [ (rise_arc, Library.Rise); (fall_arc, Library.Fall) ]

let entry ?(backend = default_backend) ?(indexed = false) ?report ?(jobs = 1)
    ~(axes : Axes.t) ~scenario (cell : Cell.t) =
  let corner_tag = Scenario.suffix scenario.Scenario.corner in
  let t_cell = Span.now () in
  Span.with_ "characterize.cell"
    ~attrs:[ ("cell", cell.Cell.name); ("corner", corner_tag) ]
  @@ fun () ->
  let report = match report with Some r -> r | None -> report_create () in
  (* Shared read-only by every worker; each measurement copies it before
     attaching its own load. *)
  let base_circuit = aged_circuit ~scenario cell in
  let work = grid_jobs cell in
  let results =
    Pool.map ~jobs
      (fun ((arc : Cell.arc), dir) ->
        let stats =
          make_arc_stats ~cell:cell.Cell.name ~from_pin:arc.Cell.arc_input
            ~to_pin:arc.Cell.arc_output ~dir
        in
        let tables =
          Span.with_ "characterize.arc"
            ~attrs:
              [
                ("cell", cell.Cell.name);
                ("from", arc.Cell.arc_input);
                ("to", arc.Cell.arc_output);
                ("dir", dir_label dir);
              ]
            (fun () ->
              measure_grid backend ~stats ~axes ~base_circuit ~cell ~arc ~dir)
        in
        (stats, tables))
      work
  in
  (* Same newest-first report order as a sequential run: prepend in
     work-unit order regardless of which domain finished first. *)
  List.iter (fun (stats, _) -> report.stats <- stats :: report.stats) results;
  let tables = Array.of_list (List.map snd results) in
  let arcs =
    match cell.Cell.kind with
    | Cell.Combinational ->
      List.mapi
        (fun i (arc : Cell.arc) ->
          let delay_rise, slew_rise = tables.(2 * i) in
          let delay_fall, slew_fall = tables.((2 * i) + 1) in
          {
            Library.from_pin = arc.Cell.arc_input;
            to_pin = arc.Cell.arc_output;
            sense =
              (if arc.Cell.positive_unate then Library.Positive
               else Library.Negative);
            when_side = arc.Cell.side;
            delay_rise;
            delay_fall;
            slew_rise;
            slew_fall;
          })
        (Cell.arcs cell)
    | Cell.Flipflop ->
      let rise_arc, _ = List.nth work 0 in
      let delay_rise, slew_rise = tables.(0) in
      let delay_fall, slew_fall = tables.(1) in
      [
        {
          Library.from_pin = rise_arc.Cell.arc_input;
          to_pin = rise_arc.Cell.arc_output;
          sense = Library.Positive;
          when_side = [];
          delay_rise;
          delay_fall;
          slew_rise;
          slew_fall;
        };
      ]
  in
  let setup_time =
    match cell.Cell.kind with
    | Cell.Combinational -> 0.
    | Cell.Flipflop ->
      (* A conservative constant-fraction model: setup tracks the clk->q
         delay of the aged cell. *)
      let worst_clkq =
        List.fold_left
          (fun acc (a : Library.arc) ->
            Float.max acc
              (Float.max (mid_value a.Library.delay_rise)
                 (mid_value a.Library.delay_fall)))
          0. arcs
      in
      0.6 *. worst_clkq
  in
  let indexed_name =
    if indexed then
      cell.Cell.name ^ "@" ^ Scenario.suffix scenario.Scenario.corner
    else cell.Cell.name
  in
  Metrics.incr m_cells;
  Log.infof "characterize" "cell %s [%s]: %d arcs in %.2f s" cell.Cell.name
    corner_tag (List.length arcs)
    (Span.now () -. t_cell);
  {
    Library.cell;
    indexed_name;
    corner = scenario.Scenario.corner;
    arcs;
    pin_caps =
      List.map (fun pin -> (pin, Cell.input_capacitance cell pin)) cell.Cell.inputs;
    setup_time;
  }

let library ?(backend = default_backend) ?cells ?(indexed = false) ?report
    ?(jobs = 1) ~axes ~name ~scenario () =
  let cells = Option.value cells ~default:(Aging_cells.Catalog.all ()) in
  Span.with_ "characterize.library" ~attrs:[ ("library", name) ] @@ fun () ->
  Log.infof "characterize" "library %s: characterizing %d cells [%s, %d job%s]"
    name (List.length cells)
    (Scenario.suffix scenario.Scenario.corner)
    jobs
    (if jobs = 1 then "" else "s");
  (* Two fan-out levels share the same budget: cells across the pool, and
     (arc, dir) grids within each cell.  The pool's nesting guard makes the
     inner level sequential whenever the outer one actually spawned, so the
     inner fan-out only kicks in for small cell lists (tests, bench
     subsets) where the outer level alone cannot fill the pool.  Every
     worker fills a private report; the reports are merged in cell order,
     which makes the final report — like the entry list — bit-for-bit
     independent of the worker count. *)
  let per_cell =
    Pool.map ~jobs
      (fun cell ->
        let cell_report = report_create () in
        let e =
          entry ~backend ~indexed ~report:cell_report ~jobs ~axes ~scenario cell
        in
        (e, cell_report))
      cells
  in
  (match report with
  | None -> ()
  | Some dst ->
    List.iter (fun (_, r) -> dst.stats <- r.stats @ dst.stats) per_cell);
  Library.create ~lib_name:name ~axes (List.map fst per_cell)

let library_report ?backend ?cells ?indexed ?jobs ~axes ~name ~scenario () =
  let report = report_create () in
  let lib =
    library ?backend ?cells ?indexed ~report ?jobs ~axes ~name ~scenario ()
  in
  (lib, report)

let fresh_library ?backend ?cells ?jobs ~axes () =
  library ?backend ?cells ?jobs ~axes ~name:"initial"
    ~scenario:(Scenario.scenario Scenario.fresh) ()
