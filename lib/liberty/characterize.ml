module Device = Aging_physics.Device
module Scenario = Aging_physics.Scenario
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform
module Mosfet = Aging_spice.Mosfet
module Cell = Aging_cells.Cell
module Retry = Aging_util.Retry
module Pool = Aging_util.Pool
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log

(* Per-point accounting in the process-global registry; these partition the
   grid exactly like the [report] counters do, so a metrics dump and a
   characterization report must always agree. *)
let m_measured = Metrics.counter "characterize.points.measured"
let m_retried = Metrics.counter "characterize.points.retried"
let m_repaired = Metrics.counter "characterize.points.repaired"
let m_failed = Metrics.counter "characterize.points.failed"
let m_repair_interpolated = Metrics.counter "characterize.repairs.interpolated"
let m_repair_analytic = Metrics.counter "characterize.repairs.analytic"
let m_cells = Metrics.counter "characterize.cells"

(* Surrogate-mode accounting.  [fit.points.simulated] counts the seed
   subsample, [fit.points.predicted] the grid points served by the model,
   and [fit.points.fallback] the points re-simulated because the model's
   confidence interval exceeded the tolerance; the three partition every
   surrogate grid.  The histograms record relative residuals: the model's
   own leave-one-out estimate, and the true prediction error observed at
   fallback points (where both the prediction and the simulation exist). *)
let m_fit_simulated = Metrics.counter "fit.points.simulated"
let m_fit_predicted = Metrics.counter "fit.points.predicted"
let m_fit_fallback = Metrics.counter "fit.points.fallback"
let m_fit_models = Metrics.counter "fit.models"
let m_fit_degraded = Metrics.counter "fit.models.degraded"
let m_fit_cert_reused = Metrics.counter "fit.certs.reused"

let residual_bounds =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 0.01; 0.03; 0.1; 0.3; 1. |]

let h_fit_loo = Metrics.histogram ~bounds:residual_bounds "fit.residual.loo"

let h_fit_fallback_err =
  Metrics.histogram ~bounds:residual_bounds "fit.residual.fallback"

(* ------------------------------------------------------------------ *)
(* Typed per-point errors                                              *)
(* ------------------------------------------------------------------ *)

type point_error =
  | No_settle of float
  | No_crossing
  | No_slew
  | Non_converged of int

let point_error_to_string = function
  | No_settle v ->
    Printf.sprintf "output did not settle (%.3f V at the final sample)" v
  | No_crossing -> "no 50% crossing"
  | No_slew -> "no 20/80 transition"
  | Non_converged n ->
    Printf.sprintf "solver accepted %d non-converged step%s at the dt floor" n
      (if n = 1 then "" else "s")

type fault = { rate : float; seed : int; depth : int }

type backend =
  | Transient of Engine.options
  | Analytic
  | Faulty of fault * backend

(* Characterization runs many short cell-level transients; a shorter DC
   settle is plenty for single cells and the post-transition tail is cut by
   [stop_when] below. *)
let char_options = { Engine.default_options with Engine.settle_time = 0.8e-9 }

let default_backend = Transient char_options

(* ------------------------------------------------------------------ *)
(* Surrogate configuration                                             *)
(* ------------------------------------------------------------------ *)

type surrogate = {
  sur_tol : float;
  sur_sample : int;
  sur_lambda : float;
  sur_conf : float;
  sur_pool : Aging_fit.Trainset.t option;
  sur_certs : (string, float array array) Hashtbl.t;
      (* Memoized per-anchor certificate grids, keyed by
         (model, axes, reference corner, held-out corner).  None of those
         depend on the target corner, so nearby corners served from the
         same pool reference reuse each other's certificate fits. *)
  sur_lock : Mutex.t;
      (* Guards [sur_certs]: one config is shared by every cell fit of a
         corner build (fanned out over domains) and by parallel nearby
         corner builds, and a bare Hashtbl is not domain-safe. *)
}

let surrogate ?(tol = 0.02) ?(sample = 12) ?(lambda = 1e-6) ?(conf = 1.)
    ?pool () =
  if sample < 4 then invalid_arg "Characterize.surrogate: sample must be >= 4";
  if not (Float.is_finite tol) then
    invalid_arg "Characterize.surrogate: tol must be finite";
  { sur_tol = tol; sur_sample = sample; sur_lambda = lambda; sur_conf = conf;
    sur_pool = pool; sur_certs = Hashtbl.create 64;
    sur_lock = Mutex.create () }

(* Aging features of a corner, measured on reference minimum-width
   devices: threshold shifts and mobility losses for both polarities.
   Within a single-corner fit these are constants (and are neutralized by
   the fit's normalization); across a pooled multi-corner training set
   they are the features that let one model serve nearby corners. *)
let corner_features (scenario : Scenario.t) =
  let p = Scenario.age_device scenario (Device.pmos ~w:Device.w_min) in
  let n = Scenario.age_device scenario (Device.nmos ~w:Device.w_min) in
  [|
    p.Device.delta_vth;
    n.Device.delta_vth;
    1. -. p.Device.mu_factor;
    1. -. n.Device.mu_factor;
  |]

(* The per-model identity: cell family, arc, direction and output metric
   are one-hot by construction — each combination gets its own model (and
   its own pooled-training bucket), which is cheaper and better
   conditioned than a single model with categorical features. *)
let pool_key ~cell ~from_pin ~to_pin ~dir ~metric =
  Printf.sprintf "%s/%s->%s/%s/%s" cell from_pin to_pin
    (match dir with Library.Rise -> "rise" | Library.Fall -> "fall")
    metric

(* Model features of one grid point: log input slew (the axis is
   log-spaced over two decades), raw load in fF (delay is affine in raw
   load — a switched-RC fact the basis should not have to bend a
   logarithm back out of), then the corner features. *)
let point_features ~corner_feats ~slew ~load =
  Array.append [| log slew; load *. 1e15 |] corner_feats

(* [k] distinct indices spread over [0 .. n-1], endpoints always
   included. *)
let spread_indices n k =
  if k >= n then List.init n Fun.id
  else if k <= 1 then [ 0 ]
  else
    List.sort_uniq compare
      (List.init k (fun i ->
           int_of_float
             (Float.round
                (float_of_int i *. float_of_int (n - 1)
                /. float_of_int (k - 1)))))

(* Deterministic seed lattice: about [sample] points as a (slew x load)
   sub-grid, slew-heavy (the curvature lives in the slew direction), both
   axes >= 2 so the fit sees every boundary. *)
let seed_lattice ns nl sample =
  let sample = max 4 (min sample (ns * nl)) in
  let rs =
    let ideal =
      int_of_float (Float.round (sqrt (float_of_int sample *. 4. /. 3.)))
    in
    max 2 (min ns ideal)
  in
  let cs = max 2 (min nl (sample / rs)) in
  (spread_indices ns rs, spread_indices nl cs)

let rail value = if value then Device.vdd else 0.

let in_direction (cell : Cell.t) (arc : Cell.arc) ~(dir : Library.direction) =
  match cell.Cell.kind with
  | Cell.Flipflop -> Library.Rise (* launch edge *)
  | Cell.Combinational ->
    if arc.Cell.positive_unate then dir
    else begin
      match dir with Library.Rise -> Library.Fall | Library.Fall -> Library.Rise
    end

let aged_circuit ~scenario (cell : Cell.t) =
  Circuit.map_devices (Scenario.age_device scenario) cell.Cell.built.circuit

(* ------------------------------------------------------------------ *)
(* Transient backend                                                    *)
(* ------------------------------------------------------------------ *)

let transient_measure ?(t_stop_scale = 1.) ?warm ?state_out options
    ~base_circuit ~(cell : Cell.t) ~(arc : Cell.arc) ~dir ~slew ~load =
  let circuit = Circuit.map_devices Fun.id base_circuit in
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let in_node = List.assoc arc.Cell.arc_input cell.Cell.built.input_nodes in
  Circuit.add_cap circuit out_node load;
  let in_dir = in_direction cell arc ~dir in
  let rising = in_dir = Library.Rise in
  let t_start = 5e-11 in
  let input_stim = Stimulus.ramp ~t_start ~slew ~rising () in
  let side_drives =
    List.map
      (fun (pin, value) ->
        (List.assoc pin cell.Cell.built.input_nodes, Stimulus.constant (rail value)))
      arc.Cell.side
  in
  let init =
    match cell.Cell.kind with
    | Cell.Combinational -> begin
      (* Warm start: seed every free node from a neighbouring grid point's
         settled final state (same topology, slightly different slew/load),
         so DC settling starts at — or within a Newton tolerance of — the
         operating point instead of relaxing from 0 V.  Combinational cells
         only: a latch seeded from a foreign state could settle into the
         wrong stored value. *)
      match warm with
      | Some state when Array.length state = Circuit.node_count circuit ->
        let driven = in_node :: List.map fst side_drives in
        let seeds = ref [] in
        for n = Circuit.node_count circuit - 1 downto 0 do
          if n <> Circuit.gnd && n <> Circuit.vdd && not (List.mem n driven)
          then seeds := (n, state.(n)) :: !seeds
        done;
        !seeds
      | Some _ | None -> []
    end
    | Cell.Flipflop ->
      (* Seed the slave latch storage node with the pre-edge state (the
         output is its complement); the clocked keeper maintains it through
         DC settling so the launch edge produces a real Q transition. *)
      let q_pre = (out_node, rail (dir = Library.Fall)) in
      begin
        match Circuit.find_node circuit "SLAVE" with
        | Some slave -> [ (slave, rail (dir = Library.Rise)); q_pre ]
        | None -> [ q_pre ]
      end
  in
  let t_stop = t_start +. Stimulus.full_ramp_time slew +. (t_stop_scale *. 3e-9) in
  let target = rail (dir = Library.Rise) in
  let stop_when time v =
    (* The output started at the opposite rail; once it is pinned to the
       target rail every crossing needed by the measurements has happened —
       but never stop before the input's own 50 % point, which a fast gate
       under a slow ramp can beat (negative delay). *)
    time > t_start +. (0.6 *. Stimulus.full_ramp_time slew)
    && Float.abs (v.(out_node) -. target) < 0.015
  in
  let result =
    Engine.transient ~options ~init ~stop_when circuit
      ~drives:((in_node, input_stim) :: side_drives)
      ~t_stop
  in
  let diag = Engine.diagnostics result in
  if diag.Engine.non_converged_steps > 0 then
    Error (Non_converged diag.Engine.non_converged_steps)
  else begin
    (* Hand the t=0 operating point back for the next grid point's warm
       start: across the grid the [t <= 0] drive values are identical, so
       this settled state is (to Newton tolerance) exactly where the next
       run's DC pre-roll wants to end up.  Only a converged run qualifies;
       the later sanity checks gate the *measurement*, but the settled
       state is a valid operating point either way. *)
    (match state_out with
    | Some r -> r := Some (Engine.settled_state result)
    | None -> ());
    let w_in = Engine.waveform result in_node in
    let w_out = Engine.waveform result out_node in
    let out_dir =
      match dir with Library.Rise -> Waveform.Rising | Library.Fall -> Waveform.Falling
    in
    let final = Engine.final_voltage result out_node in
    if Float.abs (final -. target) > 0.15 then Error (No_settle final)
    else begin
      match
        Waveform.delay ~input:w_in ~output:w_out ~out_direction:out_dir
          ~vdd:Device.vdd
      with
      | None -> Error No_crossing
      | Some delay -> begin
        match Waveform.slew w_out ~direction:out_dir ~vdd:Device.vdd with
        | None -> Error No_slew
        | Some out_slew -> Ok (delay, out_slew)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Analytic backend (state-of-the-art closed form, for ablation)       *)
(* ------------------------------------------------------------------ *)

let stage_count circuit (cell : Cell.t) =
  let input_nodes = List.map snd cell.Cell.built.input_nodes in
  let internal_gates =
    List.sort_uniq compare
      (List.filter_map
         (fun (m : Circuit.mos) ->
           if List.mem m.Circuit.g input_nodes then None else Some m.Circuit.g)
         (Circuit.mosfets circuit))
  in
  1 + List.length internal_gates

let drive_resistance circuit ~out_node ~(dir : Library.direction) =
  let wanted =
    match dir with Library.Rise -> Device.Pmos | Library.Fall -> Device.Nmos
  in
  let total_current =
    List.fold_left
      (fun acc (m : Circuit.mos) ->
        if
          m.Circuit.dev.Device.polarity = wanted
          && (m.Circuit.d = out_node || m.Circuit.s = out_node)
        then
          let vov = Device.vdd -. Device.effective_vth m.Circuit.dev in
          acc +. Mosfet.saturation_current m.Circuit.dev ~vov
        else acc)
      0. (Circuit.mosfets circuit)
  in
  if total_current <= 0. then 1e6
  else 0.9 *. Device.vdd /. total_current

let analytic_measure ~base_circuit ~(cell : Cell.t) ~(arc : Cell.arc) ~dir
    ~slew ~load =
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let r = drive_resistance base_circuit ~out_node ~dir in
  let c = load +. Circuit.capacitance base_circuit out_node in
  let stages = stage_count base_circuit cell in
  let intrinsic = 1.2e-11 *. float_of_int (stages - 1) in
  let delay = intrinsic +. (0.69 *. r *. c) +. (0.2 *. slew) in
  let out_slew = (1.39 *. r *. c) +. (0.1 *. slew) in
  (delay, out_slew)

(* ------------------------------------------------------------------ *)
(* Retry with escalation, fault injection                              *)
(* ------------------------------------------------------------------ *)

type point_key = {
  key_cell : string;
  key_from : string;
  key_to : string;
  key_dir : Library.direction;
  key_slew : float;
  key_load : float;
}

let key_to_string k =
  Printf.sprintf "%s arc %s->%s dir=%s slew=%.1fps load=%.2ffF" k.key_cell
    k.key_from k.key_to
    (match k.key_dir with Library.Rise -> "rise" | Library.Fall -> "fall")
    (k.key_slew *. 1e12) (k.key_load *. 1e15)

(* Rungs beyond the first attempt: progressively smaller dt floor, more
   Newton iterations, longer DC settle, and a longer post-transition tail. *)
let max_escalations = 2

let escalated attempt (o : Engine.options) =
  if attempt = 0 then (o, 1.)
  else
    let f = float_of_int attempt in
    ( {
        o with
        Engine.dt_min = o.Engine.dt_min /. (4. ** f);
        newton_max = o.Engine.newton_max * (attempt + 1);
        settle_time = o.Engine.settle_time *. (1. +. f);
      },
      1. +. f )

(* A fault decides deterministically from the point identity (not the call
   order) whether an attempt is sabotaged, so runs are reproducible and
   retries of the same point see the same injected failures up to [depth]. *)
let injects fault key ~attempt =
  attempt < fault.depth
  && fault.rate > 0.
  && Hashtbl.hash (fault.seed, key) land 0xFFFF
     < int_of_float (Float.min 1. fault.rate *. 65536.)

let injected_error fault key =
  match Hashtbl.hash (key, fault.seed, "error-kind") land 3 with
  | 0 -> No_settle (Device.vdd /. 2.)
  | 1 -> No_crossing
  | 2 -> No_slew
  | _ -> Non_converged 1

let rec attempt_point backend ~attempt ~key ?warm ?state_out ~base_circuit
    ~cell ~arc ~dir ~slew ~load () =
  match backend with
  | Faulty (fault, inner) ->
    if injects fault key ~attempt then Error (injected_error fault key)
    else
      attempt_point inner ~attempt ~key ?warm ?state_out ~base_circuit ~cell
        ~arc ~dir ~slew ~load ()
  | Analytic -> Ok (analytic_measure ~base_circuit ~cell ~arc ~dir ~slew ~load)
  | Transient options ->
    let options, t_stop_scale = escalated attempt options in
    (* Escalation rungs run cold: if the first attempt failed, the warm
       seed is suspect, and the rungs are about robustness, not speed. *)
    let warm = if attempt = 0 then warm else None in
    transient_measure ~t_stop_scale ?warm ?state_out options ~base_circuit
      ~cell ~arc ~dir ~slew ~load

(* Pacing between escalation rungs.  A failed rung is usually a
   deterministic solver problem (retrying immediately with tighter settings
   is right), but under an injected-fault backend — the stand-in for flaky
   shared infrastructure — immediate retries against a persistently failing
   resource just spin.  A short capped-exponential pause with jitter seeded
   from the point key keeps retries deterministic per point while spreading
   concurrent workers' retry times apart. *)
let retry_pause_backoff =
  { Retry.default_backoff with
    Retry.base = 5e-4; cap = 5e-3; factor = 2.; jitter = 0.5 }

let measure_point backend ~key ?warm ?state_out ~base_circuit ~cell ~arc ~dir
    ~slew ~load () =
  let pause =
    match backend with
    | Transient _ | Analytic -> None
    | Faulty _ ->
      let rng =
        Aging_util.Rng.create (Int64.of_int (Hashtbl.hash ("pause", key)))
      in
      Some (fun ~failures ->
          Retry.pause_of_backoff ~rng retry_pause_backoff ~failures)
  in
  Retry.with_escalation ?pause
    ~ladder:(List.init (max_escalations + 1) Fun.id)
    (fun attempt ->
      attempt_point backend ~attempt ~key ?warm ?state_out ~base_circuit ~cell
        ~arc ~dir ~slew ~load ())

(* ------------------------------------------------------------------ *)
(* Characterization report                                             *)
(* ------------------------------------------------------------------ *)

type repair = Interpolated | Analytic_fallback

let repair_to_string = function
  | Interpolated -> "interpolated from neighbour grid points"
  | Analytic_fallback -> "analytic closed-form fallback"

(* Where each grid point of a surrogate build came from: a seed
   simulation, an accepted model prediction, or a low-confidence fallback
   re-simulation. *)
type prov = Seeded | Predicted | Fell_back

type arc_stats = {
  stat_cell : string;
  stat_from : string;
  stat_to : string;
  stat_dir : Library.direction;
  mutable measured : int;
  mutable retried : int;
  mutable repaired : int;
  mutable failed : int;
  mutable predicted : int;
  mutable repairs : repair list;
  mutable errors : point_error list;
  mutable prov : prov array array option;
      (* per-point provenance, surrogate builds only *)
  mutable sim_seconds : float;  (* wall time inside point simulations *)
  mutable grid_seconds : float; (* wall time of the whole grid *)
}

type report = { mutable stats : arc_stats list }

let report_create () = { stats = [] }

(* Fresh, unattached stats record: in a parallel build each (arc, dir) work
   unit owns its record exclusively and the records are appended to the
   report afterwards, in work-unit order, so the report is identical
   whatever the worker interleaving was. *)
let make_arc_stats ~cell ~from_pin ~to_pin ~dir =
  {
    stat_cell = cell;
    stat_from = from_pin;
    stat_to = to_pin;
    stat_dir = dir;
    measured = 0;
    retried = 0;
    repaired = 0;
    failed = 0;
    predicted = 0;
    repairs = [];
    errors = [];
    prov = None;
    sim_seconds = 0.;
    grid_seconds = 0.;
  }

type totals = {
  points : int;
  clean : int;
  recovered : int;
  degraded : int;
  lost : int;
  guessed : int;
}

let report_totals r =
  List.fold_left
    (fun t s ->
      {
        points =
          t.points + s.measured + s.retried + s.repaired + s.failed
          + s.predicted;
        clean = t.clean + s.measured;
        recovered = t.recovered + s.retried;
        degraded = t.degraded + s.repaired;
        lost = t.lost + s.failed;
        guessed = t.guessed + s.predicted;
      })
    { points = 0; clean = 0; recovered = 0; degraded = 0; lost = 0; guessed = 0 }
    r.stats

let report_clean r =
  let t = report_totals r in
  t.recovered = 0 && t.degraded = 0 && t.lost = 0

type surrogate_totals = {
  fit_simulated : int;
  fit_predicted : int;
  fit_fallback : int;
  fit_speedup : float;
}

(* Surrogate accounting of one report: provenance counts plus an
   estimated speedup — the measured mean cost of the points that were
   simulated, extrapolated to the full grid, against the wall time the
   grid actually took (fit and prediction overhead included).  The bench
   scenario measures the true speedup with a separate full build; this
   estimate is what a single surrogate run can report on its own. *)
let report_surrogate r =
  let any = List.exists (fun s -> s.prov <> None) r.stats in
  if not any then None
  else begin
    let sim = ref 0 and pred = ref 0 and fb = ref 0 in
    let sim_s = ref 0. and grid_s = ref 0. in
    List.iter
      (fun s ->
        sim_s := !sim_s +. s.sim_seconds;
        grid_s := !grid_s +. s.grid_seconds;
        match s.prov with
        | None -> ()
        | Some grid ->
          Array.iter
            (Array.iter (function
              | Seeded -> incr sim
              | Predicted -> incr pred
              | Fell_back -> incr fb))
            grid)
      r.stats;
    let sims = !sim + !fb in
    let per_sim = if sims > 0 then !sim_s /. float_of_int sims else 0. in
    let total = sims + !pred in
    let speedup =
      if !grid_s > 0. && per_sim > 0. then
        per_sim *. float_of_int total /. !grid_s
      else 1.
    in
    Some
      {
        fit_simulated = !sim;
        fit_predicted = !pred;
        fit_fallback = !fb;
        fit_speedup = speedup;
      }
  end

let dir_label = function Library.Rise -> "rise" | Library.Fall -> "fall"

let report_to_string r =
  let b = Buffer.create 1024 in
  let t = report_totals r in
  Buffer.add_string b
    (Printf.sprintf
       "characterization report: %d points (%d measured, %d retried, %d \
        repaired, %d failed%s)\n"
       t.points t.clean t.recovered t.degraded t.lost
       (if t.guessed > 0 then Printf.sprintf ", %d predicted" t.guessed
        else ""));
  List.iter
    (fun s ->
      if s.retried + s.repaired + s.failed > 0 then begin
        Buffer.add_string b
          (Printf.sprintf "  %s %s->%s %s: %d measured, %d retried, %d repaired, %d failed\n"
             s.stat_cell s.stat_from s.stat_to (dir_label s.stat_dir) s.measured
             s.retried s.repaired s.failed);
        List.iter
          (fun e ->
            Buffer.add_string b
              (Printf.sprintf "    - %s\n" (point_error_to_string e)))
          (List.rev s.errors);
        List.iter
          (fun rp ->
            Buffer.add_string b
              (Printf.sprintf "    - repair: %s\n" (repair_to_string rp)))
          (List.rev s.repairs)
      end)
    (List.rev r.stats);
  if t.recovered = 0 && t.degraded = 0 && t.lost = 0 then
    Buffer.add_string b "  all points measured on the first attempt\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Grid measurement with graceful degradation                          *)
(* ------------------------------------------------------------------ *)

module Ridge = Aging_fit.Ridge
module Trainset = Aging_fit.Trainset

(* Proximity bandwidth, as a fraction of the largest pairwise
   corner-feature distance between pool corners: the certificate below
   replays the surrogate scheme only at pool corners whose Gaussian
   weight in this bandwidth is non-negligible — a certificate earned at a
   far corner says nothing about conditions the target actually sees. *)
let proximity_frac = 0.45

(* Pool corners below this Gaussian weight are not worth replaying. *)
let proximity_cutoff = 1e-4

(* Fit-and-predict path of one surrogate grid.  The seeds have been
   simulated on a deterministic sub-lattice (warm-start chain preserved);
   this fits one ridge model per output metric on the seed results plus
   any pooled anchor rows, then serves each remaining point from the
   model when its confidence interval is within tolerance and re-simulates
   it otherwise.

   All fits are weighted by [1 / |target|], so the leave-one-out sigma and
   the confidence half-widths come out in relative units — directly
   comparable to [sur_tol].

   A primed pool (see {!Degradation_library}) switches the fit into
   multi-fidelity ratio mode: the pool's corner nearest the target becomes
   the {e reference}, the training target becomes the ratio of the
   target's value to the reference value at the same (slew, load) point,
   and a prediction is the fitted ratio times the reference value.  Aging
   scales a timing surface far more smoothly than it shapes it, and the
   sharp (slew, load) features of a table are corner-independent to first
   order, so they cancel in the ratio — which is what lets a low-degree
   bivariate tensor fitted on the target's own seed lattice certify
   percent-level tolerances that it could never reach on absolute values.
   On top of the per-point confidence gate, pooled models carry a
   replayed-anchor certificate: the same (lattice, basis, gate) scheme is
   re-run at the pool corners nearest the target — fitting their
   seed-lattice ratios and comparing confidently-served predictions
   against their full tables, whose truth is known — and a grid point is
   only served where that replayed error also stayed within tolerance.
   The certificate is the check that catches scheme-level misfit the
   confidence interval is blind to, and because it depends only on the
   (reference, anchor) pair it is memoized and reused across nearby
   corner builds. *)
let surrogate_grid s ~corner_feats ~(stats : arc_stats) ~(axes : Axes.t) ~ns
    ~nl ~delays ~slews_out ~ok ~sim_point =
  let prov = Array.make_matrix ns nl Fell_back in
  stats.prov <- Some prov;
  let key metric =
    pool_key ~cell:stats.stat_cell ~from_pin:stats.stat_from
      ~to_pin:stats.stat_to ~dir:stats.stat_dir ~metric
  in
  let pooled_rows metric =
    match s.sur_pool with
    | None -> []
    | Some pool -> Trainset.rows pool (key metric)
  in
  let pool_delay = pooled_rows "delay" and pool_slew = pooled_rows "slew" in
  (* Group pool rows by corner: the feature dimensions beyond (slew, load)
     identify the corner a row was harvested from.  First-seen order keeps
     everything deterministic; rows whose arity disagrees with the
     target's features could not join a fit and are dropped. *)
  let sfx_len = Array.length corner_feats in
  let corners_of rows =
    let order = ref [] and tbls = Hashtbl.create 7 in
    List.iter
      (fun (r : Trainset.row) ->
        let f = r.Trainset.tr_features in
        if Array.length f = 2 + sfx_len && Array.for_all Float.is_finite f
        then begin
          let sfx = Array.sub f 2 sfx_len in
          let tbl =
            match Hashtbl.find_opt tbls sfx with
            | Some t -> t
            | None ->
              let t = Hashtbl.create 64 in
              Hashtbl.add tbls sfx t;
              order := sfx :: !order;
              t
          in
          Hashtbl.replace tbl (f.(0), f.(1)) r.Trainset.tr_target
        end)
      rows;
    Array.of_list
      (List.rev_map (fun sfx -> (sfx, Hashtbl.find tbls sfx)) !order)
  in
  let corners_delay = corners_of pool_delay in
  let corners_slew = corners_of pool_slew in
  (* Corner distance lives in the two threshold-shift features; the
     mobility losses are monotone functions of the same stress and add no
     geometry. *)
  let d2 a b =
    let n = min 2 (min (Array.length a) (Array.length b)) in
    let acc = ref 0. in
    for k = 0 to n - 1 do
      let d = a.(k) -. b.(k) in
      acc := !acc +. (d *. d)
    done;
    !acc
  in
  let dmax2 corners =
    Array.fold_left
      (fun acc (a, _) ->
        Array.fold_left (fun acc (b, _) -> Float.max acc (d2 a b)) acc corners)
      0. corners
  in
  (* A primed pool carries whole anchor grids per metric from at least two
     distinct corners; only then is ratio mode usable (and only then is it
     worth shrinking the local seed lattice). *)
  let min_pool = 40 in
  let pooled_usable pool corners =
    List.length pool >= min_pool
    && Array.length corners >= 2
    && dmax2 corners > 0.
  in
  let pooled =
    pooled_usable pool_delay corners_delay
    && pooled_usable pool_slew corners_slew
  in
  let sample = s.sur_sample in
  let seed_rows, seed_cols = seed_lattice ns nl sample in
  let is_seed = Array.make_matrix ns nl false in
  List.iter
    (fun i -> List.iter (fun j -> is_seed.(i).(j) <- true) seed_cols)
    seed_rows;
  for i = 0 to ns - 1 do
    for j = 0 to nl - 1 do
      if is_seed.(i).(j) then begin
        sim_point i j;
        prov.(i).(j) <- Seeded;
        Metrics.incr m_fit_simulated
      end
    done
  done;
  let feats i j =
    point_features ~corner_feats ~slew:axes.Axes.slews.(i)
      ~load:axes.Axes.loads.(j)
  in
  let seed_pts =
    List.concat_map (fun i -> List.map (fun j -> (i, j)) seed_cols) seed_rows
  in
  let fit_degraded e =
    Metrics.incr m_fit_degraded;
    Log.debugf "characterize" "surrogate fit degraded (%s %s->%s %s): %s"
      stats.stat_cell stats.stat_from stats.stat_to (dir_label stats.stat_dir)
      (Ridge.error_to_string e);
    None
  in
  let fit_ok m =
    Metrics.incr m_fit_models;
    Array.iter
      (fun r -> Metrics.observe h_fit_loo (Float.abs r))
      (Ridge.loo_residuals m)
  in
  (* Standalone path: one absolute-valued model per metric on the local
     seeds alone, with a slew-heavy tensor basis (the curvature lives in
     the slew direction; delay is nearly affine in load) sized to leave
     leave-one-out degrees of freedom. *)
  let local_model sel =
    let data =
      List.filter_map
        (fun (i, j) ->
          if not ok.(i).(j) then None
          else
            let y = sel i j in
            if Float.is_finite y && y > 0. then Some (feats i j, y) else None)
        seed_pts
    in
    let n = List.length data in
    if n < 6 then None
    else begin
      let degrees =
        let ds = ref 3 and dl = ref 2 in
        let budget = n - max 2 (n / 4) in
        while (!ds + 1) * (!dl + 1) > budget && (!ds > 1 || !dl > 1) do
          if !dl > 1 then decr dl else decr ds
        done;
        Array.append [| !ds; !dl |] (Array.make sfx_len 0)
      in
      let rows = Array.of_list (List.map fst data) in
      let ys = Array.of_list (List.map snd data) in
      let weights = Array.map (fun y -> 1. /. y) ys in
      match
        Ridge.fit ~lambda:s.sur_lambda ~basis:(Ridge.Tensor degrees)
          ~drop_constant:true ~weights ~rows ~targets:ys ()
      with
      | Ok m ->
        fit_ok m;
        (* The fit is 1/y-weighted on absolute targets, so leverage must
           be taken in weighted units (~weight:(1/p)) or it would scale
           with y^2 ~ 1e-20 and the gate could never see extrapolation. *)
        let serve i j =
          let x = feats i j in
          let p = Ridge.predict m x in
          if p <= 0. then None
          else
            let w =
              Ridge.confidence ~conf:s.sur_conf ~weight:(1. /. p) m x
            in
            if w <= s.sur_tol then Some p else None
        in
        let raw i j = Some (Ridge.predict m (feats i j)) in
        Some (serve, raw)
      | Error e -> fit_degraded e
    end
  in
  (* Pooled multi-fidelity ratio path (see the module comment above). *)
  let pooled_model corners pool_key sel =
    let nc = Array.length corners in
    let h2 = proximity_frac *. proximity_frac *. dmax2 corners in
    let ref_idx = ref 0 and best = ref Float.infinity in
    for c = 0 to nc - 1 do
      let d = d2 (fst corners.(c)) corner_feats in
      if d < !best then begin
        best := d;
        ref_idx := c
      end
    done;
    let ref_idx = !ref_idx in
    let ref_tbl = snd corners.(ref_idx) in
    let ref_at i j =
      let f = feats i j in
      match Hashtbl.find_opt ref_tbl (f.(0), f.(1)) with
      | Some rv when rv > 1e-18 -> Some rv
      | _ -> None
    in
    let feats_at sfx i j =
      point_features ~corner_feats:sfx ~slew:axes.Axes.slews.(i)
        ~load:axes.Axes.loads.(j)
    in
    (* Ratio of a pool corner's table to the reference at a grid point;
       the guard drops non-finite values and sign flips near zero. *)
    let ratio_at tbl i j =
      match ref_at i j with
      | None -> None
      | Some rv -> (
        let f = feats i j in
        match Hashtbl.find_opt tbl (f.(0), f.(1)) with
        | Some v when Float.is_finite v && v /. rv > 1e-12 -> Some (v /. rv)
        | _ -> None)
    in
    (* Ratio fits are tiny: a bivariate tensor over (log slew, load)
       sized to leave leave-one-out degrees of freedom on the seed
       lattice.  The corner dimensions are constant within one fit — the
       normalization neutralizes them — so the model is a 2-D surface and
       the [O(rows * params^2)] solve costs microseconds; the pooled
       path's cost is its seed simulations, not its algebra. *)
    (* Slew-heavy tensor ladder sized to the seed count: the fit must
       keep its parameter count well under the row count or the
       leave-one-out residuals (inflated by 1/(1 - h_ii)) turn into
       noise and the confidence gate rejects everything.  [3;1] is
       deliberately absent — cubic wiggle in slew with an affine load
       axis fits the seeds and misses between them. *)
    let degrees n =
      let budget = max 4 (n * 3 / 5) in
      let ds, dl =
        if 12 <= budget then (3, 2)
        else if 9 <= budget then (2, 2)
        else if 6 <= budget then (2, 1)
        else (1, 1)
      in
      Array.append [| ds; dl |] (Array.make sfx_len 0)
    in
    let lambda = Float.max s.sur_lambda 1e-4 in
    let fit_ratio data =
      let n = List.length data in
      if n < 4 then Error (Ridge.Too_few_rows { rows = n; params = 4 })
      else
        let rows = Array.of_list (List.map fst data) in
        let ys = Array.of_list (List.map snd data) in
        let weights = Array.map (fun y -> 1. /. y) ys in
        Ridge.fit ~lambda ~basis:(Ridge.Tensor (degrees n))
          ~drop_constant:true ~weights ~rows ~targets:ys ()
    in
    (* Replayed-anchor certificate: re-run the whole scheme at pool
       corner [a], whose full table is known — fit its seed-lattice
       ratios, then score every grid point.  The certificate is
       two-sided: a point the replayed gate served records its actual
       error, and a point it would {e not} have served (wide interval,
       non-positive prediction, missing value) records infinity — "not
       measurable here" must read as unsafe, or the exact regions where
       the model is shaky would sail through a zero certificate.  A
       failed replay fit certifies nothing (infinite everywhere).  The
       result depends only on (model, axes, reference, anchor), so it is
       memoized in the config and shared by every nearby corner build
       that picks the same reference. *)
    let cert_of a =
      let sfx_a, tbl_a = corners.(a) in
      let cert = Array.make_matrix ns nl 0. in
      let seeds =
        List.filter_map
          (fun (i, j) ->
            Option.map (fun y -> (feats_at sfx_a i j, y)) (ratio_at tbl_a i j))
          seed_pts
      in
      (match fit_ratio seeds with
      | Error _ ->
        Array.iter (fun r -> Array.fill r 0 nl Float.infinity) cert
      | Ok m ->
        for i = 0 to ns - 1 do
          for j = 0 to nl - 1 do
            if not is_seed.(i).(j) then
              match ratio_at tbl_a i j with
              | None -> cert.(i).(j) <- Float.infinity
              | Some y ->
                let x = feats_at sfx_a i j in
                let p = Ridge.predict m x in
                cert.(i).(j) <-
                  (if
                     p > 0.
                     && Ridge.confidence ~conf:s.sur_conf
                          ~weight:(1. /. p) m x
                        <= s.sur_tol
                   then Float.abs (p -. y) /. y
                   else Float.infinity)
          done
        done);
      cert
    in
    let sfx_tag sfx =
      String.concat ","
        (List.map (Printf.sprintf "%.17g") (Array.to_list sfx))
    in
    let axes_tag =
      Printf.sprintf "%dx%d:%.17g,%.17g,%.17g,%.17g" ns nl
        axes.Axes.slews.(0)
        axes.Axes.slews.(ns - 1)
        axes.Axes.loads.(0)
        axes.Axes.loads.(nl - 1)
    in
    let cert_for a =
      let k =
        Printf.sprintf "%s|%d|%s|%s|%s" pool_key s.sur_sample axes_tag
          (sfx_tag (fst corners.(ref_idx)))
          (sfx_tag (fst corners.(a)))
      in
      match
        Mutex.protect s.sur_lock (fun () -> Hashtbl.find_opt s.sur_certs k)
      with
      | Some c ->
        Metrics.incr m_fit_cert_reused;
        c
      | None ->
        (* Replay outside the lock: it is pure and deterministic, so two
           domains racing on the same key waste one replay at worst —
           cheaper than serializing every cell fit behind it. *)
        let c = cert_of a in
        Mutex.protect s.sur_lock (fun () ->
            match Hashtbl.find_opt s.sur_certs k with
            | Some c' ->
              Metrics.incr m_fit_cert_reused;
              c'
            | None ->
              Hashtbl.add s.sur_certs k c;
              c)
    in
    (* Only the two pool corners nearest the target are replayed — a far
       corner certifies conditions the target never sees, at a full
       replay each. *)
    let held_out =
      let ds = ref [] in
      for a = nc - 1 downto 0 do
        if a <> ref_idx then begin
          let d = d2 (fst corners.(a)) corner_feats in
          if exp (-.d /. (2. *. h2)) > proximity_cutoff then
            ds := (d, a) :: !ds
        end
      done;
      List.filteri (fun i _ -> i < 2) (List.sort compare !ds)
    in
    let cert = Array.make_matrix ns nl 0. in
    List.iter
      (fun (_, a) ->
        let ca = cert_for a in
        for i = 0 to ns - 1 do
          for j = 0 to nl - 1 do
            cert.(i).(j) <- Float.max cert.(i).(j) ca.(i).(j)
          done
        done)
      held_out;
    (* An unreplayable pool (a single usable anchor besides the
       reference, or none in range) certifies nothing: serve nothing and
       let every point fall back to simulation. *)
    if held_out = [] then
      Array.iter (fun r -> Array.fill r 0 nl Float.infinity) cert;
    let target_seeds =
      List.filter_map
        (fun (i, j) ->
          if not ok.(i).(j) then None
          else
            match ref_at i j with
            | None -> None
            | Some rv ->
              let y = sel i j /. rv in
              if Float.is_finite y && y > 1e-12 then Some (feats i j, y)
              else None)
        seed_pts
    in
    match fit_ratio target_seeds with
    | Error e -> fit_degraded e
    | Ok m ->
      fit_ok m;
      let serve i j =
        match ref_at i j with
        | None -> None
        | Some rv ->
          if cert.(i).(j) > s.sur_tol then None
          else
            (* Same weighted-leverage gate as the certificate replay
               above; ratios sit near 1, so the weight mostly matters
               for consistency between replay and serve. *)
            let x = feats i j in
            let p = Ridge.predict m x in
            if
              p > 0.
              && Ridge.confidence ~conf:s.sur_conf ~weight:(1. /. p) m x
                 <= s.sur_tol
            then Some (p *. rv)
            else None
      in
      let raw i j =
        Option.map (fun rv -> Ridge.predict m (feats i j) *. rv) (ref_at i j)
      in
      Some (serve, raw)
  in
  let metric_model corners metric sel =
    if pooled then pooled_model corners (key metric) sel else local_model sel
  in
  let dm = metric_model corners_delay "delay" (fun i j -> delays.(i).(j)) in
  let sm = metric_model corners_slew "slew" (fun i j -> slews_out.(i).(j)) in
  let serve modelopt i j =
    match modelopt with None -> None | Some (serve, _) -> serve i j
  in
  for i = 0 to ns - 1 do
    for j = 0 to nl - 1 do
      if not is_seed.(i).(j) then begin
        match (serve dm i j, serve sm i j) with
        | Some d, Some sv ->
          delays.(i).(j) <- d;
          slews_out.(i).(j) <- sv;
          ok.(i).(j) <- true;
          prov.(i).(j) <- Predicted;
          stats.predicted <- stats.predicted + 1;
          Metrics.incr m_fit_predicted
        | _ ->
          sim_point i j;
          Metrics.incr m_fit_fallback;
          if ok.(i).(j) then
            (* The fallback simulated the truth: record how far off the
               model would have been — the empirical generalization
               error the confidence gate caught. *)
            match dm with
            | Some (_, raw) -> (
              match raw i j with
              | Some pd when delays.(i).(j) > 0. ->
                Metrics.observe h_fit_fallback_err
                  (Float.abs (pd -. delays.(i).(j)) /. delays.(i).(j))
              | _ -> ())
            | None -> ()
      end
    done
  done

(* Fill one (slews x loads) grid.  Pass 1 measures every point through the
   escalation ladder; pass 2 repairs exhausted points from already-measured
   orthogonal neighbours (mean of the adjacent grid values — failures are
   sparse, so this is a local estimate), degrading to the analytic
   closed-form model when an entire neighbourhood is missing.  The grid is
   always complete on return. *)
let measure_grid ?surrogate:sur ?(corner_feats = [||]) backend
    ~(stats : arc_stats) ~(axes : Axes.t) ~base_circuit ~cell ~arc ~dir =
  let ns = Array.length axes.Axes.slews and nl = Array.length axes.Axes.loads in
  let delays = Array.make_matrix ns nl 0. in
  let slews_out = Array.make_matrix ns nl 0. in
  let ok = Array.make_matrix ns nl false in
  let holes = ref [] in
  let t_grid = Span.now () in
  (* Warm-start chain: each point seeds the next one's DC settle with the
     operating point of the last successful measurement.  The chain runs
     inside this (arc, dir) work unit, which is always sequential, so the
     grid values are identical whatever the worker fan-out is. *)
  let warm = ref None in
  let state_out = ref None in
  let sim_point i j =
    let slew = axes.Axes.slews.(i) and load = axes.Axes.loads.(j) in
    let key =
      {
        key_cell = (cell : Cell.t).Cell.name;
        key_from = (arc : Cell.arc).Cell.arc_input;
        key_to = arc.Cell.arc_output;
        key_dir = dir;
        key_slew = slew;
        key_load = load;
      }
    in
    let t_point = Span.now () in
    let outcome =
      Span.with_ "characterize.point"
        ~attrs:
          [
            ("cell", key.key_cell);
            ("slew", Printf.sprintf "%.3g" slew);
            ("load", Printf.sprintf "%.3g" load);
          ]
        (fun () ->
          state_out := None;
          let outcome =
            measure_point backend ~key ?warm:!warm ~state_out ~base_circuit
              ~cell ~arc ~dir ~slew ~load ()
          in
          (match !state_out with
          | Some _ as s -> warm := s
          | None -> ());
          outcome)
    in
    stats.sim_seconds <- stats.sim_seconds +. (Span.now () -. t_point);
    match outcome with
    | Retry.First_try (d, s) ->
      delays.(i).(j) <- d;
      slews_out.(i).(j) <- s;
      ok.(i).(j) <- true;
      stats.measured <- stats.measured + 1;
      Metrics.incr m_measured
    | Retry.Recovered ((d, s), errs) ->
      delays.(i).(j) <- d;
      slews_out.(i).(j) <- s;
      ok.(i).(j) <- true;
      stats.retried <- stats.retried + 1;
      Metrics.incr m_retried;
      stats.errors <- List.hd errs :: stats.errors
    | Retry.Exhausted errs ->
      holes := (i, j) :: !holes;
      stats.errors <- List.hd errs :: stats.errors
  in
  (match sur with
  | None ->
    for i = 0 to ns - 1 do
      for j = 0 to nl - 1 do
        sim_point i j
      done
    done
  | Some s when s.sur_tol <= 0. ->
    (* A zero (or negative) tolerance admits no prediction: run the exact
       sequential sweep of a non-surrogate build — same visit order, same
       warm-start chain, bit-identical tables — and account every point
       as a fallback. *)
    let prov = Array.make_matrix ns nl Fell_back in
    stats.prov <- Some prov;
    for i = 0 to ns - 1 do
      for j = 0 to nl - 1 do
        sim_point i j;
        Metrics.incr m_fit_fallback
      done
    done
  | Some s -> surrogate_grid s ~corner_feats ~stats ~axes ~ns ~nl ~delays
                ~slews_out ~ok ~sim_point);
  stats.grid_seconds <- stats.grid_seconds +. (Span.now () -. t_grid);
  List.iter
    (fun (i, j) ->
      let neighbours =
        List.filter
          (fun (i', j') -> i' >= 0 && i' < ns && j' >= 0 && j' < nl && ok.(i').(j'))
          [ (i - 1, j); (i + 1, j); (i, j - 1); (i, j + 1) ]
      in
      let repair =
        match neighbours with
        | [] ->
          let d, s =
            analytic_measure ~base_circuit ~cell ~arc ~dir
              ~slew:axes.Axes.slews.(i) ~load:axes.Axes.loads.(j)
          in
          delays.(i).(j) <- d;
          slews_out.(i).(j) <- s;
          Analytic_fallback
        | _ ->
          let n = float_of_int (List.length neighbours) in
          let mean get =
            List.fold_left (fun acc (i', j') -> acc +. get i' j') 0. neighbours /. n
          in
          delays.(i).(j) <- mean (fun i' j' -> delays.(i').(j'));
          slews_out.(i).(j) <- mean (fun i' j' -> slews_out.(i').(j'));
          Interpolated
      in
      stats.repairs <- repair :: stats.repairs;
      stats.repaired <- stats.repaired + 1;
      Metrics.incr m_repaired;
      Metrics.incr
        (match repair with
        | Interpolated -> m_repair_interpolated
        | Analytic_fallback -> m_repair_analytic))
    (List.rev !holes);
  if stats.retried + stats.repaired > 0 then
    Log.debugf "characterize" "%s %s->%s %s: %d measured, %d retried, %d repaired"
      stats.stat_cell stats.stat_from stats.stat_to
      (match stats.stat_dir with Library.Rise -> "rise" | Library.Fall -> "fall")
      stats.measured stats.retried stats.repaired;
  ( Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:delays,
    Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:slews_out )

(* ------------------------------------------------------------------ *)
(* Entry / library assembly                                            *)
(* ------------------------------------------------------------------ *)

let arc_measure backend ~scenario ~(cell : Cell.t) ~(arc : Cell.arc) ~dir ~slew
    ~load =
  let base_circuit = aged_circuit ~scenario cell in
  let key =
    {
      key_cell = cell.Cell.name;
      key_from = arc.Cell.arc_input;
      key_to = arc.Cell.arc_output;
      key_dir = dir;
      key_slew = slew;
      key_load = load;
    }
  in
  (* Legacy single-point entry point: the one place a point failure still
     escapes as an exception, after the full escalation ladder. *)
  match
    measure_point backend ~key ~base_circuit ~cell ~arc ~dir ~slew ~load ()
  with
  | Retry.First_try v | Retry.Recovered (v, _) -> v
  | Retry.Exhausted errs ->
    Metrics.incr m_failed;
    failwith
      (Printf.sprintf "Characterize: %s: %s" (key_to_string key)
         (String.concat "; " (List.map point_error_to_string errs)))

let mid_value table =
  let n_s, n_l = Nldm.dimensions table in
  table.Nldm.values.(n_s / 2).(n_l / 2)

(* The independent work units of one cell, in a fixed canonical order (the
   order the sequential code has always measured them in): every
   combinational arc contributes a Rise and a Fall grid; a flip-flop
   contributes its launch-rise and launch-fall grids.  The two launch arcs
   (Q rise with D=1, Q fall with D=0) merge into one library arc; each
   capture value only yields its own output direction. *)
let grid_jobs (cell : Cell.t) =
  match cell.Cell.kind with
  | Cell.Combinational ->
    List.concat_map
      (fun arc -> [ (arc, Library.Rise); (arc, Library.Fall) ])
      (Cell.arcs cell)
  | Cell.Flipflop ->
    let q_arcs = Cell.arcs cell in
    let rise_arc =
      List.find (fun (a : Cell.arc) -> a.Cell.positive_unate) q_arcs
    in
    let fall_arc =
      List.find (fun (a : Cell.arc) -> not a.Cell.positive_unate) q_arcs
    in
    [ (rise_arc, Library.Rise); (fall_arc, Library.Fall) ]

let entry ?(backend = default_backend) ?(indexed = false) ?report ?(jobs = 1)
    ?surrogate ~(axes : Axes.t) ~scenario (cell : Cell.t) =
  let corner_tag = Scenario.suffix scenario.Scenario.corner in
  let t_cell = Span.now () in
  Span.with_ "characterize.cell"
    ~attrs:[ ("cell", cell.Cell.name); ("corner", corner_tag) ]
  @@ fun () ->
  let report = match report with Some r -> r | None -> report_create () in
  let corner_feats =
    match surrogate with
    | Some _ -> corner_features scenario
    | None -> [||]
  in
  (* Shared read-only by every worker; each measurement copies it before
     attaching its own load. *)
  let base_circuit = aged_circuit ~scenario cell in
  let work = grid_jobs cell in
  let results =
    Pool.map ~jobs
      (fun ((arc : Cell.arc), dir) ->
        let stats =
          make_arc_stats ~cell:cell.Cell.name ~from_pin:arc.Cell.arc_input
            ~to_pin:arc.Cell.arc_output ~dir
        in
        let tables =
          Span.with_ "characterize.arc"
            ~attrs:
              [
                ("cell", cell.Cell.name);
                ("from", arc.Cell.arc_input);
                ("to", arc.Cell.arc_output);
                ("dir", dir_label dir);
              ]
            (fun () ->
              measure_grid ?surrogate ~corner_feats backend ~stats ~axes
                ~base_circuit ~cell ~arc ~dir)
        in
        (stats, tables))
      work
  in
  (* Same newest-first report order as a sequential run: prepend in
     work-unit order regardless of which domain finished first. *)
  List.iter (fun (stats, _) -> report.stats <- stats :: report.stats) results;
  let tables = Array.of_list (List.map snd results) in
  let arcs =
    match cell.Cell.kind with
    | Cell.Combinational ->
      List.mapi
        (fun i (arc : Cell.arc) ->
          let delay_rise, slew_rise = tables.(2 * i) in
          let delay_fall, slew_fall = tables.((2 * i) + 1) in
          {
            Library.from_pin = arc.Cell.arc_input;
            to_pin = arc.Cell.arc_output;
            sense =
              (if arc.Cell.positive_unate then Library.Positive
               else Library.Negative);
            when_side = arc.Cell.side;
            delay_rise;
            delay_fall;
            slew_rise;
            slew_fall;
          })
        (Cell.arcs cell)
    | Cell.Flipflop ->
      let rise_arc, _ = List.nth work 0 in
      let delay_rise, slew_rise = tables.(0) in
      let delay_fall, slew_fall = tables.(1) in
      [
        {
          Library.from_pin = rise_arc.Cell.arc_input;
          to_pin = rise_arc.Cell.arc_output;
          sense = Library.Positive;
          when_side = [];
          delay_rise;
          delay_fall;
          slew_rise;
          slew_fall;
        };
      ]
  in
  let setup_time =
    match cell.Cell.kind with
    | Cell.Combinational -> 0.
    | Cell.Flipflop ->
      (* A conservative constant-fraction model: setup tracks the clk->q
         delay of the aged cell. *)
      let worst_clkq =
        List.fold_left
          (fun acc (a : Library.arc) ->
            Float.max acc
              (Float.max (mid_value a.Library.delay_rise)
                 (mid_value a.Library.delay_fall)))
          0. arcs
      in
      0.6 *. worst_clkq
  in
  let indexed_name =
    if indexed then
      cell.Cell.name ^ "@" ^ Scenario.suffix scenario.Scenario.corner
    else cell.Cell.name
  in
  Metrics.incr m_cells;
  Log.infof "characterize" "cell %s [%s]: %d arcs in %.2f s" cell.Cell.name
    corner_tag (List.length arcs)
    (Span.now () -. t_cell);
  {
    Library.cell;
    indexed_name;
    corner = scenario.Scenario.corner;
    arcs;
    pin_caps =
      List.map (fun pin -> (pin, Cell.input_capacitance cell pin)) cell.Cell.inputs;
    setup_time;
  }

let library ?(backend = default_backend) ?cells ?(indexed = false) ?report
    ?(jobs = 1) ?surrogate ~axes ~name ~scenario () =
  let cells = Option.value cells ~default:(Aging_cells.Catalog.all ()) in
  Span.with_ "characterize.library" ~attrs:[ ("library", name) ] @@ fun () ->
  Log.infof "characterize" "library %s: characterizing %d cells [%s, %d job%s]"
    name (List.length cells)
    (Scenario.suffix scenario.Scenario.corner)
    jobs
    (if jobs = 1 then "" else "s");
  (* Two fan-out levels share the same budget: cells across the pool, and
     (arc, dir) grids within each cell.  The pool's nesting guard makes the
     inner level sequential whenever the outer one actually spawned, so the
     inner fan-out only kicks in for small cell lists (tests, bench
     subsets) where the outer level alone cannot fill the pool.  Every
     worker fills a private report; the reports are merged in cell order,
     which makes the final report — like the entry list — bit-for-bit
     independent of the worker count. *)
  let per_cell =
    Pool.map ~jobs
      (fun cell ->
        let cell_report = report_create () in
        let e =
          entry ~backend ~indexed ~report:cell_report ~jobs ?surrogate ~axes
            ~scenario cell
        in
        (e, cell_report))
      cells
  in
  (match report with
  | None -> ()
  | Some dst ->
    List.iter (fun (_, r) -> dst.stats <- r.stats @ dst.stats) per_cell);
  Library.create ~lib_name:name ~axes (List.map fst per_cell)

let library_report ?backend ?cells ?indexed ?jobs ?surrogate ~axes ~name
    ~scenario () =
  let report = report_create () in
  let lib =
    library ?backend ?cells ?indexed ~report ?jobs ?surrogate ~axes ~name
      ~scenario ()
  in
  (lib, report)

let fresh_library ?backend ?cells ?jobs ?surrogate ~axes () =
  library ?backend ?cells ?jobs ?surrogate ~axes ~name:"initial"
    ~scenario:(Scenario.scenario Scenario.fresh) ()
