module Scenario = Aging_physics.Scenario

let float_row values =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17e") values))

let table_lines name (t : Nldm.table) =
  (Printf.sprintf "table %s" name)
  :: Array.to_list (Array.map float_row t.Nldm.values)

let arc_lines (a : Library.arc) =
  let sense =
    match a.Library.sense with Library.Positive -> "positive" | Library.Negative -> "negative"
  in
  let side =
    String.concat " "
      (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p (if v then 1 else 0))
         a.Library.when_side)
  in
  (Printf.sprintf "arc %s %s %s %s" a.Library.from_pin a.Library.to_pin sense side)
  :: List.concat
       [
         table_lines "delay_rise" a.Library.delay_rise;
         table_lines "delay_fall" a.Library.delay_fall;
         table_lines "slew_rise" a.Library.slew_rise;
         table_lines "slew_fall" a.Library.slew_fall;
       ]

let entry_lines (e : Library.entry) =
  (Printf.sprintf "cell %s %s %.3f %.3f %.17e" e.Library.indexed_name
     e.Library.cell.Aging_cells.Cell.name e.Library.corner.Scenario.lambda_p
     e.Library.corner.Scenario.lambda_n e.Library.setup_time)
  :: List.map
       (fun (pin, c) -> Printf.sprintf "pincap %s %.17e" pin c)
       e.Library.pin_caps
  @ List.concat_map arc_lines e.Library.arcs

let to_string lib =
  let axes = Library.axes lib in
  let lines =
    (Printf.sprintf "library %s" (Library.lib_name lib))
    :: (Printf.sprintf "slews %s" (float_row axes.Axes.slews))
    :: (Printf.sprintf "loads %s" (float_row axes.Axes.loads))
    :: List.concat_map entry_lines (Library.entries lib)
  in
  String.concat "\n" lines ^ "\n"

(* ---------------------------- parsing ---------------------------- *)

type cursor = { lines : string array; mutable pos : int }

let parse_error cur msg =
  failwith (Printf.sprintf "Io.of_string: line %d: %s" (cur.pos + 1) msg)

let peek cur = if cur.pos < Array.length cur.lines then Some cur.lines.(cur.pos) else None

let next cur =
  match peek cur with
  | Some line ->
    cur.pos <- cur.pos + 1;
    line
  | None -> parse_error cur "unexpected end of file"

let words line =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' line)

let floats_of cur ws =
  Array.of_list
    (List.map
       (fun w ->
         match float_of_string_opt w with
         | Some f -> f
         | None -> parse_error cur ("bad float " ^ w))
       ws)

let parse_table cur ~slews ~loads expected_name =
  (match words (next cur) with
  | [ "table"; name ] when name = expected_name -> ()
  | _ -> parse_error cur ("expected table " ^ expected_name));
  let rows =
    Array.init (Array.length slews) (fun _ -> floats_of cur (words (next cur)))
  in
  Nldm.make ~slews ~loads ~values:rows

let parse_arc cur ~slews ~loads ws =
  match ws with
  | from_pin :: to_pin :: sense_word :: side_words ->
    let sense =
      match sense_word with
      | "positive" -> Library.Positive
      | "negative" -> Library.Negative
      | s -> parse_error cur ("bad sense " ^ s)
    in
    let side =
      List.map
        (fun w ->
          match String.split_on_char '=' w with
          | [ pin; "0" ] -> (pin, false)
          | [ pin; "1" ] -> (pin, true)
          | _ -> parse_error cur ("bad side binding " ^ w))
        side_words
    in
    let delay_rise = parse_table cur ~slews ~loads "delay_rise" in
    let delay_fall = parse_table cur ~slews ~loads "delay_fall" in
    let slew_rise = parse_table cur ~slews ~loads "slew_rise" in
    let slew_fall = parse_table cur ~slews ~loads "slew_fall" in
    {
      Library.from_pin;
      to_pin;
      sense;
      when_side = side;
      delay_rise;
      delay_fall;
      slew_rise;
      slew_fall;
    }
  | _ -> parse_error cur "malformed arc line"

let parse_entry cur ~slews ~loads ws =
  match ws with
  | [ indexed_name; cell_name; lp; ln; setup ] ->
    let cell =
      match Aging_cells.Catalog.find cell_name with
      | Some c -> c
      | None -> parse_error cur ("unknown catalog cell " ^ cell_name)
    in
    let corner =
      match (float_of_string_opt lp, float_of_string_opt ln) with
      | Some lambda_p, Some lambda_n -> Scenario.corner ~lambda_p ~lambda_n
      | None, _ | _, None -> parse_error cur "bad corner lambdas"
    in
    let setup_time =
      match float_of_string_opt setup with
      | Some s -> s
      | None -> parse_error cur "bad setup time"
    in
    let pin_caps = ref [] in
    let arcs = ref [] in
    let rec consume () =
      match peek cur with
      | Some line -> begin
        match words line with
        | "pincap" :: rest ->
          cur.pos <- cur.pos + 1;
          (match rest with
          | [ pin; c ] -> begin
            match float_of_string_opt c with
            | Some cap -> pin_caps := (pin, cap) :: !pin_caps
            | None -> parse_error cur "bad pincap"
          end
          | _ -> parse_error cur "malformed pincap");
          consume ()
        | "arc" :: rest ->
          cur.pos <- cur.pos + 1;
          arcs := parse_arc cur ~slews ~loads rest :: !arcs;
          consume ()
        | _ -> ()
      end
      | None -> ()
    in
    consume ();
    {
      Library.cell;
      indexed_name;
      corner;
      arcs = List.rev !arcs;
      pin_caps = List.rev !pin_caps;
      setup_time;
    }
  | _ -> parse_error cur "malformed cell line"

let of_string text =
  let lines =
    Array.of_list
      (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text))
  in
  let cur = { lines; pos = 0 } in
  let lib_name =
    match words (next cur) with
    | [ "library"; name ] -> name
    | _ -> parse_error cur "expected library header"
  in
  let slews =
    match words (next cur) with
    | "slews" :: rest -> floats_of cur rest
    | _ -> parse_error cur "expected slews"
  in
  let loads =
    match words (next cur) with
    | "loads" :: rest -> floats_of cur rest
    | _ -> parse_error cur "expected loads"
  in
  let entries = ref [] in
  let rec consume () =
    match peek cur with
    | Some line -> begin
      match words line with
      | "cell" :: rest ->
        cur.pos <- cur.pos + 1;
        entries := parse_entry cur ~slews ~loads rest :: !entries;
        consume ()
      | _ -> parse_error cur "expected cell"
    end
    | None -> ()
  in
  consume ();
  Library.create ~lib_name ~axes:{ Axes.slews; loads } (List.rev !entries)

let save path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string lib));
  Aging_obs.Log.infof "liberty.io" "wrote %s: %d cells" path
    (List.length (Library.entries lib))

let load path =
  let ic = open_in path in
  let lib =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string (really_input_string ic n))
  in
  Aging_obs.Log.debugf "liberty.io" "loaded %s: %d cells" path
    (List.length (Library.entries lib));
  lib
