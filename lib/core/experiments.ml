module Scenario = Aging_physics.Scenario
module Degradation = Aging_physics.Degradation
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Characterize = Aging_liberty.Characterize
module Nldm = Aging_liberty.Nldm
module Netlist = Aging_netlist.Netlist
module Timing = Aging_sta.Timing
module Paths = Aging_sta.Paths
module Flow = Aging_synth.Flow
module Cell = Aging_cells.Cell
module Catalog = Aging_cells.Catalog
module Image = Aging_image.Image
module Stats = Aging_util.Stats
module Tablefmt = Aging_util.Tablefmt

type t = {
  deglib : Degradation_library.t;        (* 10-year lifetime *)
  deglib_1y : Degradation_library.t;     (* 1-year lifetime *)
  deglib_3y : Degradation_library.t;     (* 3-year lifetime *)
  quick : bool;
  mutable design_cache : (string * Netlist.t) list;
  mutable comparison_cache : (string * Aging_synthesis.comparison) list;
}

let create ?(quick = false) ?(cache_dir = "_libcache") ?(jobs = 1) () =
  {
    deglib = Degradation_library.create ~cache_dir ~jobs ();
    deglib_1y = Degradation_library.create ~years:1. ~cache_dir ~jobs ();
    deglib_3y = Degradation_library.create ~years:3. ~cache_dir ~jobs ();
    quick;
    design_cache = [];
    comparison_cache = [];
  }

let is_quick t = t.quick
let deglib t = t.deglib

let design_names t =
  if t.quick then [ "DSP"; "RISC-5P"; "DCT" ]
  else [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ]

let design t name =
  match List.assoc_opt name t.design_cache with
  | Some d -> d
  | None ->
    let d =
      match Aging_designs.Designs.by_name name with
      | Some d -> d
      | None -> failwith ("Experiments: unknown design " ^ name)
    in
    t.design_cache <- (name, d) :: t.design_cache;
    d

let designs t = List.map (fun name -> (name, design t name)) (design_names t)

let flow_options_for t netlist =
  let n = Array.length netlist.Netlist.instances in
  let base = Flow.default_options in
  if t.quick then { base with Flow.sizing_passes = 3; map_rounds = 1 }
  else if n > 6000 then { base with Flow.sizing_passes = 4; map_rounds = 1 }
  else { base with Flow.sizing_passes = 8 }

let comparison t name =
  match List.assoc_opt name t.comparison_cache with
  | Some c -> c
  | None ->
    let d = design t name in
    let c = Aging_synthesis.run ~options:(flow_options_for t d) ~deglib:t.deglib d in
    t.comparison_cache <- (name, c) :: t.comparison_cache;
    c

let traditional t name = (comparison t name).Aging_synthesis.traditional

let ps s = Printf.sprintf "%.1f" (s *. 1e12)
let pct r = Printf.sprintf "%+.1f" (r *. 100.)

let heading title = Printf.sprintf "=== %s ===\n" title

(* ------------------------------ Fig. 1 ------------------------------ *)

let delta_grid fresh_entry aged_entry ~dir =
  let arc_of e = List.hd e.Library.arcs in
  let fa = arc_of fresh_entry and aa = arc_of aged_entry in
  let table (a : Library.arc) =
    match dir with Library.Rise -> a.Library.delay_rise | Library.Fall -> a.Library.delay_fall
  in
  let tf = table fa and ta = table aa in
  let slews = tf.Nldm.slews and loads = tf.Nldm.loads in
  Array.mapi
    (fun i _ ->
      Array.mapi
        (fun j _ ->
          let d0 = tf.Nldm.values.(i).(j) and d1 = ta.Nldm.values.(i).(j) in
          if Float.abs d0 < 1e-13 then 0. else (d1 -. d0) /. d0)
        loads)
    slews

let grid_report ~axes name grid =
  let header =
    "slew\\load (fF)"
    :: Array.to_list (Array.map (fun l -> Printf.sprintf "%.1f" (l *. 1e15)) axes.Axes.loads)
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i row ->
           Printf.sprintf "%.0f ps" (axes.Axes.slews.(i) *. 1e12)
           :: Array.to_list (Array.map (fun d -> Printf.sprintf "%+.1f%%" (d *. 100.)) row))
         grid)
  in
  name ^ "\n" ^ Tablefmt.render ~header rows

let fig1 t =
  let fresh = Degradation_library.fresh t.deglib in
  let aged = Degradation_library.worst_case t.deglib in
  let axes = Degradation_library.axes t.deglib in
  let entry lib name = Library.find_exn lib name in
  let nand =
    delta_grid (entry fresh "NAND2_X1") (entry aged "NAND2_X1") ~dir:Library.Rise
  in
  let nor =
    delta_grid (entry fresh "NOR2_X1") (entry aged "NOR2_X1") ~dir:Library.Fall
  in
  let nor_rise =
    delta_grid (entry fresh "NOR2_X1") (entry aged "NOR2_X1") ~dir:Library.Rise
  in
  heading "Fig. 1: delay increase vs operating conditions (worst-case aging, 10 y)"
  ^ grid_report ~axes "NAND2_X1, output rise (paper 1a: grows with slew, damped by load)" nand
  ^ grid_report ~axes
      "NOR2_X1, output fall (paper 1b: improves at large slews, down to -60 %)" nor
  ^ grid_report ~axes "NOR2_X1, output rise (stacked pull-up: strongest degradation)"
      nor_rise

(* ------------------------------ Fig. 2 ------------------------------ *)

let arc_deltas t =
  let fresh = Degradation_library.fresh t.deglib in
  let aged = Degradation_library.worst_case t.deglib in
  let axes = Degradation_library.axes t.deglib in
  let single = ref [] and multi = ref [] in
  List.iter
    (fun (fe : Library.entry) ->
      if fe.Library.cell.Cell.kind = Cell.Combinational then begin
        match Library.find aged fe.Library.indexed_name with
        | None -> ()
        | Some ae ->
          List.iter
            (fun (fa : Library.arc) ->
              match
                List.find_opt
                  (fun (aa : Library.arc) ->
                    aa.Library.from_pin = fa.Library.from_pin
                    && aa.Library.to_pin = fa.Library.to_pin)
                  ae.Library.arcs
              with
              | None -> ()
              | Some aa ->
                List.iter
                  (fun dir ->
                    Array.iteri
                      (fun i slew ->
                        Array.iteri
                          (fun j load ->
                            ignore i;
                            ignore j;
                            let d0 = Library.delay_of fa ~dir ~slew ~load in
                            let d1 = Library.delay_of aa ~dir ~slew ~load in
                            (* Relative change is only meaningful for
                               solidly positive baselines (very slow ramps
                               can give near-zero or negative delays). *)
                            if d0 > 3e-12 then begin
                              let delta = (d1 -. d0) /. d0 in
                              multi := delta :: !multi;
                              if slew = axes.Axes.slews.(0) && load = axes.Axes.loads.(0)
                              then single := delta :: !single
                            end)
                          axes.Axes.loads)
                      axes.Axes.slews)
                  [ Library.Rise; Library.Fall ])
            fe.Library.arcs
      end)
    (Library.entries fresh);
  (!single, !multi)

let histogram_report label samples =
  let h = Stats.histogram ~lo:(-0.6) ~hi:1.0 ~bins:16 samples in
  let rows =
    List.filter_map
      (fun (lo, hi, count) ->
        if count = 0 then None
        else
          Some
            [ Printf.sprintf "%+.0f%% .. %+.0f%%" (lo *. 100.) (hi *. 100.);
              string_of_int count ])
      (Stats.histogram_rows h)
  in
  let lo, hi = Stats.min_max samples in
  Printf.sprintf "%s: %d samples, range %+.1f%% .. %+.1f%%, improving %.1f%%\n"
    label (List.length samples) (lo *. 100.) (hi *. 100.)
    (Stats.fraction_below 0. samples *. 100.)
  ^ Tablefmt.render ~header:[ "delay increase"; "occurrences" ] rows

let fig2 t =
  let single, multi = arc_deltas t in
  heading "Fig. 2: aging impact across the library (worst-case aging)"
  ^ histogram_report
      "single OPC (min slew, min load) — paper: all positive, up to ~15%" single
  ^ histogram_report
      "all 49 OPCs — paper: wide range (-60%..+400%), ~16% improving" multi

(* ------------------------------ Fig. 3 ------------------------------ *)

let fig3 t =
  let fresh = Scenario.scenario ~years:(Degradation_library.years t.deglib) Scenario.fresh in
  let worst = Scenario.scenario ~years:(Degradation_library.years t.deglib) Scenario.worst_case in
  let m1f = Path_demo.measure ~scenario:fresh Path_demo.path1 in
  let m1a = Path_demo.measure ~scenario:worst Path_demo.path1 in
  let m2f = Path_demo.measure ~scenario:fresh Path_demo.path2 in
  let m2a = Path_demo.measure ~scenario:worst Path_demo.path2 in
  let stage_string m =
    String.concat " + "
      (Array.to_list (Array.map (fun d -> ps d) m.Path_demo.stage_delays))
  in
  let row name mf ma =
    [ name; stage_string mf; ps mf.Path_demo.total; stage_string ma;
      ps ma.Path_demo.total;
      pct ((ma.Path_demo.total /. mf.Path_demo.total) -. 1.) ]
  in
  let critical_fresh = if m1f.Path_demo.total >= m2f.Path_demo.total then "path1" else "path2" in
  let critical_aged = if m1a.Path_demo.total >= m2a.Path_demo.total then "path1" else "path2" in
  heading "Fig. 3: criticality switch under aging (transistor-level measurement)"
  ^ Tablefmt.render
      ~header:
        [ "path"; "fresh stages (ps)"; "fresh total"; "aged stages (ps)";
          "aged total"; "delta" ]
      [ row "path1" m1f m1a; row "path2" m2f m2a ]
  ^ Printf.sprintf
      "critical before aging: %s; after aging: %s%s (paper: the roles switch)\n"
      critical_fresh critical_aged
      (if critical_fresh <> critical_aged then " -> SWITCHED" else "")

(* ------------------------------ Fig. 5 ------------------------------ *)

let fig5_generic t ~title ~paper_note ~alt_label ~alt =
  let rows = ref [] in
  let ratios = ref [] in
  List.iter
    (fun name ->
      let netlist = traditional t name in
      let full =
        Guardband.static ~deglib:t.deglib ~corner:Scenario.worst_case netlist
      in
      let other = alt netlist in
      let ratio =
        if full.Guardband.guardband > 0. then
          (other.Guardband.guardband /. full.Guardband.guardband) -. 1.
        else 0.
      in
      ratios := ratio :: !ratios;
      rows :=
        [ name; ps full.Guardband.guardband; ps other.Guardband.guardband;
          pct ratio ^ "%" ]
        :: !rows)
    (design_names t);
  let avg = Stats.mean !ratios in
  heading title
  ^ Tablefmt.render
      ~header:[ "design"; "guardband [ps]"; alt_label ^ " [ps]"; "delta" ]
      (List.rev !rows)
  ^ Printf.sprintf "average delta: %s%% (%s)\n" (pct avg) paper_note

let fig5a t =
  fig5_generic t
    ~title:"Fig. 5a: neglecting mobility degradation (Vth-only analysis)"
    ~paper_note:"paper: -19% on average" ~alt_label:"Vth-only"
    ~alt:(fun netlist ->
      Guardband.static ~mode:Degradation.Vth_only ~deglib:t.deglib
        ~corner:Scenario.worst_case netlist)

let fig5b t =
  fig5_generic t ~title:"Fig. 5b: single-OPC aging model"
    ~paper_note:"paper: +214% on average" ~alt_label:"single-OPC"
    ~alt:(fun netlist ->
      Guardband.single_opc ~deglib:t.deglib ~corner:Scenario.worst_case netlist)

let fig5c t =
  fig5_generic t
    ~title:"Fig. 5c: re-timing only the initial critical path"
    ~paper_note:"paper: wrong (-6%) in all circuits" ~alt_label:"initial-CP"
    ~alt:(fun netlist ->
      Guardband.initial_cp_only ~deglib:t.deglib ~corner:Scenario.worst_case
        netlist)

(* ------------------------------ Fig. 6 ------------------------------ *)

let fig6a t =
  let rows = ref [] and reductions = ref [] and gains = ref [] in
  List.iter
    (fun name ->
      let c = comparison t name in
      reductions := Aging_synthesis.guardband_reduction c :: !reductions;
      gains := Aging_synthesis.frequency_gain c :: !gains;
      rows :=
        [ name;
          ps (Aging_synthesis.required_guardband c);
          ps (Aging_synthesis.contained_guardband c);
          pct (Aging_synthesis.guardband_reduction c) ^ "%";
          pct (Aging_synthesis.frequency_gain c) ^ "%" ]
        :: !rows)
    (design_names t);
  heading "Fig. 6a: guardband containment by aging-aware synthesis"
  ^ Tablefmt.render
      ~header:
        [ "design"; "required GB [ps]"; "contained GB [ps]"; "reduction";
          "freq gain" ]
      (List.rev !rows)
  ^ Printf.sprintf
      "average reduction %s%% (paper: ~50%%, up to 75%%); average frequency gain %s%% (paper: ~4%%)\n"
      (pct (Stats.mean !reductions))
      (pct (Stats.mean !gains))

let fig6b t =
  let rows = ref [] and overheads = ref [] in
  List.iter
    (fun name ->
      let c = comparison t name in
      let ovh = Aging_synthesis.area_overhead c in
      overheads := ovh :: !overheads;
      rows :=
        [ name;
          Printf.sprintf "%.1f" (Netlist.area c.Aging_synthesis.traditional *. 1e12);
          Printf.sprintf "%.1f" (Netlist.area c.Aging_synthesis.aware *. 1e12);
          pct ovh ^ "%" ]
        :: !rows)
    (design_names t);
  heading "Fig. 6b: area of traditional vs aging-aware designs"
  ^ Tablefmt.render
      ~header:[ "design"; "traditional [um^2]"; "aging-aware [um^2]"; "overhead" ]
      (List.rev !rows)
  ^ Printf.sprintf "average overhead %s%% (paper: ~0.2%%)\n"
      (pct (Stats.mean !overheads))

(* --------------------------- Fig. 6c / 7 --------------------------- *)

let image_of t =
  let size = if t.quick then 16 else 32 in
  Aging_image.Synthetic.portrait ~width:size ~height:size

let scenario_libraries t =
  [
    ("unaged (year 0)", Degradation_library.fresh t.deglib);
    ("balance, year 1", Degradation_library.corner t.deglib_1y Scenario.balanced);
    ("worst, year 1", Degradation_library.corner t.deglib_1y Scenario.worst_case);
    ("worst, year 3", Degradation_library.corner t.deglib_3y Scenario.worst_case);
    ("worst, year 10", Degradation_library.worst_case t.deglib);
  ]

let chain_designs t =
  (* The image chain always uses the real DCT and IDCT designs, even in
     quick mode (IDCT falls back to a fresh compile). *)
  let dct_cmp = comparison t "DCT" in
  let idct_cmp =
    if List.mem "IDCT" (design_names t) then comparison t "IDCT"
    else begin
      match List.assoc_opt "IDCT" t.comparison_cache with
      | Some c -> c
      | None ->
        let d = Aging_designs.Designs.idct () in
        let c =
          Aging_synthesis.run ~options:(flow_options_for t d) ~deglib:t.deglib d
        in
        t.comparison_cache <- ("IDCT", c) :: t.comparison_cache;
        c
    end
  in
  (dct_cmp, idct_cmp)

let psnr_runs t =
  let dct_cmp, idct_cmp = chain_designs t in
  let original = image_of t in
  let reference = System_eval.reference_image original in
  (* The common frequency: maximum performance achieved in the absence of
     aging by the traditionally synthesized chain — the fastest clock at
     which the year-0 gate-level chain still decodes the image perfectly
     (data-dependent sensitization makes this faster than the STA bound),
     as in the paper's simulation setup. *)
  let fresh_lib = Degradation_library.fresh t.deglib in
  let period =
    System_eval.rated_chain_period
      ~dct:
        (Aging_sim.Event_sim.prepare ~library:fresh_lib
           dct_cmp.Aging_synthesis.traditional)
      ~idct:
        (Aging_sim.Event_sim.prepare ~library:fresh_lib
           idct_cmp.Aging_synthesis.traditional)
      original
  in
  let run ~label (dct_nl, idct_nl) library =
    let dct_sim = Aging_sim.Event_sim.prepare ~library dct_nl in
    let idct_sim = Aging_sim.Event_sim.prepare ~library idct_nl in
    let processed =
      System_eval.process_image ~dct:dct_sim ~idct:idct_sim ~period original
    in
    (label, processed, Image.psnr ~reference:original processed)
  in
  let results =
    List.concat_map
      (fun (scenario_label, library) ->
        [
          run
            ~label:(Printf.sprintf "aging-unaware design, %s" scenario_label)
            ( dct_cmp.Aging_synthesis.traditional,
              idct_cmp.Aging_synthesis.traditional )
            library;
          run
            ~label:(Printf.sprintf "aging-aware design, %s" scenario_label)
            (dct_cmp.Aging_synthesis.aware, idct_cmp.Aging_synthesis.aware)
            library;
        ])
      (scenario_libraries t)
  in
  (original, reference, period, results)

let fig6c t =
  let original, reference, period, results = psnr_runs t in
  let rows =
    List.map
      (fun (label, _, psnr) ->
        [ label;
          (if psnr = infinity then "inf" else Printf.sprintf "%.1f" psnr) ])
      results
  in
  heading "Fig. 6c: DCT-IDCT image quality under aging (no guardband)"
  ^ Printf.sprintf
      "clock period %s ps (no-aging performance of the traditional design)\n"
      (ps period)
  ^ Printf.sprintf "error-free fixed-point chain PSNR: %.1f dB\n"
      (Image.psnr ~reference:original reference)
  ^ Tablefmt.render ~header:[ "scenario"; "PSNR [dB]" ] rows
  ^ "paper: unaware design ~9 dB after 1 worst-case year, ~19 dB balanced; \
     aware design keeps the unaged PSNR for 10 years (30 dB = acceptable)\n"

let fig7 t ?(dir = "fig7_out") () =
  let original, reference, _, results = psnr_runs t in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let sanitize label =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> ch
        | ' ' | ',' | '-' | '(' | ')' -> '_'
        | _ -> '_')
      label
  in
  Aging_image.Pgm.write (Filename.concat dir "original.pgm") original;
  Aging_image.Pgm.write (Filename.concat dir "reference.pgm") reference;
  let rows =
    List.map
      (fun (label, processed, psnr) ->
        let file = Filename.concat dir (sanitize label ^ ".pgm") in
        Aging_image.Pgm.write file processed;
        [ label; Printf.sprintf "%.1f" psnr; file ])
      results
  in
  heading "Fig. 7: decoded images under aging (written as PGM)"
  ^ Tablefmt.render ~header:[ "scenario"; "PSNR [dB]"; "file" ] rows

(* ------------------------------ libgen ------------------------------ *)

let libgen t ?corners () =
  let corners =
    (* Default to the 3x3 sub-grid: corner suffixes are exact at one
       decimal, and the paper's full 11x11 grid (121 corners) is one
       [~corners:(Scenario.grid ())] away at ~30 s per corner. *)
    match corners with
    | Some c -> c
    | None -> Scenario.grid ~step:0.5 ()
  in
  let complete = Degradation_library.complete t.deglib corners in
  let entries = Library.entries complete in
  let n_cells = List.length entries in
  let arcs =
    List.fold_left (fun acc e -> acc + List.length e.Library.arcs) 0 entries
  in
  heading "Complete degradation-aware library (Sec. 4.1 artifact)"
  ^ Printf.sprintf
      "corners: %d (paper: 121 at step 0.1); merged cells: %d; timing arcs: %d\n"
      (List.length corners) n_cells arcs
  ^ Printf.sprintf
      "indexed naming example: %s (paper scheme: AND2_0.4_0.6)\n"
      (match entries with e :: _ -> e.Library.indexed_name | [] -> "-")

(* --------------------------- hold extension --------------------------- *)

let hold_check t =
  let fresh_lib = Degradation_library.fresh t.deglib in
  let aged_lib = Degradation_library.worst_case t.deglib in
  let rows =
    List.map
      (fun (name, design) ->
        let fresh = Timing.analyze ~library:fresh_lib design in
        let aged = Timing.analyze ~library:aged_lib design in
        let sf = Timing.hold_slacks fresh and sa = Timing.hold_slacks aged in
        let lost =
          List.fold_left
            (fun acc (ff, slack_aged) ->
              match List.assoc_opt ff sf with
              | Some slack_fresh when slack_aged < slack_fresh -. 1e-13 ->
                acc + 1
              | Some _ | None -> acc)
            0 sa
        in
        [ name;
          ps (Timing.worst_hold_slack fresh);
          ps (Timing.worst_hold_slack aged);
          string_of_int lost;
          string_of_int (List.length sa) ])
      (designs t)
  in
  heading "Extension: hold margins under aging (early-path side of Fig. 1b)"
  ^ Tablefmt.render
      ~header:
        [ "design"; "fresh worst hold [ps]"; "aged worst hold [ps]";
          "FFs losing margin"; "FFs" ]
      rows
  ^ "arcs that aging speeds up (improving NOR-class falls) shorten the      earliest arrivals; a margin loss here would be invisible to a      max-delay-only guardband.
"

(* ----------------------------- ablations ----------------------------- *)

let ablate_backend t =
  let scenario =
    Scenario.scenario ~years:(Degradation_library.years t.deglib)
      Scenario.worst_case
  in
  let cells = [ "INV_X1"; "NAND2_X1"; "NOR2_X1"; "BUF_X4"; "XOR2_X1"; "MUX2_X1" ] in
  let rows =
    List.map
      (fun name ->
        let cell = Catalog.find_exn name in
        let arc = List.hd (Cell.arcs cell) in
        let slew = 9e-11 and load = 4e-15 in
        let dt, _ =
          Characterize.arc_measure Characterize.default_backend ~scenario ~cell
            ~arc ~dir:Library.Rise ~slew ~load
        in
        let da, _ =
          Characterize.arc_measure Characterize.Analytic ~scenario ~cell ~arc
            ~dir:Library.Rise ~slew ~load
        in
        let stages =
          match cell.Cell.base with
          | "INV" | "NAND2" | "NOR2" -> "1"
          | "BUF" | "XOR2" -> "2"
          | "MUX2" -> "3"
          | _ -> "?"
        in
        [ name; stages; ps dt; ps da; pct ((da -. dt) /. dt) ^ "%" ])
      cells
  in
  heading "Ablation: transient vs closed-form characterization backend"
  ^ Tablefmt.render
      ~header:[ "cell"; "stages"; "transient [ps]"; "analytic [ps]"; "error" ]
      rows
  ^ "closed-form models cannot see internal slopes; the error grows with \
     stage count (the paper's argument against refs [7,9])\n"

let ablate_slew t =
  let fresh = Degradation_library.fresh t.deglib in
  let rows =
    List.map
      (fun name ->
        let d = design t name in
        let options = flow_options_for t d in
        let aware = Flow.compile ~options ~library:fresh d in
        let blind =
          Flow.compile
            ~options:
              {
                options with
                Flow.estimates =
                  { options.Flow.estimates with Aging_synth.Mapper.slew_aware = false };
              }
            ~library:fresh d
        in
        let pa = Flow.min_period ~library:fresh aware in
        let pb = Flow.min_period ~library:fresh blind in
        [ name; ps pa; ps pb; pct ((pb -. pa) /. pa) ^ "%" ])
      (if t.quick then [ "DSP" ] else [ "DSP"; "RISC-5P" ])
  in
  heading "Ablation: slew-aware vs slew-blind mapping cost"
  ^ Tablefmt.render
      ~header:[ "design"; "slew-aware [ps]"; "slew-blind [ps]"; "penalty" ]
      rows

let ablate_topk t =
  let aged_lib = Degradation_library.worst_case t.deglib in
  let fresh_lib = Degradation_library.fresh t.deglib in
  let rows =
    List.map
      (fun name ->
        let netlist = traditional t name in
        let fresh_paths =
          Paths.per_endpoint (Timing.analyze ~library:fresh_lib netlist)
        in
        let aged = Timing.analyze ~library:aged_lib netlist in
        let aged_critical = Paths.critical aged in
        let endpoint_key (p : Paths.t) = p.Paths.endpoint.Timing.endpoint in
        let rank =
          let rec find i = function
            | [] -> -1
            | p :: rest ->
              if endpoint_key p = endpoint_key aged_critical then i
              else find (i + 1) rest
          in
          find 1 fresh_paths
        in
        [ name;
          (if rank < 0 then "not found" else string_of_int rank);
          string_of_int (List.length fresh_paths) ])
      (design_names t)
  in
  heading "Ablation: rank of the post-aging critical endpoint in the fresh ordering"
  ^ Tablefmt.render
      ~header:[ "design"; "fresh rank of aged CP"; "endpoints" ]
      rows
  ^ "rank 1 means no switch; larger ranks show why top-k tracking needs care \
     (Sec. 3)\n"
