module Scenario = Aging_physics.Scenario
module Degradation = Aging_physics.Degradation
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Characterize = Aging_liberty.Characterize
module Nldm = Aging_liberty.Nldm
module Io = Aging_liberty.Io
module Cell = Aging_cells.Cell
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log
module Pool = Aging_util.Pool
module Lru = Aging_util.Lru
module Trainset = Aging_fit.Trainset

let m_memo_hit = Metrics.counter "cache.memo_hit"
let m_memo_miss = Metrics.counter "cache.memo_miss"
let m_evict = Metrics.counter "cache.memo_evict"
let m_disk_hit = Metrics.counter "cache.disk_hit"
let m_build = Metrics.counter "cache.build"
let m_corrupt = Metrics.counter "cache.corrupt"

let default_memo_cap = 256

type t = {
  backend : Characterize.backend;
  cells : Cell.t list;
  axes : Axes.t;
  years : float;
  cache_dir : string option;
  jobs : int;
  memo : (string, Library.t) Lru.t;
      (* Bounded: a resident process ([relaware serve]) answers arbitrary
         corners for years, and each characterized library is megabytes of
         NLDM tables — an unbounded memo is a slow memory leak.  Keys are
         the exact-lambda cache keys of [key], so eviction never aliases
         corners; an evicted library falls back to the disk cache (if
         configured) or a rebuild. *)
  fingerprint : string;
  reports : (string * Characterize.report) list ref;
  lock : Mutex.t;
      (* guards [memo] and [reports]: [complete] builds corners on
         concurrent domains that all land their results here *)
  surrogate : Characterize.surrogate option;
      (* surrogate configuration (without a pool — the pool below is
         attached once the anchors are in) *)
  pool : Trainset.t;
      (* cross-corner training rows, harvested from the {e table values}
         of a fixed set of fully simulated anchor corners and then frozen.
         Harvesting from tables rather than raw measurements makes the
         pool identical whether an anchor was built now or loaded from the
         disk cache — and therefore deterministic. *)
  pool_lock : Mutex.t;
      (* serializes anchor building + freezing; never held while [lock]
         waits on it (the nested order is pool_lock -> lock only) *)
}

let rec backend_tag = function
  | Characterize.Transient _ -> "transient"
  | Characterize.Analytic -> "analytic"
  | Characterize.Faulty (f, inner) ->
    Printf.sprintf "faulty%g:%d:%d+%s" f.Characterize.rate f.Characterize.seed
      f.Characterize.depth (backend_tag inner)

let create ?(backend = Characterize.default_backend) ?cells ?(axes = Axes.paper)
    ?(years = 10.) ?cache_dir ?(jobs = 1) ?(memo_cap = default_memo_cap)
    ?surrogate () =
  if memo_cap < 1 then
    invalid_arg "Degradation_library.create: memo_cap must be >= 1";
  let cells = Option.value cells ~default:(Aging_cells.Catalog.all ()) in
  (* The fingerprint must change whenever anything that affects the tables
     changes: cell set, axes, backend, lifetime, and the physics model
     itself (probed by sampling the degradation of a reference device).
     It is a digest of a full canonical serialization — NOT [Hashtbl.hash],
     whose bounded traversal (10 meaningful nodes by default) ignores
     everything past the first few cells and axis points, so perturbing a
     late axis value or cell would silently reuse a stale cache file. *)
  let model_probe =
    let stress = Aging_physics.Bti.stress ~duty:1.0 () in
    let d =
      Degradation.of_stress (Aging_physics.Device.pmos ~w:1e-7) stress
    in
    let dn =
      Degradation.of_stress (Aging_physics.Device.nmos ~w:1e-7) stress
    in
    (d.Degradation.delta_vth, d.Degradation.mu_factor, dn.Degradation.delta_vth)
  in
  let fingerprint =
    let b = Buffer.create 512 in
    (* %h is lossless for floats, so distinct values never collide in the
       serialization the way a rounded decimal print could. *)
    let addf x = Buffer.add_string b (Printf.sprintf "%h;" x) in
    Buffer.add_string b "cells:";
    List.iter
      (fun (c : Cell.t) ->
        Buffer.add_string b c.Cell.name;
        Buffer.add_char b ';')
      cells;
    Buffer.add_string b "|slews:";
    Array.iter addf axes.Axes.slews;
    Buffer.add_string b "|loads:";
    Array.iter addf axes.Axes.loads;
    Buffer.add_string b "|backend:";
    Buffer.add_string b (backend_tag backend);
    Buffer.add_string b "|years:";
    addf years;
    Buffer.add_string b "|probe:";
    let p_vth, p_mu, n_vth = model_probe in
    addf p_vth;
    addf p_mu;
    addf n_vth;
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  { backend; cells; axes; years; cache_dir; jobs = max 1 jobs;
    memo = Lru.create ~cap:memo_cap; fingerprint; reports = ref [];
    lock = Mutex.create ();
    surrogate = Option.map (fun s -> { s with Characterize.sur_pool = None })
        surrogate;
    pool = Trainset.create (); pool_lock = Mutex.create () }

let axes t = t.axes
let years t = t.years
let fingerprint t = t.fingerprint
let memo_length t = Mutex.protect t.lock (fun () -> Lru.length t.memo)
let memo_cap t = Lru.cap t.memo

let mode_tag = function Degradation.Full -> "full" | Degradation.Vth_only -> "vth"

(* The key must identify the corner {e exactly}: [Scenario.suffix] rounds
   to one decimal, so using it here would alias every corner within the
   same 0.1 bucket onto one cache entry — harmless for the snapped paper
   grid, silently wrong for the arbitrary corners the API accepts (found
   by the guardband-monotone differential oracle). *)
let key t ~mode ~indexed corner =
  Printf.sprintf "%s_y%g_%.17g_%.17g%s_%s" (mode_tag mode) t.years
    corner.Scenario.lambda_p corner.Scenario.lambda_n
    (if indexed then "_idx" else "")
    t.fingerprint

(* A cache file that cannot be read or parsed is a miss, not a crash: log
   and rebuild.  Cache corruption (truncated write, concurrent writer, a
   format change) must never take down a characterization job. *)
let load_cache_file path =
  if not (Sys.file_exists path) then None
  else
    match Io.load path with
    | lib -> Some lib
    | exception (Failure msg | Sys_error msg | Invalid_argument msg) ->
      Metrics.incr m_corrupt;
      Log.warnf "core.cache" "corrupt cache file %s (%s); treating as a miss"
        path msg;
      None

(* [Sys.mkdir] is not recursive, so a nested cache dir ("cache/aged/v2")
   needs every ancestor created first; a concurrent writer racing us to any
   component surfaces as EEXIST ([Sys_error]) and is fine as long as the
   directory is there afterwards. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _
      when (try Sys.is_directory dir with Sys_error _ -> false) ->
      ()
  end

(* Writes go through a temp file in the same directory plus an atomic
   rename, so a crash mid-write can never leave a half-written .alib that
   would poison later runs. *)
let save_cache_file dir name lib =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".alib") in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ name) ".tmp" in
  match Io.save tmp lib with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* The memo is read and written from whichever domain asks for a corner
   ([complete] builds corners concurrently), so lookups and inserts take
   the manager lock; the expensive build itself runs outside it so
   distinct corners really do characterize in parallel.  Two domains
   racing on the {e same} key would both build and one insert would win —
   harmless (identical results), and [complete] never issues duplicate
   corners. *)
let cached t name build =
  match Mutex.protect t.lock (fun () -> Lru.find t.memo name) with
  | Some lib ->
    Metrics.incr m_memo_hit;
    lib
  | None ->
    Metrics.incr m_memo_miss;
    let from_disk =
      match t.cache_dir with
      | None -> None
      | Some dir -> load_cache_file (Filename.concat dir (name ^ ".alib"))
    in
    let lib =
      match from_disk with
      | Some lib ->
        Metrics.incr m_disk_hit;
        Log.infof "core.cache" "library %s served from disk cache" name;
        lib
      | None ->
        Metrics.incr m_build;
        Log.infof "core.cache" "library %s: cache miss, characterizing" name;
        let lib =
          Span.with_ "deglib.build" ~attrs:[ ("library", name) ] build
        in
        Option.iter (fun dir -> save_cache_file dir name lib) t.cache_dir;
        lib
    in
    Mutex.protect t.lock (fun () ->
        match Lru.put t.memo name lib with
        | None -> ()
        | Some (evicted, _) ->
          Metrics.incr m_evict;
          Log.debugf "core.cache" "memo full (cap %d): evicted %s"
            (Lru.cap t.memo) evicted);
    lib

let build_with_report t ?indexed ?surrogate ~name ~scenario () =
  let lib, report =
    Characterize.library_report ~backend:t.backend ~cells:t.cells ?indexed
      ?surrogate ~jobs:t.jobs ~axes:t.axes ~name ~scenario ()
  in
  Mutex.protect t.lock (fun () -> t.reports := (name, report) :: !(t.reports));
  lib

let build_reports t = Mutex.protect t.lock (fun () -> !(t.reports))

(* Anchor corners of the cross-corner training pool: the four duty-cycle
   extremes plus the balanced center.  Fixed — never derived from the
   corners actually requested — so the pool (and through it every
   surrogate-built library) is a function of the deglib configuration
   alone, not of query order. *)
let anchor_corners =
  [
    Scenario.fresh;
    Scenario.corner ~lambda_p:1. ~lambda_n:0.;
    Scenario.corner ~lambda_p:0. ~lambda_n:1.;
    Scenario.balanced;
    Scenario.worst_case;
  ]

(* Harvests one fully simulated anchor library into the training pool:
   every (slew, load) table value of every arc becomes one row under the
   same (cell, arc, dir, metric) key and with exactly the features
   {!Characterize.surrogate_grid} will fit on. *)
let harvest_anchor t c lib =
  let scenario = Scenario.scenario ~years:t.years c in
  let corner_feats = Characterize.corner_features scenario in
  List.iter
    (fun (e : Library.entry) ->
      let cell = e.Library.cell.Cell.name in
      List.iter
        (fun (a : Library.arc) ->
          let add dir metric (tbl : Nldm.table) =
            let key =
              Characterize.pool_key ~cell ~from_pin:a.Library.from_pin
                ~to_pin:a.Library.to_pin ~dir ~metric
            in
            Array.iteri
              (fun i row ->
                Array.iteri
                  (fun j v ->
                    Trainset.add t.pool ~key
                      ~features:
                        (Characterize.point_features ~corner_feats
                           ~slew:tbl.Nldm.slews.(i) ~load:tbl.Nldm.loads.(j))
                      ~target:v)
                  row)
              tbl.Nldm.values
          in
          add Library.Rise "delay" a.Library.delay_rise;
          add Library.Fall "delay" a.Library.delay_fall;
          add Library.Rise "slew" a.Library.slew_rise;
          add Library.Fall "slew" a.Library.slew_fall)
        e.Library.arcs)
    (Library.entries lib)

(* Builds (or loads) the anchor libraries, harvests them, freezes the
   pool, and returns the surrogate config with the pool attached.  Anchor
   builds are plain full-simulation corner builds under the plain cache
   key, so they are shared with non-surrogate runs of the same deglib
   configuration. *)
let ensure_pool t s =
  Mutex.protect t.pool_lock (fun () ->
      if not (Trainset.is_frozen t.pool) then begin
        List.iter
          (fun c ->
            let name = key t ~mode:Degradation.Full ~indexed:false c in
            let lib =
              cached t name (fun () ->
                  build_with_report t ~name
                    ~scenario:(Scenario.scenario ~years:t.years c)
                    ())
            in
            harvest_anchor t c lib)
          anchor_corners;
        Trainset.freeze t.pool;
        Log.infof "core.surrogate"
          "training pool frozen: %d rows from %d anchor corners (digest %s)"
          (Trainset.size t.pool)
          (List.length anchor_corners)
          (Trainset.digest t.pool)
      end);
  { s with Characterize.sur_pool = Some t.pool }

(* Cache-key suffix of a surrogate-built corner: the surrogate knobs plus
   the frozen pool digest, so surrogate libraries never alias full builds
   or builds under different tolerances. *)
let surrogate_suffix s =
  let pool_digest =
    match s.Characterize.sur_pool with
    | None -> "-"
    | Some p -> Trainset.digest p
  in
  let tag =
    Printf.sprintf "tol=%h;sample=%d;lambda=%h;conf=%h;pool=%s"
      s.Characterize.sur_tol s.Characterize.sur_sample
      s.Characterize.sur_lambda s.Characterize.sur_conf pool_digest
  in
  "_s" ^ String.sub (Digest.to_hex (Digest.string tag)) 0 12

let corner ?(mode = Degradation.Full) t c =
  match t.surrogate with
  | None ->
    let name = key t ~mode ~indexed:false c in
    cached t name (fun () ->
        let scenario = Scenario.scenario ~years:t.years ~mode c in
        build_with_report t ~name ~scenario ())
  | Some s ->
    let s = ensure_pool t s in
    let name = key t ~mode ~indexed:false c ^ surrogate_suffix s in
    cached t name (fun () ->
        let scenario = Scenario.scenario ~years:t.years ~mode c in
        build_with_report t ~surrogate:s ~name ~scenario ())

let indexed_corner t c =
  match t.surrogate with
  | None ->
    let name = key t ~mode:Degradation.Full ~indexed:true c in
    cached t name (fun () ->
        let scenario = Scenario.scenario ~years:t.years c in
        build_with_report t ~indexed:true ~name ~scenario ())
  | Some s ->
    let s = ensure_pool t s in
    let name = key t ~mode:Degradation.Full ~indexed:true c ^ surrogate_suffix s in
    cached t name (fun () ->
        let scenario = Scenario.scenario ~years:t.years c in
        build_with_report t ~indexed:true ~surrogate:s ~name ~scenario ())

let fresh t = corner t Scenario.fresh
let worst_case ?mode t = corner ?mode t Scenario.worst_case

let complete t corners =
  (* Corners are independent characterizations; fan them out over the
     pool (each build then runs its own cell grids sequentially — the
     pool's nesting guard keeps the total domain count at [t.jobs]).
     [Pool.map] preserves corner order, so the merged library is identical
     to a sequential build. *)
  match Pool.map ~jobs:t.jobs (indexed_corner t) corners with
  | [] -> invalid_arg "Degradation_library.complete: no corners"
  | first :: rest ->
    let merged = List.fold_left Library.merge_entries first rest in
    Library.create ~lib_name:"complete" ~axes:(Library.axes merged)
      (Library.entries merged)

let single_opc ?slew ?load t c =
  let fresh_lib = fresh t in
  let aged_lib = corner t c in
  let slew = Option.value slew ~default:t.axes.Axes.slews.(Array.length t.axes.Axes.slews - 1) in
  let load = Option.value load ~default:t.axes.Axes.loads.(0) in
  let scale_entry (fresh_e : Library.entry) =
    let aged_e = Library.find_exn aged_lib fresh_e.Library.indexed_name in
    let scale_arc (fa : Library.arc) =
      match
        List.find_opt
          (fun (aa : Library.arc) ->
            aa.Library.from_pin = fa.Library.from_pin
            && aa.Library.to_pin = fa.Library.to_pin)
          aged_e.Library.arcs
      with
      | None -> fa
      | Some aa ->
        let ratio dir =
          let d0 = Library.delay_of fa ~dir ~slew ~load in
          let d1 = Library.delay_of aa ~dir ~slew ~load in
          if Float.abs d0 < 1e-13 then 1.
          else Float.max 0.2 (Float.min 8. (d1 /. d0))
        in
        let r_rise = ratio Library.Rise and r_fall = ratio Library.Fall in
        {
          fa with
          Library.delay_rise = Nldm.map (fun d -> d *. r_rise) fa.Library.delay_rise;
          delay_fall = Nldm.map (fun d -> d *. r_fall) fa.Library.delay_fall;
        }
    in
    {
      fresh_e with
      Library.arcs = List.map scale_arc fresh_e.Library.arcs;
      setup_time = aged_e.Library.setup_time;
    }
  in
  Library.create
    ~lib_name:(Printf.sprintf "single-opc[%s]" (Scenario.suffix c))
    ~axes:t.axes
    (List.map scale_entry (Library.entries fresh_lib))
