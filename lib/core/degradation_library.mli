(** Managed creation of degradation-aware cell libraries.

    This is the productized form of the paper's Sec. 4.1 flow: characterized
    libraries are produced on demand per aging corner, memoized in memory
    and optionally persisted to a cache directory as [.alib] files (the
    "publicly available libraries" artifact), so repeated analyses never
    re-run transistor-level simulation. *)

type t

val create :
  ?backend:Aging_liberty.Characterize.backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?axes:Aging_liberty.Axes.t ->
  ?years:float ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?memo_cap:int ->
  ?surrogate:Aging_liberty.Characterize.surrogate ->
  unit ->
  t
(** Defaults: transient backend, full catalog, the paper's 7x7 axes,
    10-year lifetime, no disk cache, sequential builds ([jobs = 1]).
    [jobs > 1] characterizes on that many domains — within one library
    build, and across corners in {!complete} — with results identical to a
    sequential build.  [cache_dir] may be nested ("a/b/c"); missing parent
    directories are created on the first write.

    [memo_cap] (default 256) bounds the in-memory library memo with an
    LRU keyed by the exact-lambda cache keys — a resident process serving
    arbitrary corners must not grow without limit.  Eviction is safe:
    an evicted corner is re-served from the disk cache when [cache_dir]
    is set, or re-characterized.  Hits, misses and evictions land in
    the metrics registry as [cache.memo_hit] / [cache.memo_miss] /
    [cache.memo_evict].

    [surrogate] switches every corner build into
    {!Aging_liberty.Characterize} surrogate mode, with per-model training
    pooled across corners: the first surrogate build fully characterizes a
    fixed set of five anchor corners (the duty-cycle extremes and the
    balanced center), harvests their table values into a frozen
    cross-corner training pool — one bucket per (cell, arc, direction,
    metric) — and every requested corner then fits against that pool plus
    a handful of local seed simulations, so a model is effectively fit
    once per cell family and reused across nearby (lambda_p, lambda_n)
    corners.  The pool is a function of the deglib configuration only
    (never of query order), and surrogate-built libraries are cached under
    keys extended with the surrogate knobs and the pool digest, so they
    can never alias full builds.  Any [sur_pool] already present in the
    passed config is ignored and replaced by the anchor pool.
    @raise Invalid_argument if [memo_cap < 1]. *)

val axes : t -> Aging_liberty.Axes.t
val years : t -> float

val memo_length : t -> int
(** Number of libraries currently memoized (always [<= memo_cap]). *)

val memo_cap : t -> int

val fingerprint : t -> string
(** The configuration fingerprint embedded in every cache key: a digest of
    a full canonical serialization of (cell names, all slew/load axis
    values, backend tag, lifetime, and a probe of the degradation model),
    so {e any} configuration change — including to the last axis point or
    the last cell — invalidates the disk cache.  Exposed for
    cache-sensitivity tests. *)

val build_reports : t -> (string * Aging_liberty.Characterize.report) list
(** Fault/repair accounting of every library this manager actually
    characterized (cache hits produce no report), newest first, keyed by
    the cache name.  Cache files are written atomically (temp file +
    rename) and a corrupt/unparseable cache file is treated as a miss: the
    library is rebuilt and the file rewritten. *)

val fresh : t -> Aging_liberty.Library.t
(** The degradation-unaware (initial) library. *)

val corner :
  ?mode:Aging_physics.Degradation.mode ->
  t ->
  Aging_physics.Scenario.corner ->
  Aging_liberty.Library.t
(** Single-corner degradation-aware library with bare cell names (what a
    static-stress timing run plugs in).  [mode] defaults to [Full];
    [Vth_only] reproduces the state-of-the-art analyses of Fig. 5(a). *)

val worst_case : ?mode:Aging_physics.Degradation.mode -> t -> Aging_liberty.Library.t
(** [corner t Scenario.worst_case]. *)

val complete :
  t -> Aging_physics.Scenario.corner list -> Aging_liberty.Library.t
(** Merged complete library with corner-indexed cell names restricted to
    the given corners (use [Scenario.grid ()] for the full 121-corner
    artifact).  Entries are characterized lazily per corner and shared with
    {!corner}. *)

val single_opc :
  ?slew:float -> ?load:float -> t -> Aging_physics.Scenario.corner ->
  Aging_liberty.Library.t
(** The single-operating-condition strawman of Fig. 5(b): every fresh arc
    table is scaled by the aged/fresh delay ratio measured at one OPC
    (default: the largest characterized slew and the smallest load, the
    pessimistic point used by prior work). *)
