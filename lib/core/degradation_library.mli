(** Managed creation of degradation-aware cell libraries.

    This is the productized form of the paper's Sec. 4.1 flow: characterized
    libraries are produced on demand per aging corner, memoized in memory
    and optionally persisted to a cache directory as [.alib] files (the
    "publicly available libraries" artifact), so repeated analyses never
    re-run transistor-level simulation. *)

type t

val create :
  ?backend:Aging_liberty.Characterize.backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?axes:Aging_liberty.Axes.t ->
  ?years:float ->
  ?cache_dir:string ->
  ?jobs:int ->
  unit ->
  t
(** Defaults: transient backend, full catalog, the paper's 7x7 axes,
    10-year lifetime, no disk cache, sequential builds ([jobs = 1]).
    [jobs > 1] characterizes on that many domains — within one library
    build, and across corners in {!complete} — with results identical to a
    sequential build.  [cache_dir] may be nested ("a/b/c"); missing parent
    directories are created on the first write. *)

val axes : t -> Aging_liberty.Axes.t
val years : t -> float

val fingerprint : t -> string
(** The configuration fingerprint embedded in every cache key: a digest of
    a full canonical serialization of (cell names, all slew/load axis
    values, backend tag, lifetime, and a probe of the degradation model),
    so {e any} configuration change — including to the last axis point or
    the last cell — invalidates the disk cache.  Exposed for
    cache-sensitivity tests. *)

val build_reports : t -> (string * Aging_liberty.Characterize.report) list
(** Fault/repair accounting of every library this manager actually
    characterized (cache hits produce no report), newest first, keyed by
    the cache name.  Cache files are written atomically (temp file +
    rename) and a corrupt/unparseable cache file is treated as a miss: the
    library is rebuilt and the file rewritten. *)

val fresh : t -> Aging_liberty.Library.t
(** The degradation-unaware (initial) library. *)

val corner :
  ?mode:Aging_physics.Degradation.mode ->
  t ->
  Aging_physics.Scenario.corner ->
  Aging_liberty.Library.t
(** Single-corner degradation-aware library with bare cell names (what a
    static-stress timing run plugs in).  [mode] defaults to [Full];
    [Vth_only] reproduces the state-of-the-art analyses of Fig. 5(a). *)

val worst_case : ?mode:Aging_physics.Degradation.mode -> t -> Aging_liberty.Library.t
(** [corner t Scenario.worst_case]. *)

val complete :
  t -> Aging_physics.Scenario.corner list -> Aging_liberty.Library.t
(** Merged complete library with corner-indexed cell names restricted to
    the given corners (use [Scenario.grid ()] for the full 121-corner
    artifact).  Entries are characterized lazily per corner and shared with
    {!corner}. *)

val single_opc :
  ?slew:float -> ?load:float -> t -> Aging_physics.Scenario.corner ->
  Aging_liberty.Library.t
(** The single-operating-condition strawman of Fig. 5(b): every fresh arc
    table is scaled by the aged/fresh delay ratio measured at one OPC
    (default: the largest characterized slew and the smallest load, the
    pessimistic point used by prior work). *)
