(** Reproduction drivers for every table and figure of the evaluation.

    Each [figN] function regenerates the corresponding paper artifact: it
    runs the full pipeline (characterization -> libraries -> STA / synthesis
    / gate-level simulation), prints the same rows or series the paper
    reports (annotated with the paper's own numbers for comparison) and
    returns the formatted report.  The benchmark executable simply
    dispatches to these. *)

type t
(** Shared experiment context: the degradation-library managers (with disk
    cache), the benchmark designs and memoized synthesis results. *)

val create : ?quick:bool -> ?cache_dir:string -> ?jobs:int -> unit -> t
(** [quick] restricts the design set (DSP, RISC-5P, DCT), shrinks the test
    image and lowers optimization effort — for smoke runs.  [cache_dir]
    defaults to ["_libcache"] relative to the working directory.  [jobs]
    (default 1) is handed to every degradation-library manager: cache-miss
    characterizations run on that many domains. *)

val is_quick : t -> bool

val deglib : t -> Degradation_library.t
(** The 10-year degradation-library manager (paper lifetime). *)

val designs : t -> (string * Aging_netlist.Netlist.t) list

val fig1 : t -> string
(** Delay-increase surfaces of NAND2 and NOR2 over the 7x7 OPC grid under
    worst-case aging (paper Fig. 1). *)

val fig2 : t -> string
(** Library-wide delay-increase distribution: single OPC vs all 49 OPCs,
    including the fraction of arcs aging improves (paper Fig. 2: ~16 %). *)

val fig3 : t -> string
(** Transistor-level two-path criticality switch (paper Fig. 3). *)

val fig5a : t -> string
(** Guardband under-estimation when ignoring mobility degradation (paper:
    -19 % on average). *)

val fig5b : t -> string
(** Guardband over-estimation with a single-OPC model (paper: +214 %). *)

val fig5c : t -> string
(** Wrong guardband when only the initial critical path is re-timed
    (paper: -6 %). *)

val fig6a : t -> string
(** Required vs contained guardband of traditional vs aging-aware synthesis
    (paper: 50 % smaller on average, up to 75 %; ~4 % higher frequency). *)

val fig6b : t -> string
(** Area overhead of aging-aware synthesis (paper: ~0.2 %). *)

val fig6c : t -> string
(** PSNR of the gate-level DCT-IDCT chain under aging scenarios at the
    no-aging frequency (paper Fig. 6c). *)

val fig7 : t -> ?dir:string -> unit -> string
(** Writes the processed images of the Fig. 7 scenarios as PGM files
    (default directory ["fig7_out"]) and reports their PSNR. *)

val libgen : t -> ?corners:Aging_physics.Scenario.corner list -> unit -> string
(** Builds the merged complete degradation-aware library (default: a 3x3
    corner sub-grid; pass [Scenario.grid ()] for the paper's 121 corners at
    ~30 s each) and reports its size; the per-corner libraries land in the
    cache directory as .alib files (the paper's released artifact). *)

val hold_check : t -> string
(** Extension beyond the paper: the {e early}-path side of aging.  Because
    some arcs get faster with age (Fig. 1b), shortest-path arrivals shrink;
    this reports fresh vs worst-case-aged minimum hold slack per design and
    how many flip-flops lose hold margin.  Not part of the paper's figure
    set; run explicitly with [bench/main.exe hold]. *)

val ablate_backend : t -> string
(** Transient vs closed-form characterization divergence (the multi-stage
    cell argument of Sec. 3). *)

val ablate_slew : t -> string
(** Mapping with and without slew awareness (design-choice ablation). *)

val ablate_topk : t -> string
(** How many worst paths must be tracked for the post-aging critical path
    to be captured (Sec. 3 discussion of top-x% approaches). *)
