module Rng = Aging_util.Rng
module Netlist = Aging_netlist.Netlist
module Catalog = Aging_cells.Catalog

type gate = { cell : int; srcs : int list }

type spec = {
  n_inputs : int;
  n_ffs : int;
  gates : gate list;
  ff_srcs : int list;
  out_srcs : int list;
  stim_seed : int;
}

let cell_pool =
  Array.of_list
    (List.map Catalog.find_exn
       [
         "INV_X1"; "BUF_X1"; "NAND2_X1"; "NOR2_X1"; "AND2_X1"; "OR2_X1";
         "XOR2_X1"; "XNOR2_X1"; "NAND3_X1"; "NOR3_X1"; "MUX2_X1"; "AOI21_X1";
         "OAI21_X1"; "HA_X1";
       ])

let max_arity =
  Array.fold_left
    (fun m (c : Aging_cells.Cell.t) -> max m (List.length c.inputs))
    0 cell_pool

let spec =
  let open Gen in
  let gate =
    map2
      (fun cell srcs -> { cell; srcs })
      (int_range 0 (Array.length cell_pool - 1))
      (list_range max_arity max_arity (int_range 0 1023))
  in
  let+ n_inputs = int_range 1 5
  and+ n_ffs = int_range 0 3
  and+ gates = list_range 1 25 gate
  and+ ff_srcs = list_range 3 3 (int_range 0 1023)
  and+ out_srcs = list_range 1 4 (int_range 0 1023)
  and+ stim_seed = int_range 0 1_000_000 in
  { n_inputs; n_ffs; gates; ff_srcs; out_srcs; stim_seed }

let pick avail raw = List.nth avail (raw mod List.length avail)

let build s =
  let open Netlist.Builder in
  let b = create "propnet" in
  if s.n_ffs > 0 then ignore (clock b "clk");
  let ins = List.init s.n_inputs (fun i -> input b (Printf.sprintf "in%d" i)) in
  let ffq = List.init s.n_ffs (fun _ -> fresh_net b) in
  let avail = ref (ins @ ffq) in
  List.iter
    (fun g ->
      let c = cell_pool.(g.cell) in
      let arity = List.length c.Aging_cells.Cell.inputs in
      let srcs = List.filteri (fun i _ -> i < arity) g.srcs in
      let inputs =
        List.map2
          (fun pin raw -> (pin, pick !avail raw))
          c.Aging_cells.Cell.inputs srcs
      in
      let outs = cell b c.Aging_cells.Cell.name ~inputs in
      avail := !avail @ outs)
    s.gates;
  List.iteri
    (fun k q ->
      let raw = List.nth s.ff_srcs k in
      cell_into b "DFF_X1"
        ~inputs:[ ("D", pick !avail raw) ]
        ~outputs:[ ("Q", q) ])
    ffq;
  List.iteri
    (fun k raw -> output b (Printf.sprintf "out%d" k) (pick !avail raw))
    s.out_srcs;
  finish b

let stimulus s cycle =
  let rng = Rng.create (Rng.derive (Int64.of_int s.stim_seed) (cycle + 1)) in
  List.init s.n_inputs (fun i -> (Printf.sprintf "in%d" i, Rng.bool rng))

let pp_spec s =
  let gate_str g =
    Printf.sprintf "%s(%s)" cell_pool.(g.cell).Aging_cells.Cell.name
      (String.concat ","
         (List.map string_of_int
            (List.filteri
               (fun i _ ->
                 i < List.length cell_pool.(g.cell).Aging_cells.Cell.inputs)
               g.srcs)))
  in
  Printf.sprintf
    "{inputs=%d ffs=%d gates=[%s] ff_srcs=[%s] out_srcs=[%s] stim_seed=%d}"
    s.n_inputs s.n_ffs
    (String.concat "; " (List.map gate_str s.gates))
    (String.concat "," (List.map string_of_int s.ff_srcs))
    (String.concat "," (List.map string_of_int s.out_srcs))
    s.stim_seed
