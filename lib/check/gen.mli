(** Random-value generators with integrated shrinking.

    The dependency-free core of the property-testing kernel: a generator
    produces a {e lazy shrink tree} — the generated value at the root,
    with progressively simpler variants as children — so every generated
    value knows how to shrink itself and shrinking composes through [map],
    [bind] and the collection combinators for free (the Hedgehog design,
    reimplemented on {!Aging_util.Rng} so cases replay from a seed).

    Determinism: a generator is a function of an {!Aging_util.Rng.t};
    running it twice on generators created from the same seed yields
    identical trees.  [bind] forks the generator state with
    {!Aging_util.Rng.split}, so the amount of randomness a sub-generator
    consumes never shifts the values produced by its siblings. *)

type 'a tree = Tree of 'a * 'a tree Seq.t
(** A value plus a lazy sequence of strictly-simpler candidate trees,
    ordered most-aggressive shrink first. *)

type 'a t = Aging_util.Rng.t -> 'a tree

val root : 'a tree -> 'a

(** {2 Primitives} *)

val return : 'a -> 'a t
val bool : bool t
(** Shrinks [true] to [false]. *)

val int_range : int -> int -> int t
(** [int_range lo hi] is uniform on [[lo, hi]]; shrinks toward [lo] by
    halving the distance.  @raise Invalid_argument if [hi < lo]. *)

val float_range : float -> float -> float t
(** Uniform on [[lo, hi)]; shrinks toward [lo]. *)

val oneofl : 'a list -> 'a t
(** Uniform pick; shrinks toward earlier list elements. *)

val oneof : 'a t list -> 'a t
(** Picks one generator (no cross-generator shrinking beyond the chosen
    generator's own tree). *)

(** {2 Combinators} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t
val pair : 'a t -> 'b t -> ('a * 'b) t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Dependent generation.  When the outer value shrinks, the inner
    generator re-runs from a snapshot of the generator state, so inner
    values stay stable across outer shrink steps. *)

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
val ( and+ ) : 'a t -> 'b t -> ('a * 'b) t

val list_range : int -> int -> 'a t -> 'a list t
(** Length uniform on [[lo, hi]]; shrinks by dropping elements (never
    below [lo] elements) and by shrinking elements in place. *)

val such_that : ?retries:int -> ('a -> bool) -> 'a t -> 'a t
(** Retry (default 100 draws) until the predicate holds; the shrink tree
    is pruned to satisfying values.  @raise Failure when retries are
    exhausted. *)

val no_shrink : 'a t -> 'a t

val generate : seed:int64 -> 'a t -> 'a
(** Root of the tree the generator produces from a fresh [Rng.create
    seed]; handy for tests and debugging. *)
