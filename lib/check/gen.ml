module Rng = Aging_util.Rng

type 'a tree = Tree of 'a * 'a tree Seq.t
type 'a t = Rng.t -> 'a tree

let root (Tree (x, _)) = x
let return x _rng = Tree (x, Seq.empty)

let rec map_tree f (Tree (x, s)) =
  Tree (f x, fun () -> Seq.map (map_tree f) s ())

let map f g rng = map_tree f (g rng)

(* Shrink the left component first (it was generated first, so it is the
   "outer" choice), then the right. *)
let rec map2_tree f (Tree (a, sa) as ta) (Tree (b, sb) as tb) =
  Tree
    ( f a b,
      fun () ->
        Seq.append
          (Seq.map (fun ta' -> map2_tree f ta' tb) sa)
          (Seq.map (fun tb' -> map2_tree f ta tb') sb)
          () )

let map2 f ga gb rng =
  let ta = ga rng in
  let tb = gb rng in
  map2_tree f ta tb

let map3 f ga gb gc = map2 (fun (a, b) c -> f a b c) (map2 (fun a b -> (a, b)) ga gb) gc
let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
 fun rng ->
  (* Fork so the randomness consumed by [g] or [f] never shifts sibling
     generators, and snapshot the inner stream so re-running [f] on a
     shrunk outer value replays the same inner randomness. *)
  let r_outer = Rng.split rng in
  let r_inner = Rng.split rng in
  let rec go (Tree (a, sa)) =
    let (Tree (b, sb)) = f a (Rng.copy r_inner) in
    Tree (b, fun () -> Seq.append (Seq.map go sa) sb ())
  in
  go (g r_outer)

let ( let* ) g f = bind g f
let ( let+ ) g f = map f g
let ( and+ ) ga gb = pair ga gb

let bool rng =
  let b = Rng.bool rng in
  if b then Tree (true, Seq.return (Tree (false, Seq.empty)))
  else Tree (false, Seq.empty)

let int_range lo hi =
  if hi < lo then invalid_arg "Gen.int_range: hi < lo";
  let rec tree x =
    (* candidates x - d for d = (x-lo), (x-lo)/2, ..., 1: first candidate
       is [lo] itself, later ones creep back toward [x]. *)
    let rec candidates d () =
      if d <= 0 then Seq.Nil
      else Seq.Cons (tree (x - d), candidates (d / 2))
    in
    Tree (x, candidates (x - lo))
  in
  fun rng -> tree (lo + Rng.int rng (hi - lo + 1))

let float_range lo hi =
  if not (hi >= lo) then invalid_arg "Gen.float_range: hi < lo";
  let rec tree x =
    let rec candidates d k () =
      if k = 0 || d <= abs_float x *. 1e-12 +. 1e-300 then Seq.Nil
      else Seq.Cons (tree (x -. d), candidates (d /. 2.) (k - 1))
    in
    Tree (x, candidates (x -. lo) 24)
  in
  fun rng -> tree (lo +. (Rng.float rng *. (hi -. lo)))

let oneofl xs =
  let arr = Array.of_list xs in
  if Array.length arr = 0 then invalid_arg "Gen.oneofl: empty list";
  map (Array.get arr) (int_range 0 (Array.length arr - 1))

let oneof gs =
  let arr = Array.of_list gs in
  if Array.length arr = 0 then invalid_arg "Gen.oneof: empty list";
  fun rng -> arr.(Rng.int rng (Array.length arr)) rng

(* A list of element trees shrinks by dropping one element (front first,
   respecting the minimum length) and by shrinking elements in place. *)
let rec list_tree min_len (ts : 'a tree list) : 'a list tree =
  let roots = List.map root ts in
  let shrinks () =
    let n = List.length ts in
    let drops =
      if n <= min_len then Seq.empty
      else
        Seq.map
          (fun i ->
            list_tree min_len (List.filteri (fun j _ -> j <> i) ts))
          (Seq.init n Fun.id)
    in
    let elems =
      Seq.concat_map
        (fun i ->
          let (Tree (_, s)) = List.nth ts i in
          Seq.map
            (fun t' ->
              list_tree min_len (List.mapi (fun j t -> if j = i then t' else t) ts))
            s)
        (Seq.init n Fun.id)
    in
    Seq.append drops elems ()
  in
  Tree (roots, shrinks)

let list_range lo hi elem =
  if lo < 0 || hi < lo then invalid_arg "Gen.list_range";
  fun rng ->
    let n = lo + Rng.int rng (hi - lo + 1) in
    let ts = List.init n (fun _ -> elem rng) in
    list_tree lo ts

let rec filter_tree pred (Tree (x, s)) =
  Tree
    ( x,
      fun () ->
        Seq.filter_map
          (fun (Tree (y, _) as t) ->
            if pred y then Some (filter_tree pred t) else None)
          s () )

let such_that ?(retries = 100) pred g rng =
  let rec attempt k =
    if k = 0 then failwith "Gen.such_that: retries exhausted";
    let (Tree (x, _) as t) = g rng in
    if pred x then filter_tree pred t else attempt (k - 1)
  in
  attempt retries

let no_shrink g rng = Tree (root (g rng), Seq.empty)
let generate ~seed g = root (g (Rng.create seed))
