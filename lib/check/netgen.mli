(** Random gate-level DAG netlists for the differential oracles.

    A generated {!spec} is a shrinkable {e recipe}: gate picks and raw
    source indices that {!build} resolves (modulo the set of nets available
    at that point) into a well-formed {!Aging_netlist.Netlist.t} — always
    single-driver and acyclic because gates only read nets created before
    them (primary inputs, flip-flop outputs, earlier gate outputs), while
    flip-flop D pins close feedback loops through the registers.  Dropping
    or shrinking recipe entries yields a smaller but still well-formed
    netlist, which is what makes shrunk counterexamples readable. *)

type gate = {
  cell : int;  (** index into {!cell_pool} *)
  srcs : int list;  (** raw source picks, reduced modulo available nets *)
}

type spec = {
  n_inputs : int;
  n_ffs : int;
  gates : gate list;
  ff_srcs : int list;  (** D-pin picks, one per flip-flop *)
  out_srcs : int list;  (** primary-output picks (at least one) *)
  stim_seed : int;  (** seeds the {!stimulus} bit streams *)
}

val cell_pool : Aging_cells.Cell.t array
(** The combinational cells specs draw from (X1 drives across the
    catalog families). *)

val spec : spec Gen.t
(** 1-5 inputs, 0-3 flip-flops, 1-25 gates. *)

val build : spec -> Aging_netlist.Netlist.t

val stimulus : spec -> int -> (string * bool) list
(** [stimulus s cycle]: deterministic random primary-input values for the
    given cycle, derived from [s.stim_seed]. *)

val pp_spec : spec -> string
