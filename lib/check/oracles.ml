module Rng = Aging_util.Rng
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Nldm = Aging_liberty.Nldm
module Io = Aging_liberty.Io
module Characterize = Aging_liberty.Characterize
module Catalog = Aging_cells.Catalog
module Cell = Aging_cells.Cell
module Scenario = Aging_physics.Scenario
module Device = Aging_physics.Device
module Mosfet = Aging_spice.Mosfet
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform
module Timing = Aging_sta.Timing
module Sdf = Aging_sta.Sdf
module Event_sim = Aging_sim.Event_sim
module Flow = Aging_synth.Flow
module Guardband = Aging_core.Guardband
module Degradation_library = Aging_core.Degradation_library
module Designs = Aging_designs.Designs
module Metrics = Aging_obs.Metrics

type t = {
  name : string;
  doc : string;
  run : seed:int64 -> cases:int -> jobs:int -> Runner.outcome;
}

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt
let ( let** ) r f = match r with Ok () -> f () | Error _ as e -> e

(* Shared fresh library (Analytic backend, coarse axes, full catalog):
   built once per process, used by every oracle that just needs *some*
   self-consistent NLDM library over the catalog. *)
let shared_fresh =
  lazy (Characterize.fresh_library ~backend:Characterize.Analytic ~axes:Axes.coarse ())

(* ------------------------------------------------------------------ *)
(* 1. spice-vs-alpha: transient gate delays vs. the alpha-power law.  *)

type spice_case = {
  sc_slew : float;
  sc_load : float;
  sc_lam : float;
  sc_load_factor : float;
}

let pp_spice_case c =
  Printf.sprintf "{slew=%.3e load=%.3e lam=%.3f load_factor=%.2f}" c.sc_slew
    c.sc_load c.sc_lam c.sc_load_factor

let spice_case_gen =
  let open Gen in
  let+ sc_slew = float_range 5e-12 9e-10
  and+ sc_load = float_range 5e-16 2e-14
  and+ sc_lam = float_range 0.05 1.0
  and+ sc_load_factor = float_range 1.3 3.0 in
  { sc_slew; sc_load; sc_lam; sc_load_factor }

let first_arc cell = List.hd (Cell.arcs cell)

let measure ~scenario ~cell ~dir ~slew ~load =
  fst
    (Characterize.arc_measure Characterize.default_backend ~scenario ~cell
       ~arc:(first_arc cell) ~dir ~slew ~load)

let spice_vs_alpha c =
  let fresh = Scenario.scenario Scenario.fresh in
  let inv = Catalog.find_exn "INV_X1" in
  let nand2 = Catalog.find_exn "NAND2_X1" in
  let nor2 = Catalog.find_exn "NOR2_X1" in
  let slew = c.sc_slew and load = c.sc_load in
  (* Monotone in load: a fresh INV fall delay grows with capacitance. *)
  let d_lo = measure ~scenario:fresh ~cell:inv ~dir:Library.Fall ~slew ~load in
  let d_hi =
    measure ~scenario:fresh ~cell:inv ~dir:Library.Fall ~slew
      ~load:(load *. c.sc_load_factor)
  in
  let** () =
    if d_hi > d_lo then Ok ()
    else
      fail "INV fall delay not monotone in load: %.3e @%.3e vs %.3e @%.3e" d_lo
        load d_hi (load *. c.sc_load_factor)
  in
  (* nMOS-only stress slows the INV fall; the slowdown tracks the
     alpha-power first-order prediction Id_fresh/Id_aged. *)
  let n_corner = Scenario.scenario (Scenario.corner ~lambda_p:0. ~lambda_n:c.sc_lam) in
  let d_aged = measure ~scenario:n_corner ~cell:inv ~dir:Library.Fall ~slew ~load in
  let** () =
    if d_aged >= d_lo *. (1. -. 1e-9) then Ok ()
    else fail "aged INV fall faster than fresh: %.4e < %.4e" d_aged d_lo
  in
  let dev = Device.nmos ~w:Device.w_min in
  let aged_dev = Scenario.age_device n_corner dev in
  let id_of d = Mosfet.saturation_current d ~vov:(Device.vdd -. Device.effective_vth d) in
  let predicted = id_of dev /. id_of aged_dev in
  let ratio = d_aged /. d_lo in
  let** () =
    if predicted >= 1.0 then Ok ()
    else fail "alpha-power predicts aging speeds the gate up: %.4f" predicted
  in
  (* The first-order prediction is drive-limited; as the input ramp starts
     to dominate the delay (slow slews into tiny loads) its error grows,
     so the tolerance widens linearly with slew (calibrated: worst
     observed |diff| is 0.34 at slew 0.9 ns, load 0.5 fF, lambda 1). *)
  let tolerance = 0.15 +. (0.30 *. (slew /. 9e-10)) in
  let** () =
    if abs_float (ratio -. predicted) <= tolerance then Ok ()
    else
      fail "spice ratio %.4f vs alpha-power prediction %.4f (|diff| > %.3f)"
        ratio predicted tolerance
  in
  (* Fig. 1a: the NAND2 rise arc worsens under pMOS stress. *)
  let p_corner = Scenario.scenario (Scenario.corner ~lambda_p:c.sc_lam ~lambda_n:0.) in
  let nand_fresh = measure ~scenario:fresh ~cell:nand2 ~dir:Library.Rise ~slew ~load in
  let nand_aged = measure ~scenario:p_corner ~cell:nand2 ~dir:Library.Rise ~slew ~load in
  let** () =
    if nand_aged >= nand_fresh *. (1. -. 1e-4) then Ok ()
    else
      fail "NAND2 rise improved under pMOS stress: fresh %.4e aged %.4e"
        nand_fresh nand_aged
  in
  (* Fig. 1b: the NOR2 fall arc *improves* under pMOS stress (the aged
     pull-up fights the falling output less). *)
  let nor_fresh = measure ~scenario:fresh ~cell:nor2 ~dir:Library.Fall ~slew ~load in
  let nor_aged = measure ~scenario:p_corner ~cell:nor2 ~dir:Library.Fall ~slew ~load in
  if nor_aged <= nor_fresh *. (1. +. 1e-4) then Ok ()
  else
    fail "NOR2 fall worsened under pMOS stress: fresh %.4e aged %.4e" nor_fresh
      nor_aged

(* ------------------------------------------------------------------ *)
(* 2. sim-vs-sta: the event simulator agrees with the functional       *)
(* reference (and reports no timing errors) at the STA period.         *)

let sim_cycles = 16

let sorted_outputs l = List.sort compare l

let sim_vs_sta spec =
  let netlist = Netgen.build spec in
  let library = Lazy.force shared_fresh in
  let sim = Event_sim.prepare ~library netlist in
  let period = Float.max (Event_sim.min_period sim) 1e-10 *. 1.01 in
  let stimulus = Netgen.stimulus spec in
  let trace = Event_sim.run sim ~period ~cycles:sim_cycles ~stimulus in
  let reference = Event_sim.run_functional netlist ~cycles:sim_cycles ~stimulus in
  let** () =
    if trace.Event_sim.timing_errors = 0 then Ok ()
    else
      fail "%d timing errors at period %.3e (= 1.01 x STA min period)"
        trace.Event_sim.timing_errors period
  in
  let diverging = ref [] in
  Array.iteri
    (fun i outs ->
      if sorted_outputs outs <> sorted_outputs reference.(i) then
        diverging := i :: !diverging)
    trace.Event_sim.outputs;
  match List.rev !diverging with
  | [] -> Ok ()
  | cycles ->
    fail "outputs diverge from functional reference at cycles %s"
      (String.concat "," (List.map string_of_int cycles))

(* ------------------------------------------------------------------ *)
(* 3. nldm-interp: bilinear interpolation exact at grid points,        *)
(* bounded by the surrounding corners inside a cell.                   *)

type nldm_case = {
  nc_slews : float list;  (** strictly increasing *)
  nc_loads : float list;
  nc_table_seed : int;
  nc_fs : float;  (** fractional position of the probe point, slew axis *)
  nc_fl : float;
}

let pp_nldm_case c =
  Printf.sprintf "{slews=[%s] loads=[%s] table_seed=%d probe=(%.3f,%.3f)}"
    (String.concat ";" (List.map (Printf.sprintf "%.3e") c.nc_slews))
    (String.concat ";" (List.map (Printf.sprintf "%.3e") c.nc_loads))
    c.nc_table_seed c.nc_fs c.nc_fl

let axis_gen ~start_lo ~start_hi ~step_lo ~step_hi =
  let open Gen in
  let+ start = float_range start_lo start_hi
  and+ steps = list_range 1 4 (float_range step_lo step_hi) in
  let _, points =
    List.fold_left
      (fun (x, acc) d -> (x +. d, (x +. d) :: acc))
      (start, [ start ]) steps
  in
  List.rev points

let nldm_case_gen =
  let open Gen in
  let+ nc_slews = axis_gen ~start_lo:1e-12 ~start_hi:5e-11 ~step_lo:1e-12 ~step_hi:3e-10
  and+ nc_loads = axis_gen ~start_lo:1e-16 ~start_hi:1e-15 ~step_lo:1e-16 ~step_hi:8e-15
  and+ nc_table_seed = int_range 0 1_000_000
  and+ nc_fs = float_range 0.0 1.0
  and+ nc_fl = float_range 0.0 1.0 in
  { nc_slews; nc_loads; nc_table_seed; nc_fs; nc_fl }

let table_of_case c =
  let slews = Array.of_list c.nc_slews in
  let loads = Array.of_list c.nc_loads in
  let rng = Rng.create (Int64.of_int c.nc_table_seed) in
  let values =
    Array.init (Array.length slews) (fun _ ->
        Array.init (Array.length loads) (fun _ -> (Rng.float rng *. 1.1e-9) -. 1e-10))
  in
  Nldm.make ~slews ~loads ~values

let nldm_interp c =
  let table = table_of_case c in
  let slews = Array.of_list c.nc_slews and loads = Array.of_list c.nc_loads in
  let close a b = abs_float (a -. b) <= 1e-18 +. (1e-12 *. abs_float b) in
  (* Exact at every grid point. *)
  let bad = ref None in
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun j l ->
          let v = Nldm.lookup table ~slew:s ~load:l in
          let expect = table.Nldm.values.(i).(j) in
          if (not (close v expect)) && !bad = None then bad := Some (i, j, v, expect))
        loads)
    slews;
  let** () =
    match !bad with
    | None -> Ok ()
    | Some (i, j, v, expect) ->
      fail "grid point (%d,%d): lookup %.17e <> stored %.17e" i j v expect
  in
  (* Bounded by the surrounding corners inside a cell. *)
  let ns = Array.length slews and nl = Array.length loads in
  let pick_cell f n = min (n - 2) (int_of_float (f *. float_of_int (n - 1))) in
  let i = pick_cell c.nc_fs ns and j = pick_cell c.nc_fl nl in
  let s = slews.(i) +. ((slews.(i + 1) -. slews.(i)) *. c.nc_fs) in
  let l = loads.(j) +. ((loads.(j + 1) -. loads.(j)) *. c.nc_fl) in
  let s = Float.min s slews.(i + 1) and l = Float.min l loads.(j + 1) in
  let corners =
    [
      table.Nldm.values.(i).(j);
      table.Nldm.values.(i).(j + 1);
      table.Nldm.values.(i + 1).(j);
      table.Nldm.values.(i + 1).(j + 1);
    ]
  in
  let v = Nldm.lookup table ~slew:s ~load:l in
  let lo = List.fold_left Float.min infinity corners in
  let hi = List.fold_left Float.max neg_infinity corners in
  let margin = 1e-18 +. (1e-9 *. (hi -. lo)) in
  let** () =
    if v >= lo -. margin && v <= hi +. margin then Ok ()
    else
      fail "interior point (%.3e,%.3e): %.17e outside corner bounds [%.17e, %.17e]"
        s l v lo hi
  in
  (* tabulate (lookup table) reproduces the table. *)
  let rebuilt = Nldm.tabulate ~slews ~loads (fun ~slew ~load -> Nldm.lookup table ~slew ~load) in
  let ok = ref true in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if not (close v table.Nldm.values.(i).(j)) then ok := false) row)
    rebuilt.Nldm.values;
  if !ok then Ok () else fail "tabulate(lookup) does not reproduce the table"

(* ------------------------------------------------------------------ *)
(* 4. liberty-fixpoint: write -> parse -> write is a fixpoint.         *)

type lib_case = {
  lc_cells : int list;  (** indices into [lib_cell_pool] *)
  lc_lambda_p : int;  (** thousandths *)
  lc_lambda_n : int;
  lc_slews : float list;
  lc_loads : float list;
  lc_table_seed : int;
  lc_indexed : bool;
}

let lib_cell_pool =
  [| "INV_X1"; "NAND2_X1"; "NOR2_X1"; "XOR2_X1"; "MUX2_X1"; "AOI21_X1"; "DFF_X1" |]

let pp_lib_case c =
  Printf.sprintf
    "{cells=[%s] corner=%.3f_%.3f slews=%d loads=%d table_seed=%d indexed=%b}"
    (String.concat ","
       (List.map (fun i -> lib_cell_pool.(i)) c.lc_cells))
    (float_of_int c.lc_lambda_p /. 1000.)
    (float_of_int c.lc_lambda_n /. 1000.)
    (List.length c.lc_slews) (List.length c.lc_loads) c.lc_table_seed
    c.lc_indexed

let lib_case_gen =
  let open Gen in
  let+ lc_cells = list_range 1 3 (int_range 0 (Array.length lib_cell_pool - 1))
  and+ lc_lambda_p = int_range 0 1000
  and+ lc_lambda_n = int_range 0 1000
  and+ lc_slews = axis_gen ~start_lo:1e-12 ~start_hi:5e-11 ~step_lo:1e-12 ~step_hi:3e-10
  and+ lc_loads = axis_gen ~start_lo:1e-16 ~start_hi:1e-15 ~step_lo:1e-16 ~step_hi:8e-15
  and+ lc_table_seed = int_range 0 1_000_000
  and+ lc_indexed = bool in
  { lc_cells; lc_lambda_p; lc_lambda_n; lc_slews; lc_loads; lc_table_seed; lc_indexed }

let library_of_case c =
  let slews = Array.of_list c.lc_slews and loads = Array.of_list c.lc_loads in
  let axes = { Axes.slews; loads } in
  let corner =
    Scenario.corner
      ~lambda_p:(float_of_int c.lc_lambda_p /. 1000.)
      ~lambda_n:(float_of_int c.lc_lambda_n /. 1000.)
  in
  let rng = Rng.create (Int64.of_int c.lc_table_seed) in
  let rand_table () =
    let values =
      Array.init (Array.length slews) (fun _ ->
          Array.init (Array.length loads) (fun _ -> Rng.float rng *. 1e-9))
    in
    Nldm.make ~slews ~loads ~values
  in
  let names =
    List.sort_uniq compare (List.map (fun i -> lib_cell_pool.(i)) c.lc_cells)
  in
  let entries =
    List.map
      (fun name ->
        let cell = Catalog.find_exn name in
        let arcs =
          List.map
            (fun (a : Cell.arc) ->
              {
                Library.from_pin = a.Cell.arc_input;
                to_pin = a.Cell.arc_output;
                sense = (if a.Cell.positive_unate then Library.Positive else Library.Negative);
                when_side = a.Cell.side;
                delay_rise = rand_table ();
                delay_fall = rand_table ();
                slew_rise = rand_table ();
                slew_fall = rand_table ();
              })
            (Cell.arcs cell)
        in
        let pin_caps =
          List.map (fun pin -> (pin, Rng.float rng *. 5e-15)) cell.Cell.inputs
        in
        let setup_time =
          if cell.Cell.kind = Cell.Flipflop then Rng.float rng *. 1e-10 else 0.
        in
        {
          Library.cell;
          indexed_name =
            (if c.lc_indexed then name ^ "@" ^ Scenario.suffix corner else name);
          corner;
          arcs;
          pin_caps;
          setup_time;
        })
      names
  in
  Library.create ~lib_name:"propcheck" ~axes entries

let liberty_fixpoint c =
  let lib = library_of_case c in
  let s1 = Io.to_string lib in
  match Io.of_string s1 with
  | exception Failure msg -> fail "reparse failed: %s" msg
  | lib2 ->
    let s2 = Io.to_string lib2 in
    let** () =
      if String.equal s1 s2 then Ok ()
      else fail "write -> parse -> write is not a fixpoint (%d vs %d bytes)"
          (String.length s1) (String.length s2)
    in
    let** () =
      if Library.names lib2 = Library.names lib then Ok ()
      else fail "entry names changed across the round-trip"
    in
    let n1 = List.length (Library.entries lib) in
    let n2 = List.length (Library.entries lib2) in
    if n1 = n2 then Ok () else fail "entry count changed: %d -> %d" n1 n2

(* ------------------------------------------------------------------ *)
(* 5. parallel-identity: jobs=N characterization is bit-identical to   *)
(* sequential.                                                         *)

type par_case = {
  pc_cells : int list;
  pc_lambda_p : float;
  pc_lambda_n : float;
  pc_jobs : int;
  pc_transient : bool;
}

let par_cell_pool =
  [| "INV_X1"; "BUF_X1"; "NAND2_X1"; "NOR2_X1"; "AND2_X1"; "OR2_X1"; "DFF_X1" |]

let pp_par_case c =
  Printf.sprintf "{cells=[%s] corner=%.3f_%.3f jobs=%d backend=%s}"
    (String.concat "," (List.map (fun i -> par_cell_pool.(i)) c.pc_cells))
    c.pc_lambda_p c.pc_lambda_n c.pc_jobs
    (if c.pc_transient then "transient" else "analytic")

let par_case_gen =
  let open Gen in
  let+ pc_cells = list_range 1 4 (int_range 0 (Array.length par_cell_pool - 1))
  and+ pc_lambda_p = float_range 0.0 1.0
  and+ pc_lambda_n = float_range 0.0 1.0
  and+ pc_jobs = int_range 2 8
  and+ transient_pick = int_range 0 7 in
  { pc_cells; pc_lambda_p; pc_lambda_n; pc_jobs; pc_transient = transient_pick = 0 }

let entries_identical a b =
  let open Library in
  List.length (entries a) = List.length (entries b)
  && List.for_all2
       (fun ea eb ->
         ea.indexed_name = eb.indexed_name
         && Scenario.equal ea.corner eb.corner
         && ea.setup_time = eb.setup_time
         && ea.pin_caps = eb.pin_caps
         && ea.arcs = eb.arcs)
       (entries a) (entries b)

let parallel_identity ~max_jobs c =
  let backend =
    if c.pc_transient then Characterize.default_backend else Characterize.Analytic
  in
  let cells =
    if c.pc_transient then [ Catalog.find_exn "INV_X1" ]
    else
      List.map
        (fun i -> Catalog.find_exn par_cell_pool.(i))
        (List.sort_uniq compare c.pc_cells)
  in
  let scenario =
    Scenario.scenario (Scenario.corner ~lambda_p:c.pc_lambda_p ~lambda_n:c.pc_lambda_n)
  in
  let build jobs =
    Characterize.library ~backend ~cells ~jobs ~axes:Axes.coarse ~name:"par"
      ~scenario ()
  in
  let seq = build 1 in
  let par = build (min c.pc_jobs (max 2 max_jobs)) in
  if entries_identical seq par then Ok ()
  else fail "jobs=%d library differs from sequential build" c.pc_jobs

(* ------------------------------------------------------------------ *)
(* 6. guardband-monotone: more duty cycle never shrinks the guardband. *)

type gb_case = {
  gb_bits : int;
  gb_lp : float * float;  (** (lo, hi) pMOS duties *)
  gb_ln : float * float;
}

let pp_gb_case c =
  Printf.sprintf "{bits=%d lambda_p=%.3f<=%.3f lambda_n=%.3f<=%.3f}" c.gb_bits
    (fst c.gb_lp) (snd c.gb_lp) (fst c.gb_ln) (snd c.gb_ln)

let gb_case_gen =
  let open Gen in
  let ordered = map2 (fun a b -> (Float.min a b, Float.max a b))
      (float_range 0.0 1.0) (float_range 0.0 1.0) in
  let+ gb_bits = int_range 3 5
  and+ gb_lp = ordered
  and+ gb_ln = ordered in
  { gb_bits; gb_lp; gb_ln }

let gb_deglib =
  lazy
    (let counter = Designs.counter ~bits:5 in
     let cells =
       List.map (fun (name, _) -> Catalog.find_exn name)
         (Aging_netlist.Netlist.count_cells counter)
     in
     Degradation_library.create ~backend:Characterize.Analytic ~cells
       ~axes:Axes.coarse ())

let guardband_monotone c =
  let deglib = Lazy.force gb_deglib in
  let netlist = Designs.counter ~bits:c.gb_bits in
  let corner_lo = Scenario.corner ~lambda_p:(fst c.gb_lp) ~lambda_n:(fst c.gb_ln) in
  let corner_hi = Scenario.corner ~lambda_p:(snd c.gb_lp) ~lambda_n:(snd c.gb_ln) in
  let est_lo = Guardband.static ~deglib ~corner:corner_lo netlist in
  let est_hi = Guardband.static ~deglib ~corner:corner_hi netlist in
  let consistent (e : Guardband.estimate) =
    abs_float (e.guardband -. (e.aged_period -. e.fresh_period)) <= 1e-18
  in
  let** () =
    if consistent est_lo && consistent est_hi then Ok ()
    else fail "guardband <> aged - fresh"
  in
  let** () =
    if est_lo.Guardband.guardband >= -1e-15 then Ok ()
    else fail "negative guardband %.3e at the weaker corner" est_lo.Guardband.guardband
  in
  let** () =
    if est_hi.Guardband.guardband >= est_lo.Guardband.guardband -. 1e-15 then Ok ()
    else
      fail "guardband not monotone in duty cycle: %.6e at %s > %.6e at %s"
        est_lo.Guardband.guardband (Scenario.suffix corner_lo)
        est_hi.Guardband.guardband (Scenario.suffix corner_hi)
  in
  (* The underlying physics: the aged nMOS/pMOS thresholds are monotone in
     their duty cycles too. *)
  let vth corner dev =
    Device.effective_vth (Scenario.age_device (Scenario.scenario corner) dev)
  in
  let n = Device.nmos ~w:Device.w_min and p = Device.pmos ~w:Device.w_min in
  if vth corner_hi n >= vth corner_lo n -. 1e-15
     && vth corner_hi p >= vth corner_lo p -. 1e-15
  then Ok ()
  else fail "aged Vth not monotone in duty cycle"

(* ------------------------------------------------------------------ *)
(* 7. sdf-roundtrip: write -> parse -> write on random netlists.       *)

let sdf_roundtrip spec =
  let netlist = Netgen.build spec in
  let library = Lazy.force shared_fresh in
  let analysis = Timing.analyze ~library netlist in
  let sdf = Sdf.of_analysis analysis in
  let s1 = Sdf.to_string sdf in
  match Sdf.of_string s1 with
  | Error msg -> fail "reparse failed: %s" msg
  | Ok sdf2 ->
    let s2 = Sdf.to_string sdf2 in
    let** () =
      if String.equal s1 s2 then Ok ()
      else fail "write -> parse -> write is not a fixpoint"
    in
    let** () =
      if List.length sdf2.Sdf.cells = List.length sdf.Sdf.cells then Ok ()
      else fail "cell count changed across the round-trip"
    in
    let bad = ref None in
    List.iter
      (fun (c : Sdf.cell) ->
        List.iter
          (fun (p : Sdf.iopath) ->
            List.iter
              (fun (t : Sdf.triple) ->
                List.iter
                  (fun d ->
                    if (not (Float.is_finite d)) || d < 0. then
                      bad := Some (c.Sdf.instance, p.Sdf.from_pin, d))
                  [ t.Sdf.d_min; t.Sdf.d_typ; t.Sdf.d_max ])
              [ p.Sdf.rise; p.Sdf.fall ])
          c.Sdf.iopaths)
      sdf2.Sdf.cells;
    (match !bad with
    | None -> Ok ()
    | Some (inst, pin, d) ->
      fail "non-finite or negative delay %.4e on %s/%s" d inst pin)

(* ------------------------------------------------------------------ *)
(* 8. synth-equiv: the synthesis flow preserves cycle-accurate          *)
(* behaviour on random netlists.                                        *)

let synth_equiv spec =
  let netlist = Netgen.build spec in
  let library = Lazy.force shared_fresh in
  let mapped = Flow.compile ~library netlist in
  let stimulus = Netgen.stimulus spec in
  let cycles = 12 in
  let ref_out = Event_sim.run_functional netlist ~cycles ~stimulus in
  let map_out = Event_sim.run_functional mapped ~cycles ~stimulus in
  let diverging = ref [] in
  Array.iteri
    (fun i outs ->
      if sorted_outputs outs <> sorted_outputs map_out.(i) then
        diverging := i :: !diverging)
    ref_out;
  match List.rev !diverging with
  | [] -> Ok ()
  | cycles ->
    fail "synthesized netlist diverges at cycles %s"
      (String.concat "," (List.map string_of_int cycles))

(* ------------------------------------------------------------------ *)
(* 9. jacobian-fd: the engine's analytic device derivatives vs finite
   differences of the current equation itself, at random (aged) devices
   and operating points; plus one transient where the engine's
   [fd_jacobian] option must reproduce the analytic-Jacobian delays. *)

type jac_case = {
  jac_pmos : bool;
  jac_w : float;
  jac_dvth : float;
  jac_mu : float;
  jac_vg : float;
  jac_vd : float;
  jac_vs : float;
  jac_slew : float;
  jac_load : float;
}

let pp_jac_case c =
  Printf.sprintf
    "{%s w=%.2e dvth=%.3f mu=%.2f vg=%.3f vd=%.3f vs=%.3f slew=%.2e load=%.2e}"
    (if c.jac_pmos then "pmos" else "nmos")
    c.jac_w c.jac_dvth c.jac_mu c.jac_vg c.jac_vd c.jac_vs c.jac_slew
    c.jac_load

let jac_case_gen =
  let open Gen in
  let+ p = float_range 0. 1.
  and+ jac_w = float_range Device.w_min (4. *. Device.w_min)
  and+ jac_dvth = float_range 0. 0.12
  and+ jac_mu = float_range 0.8 1.0
  and+ jac_vg = float_range (-0.1) (Device.vdd +. 0.1)
  and+ jac_vd = float_range (-0.1) (Device.vdd +. 0.1)
  and+ jac_vs = float_range (-0.1) (Device.vdd +. 0.1)
  and+ jac_slew = float_range 2e-11 5e-10
  and+ jac_load = float_range 1e-15 8e-15 in
  { jac_pmos = p < 0.5; jac_w; jac_dvth; jac_mu; jac_vg; jac_vd; jac_vs;
    jac_slew; jac_load }

let jacobian_fd c =
  let dev =
    Device.with_aging ~delta_vth:c.jac_dvth ~mu_factor:c.jac_mu
      (if c.jac_pmos then Device.pmos ~w:c.jac_w else Device.nmos ~w:c.jac_w)
  in
  let vg = c.jac_vg and vd = c.jac_vd and vs = c.jac_vs in
  let i_at ~vg ~vd ~vs = Mosfet.channel_current dev ~vg ~vd ~vs in
  let d = Mosfet.channel_current_deriv dev ~vg ~vd ~vs in
  let i = i_at ~vg ~vd ~vs in
  let** () =
    if Float.abs (d.Mosfet.i -. i) <= 1e-15 +. (1e-12 *. Float.abs i) then
      Ok ()
    else
      fail "deriv.i disagrees with channel_current: %.6e vs %.6e" d.Mosfet.i i
  in
  (* The model is continuous but only piecewise differentiable, and the
     analytic derivative is the one-sided derivative of the branch taken;
     near a region boundary (vds = vdsat, vov = 0, vd = vs) the central
     difference straddles the kink.  A partial therefore passes if ANY of
     the central / forward / backward estimates matches — one of the
     one-sided differences always approximates the branch taken. *)
  let h = 1e-7 in
  let check_partial what analytic f_plus f_minus =
    let central = (f_plus -. f_minus) /. (2. *. h) in
    let forward = (f_plus -. i) /. h in
    let backward = (i -. f_minus) /. h in
    let ok est =
      Float.abs (analytic -. est)
      <= 2e-6 +. (1e-3 *. Float.max (Float.abs analytic) (Float.abs est))
    in
    if ok central || ok forward || ok backward then Ok ()
    else
      fail "d/d%s: analytic %.6e vs FD %.6e (fwd %.6e, bwd %.6e)" what
        analytic central forward backward
  in
  let** () =
    check_partial "vg" d.Mosfet.di_dvg
      (i_at ~vg:(vg +. h) ~vd ~vs)
      (i_at ~vg:(vg -. h) ~vd ~vs)
  in
  let** () =
    check_partial "vd" d.Mosfet.di_dvd
      (i_at ~vg ~vd:(vd +. h) ~vs)
      (i_at ~vg ~vd:(vd -. h) ~vs)
  in
  let** () =
    check_partial "vs" d.Mosfet.di_dvs
      (i_at ~vg ~vd ~vs:(vs +. h))
      (i_at ~vg ~vd ~vs:(vs -. h))
  in
  (* End to end: the FD-Jacobian engine path must land on the same INV
     delay and output slew as the analytic path.  Both linearizations
     drive the same Newton iteration to the same [newton_tol], so only
     sub-tolerance trajectory differences survive into the crossings. *)
  let inv = Catalog.find_exn "INV_X1" in
  let run fd_jacobian =
    let circuit = Circuit.map_devices Fun.id inv.Cell.built.Cell.circuit in
    let out_node = List.assoc "Y" inv.Cell.built.Cell.output_nodes in
    let in_node = List.assoc "A" inv.Cell.built.Cell.input_nodes in
    Circuit.add_cap circuit out_node c.jac_load;
    let options =
      { Engine.default_options with settle_time = 0.8e-9; fd_jacobian }
    in
    let t_start = 5e-11 in
    let t_stop =
      t_start +. Stimulus.full_ramp_time c.jac_slew +. 2e-9
    in
    let r =
      Engine.transient ~options circuit
        ~drives:
          [ (in_node, Stimulus.ramp ~t_start ~slew:c.jac_slew ~rising:true ()) ]
        ~t_stop
    in
    let w_in = Engine.waveform r in_node in
    let w_out = Engine.waveform r out_node in
    ( Waveform.delay ~input:w_in ~output:w_out ~out_direction:Waveform.Falling
        ~vdd:Device.vdd,
      Waveform.slew w_out ~direction:Waveform.Falling ~vdd:Device.vdd )
  in
  let d_ana, s_ana = run false in
  let d_fd, s_fd = run true in
  let close what a b =
    match (a, b) with
    | Some a, Some b ->
      if Float.abs (a -. b) <= 0.02 *. Float.max (Float.abs a) (Float.abs b)
      then Ok ()
      else fail "fd_jacobian %s diverges: analytic %.4e vs fd %.4e" what a b
    | None, _ | _, None -> fail "missing %s measurement" what
  in
  let** () = close "delay" d_ana d_fd in
  close "slew" s_ana s_fd

(* ------------------------------------------------------------------ *)
(* 10. surrogate-delay: surrogate-characterized tables vs. full spice. *)

type sur_case = {
  su_lp : float;
  su_ln : float;
}

let pp_sur_case c =
  Printf.sprintf "{lambda_p=%.3f lambda_n=%.3f}" c.su_lp c.su_ln

let sur_case_gen =
  let open Gen in
  let+ su_lp = float_range 0.05 0.95
  and+ su_ln = float_range 0.05 0.95 in
  { su_lp; su_ln }

(* One shared surrogate manager: the five anchor corners are characterized
   and harvested into the frozen training pool once per process, and every
   case then builds a fresh random corner against that pool. *)
let sur_tol = 0.02
let sur_cells = [ "NAND2_X1"; "DFF_X1"; "XOR2_X1" ]

(* A 5x5 grid: dense enough that the seed lattice leaves rows for the
   ratio fit and points to predict, sparse enough to keep a two-build
   differential affordable per case.  The cell mix is deliberate: DFF
   and XOR are multi-stage cells with hundreds-of-ps tables the fit
   serves at 2 %, while NAND2's tens-of-ps tables sit at the simulator's
   warm-start noise floor, where the honest response is to serve nothing
   — keeping the all-fallback path under test in every run. *)
let sur_axes =
  let geo n lo hi =
    Array.init n (fun i -> lo *. ((hi /. lo) ** (float i /. float (n - 1))))
  in
  {
    Axes.slews = geo 5 Axes.slew_min Axes.slew_max;
    loads = geo 5 Axes.load_min Axes.load_max;
  }

let sur_deglib =
  lazy
    (Degradation_library.create
       ~cells:(List.map Catalog.find_exn sur_cells)
       ~axes:sur_axes
       ~surrogate:(Characterize.surrogate ~tol:sur_tol ())
       ())

(* The differential contract of a surrogate build against a full
   transient characterization of the same corner:

   - provenance partitions every grid point into seeded / predicted /
     fallen-back, and the [fit.points.fallback] registry counter moved by
     exactly the fallback count — every point the models could not serve
     confidently really was re-simulated;
   - simulated points (seeds and fallbacks) agree with the full build to
     warm-start tolerance (1 % — different sweep orders chain different
     warm starts, nothing more);
   - predicted points sit within [3 * sur_tol] of full spice, every one
     of them, and within [sur_tol] on average.  The serve gate (interval
     plus replayed-anchor certificate) bounds model error statistically,
     not pointwise, so the honest per-point guarantee is a small multiple
     of the tolerance with the mean well inside it.

*)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let surrogate_delay c =
  let corner = Scenario.corner ~lambda_p:c.su_lp ~lambda_n:c.su_ln in
  let deglib = Lazy.force sur_deglib in
  let m_fallback = Metrics.counter "fit.points.fallback" in
  let fb_before = Metrics.value m_fallback in
  let n_before = List.length (Degradation_library.build_reports deglib) in
  let sur_lib = Degradation_library.corner deglib corner in
  let fb_delta = Metrics.value m_fallback - fb_before in
  let reports = Degradation_library.build_reports deglib in
  (* Cache hits produce no new report (and move no counters), so locate
     the build for this exact corner by its %.17g cache-key lambdas and
     only check the counter delta when the build really ran just now. *)
  let fresh = List.length reports > n_before in
  let tag =
    Printf.sprintf "_%.17g_%.17g" corner.Scenario.lambda_p
      corner.Scenario.lambda_n
  in
  let with_prov (name, r) =
    contains ~sub:tag name
    && List.exists
         (fun (s : Characterize.arc_stats) -> s.Characterize.prov <> None)
         r.Characterize.stats
  in
  match List.find_opt with_prov reports with
  | None -> fail "no surrogate build report for corner %s" tag
  | Some (_, rep) -> (
    let full =
      Characterize.library
        ~cells:(List.map Catalog.find_exn sur_cells)
        ~axes:sur_axes ~name:"surrogate-oracle-full"
        ~scenario:(Scenario.scenario corner) ()
    in
    match Characterize.report_surrogate rep with
    | None -> fail "expected surrogate accounting in the build report"
    | Some st ->
      let totals = Characterize.report_totals rep in
      let** () =
        if
          st.Characterize.fit_simulated + st.Characterize.fit_predicted
          + st.Characterize.fit_fallback
          = totals.Characterize.points
        then Ok ()
        else
          fail "provenance does not partition the grid: %d + %d + %d <> %d"
            st.Characterize.fit_simulated st.Characterize.fit_predicted
            st.Characterize.fit_fallback totals.Characterize.points
      in
      let** () =
        if (not fresh) || fb_delta = st.Characterize.fit_fallback then Ok ()
        else
          fail
            "fit.points.fallback moved by %d but the report recorded %d \
             fallbacks"
            fb_delta st.Characterize.fit_fallback
      in
      let** () =
        if st.Characterize.fit_speedup > 0. then Ok ()
        else fail "non-positive surrogate speedup estimate"
      in
      let err_sum = ref 0. and err_n = ref 0 in
      let hard = 3. *. sur_tol in
      let check_stats acc (s : Characterize.arc_stats) =
        let** () = acc in
        match s.Characterize.prov with
        | None -> Ok ()
        | Some grid ->
          let arc_of lib =
            match Library.find lib s.Characterize.stat_cell with
            | None -> None
            | Some e ->
              List.find_opt
                (fun (a : Library.arc) ->
                  a.Library.from_pin = s.Characterize.stat_from
                  && a.Library.to_pin = s.Characterize.stat_to)
                e.Library.arcs
          in
          (match (arc_of sur_lib, arc_of full) with
          | Some sa, Some fa ->
            let tables (a : Library.arc) =
              match s.Characterize.stat_dir with
              | Library.Rise -> (a.Library.delay_rise, a.Library.slew_rise)
              | Library.Fall -> (a.Library.delay_fall, a.Library.slew_fall)
            in
            let sd, ss = tables sa and fd, fs = tables fa in
            let check_point what p i j (st : Nldm.table) (ft : Nldm.table) acc
                =
              let** () = acc in
              let sv = st.Nldm.values.(i).(j)
              and fv = ft.Nldm.values.(i).(j) in
              (* Slow-ramp 50 %-crossing measurements sit within a few ps
                 of zero (and can dip below), where a pure relative bound
                 is meaningless — so every comparison carries an absolute
                 term of 1 % of the table's value range alongside the
                 relative one: what matters to an NLDM consumer is error
                 against the arc's delay scale, not against a ~0 entry. *)
              begin
                let scale =
                  Array.fold_left
                    (fun acc row ->
                      Array.fold_left
                        (fun acc v -> Float.max acc (Float.abs v))
                        acc row)
                    0. ft.Nldm.values
                in
                let excess = Float.abs (sv -. fv) in
                let within mult =
                  excess <= (mult *. Float.abs fv) +. (0.01 *. scale)
                in
                let rel = excess /. Float.max (Float.abs fv) 1e-11 in
                match p with
                | Characterize.Predicted ->
                  err_sum := !err_sum +. rel;
                  incr err_n;
                  if within hard then Ok ()
                  else
                    fail
                      "%s %s->%s predicted %s off by %.2f%% at (%d,%d) \
                       (cap %.0f%%)"
                      s.Characterize.stat_cell s.Characterize.stat_from
                      s.Characterize.stat_to what (100. *. rel) i j
                      (100. *. hard)
                | Characterize.Seeded | Characterize.Fell_back ->
                  (* Simulated points run the same measurement with a
                     different warm-start predecessor (the seed lattice
                     visits the grid in a different order than the full
                     sweep).  That is usually bit-identical but can move
                     extreme slow-ramp points by a couple of percent, so
                     the simulated-point contract is 3 % — half the
                     prediction cap. *)
                  if within 0.03 then Ok ()
                  else
                    fail
                      "%s %s->%s simulated %s off by %.2f%% at (%d,%d) \
                       (warm-start tolerance 3%%)"
                      s.Characterize.stat_cell s.Characterize.stat_from
                      s.Characterize.stat_to what (100. *. rel) i j
              end
            in
            let acc = ref (Ok ()) in
            Array.iteri
              (fun i row ->
                Array.iteri
                  (fun j p ->
                    acc := check_point "delay" p i j sd fd !acc;
                    acc := check_point "slew" p i j ss fs !acc)
                  row)
              grid;
            !acc
          | _ ->
            fail "arc %s %s->%s missing from a library"
              s.Characterize.stat_cell s.Characterize.stat_from
              s.Characterize.stat_to)
      in
      let** () =
        List.fold_left check_stats (Ok ()) rep.Characterize.stats
      in
      if !err_n = 0 then Ok ()
      else begin
        let mean = !err_sum /. float_of_int !err_n in
        if mean <= sur_tol then Ok ()
        else
          fail "mean predicted error %.2f%% exceeds tol %.0f%%"
            (100. *. mean) (100. *. sur_tol)
      end)

(* ------------------------------------------------------------------ *)

let mk name doc ~print ~gen prop =
  {
    name;
    doc;
    run = (fun ~seed ~cases ~jobs:_ -> Runner.run ~cases ~seed ~name ~print ~gen prop);
  }

let all () =
  [
    mk "spice-vs-alpha"
      "transient gate delays vs. the alpha-power first-order prediction \
       (monotone in load and duty; Fig. 1 NAND/NOR orderings)"
      ~print:pp_spice_case ~gen:spice_case_gen spice_vs_alpha;
    mk "sim-vs-sta"
      "event-driven simulation at the STA period: zero timing errors, \
       outputs match the functional reference"
      ~print:Netgen.pp_spec ~gen:Netgen.spec sim_vs_sta;
    mk "nldm-interp"
      "bilinear NLDM interpolation: exact at grid points, corner-bounded \
       inside cells, tabulate(lookup) = id"
      ~print:pp_nldm_case ~gen:nldm_case_gen nldm_interp;
    mk "liberty-fixpoint"
      "liberty .alib write -> parse -> write fixpoint on random libraries"
      ~print:pp_lib_case ~gen:lib_case_gen liberty_fixpoint;
    {
      name = "parallel-identity";
      doc =
        "characterization at jobs=N is bit-identical to the sequential build";
      run =
        (fun ~seed ~cases ~jobs ->
          Runner.run ~cases ~seed ~name:"parallel-identity" ~print:pp_par_case
            ~gen:par_case_gen
            (parallel_identity ~max_jobs:jobs));
    };
    mk "guardband-monotone"
      "static guardbands are nonnegative and monotone in duty cycle"
      ~print:pp_gb_case ~gen:gb_case_gen guardband_monotone;
    mk "sdf-roundtrip"
      "SDF write -> parse -> write fixpoint with finite nonnegative delay \
       triples on random netlists"
      ~print:Netgen.pp_spec ~gen:Netgen.spec sdf_roundtrip;
    mk "synth-equiv"
      "the synthesis flow preserves cycle-accurate behaviour on random \
       netlists"
      ~print:Netgen.pp_spec ~gen:Netgen.spec synth_equiv;
    mk "jacobian-fd"
      "analytic device derivatives match finite differences of the current \
       equation at random aged operating points; the engine's fd_jacobian \
       path reproduces the analytic-Jacobian delays"
      ~print:pp_jac_case ~gen:jac_case_gen jacobian_fd;
    mk "surrogate-delay"
      "surrogate-characterized corner tables vs. full spice: simulated \
       points match to warm-start tolerance, predicted points stay within \
       a small multiple of the tolerance (and within it on average), and \
       every low-confidence point fell back to simulation"
      ~print:pp_sur_case ~gen:sur_case_gen surrogate_delay;
  ]

let find name = List.find_opt (fun o -> o.name = name) (all ())
