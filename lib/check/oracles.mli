(** The differential oracles: independent implementations pitted against
    each other on random inputs.

    Each oracle is a named property over a generated input domain, run
    through {!Runner} with replayable per-case seeds.  The six core
    oracles mirror the paper's cross-layer consistency claim (spice vs.
    alpha-power, event simulation vs. STA, NLDM interpolation, Liberty
    serialization, parallel determinism, guardband monotonicity), plus two
    bonus oracles over the SDF writer/parser and the synthesis flow. *)

type t = {
  name : string;
  doc : string;
  run : seed:int64 -> cases:int -> jobs:int -> Runner.outcome;
}

val all : unit -> t list
(** Stable order; the six ISSUE oracles first. *)

val find : string -> t option
