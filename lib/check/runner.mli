(** Seeded property runner: replayable cases, greedy shrinking,
    counterexample reporting.

    Case [i] of a run with seed [S] draws from a fresh generator seeded
    with [Aging_util.Rng.derive S i] — so every case is independent of the
    others (an oracle that consumes a different amount of randomness on
    one case cannot shift later cases) and every failure reports a
    {e case seed} that replays it alone: [derive s 0 = s], so feeding the
    reported seed back with [--cases 1] regenerates the exact failing
    input. *)

type 'a property = 'a -> (unit, string) result
(** [Ok ()] = pass; [Error msg] = fail.  Exceptions raised by the
    property are caught and treated as failures. *)

type failure = {
  case_index : int;  (** which case of the run failed *)
  case_seed : int64;  (** replays the failure: [--seed <this> --cases 1] *)
  shrink_steps : int;  (** shrinks applied to reach the minimum *)
  counterexample : string;  (** pretty-printed minimal failing input *)
  message : string;  (** the failing property's explanation *)
}

type outcome = {
  name : string;
  cases_run : int;
  failures : failure list;
  wall_s : float;
  case_s : float list;  (** per-case wall times, in case order *)
}

val run :
  ?cases:int ->
  ?max_shrinks:int ->
  seed:int64 ->
  name:string ->
  print:('a -> string) ->
  gen:'a Gen.t ->
  'a property ->
  outcome
(** Runs [cases] (default 100) independent cases; stops at the first
    failure (after shrinking it, bounded by [max_shrinks], default 500).
    Deterministic for a fixed [seed]. *)

val passed : outcome -> bool

val pp_outcome : outcome -> string
(** One summary line; plus a detailed block per failure (counterexample,
    message, replay seed). *)

val time_summary : outcome -> string
(** ["mean 1.2ms p95 3.4ms"] over the per-case times (["-"] when empty). *)
