module Rng = Aging_util.Rng
module Stats = Aging_util.Stats

type 'a property = 'a -> (unit, string) result

type failure = {
  case_index : int;
  case_seed : int64;
  shrink_steps : int;
  counterexample : string;
  message : string;
}

type outcome = {
  name : string;
  cases_run : int;
  failures : failure list;
  wall_s : float;
  case_s : float list;
}

let eval prop x =
  match prop x with
  | Ok () -> None
  | Error msg -> Some msg
  | exception e ->
    Some
      (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))

(* Greedy depth-first shrink: repeatedly move to the first child that
   still fails, until no child fails or the budget runs out. *)
let shrink prop tree first_msg max_shrinks =
  let rec go (Gen.Tree (x, children)) msg steps =
    if steps >= max_shrinks then (x, msg, steps)
    else
      let rec first_failing s =
        match s () with
        | Seq.Nil -> None
        | Seq.Cons ((Gen.Tree (y, _) as t), rest) -> (
          match eval prop y with
          | Some m -> Some (t, m)
          | None -> first_failing rest)
      in
      match first_failing children with
      | None -> (x, msg, steps)
      | Some (t, m) -> go t m (steps + 1)
  in
  go tree first_msg 0

let run ?(cases = 100) ?(max_shrinks = 500) ~seed ~name ~print ~gen prop =
  let t0 = Unix.gettimeofday () in
  let case_s = ref [] in
  let failures = ref [] in
  let i = ref 0 in
  while !i < cases && !failures = [] do
    let case_seed = Rng.derive seed !i in
    let c0 = Unix.gettimeofday () in
    let (Gen.Tree (x, _) as tree) = gen (Rng.create case_seed) in
    (match eval prop x with
    | None -> ()
    | Some msg ->
      let min_x, min_msg, steps = shrink prop tree msg max_shrinks in
      failures :=
        [
          {
            case_index = !i;
            case_seed;
            shrink_steps = steps;
            counterexample = print min_x;
            message = min_msg;
          };
        ]);
    case_s := (Unix.gettimeofday () -. c0) :: !case_s;
    incr i
  done;
  {
    name;
    cases_run = !i;
    failures = !failures;
    wall_s = Unix.gettimeofday () -. t0;
    case_s = List.rev !case_s;
  }

let passed o = o.failures = []

let time_summary o =
  match o.case_s with
  | [] -> "-"
  | ts ->
    Printf.sprintf "mean %.2fms p95 %.2fms" (Stats.mean ts *. 1e3)
      (Stats.percentile 95. ts *. 1e3)

let pp_failure name f =
  Printf.sprintf
    "  FAILED case %d (after %d shrink steps)\n\
    \    counterexample: %s\n\
    \    reason: %s\n\
    \    replay: relaware check --only %s --seed %Ld --cases 1\n"
    f.case_index f.shrink_steps f.counterexample f.message name f.case_seed

let pp_outcome o =
  let status = if passed o then "ok" else "FAIL" in
  let head =
    Printf.sprintf "%-22s %4s  %4d cases  %6.2fs  (%s)" o.name status
      o.cases_run o.wall_s (time_summary o)
  in
  String.concat "\n" (head :: List.map (pp_failure o.name) o.failures)
