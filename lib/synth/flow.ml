module Netlist = Aging_netlist.Netlist
module Timing = Aging_sta.Timing
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log

let m_rounds = Metrics.counter "synth.rounds"
let g_subject_nodes = Metrics.gauge "synth.subject_nodes"
let g_cells = Metrics.gauge "synth.cells"

type options = {
  estimates : Mapper.estimate_config;
  sta_config : Timing.config;
  sizing_passes : int;
  max_fanout : int;
  map_rounds : int;
  repair_slew : float option;
}

let default_options =
  {
    estimates = Mapper.default_estimates;
    sta_config = Timing.default_config;
    sizing_passes = 12;
    max_fanout = 16;
    map_rounds = 2;
    repair_slew = Some 2.5e-10;
  }

let compile ?(options = default_options) ~library (netlist : Netlist.t) =
  let design = netlist.Netlist.design_name in
  let attrs = [ ("design", design) ] in
  Span.with_ "synth.compile" ~attrs @@ fun () ->
  let subject, boundaries =
    Span.with_ "synth.decompose" ~attrs (fun () -> Decompose.of_netlist netlist)
  in
  Metrics.set g_subject_nodes (float_of_int (Subject.size subject));
  Log.debugf "synth" "%s: subject graph %d nodes" design (Subject.size subject);
  let clock_name = "clk" in
  let one_round hints =
    Metrics.incr m_rounds;
    let mapped =
      Span.with_ "synth.map" ~attrs (fun () ->
          Mapper.map ~estimates:options.estimates ?hints ~library
            ~design_name:design ~clock_name subject boundaries)
    in
    let buffered =
      Span.with_ "synth.buffer" ~attrs (fun () ->
          Buffering.buffer_fanout ~max_fanout:options.max_fanout
            mapped.Mapper.netlist)
    in
    let swept =
      Span.with_ "synth.variant_sweep" ~attrs (fun () ->
          Sizing.variant_sweep ~config:options.sta_config ~library buffered)
    in
    let sized =
      Span.with_ "synth.resize" ~attrs (fun () ->
          Sizing.resize ~passes:options.sizing_passes
            ~config:options.sta_config ~library swept)
    in
    let repaired =
      match options.repair_slew with
      | None -> sized
      | Some slew_limit ->
        Span.with_ "synth.slew_repair" ~attrs (fun () ->
            Slew_repair.repair ~slew_limit ~config:options.sta_config ~library
              sized)
    in
    (repaired, mapped.Mapper.net_of_node)
  in
  (* Round 1 maps with static operating-condition estimates; later rounds
     re-map at the slews/loads measured on the previous implementation, so
     covering decisions are taken at real OPCs — where a degradation-aware
     library separates aging-tolerant from aging-sensitive cells. *)
  let extract_hints sized net_of_node =
    let analysis = Timing.analyze ~config:options.sta_config ~library sized in
    let n = Array.length net_of_node in
    let node_slew = Array.make n 0. and node_load = Array.make n 0. in
    Array.iteri
      (fun id net ->
        match net with
        | None -> ()
        | Some net ->
          node_slew.(id) <-
            Float.max
              (Timing.slew_at analysis net Aging_liberty.Library.Rise)
              (Timing.slew_at analysis net Aging_liberty.Library.Fall);
          node_load.(id) <- Timing.load_on analysis net)
      net_of_node;
    { Mapper.node_slew; node_load }
  in
  let rec rounds remaining best best_period hints =
    if remaining = 0 then best
    else begin
      let sized, net_of_node = one_round hints in
      let period =
        Timing.min_period (Timing.analyze ~config:options.sta_config ~library sized)
      in
      let best, best_period =
        if period < best_period then (sized, period) else (best, best_period)
      in
      if remaining = 1 then best
      else rounds (remaining - 1) best best_period
             (Some (extract_hints sized net_of_node))
    end
  in
  let best = rounds (max 1 options.map_rounds) netlist infinity None in
  Metrics.set g_cells (float_of_int (Array.length best.Netlist.instances));
  Log.debugf "synth" "%s: mapped to %d instances" design
    (Array.length best.Netlist.instances);
  best

let min_period ?config ~library netlist =
  Timing.min_period (Timing.analyze ?config ~library netlist)

