(** Small dense linear algebra for the regression kernel.

    Same factor/solve split as the spice engine's Newton solver (see
    [lib/spice/engine.ml]): the matrix lives in a flat row-major float
    array, [lu_factor] overwrites it in place with the multipliers below
    the diagonal and the row swaps in [piv], and one factorization then
    serves any number of right-hand sides — exactly what the ridge normal
    equations need, where the factored matrix is reused for the
    coefficient solve and for every leverage evaluation.  The code is
    deliberately a sibling of the engine's kernel rather than a shared
    module: the engine copy is compiled under [-unsafe -inline 200] on the
    transient hot path and must not grow library-boundary indirection. *)

val lu_factor : float array -> int array -> int -> bool
(** [lu_factor a piv n] factors the [n x n] matrix [a] in place with
    partial pivoting.  Returns [false] (leaving [a] partially clobbered)
    when a pivot collapses below the singularity floor. *)

val lu_solve : float array -> int array -> int -> float array -> unit
(** [lu_solve a piv n b] solves one right-hand side in place using a
    factorization produced by {!lu_factor}. *)

val solve : float array -> int -> float array -> float array option
(** [solve a n b] is a convenience one-shot solve of [a x = b] that copies
    both inputs; [None] when the matrix is singular. *)
