(* Dense LU with an explicit factor/solve split, mirroring the spice
   engine's kernel: flat row-major storage, partial pivoting, multipliers
   stored below the diagonal, swaps in [piv].  A pivot below [pivot_floor]
   means the system is singular; that is surfaced to the caller (the ridge
   fit turns it into a typed error) instead of clamped. *)

let pivot_floor = 1e-30

let lu_factor a piv n =
  let ok = ref true in
  let k = ref 0 in
  while !ok && !k < n do
    let k0 = !k in
    let pivot = ref k0 in
    for i = k0 + 1 to n - 1 do
      if Float.abs a.((i * n) + k0) > Float.abs a.((!pivot * n) + k0) then
        pivot := i
    done;
    piv.(k0) <- !pivot;
    if !pivot <> k0 then begin
      let rk = k0 * n and rp = !pivot * n in
      for j = 0 to n - 1 do
        let tmp = a.(rk + j) in
        a.(rk + j) <- a.(rp + j);
        a.(rp + j) <- tmp
      done
    end;
    let akk = a.((k0 * n) + k0) in
    if Float.abs akk < pivot_floor then ok := false
    else begin
      for i = k0 + 1 to n - 1 do
        let f = a.((i * n) + k0) /. akk in
        a.((i * n) + k0) <- f;
        if f <> 0. then
          for j = k0 + 1 to n - 1 do
            a.((i * n) + j) <- a.((i * n) + j) -. (f *. a.((k0 * n) + j))
          done
      done;
      incr k
    end
  done;
  !ok

let lu_solve a piv n b =
  for k = 0 to n - 1 do
    let p = piv.(k) in
    if p <> k then begin
      let tmp = b.(k) in
      b.(k) <- b.(p);
      b.(p) <- tmp
    end
  done;
  for i = 1 to n - 1 do
    let row = i * n in
    for j = 0 to i - 1 do
      b.(i) <- b.(i) -. (a.(row + j) *. b.(j))
    done
  done;
  for i = n - 1 downto 0 do
    let row = i * n in
    for j = i + 1 to n - 1 do
      b.(i) <- b.(i) -. (a.(row + j) *. b.(j))
    done;
    b.(i) <- b.(i) /. a.(row + i)
  done

let solve a n b =
  let a = Array.copy a in
  let b = Array.copy b in
  let piv = Array.make n 0 in
  if lu_factor a piv n then begin
    lu_solve a piv n b;
    Some b
  end
  else None
