type row = { tr_features : float array; tr_target : float }

type t = {
  mutable frozen : bool;
  mutable digest_memo : string option;  (* set at freeze; never invalidated
                                           because a frozen pool is immutable *)
  tbl : (string, row list ref) Hashtbl.t;  (* rows newest-first *)
  mu : Mutex.t;
}

let create () =
  { frozen = false; digest_memo = None; tbl = Hashtbl.create 64;
    mu = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let add t ~key ~features ~target =
  with_lock t @@ fun () ->
  if t.frozen then invalid_arg "Trainset.add: pool is frozen";
  let r = { tr_features = Array.copy features; tr_target = target } in
  match Hashtbl.find_opt t.tbl key with
  | Some cell -> cell := r :: !cell
  | None -> Hashtbl.add t.tbl key (ref [ r ])

let digest_unlocked t =
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b '\n';
      List.iter
        (fun r ->
          Array.iter
            (fun v -> Buffer.add_string b (Printf.sprintf "%h," v))
            r.tr_features;
          Buffer.add_string b (Printf.sprintf "=%h;" r.tr_target))
        (List.rev !(Hashtbl.find t.tbl k));
      Buffer.add_char b '\n')
    keys;
  Digest.to_hex (Digest.string (Buffer.contents b))

let freeze t =
  with_lock t @@ fun () ->
  if not t.frozen then begin
    t.frozen <- true;
    (* The canonical string walks every pooled row; paying it once here
       keeps per-corner cache-key lookups O(1) instead of O(pool). *)
    t.digest_memo <- Some (digest_unlocked t)
  end

let is_frozen t = with_lock t @@ fun () -> t.frozen

let rows t key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some cell -> List.rev !cell
  | None -> []

let size t =
  with_lock t @@ fun () ->
  Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) t.tbl 0

let digest t =
  with_lock t @@ fun () ->
  match t.digest_memo with
  | Some d -> d
  | None -> digest_unlocked t
