(** Shared training pool for cross-corner surrogate reuse.

    A [Degradation_library] sweep fits one surrogate per
    (cell, arc, dir, output) — the [key] — but the underlying response
    varies smoothly across nearby (lambda_p, lambda_n) corners, so rows
    harvested from a fixed set of anchor corners can prime the fit at
    every other corner.  The pool is a mutex-guarded key-to-rows map with
    a one-way {!freeze}: the anchor phase populates it, [freeze] makes it
    read-only, and the fan-out phase then reads it concurrently.  The
    freeze is what keeps parallel corner builds deterministic — a
    frozen pool's contents are a function of the anchor corners alone,
    never of worker interleaving. *)

type row = { tr_features : float array; tr_target : float }

type t

val create : unit -> t

val add : t -> key:string -> features:float array -> target:float -> unit
(** Appends a row under [key].  Rows under one key keep insertion order;
    concurrent adds under {e different} keys are safe (each surrogate
    work unit owns its keys exclusively).
    @raise Invalid_argument after {!freeze}. *)

val freeze : t -> unit
(** Makes the pool read-only and caches the {!digest} (the pool cannot
    change afterwards, so the cached value stays valid).  Idempotent. *)

val is_frozen : t -> bool

val rows : t -> string -> row list
(** Rows under [key] in insertion order; [[]] when absent. *)

val size : t -> int
(** Total rows across all keys. *)

val digest : t -> string
(** Digest of the full canonical contents (keys sorted, rows in order,
    floats in lossless hex).  Cache keys of libraries built against a
    pool must include this, so a build primed by anchor rows can never
    alias one that was not.  O(pool rows) before {!freeze}; O(1)
    afterwards (served from the value cached at freeze time). *)
