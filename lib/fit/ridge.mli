(** Normalized polynomial/RBF ridge regression with leave-one-out and
    ensemble-spread confidence estimates.

    This is the learned-surrogate kernel behind [Characterize]'s
    [--surrogate] mode: a dependency-free pure-OCaml fit of a small dense
    linear model over normalized features, solved through the {!Linalg}
    LU.  The design goals, in order: {b determinism} (a fit is a pure
    sequential function of the training rows — bit-identical across
    worker counts and repeated runs), {b typed failure} (degenerate
    designs surface as {!error}, never as NaN coefficients), and
    {b honest confidence} (prediction intervals from leave-one-out
    residuals scaled by leverage, which widen monotonically as a query
    moves away from the training hull — the property the error-bounded
    fallback relies on).

    Why ridge rather than plain least squares: characterization feature
    sets are nearly collinear by construction (log-spaced grid axes,
    aging features that are all monotone functions of the same stress),
    so the normal matrix is routinely ill-conditioned and a plain LS
    solve either fails the pivot floor or amplifies rounding noise into
    the extrapolation region.  A small ridge penalty [lambda] bounds the
    condition number without measurably biasing interpolation, and makes
    under-determined pooled fits (more basis functions than rows from a
    single corner) well-posed. *)

type basis =
  | Poly of int
      (** All monomials of the normalized features with total degree
          [<= d], graded-lexicographic order (intercept first). *)
  | Tensor of int array
      (** Full tensor product with per-dimension maximum degrees; a
          degree of [0] pins a dimension to the intercept.  Length must
          equal the feature dimension. *)
  | Rbf of { degree : int; centers : int; width : float }
      (** [Poly degree] plus up to [centers] Gaussian bumps of the given
          [width] (in normalized-feature units), centred on a
          deterministic spread of training rows. *)
  | Terms of int array array
      (** Explicit exponent vectors, one per basis function — the escape
          hatch for structured sparsity a dense tensor cannot express
          (e.g. a full grid over two dimensions but only low-order
          interactions with the rest, which shrinks the parameter count
          and with it the [O(rows * params^2)] fit cost).  Each vector
          must have one nonnegative entry per feature dimension;
          duplicates are accepted but waste a column. *)

type error =
  | Too_few_rows of { rows : int; params : int }
      (** No rows at all, or an exactly-determined/under-determined
          design with [lambda <= 0]. *)
  | Degenerate_column of int
      (** Feature column with zero variance (rank-deficient by
          construction); only reported when [drop_constant] is false. *)
  | Singular
      (** The (ridge-regularized) normal matrix lost a pivot — e.g. all
          rows duplicated with [lambda = 0]. *)
  | Non_finite of { row : int }
      (** A NaN/infinite feature or target in the given training row. *)

val error_to_string : error -> string

type model

val fit :
  ?lambda:float ->
  ?basis:basis ->
  ?drop_constant:bool ->
  ?weights:float array ->
  rows:float array array ->
  targets:float array ->
  unit ->
  (model, error) result
(** Fits [targets.(i) ~ f(rows.(i))].  Features are normalized to zero
    mean and unit variance over the training rows before basis
    expansion; [lambda] (default [1e-6]) penalizes every coefficient
    except the intercept.  [drop_constant] (default [false]) silently
    neutralizes zero-variance columns (their normalized value is pinned
    to 0, so they contribute nothing) instead of returning
    {!Degenerate_column} — the surrogate uses this for corner features
    that are constant within a single-corner fit.

    [weights] (one strictly positive finite factor per row; a
    non-positive or non-finite weight reports {!Non_finite}) turns the
    solve into weighted least squares: residual [i] is scaled by
    [weights.(i)] before minimization.  With [weights.(i) = 1 /.
    targets.(i)] on positive targets this minimizes {e relative} error,
    and [sigma], the LOO residuals and the {!confidence} half-widths all
    come out in relative units — the form the surrogate's error-bounded
    acceptance gate wants.
    @raise Invalid_argument if [targets], [weights] and [rows] disagree
    in length, rows disagree in dimension, a {!Tensor} or {!Terms} basis
    has the wrong arity, or a {!Terms} basis is empty or holds a
    negative exponent. *)

val predict : model -> float array -> float

val leverage : ?weight:float -> model -> float array -> float
(** [(w phi(x))' (X'X + lambda R)^-1 (w phi(x))]: the statistical
    distance of a query from the training design.  Along any ray leaving
    the data this grows without bound, which is what makes the
    confidence below widen away from the hull.

    For a {e weighted} fit the design rows are [w_i phi_i], so the query
    basis must be scaled into the same units: pass [weight] (default
    [1.], correct for unweighted fits) as the weight the query row would
    have carried.  With [weights.(i) = 1 /. targets.(i)] fits use
    [~weight:(1. /. predict m x)].  Leaving [weight] at [1.] against
    such a fit understates leverage by the squared target scale — for
    tiny absolute targets it collapses to 0 and the interval never
    widens off the hull.
    @raise Invalid_argument if [weight] is non-positive or non-finite. *)

val confidence : ?conf:float -> ?weight:float -> model -> float array -> float
(** Half-width of the prediction interval at a query point:
    [conf * sigma_loo * sqrt (1 + leverage)], with [conf] defaulting to
    2 (roughly a 95% normal interval) and [weight] passed through to
    {!leverage}. *)

val predict_ci :
  ?conf:float -> ?weight:float -> model -> float array -> float * float
(** Prediction and confidence half-width in one call.  [weight] applies
    to the confidence term only; note it cannot depend on the prediction
    here — callers of relative-weighted fits should call {!predict} then
    {!confidence} [~weight:(1. /. p)]. *)

val sigma : model -> float
(** Root-mean-square leave-one-out residual: an unbiased-ish estimate of
    out-of-sample error that costs nothing extra — the LOO residual is
    [r_i / (1 - h_ii)] with [h_ii] the hat-matrix diagonal already
    computed for {!leverage}. *)

val loo_residuals : model -> float array
(** Per-training-row leave-one-out residuals (prediction minus target of
    a model fitted without that row), in row order. *)

val params : model -> int
(** Number of basis functions. *)

val rows : model -> int
(** Number of training rows. *)

val ensemble :
  ?folds:int ->
  ?lambda:float ->
  ?basis:basis ->
  ?drop_constant:bool ->
  ?weights:float array ->
  rows:float array array ->
  targets:float array ->
  unit ->
  (model list, error) result
(** [folds] (default 4) models, each fitted with every [k]-th row held
    out — a deterministic jackknife whose prediction spread is a second,
    model-misfit-sensitive confidence signal. *)

val spread : model list -> float array -> float
(** Population standard deviation of the ensemble's predictions at a
    query point; [0.] for an empty or singleton list. *)
