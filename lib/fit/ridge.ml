type basis =
  | Poly of int
  | Tensor of int array
  | Rbf of { degree : int; centers : int; width : float }
  | Terms of int array array

type error =
  | Too_few_rows of { rows : int; params : int }
  | Degenerate_column of int
  | Singular
  | Non_finite of { row : int }

let error_to_string = function
  | Too_few_rows { rows; params } ->
    Printf.sprintf "too few training rows (%d) for %d parameters" rows params
  | Degenerate_column j ->
    Printf.sprintf "feature column %d has zero variance" j
  | Singular -> "normal matrix is singular"
  | Non_finite { row } ->
    Printf.sprintf "non-finite feature or target in row %d" row

exception Err of error

type model = {
  dims : int;
  mean : float array;
  scale : float array;  (* 0. marks a dropped constant column *)
  exps : int array array;
  centers : float array array;  (* normalized-space RBF centers *)
  width : float;
  beta : float array;
  a_lu : float array;  (* factored (Phi'Phi + lambda R), m x m *)
  a_piv : int array;
  m : int;
  n : int;
  sigma : float;
  loo : float array;
}

(* ------------------------------------------------------------------ *)
(* Basis enumeration                                                   *)
(* ------------------------------------------------------------------ *)

let sum_list = List.fold_left ( + ) 0

(* All exponent lists over [dims] dimensions with total degree <= limit,
   graded-lexicographic so the intercept (all zeros) comes first. *)
let poly_exponents dims limit =
  let rec go dims limit =
    if dims = 0 then [ [] ]
    else
      List.concat_map
        (fun d ->
          List.map (fun rest -> d :: rest) (go (dims - 1) (limit - d)))
        (List.init (limit + 1) Fun.id)
  in
  List.stable_sort
    (fun a b -> compare (sum_list a, a) (sum_list b, b))
    (go dims limit)

(* Full tensor product with per-dimension caps, intercept first. *)
let tensor_exponents degrees =
  let rec go = function
    | [] -> [ [] ]
    | d :: rest ->
      let tails = go rest in
      List.concat_map
        (fun e -> List.map (fun t -> e :: t) tails)
        (List.init (d + 1) Fun.id)
  in
  List.stable_sort
    (fun a b -> compare (sum_list a, a) (sum_list b, b))
    (go (Array.to_list degrees))

(* ------------------------------------------------------------------ *)
(* Feature normalization and basis evaluation                          *)
(* ------------------------------------------------------------------ *)

let normalize mean scale x z =
  let dims = Array.length mean in
  for j = 0 to dims - 1 do
    z.(j) <- (if scale.(j) = 0. then 0. else (x.(j) -. mean.(j)) /. scale.(j))
  done

(* phi(z) into [out]: monomials first, then the Gaussian bumps. *)
let eval_basis ~exps ~centers ~width z out =
  let np = Array.length exps in
  for k = 0 to np - 1 do
    let e = exps.(k) in
    let v = ref 1. in
    for j = 0 to Array.length e - 1 do
      for _ = 1 to e.(j) do
        v := !v *. z.(j)
      done
    done;
    out.(k) <- !v
  done;
  let nc = Array.length centers in
  if nc > 0 then begin
    let inv = -1. /. (2. *. width *. width) in
    for k = 0 to nc - 1 do
      let c = centers.(k) in
      let d2 = ref 0. in
      for j = 0 to Array.length c - 1 do
        let d = z.(j) -. c.(j) in
        d2 := !d2 +. (d *. d)
      done;
      out.(np + k) <- exp (!d2 *. inv)
    done
  end

(* ------------------------------------------------------------------ *)
(* Fitting                                                             *)
(* ------------------------------------------------------------------ *)

let dot m a off_a b =
  let s = ref 0. in
  for j = 0 to m - 1 do
    s := !s +. (a.(off_a + j) *. b.(j))
  done;
  !s

let fit_exn ~lambda ~basis ~drop_constant ~weights ~rows:xs ~targets:ys =
  let n = Array.length xs in
  if n = 0 then raise (Err (Too_few_rows { rows = 0; params = 1 }));
  if Array.length ys <> n then
    invalid_arg "Ridge.fit: rows and targets disagree in length";
  (match weights with
  | None -> ()
  | Some w ->
    if Array.length w <> n then
      invalid_arg "Ridge.fit: weights and rows disagree in length";
    Array.iteri
      (fun i v ->
        if not (Float.is_finite v && v > 0.) then
          raise (Err (Non_finite { row = i })))
      w);
  let weight i = match weights with None -> 1. | Some w -> w.(i) in
  let dims = Array.length xs.(0) in
  Array.iteri
    (fun i r ->
      if Array.length r <> dims then
        invalid_arg "Ridge.fit: rows disagree in dimension";
      Array.iter
        (fun v -> if not (Float.is_finite v) then raise (Err (Non_finite { row = i })))
        r)
    xs;
  Array.iteri
    (fun i y -> if not (Float.is_finite y) then raise (Err (Non_finite { row = i })))
    ys;
  (* Column statistics. *)
  let mean = Array.make dims 0. and scale = Array.make dims 0. in
  let fn = float_of_int n in
  for j = 0 to dims - 1 do
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. xs.(i).(j)
    done;
    mean.(j) <- !s /. fn;
    let v = ref 0. in
    for i = 0 to n - 1 do
      let d = xs.(i).(j) -. mean.(j) in
      v := !v +. (d *. d)
    done;
    let sd = sqrt (!v /. fn) in
    if sd < 1e-12 *. (Float.abs mean.(j) +. 1.) then
      if drop_constant then scale.(j) <- 0.
      else raise (Err (Degenerate_column j))
    else scale.(j) <- sd
  done;
  (* Normalized design. *)
  let zs = Array.init n (fun _ -> Array.make dims 0.) in
  for i = 0 to n - 1 do
    normalize mean scale xs.(i) zs.(i)
  done;
  let exps, centers, width =
    match basis with
    | Poly d ->
      ( Array.of_list (List.map Array.of_list (poly_exponents dims d)),
        [||],
        1. )
    | Tensor degrees ->
      if Array.length degrees <> dims then
        invalid_arg "Ridge.fit: Tensor basis arity mismatch";
      ( Array.of_list (List.map Array.of_list (tensor_exponents degrees)),
        [||],
        1. )
    | Terms terms ->
      if Array.length terms = 0 then
        invalid_arg "Ridge.fit: Terms basis is empty";
      Array.iter
        (fun t ->
          if Array.length t <> dims then
            invalid_arg "Ridge.fit: Terms basis arity mismatch";
          Array.iter
            (fun e ->
              if e < 0 then invalid_arg "Ridge.fit: negative exponent")
            t)
        terms;
      (Array.map Array.copy terms, [||], 1.)
    | Rbf { degree; centers = c; width } ->
      let exps =
        Array.of_list (List.map Array.of_list (poly_exponents dims degree))
      in
      let c = max 0 (min c n) in
      (* Deterministic spread of training rows as centers. *)
      let centers =
        Array.init c (fun k ->
            let i =
              if c = 1 then 0
              else
                int_of_float
                  (Float.round
                     (float_of_int k *. float_of_int (n - 1)
                     /. float_of_int (c - 1)))
            in
            Array.copy zs.(i))
      in
      (exps, centers, width)
  in
  let m = Array.length exps + Array.length centers in
  if lambda <= 0. && n < m then raise (Err (Too_few_rows { rows = n; params = m }));
  (* Design matrix Phi (n x m, flat), each row scaled by its weight: the
     weighted LS solution of the original problem.  With w_i = 1/y_i the
     residuals (and so sigma, the LOO residuals, and the confidence
     half-widths) are measured in {e relative} units of the target. *)
  let phi = Array.make (n * m) 0. in
  let tmp = Array.make m 0. in
  for i = 0 to n - 1 do
    eval_basis ~exps ~centers ~width zs.(i) tmp;
    let w = weight i in
    if w <> 1. then
      for j = 0 to m - 1 do
        tmp.(j) <- tmp.(j) *. w
      done;
    Array.blit tmp 0 phi (i * m) m
  done;
  (* Normal matrix A = Phi'Phi + lambda R; R is the identity with the
     intercept (the all-zero exponent, always basis index 0) unpenalized. *)
  let a = Array.make (m * m) 0. in
  for i = 0 to n - 1 do
    let row = i * m in
    for j = 0 to m - 1 do
      let pj = phi.(row + j) in
      if pj <> 0. then
        for k = j to m - 1 do
          a.((j * m) + k) <- a.((j * m) + k) +. (pj *. phi.(row + k))
        done
    done
  done;
  for j = 0 to m - 1 do
    for k = 0 to j - 1 do
      a.((j * m) + k) <- a.((k * m) + j)
    done
  done;
  let intercept =
    let found = ref (-1) in
    Array.iteri
      (fun k e -> if !found < 0 && Array.for_all (( = ) 0) e then found := k)
      exps;
    !found
  in
  if lambda > 0. then
    for j = 0 to m - 1 do
      if j <> intercept then a.((j * m) + j) <- a.((j * m) + j) +. lambda
    done;
  let piv = Array.make m 0 in
  if not (Linalg.lu_factor a piv m) then raise (Err Singular);
  (* Coefficients. *)
  let rhs = Array.make m 0. in
  for i = 0 to n - 1 do
    let row = i * m in
    let y = weight i *. ys.(i) in
    for j = 0 to m - 1 do
      rhs.(j) <- rhs.(j) +. (phi.(row + j) *. y)
    done
  done;
  Linalg.lu_solve a piv m rhs;
  let beta = rhs in
  Array.iter
    (fun b -> if not (Float.is_finite b) then raise (Err Singular))
    beta;
  (* Leave-one-out residuals from the hat diagonal:
     loo_i = r_i / (1 - h_ii), h_ii = phi_i' A^-1 phi_i. *)
  let loo = Array.make n 0. in
  let u = Array.make m 0. in
  for i = 0 to n - 1 do
    let row = i * m in
    Array.blit phi row u 0 m;
    Linalg.lu_solve a piv m u;
    let h = dot m phi row u in
    let r = (weight i *. ys.(i)) -. dot m phi row beta in
    let denom = Float.max (1. -. h) 1e-6 in
    loo.(i) <- r /. denom
  done;
  let sigma =
    let s = ref 0. in
    Array.iter (fun r -> s := !s +. (r *. r)) loo;
    sqrt (!s /. fn)
  in
  { dims; mean; scale; exps; centers; width; beta; a_lu = a; a_piv = piv;
    m; n; sigma; loo }

let fit ?(lambda = 1e-6) ?(basis = Poly 2) ?(drop_constant = false) ?weights
    ~rows ~targets () =
  try Ok (fit_exn ~lambda ~basis ~drop_constant ~weights ~rows ~targets)
  with Err e -> Error e

(* ------------------------------------------------------------------ *)
(* Prediction and confidence                                           *)
(* ------------------------------------------------------------------ *)

let basis_at t x =
  if Array.length x <> t.dims then
    invalid_arg "Ridge.predict: query dimension mismatch";
  let z = Array.make t.dims 0. in
  normalize t.mean t.scale x z;
  let out = Array.make t.m 0. in
  eval_basis ~exps:t.exps ~centers:t.centers ~width:t.width z out;
  out

let predict t x =
  let p = basis_at t x in
  dot t.m p 0 t.beta

let leverage ?(weight = 1.) t x =
  if not (Float.is_finite weight && weight > 0.) then
    invalid_arg "Ridge.leverage: weight must be finite and positive";
  let p = basis_at t x in
  (* The normal matrix holds weighted rows (w_i phi_i); a query only
     compares against it in the same units, so scale the query basis by
     its own weight.  With w = 1 this is the plain hat value. *)
  if weight <> 1. then
    for j = 0 to t.m - 1 do
      p.(j) <- p.(j) *. weight
    done;
  let u = Array.copy p in
  Linalg.lu_solve t.a_lu t.a_piv t.m u;
  Float.max 0. (dot t.m p 0 u)

let confidence ?(conf = 2.) ?weight t x =
  conf *. t.sigma *. sqrt (1. +. leverage ?weight t x)

let predict_ci ?conf ?weight t x = (predict t x, confidence ?conf ?weight t x)
let sigma t = t.sigma
let loo_residuals t = Array.copy t.loo
let params t = t.m
let rows t = t.n

(* ------------------------------------------------------------------ *)
(* Ensemble spread                                                     *)
(* ------------------------------------------------------------------ *)

let ensemble ?(folds = 4) ?lambda ?basis ?drop_constant ?weights ~rows:xs
    ~targets () =
  let n = Array.length xs in
  let folds = max 2 (min folds n) in
  let rec build k acc =
    if k < 0 then Ok acc
    else begin
      let keep = ref [] in
      for i = n - 1 downto 0 do
        if i mod folds <> k then keep := i :: !keep
      done;
      let idx = Array.of_list !keep in
      let sub_rows = Array.map (fun i -> xs.(i)) idx in
      let sub_ys = Array.map (fun i -> targets.(i)) idx in
      let sub_ws = Option.map (fun w -> Array.map (fun i -> w.(i)) idx) weights in
      match
        fit ?lambda ?basis ?drop_constant ?weights:sub_ws ~rows:sub_rows
          ~targets:sub_ys ()
      with
      | Ok m -> build (k - 1) (m :: acc)
      | Error e -> Error e
    end
  in
  build (folds - 1) []

let spread models x =
  match models with
  | [] | [ _ ] -> 0.
  | _ ->
    let preds = List.map (fun m -> predict m x) models in
    let k = float_of_int (List.length preds) in
    let mean = List.fold_left ( +. ) 0. preds /. k in
    let var =
      List.fold_left (fun acc p -> acc +. ((p -. mean) ** 2.)) 0. preds /. k
    in
    sqrt var
