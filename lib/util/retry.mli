(** Retry with escalation: run an attempt at each rung of a ladder of
    progressively more conservative configurations until one succeeds.

    The characterization pipeline uses this to re-run failed transient
    simulations with tighter solver settings before degrading to a fallback
    model, but the policy itself is generic: a ladder is any list of
    configurations, an attempt is any function returning a [result]. *)

type ('a, 'e) outcome =
  | First_try of 'a            (** the first rung succeeded *)
  | Recovered of 'a * 'e list
      (** a later rung succeeded; carries the errors of the failed
          attempts, in attempt order *)
  | Exhausted of 'e list
      (** every rung failed; all errors, in attempt order *)

val with_escalation : ladder:'c list -> ('c -> ('a, 'e) result) -> ('a, 'e) outcome
(** [with_escalation ~ladder f] calls [f] on each rung of [ladder] in order
    and stops at the first [Ok].
    @raise Invalid_argument on an empty ladder. *)

val succeeded : ('a, 'e) outcome -> 'a option

val attempts : ('a, 'e) outcome -> int
(** Number of attempts actually made (>= 1 unless the ladder was empty). *)

val errors : ('a, 'e) outcome -> 'e list
(** Errors of the failed attempts, in attempt order. *)
