(** Retry policies: escalation ladders and capped exponential backoff.

    {b Escalation} ([with_escalation]) runs an attempt at each rung of a
    ladder of progressively more conservative configurations until one
    succeeds.  The characterization pipeline uses this to re-run failed
    transient simulations with tighter solver settings before degrading to
    a fallback model, but the policy itself is generic: a ladder is any
    list of configurations, an attempt is any function returning a
    [result].

    {b Backoff} ([with_backoff]) retries one operation with capped
    exponential delays, deterministic seeded jitter, and a total deadline
    budget — the client-side policy for talking to a loaded service
    ([relaware query] retrying [overloaded] responses) and the pacing
    between escalation rungs when failures look transient rather than
    deterministic.  Timing is injectable ([sleep], [now]) so tests can
    assert the exact schedule without sleeping. *)

type ('a, 'e) outcome =
  | First_try of 'a            (** the first rung succeeded *)
  | Recovered of 'a * 'e list
      (** a later rung succeeded; carries the errors of the failed
          attempts, in attempt order *)
  | Exhausted of 'e list
      (** every rung failed; all errors, in attempt order *)

val with_escalation :
  ?pause:(failures:int -> unit) ->
  ladder:'c list -> ('c -> ('a, 'e) result) -> ('a, 'e) outcome
(** [with_escalation ~ladder f] calls [f] on each rung of [ladder] in order
    and stops at the first [Ok].  [pause ~failures] (default: none — retry
    immediately) is called before every re-attempt with the number of
    failures so far ([>= 1]); use {!pause_of_backoff} to wait out transient
    faults between rungs.
    @raise Invalid_argument on an empty ladder. *)

val succeeded : ('a, 'e) outcome -> 'a option

val attempts : ('a, 'e) outcome -> int
(** Number of attempts actually made (>= 1 unless the ladder was empty). *)

val errors : ('a, 'e) outcome -> 'e list
(** Errors of the failed attempts, in attempt order. *)

(** {2 Capped exponential backoff} *)

type backoff = {
  base : float;
      (** delay before the second attempt, in seconds (>= 0) *)
  factor : float;
      (** growth per failure (>= 1): the [k]-th delay is
          [base *. factor ** (k - 1)] before capping *)
  cap : float;
      (** upper bound on any single delay, in seconds *)
  jitter : float;
      (** fraction of each delay randomized away, in [0, 1]: with a
          generator, delay [d] becomes [d *. (1. -. jitter *. u)] for
          [u ~ U[0,1)] — deterministic for a fixed {!Rng.t} seed.  Without
          a generator the undithered delay is used. *)
  max_attempts : int;
      (** total attempts allowed (>= 1); [max_int] for budget-only *)
  budget : float;
      (** total deadline in seconds across all attempts and sleeps:
          a retry whose delay would land past the budget is not made.
          [infinity] disables the budget. *)
}

val default_backoff : backoff
(** 25 ms base, factor 2, 1 s cap, 0.5 jitter, 8 attempts, 30 s budget. *)

val backoff_delay : ?rng:Rng.t -> backoff -> failures:int -> float
(** The delay scheduled after the [failures]-th consecutive failure
    ([failures >= 1]): [min cap (base *. factor ** (failures - 1))],
    dithered by [jitter] when [rng] is given (advancing it by one draw). *)

val with_backoff :
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?rng:Rng.t ->
  backoff ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) outcome
(** [with_backoff policy f] calls [f ~attempt:0] immediately and, on
    [Error], sleeps the next backoff delay and re-attempts with an
    incremented [attempt] — until an attempt succeeds ([First_try] /
    [Recovered]), [max_attempts] attempts have failed, or the next delay
    would overrun [budget] (measured by [now], default
    [Unix.gettimeofday]); both exhaustions return [Exhausted] with every
    error in attempt order.  [sleep] defaults to [Unix.sleepf]; tests pass
    a recording stub to assert the schedule.  The jitter sequence is
    deterministic for a fixed [rng] seed. *)

val pause_of_backoff :
  ?sleep:(float -> unit) -> ?rng:Rng.t -> backoff -> failures:int -> unit
(** Adapter for {!with_escalation}'s [pause]: sleeps
    [backoff_delay ~failures] (ignoring [max_attempts] and [budget] — the
    ladder length already bounds the attempts). *)
