type t = { mutable state : int64; gamma : int64 }

(* splitmix64 (Steele et al.): state += gamma; output = mix(state).  The
   gamma is the per-stream increment; [create] uses the golden gamma, so
   sequences are bit-identical to the historical single-field
   implementation. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; gamma = golden_gamma }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gammas must be odd so the state walk has full period. *)
let mix_gamma z = Int64.logor (mix z) 1L

let int64 t =
  t.state <- Int64.add t.state t.gamma;
  mix t.state

let float t =
  (* 53 high bits -> [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  int_of_float (float t *. float_of_int bound)

let bool t = Int64.logand (int64 t) 1L = 1L

let copy t = { t with state = t.state }

let split t =
  let state = int64 t in
  let gamma = mix_gamma (int64 t) in
  { state; gamma }

let derive seed k =
  if k = 0 then seed
  else mix (Int64.add seed (Int64.mul (Int64.of_int k) golden_gamma))

let substream t k =
  if k < 0 then invalid_arg "Rng.substream: negative index";
  (* Mix in (k+1) so substream 0 is decorrelated from the parent's own
     continuation; the parent state is read, never advanced. *)
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (k + 1)) golden_gamma));
    gamma = golden_gamma }
