(** Aligned plain-text tables for experiment reports.

    The benchmark harness prints the rows/series of every paper figure through
    this module so that [bench_output.txt] is stable and diff-able. *)

type align = Left | Right

val render :
  ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with one space-padded column per
    header entry.  [align] defaults to [Left] for the first column and
    [Right] for the rest; a shorter [align] list is padded with [Right]. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string] of the result. *)

val fs : ('a, Format.formatter, unit, string) format4 -> 'a
(** Shorthand for [Format.asprintf], used to format numeric cells. *)

val kv : (string * string) list -> string
(** A two-column key/value block (headerless, no rule): keys left-aligned
    to the widest, values verbatim.  Used for run headers and summaries. *)
