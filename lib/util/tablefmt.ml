type align = Left | Right

let fs fmt = Format.asprintf fmt

let column_widths ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let note row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  note header;
  List.iter note rows;
  widths

let pad align width cell =
  let n = width - String.length cell in
  if n <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    let given = Option.value align ~default:[ Left ] in
    Array.init ncols (fun i ->
        match List.nth_opt given i with Some a -> a | None -> Right)
  in
  let widths = column_widths ~header rows in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < ncols then Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let kv pairs =
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 0 pairs
  in
  let buf = Buffer.create 128 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (pad Left width k);
      Buffer.add_string buf "  ";
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    pairs;
  Buffer.contents buf
