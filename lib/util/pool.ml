let default_jobs () =
  match Sys.getenv_opt "AGING_JOBS" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ()
  end
  | None -> Domain.recommended_domain_count ()

(* Set while a domain is executing pool work; a nested [map] sees it and
   degrades to List.map, so stacked parallel layers cannot multiply the
   domain count. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 || Domain.DLS.get inside_pool -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let jobs = min jobs n in
    let results = Array.make n None in
    (* Lowest failing input index wins, so the caller sees the same
       exception a sequential run would raise first. *)
    let failure = Atomic.make None in
    let record_failure i e bt =
      let rec cas () =
        let cur = Atomic.get failure in
        match cur with
        | Some (j, _, _) when j <= i -> ()
        | _ -> if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then cas ()
      in
      cas ()
    in
    let run_chunk k =
      let lo = k * n / jobs and hi = (k + 1) * n / jobs in
      for i = lo to hi - 1 do
        match f input.(i) with
        | v -> results.(i) <- Some v
        | exception e -> record_failure i e (Printexc.get_raw_backtrace ())
      done
    in
    let worker k () =
      Domain.DLS.set inside_pool true;
      run_chunk k
    in
    (* Drain discipline: whatever goes wrong mid-map — a [Domain.spawn]
       failing after some workers are already running (resource
       exhaustion), the caller's chunk raising, or a join itself raising —
       every domain that was actually spawned is joined before control
       leaves this function, and the calling domain's nesting flag is
       reset.  Leaking an unjoined domain would poison every later [map]
       (and eventually the runtime); leaving [inside_pool] set would
       silently sequentialize them. *)
    let spawned = ref [] in
    let join_all () =
      (* Join every spawned domain even if an early join raises; the first
         join exception (a worker dying outside [run_chunk]'s per-element
         handler, e.g. an asynchronous exception) is re-raised only after
         all of them are accounted for. *)
      let first = ref None in
      List.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception e ->
            if !first = None then
              first := Some (e, Printexc.get_raw_backtrace ()))
        (List.rev !spawned);
      spawned := [];
      match !first with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    in
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_pool false;
        join_all ())
      (fun () ->
        for k = 1 to jobs - 1 do
          spawned := Domain.spawn (worker k) :: !spawned
        done;
        Domain.DLS.set inside_pool true;
        run_chunk 0);
    (match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
