(** A small domain-based worker pool for embarrassingly parallel maps.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains and returns the results {e in input order} — never in
    completion order — so a parallel map is bit-for-bit substitutable for
    [List.map].  The input is split into [jobs] contiguous chunks, one per
    domain (work units are expected to be coarse and similar in cost:
    characterization grids, library corners), and the calling domain works
    a chunk itself rather than idling.

    Nested calls never oversubscribe: a [map] issued from inside a pool
    worker runs sequentially on that worker, so composed parallel layers
    (corners over cells over arcs) fan out only at the outermost level
    that actually has more than one work item.

    Exceptions propagate: if any application of [f] raises, every chunk
    still runs to completion (no cancellation), and then the exception of
    the {e lowest-indexed} failing element is re-raised in the caller with
    its original backtrace — deterministic no matter which domain hit it
    first.

    The pool drains fully no matter what: every domain actually spawned is
    joined before [map] returns or raises — including when a late
    [Domain.spawn] itself fails or a worker dies outside the per-element
    handler — and the caller's nesting flag is always reset, so a [map]
    that raised leaks nothing and the next [map] on the same domain
    parallelizes again. *)

val default_jobs : unit -> int
(** The pool width used by the CLI and benches when none is given
    explicitly: [$AGING_JOBS] if set to a positive integer, otherwise
    {!Domain.recommended_domain_count} (an unparsable or non-positive
    [$AGING_JOBS] falls back to the recommended count). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs] domains
    ([jobs] defaults to {!default_jobs}; values [<= 1], singleton/empty
    inputs, and nested calls run sequentially without spawning). *)
