(** A bounded least-recently-used cache.

    Resident processes ({!Aging_core.Degradation_library}'s in-memory memo,
    the [relaware serve] daemon) must hold a working set of expensive
    artifacts without growing without limit; this is the eviction policy
    they share.  [find] promotes the binding to most-recently-used, [put]
    evicts the least-recently-used binding once the capacity is exceeded
    and hands it back to the caller (for logging / metrics).

    Not thread-safe: callers that share a cache across domains serialize on
    their own lock, which is what they need anyway to make lookup-miss-fill
    sequences atomic. *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** [cap] is the maximum number of bindings.
    @raise Invalid_argument if [cap < 1]. *)

val cap : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the binding to most-recently-used when present. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does {e not} promote. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Inserts (or replaces, promoting) the binding and returns the binding
    evicted to stay within capacity, if any.  A replacement never
    evicts. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings most-recently-used first (for tests and introspection). *)
