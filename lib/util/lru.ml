(* Hashtbl over an intrusive doubly-linked recency list: O(1) find / put /
   remove, no allocation on promotion beyond pointer swaps. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable nval : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most-recently used *)
  mutable tail : ('k, 'v) node option;  (* least-recently used *)
}

let create ~cap =
  if cap < 1 then invalid_arg "Lru.create: cap must be >= 1";
  { capacity = cap; tbl = Hashtbl.create (min cap 64); head = None; tail = None }

let cap t = t.capacity
let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.nval

let mem t k = Hashtbl.mem t.tbl k

let put t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.nval <- v;
    promote t n;
    None
  | None ->
    let n = { nkey = k; nval = v; prev = None; next = None } in
    Hashtbl.replace t.tbl k n;
    push_front t n;
    if Hashtbl.length t.tbl <= t.capacity then None
    else begin
      match t.tail with
      | None -> assert false (* non-empty: we just inserted *)
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.nkey;
        Some (lru.nkey, lru.nval)
    end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.nkey, n.nval) :: acc) n.next
  in
  go [] t.head
