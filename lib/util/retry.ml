type ('a, 'e) outcome =
  | First_try of 'a
  | Recovered of 'a * 'e list
  | Exhausted of 'e list

let with_escalation ~ladder f =
  match ladder with
  | [] -> invalid_arg "Retry.with_escalation: empty ladder"
  | _ ->
    let rec go errors = function
      | [] -> Exhausted (List.rev errors)
      | level :: rest -> begin
        match f level with
        | Ok x ->
          if errors = [] then First_try x else Recovered (x, List.rev errors)
        | Error e -> go (e :: errors) rest
      end
    in
    go [] ladder

let succeeded = function
  | First_try x | Recovered (x, _) -> Some x
  | Exhausted _ -> None

let attempts = function
  | First_try _ -> 1
  | Recovered (_, errors) -> 1 + List.length errors
  | Exhausted errors -> List.length errors

let errors = function
  | First_try _ -> []
  | Recovered (_, errors) | Exhausted errors -> errors
