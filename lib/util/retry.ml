type ('a, 'e) outcome =
  | First_try of 'a
  | Recovered of 'a * 'e list
  | Exhausted of 'e list

let with_escalation ?pause ~ladder f =
  match ladder with
  | [] -> invalid_arg "Retry.with_escalation: empty ladder"
  | _ ->
    let rec go errors = function
      | [] -> Exhausted (List.rev errors)
      | level :: rest -> begin
        (match (pause, errors) with
        | Some pause, _ :: _ -> pause ~failures:(List.length errors)
        | _ -> ());
        match f level with
        | Ok x ->
          if errors = [] then First_try x else Recovered (x, List.rev errors)
        | Error e -> go (e :: errors) rest
      end
    in
    go [] ladder

let succeeded = function
  | First_try x | Recovered (x, _) -> Some x
  | Exhausted _ -> None

let attempts = function
  | First_try _ -> 1
  | Recovered (_, errors) -> 1 + List.length errors
  | Exhausted errors -> List.length errors

let errors = function
  | First_try _ -> []
  | Recovered (_, errors) | Exhausted errors -> errors

(* ------------------------------------------------------------------ *)
(* Capped exponential backoff                                          *)
(* ------------------------------------------------------------------ *)

type backoff = {
  base : float;
  factor : float;
  cap : float;
  jitter : float;
  max_attempts : int;
  budget : float;
}

let default_backoff =
  { base = 0.025; factor = 2.; cap = 1.; jitter = 0.5; max_attempts = 8;
    budget = 30. }

let validate p =
  if p.base < 0. || not (Float.is_finite p.base) then
    invalid_arg "Retry: backoff base must be finite and >= 0";
  if p.factor < 1. then invalid_arg "Retry: backoff factor must be >= 1";
  if p.cap < 0. then invalid_arg "Retry: backoff cap must be >= 0";
  if p.jitter < 0. || p.jitter > 1. then
    invalid_arg "Retry: backoff jitter must be in [0, 1]";
  if p.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1"

let backoff_delay ?rng p ~failures =
  if failures < 1 then invalid_arg "Retry.backoff_delay: failures must be >= 1";
  validate p;
  (* Cap the exponent too: [factor ** big] overflows to infinity long after
     the cap has saturated the schedule, and [min] keeps that finite. *)
  let raw = p.base *. (p.factor ** float_of_int (min (failures - 1) 64)) in
  let d = Float.min p.cap raw in
  match rng with
  | None -> d
  | Some rng -> d *. (1. -. (p.jitter *. Rng.float rng))

let with_backoff ?(sleep = Unix.sleepf) ?(now = Unix.gettimeofday) ?rng p f =
  validate p;
  let started = now () in
  let rec go errors attempt =
    match f ~attempt with
    | Ok x ->
      if errors = [] then First_try x else Recovered (x, List.rev errors)
    | Error e ->
      let errors = e :: errors in
      let failures = List.length errors in
      if failures >= p.max_attempts then Exhausted (List.rev errors)
      else begin
        let d = backoff_delay ?rng p ~failures in
        (* The budget is a total deadline: a sleep that would land past it
           is not taken, so a caller waiting on us is never held beyond
           [budget] by more than one attempt's own duration. *)
        if now () -. started +. d > p.budget then Exhausted (List.rev errors)
        else begin
          if d > 0. then sleep d;
          go errors (attempt + 1)
        end
      end
  in
  go [] 0

let pause_of_backoff ?(sleep = Unix.sleepf) ?rng p ~failures =
  let d = backoff_delay ?rng p ~failures in
  if d > 0. then sleep d
