(** Deterministic splitmix64 pseudo-random generator.

    Every stochastic piece of the reproduction (workload stimuli, synthetic
    images, property-test inputs) draws from this generator so that
    experiments are bit-reproducible across runs.

    Two derivation mechanisms support order-insensitive generation (the
    property-test kernel in [lib/check] leans on both):

    - {!split} forks a child stream Steele-style, drawing a fresh state
      {e and} a fresh odd gamma from the parent (which advances);
    - {!substream} derives the [k]-th indexed child without touching the
      parent at all, so sibling generators are independent of the order in
      which they are created or consumed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed.  Output sequences
    are identical to all previous versions of this module. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val copy : t -> t
(** Snapshot: an independent generator that will replay exactly the
    outputs [t] would produce from this point. *)

val split : t -> t
(** [split t] derives an independent generator stream (fresh state and
    fresh odd gamma, both drawn from [t]) and advances [t] by two draws. *)

val derive : int64 -> int -> int64
(** [derive seed k] is the seed of the [k]-th replayable sub-stream of
    [seed]; [derive seed 0 = seed], so a reported per-case seed can be fed
    straight back into [create] (or [--seed]) to replay case 0 of that
    stream. *)

val substream : t -> int -> t
(** [substream t k] is the [k]-th indexed child generator of [t]'s current
    state.  Does {e not} advance [t]; distinct [k] give decorrelated
    streams, and the result is independent of any later draws from [t].
    @raise Invalid_argument if [k < 0]. *)
