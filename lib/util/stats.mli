(** Small descriptive-statistics helpers used by the experiment drivers. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Population standard deviation.  @raise Invalid_argument on the empty
    list. *)

val min_max : float list -> float * float
(** Smallest and largest element.  @raise Invalid_argument on the empty
    list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100]: linear-interpolation percentile of
    the sorted sample.  @raise Invalid_argument on the empty list or [p]
    outside [0,100]. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on empty input or non-positive elements. *)

type histogram = {
  lo : float;           (** lower edge of the first bin *)
  bin_width : float;    (** uniform bin width *)
  counts : int array;   (** occupancy per bin *)
  nan_count : int;      (** NaN samples, counted apart from every bin *)
}
(** A uniform-bin histogram; finite values outside the range are clamped
    into the first/last bin, so the total bin count equals the number of
    non-NaN samples.  NaN samples are never binned (they would otherwise
    masquerade as bin-0 outliers); they are reported in [nan_count]. *)

val histogram : lo:float -> hi:float -> bins:int -> float list -> histogram
(** [histogram ~lo ~hi ~bins xs] bins [xs] into [bins] uniform bins covering
    [lo, hi].  @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val histogram_rows : histogram -> (float * float * int) list
(** [(bin_lo, bin_hi, count)] per bin, in order. *)

val fraction_below : float -> float list -> float
(** [fraction_below threshold xs] is the fraction of samples strictly below
    [threshold] (0 on the empty list). *)
