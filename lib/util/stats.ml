let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (infinity, neg_infinity) xs

let percentile p xs =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor rank) in
    let i = if i >= n - 1 then n - 2 else i in
    let t = rank -. float_of_int i in
    a.(i) +. (t *. (a.(i + 1) -. a.(i)))
  end

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive value"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int (List.length xs))

type histogram = {
  lo : float;
  bin_width : float;
  counts : int array;
  nan_count : int;
}

let histogram ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  let nan_count = ref 0 in
  let clamp i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
  let add x =
    (* [int_of_float nan] is 0, which would silently land a NaN sample in
       bin 0 as if it were a real low outlier — count it apart instead. *)
    if Float.is_nan x then incr nan_count
    else begin
      let i = clamp (int_of_float (Float.floor ((x -. lo) /. width))) in
      counts.(i) <- counts.(i) + 1
    end
  in
  List.iter add xs;
  { lo; bin_width = width; counts; nan_count = !nan_count }

let histogram_rows h =
  Array.to_list
    (Array.mapi
       (fun i count ->
         let b0 = h.lo +. (float_of_int i *. h.bin_width) in
         (b0, b0 +. h.bin_width, count))
       h.counts)

let fraction_below threshold xs =
  match xs with
  | [] -> 0.
  | _ :: _ ->
    let below = List.length (List.filter (fun x -> x < threshold) xs) in
    float_of_int below /. float_of_int (List.length xs)
