(** Standard Delay Format (SDF 3.0) emission — and re-parsing — of the
    per-instance delays of a timing analysis.

    Emission freezes the pin-to-pin delays of an analysis — evaluated at
    each instance's measured input slews and output loads, exactly as the
    event-driven simulator annotates itself — into IOPATH entries.  This is
    the "sdf files generated from the synthesis tool under the targeted
    aging scenario" artifact of the paper's Sec. 5 setup.

    The parser reads the same dialect back into a structured value, so
    written files can be round-tripped and checked:
    [to_string (t) |> of_string = Ok t] for any [t] whose delays survive
    the 4-decimal nanosecond formatting (writer output always does). *)

type triple = { d_min : float; d_typ : float; d_max : float }
(** Delay triple in seconds (written as [min:typ:max] in nanoseconds). *)

type iopath = {
  from_pin : string;
  to_pin : string;
  rise : triple;
  fall : triple;
}

type cell = { celltype : string; instance : string; iopaths : iopath list }
type t = { version : string; design : string; cells : cell list }

val of_analysis : Timing.analysis -> t
(** One CELL per netlist instance with timing arcs; delays from the
    library surfaces at the analysis' slews and loads. *)

val to_string : t -> string
(** Canonical DELAYFILE text (nanosecond triples, 4 decimals). *)

val of_string : string -> (t, string) result
(** Parse a DELAYFILE produced by {!to_string} (or any file in the same
    subset of SDF 3.0: CELL/DELAY/ABSOLUTE/IOPATH). *)

val to_sdf : Timing.analysis -> string
(** [to_string (of_analysis a)]. *)

val save : string -> Timing.analysis -> unit
