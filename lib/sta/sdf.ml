module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist

type triple = { d_min : float; d_typ : float; d_max : float }

type iopath = {
  from_pin : string;
  to_pin : string;
  rise : triple;
  fall : triple;
}

type cell = { celltype : string; instance : string; iopaths : iopath list }
type t = { version : string; design : string; cells : cell list }

let ns t = t *. 1e9

let triple_str { d_min; d_typ; d_max } =
  Printf.sprintf "(%.4f:%.4f:%.4f)" (ns d_min) (ns d_typ) (ns d_max)

let of_analysis analysis =
  let netlist = Timing.netlist analysis in
  let library = Timing.library analysis in
  let cells = ref [] in
  Array.iter
    (fun (inst : Netlist.instance) ->
      let entry =
        match Library.find library inst.Netlist.cell_name with
        | Some e -> Some e
        | None ->
          Library.find library (Netlist.base_cell_name inst.Netlist.cell_name)
      in
      match entry with
      | None -> ()
      | Some entry when entry.Library.arcs = [] -> ()
      | Some entry ->
        let iopaths =
          List.filter_map
            (fun (arc : Library.arc) ->
              match
                ( List.assoc_opt arc.Library.from_pin inst.Netlist.inputs,
                  List.assoc_opt arc.Library.to_pin inst.Netlist.outputs )
              with
              | Some in_net, Some out_net ->
                let slew =
                  Float.max
                    (Timing.slew_at analysis in_net Library.Rise)
                    (Timing.slew_at analysis in_net Library.Fall)
                in
                let load = Timing.load_on analysis out_net in
                let delay dir =
                  let d = Library.delay_of arc ~dir ~slew ~load in
                  { d_min = d; d_typ = d; d_max = d }
                in
                Some
                  {
                    from_pin = arc.Library.from_pin;
                    to_pin = arc.Library.to_pin;
                    rise = delay Library.Rise;
                    fall = delay Library.Fall;
                  }
              | None, _ | _, None -> None)
            entry.Library.arcs
        in
        cells :=
          {
            celltype = inst.Netlist.cell_name;
            instance = inst.Netlist.inst_name;
            iopaths;
          }
          :: !cells)
    netlist.Netlist.instances;
  {
    version = "3.0";
    design = netlist.Netlist.design_name;
    cells = List.rev !cells;
  }

let to_string t =
  let buf = Buffer.create 65536 in
  Printf.bprintf buf
    "(DELAYFILE\n  (SDFVERSION \"%s\")\n  (DESIGN \"%s\")\n  (DIVIDER /)\n\
    \  (TIMESCALE 1ns)\n"
    t.version t.design;
  List.iter
    (fun c ->
      Printf.bprintf buf
        "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n    (DELAY (ABSOLUTE\n"
        c.celltype c.instance;
      List.iter
        (fun p ->
          Printf.bprintf buf "      (IOPATH %s %s %s %s)\n" p.from_pin p.to_pin
            (triple_str p.rise) (triple_str p.fall))
        c.iopaths;
      Buffer.add_string buf "    ))\n  )\n")
    t.cells;
  Buffer.add_string buf ")\n";
  Buffer.contents buf

(* {2 Parsing}

   A tiny S-expression reader: atoms are quoted strings or runs of
   non-space, non-paren characters, so delay triples [(a:b:c)] tokenize as
   one-atom lists. *)

type sexp = Atom of string | List of sexp list

exception Parse of string

let parse_sexps s =
  let n = String.length s in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | _ -> ()
  in
  let atom () =
    let start = !pos in
    if s.[!pos] = '"' then begin
      incr pos;
      while !pos < n && s.[!pos] <> '"' do
        incr pos
      done;
      if !pos >= n then raise (Parse "unterminated string");
      incr pos;
      Atom (String.sub s (start + 1) (!pos - start - 2))
    end
    else begin
      while
        !pos < n
        &&
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' -> false
        | _ -> true
      do
        incr pos
      done;
      Atom (String.sub s start (!pos - start))
    end
  in
  let rec sexp () =
    skip_ws ();
    if !pos >= n then raise (Parse "unexpected end of input");
    if s.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        if !pos >= n then raise (Parse "unclosed paren");
        if s.[!pos] = ')' then incr pos
        else begin
          items := sexp () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else atom ()
  in
  let top = ref [] in
  skip_ws ();
  while !pos < n do
    top := sexp () :: !top;
    skip_ws ()
  done;
  List.rev !top

let parse_triple = function
  | List [ Atom a ] -> (
    match String.split_on_char ':' a with
    | [ mn; ty; mx ] -> (
      try
        {
          d_min = float_of_string mn *. 1e-9;
          d_typ = float_of_string ty *. 1e-9;
          d_max = float_of_string mx *. 1e-9;
        }
      with Failure _ -> raise (Parse ("bad delay triple " ^ a)))
    | _ -> raise (Parse ("bad delay triple " ^ a)))
  | _ -> raise (Parse "expected (min:typ:max) triple")

let parse_iopath = function
  | List [ Atom "IOPATH"; Atom from_pin; Atom to_pin; rise; fall ] ->
    { from_pin; to_pin; rise = parse_triple rise; fall = parse_triple fall }
  | _ -> raise (Parse "malformed IOPATH")

let parse_cell items =
  let celltype = ref None
  and instance = ref None
  and iopaths = ref [] in
  List.iter
    (function
      | List [ Atom "CELLTYPE"; Atom ct ] -> celltype := Some ct
      | List [ Atom "INSTANCE"; Atom inst ] -> instance := Some inst
      | List (Atom "DELAY" :: delay_items) ->
        List.iter
          (function
            | List (Atom "ABSOLUTE" :: paths) ->
              iopaths := !iopaths @ List.map parse_iopath paths
            | _ -> raise (Parse "expected ABSOLUTE delay block"))
          delay_items
      | _ -> raise (Parse "unexpected CELL item"))
    items;
  match (!celltype, !instance) with
  | Some celltype, Some instance -> { celltype; instance; iopaths = !iopaths }
  | _ -> raise (Parse "CELL missing CELLTYPE or INSTANCE")

let of_string s =
  try
    match parse_sexps s with
    | [ List (Atom "DELAYFILE" :: items) ] ->
      let version = ref "3.0"
      and design = ref ""
      and cells = ref [] in
      List.iter
        (function
          | List [ Atom "SDFVERSION"; Atom v ] -> version := v
          | List [ Atom "DESIGN"; Atom d ] -> design := d
          | List [ Atom "DIVIDER"; Atom _ ] | List [ Atom "TIMESCALE"; Atom _ ]
            -> ()
          | List (Atom "CELL" :: cell_items) ->
            cells := parse_cell cell_items :: !cells
          | _ -> raise (Parse "unexpected DELAYFILE item"))
        items;
      Ok { version = !version; design = !design; cells = List.rev !cells }
    | _ -> Error "expected a single (DELAYFILE ...) form"
  with Parse msg -> Error ("sdf parse error: " ^ msg)

let to_sdf analysis = to_string (of_analysis analysis)

let save path analysis =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_sdf analysis))
