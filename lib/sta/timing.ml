module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span

let m_analyses = Metrics.counter "sta.analyses"
let m_arcs = Metrics.counter "sta.arcs_evaluated"
let m_lookups = Metrics.counter "sta.lookups"

(* Counted NLDM accesses: every bilinear interpolation the analysis performs
   goes through these two wrappers. *)
let lookup_delay arc ~dir ~slew ~load =
  Metrics.incr m_lookups;
  Library.delay_of arc ~dir ~slew ~load

let lookup_out_slew arc ~dir ~slew ~load =
  Metrics.incr m_lookups;
  Library.out_slew_of arc ~dir ~slew ~load

type config = {
  input_slew : float;
  clock_slew : float;
  output_load : float;
  wire_cap_per_fanout : float;
}

let default_config =
  {
    input_slew = 2e-11;
    clock_slew = 2e-11;
    output_load = 4e-15;
    wire_cap_per_fanout = 2e-16;
  }

type provenance_entry = (Netlist.instance * string * Library.direction) option

type analysis = {
  netlist : Netlist.t;
  library : Library.t;
  config : config;
  loads : float array;
  arr : float array array;     (* arr.(dir).(net); 0 = rise, 1 = fall *)
  min_arr : float array array; (* earliest arrivals, for hold analysis *)
  slews : float array array;
  prov : provenance_entry array array;
  endpoint_list : endpoint_timing list;
}

and endpoint =
  | Output_port of string * Netlist.net
  | Flipflop_d of string * Netlist.net

and endpoint_timing = {
  endpoint : endpoint;
  data_arrival : float;
  direction : Library.direction;
  setup : float;
}

let dir_index = function Library.Rise -> 0 | Library.Fall -> 1

let resolve_entry library (inst : Netlist.instance) =
  match Library.find library inst.Netlist.cell_name with
  | Some e -> Some e
  | None -> Library.find library (Netlist.base_cell_name inst.Netlist.cell_name)

let resolve_entry_exn library inst =
  match resolve_entry library inst with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "Timing.analyze: cell %s not in library %s"
         inst.Netlist.cell_name (Library.lib_name library))

type structure = {
  comb_order : int array;       (* indices into netlist.instances *)
  ff_indices : int array;
}

let prepare_structure (netlist : Netlist.t) =
  let index_of = Hashtbl.create (Array.length netlist.Netlist.instances) in
  Array.iteri
    (fun i (inst : Netlist.instance) ->
      Hashtbl.replace index_of inst.Netlist.inst_name i)
    netlist.Netlist.instances;
  let comb_order =
    Array.of_list
      (List.map
         (fun (inst : Netlist.instance) ->
           Hashtbl.find index_of inst.Netlist.inst_name)
         (Netlist.combinational_order netlist))
  in
  let ff_indices =
    Array.of_list
      (List.map
         (fun (inst : Netlist.instance) ->
           Hashtbl.find index_of inst.Netlist.inst_name)
         (Netlist.flipflops netlist))
  in
  { comb_order; ff_indices }

let compute_loads ~config ~library (netlist : Netlist.t) =
  let loads = Array.make netlist.Netlist.n_nets 0. in
  Array.iter
    (fun (inst : Netlist.instance) ->
      let entry = resolve_entry_exn library inst in
      List.iter
        (fun (pin, net) ->
          let cap =
            match Library.input_cap entry pin with
            | cap -> cap
            | exception Library.Pin_not_found _ ->
              failwith
                (Printf.sprintf "Timing.analyze: %s (%s) has no pin %s in %s"
                   inst.Netlist.inst_name inst.Netlist.cell_name pin
                   entry.Library.indexed_name)
          in
          loads.(net) <- loads.(net) +. cap +. config.wire_cap_per_fanout)
        inst.Netlist.inputs)
    netlist.Netlist.instances;
  List.iter
    (fun (_, net) -> loads.(net) <- loads.(net) +. config.output_load)
    netlist.Netlist.output_ports;
  loads

let analyze ?(config = default_config) ?structure ~library
    (netlist : Netlist.t) =
  Span.with_ "sta.analyze"
    ~attrs:[ ("design", netlist.Netlist.design_name) ]
  @@ fun () ->
  Metrics.incr m_analyses;
  let structure =
    match structure with Some s -> s | None -> prepare_structure netlist
  in
  let comb_instances =
    Array.to_list
      (Array.map (fun i -> netlist.Netlist.instances.(i)) structure.comb_order)
  in
  let ff_instances =
    Array.to_list
      (Array.map (fun i -> netlist.Netlist.instances.(i)) structure.ff_indices)
  in
  let n = netlist.Netlist.n_nets in
  let loads = compute_loads ~config ~library netlist in
  let arr = [| Array.make n neg_infinity; Array.make n neg_infinity |] in
  let min_arr = [| Array.make n infinity; Array.make n infinity |] in
  let slews = [| Array.make n config.input_slew; Array.make n config.input_slew |] in
  let prov = [| Array.make n None; Array.make n None |] in
  (* Start points: primary inputs at t = 0. *)
  List.iter
    (fun (_, net) ->
      arr.(0).(net) <- 0.;
      arr.(1).(net) <- 0.;
      min_arr.(0).(net) <- 0.;
      min_arr.(1).(net) <- 0.)
    netlist.Netlist.input_ports;
  (* Start points: flip-flop Q nets launch at clk->q. *)
  List.iter
    (fun (inst : Netlist.instance) ->
      let entry = resolve_entry_exn library inst in
      List.iter
        (fun (pin, qnet) ->
          match Library.arc_of entry ~from_pin:"CK" ~to_pin:pin with
          | None -> ()
          | Some arc ->
            Metrics.incr m_arcs;
            List.iter
              (fun dir ->
                let i = dir_index dir in
                let delay =
                  lookup_delay arc ~dir ~slew:config.clock_slew
                    ~load:loads.(qnet)
                in
                let out_slew =
                  lookup_out_slew arc ~dir ~slew:config.clock_slew
                    ~load:loads.(qnet)
                in
                if delay > arr.(i).(qnet) then begin
                  arr.(i).(qnet) <- delay;
                  slews.(i).(qnet) <- out_slew
                end;
                if delay < min_arr.(i).(qnet) then min_arr.(i).(qnet) <- delay)
              [ Library.Rise; Library.Fall ])
        inst.Netlist.outputs)
    ff_instances;
  (* Propagate through combinational logic in topological order. *)
  List.iter
    (fun (inst : Netlist.instance) ->
      let entry = resolve_entry_exn library inst in
      List.iter
        (fun (arc : Library.arc) ->
          match
            ( List.assoc_opt arc.Library.from_pin inst.Netlist.inputs,
              List.assoc_opt arc.Library.to_pin inst.Netlist.outputs )
          with
          | Some in_net, Some out_net ->
            Metrics.incr m_arcs;
            List.iter
              (fun in_dir ->
                let ii = dir_index in_dir in
                let a_in = arr.(ii).(in_net) in
                if a_in > neg_infinity then begin
                  let out_dir = Library.out_direction arc ~in_dir in
                  let oi = dir_index out_dir in
                  let slew_in = slews.(ii).(in_net) in
                  let load = loads.(out_net) in
                  let delay =
                    lookup_delay arc ~dir:out_dir ~slew:slew_in ~load
                  in
                  let a_out = a_in +. delay in
                  if a_out > arr.(oi).(out_net) then begin
                    arr.(oi).(out_net) <- a_out;
                    slews.(oi).(out_net) <-
                      lookup_out_slew arc ~dir:out_dir ~slew:slew_in ~load;
                    prov.(oi).(out_net) <-
                      Some (inst, arc.Library.from_pin, in_dir)
                  end;
                  let early_in = min_arr.(ii).(in_net) in
                  if early_in < infinity then begin
                    let early = early_in +. delay in
                    if early < min_arr.(oi).(out_net) then
                      min_arr.(oi).(out_net) <- early
                  end
                end)
              [ Library.Rise; Library.Fall ]
          | None, _ | _, None -> ())
        entry.Library.arcs)
    comb_instances;
  (* Collect endpoints. *)
  let worst_edge net =
    if arr.(0).(net) >= arr.(1).(net) then (arr.(0).(net), Library.Rise)
    else (arr.(1).(net), Library.Fall)
  in
  let po_endpoints =
    List.map
      (fun (name, net) ->
        let data_arrival, direction = worst_edge net in
        { endpoint = Output_port (name, net); data_arrival; direction; setup = 0. })
      netlist.Netlist.output_ports
  in
  let ff_endpoints =
    List.filter_map
      (fun (inst : Netlist.instance) ->
        match List.assoc_opt "D" inst.Netlist.inputs with
        | None -> None
        | Some dnet ->
          let entry = resolve_entry_exn library inst in
          let data_arrival, direction = worst_edge dnet in
          Some
            {
              endpoint = Flipflop_d (inst.Netlist.inst_name, dnet);
              data_arrival;
              direction;
              setup = entry.Library.setup_time;
            })
      ff_instances
  in
  let endpoint_list =
    List.sort
      (fun a b ->
        compare (b.data_arrival +. b.setup) (a.data_arrival +. a.setup))
      (po_endpoints @ ff_endpoints)
  in
  { netlist; library; config; loads; arr; min_arr; slews; prov; endpoint_list }

let netlist t = t.netlist
let library t = t.library
let config t = t.config
let arrival t net dir = t.arr.(dir_index dir).(net)
let min_arrival t net dir = t.min_arr.(dir_index dir).(net)

(* A simple constant hold requirement per flip-flop: a fraction of its
   setup window (transmission-gate flip-flops hold briefly after the
   edge). *)
let hold_fraction = 0.4

let hold_slacks t =
  List.filter_map
    (fun (inst : Netlist.instance) ->
      match List.assoc_opt "D" inst.Netlist.inputs with
      | None -> None
      | Some dnet ->
        let entry = resolve_entry_exn t.library inst in
        let earliest =
          Float.min
            (min_arrival t dnet Library.Rise)
            (min_arrival t dnet Library.Fall)
        in
        if earliest = infinity then None
        else
          let hold = hold_fraction *. entry.Library.setup_time in
          Some (inst.Netlist.inst_name, earliest -. hold))
    (Netlist.flipflops t.netlist)

let worst_hold_slack t =
  List.fold_left (fun acc (_, slack) -> Float.min acc slack) infinity
    (hold_slacks t)
let slew_at t net dir = t.slews.(dir_index dir).(net)
let load_on t net = t.loads.(net)
let endpoints t = t.endpoint_list

let min_period t =
  match t.endpoint_list with
  | [] -> 0.
  | worst :: _ -> worst.data_arrival +. worst.setup

let provenance t net dir = t.prov.(dir_index dir).(net)
