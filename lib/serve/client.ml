module Json = Aging_obs.Json
module Retry = Aging_util.Retry

type addr = [ `Unix of string | `Tcp of int ]

type error =
  | Transport of string
  | Refused of Protocol.error_code * string
  | Garbled of string

let error_to_string = function
  | Transport msg -> "transport: " ^ msg
  | Refused (code, msg) ->
    Printf.sprintf "refused (%s): %s" (Protocol.error_code_to_string code) msg
  | Garbled msg -> "garbled reply: " ^ msg

let retryable = function
  | Transport _ -> true
  | Refused ((Protocol.Overloaded | Protocol.Timeout | Protocol.Internal), _)
    -> true
  | Refused ((Protocol.Bad_request | Protocol.Shutting_down), _) -> false
  | Garbled _ -> false

type t = { fd : Unix.file_descr; mutable next_id : int }

(* Trace ids are client-stamped and only need to be unique enough to grep
   a soak's artifacts: pid + process-wide sequence.  [Atomic] so concurrent
   soak threads never share an id. *)
let trace_seq = Atomic.make 0

let fresh_trace_id () =
  Printf.sprintf "c%x-%x" (Unix.getpid ()) (Atomic.fetch_and_add trace_seq 1)

let connect (addr : addr) =
  let sockaddr, domain =
    match addr with
    | `Unix path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | `Tcp port ->
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port), Unix.PF_INET)
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok { fd; next_id = 0 }
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Bound the local wait for a reply: a request with a deadline must fail
   with a client-side transport timeout even if the server never answers
   (e.g. every worker just died).  Slack covers the reaper's poll period
   and the frame round-trip. *)
let reply_slack = 1.0

let wait_readable fd timeout_s =
  let rec go deadline =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then false
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> go deadline
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go deadline
  in
  go (Unix.gettimeofday () +. timeout_s)

let call ?id ?trace_id ?deadline_s t req =
  let id =
    match id with
    | Some i -> i
    | None ->
      let i = t.next_id in
      t.next_id <- i + 1;
      i
  in
  let meta = { Protocol.id = Some id; deadline_s; trace_id } in
  match Frame.write t.fd (Protocol.request_to_json ~meta req) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport (Unix.error_message e))
  | () ->
    let ready =
      match deadline_s with
      | None -> true
      | Some d -> wait_readable t.fd (d +. reply_slack)
    in
    if not ready then Error (Transport "no reply before deadline")
    else begin
      match Frame.read t.fd with
      | Error e -> Error (Transport (Frame.error_to_string e))
      | Ok json -> begin
        match Protocol.response_of_json json with
        | Error msg -> Error (Garbled msg)
        | Ok (reply_id, _) when reply_id <> Some id ->
          (* One request in flight per call: an id mismatch means the
             stream is desynchronized (e.g. a stale reply). *)
          Error (Garbled "response id mismatch")
        | Ok (_, Protocol.Reply data) -> Ok data
        | Ok (_, Protocol.Refused { code; message }) ->
          Error (Refused (code, message))
      end
    end

(* [with_backoff] has no fail-fast channel; a non-retryable error escapes
   the retry loop as an exception and is repackaged as exhaustion below. *)
exception Give_up of error

let request ?(backoff = Retry.default_backoff) ?rng ?sleep ?trace_id
    ?deadline_s addr req =
  (* One trace id per logical request, shared by every retry attempt, so
     the server-side artifacts show the retries as one story. *)
  let trace_id =
    match trace_id with Some _ as t -> t | None -> Some (fresh_trace_id ())
  in
  let seen = ref [] in
  let attempt_once ~attempt =
    match connect addr with
    | Error e ->
      seen := e :: !seen;
      Error e
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          match call ~id:attempt ?trace_id ?deadline_s conn req with
          | Ok data -> Ok data
          | Error e when retryable e ->
            seen := e :: !seen;
            Error e
          | Error e -> raise (Give_up e))
  in
  try Retry.with_backoff ?sleep ?rng backoff attempt_once
  with Give_up e -> Retry.Exhausted (List.rev (e :: !seen))
