type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  mutable is_closed : bool;
}

let create ~cap =
  if cap < 1 then invalid_arg "Bqueue.create: cap must be >= 1";
  {
    capacity = cap;
    q = Queue.create ();
    lock = Mutex.create ();
    not_empty = Condition.create ();
    is_closed = false;
  }

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.is_closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.push x t.q;
        Condition.signal t.not_empty;
        `Ok
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.is_closed then None
        else begin
          Condition.wait t.not_empty t.lock;
          wait ()
        end
      in
      wait ())

let close t =
  Mutex.protect t.lock (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.not_empty
      end)

let closed t = Mutex.protect t.lock (fun () -> t.is_closed)
let length t = Mutex.protect t.lock (fun () -> Queue.length t.q)
let cap t = t.capacity
