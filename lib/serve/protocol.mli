(** Typed requests and responses of the aging-analysis service.

    Every message is one JSON frame ({!Frame}).  Requests carry an ["op"]
    tag plus operands; responses are either a ["status": "ok"] reply with a
    data object or a ["status": "error"] refusal with a {e typed} code —
    overload shedding, deadline expiry and drain are protocol-visible
    outcomes a client can react to (back off, retry, go away), never hangs
    or closed sockets.

    An optional client-chosen [id] is echoed verbatim in the response, an
    optional per-request [deadline_s] overrides the server's default
    deadline, and an optional [trace] id (stamped by the client, opaque to
    the server) tags the request's spans, slow-request log lines, and
    flight-recorder events so one logical request can be followed across
    retries and across artifacts. *)

type request =
  | Ping  (** trivial round-trip; the canonical liveness/queue probe *)
  | Stats
      (** telemetry snapshot: served out-of-band (never queued), so it
          answers even when the request queue is saturated *)
  | Health
      (** health verdict (ok/degraded/unhealthy with machine-readable
          reasons: stalled workers, queue saturation, deadline-miss
          ratio, RSS ceiling); out-of-band like [Stats] so a wedged
          server still reports {e why} it is wedged *)
  | Shutdown  (** ask the server to drain gracefully and exit *)
  | Dump_flight
      (** flight-recorder dump: the surviving ring-buffer events as a JSON
          reply; served out-of-band like [Stats], so forensics are
          reachable even from a wedged server *)
  | Sleep of float
      (** diagnostics: hold a worker busy for that many seconds — how the
          tests and the chaos soak create controlled backlog *)
  | Crash
      (** diagnostics: kill the executing worker domain, exercising the
          supervisor's restart path *)
  | Guardband of { design : string; corner : Aging_physics.Scenario.corner }
      (** aging guardband of a named benchmark design at a corner *)
  | Delay of {
      cell : string;
      corner : Aging_physics.Scenario.corner;
      slew : float option;  (** default: the library axes' middle slew *)
      load : float option;  (** default: the library axes' middle load *)
    }
      (** worst arc delay of one cell at a corner — the small repeated
          lookup a resident service amortizes *)

type error_code =
  | Overloaded      (** request queue full; back off and retry *)
  | Timeout         (** deadline expired before a worker finished it *)
  | Bad_request     (** unparseable or invalid operands *)
  | Internal        (** handler raised; the worker survived *)
  | Shutting_down   (** draining: in-flight work finishes, new work refused *)

type response =
  | Reply of Aging_obs.Json.t
  | Refused of { code : error_code; message : string }

type meta = {
  id : int option;          (** client correlation id, echoed back *)
  deadline_s : float option;  (** per-request deadline override *)
  trace_id : string option;
      (** client-stamped trace id (wire field ["trace"]); carried through
          spans, logs, and flight events, never interpreted *)
}

val no_meta : meta

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val request_to_json : ?meta:meta -> request -> Aging_obs.Json.t
val request_of_json : Aging_obs.Json.t -> (meta * request, string) result

val response_to_json : ?id:int -> response -> Aging_obs.Json.t
val response_of_json :
  Aging_obs.Json.t -> (int option * response, string) result

val request_op : request -> string
(** The ["op"] tag, for logging and metrics labels. *)
