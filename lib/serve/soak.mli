(** Concurrent chaos soak: prove the service degrades gracefully.

    [run] hammers a (typically chaos-injected) server with [clients]
    concurrent threads for [duration_s]: mostly [Ping], a fraction of
    [Sleep] requests that build real backlog, and a seeded fraction of
    deliberately corrupt frames straight onto the socket.  Every client
    uses {!Client.request} — capped, seeded exponential backoff — so the
    soak also exercises the retry path end to end.

    The acceptance criterion the report encodes: the server never
    crashes or deadlocks — every attempt ends in a reply or a typed
    refusal within its deadline, and the server still answers [Ping] and
    [Stats] after the storm ([server_alive]). *)

type config = {
  addr : Client.addr;
  clients : int;        (** concurrent client threads; >= 1 *)
  duration_s : float;   (** wall-clock soak length *)
  deadline_s : float;   (** per-request deadline *)
  seed : int;           (** workload + jitter + corrupt-frame seed *)
  corrupt_rate : float; (** fraction of iterations sending a garbage frame *)
  heavy_rate : float;   (** fraction issuing [Sleep sleep_s] instead of [Ping] *)
  sleep_s : float;
}

val default : addr:Client.addr -> config
(** 8 clients, 2 s, 0.25 s deadlines, 5% corrupt frames, 15% sleeps of
    50 ms, seed 42. *)

type report = {
  attempts : int;          (** individual request attempts (incl. retries) *)
  ok : int;
  refused_overloaded : int;
  refused_timeout : int;
  refused_internal : int;
  refused_shutting_down : int;
  refused_bad_request : int;
  transport_errors : int;
  garbled : int;
  exhausted : int;         (** requests whose whole retry budget failed *)
  corrupt_sent : int;
  elapsed_s : float;
  qps : float;             (** successful requests per second *)
  server_alive : bool;     (** [Ping] + [Stats] answered after the storm *)
  lat_p50_ms : float option;
      (** server-side total-latency p50 across all ops, read from the
          post-storm stats snapshot; [None] if the server was unreachable *)
  lat_p95_ms : float option;
  health : Dash.health option;
      (** post-storm [Health] verdict (status, reasons, cumulative stall
          count) — how a chaos soak proves the watchdog saw its stalls *)
  srv_hwm_mb : float option;
      (** the {e server's} peak RSS ([runtime.mem.hwm_mb] gauge), read
          from the post-storm stats snapshot *)
  srv_minor_words : float option;  (** server GC minor words *)
  srv_major_collections : float option;  (** server major collections *)
}

val run : config -> report
(** @raise Invalid_argument on a non-positive client count/duration or an
    out-of-range rate. *)

val report_json : report -> Aging_obs.Json.t
val report_to_string : report -> string
