module Json = Aging_obs.Json
module Rng = Aging_util.Rng
module Retry = Aging_util.Retry

type config = {
  addr : Client.addr;
  clients : int;
  duration_s : float;
  deadline_s : float;
  seed : int;
  corrupt_rate : float;
  heavy_rate : float;
  sleep_s : float;
}

let default ~addr =
  {
    addr;
    clients = 8;
    duration_s = 2.;
    deadline_s = 0.25;
    seed = 42;
    corrupt_rate = 0.05;
    heavy_rate = 0.15;
    sleep_s = 0.05;
  }

type report = {
  attempts : int;
  ok : int;
  refused_overloaded : int;
  refused_timeout : int;
  refused_internal : int;
  refused_shutting_down : int;
  refused_bad_request : int;
  transport_errors : int;
  garbled : int;
  exhausted : int;
  corrupt_sent : int;
  elapsed_s : float;
  qps : float;
  server_alive : bool;
  lat_p50_ms : float option;
  lat_p95_ms : float option;
  health : Dash.health option;
  srv_hwm_mb : float option;
  srv_minor_words : float option;
  srv_major_collections : float option;
}

(* Per-thread tally; summed after join so the storm itself shares nothing. *)
type tally = {
  mutable t_attempts : int;
  mutable t_ok : int;
  mutable t_overloaded : int;
  mutable t_timeout : int;
  mutable t_internal : int;
  mutable t_shutting_down : int;
  mutable t_bad_request : int;
  mutable t_transport : int;
  mutable t_garbled : int;
  mutable t_exhausted : int;
  mutable t_corrupt : int;
}

let fresh_tally () =
  {
    t_attempts = 0;
    t_ok = 0;
    t_overloaded = 0;
    t_timeout = 0;
    t_internal = 0;
    t_shutting_down = 0;
    t_bad_request = 0;
    t_transport = 0;
    t_garbled = 0;
    t_exhausted = 0;
    t_corrupt = 0;
  }

let count_error tally = function
  | Client.Transport _ -> tally.t_transport <- tally.t_transport + 1
  | Client.Garbled _ -> tally.t_garbled <- tally.t_garbled + 1
  | Client.Refused (code, _) -> (
    match code with
    | Protocol.Overloaded -> tally.t_overloaded <- tally.t_overloaded + 1
    | Protocol.Timeout -> tally.t_timeout <- tally.t_timeout + 1
    | Protocol.Internal -> tally.t_internal <- tally.t_internal + 1
    | Protocol.Shutting_down ->
      tally.t_shutting_down <- tally.t_shutting_down + 1
    | Protocol.Bad_request -> tally.t_bad_request <- tally.t_bad_request + 1)

(* A deliberately broken wire exchange: bogus length prefixes, truncated
   frames, non-JSON payloads.  The server must shed these (bad_request or
   hang-up), never crash. *)
let send_corrupt rng addr =
  let garbage =
    match Rng.int rng 3 with
    | 0 -> "\xff\xff\xff\xffBOOM"       (* absurd length prefix *)
    | 1 -> "\x00\x00\x00\x10{\"op\":"   (* truncated payload *)
    | _ -> "\x00\x00\x00\x05hello"      (* right length, not JSON *)
  in
  let sockaddr, domain =
    match addr with
    | `Unix path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | `Tcp port ->
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port), Unix.PF_INET)
  in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
    try
      Unix.connect fd sockaddr;
      Frame.write_raw fd garbage;
      (* Give the server a beat to answer or hang up, then leave. *)
      ignore (Unix.select [ fd ] [] [] 0.05);
      Unix.close fd
    with Unix.Unix_error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))

let client_loop cfg ci tally =
  let rng = Rng.create (Rng.derive (Int64.of_int cfg.seed) (ci + 1)) in
  (* Backoff sized to the soak: short base, budget bounded by the
     deadline so a single request cannot outlive the storm by much. *)
  let backoff =
    {
      Retry.base = 0.005;
      factor = 2.;
      cap = 0.1;
      jitter = 0.5;
      max_attempts = 4;
      budget = cfg.deadline_s *. 4.;
    }
  in
  let stop_at = Unix.gettimeofday () +. cfg.duration_s in
  let rec loop iter =
    if Unix.gettimeofday () >= stop_at then ()
    else begin
      let iter_rng = Rng.substream rng iter in
      let u = Rng.float iter_rng in
      if u < cfg.corrupt_rate then begin
        tally.t_corrupt <- tally.t_corrupt + 1;
        send_corrupt iter_rng cfg.addr
      end
      else begin
        let req =
          if u < cfg.corrupt_rate +. cfg.heavy_rate then
            Protocol.Sleep cfg.sleep_s
          else Protocol.Ping
        in
        let outcome =
          Client.request ~backoff ~rng:iter_rng ~deadline_s:cfg.deadline_s
            cfg.addr req
        in
        let failed_attempts = List.length (Retry.errors outcome) in
        let succeeded = Option.is_some (Retry.succeeded outcome) in
        tally.t_attempts <-
          tally.t_attempts + failed_attempts + (if succeeded then 1 else 0);
        List.iter (count_error tally) (Retry.errors outcome);
        if succeeded then tally.t_ok <- tally.t_ok + 1
        else tally.t_exhausted <- tally.t_exhausted + 1
      end;
      loop (iter + 1)
    end
  in
  loop 0

(* Total-latency percentiles across all ops, read back from the server's
   stats snapshot after the storm: the server owns the histograms, the soak
   only reports them.  [None] when the server is gone or predates the
   latency summary. *)
let fetch_latency addr =
  match Client.connect addr with
  | Error _ -> None
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.call ~deadline_s:2. conn Protocol.Stats with
        | Error _ -> None
        | Ok stats ->
          let ( >>= ) o f = Option.bind o f in
          Json.member "latency" stats >>= Json.member "all"
          >>= Json.member "total_ms"
          >>= fun tot ->
          (match
             ( Json.member "p50" tot >>= Json.to_float,
               Json.member "p95" tot >>= Json.to_float )
           with
          | Some p50, Some p95 -> Some (p50, p95)
          | _ -> None))

(* The server's own runtime gauges (peak RSS, GC totals) out of the
   post-storm stats snapshot — the daemon samples them, the soak only
   reports, so the QoR rows describe the process under load, not the
   client harness. *)
let fetch_runtime addr =
  match Client.connect addr with
  | Error _ -> (None, None, None)
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.call ~deadline_s:2. conn Protocol.Stats with
        | Error _ -> (None, None, None)
        | Ok stats ->
          let ( >>= ) o f = Option.bind o f in
          let gauge name =
            Json.member "metrics" stats >>= Json.member name
            >>= Json.member "value" >>= Json.to_float
          in
          ( gauge "runtime.mem.hwm_mb",
            gauge "runtime.gc.minor_words",
            gauge "runtime.gc.major_collections" ))

let fetch_health addr =
  match Client.connect addr with
  | Error _ -> None
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.call ~deadline_s:2. conn Protocol.Health with
        | Error _ -> None
        | Ok payload -> Result.to_option (Dash.of_health_json payload))

let probe_alive addr =
  let ok req =
    match Client.connect addr with
    | Error _ -> false
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.call ~deadline_s:2. conn req with
          | Ok _ -> true
          | Error _ -> false)
  in
  ok Protocol.Ping && ok Protocol.Stats

let run cfg =
  if cfg.clients < 1 then invalid_arg "Soak.run: clients must be >= 1";
  if cfg.duration_s <= 0. then invalid_arg "Soak.run: duration_s must be > 0";
  if cfg.deadline_s <= 0. then invalid_arg "Soak.run: deadline_s must be > 0";
  let rate name r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Soak.run: %s must be in [0, 1]" name)
  in
  rate "corrupt_rate" cfg.corrupt_rate;
  rate "heavy_rate" cfg.heavy_rate;
  let tallies = Array.init cfg.clients (fun _ -> fresh_tally ()) in
  let started = Unix.gettimeofday () in
  let threads =
    Array.init cfg.clients (fun ci ->
        Thread.create (fun () -> client_loop cfg ci tallies.(ci)) ())
  in
  Array.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. started in
  let latency = fetch_latency cfg.addr in
  let srv_hwm_mb, srv_minor_words, srv_major_collections =
    fetch_runtime cfg.addr
  in
  let health = fetch_health cfg.addr in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let ok = sum (fun t -> t.t_ok) in
  {
    attempts = sum (fun t -> t.t_attempts);
    ok;
    refused_overloaded = sum (fun t -> t.t_overloaded);
    refused_timeout = sum (fun t -> t.t_timeout);
    refused_internal = sum (fun t -> t.t_internal);
    refused_shutting_down = sum (fun t -> t.t_shutting_down);
    refused_bad_request = sum (fun t -> t.t_bad_request);
    transport_errors = sum (fun t -> t.t_transport);
    garbled = sum (fun t -> t.t_garbled);
    exhausted = sum (fun t -> t.t_exhausted);
    corrupt_sent = sum (fun t -> t.t_corrupt);
    elapsed_s;
    qps = (if elapsed_s > 0. then float_of_int ok /. elapsed_s else 0.);
    server_alive = probe_alive cfg.addr;
    lat_p50_ms = Option.map fst latency;
    lat_p95_ms = Option.map snd latency;
    health;
    srv_hwm_mb;
    srv_minor_words;
    srv_major_collections;
  }

let report_json r =
  Json.Obj
    ([
      ("attempts", Json.Int r.attempts);
      ("ok", Json.Int r.ok);
      ("refused_overloaded", Json.Int r.refused_overloaded);
      ("refused_timeout", Json.Int r.refused_timeout);
      ("refused_internal", Json.Int r.refused_internal);
      ("refused_shutting_down", Json.Int r.refused_shutting_down);
      ("refused_bad_request", Json.Int r.refused_bad_request);
      ("transport_errors", Json.Int r.transport_errors);
      ("garbled", Json.Int r.garbled);
      ("exhausted", Json.Int r.exhausted);
      ("corrupt_sent", Json.Int r.corrupt_sent);
      ("elapsed_s", Json.of_float r.elapsed_s);
      ("qps", Json.of_float r.qps);
      ("server_alive", Json.Bool r.server_alive);
    ]
    @ (match r.lat_p50_ms with
      | Some p -> [ ("lat_p50_ms", Json.of_float p) ]
      | None -> [])
    @ (match r.lat_p95_ms with
      | Some p -> [ ("lat_p95_ms", Json.of_float p) ]
      | None -> [])
    @ (match r.health with
      | Some h ->
        [
          ("health_status", Json.String h.Dash.status);
          ("stalled_total", Json.Int h.Dash.stalled_total);
        ]
      | None -> [])
    @ (match r.srv_hwm_mb with
      | Some v -> [ ("srv_hwm_mb", Json.of_float v) ]
      | None -> [])
    @
    match r.srv_minor_words with
    | Some v -> [ ("srv_minor_words", Json.of_float v) ]
    | None -> [])

let report_to_string r =
  let lat =
    match (r.lat_p50_ms, r.lat_p95_ms) with
    | Some p50, Some p95 ->
      Printf.sprintf "; total latency p50/p95 %.1f/%.1f ms" p50 p95
    | _ -> ""
  in
  let lat =
    lat
    ^ (match r.health with
      | Some h ->
        Printf.sprintf "; health %s (%d stall(s))" h.Dash.status
          h.Dash.stalled_total
      | None -> "")
    ^
    match r.srv_hwm_mb with
    | Some v -> Printf.sprintf "; server peak rss %.0f MB" v
    | None -> ""
  in
  Printf.sprintf
    "soak: %d ok / %d attempts in %.2fs (%.0f q/s); refused: %d overloaded, \
     %d timeout, %d internal, %d bad_request, %d shutting_down; %d \
     transport, %d garbled, %d exhausted, %d corrupt frames sent; server \
     alive: %b%s"
    r.ok r.attempts r.elapsed_s r.qps r.refused_overloaded r.refused_timeout
    r.refused_internal r.refused_bad_request r.refused_shutting_down
    r.transport_errors r.garbled r.exhausted r.corrupt_sent r.server_alive
    lat
