module Json = Aging_obs.Json
module Scenario = Aging_physics.Scenario

type request =
  | Ping
  | Stats
  | Health
  | Shutdown
  | Dump_flight
  | Sleep of float
  | Crash
  | Guardband of { design : string; corner : Scenario.corner }
  | Delay of {
      cell : string;
      corner : Scenario.corner;
      slew : float option;
      load : float option;
    }

type error_code =
  | Overloaded
  | Timeout
  | Bad_request
  | Internal
  | Shutting_down

type response =
  | Reply of Json.t
  | Refused of { code : error_code; message : string }

type meta = {
  id : int option;
  deadline_s : float option;
  trace_id : string option;
}

let no_meta = { id = None; deadline_s = None; trace_id = None }

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Bad_request -> "bad_request"
  | Internal -> "internal"
  | Shutting_down -> "shutting_down"

let error_code_of_string = function
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "bad_request" -> Some Bad_request
  | "internal" -> Some Internal
  | "shutting_down" -> Some Shutting_down
  | _ -> None

let request_op = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"
  | Dump_flight -> "dump_flight"
  | Sleep _ -> "sleep"
  | Crash -> "crash"
  | Guardband _ -> "guardband"
  | Delay _ -> "delay"

(* Corners serialize as their two lambdas; [Json.of_float] keeps the exact
   values (17 significant digits), matching the exact-lambda cache keys
   downstream. *)
let corner_fields (c : Scenario.corner) =
  [ ("lambda_p", Json.of_float c.Scenario.lambda_p);
    ("lambda_n", Json.of_float c.Scenario.lambda_n) ]

let request_to_json ?(meta = no_meta) req =
  let meta_fields =
    (match meta.id with Some id -> [ ("id", Json.Int id) ] | None -> [])
    @ (match meta.deadline_s with
      | Some d -> [ ("deadline_s", Json.of_float d) ]
      | None -> [])
    @
    match meta.trace_id with
    | Some tr -> [ ("trace", Json.String tr) ]
    | None -> []
  in
  let op name fields = Json.Obj (("op", Json.String name) :: meta_fields @ fields) in
  match req with
  | Ping -> op "ping" []
  | Stats -> op "stats" []
  | Health -> op "health" []
  | Shutdown -> op "shutdown" []
  | Dump_flight -> op "dump_flight" []
  | Sleep s -> op "sleep" [ ("seconds", Json.of_float s) ]
  | Crash -> op "crash" []
  | Guardband { design; corner } ->
    op "guardband" (("design", Json.String design) :: corner_fields corner)
  | Delay { cell; corner; slew; load } ->
    op "delay"
      (("cell", Json.String cell)
      :: corner_fields corner
      @ (match slew with Some s -> [ ("slew", Json.of_float s) ] | None -> [])
      @ match load with Some l -> [ ("load", Json.of_float l) ] | None -> [])

let float_member name json = Option.bind (Json.member name json) Json.to_float

let string_member name json =
  match Json.member name json with Some (Json.String s) -> Some s | _ -> None

let corner_of_json json =
  match (float_member "lambda_p" json, float_member "lambda_n" json) with
  | Some lambda_p, Some lambda_n -> begin
    match Scenario.corner ~lambda_p ~lambda_n with
    | c -> Ok c
    | exception Invalid_argument msg -> Error msg
  end
  | None, _ -> Error "missing lambda_p"
  | _, None -> Error "missing lambda_n"

let request_of_json json =
  let meta =
    {
      id = (match Json.member "id" json with Some (Json.Int i) -> Some i | _ -> None);
      deadline_s = float_member "deadline_s" json;
      trace_id = string_member "trace" json;
    }
  in
  let with_corner k =
    match corner_of_json json with Ok c -> k c | Error msg -> Error msg
  in
  let req =
    match string_member "op" json with
    | None -> Error "missing op"
    | Some "ping" -> Ok Ping
    | Some "stats" -> Ok Stats
    | Some "health" -> Ok Health
    | Some "shutdown" -> Ok Shutdown
    | Some "dump_flight" -> Ok Dump_flight
    | Some "crash" -> Ok Crash
    | Some "sleep" -> begin
      match float_member "seconds" json with
      | Some s when s >= 0. && s < 3600. -> Ok (Sleep s)
      | Some _ -> Error "sleep: seconds out of range"
      | None -> Error "sleep: missing seconds"
    end
    | Some "guardband" -> begin
      match string_member "design" json with
      | Some design -> with_corner (fun corner -> Ok (Guardband { design; corner }))
      | None -> Error "guardband: missing design"
    end
    | Some "delay" -> begin
      match string_member "cell" json with
      | Some cell ->
        with_corner (fun corner ->
            Ok
              (Delay
                 {
                   cell;
                   corner;
                   slew = float_member "slew" json;
                   load = float_member "load" json;
                 }))
      | None -> Error "delay: missing cell"
    end
    | Some other -> Error ("unknown op " ^ other)
  in
  Result.map (fun r -> (meta, r)) req

let response_to_json ?id resp =
  let id_field = match id with Some i -> [ ("id", Json.Int i) ] | None -> [] in
  match resp with
  | Reply data ->
    Json.Obj ((("status", Json.String "ok") :: id_field) @ [ ("data", data) ])
  | Refused { code; message } ->
    Json.Obj
      ((("status", Json.String "error") :: id_field)
      @ [
          ("code", Json.String (error_code_to_string code));
          ("message", Json.String message);
        ])

let response_of_json json =
  let id =
    match Json.member "id" json with Some (Json.Int i) -> Some i | _ -> None
  in
  match string_member "status" json with
  | Some "ok" -> begin
    match Json.member "data" json with
    | Some data -> Ok (id, Reply data)
    | None -> Error "ok response without data"
  end
  | Some "error" -> begin
    match string_member "code" json with
    | Some code_s -> begin
      match error_code_of_string code_s with
      | Some code ->
        let message = Option.value ~default:"" (string_member "message" json) in
        Ok (id, Refused { code; message })
      | None -> Error ("unknown error code " ^ code_s)
    end
    | None -> Error "error response without code"
  end
  | Some other -> Error ("unknown status " ^ other)
  | None -> Error "missing status"
