(** Client side of the aging-analysis service: [relaware query].

    A {!t} is one connection; {!call} is one framed round-trip.
    {!request} is the robust path: capped exponential backoff with
    deterministic seeded jitter ({!Aging_util.Retry.with_backoff}),
    reconnecting on transport failure and retrying the refusals that are
    transient by contract ([overloaded], [timeout], [internal]) while
    failing fast on the ones that are not ([bad_request],
    [shutting_down]). *)

type addr = [ `Unix of string | `Tcp of int ]

type error =
  | Transport of string
      (** connect/read/write failure, or the server closed mid-exchange *)
  | Refused of Protocol.error_code * string
      (** typed refusal from the server *)
  | Garbled of string
      (** the reply frame did not parse as a protocol response *)

val error_to_string : error -> string

val retryable : error -> bool
(** [Transport], [Refused Overloaded], [Refused Timeout] and
    [Refused Internal] are worth retrying; [Bad_request], [Shutting_down]
    and [Garbled] are not. *)

type t

val connect : addr -> (t, error) result
val close : t -> unit

val call :
  ?id:int -> ?trace_id:string -> ?deadline_s:float -> t ->
  Protocol.request -> (Aging_obs.Json.t, error) result
(** One round-trip on an open connection.  [deadline_s] both travels in
    the request (server-side deadline) and bounds the local wait for the
    reply (plus slack), so a killed worker cannot hang the client.
    [trace_id] travels in the envelope's [trace] field and tags the
    request's server-side spans, flight events and slow-request log
    lines; absent by default on a bare [call]. *)

val request :
  ?backoff:Aging_util.Retry.backoff ->
  ?rng:Aging_util.Rng.t ->
  ?sleep:(float -> unit) ->
  ?trace_id:string ->
  ?deadline_s:float ->
  addr ->
  Protocol.request ->
  (Aging_obs.Json.t, error) Aging_util.Retry.outcome
(** Connect-call-close per attempt under the backoff policy (default
    {!Aging_util.Retry.default_backoff}).  [rng] seeds the jitter:
    a fixed seed yields a bit-identical retry schedule.  Every logical
    request is stamped with a trace id — [trace_id] if given, otherwise a
    fresh [c<pid>-<seq>] — shared across its retry attempts. *)

val fresh_trace_id : unit -> string
(** A new process-unique trace id ([c<pid>-<seq>]). *)
