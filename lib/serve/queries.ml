module Json = Aging_obs.Json
module Library = Aging_liberty.Library
module Deglib = Aging_core.Degradation_library
module Guardband = Aging_core.Guardband
module Designs = Aging_designs.Designs

type t = {
  deglib : Deglib.t;
  designs : (string * Aging_netlist.Netlist.t) list Lazy.t;
      (* netlist builders are cheap but not free; built once, on first use *)
}

let create ?backend ?cells ?axes ?years ?cache_dir ?jobs ?memo_cap () =
  let deglib =
    Deglib.create ?backend ?cells ?axes ?years ?cache_dir ?jobs ?memo_cap ()
  in
  { deglib; designs = lazy (Designs.all ()) }

let deglib t = t.deglib

let find_design t name =
  List.assoc_opt name (Lazy.force t.designs)

let guardband_json (e : Guardband.estimate) =
  Json.Obj
    [
      ("fresh_period_s", Json.of_float e.fresh_period);
      ("aged_period_s", Json.of_float e.aged_period);
      ("guardband_s", Json.of_float e.guardband);
    ]

(* Worst delay/slew of one arc at a given operating condition. *)
let arc_json arc ~slew ~load =
  let delay dir = Library.delay_of arc ~dir ~slew ~load in
  let out_slew dir = Library.out_slew_of arc ~dir ~slew ~load in
  Json.Obj
    [
      ("from_pin", Json.String arc.Library.from_pin);
      ("to_pin", Json.String arc.Library.to_pin);
      ("delay_rise_s", Json.of_float (delay Library.Rise));
      ("delay_fall_s", Json.of_float (delay Library.Fall));
      ("slew_rise_s", Json.of_float (out_slew Library.Rise));
      ("slew_fall_s", Json.of_float (out_slew Library.Fall));
    ]

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Stats -> Ok (Aging_obs.Metrics.to_json ())
  | Protocol.Health ->
    (* Served inline by the server (which owns the watchdog state); a
       handler without a server has no verdict to offer beyond "up". *)
    Ok
      (Json.Obj
         [ ("status", Json.String "ok"); ("reasons", Json.List []) ])
  | Protocol.Shutdown ->
    (* Admission control: the server answers shutdown inline and drains;
       reaching the handler means a client sent it to a non-draining path. *)
    Ok (Json.Obj [ ("draining", Json.Bool true) ])
  | Protocol.Dump_flight ->
    (* Also served inline by the server; answered here too so the handler
       stays total (and usable without a server, e.g. in tests). *)
    Ok (Server.flight_json ())
  | Protocol.Sleep s ->
    Unix.sleepf s;
    Ok (Json.Obj [ ("slept_s", Json.of_float s) ])
  | Protocol.Crash -> raise Chaos.Chaos_kill
  | Protocol.Guardband { design; corner } -> begin
    match find_design t design with
    | None ->
      Error
        ( Protocol.Bad_request,
          Printf.sprintf "unknown design %S (designs: %s)" design
            (String.concat ", " (List.map fst (Lazy.force t.designs))) )
    | Some netlist ->
      let estimate = Guardband.static ~deglib:t.deglib ~corner netlist in
      Ok
        (Json.Obj
           [
             ("design", Json.String design);
             ("corner", Json.String (Aging_physics.Scenario.suffix corner));
             ("estimate", guardband_json estimate);
           ])
  end
  | Protocol.Delay { cell; corner; slew; load } -> begin
    let lib = Deglib.corner t.deglib corner in
    match Library.find lib cell with
    | None -> Error (Protocol.Bad_request, Printf.sprintf "unknown cell %S" cell)
    | Some entry ->
      let axes = Deglib.axes t.deglib in
      (* Default OPC: the middle of the characterized grid. *)
      let mid a = a.(Array.length a / 2) in
      let slew = Option.value slew ~default:(mid axes.Aging_liberty.Axes.slews) in
      let load = Option.value load ~default:(mid axes.Aging_liberty.Axes.loads) in
      if entry.Library.arcs = [] then
        Error (Protocol.Bad_request, Printf.sprintf "cell %S has no timing arcs" cell)
      else
        Ok
          (Json.Obj
             [
               ("cell", Json.String cell);
               ("corner", Json.String (Aging_physics.Scenario.suffix corner));
               ("slew_s", Json.of_float slew);
               ("load_f", Json.of_float load);
               ( "arcs",
                 Json.List
                   (List.map (fun arc -> arc_json arc ~slew ~load) entry.Library.arcs)
               );
             ])
  end
