(** The resilient aging-analysis daemon.

    Concurrency layout:

    - one {e accept thread} (started by {!start}) owns the listening
      socket and the shutdown state machine;
    - one systhread per connection reads frames, answers [Ping] /
      [Stats] / [Dump_flight] / [Shutdown] inline (so health checks and
      forensics work even when the request queue is saturated) and
      admits everything else to a
      {e bounded} {!Bqueue} — a full queue is an immediate typed
      [overloaded] refusal, never a blocked reader or an unbounded
      buffer;
    - a fixed pool of {e worker domains} pops jobs and runs the handler;
      a worker that dies (a handler [Chaos_kill], or injected chaos) is
      joined and respawned by a {e supervisor thread} without the accept
      loop ever stalling;
    - a {e reaper thread} polls in-flight jobs and writes typed
      [timeout] refusals for expired deadlines — including jobs still
      sitting in the queue, which are cancelled before a worker wastes
      time on them (the worker sees the claimed flag and skips).

    Exactly-one-response is enforced by an atomic per-job [replied]
    flag: whoever claims it (worker or reaper) writes the response.

    Graceful drain ({!stop}, a [Shutdown] request, or SIGTERM/SIGINT via
    {!install_signal_handlers}): the listener closes, new work is
    refused with [shutting_down], admitted work is finished (bounded by
    [drain_timeout_s]; the reaper keeps expiring deadlines throughout),
    then workers, supervisor and reaper are joined and remaining
    connections shut down.  The state machine is
    [Running -> Draining -> Stopped] and never skips the drain. *)

type config = {
  addr : [ `Unix of string | `Tcp of int ];
      (** [`Unix path] (path limit ~100 chars) or [`Tcp port] on loopback *)
  workers : int;              (** worker domains; >= 1 *)
  queue_cap : int;            (** bounded request queue; >= 1 *)
  default_deadline_s : float option;
      (** applied when a request carries no [deadline_s] of its own *)
  drain_timeout_s : float;    (** max wait for in-flight work on drain *)
  max_frame : int;            (** per-frame payload cap in bytes *)
  chaos : Chaos.t;            (** fault injection; {!Chaos.none} in production *)
  slow_ms : float option;
      (** warn-log any request whose total latency (admission to reply)
          meets this threshold, with trace id and queue/exec phase
          breakdown; [None] (the default) disables the log *)
  metrics_port : int option;
      (** when set, serve the OpenMetrics exposition on
          [http://127.0.0.1:port/metrics] (plus [/health]) via
          {!Metrics_http}; [0] picks an ephemeral port — see
          {!metrics_port} *)
  stall_after_s : float option;
      (** watchdog budget: a worker whose current job executes longer
          than this is flagged stalled (flight event + the
          [serve.worker.stalled] counter, surfaced by [Health]);
          [None] disables the watchdog *)
  rss_limit_mb : float option;
      (** [Health] reports [unhealthy] ([rss_ceiling]) when the sampled
          [runtime.mem.rss_mb] gauge exceeds this *)
}

val default_config : config
(** Unix socket (caller must set [addr]), 2 workers, queue of 64, no
    default deadline, 5 s drain, {!Frame.default_max_frame}, no chaos,
    no slow-request log, no metrics port, 5 s stall budget, no RSS
    ceiling. *)

type handler =
  Protocol.request -> (Aging_obs.Json.t, Protocol.error_code * string) result
(** Evaluates one queued request; exceptions become typed [internal]
    refusals, except {!Chaos.Chaos_kill} which additionally takes the
    worker domain down (and the supervisor restarts it). *)

type t

val start : handler:handler -> config -> t
(** Binds and listens, spawns workers / supervisor / reaper and the
    accept thread, and returns immediately.
    @raise Invalid_argument on a bad config (workers or queue_cap < 1,
    non-positive drain timeout).
    @raise Unix.Unix_error when the address cannot be bound. *)

val stop : t -> unit
(** Request a graceful drain.  Idempotent, non-blocking, and safe to
    call from a signal handler (lock-free: an atomic flag plus a
    self-pipe byte). *)

val await : t -> unit
(** Block until the server reaches [Stopped] (all threads and domains
    joined).  [start] + [install_signal_handlers] + [await] is the whole
    daemon main loop. *)

val install_signal_handlers : ?flight_dump:string -> t -> unit
(** SIGTERM and SIGINT trigger {!stop}.  When [flight_dump] is given,
    SIGQUIT additionally dumps the flight recorder to that path as JSONL
    {e without} stopping the server (dump-and-keep-running forensics). *)

val running : t -> bool
(** True until drain begins. *)

val stats_json : t -> Aging_obs.Json.t
(** The [Stats] payload: live queue length / in-flight count / state /
    uptime, a ["latency"] object summarizing every
    [serve.latency.<op>.<phase>_ms] histogram as
    [op -> phase -> {count, p50, p95, p99}] (ms; ["all"] aggregates all
    ops), plus the process metrics registry (which includes the [serve.*]
    counters, the sampled [serve.queue_depth] / [serve.inflight] gauges
    and the degradation-library cache counters). *)

val health_json : t -> Aging_obs.Json.t
(** The [Health] payload: ["status"] of [ok] / [degraded] / [unhealthy],
    a ["reasons"] list of [{code, severity, detail}] objects
    ([worker_stalled], [rss_ceiling], [queue_saturated],
    [deadline_misses], [draining]) and a ["checks"] object with the raw
    numbers behind the verdict (including the cumulative
    [stalled_total], so an injected stall remains visible after the
    worker recovers).  Takes one runtime sample so the RSS check reads
    fresh gauges. *)

val metrics_port : t -> int option
(** The bound exposition port when [config.metrics_port] was set and the
    listener started (the actual port when configured as [0]). *)

val flight_json : unit -> Aging_obs.Json.t
(** The [Dump_flight] payload: the process-global flight recorder's
    surviving events plus recorded/overwritten/capacity counters. *)

val dump_flight_to : string -> unit
(** Write the process-global flight recorder to [path] as JSONL (one
    event per line), logging instead of raising on failure — usable from
    crash handlers.  This is what the SIGQUIT handler calls. *)

val worker_restarts : t -> int
(** Number of worker domains the supervisor has respawned. *)
