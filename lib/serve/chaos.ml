module Rng = Aging_util.Rng

type action =
  | Pass
  | Kill_worker
  | Crash_handler
  | Slow of float

type t = {
  kill_rate : float;
  crash_rate : float;
  slow_rate : float;
  slow_s : float;
  seed : int;
}

let none = { kill_rate = 0.; crash_rate = 0.; slow_rate = 0.; slow_s = 0.; seed = 0 }

let is_none t =
  t.kill_rate = 0. && t.crash_rate = 0. && t.slow_rate = 0.

let validated t =
  let rate name r =
    if r < 0. || r > 1. || Float.is_nan r then
      invalid_arg (Printf.sprintf "Chaos: %s must be in [0, 1]" name)
  in
  rate "kill_rate" t.kill_rate;
  rate "crash_rate" t.crash_rate;
  rate "slow_rate" t.slow_rate;
  if t.slow_s < 0. then invalid_arg "Chaos: slow_s must be >= 0";
  t

let decide t ~request_id =
  if is_none t then Pass
  else begin
    (* One substream per request id: the verdict depends only on
       (seed, request_id), never on which worker got the job or when. *)
    let rng = Rng.create (Rng.derive (Int64.of_int t.seed) (request_id + 1)) in
    let u = Rng.float rng in
    if u < t.kill_rate then Kill_worker
    else if u < t.kill_rate +. t.crash_rate then Crash_handler
    else if u < t.kill_rate +. t.crash_rate +. t.slow_rate then Slow t.slow_s
    else Pass
  end

exception Chaos_kill
exception Chaos_crash
