(** The aging-analysis request handler behind {!Server}.

    Wraps a {!Aging_core.Degradation_library.t} (bounded LRU memo, so a
    resident daemon serving arbitrary corners stays bounded in memory)
    plus the benchmark design catalog, and evaluates one
    {!Protocol.request} to a JSON payload or a typed error.  Pure with
    respect to the server: no sockets, no threads — directly unit-testable
    and reusable by the CLI. *)

type t

val create :
  ?backend:Aging_liberty.Characterize.backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?axes:Aging_liberty.Axes.t ->
  ?years:float ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?memo_cap:int ->
  unit ->
  t
(** Same knobs (and defaults) as {!Aging_core.Degradation_library.create}. *)

val deglib : t -> Aging_core.Degradation_library.t

val handle :
  t -> Protocol.request -> (Aging_obs.Json.t, Protocol.error_code * string) result
(** Evaluate one request.  [Guardband] for an unknown design and [Delay]
    for an unknown cell are [Bad_request].  [Crash] raises
    {!Chaos.Chaos_kill}: the server's worker loop replies with a typed
    [internal] error and then lets the exception take the worker domain
    down, exercising the supervisor's restart path end to end. *)
