(** Minimal HTTP/1.x responder for Prometheus scrapes.

    [relaware serve --metrics-port P] starts one of these next to the
    frame protocol: a loopback TCP listener whose only job is answering
    [GET /metrics] with the OpenMetrics exposition of the process
    registry and [GET /health] with the server's health verdict as JSON.
    One thread accepts, each connection is served inline (a scrape is a
    single small response; no pipelining, [Connection: close]) — a
    deliberate floor on complexity: no HTTP library exists in the tree
    and a scraper needs nothing more.

    [prepare] runs before each [/metrics] render (the server passes a
    runtime-sampler tick so gauges are fresh at scrape time). *)

type t

val start :
  ?prepare:(unit -> unit) ->
  ?health:(unit -> Aging_obs.Json.t) ->
  port:int ->
  unit ->
  (t, string) result
(** Bind 127.0.0.1:[port] ([port = 0] picks an ephemeral one — see
    {!port}) and start the accept thread.  [Error] on bind failure
    (port in use, privileged port) rather than an exception, so a
    daemon can report and continue without the exposition. *)

val port : t -> int
(** The bound port (the actual one when [start ~port:0]). *)

val stop : t -> unit
(** Close the listener and join the accept thread.  Idempotent. *)

val fetch : port:int -> path:string -> (string, string) result
(** One-shot HTTP GET against 127.0.0.1:[port]: returns the body on a
    200, [Error] with the status line or transport failure otherwise.
    Used by the soak harness and tests to validate a live scrape. *)
