(** Typed view of a [Stats] snapshot and the [relaware top] dashboard.

    Parsing lives here — not in the CLI — so [top]'s reading of the stats
    payload is unit-testable against a captured snapshot, and so any other
    consumer (the soak harness, scripts) can reuse it. *)

type pct = {
  count : int;
  p50 : float;  (** ms; NaN while the histogram is empty *)
  p95 : float;
  p99 : float;
}

type op_latency = {
  op : string;
  queue : pct option;  (** [None] for inline ops, which never queue *)
  exec : pct option;
  total : pct;
}

type snapshot = {
  state : string;
  uptime_s : float;
  workers : int;
  queue_length : int;
  queue_cap : int;
  inflight : int;
  requests : int;      (** serve.requests counter *)
  replies_ok : int;    (** serve.replies_ok counter *)
  refused : (string * int) list;
      (** refusal code -> count, only codes seen so far, sorted *)
  worker_restarts : int;
  bad_frames : int;
  connections : int;
  latency : op_latency list;  (** sorted by op; ["all"] first *)
}

val of_stats_json : Aging_obs.Json.t -> (snapshot, string) result
(** Parse a [Stats] reply payload ({!Server.stats_json}).  [Error]
    names the missing/malformed field. *)

val qps : prev:snapshot -> dt:float -> snapshot -> float
(** Successful replies per second between two snapshots [dt] seconds
    apart (non-negative; 0 when [dt <= 0]). *)

(** Typed view of a [Health] reply ({!Server.health_json}). *)

type reason = { code : string; severity : string; detail : string }

type health = {
  status : string;  (** ["ok"] / ["degraded"] / ["unhealthy"] *)
  reasons : reason list;
  stalled_workers : int;  (** workers currently flagged by the watchdog *)
  stalled_total : int;  (** cumulative [serve.worker.stalled] *)
  miss_ratio : float;  (** timeouts / requests *)
  rss_mb : float option;
}

val of_health_json : Aging_obs.Json.t -> (health, string) result

val render : ?qps:float -> ?health:health -> snapshot -> string
(** Multi-line dashboard: header (state, uptime, workers, qps), the
    health verdict with its reasons when supplied, queue and in-flight
    occupancy, counters, and a per-op latency table (count, total
    p50/p95/p99, queue p95, exec p95). *)
