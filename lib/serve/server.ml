module Json = Aging_obs.Json
module Metrics = Aging_obs.Metrics
module Log = Aging_obs.Log
module Span = Aging_obs.Span
module Flightrec = Aging_obs.Flightrec

type config = {
  addr : [ `Unix of string | `Tcp of int ];
  workers : int;
  queue_cap : int;
  default_deadline_s : float option;
  drain_timeout_s : float;
  max_frame : int;
  chaos : Chaos.t;
  slow_ms : float option;
  metrics_port : int option;
  stall_after_s : float option;
  rss_limit_mb : float option;
}

let default_config =
  {
    addr = `Unix "relaware.sock";
    workers = 2;
    queue_cap = 64;
    default_deadline_s = None;
    drain_timeout_s = 5.;
    max_frame = Frame.default_max_frame;
    chaos = Chaos.none;
    slow_ms = None;
    metrics_port = None;
    stall_after_s = Some 5.;
    rss_limit_mb = None;
  }

type handler =
  Protocol.request -> (Json.t, Protocol.error_code * string) result

(* ---- metrics (registered once per process) ---- *)

let m_accepted = Metrics.counter "serve.connections"
let m_requests = Metrics.counter "serve.requests"
let m_ok = Metrics.counter "serve.replies_ok"
let m_overloaded = Metrics.counter "serve.refused_overloaded"
let m_timeout = Metrics.counter "serve.refused_timeout"
let m_bad_request = Metrics.counter "serve.refused_bad_request"
let m_internal = Metrics.counter "serve.refused_internal"
let m_shutting_down = Metrics.counter "serve.refused_shutting_down"
let m_restarts = Metrics.counter "serve.worker_restarts"
let m_bad_frames = Metrics.counter "serve.bad_frames"
let m_stalled = Metrics.counter "serve.worker.stalled"

(* Queue-to-reply latency of queued (data-plane) requests. *)
let m_latency = Metrics.histogram "serve.request_s"

(* Sampled by the reaper thread so a stats snapshot carries recent values
   even when nobody else reads them. *)
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_inflight = Metrics.gauge "serve.inflight"

(* ---- per-request-type phase latency ----

   Three histograms per op ([serve.latency.<op>.queue_ms] / [exec_ms] /
   [total_ms]) plus the aggregate pseudo-op ["all"].  Handles are memoized
   here: [Metrics.histogram] itself takes the registry lock, which would be
   contended on every request. *)

type lat = {
  l_queue : Metrics.histogram;
  l_exec : Metrics.histogram;
  l_total : Metrics.histogram;
}

let lat_lock = Mutex.create ()
let lat_table : (string, lat) Hashtbl.t = Hashtbl.create 16

let lat_for op =
  Mutex.protect lat_lock (fun () ->
      match Hashtbl.find_opt lat_table op with
      | Some l -> l
      | None ->
        let h phase =
          Metrics.histogram (Printf.sprintf "serve.latency.%s.%s_ms" op phase)
        in
        let l = { l_queue = h "queue"; l_exec = h "exec"; l_total = h "total" } in
        Hashtbl.replace lat_table op l;
        l)

let observe_latency ~op ~queue_ms ~exec_ms ~total_ms =
  let obs l =
    (match queue_ms with Some q -> Metrics.observe l.l_queue q | None -> ());
    (match exec_ms with Some e -> Metrics.observe l.l_exec e | None -> ());
    Metrics.observe l.l_total total_ms
  in
  obs (lat_for op);
  obs (lat_for "all")

(* One span tree per request (root [serve.req.<op>], children
   [serve.phase.queue] / [serve.phase.exec]) — assembled after the fact
   from the job's phase timestamps, since the request's lifetime crosses
   the connection thread and a worker domain.  Only when span recording is
   on; a plain serve pays nothing here. *)
let emit_request_span ~op ~trace ~t0_wall ~queue_s ~exec_s ~total_s ~result =
  if Span.recording () then begin
    let attrs =
      ("op", op)
      :: (match trace with Some tr -> [ ("trace", tr) ] | None -> [])
    in
    let child name t_start duration =
      {
        Span.name;
        attrs = [];
        t_start;
        duration;
        outcome = Span.Completed;
        children = [];
      }
    in
    let children =
      (match queue_s with
      | Some q -> [ child "serve.phase.queue" t0_wall q ]
      | None -> [])
      @
      match exec_s with
      | Some e ->
        let off = Option.value ~default:0. queue_s in
        [ child "serve.phase.exec" (t0_wall +. off) e ]
      | None -> []
    in
    Span.emit
      {
        Span.name = "serve.req." ^ op;
        attrs = attrs @ [ ("result", result) ];
        t_start = t0_wall;
        duration = total_s;
        outcome = Span.Completed;
        children;
      }
  end

let count_refusal = function
  | Protocol.Overloaded -> Metrics.incr m_overloaded
  | Protocol.Timeout -> Metrics.incr m_timeout
  | Protocol.Bad_request -> Metrics.incr m_bad_request
  | Protocol.Internal -> Metrics.incr m_internal
  | Protocol.Shutting_down -> Metrics.incr m_shutting_down

(* ---- core records ---- *)

type conn = {
  fd : Unix.file_descr;
  write_lock : Mutex.t;  (* serializes frame writes: conn thread, workers, reaper *)
  mutable thread : Thread.t option;
  conn_id : int;
}

type job = {
  job_id : int;              (* server-side sequence; keys chaos decisions *)
  req : Protocol.request;
  op : string;               (* request_op, the latency/trace label *)
  trace : string option;     (* client-stamped trace id *)
  client_id : int option;    (* echoed correlation id *)
  deadline : float option;   (* absolute Unix time *)
  job_conn : conn;
  enqueued_at : float;
  enqueued_m : float;        (* monotonic twin of enqueued_at *)
  exec_started_m : float Atomic.t;  (* monotonic; nan until a worker starts *)
  replied : bool Atomic.t;   (* claimed by exactly one of worker / reaper *)
}

(* Flight-recorder event for one job; every event carries enough context
   (job id, op, trace) to be read on its own in a post-mortem dump. *)
let flight_job kind job fields =
  Flightrec.note
    ~fields:
      (("job", Json.Int job.job_id)
      :: ("op", Json.String job.op)
      :: ((match job.trace with
          | Some tr -> [ ("trace", Json.String tr) ]
          | None -> [])
         @ fields))
    kind

type state = Running | Draining | Stopped

type t = {
  cfg : config;
  handler : handler;
  listener : Unix.file_descr;
  sock_path : string option;          (* unlink on teardown *)
  queue : job Bqueue.t;
  deaths : (int * exn option) Bqueue.t;
  slots : unit Domain.t option array; (* touched only by spawn order:
                                         start -> supervisor -> teardown *)
  jobs_lock : Mutex.t;
  inflight : (int, job) Hashtbl.t;    (* admitted, not yet replied *)
  conns_lock : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  state : state Atomic.t;
  stop_flag : bool Atomic.t;
  stop_pipe_r : Unix.file_descr;
  stop_pipe_w : Unix.file_descr;
  reaper_stop : bool Atomic.t;
  next_job : int Atomic.t;
  next_conn : int Atomic.t;
  started_at : float;
  busy_since : float Atomic.t array;
      (* per worker: monotonic time its current job started executing;
         nan while idle.  Written by the worker, read by the reaper. *)
  stall_flag : bool Atomic.t array;
      (* per worker: the reaper flagged the current job as stalled; the
         worker clears it (once per episode) when the job finishes. *)
  mutable accept_thread : Thread.t option;
  mutable supervisor : Thread.t option;
  mutable reaper : Thread.t option;
  mutable metrics_http : Metrics_http.t option;
}

let running t = Atomic.get t.state = Running

let worker_restarts _t = Metrics.value m_restarts
let metrics_port t = Option.map Metrics_http.port t.metrics_http

(* ---- replies ---- *)

(* Writing a response must never take a server lock other than the
   connection's own write lock, and must never raise: a client that
   vanished mid-reply is not an error the server cares about. *)
let send_response conn ?id resp =
  (match resp with
  | Protocol.Reply _ -> Metrics.incr m_ok
  | Protocol.Refused { code; _ } -> count_refusal code);
  let json = Protocol.response_to_json ?id resp in
  Mutex.protect conn.write_lock (fun () ->
      try Frame.write conn.fd json
      with Unix.Unix_error _ | Sys_error _ -> ())

let refuse conn ?id code message =
  send_response conn ?id (Protocol.Refused { code; message })

(* Claim the right to answer [job]; at most one caller ever wins.  The
   winner also owns the latency observation. *)
let claim job =
  let won = Atomic.compare_and_set job.replied false true in
  if won then
    Metrics.observe m_latency (Unix.gettimeofday () -. job.enqueued_at);
  won

let unregister t job =
  Mutex.protect t.jobs_lock (fun () -> Hashtbl.remove t.inflight job.job_id)

let inflight_count t =
  Mutex.protect t.jobs_lock (fun () -> Hashtbl.length t.inflight)

let ms_str s = Printf.sprintf "%.1f" (s *. 1e3)

(* Phase accounting at reply time, called by whoever won the claim (worker
   or reaper).  When the job never reached a worker ([exec_started_m] still
   nan — cancelled while queued) the whole latency is queue wait. *)
let note_done t job ~result =
  let now_m = Span.elapsed () in
  let started_m = Atomic.get job.exec_started_m in
  let total_s = now_m -. job.enqueued_m in
  let queue_s, exec_s =
    if Float.is_nan started_m then (total_s, None)
    else (started_m -. job.enqueued_m, Some (now_m -. started_m))
  in
  observe_latency ~op:job.op
    ~queue_ms:(Some (queue_s *. 1e3))
    ~exec_ms:(Option.map (fun e -> e *. 1e3) exec_s)
    ~total_ms:(total_s *. 1e3);
  emit_request_span ~op:job.op ~trace:job.trace ~t0_wall:job.enqueued_at
    ~queue_s:(Some queue_s) ~exec_s ~total_s ~result;
  flight_job "req.completed" job
    [ ("status", Json.String result); ("total_ms", Json.of_float (total_s *. 1e3)) ];
  match t.cfg.slow_ms with
  | Some thresh when total_s *. 1e3 >= thresh ->
    Log.warnf "serve" ?trace:job.trace
      ~fields:
        [
          ("job", string_of_int job.job_id);
          ("op", job.op);
          ("queue_ms", ms_str queue_s);
          ( "exec_ms",
            match exec_s with Some e -> ms_str e | None -> "-" );
          ("total_ms", ms_str total_s);
          ("result", result);
        ]
      "slow request"
  | _ -> ()

let result_of_response = function
  | Protocol.Reply _ -> "ok"
  | Protocol.Refused { code; _ } -> Protocol.error_code_to_string code

(* ---- stats ---- *)

let state_name = function
  | Running -> "running"
  | Draining -> "draining"
  | Stopped -> "stopped"

(* Percentile summary of every [serve.latency.*] histogram seen so far, as
   a nested object: op -> phase -> {count,p50,p95,p99} (values in ms).
   Computed from the live bucket counts on each stats request — a handful
   of ops, so this costs microseconds. *)
let latency_json () =
  let ops =
    Mutex.protect lat_lock (fun () ->
        Hashtbl.fold (fun op l acc -> (op, l) :: acc) lat_table [])
  in
  let pct h =
    let buckets = Metrics.bucket_counts h in
    Json.Obj
      [
        ("count", Json.Int (Metrics.histogram_count h));
        ("p50", Json.of_float (Metrics.percentile_of_buckets buckets 0.50));
        ("p95", Json.of_float (Metrics.percentile_of_buckets buckets 0.95));
        ("p99", Json.of_float (Metrics.percentile_of_buckets buckets 0.99));
      ]
  in
  Json.Obj
    (List.sort compare ops
    |> List.map (fun (op, l) ->
           ( op,
             Json.Obj
               [
                 ("queue_ms", pct l.l_queue);
                 ("exec_ms", pct l.l_exec);
                 ("total_ms", pct l.l_total);
               ] )))

let stats_json t =
  (* Refresh the runtime.* gauges so a Stats consumer (top, the soak
     harness's srv_* QoR rows) reads live memory/GC numbers, not the
     sampler's last periodic tick. *)
  Aging_obs.Runtime.sample_global ();
  Json.Obj
    [
      ("state", Json.String (state_name (Atomic.get t.state)));
      ("uptime_s", Json.of_float (Unix.gettimeofday () -. t.started_at));
      ("workers", Json.Int t.cfg.workers);
      ("queue_length", Json.Int (Bqueue.length t.queue));
      ("queue_cap", Json.Int t.cfg.queue_cap);
      ("inflight", Json.Int (inflight_count t));
      ("latency", latency_json ());
      ("metrics", Metrics.to_json ());
    ]

(* ---- health verdict ----

   Distinct from [stats]: stats is the raw telemetry snapshot, health is a
   judgement — ok / degraded / unhealthy plus machine-readable reasons — so
   an orchestrator (or [relaware top]) does not have to re-derive policy
   from counters.  Served inline like [Stats], so a saturated or wedged
   server still explains itself. *)

let health_json t =
  Aging_obs.Runtime.sample_global ();
  let stalled_workers =
    Array.fold_left
      (fun acc f -> if Atomic.get f then acc + 1 else acc)
      0 t.stall_flag
  in
  let stalled_total = Metrics.value m_stalled in
  let queue_depth = Bqueue.length t.queue in
  let requests = Metrics.value m_requests in
  let timeouts = Metrics.value m_timeout in
  let miss_ratio =
    if requests > 0 then float_of_int timeouts /. float_of_int requests else 0.
  in
  let rss_mb = Metrics.value_by_name "runtime.mem.rss_mb" in
  let reasons = ref [] in
  let add severity code detail =
    reasons :=
      Json.Obj
        [
          ("code", Json.String code);
          ("severity", Json.String severity);
          ("detail", Json.String detail);
        ]
      :: !reasons
  in
  if stalled_workers > 0 then
    add "critical" "worker_stalled"
      (Printf.sprintf "%d worker(s) stalled beyond %s" stalled_workers
         (match t.cfg.stall_after_s with
         | Some s -> Printf.sprintf "%.0f ms" (s *. 1e3)
         | None -> "budget"));
  (match (rss_mb, t.cfg.rss_limit_mb) with
  | Some rss, Some limit when rss > limit ->
    add "critical" "rss_ceiling"
      (Printf.sprintf "RSS %.0f MB over the %.0f MB ceiling" rss limit)
  | _ -> ());
  if queue_depth >= t.cfg.queue_cap then
    add "warn" "queue_saturated"
      (Printf.sprintf "queue full (%d/%d)" queue_depth t.cfg.queue_cap)
  else if float_of_int queue_depth >= 0.9 *. float_of_int t.cfg.queue_cap then
    add "warn" "queue_saturated"
      (Printf.sprintf "queue at %d/%d" queue_depth t.cfg.queue_cap);
  if requests >= 20 && miss_ratio > 0.05 then
    add "warn" "deadline_misses"
      (Printf.sprintf "%.1f%% of %d requests timed out" (miss_ratio *. 1e2)
         requests);
  (match Atomic.get t.state with
  | Running -> ()
  | Draining | Stopped -> add "warn" "draining" "server is draining");
  let has severity =
    List.exists
      (fun r -> Json.member "severity" r = Some (Json.String severity))
      !reasons
  in
  let status =
    if has "critical" then "unhealthy"
    else if has "warn" then "degraded"
    else "ok"
  in
  Json.Obj
    [
      ("status", Json.String status);
      ("reasons", Json.List (List.rev !reasons));
      ("state", Json.String (state_name (Atomic.get t.state)));
      ("uptime_s", Json.of_float (Unix.gettimeofday () -. t.started_at));
      ( "checks",
        Json.Obj
          [
            ("stalled_workers", Json.Int stalled_workers);
            ("stalled_total", Json.Int stalled_total);
            ("queue_depth", Json.Int queue_depth);
            ("queue_cap", Json.Int t.cfg.queue_cap);
            ("requests", Json.Int requests);
            ("timeouts", Json.Int timeouts);
            ("deadline_miss_ratio", Json.of_float miss_ratio);
            ( "rss_mb",
              match rss_mb with Some v -> Json.of_float v | None -> Json.Null
            );
            ( "rss_limit_mb",
              match t.cfg.rss_limit_mb with
              | Some v -> Json.of_float v
              | None -> Json.Null );
          ] );
    ]

let flight_json () =
  let events = Flightrec.events Flightrec.global in
  Json.Obj
    [
      ("recorded", Json.Int (Flightrec.recorded Flightrec.global));
      ("overwritten", Json.Int (Flightrec.overwritten Flightrec.global));
      ("capacity", Json.Int (Flightrec.capacity Flightrec.global));
      ("events", Json.List (List.map Flightrec.event_to_json events));
    ]

(* ---- worker domains ---- *)

let execute t wid job =
  (* The reaper may already have claimed (and answered) this job while it
     sat in the queue: cancelled work costs a hashtable probe, not a
     handler run. *)
  if Atomic.get job.replied then unregister t job
  else begin
    Atomic.set job.exec_started_m (Span.elapsed ());
    (* Heartbeat for the watchdog: busy from here until the protected
       section below ends (including a chaos kill unwinding through it). *)
    Atomic.set t.busy_since.(wid) (Span.elapsed ());
    Fun.protect ~finally:(fun () ->
        Atomic.set t.busy_since.(wid) Float.nan;
        if Atomic.exchange t.stall_flag.(wid) false then
          flight_job "worker.recovered" job [ ("worker", Json.Int wid) ])
    @@ fun () ->
    flight_job "req.started" job [ ("worker", Json.Int wid) ];
    let chaos_action = Chaos.decide t.cfg.chaos ~request_id:job.job_id in
    (match chaos_action with
    | Chaos.Pass -> ()
    | Chaos.Slow s ->
      flight_job "chaos.injected" job
        [ ("action", Json.String "slow"); ("seconds", Json.of_float s) ]
    | Chaos.Kill_worker ->
      flight_job "chaos.injected" job [ ("action", Json.String "kill_worker") ]
    | Chaos.Crash_handler ->
      flight_job "chaos.injected" job
        [ ("action", Json.String "crash_handler") ]);
    (match chaos_action with
    | Chaos.Slow s -> Unix.sleepf s
    | _ -> ());
    let expired =
      match job.deadline with
      | Some d -> Unix.gettimeofday () > d
      | None -> false
    in
    let finish resp =
      if claim job then begin
        unregister t job;
        send_response job.job_conn ?id:job.client_id resp;
        note_done t job ~result:(result_of_response resp)
      end
      else unregister t job
    in
    if expired then begin
      flight_job "deadline.expired" job [ ("where", Json.String "worker") ];
      finish
        (Protocol.Refused
           {
             code = Protocol.Timeout;
             message = "deadline expired before execution";
           })
    end
    else begin
      match
        (match chaos_action with
        | Chaos.Kill_worker -> raise Chaos.Chaos_kill
        | Chaos.Crash_handler -> raise Chaos.Chaos_crash
        | Chaos.Pass | Chaos.Slow _ -> t.handler job.req)
      with
      | Ok data -> finish (Protocol.Reply data)
      | Error (code, message) -> finish (Protocol.Refused { code; message })
      | exception Chaos.Chaos_kill ->
        (* Answer first, then die: the client sees a typed error while the
           supervisor replaces the worker. *)
        finish
          (Protocol.Refused
             { code = Protocol.Internal; message = "worker killed" });
        raise Chaos.Chaos_kill
      | exception e ->
        finish
          (Protocol.Refused
             { code = Protocol.Internal; message = Printexc.to_string e })
    end
  end

let worker_body t wid () =
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()  (* queue closed and drained *)
    | Some job ->
      execute t wid job;
      loop ()
  in
  match loop () with
  | () -> ignore (Bqueue.try_push t.deaths (wid, None))
  | exception e -> ignore (Bqueue.try_push t.deaths (wid, Some e))

let spawn_worker t wid = Domain.spawn (worker_body t wid)

(* The supervisor is the only mutator of [slots] after startup; teardown
   reads them only after joining it, so no lock is needed. *)
let supervisor_body t () =
  let rec loop () =
    match Bqueue.pop t.deaths with
    | None -> ()
    | Some (wid, reason) ->
      (match t.slots.(wid) with
      | Some d -> Domain.join d
      | None -> ());
      (match reason with
      | Some e when not (Bqueue.closed t.queue) ->
        Metrics.incr m_restarts;
        Flightrec.note
          ~fields:
            [
              ("worker", Json.Int wid);
              ("reason", Json.String (Printexc.to_string e));
            ]
          "worker.death";
        Log.warnf "serve" "worker %d died (%s); respawning" wid
          (Printexc.to_string e);
        t.slots.(wid) <- Some (spawn_worker t wid);
        Flightrec.note ~fields:[ ("worker", Json.Int wid) ] "worker.respawn"
      | Some e ->
        Flightrec.note
          ~fields:
            [
              ("worker", Json.Int wid);
              ("reason", Json.String (Printexc.to_string e));
              ("draining", Json.Bool true);
            ]
          "worker.death";
        Log.warnf "serve" "worker %d died during drain (%s)" wid
          (Printexc.to_string e);
        t.slots.(wid) <- None
      | None -> t.slots.(wid) <- None);
      loop ()
  in
  loop ()

(* ---- reaper ---- *)

let reaper_body t () =
  let period = 0.002 in
  let rec loop () =
    if Atomic.get t.reaper_stop then ()
    else begin
      let now = Unix.gettimeofday () in
      (* Queue-depth / in-flight gauges ride the reaper's tick: ~500 Hz
         sampling, no extra thread. *)
      Metrics.set m_queue_depth (float_of_int (Bqueue.length t.queue));
      Metrics.set m_inflight (float_of_int (inflight_count t));
      (* Watchdog: a worker whose current job has been executing longer
         than the stall budget is flagged once per episode; the flag
         clears when the job finally finishes (worker side). *)
      (match t.cfg.stall_after_s with
      | Some limit ->
        let now_m = Span.elapsed () in
        Array.iteri
          (fun wid busy ->
            let since = Atomic.get busy in
            if
              (not (Float.is_nan since))
              && now_m -. since > limit
              && Atomic.compare_and_set t.stall_flag.(wid) false true
            then begin
              Metrics.incr m_stalled;
              let busy_ms = (now_m -. since) *. 1e3 in
              Flightrec.note
                ~fields:
                  [
                    ("worker", Json.Int wid);
                    ("busy_ms", Json.of_float busy_ms);
                  ]
                "worker.stalled";
              Log.warnf "serve"
                ~fields:[ ("worker", string_of_int wid) ]
                "worker %d stalled: busy %.0f ms (budget %.0f ms)" wid busy_ms
                (limit *. 1e3)
            end)
          t.busy_since
      | None -> ());
      let expired =
        Mutex.protect t.jobs_lock (fun () ->
            let acc = ref [] in
            Hashtbl.iter
              (fun _ job ->
                match job.deadline with
                | Some d when now > d ->
                  if claim job then acc := job :: !acc
                | _ -> ())
              t.inflight;
            List.iter
              (fun job -> Hashtbl.remove t.inflight job.job_id)
              !acc;
            !acc)
      in
      (* Replies happen after jobs_lock is released: the write path only
         ever holds the connection's write lock. *)
      List.iter
        (fun job ->
          flight_job "deadline.expired" job [ ("where", Json.String "reaper") ];
          refuse job.job_conn ?id:job.client_id Protocol.Timeout
            "deadline expired";
          note_done t job ~result:"timeout")
        expired;
      Unix.sleepf period;
      loop ()
    end
  in
  loop ()

(* ---- connection threads ---- *)

let admit t conn meta req =
  let job_id = Atomic.fetch_and_add t.next_job 1 in
  let deadline_s =
    match meta.Protocol.deadline_s with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_s
  in
  let deadline =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s
  in
  let job =
    {
      job_id;
      req;
      op = Protocol.request_op req;
      trace = meta.Protocol.trace_id;
      client_id = meta.Protocol.id;
      deadline;
      job_conn = conn;
      enqueued_at = Unix.gettimeofday ();
      enqueued_m = Span.elapsed ();
      exec_started_m = Atomic.make Float.nan;
      replied = Atomic.make false;
    }
  in
  Mutex.protect t.jobs_lock (fun () -> Hashtbl.replace t.inflight job_id job);
  match Bqueue.try_push t.queue job with
  | `Ok -> flight_job "req.admitted" job []
  | `Full ->
    unregister t job;
    flight_job "req.refused" job [ ("code", Json.String "overloaded") ];
    refuse conn ?id:meta.Protocol.id Protocol.Overloaded
      (Printf.sprintf "request queue full (cap %d)" t.cfg.queue_cap)
  | `Closed ->
    unregister t job;
    flight_job "req.refused" job [ ("code", Json.String "shutting_down") ];
    refuse conn ?id:meta.Protocol.id Protocol.Shutting_down "server draining"

(* Control-plane requests are answered on the connection thread, so their
   latency has no queue phase: exec covers handling, total adds the reply
   write. *)
let inline_timed ~op ~trace f =
  let t0_wall = Unix.gettimeofday () in
  let t0_m = Span.elapsed () in
  f ();
  let total_s = Span.elapsed () -. t0_m in
  observe_latency ~op ~queue_ms:None ~exec_ms:(Some (total_s *. 1e3))
    ~total_ms:(total_s *. 1e3);
  emit_request_span ~op ~trace ~t0_wall ~queue_s:None ~exec_s:(Some total_s)
    ~total_s ~result:"ok"

let handle_frame t conn json stop_self =
  match Protocol.request_of_json json with
  | Error msg -> refuse conn Protocol.Bad_request msg
  | Ok (meta, req) -> begin
    Metrics.incr m_requests;
    let trace = meta.Protocol.trace_id in
    match req with
    (* Control-plane requests never touch the queue: liveness, forensics
       and drain must work precisely when the data plane is saturated. *)
    | Protocol.Ping ->
      inline_timed ~op:"ping" ~trace (fun () ->
          send_response conn ?id:meta.Protocol.id
            (Protocol.Reply (Json.Obj [ ("pong", Json.Bool true) ])))
    | Protocol.Stats ->
      inline_timed ~op:"stats" ~trace (fun () ->
          send_response conn ?id:meta.Protocol.id
            (Protocol.Reply (stats_json t)))
    | Protocol.Health ->
      inline_timed ~op:"health" ~trace (fun () ->
          send_response conn ?id:meta.Protocol.id
            (Protocol.Reply (health_json t)))
    | Protocol.Dump_flight ->
      inline_timed ~op:"dump_flight" ~trace (fun () ->
          send_response conn ?id:meta.Protocol.id
            (Protocol.Reply (flight_json ())))
    | Protocol.Shutdown ->
      send_response conn ?id:meta.Protocol.id
        (Protocol.Reply (Json.Obj [ ("draining", Json.Bool true) ]));
      stop_self ()
    | Protocol.Sleep _ | Protocol.Crash | Protocol.Guardband _
    | Protocol.Delay _ ->
      if Atomic.get t.state <> Running then
        refuse conn ?id:meta.Protocol.id Protocol.Shutting_down
          "server draining"
      else admit t conn meta req
  end

let conn_body t conn stop_self () =
  let rec loop () =
    match Frame.read ~max_frame:t.cfg.max_frame conn.fd with
    | Ok json ->
      handle_frame t conn json stop_self;
      loop ()
    | Error (Frame.Malformed msg) ->
      (* Payload garbage, but the stream is still frame-aligned. *)
      Metrics.incr m_bad_frames;
      refuse conn Protocol.Bad_request ("malformed payload: " ^ msg);
      loop ()
    | Error (Frame.Oversized n) ->
      (* The length prefix itself is untrustworthy: answer and hang up. *)
      Metrics.incr m_bad_frames;
      refuse conn Protocol.Bad_request
        (Printf.sprintf "frame of %d bytes exceeds limit %d" n
           t.cfg.max_frame);
      ()
    | Error Frame.Closed -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.conns_lock (fun () ->
          Hashtbl.remove t.conns conn.conn_id);
      try Unix.close conn.fd with Unix.Unix_error _ -> ())
    loop

(* ---- lifecycle ---- *)

let stop t =
  (* Callable from a signal handler: no locks, no allocation-heavy work —
     flip the flag and poke the self-pipe so the accept loop's select
     returns. *)
  if not (Atomic.exchange t.stop_flag true) then
    try ignore (Unix.write t.stop_pipe_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let teardown t =
  Atomic.set t.state Draining;
  Flightrec.note ~fields:[ ("inflight", Json.Int (inflight_count t)) ]
    "serve.draining";
  Log.infof "serve" "draining: refusing new work, finishing %d in flight"
    (inflight_count t);
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.sock_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  (* Finish admitted work, bounded by the drain budget; the reaper keeps
     expiring deadlines while we wait. *)
  let drain_deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
  let rec wait_drain () =
    if inflight_count t > 0 && Unix.gettimeofday () < drain_deadline then begin
      Unix.sleepf 0.005;
      wait_drain ()
    end
  in
  wait_drain ();
  let abandoned = inflight_count t in
  if abandoned > 0 then
    Log.warnf "serve" "drain timeout: abandoning %d request(s)" abandoned;
  (* Stop the data plane in dependency order: queue (workers run dry and
     exit), deaths (supervisor drains pending notices and exits),
     supervisor, then any worker slot the supervisor never processed. *)
  Bqueue.close t.queue;
  Bqueue.close t.deaths;
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  Array.iteri
    (fun i slot ->
      match slot with
      | Some d ->
        Domain.join d;
        t.slots.(i) <- None
      | None -> ())
    t.slots;
  Atomic.set t.reaper_stop true;
  (match t.reaper with Some th -> Thread.join th | None -> ());
  (* Wake connection threads blocked in [Frame.read] and join them. *)
  let live =
    Mutex.protect t.conns_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    live;
  List.iter
    (fun c -> match c.thread with Some th -> Thread.join th | None -> ())
    live;
  (try Unix.close t.stop_pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_pipe_w with Unix.Unix_error _ -> ());
  (match t.metrics_http with
  | Some srv ->
    Metrics_http.stop srv;
    t.metrics_http <- None
  | None -> ());
  Atomic.set t.state Stopped;
  Flightrec.note "serve.stopped";
  Log.infof "serve" "stopped"

let accept_body t () =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else begin
      match Unix.select [ t.listener; t.stop_pipe_r ] [] [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        if Atomic.get t.stop_flag then ()
        else if List.mem t.listener readable then begin
          match Unix.accept t.listener with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ when Atomic.get t.stop_flag -> ()
          | fd, _peer ->
            Metrics.incr m_accepted;
            let conn_id = Atomic.fetch_and_add t.next_conn 1 in
            let conn =
              { fd; write_lock = Mutex.create (); thread = None; conn_id }
            in
            Mutex.protect t.conns_lock (fun () ->
                Hashtbl.replace t.conns conn_id conn);
            let th = Thread.create (conn_body t conn (fun () -> stop t)) () in
            conn.thread <- Some th;
            loop ()
        end
        else loop ()
    end
  in
  loop ();
  teardown t

let bind_listener addr =
  match addr with
  | `Unix path ->
    if String.length path > 100 then
      invalid_arg "Server.start: unix socket path too long (limit ~100)";
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Some path)
  | `Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    (fd, None)

let start ~handler cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Server.start: queue_cap must be >= 1";
  if cfg.drain_timeout_s <= 0. then
    invalid_arg "Server.start: drain_timeout_s must be > 0";
  ignore (Chaos.validated cfg.chaos);
  let listener, sock_path = bind_listener cfg.addr in
  let stop_pipe_r, stop_pipe_w = Unix.pipe () in
  let t =
    {
      cfg;
      handler;
      listener;
      sock_path;
      queue = Bqueue.create ~cap:cfg.queue_cap;
      (* Generous: must hold every death notice that can pile up while the
         supervisor is busy joining. *)
      deaths = Bqueue.create ~cap:(max 64 (cfg.workers * 16));
      slots = Array.make cfg.workers None;
      jobs_lock = Mutex.create ();
      inflight = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      state = Atomic.make Running;
      stop_flag = Atomic.make false;
      stop_pipe_r;
      stop_pipe_w;
      reaper_stop = Atomic.make false;
      next_job = Atomic.make 0;
      next_conn = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      busy_since = Array.init cfg.workers (fun _ -> Atomic.make Float.nan);
      stall_flag = Array.init cfg.workers (fun _ -> Atomic.make false);
      accept_thread = None;
      supervisor = None;
      reaper = None;
      metrics_http = None;
    }
  in
  for wid = 0 to cfg.workers - 1 do
    t.slots.(wid) <- Some (spawn_worker t wid)
  done;
  t.supervisor <- Some (Thread.create (supervisor_body t) ());
  t.reaper <- Some (Thread.create (reaper_body t) ());
  t.accept_thread <- Some (Thread.create (accept_body t) ());
  (match cfg.metrics_port with
  | Some port -> begin
    match
      Metrics_http.start ~prepare:Aging_obs.Runtime.sample_global
        ~health:(fun () -> health_json t)
        ~port ()
    with
    | Ok srv -> t.metrics_http <- Some srv
    | Error msg ->
      (* The frame protocol is the product; a lost exposition endpoint is
         worth a warning, not a refused start. *)
      Log.warnf "serve" "metrics exposition disabled: %s" msg
  end
  | None -> ());
  Flightrec.note
    ~fields:
      [
        ("workers", Json.Int cfg.workers);
        ("queue_cap", Json.Int cfg.queue_cap);
      ]
    "serve.started";
  Log.infof "serve" "listening (%s), %d workers, queue %d"
    (match cfg.addr with
    | `Unix p -> "unix:" ^ p
    | `Tcp p -> Printf.sprintf "tcp:%d" p)
    cfg.workers cfg.queue_cap;
  t

let await t =
  match t.accept_thread with Some th -> Thread.join th | None -> ()

let dump_flight_to path =
  Flightrec.note ~fields:[ ("path", Json.String path) ] "flight.dump";
  match Flightrec.dump_to_file Flightrec.global path with
  | Ok () ->
    Log.infof ~fields:[ ("path", path) ] "serve" "flight recorder dumped"
  | Error msg ->
    Log.warnf
      ~fields:[ ("path", path); ("error", msg) ]
      "serve" "flight dump failed"

let install_signal_handlers ?flight_dump t =
  let handle = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle;
  match flight_dump with
  | None -> ()
  | Some path ->
    (* SIGQUIT = dump-and-keep-running: OCaml signal handlers run at
       safepoints on the main execution path, not in async context, so
       file IO here is ordinary code. *)
    Sys.set_signal Sys.sigquit
      (Sys.Signal_handle (fun _ -> dump_flight_to path))
