(** Length-prefixed JSON frames over a file descriptor.

    The wire format of the [relaware serve] protocol: a 4-byte big-endian
    payload length followed by that many bytes of JSON ({!Aging_obs.Json}).
    Framing is the service's first line of defense — a reader can always
    tell a complete message from a truncated one, reject an absurd length
    before allocating, and distinguish "payload is garbage" (connection
    still usable: the stream is aligned on the next frame) from "stream is
    garbage" (hang up). *)

type error =
  | Closed
      (** EOF or a transport error before a complete frame arrived *)
  | Oversized of int
      (** declared payload length exceeds the limit; the stream can no
          longer be trusted to be frame-aligned — close the connection *)
  | Malformed of string
      (** a complete frame arrived but its payload is not valid JSON; the
          stream {e is} still frame-aligned — reply and keep reading *)

val error_to_string : error -> string

val default_max_frame : int
(** 4 MiB: generous for query traffic, small enough that a corrupt length
    prefix cannot make the server allocate gigabytes. *)

val read :
  ?max_frame:int -> Unix.file_descr -> (Aging_obs.Json.t, error) result
(** Blocking read of one complete frame (restarting on [EINTR]). *)

val write : Unix.file_descr -> Aging_obs.Json.t -> unit
(** Blocking write of one complete frame.
    @raise Unix.Unix_error when the peer is gone ([EPIPE] & co). *)

val write_raw : Unix.file_descr -> string -> unit
(** Writes bytes verbatim — {e no} framing.  This exists for the chaos
    harness, which injects corrupt frames (bogus lengths, truncated
    payloads, non-JSON bytes) to prove the server sheds them without
    crashing.  Not used by well-behaved clients. *)
