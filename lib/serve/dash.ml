module Json = Aging_obs.Json
module Tablefmt = Aging_util.Tablefmt

type pct = { count : int; p50 : float; p95 : float; p99 : float }

type op_latency = {
  op : string;
  queue : pct option;
  exec : pct option;
  total : pct;
}

type snapshot = {
  state : string;
  uptime_s : float;
  workers : int;
  queue_length : int;
  queue_cap : int;
  inflight : int;
  requests : int;
  replies_ok : int;
  refused : (string * int) list;
  worker_restarts : int;
  bad_frames : int;
  connections : int;
  latency : op_latency list;
}

let ( >>= ) o f = Option.bind o f

let pct_of_json j =
  match
    ( Json.member "count" j,
      Json.member "p50" j >>= Json.to_float,
      Json.member "p95" j >>= Json.to_float,
      Json.member "p99" j >>= Json.to_float )
  with
  | Some (Json.Int count), Some p50, Some p95, Some p99 ->
    Some { count; p50; p95; p99 }
  | _ -> None

let latency_of_json j =
  match j with
  | Json.Obj ops ->
    let entry (op, phases) =
      match Json.member "total_ms" phases >>= pct_of_json with
      | None -> None
      | Some total ->
        Some
          {
            op;
            queue = Json.member "queue_ms" phases >>= pct_of_json;
            exec = Json.member "exec_ms" phases >>= pct_of_json;
            total;
          }
    in
    List.filter_map entry ops
    (* Empty phase histograms (count 0) are noise in a dashboard. *)
    |> List.filter (fun l -> l.total.count > 0)
    |> List.sort (fun a b ->
           (* "all" first, then alphabetical. *)
           match (a.op, b.op) with
           | "all", "all" -> 0
           | "all", _ -> -1
           | _, "all" -> 1
           | x, y -> compare x y)
  | _ -> []

(* Counters live in the metrics sub-object as {"type":"counter","value":n}
   entries ({!Metrics.to_json}); a missing counter (not yet registered in
   that process) reads as 0. *)
let counter metrics name =
  match Json.member name metrics >>= Json.member "value" with
  | Some (Json.Int n) -> n
  | _ -> 0

let of_stats_json json =
  let str name =
    match Json.member name json with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "stats: missing %s" name)
  in
  let int name =
    match Json.member name json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "stats: missing %s" name)
  in
  let ( let* ) = Result.bind in
  let* state = str "state" in
  let* uptime_s =
    match Json.member "uptime_s" json >>= Json.to_float with
    | Some f -> Ok f
    | None -> Error "stats: missing uptime_s"
  in
  let* workers = int "workers" in
  let* queue_length = int "queue_length" in
  let* queue_cap = int "queue_cap" in
  let* inflight = int "inflight" in
  let metrics =
    Option.value ~default:(Json.Obj []) (Json.member "metrics" json)
  in
  let refused =
    [ "overloaded"; "timeout"; "bad_request"; "internal"; "shutting_down" ]
    |> List.filter_map (fun code ->
           match counter metrics ("serve.refused_" ^ code) with
           | 0 -> None
           | n -> Some (code, n))
  in
  Ok
    {
      state;
      uptime_s;
      workers;
      queue_length;
      queue_cap;
      inflight;
      requests = counter metrics "serve.requests";
      replies_ok = counter metrics "serve.replies_ok";
      refused;
      worker_restarts = counter metrics "serve.worker_restarts";
      bad_frames = counter metrics "serve.bad_frames";
      connections = counter metrics "serve.connections";
      latency =
        (match Json.member "latency" json with
        | Some l -> latency_of_json l
        | None -> []);
    }

(* ---- health verdict ({!Server.health_json} payload) ---- *)

type reason = { code : string; severity : string; detail : string }

type health = {
  status : string;
  reasons : reason list;
  stalled_workers : int;
  stalled_total : int;
  miss_ratio : float;
  rss_mb : float option;
}

let of_health_json json =
  match Json.member "status" json with
  | Some (Json.String status) ->
    let reasons =
      match Json.member "reasons" json with
      | Some (Json.List items) ->
        List.filter_map
          (fun r ->
            let s name =
              match Json.member name r with
              | Some (Json.String v) -> Some v
              | _ -> None
            in
            match (s "code", s "severity", s "detail") with
            | Some code, Some severity, Some detail ->
              Some { code; severity; detail }
            | _ -> None)
          items
      | _ -> []
    in
    let checks = Option.value ~default:(Json.Obj []) (Json.member "checks" json) in
    let check_int name =
      match Json.member name checks with Some (Json.Int n) -> n | _ -> 0
    in
    Ok
      {
        status;
        reasons;
        stalled_workers = check_int "stalled_workers";
        stalled_total = check_int "stalled_total";
        miss_ratio =
          Option.value ~default:0.
            (Json.member "deadline_miss_ratio" checks >>= Json.to_float);
        rss_mb = Json.member "rss_mb" checks >>= Json.to_float;
      }
  | _ -> Error "health: missing status"

let qps ~prev ~dt snap =
  if dt <= 0. then 0.
  else max 0. (float_of_int (snap.replies_ok - prev.replies_ok) /. dt)

let ms f = if Float.is_nan f then "-" else Printf.sprintf "%.2f" f

let render ?qps ?health snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "relaware top — %s, up %.1f s, %d workers%s" snap.state snap.uptime_s
    snap.workers
    (match qps with Some q -> Printf.sprintf ", %.0f q/s" q | None -> "");
  (match health with
  | None -> ()
  | Some h ->
    line "health %s%s%s" h.status
      (match h.rss_mb with
      | Some rss -> Printf.sprintf "   rss %.0f MB" rss
      | None -> "")
      (if h.stalled_total > 0 then
         Printf.sprintf "   stalls %d (now %d)" h.stalled_total
           h.stalled_workers
       else "");
    List.iter
      (fun r -> line "  [%s] %s: %s" r.severity r.code r.detail)
      h.reasons);
  line "queue %d/%d   in-flight %d   connections %d" snap.queue_length
    snap.queue_cap snap.inflight snap.connections;
  line "requests %d   ok %d   restarts %d   bad frames %d" snap.requests
    snap.replies_ok snap.worker_restarts snap.bad_frames;
  (match snap.refused with
  | [] -> ()
  | codes ->
    line "refused: %s"
      (String.concat ", "
         (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) codes)));
  if snap.latency <> [] then begin
    Buffer.add_char buf '\n';
    let rows =
      List.map
        (fun l ->
          [
            l.op;
            string_of_int l.total.count;
            ms l.total.p50;
            ms l.total.p95;
            ms l.total.p99;
            (match l.queue with Some p -> ms p.p95 | None -> "-");
            (match l.exec with Some p -> ms p.p95 | None -> "-");
          ])
        snap.latency
    in
    Buffer.add_string buf
      (Tablefmt.render
         ~header:
           [ "op"; "count"; "p50ms"; "p95ms"; "p99ms"; "queue p95"; "exec p95" ]
         rows)
  end;
  Buffer.contents buf
