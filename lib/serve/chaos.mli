(** Deterministic fault injection for the service layer.

    The service-side sibling of the characterization pipeline's [Faulty]
    backend: a chaos policy makes the server sabotage a seeded,
    reproducible fraction of requests — kill the executing worker domain
    (exercising the supervisor restart), raise inside the handler
    (exercising per-request crash isolation), or stall before replying
    (exercising deadlines and backpressure).  The decision is a pure
    function of [(seed, request id)], so a chaos soak replays exactly
    under a fixed seed no matter how requests interleave over workers. *)

type action =
  | Pass
  | Kill_worker   (** the worker domain dies; the supervisor must restart *)
  | Crash_handler (** the handler raises; isolated to a typed [internal] *)
  | Slow of float (** stall that many seconds before executing *)

type t = {
  kill_rate : float;   (** fraction of requests that kill their worker *)
  crash_rate : float;  (** fraction that raise inside the handler *)
  slow_rate : float;   (** fraction stalled by [slow_s] *)
  slow_s : float;
  seed : int;
}

val none : t
val is_none : t -> bool

val validated : t -> t
(** @raise Invalid_argument if a rate is outside [0, 1] or [slow_s < 0]. *)

val decide : t -> request_id:int -> action
(** Deterministic per [(seed, request_id)]. *)

exception Chaos_kill
(** Raised by the worker loop to simulate a worker-domain death. *)

exception Chaos_crash
(** Raised inside the request handler to simulate a handler bug. *)
