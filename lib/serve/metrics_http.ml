module Json = Aging_obs.Json
module Openmetrics = Aging_obs.Openmetrics
module Log = Aging_obs.Log

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let content_type_openmetrics =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* Read until the end of the request headers (we never accept bodies). *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          if
            String.length s >= 4
            && (String.ends_with ~suffix:"\r\n\r\n" s
               || String.ends_with ~suffix:"\n\n" s)
          then Some s
          else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          None
      | exception Unix.Unix_error _ -> None
  in
  go ()

let request_path request =
  match String.split_on_char '\n' request with
  | first :: _ -> (
      match String.split_on_char ' ' (String.trim first) with
      | [ "GET"; path; _version ] -> Some path
      | [ "GET"; path ] -> Some path
      | _ -> None)
  | [] -> None

let serve_conn ~prepare ~health fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
      let response =
        match Option.bind (read_request fd) request_path with
        | Some "/metrics" ->
            prepare ();
            http_response ~content_type:content_type_openmetrics
              (Openmetrics.render ())
        | Some "/health" -> (
            match health with
            | Some health ->
                http_response ~content_type:"application/json"
                  (Json.to_string (health ()) ^ "\n")
            | None ->
                http_response ~status:"404 Not Found" ~content_type:"text/plain"
                  "no health source\n")
        | Some _ ->
            http_response ~status:"404 Not Found" ~content_type:"text/plain"
              "try /metrics or /health\n"
        | None ->
            http_response ~status:"400 Bad Request" ~content_type:"text/plain"
              "GET only\n"
      in
      let bytes = Bytes.of_string response in
      let rec send off =
        if off < Bytes.length bytes then
          match Unix.write fd bytes off (Bytes.length bytes - off) with
          | n -> send (off + n)
          | exception Unix.Unix_error _ -> ()
      in
      send 0)

let accept_loop ~fd ~stopping ~prepare ~health =
  let rec go () =
    if not (Atomic.get stopping) then begin
      (match Unix.select [ fd ] [] [] 0.1 with
      | [ _ ], _, _ -> (
          match Unix.accept ~cloexec:true fd with
          | conn, _ -> serve_conn ~prepare ~health conn
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      go ()
    end
  in
  go ()

let start ?(prepare = fun () -> ()) ?health ~port () =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 16
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    let stopping = Atomic.make false in
    let thread =
      Thread.create (fun () -> accept_loop ~fd ~stopping ~prepare ~health) ()
    in
    let t = { fd; bound_port; thread; stopping } in
    Log.infof "metrics"
      ~fields:[ ("port", string_of_int bound_port) ]
      "OpenMetrics exposition on http://127.0.0.1:%d/metrics" bound_port;
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "metrics port %d: %s (%s)" port
               (Unix.error_message err) fn)

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Thread.join t.thread;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fetch ~port ~path =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let request =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
            path
        in
        let bytes = Bytes.of_string request in
        let rec send off =
          if off < Bytes.length bytes then
            send (off + Unix.write fd bytes off (Bytes.length bytes - off))
        in
        send 0;
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec recv () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              recv ()
        in
        recv ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "fetch %s: %s (%s)" path (Unix.error_message err) fn)
  | raw -> (
      let sep = "\r\n\r\n" in
      let split_at =
        let n = String.length raw and m = String.length sep in
        let rec find i =
          if i + m > n then None
          else if String.sub raw i m = sep then Some i
          else find (i + 1)
        in
        find 0
      in
      match split_at with
      | None -> Error "HTTP response without header terminator"
      | Some i ->
          let headers = String.sub raw 0 i in
          let body =
            String.sub raw
              (i + String.length sep)
              (String.length raw - i - String.length sep)
          in
          if
            String.starts_with ~prefix:"HTTP/1.1 200" headers
            || String.starts_with ~prefix:"HTTP/1.0 200" headers
          then Ok body
          else
            Error
              (match String.index_opt headers '\r' with
              | Some i -> String.sub headers 0 i
              | None -> "malformed status line"))
