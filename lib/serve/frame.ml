module Json = Aging_obs.Json

type error =
  | Closed
  | Oversized of int
  | Malformed of string

let error_to_string = function
  | Closed -> "connection closed"
  | Oversized n -> Printf.sprintf "frame length %d exceeds the limit" n
  | Malformed msg -> "malformed payload: " ^ msg

let default_max_frame = 4 * 1024 * 1024

(* Reads exactly [len] bytes, restarting on EINTR; [false] on EOF.  Any
   other transport error is also "the peer is gone" from the framing
   layer's point of view. *)
let rec read_exact fd buf off len =
  if len = 0 then true
  else
    match Unix.read fd buf off len with
    | 0 -> false
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len

let read ?(max_frame = default_max_frame) fd =
  try
    let hdr = Bytes.create 4 in
    match read_exact fd hdr 0 4 with
    | false -> Error Closed
    | true ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len <= 0 || len > max_frame then Error (Oversized len)
      else begin
        let payload = Bytes.create len in
        match read_exact fd payload 0 len with
        | false -> Error Closed
        | true -> begin
          match Json.of_string (Bytes.unsafe_to_string payload) with
          | json -> Ok json
          | exception Json.Parse_error msg -> Error (Malformed msg)
        end
      end
  with Unix.Unix_error (_, _, _) -> Error Closed

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let write_raw fd s =
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let write fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  (* One contiguous buffer, one write path: interleaving header and payload
     writes from concurrent repliers is prevented by the caller's
     per-connection lock, but a single buffer also keeps a crash between
     the two halves from ever emitting a headerless payload. *)
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)
