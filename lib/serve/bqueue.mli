(** A bounded multi-producer multi-consumer queue that sheds instead of
    blocking producers.

    This is the server's admission control: connection threads
    [try_push] — a full queue is an immediate, non-blocking [`Full]
    (turned into a typed [overloaded] response), never an unbounded
    buffer or a blocked reader.  Worker domains [pop], blocking until
    work arrives or the queue is closed and drained.

    Domain-safe: stdlib [Mutex]/[Condition] coordinate producers on
    connection threads with consumers on worker domains. *)

type 'a t

val create : cap:int -> 'a t
(** @raise Invalid_argument if [cap < 1]. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available ([Some]) or the queue is closed
    {e and} empty ([None] — consumers drain queued work before exiting). *)

val close : 'a t -> unit
(** Idempotent.  Producers get [`Closed] from then on; blocked consumers
    wake up and drain. *)

val closed : 'a t -> bool
val length : 'a t -> int
val cap : 'a t -> int
