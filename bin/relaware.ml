(* relaware: command-line front end of the reliability-aware design flow.

   Subcommands:
     characterize  build a degradation-aware library and write it as .alib
     report        static timing of a benchmark design, fresh and aged
     guardband     guardband estimation (full / vth-only / single-opc / cp-only)
     synth         traditional vs aging-aware synthesis comparison
     experiment    run one of the paper's figure reproductions
*)

open Cmdliner

module Scenario = Aging_physics.Scenario
module Degradation = Aging_physics.Degradation
module Axes = Aging_liberty.Axes
module Io = Aging_liberty.Io
module Characterize = Aging_liberty.Characterize
module Timing = Aging_sta.Timing
module Report = Aging_sta.Report
module Deg = Aging_core.Degradation_library
module Guardband = Aging_core.Guardband
module Designs = Aging_designs.Designs
module Experiments = Aging_core.Experiments

(* ------------------------- telemetry ------------------------- *)

(* Every subcommand shares the observability surface: log verbosity and
   optional metrics/trace dumps written when the command finishes (or
   dies — the dump runs in a [finally], so a crashed characterization
   still leaves its counters behind for a post-mortem). *)

type telemetry = {
  verbose : bool;
  quiet : bool;
  metrics_out : string option;
  trace_out : string option;
}

let telemetry_term =
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ]
             ~doc:"Debug-level logging (overrides $(b,AGING_LOG)).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ] ~doc:"Silence all progress logging.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the metrics registry (solver counters, cache \
                   hit/miss, per-span timing histograms) as JSON to \
                   $(docv) on exit.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record hierarchical timed spans and write the trace as \
                   JSON to $(docv) on exit.")
  in
  Term.(const (fun verbose quiet metrics_out trace_out ->
            { verbose; quiet; metrics_out; trace_out })
        $ verbose $ quiet $ metrics $ trace)

let write_file path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let with_telemetry t f =
  if t.quiet then Aging_obs.Log.set_level Aging_obs.Log.Quiet
  else if t.verbose then Aging_obs.Log.set_level Aging_obs.Log.Debug;
  if t.trace_out <> None then Aging_obs.Span.set_recording true;
  let dump () =
    Option.iter
      (fun path ->
        write_file path
          (Aging_obs.Json.to_string ~pretty:true (Aging_obs.Metrics.to_json ())
          ^ "\n"))
      t.metrics_out;
    Option.iter
      (fun path ->
        write_file path
          (Aging_obs.Json.to_string ~pretty:true (Aging_obs.Span.to_json ())
          ^ "\n"))
      t.trace_out
  in
  Fun.protect ~finally:dump f

(* ------------------------- shared arguments ------------------------- *)

let corner_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ p; n ] -> begin
      match (float_of_string_opt p, float_of_string_opt n) with
      | Some lambda_p, Some lambda_n -> begin
        match Scenario.corner ~lambda_p ~lambda_n with
        | c -> Ok c
        | exception Invalid_argument msg -> Error (`Msg msg)
      end
      | None, _ | _, None -> Error (`Msg "expected <lambda_p>,<lambda_n>")
    end
    | _ -> Error (`Msg "expected <lambda_p>,<lambda_n>")
  in
  let print fmt c = Format.fprintf fmt "%s" (Scenario.suffix c) in
  Arg.conv (parse, print)

let corner_arg =
  Arg.(value & opt corner_conv Scenario.worst_case
       & info [ "corner" ] ~docv:"LP,LN"
           ~doc:"Aging corner as pMOS,nMOS duty cycles (default worst case 1,1).")

let years_arg =
  Arg.(value & opt float 10. & info [ "years" ] ~docv:"YEARS" ~doc:"Lifetime in years.")

let grid_conv = Arg.enum [ ("paper", Axes.paper); ("coarse", Axes.coarse) ]

let axes_arg =
  Arg.(value & opt grid_conv Axes.paper
       & info [ "axes" ] ~docv:"GRID" ~doc:"OPC grid: paper (7x7) or coarse (3x3).")

let cache_arg =
  Arg.(value & opt string "_libcache"
       & info [ "cache" ] ~docv:"DIR" ~doc:"Library cache directory.")

let jobs_arg =
  Arg.(value & opt int (Aging_util.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for characterization (cells and corners in \
                 parallel; results are identical to $(b,--jobs 1)).  \
                 Default: $(b,AGING_JOBS) if set, else the recommended \
                 domain count of the machine.")

let design_arg =
  let all = [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ] in
  Arg.(required & opt (some (enum (List.map (fun d -> (d, d)) all))) None
       & info [ "design" ] ~docv:"NAME" ~doc:"Benchmark design name.")

let deglib_of ~axes ~years ~cache ~jobs =
  Deg.create ~axes ~years ~cache_dir:cache ~jobs ()

let design_of name =
  match Designs.by_name name with
  | Some d -> d
  | None -> failwith ("unknown design " ^ name)

(* --------------------------- characterize --------------------------- *)

let characterize_cmd =
  let out_arg =
    Arg.(value & opt string "degradation_aware.alib"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output .alib path.")
  in
  let report_arg =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Print the characterization fault/repair report (points \
                   measured / retried / repaired / failed per cell and arc).")
  in
  let fault_rate_arg =
    Arg.(value & opt float 0.
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Deterministically inject transient failures into this \
                   fraction of grid points (testing the retry/fallback \
                   machinery; bypasses the cache via the fingerprint).")
  in
  let fault_seed_arg =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed selecting which grid points the injected faults hit.")
  in
  let run tele corner years axes cache jobs out report fault_rate fault_seed =
    with_telemetry tele @@ fun () ->
    let backend =
      if fault_rate > 0. then
        Characterize.Faulty
          ({ Characterize.rate = fault_rate; seed = fault_seed; depth = 1 },
           Characterize.default_backend)
      else Characterize.default_backend
    in
    let deglib = Deg.create ~backend ~axes ~years ~cache_dir:cache ~jobs () in
    let lib = Deg.corner deglib corner in
    Io.save out lib;
    Printf.printf "wrote %s: %d cells, corner %s, %g years\n" out
      (List.length (Aging_liberty.Library.entries lib))
      (Scenario.suffix corner) years;
    if report then begin
      match Deg.build_reports deglib with
      | [] ->
        print_string
          "library served from cache; no characterization was performed\n"
      | reports ->
        List.iter
          (fun (name, r) ->
            Printf.printf "[%s]\n%s" name (Characterize.report_to_string r))
          reports
    end
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Build a degradation-aware cell library")
    Term.(const run $ telemetry_term $ corner_arg $ years_arg $ axes_arg
          $ cache_arg $ jobs_arg $ out_arg $ report_arg $ fault_rate_arg
          $ fault_seed_arg)

(* ------------------------------ report ------------------------------ *)

let report_cmd =
  let run tele name corner years axes cache jobs =
    with_telemetry tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let fresh = Timing.analyze ~library:(Deg.fresh deglib) design in
    let aged = Timing.analyze ~library:(Deg.corner deglib corner) design in
    print_string (Report.summary fresh);
    print_string (Report.guardband ~fresh ~aged)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Static timing of a benchmark design, fresh vs aged")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg)

(* ---------------------------- guardband ---------------------------- *)

let guardband_cmd =
  let method_arg =
    Arg.(value & opt (enum [ ("full", `Full); ("vth-only", `Vth); ("single-opc", `Sopc);
                             ("cp-only", `Cp) ]) `Full
         & info [ "method" ] ~docv:"M"
             ~doc:"full | vth-only | single-opc | cp-only (prior-work models).")
  in
  let run tele name corner years axes cache jobs meth =
    with_telemetry tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let g =
      match meth with
      | `Full -> Guardband.static ~deglib ~corner design
      | `Vth -> Guardband.static ~mode:Degradation.Vth_only ~deglib ~corner design
      | `Sopc -> Guardband.single_opc ~deglib ~corner design
      | `Cp -> Guardband.initial_cp_only ~deglib ~corner design
    in
    Printf.printf "%s: fresh %.1f ps, aged %.1f ps, guardband %.1f ps (%.1f%%)\n"
      name
      (g.Guardband.fresh_period *. 1e12)
      (g.Guardband.aged_period *. 1e12)
      (g.Guardband.guardband *. 1e12)
      (g.Guardband.guardband /. g.Guardband.fresh_period *. 100.)
  in
  Cmd.v
    (Cmd.info "guardband" ~doc:"Estimate the aging guardband of a design")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg $ method_arg)

(* ------------------------------ synth ------------------------------ *)

let synth_cmd =
  let run tele name corner years axes cache jobs =
    with_telemetry tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let c = Aging_core.Aging_synthesis.run ~corner ~deglib design in
    let module AS = Aging_core.Aging_synthesis in
    Printf.printf
      "traditional: fresh %.1f ps, aged %.1f ps\n\
       aging-aware: fresh %.1f ps, aged %.1f ps\n\
       required guardband %.1f ps, contained %.1f ps (reduction %.1f%%)\n\
       frequency gain %.2f%%, area overhead %.2f%%\n"
      (c.AS.trad_fresh_period *. 1e12)
      (c.AS.trad_aged_period *. 1e12)
      (c.AS.aware_fresh_period *. 1e12)
      (c.AS.aware_aged_period *. 1e12)
      (AS.required_guardband c *. 1e12)
      (AS.contained_guardband c *. 1e12)
      (AS.guardband_reduction c *. 100.)
      (AS.frequency_gain c *. 100.)
      (AS.area_overhead c *. 100.)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Traditional vs aging-aware synthesis of a design")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg)

(* ------------------------------ export ------------------------------ *)

let export_cmd =
  let what_arg =
    Arg.(required & pos 0 (some (enum [ ("verilog", `Verilog); ("sdf", `Sdf);
                                        ("liberty", `Liberty) ])) None
         & info [] ~docv:"WHAT" ~doc:"verilog | sdf | liberty")
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let design_opt =
    let all = [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ] in
    Arg.(value & opt (some (enum (List.map (fun d -> (d, d)) all))) None
         & info [ "design" ] ~docv:"NAME" ~doc:"Design (verilog/sdf exports).")
  in
  let run tele what name corner years axes cache jobs out =
    with_telemetry tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let required_design () =
      match name with
      | Some n -> design_of n
      | None -> failwith "--design is required for verilog/sdf exports"
    in
    begin
      match what with
      | `Liberty ->
        Aging_liberty.Liberty_format.save out (Deg.corner deglib corner)
      | `Verilog -> Aging_netlist.Export.save out (required_design ())
      | `Sdf ->
        let analysis =
          Timing.analyze ~library:(Deg.corner deglib corner) (required_design ())
        in
        Aging_sta.Sdf.save out analysis
    end;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write Verilog netlists, aged SDF files, or .lib libraries")
    Term.(const run $ telemetry_term $ what_arg $ design_opt $ corner_arg
          $ years_arg $ axes_arg $ cache_arg $ jobs_arg $ out_arg)

(* ---------------------------- experiment ---------------------------- *)

let experiment_cmd =
  let which_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIG"
             ~doc:"fig1 fig2 fig3 fig5a fig5b fig5c fig6a fig6b fig6c fig7 \
                   libgen ablate-backend ablate-slew ablate-topk")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced design set / image size.")
  in
  let run tele which quick cache jobs =
    with_telemetry tele @@ fun () ->
    let t = Experiments.create ~quick ~cache_dir:cache ~jobs () in
    let report =
      match which with
      | "fig1" -> Experiments.fig1 t
      | "fig2" -> Experiments.fig2 t
      | "fig3" -> Experiments.fig3 t
      | "fig5a" -> Experiments.fig5a t
      | "fig5b" -> Experiments.fig5b t
      | "fig5c" -> Experiments.fig5c t
      | "fig6a" -> Experiments.fig6a t
      | "fig6b" -> Experiments.fig6b t
      | "fig6c" -> Experiments.fig6c t
      | "fig7" -> Experiments.fig7 t ()
      | "libgen" -> Experiments.libgen t ()
      | "ablate-backend" -> Experiments.ablate_backend t
      | "ablate-slew" -> Experiments.ablate_slew t
      | "ablate-topk" -> Experiments.ablate_topk t
      | other -> failwith ("unknown experiment: " ^ other)
    in
    print_string report
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's figures")
    Term.(const run $ telemetry_term $ which_arg $ quick_arg $ cache_arg
          $ jobs_arg)

let () =
  let info =
    Cmd.info "relaware" ~version:"1.0"
      ~doc:"Reliability-aware design to suppress aging (DAC'16 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ characterize_cmd; report_cmd; guardband_cmd; synth_cmd; export_cmd;
            experiment_cmd ]))
