(* relaware: command-line front end of the reliability-aware design flow.

   Subcommands:
     characterize  build a degradation-aware library and write it as .alib
     report        static timing of a benchmark design, fresh and aged
     guardband     guardband estimation (full / vth-only / single-opc / cp-only)
     synth         traditional vs aging-aware synthesis comparison
     experiment    run one of the paper's figure reproductions
     obs           inspect run-ledger records: report / trace / diff
     serve         resident aging-analysis daemon (deadlines, backpressure)
     query         client with capped, seeded exponential backoff
     soak          chaos soak: concurrent clients vs an injected-fault daemon
*)

open Cmdliner

module Scenario = Aging_physics.Scenario
module Degradation = Aging_physics.Degradation
module Axes = Aging_liberty.Axes
module Io = Aging_liberty.Io
module Characterize = Aging_liberty.Characterize
module Timing = Aging_sta.Timing
module Report = Aging_sta.Report
module Deg = Aging_core.Degradation_library
module Guardband = Aging_core.Guardband
module Designs = Aging_designs.Designs
module Experiments = Aging_core.Experiments

(* ------------------------- telemetry ------------------------- *)

(* Every subcommand shares the observability surface: log verbosity,
   optional metrics/trace dumps written when the command finishes (or
   dies — the dump runs in a [finally], so a crashed characterization
   still leaves its counters behind for a post-mortem), and an optional
   run-ledger append — the persistent record [relaware obs] reads back. *)

module Obs = Aging_obs
module Run_ledger = Aging_obs.Run_ledger
module Tablefmt = Aging_util.Tablefmt

type telemetry = {
  verbose : bool;
  quiet : bool;
  metrics_out : string option;
  trace_out : string option;
  ledger_dir : string option;
}

let telemetry_term =
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ]
             ~doc:"Debug-level logging (overrides $(b,AGING_LOG)).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ] ~doc:"Silence all progress logging.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the metrics registry (solver counters, cache \
                   hit/miss, per-span timing histograms) as JSON to \
                   $(docv) on exit; $(b,-) writes to stdout.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record hierarchical timed spans and write the trace as \
                   JSON to $(docv) on exit; $(b,-) writes to stdout.")
  in
  let ledger =
    Arg.(value & opt (some string) None
         & info [ "ledger" ] ~docv:"DIR"
             ~doc:"Append a run record (argv, git rev, wall time, outcome, \
                   metrics snapshot, recorded spans, QoR numbers) to \
                   $(docv)/ledger.jsonl on exit.  Inspect with \
                   $(b,relaware obs).")
  in
  Term.(const (fun verbose quiet metrics_out trace_out ledger_dir ->
            { verbose; quiet; metrics_out; trace_out; ledger_dir })
        $ verbose $ quiet $ metrics $ trace $ ledger)

(* "-" dumps to stdout so telemetry can be piped straight into jq. *)
let write_file path text =
  if path = "-" then (print_string text; flush stdout)
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)
  end

let with_telemetry ~cmd t f =
  if t.quiet then Obs.Log.set_level Obs.Log.Quiet
  else if t.verbose then Obs.Log.set_level Obs.Log.Debug;
  if t.trace_out <> None || t.ledger_dir <> None then
    Obs.Span.set_recording true;
  let started_at = Unix.gettimeofday () in
  let m0 = Obs.Span.elapsed () in
  let dump outcome =
    Option.iter
      (fun path ->
        write_file path
          (Obs.Json.to_string ~pretty:true (Obs.Metrics.to_json ()) ^ "\n"))
      t.metrics_out;
    Option.iter
      (fun path ->
        write_file path
          (Obs.Json.to_string ~pretty:true (Obs.Span.to_json ()) ^ "\n"))
      t.trace_out;
    Option.iter
      (fun dir ->
        let record =
          Run_ledger.capture ~tool:"relaware" ~subcommand:cmd ~outcome
            ~started_at ~wall_s:(Obs.Span.elapsed () -. m0) ()
        in
        let path = Run_ledger.append ~dir record in
        Obs.Log.infof "ledger" "run %s appended to %s" record.Run_ledger.id
          path)
      t.ledger_dir
  in
  match f () with
  | () -> dump Run_ledger.Finished
  | exception e ->
    dump (Run_ledger.Failed (Printexc.to_string e));
    raise e

(* ------------------------- shared arguments ------------------------- *)

let corner_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ p; n ] -> begin
      match (float_of_string_opt p, float_of_string_opt n) with
      | Some lambda_p, Some lambda_n -> begin
        match Scenario.corner ~lambda_p ~lambda_n with
        | c -> Ok c
        | exception Invalid_argument msg -> Error (`Msg msg)
      end
      | None, _ | _, None -> Error (`Msg "expected <lambda_p>,<lambda_n>")
    end
    | _ -> Error (`Msg "expected <lambda_p>,<lambda_n>")
  in
  let print fmt c = Format.fprintf fmt "%s" (Scenario.suffix c) in
  Arg.conv (parse, print)

let corner_arg =
  Arg.(value & opt corner_conv Scenario.worst_case
       & info [ "corner" ] ~docv:"LP,LN"
           ~doc:"Aging corner as pMOS,nMOS duty cycles (default worst case 1,1).")

let years_arg =
  Arg.(value & opt float 10. & info [ "years" ] ~docv:"YEARS" ~doc:"Lifetime in years.")

let grid_conv = Arg.enum [ ("paper", Axes.paper); ("coarse", Axes.coarse) ]

let axes_arg =
  Arg.(value & opt grid_conv Axes.paper
       & info [ "axes" ] ~docv:"GRID" ~doc:"OPC grid: paper (7x7) or coarse (3x3).")

let cache_arg =
  Arg.(value & opt string "_libcache"
       & info [ "cache" ] ~docv:"DIR" ~doc:"Library cache directory.")

let jobs_arg =
  Arg.(value & opt int (Aging_util.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for characterization (cells and corners in \
                 parallel; results are identical to $(b,--jobs 1)).  \
                 Default: $(b,AGING_JOBS) if set, else the recommended \
                 domain count of the machine.")

let design_arg =
  let all = [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ] in
  Arg.(required & opt (some (enum (List.map (fun d -> (d, d)) all))) None
       & info [ "design" ] ~docv:"NAME" ~doc:"Benchmark design name.")

let deglib_of ~axes ~years ~cache ~jobs =
  Deg.create ~axes ~years ~cache_dir:cache ~jobs ()

let design_of name =
  match Designs.by_name name with
  | Some d -> d
  | None -> failwith ("unknown design " ^ name)

(* --------------------------- characterize --------------------------- *)

let cells_arg =
  Arg.(value & opt (some string) None
       & info [ "cells" ] ~docv:"NAMES"
           ~doc:"Restrict characterization to these comma-separated catalog \
                 cells (default: the full catalog).")

let cells_of = function
  | None -> None
  | Some s ->
    Some
      (String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun n -> n <> "")
      |> List.map Aging_cells.Catalog.find_exn)

(* QoR probe for ledgered characterize runs: library-wide delay statistics
   plus a static timing pass of the 4-bit counter against the built aged
   library vs a fresh characterization of the same cells.  This puts a
   guardband number — a genuine quality axis, not just wall time and
   counters — into every record, so [obs diff] can catch a physics or
   characterization regression between two commits. *)
let note_characterize_qor ~axes ~jobs lib =
  let entries = Aging_liberty.Library.entries lib in
  let n = List.length entries in
  Run_ledger.note_qor "lib.cells" (float_of_int n);
  Run_ledger.note_qor "lib.arcs"
    (float_of_int
       (List.fold_left
          (fun a (e : Aging_liberty.Library.entry) ->
            a + List.length e.Aging_liberty.Library.arcs)
          0 entries));
  (* Arc-less cells (tie cells) report [neg_infinity]; keep them out of
     the statistics. *)
  let worsts =
    List.map Aging_liberty.Library.worst_delay entries
    |> List.filter Float.is_finite
  in
  if worsts <> [] then begin
    Run_ledger.note_qor "lib.worst_delay_ps"
      (1e12 *. List.fold_left Float.max neg_infinity worsts);
    Run_ledger.note_qor "lib.mean_worst_delay_ps"
      (1e12
      *. (List.fold_left ( +. ) 0. worsts
         /. float_of_int (List.length worsts)))
  end;
  let counter = Designs.counter ~bits:4 in
  let probe_cells =
    Array.to_list counter.Aging_netlist.Netlist.instances
    |> List.map (fun (i : Aging_netlist.Netlist.instance) ->
           Aging_netlist.Netlist.base_cell_name i.Aging_netlist.Netlist.cell_name)
    |> List.sort_uniq String.compare
  in
  let missing =
    List.filter (fun c -> Aging_liberty.Library.find lib c = None) probe_cells
  in
  if missing <> [] then
    Obs.Log.warnf "ledger" "guardband probe skipped: library lacks %s"
      (String.concat ", " missing)
  else begin
    let cells = List.map Aging_cells.Catalog.find_exn probe_cells in
    let fresh_lib = Characterize.fresh_library ~cells ~jobs ~axes () in
    let aged = Timing.analyze ~library:lib counter in
    let fresh = Timing.analyze ~library:fresh_lib counter in
    let fresh_ps = Timing.min_period fresh *. 1e12 in
    let aged_ps = Timing.min_period aged *. 1e12 in
    Run_ledger.note_qor "probe.fresh_ps" fresh_ps;
    Run_ledger.note_qor "probe.aged_ps" aged_ps;
    Run_ledger.note_qor "probe.guardband_ps" (aged_ps -. fresh_ps);
    Run_ledger.note_qor "probe.hold_slack_ps"
      (Timing.worst_hold_slack aged *. 1e12)
  end

let characterize_cmd =
  let out_arg =
    Arg.(value & opt string "degradation_aware.alib"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output .alib path.")
  in
  let report_arg =
    Arg.(value & flag
         & info [ "report" ]
             ~doc:"Print the characterization fault/repair report (points \
                   measured / retried / repaired / failed per cell and arc).")
  in
  let fault_rate_arg =
    Arg.(value & opt float 0.
         & info [ "fault-rate" ] ~docv:"P"
             ~doc:"Deterministically inject transient failures into this \
                   fraction of grid points (testing the retry/fallback \
                   machinery; bypasses the cache via the fingerprint).")
  in
  let fault_seed_arg =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed selecting which grid points the injected faults hit.")
  in
  let surrogate_arg =
    Arg.(value & flag
         & info [ "surrogate" ]
             ~doc:"Characterize through the learned surrogate: simulate a \
                   sparse deterministic subsample of each (slew, load) \
                   grid, fit per-arc ridge models against the cross-corner \
                   anchor pool, and serve every grid point whose predicted \
                   confidence interval stays within the tolerance; \
                   lower-confidence points are re-simulated.")
  in
  let surrogate_tol_arg =
    Arg.(value & opt float 2.0
         & info [ "surrogate-tol" ] ~docv:"PCT"
             ~doc:"Relative confidence tolerance of the surrogate, in \
                   percent (default 2).  A non-positive tolerance admits \
                   no prediction and degenerates to the exact full sweep.")
  in
  let surrogate_sample_arg =
    Arg.(value & opt int 12
         & info [ "surrogate-sample" ] ~docv:"N"
             ~doc:"Target seed simulations per (slew, load) grid (default \
                   12).")
  in
  let run tele corner years axes cache jobs cells out report fault_rate
      fault_seed surrogate surrogate_tol surrogate_sample =
    with_telemetry ~cmd:"characterize" tele @@ fun () ->
    (* Library builds can run for minutes; keep the runtime gauges moving
       so the ledger record (and any scrape) sees live GC/RSS numbers. *)
    Obs.Runtime.start_global ();
    let backend =
      if fault_rate > 0. then
        Characterize.Faulty
          ({ Characterize.rate = fault_rate; seed = fault_seed; depth = 1 },
           Characterize.default_backend)
      else Characterize.default_backend
    in
    let cells = cells_of cells in
    let surrogate =
      if surrogate then
        Some
          (Characterize.surrogate ~tol:(surrogate_tol /. 100.)
             ~sample:surrogate_sample ())
      else None
    in
    let deglib =
      Deg.create ~backend ?cells ~axes ~years ~cache_dir:cache ~jobs
        ?surrogate ()
    in
    let lib = Deg.corner deglib corner in
    Io.save out lib;
    Printf.printf "wrote %s: %d cells, corner %s, %g years\n" out
      (List.length (Aging_liberty.Library.entries lib))
      (Scenario.suffix corner) years;
    if tele.ledger_dir <> None then begin
      Run_ledger.note "jobs" (Obs.Json.Int jobs);
      note_characterize_qor ~axes ~jobs lib;
      (* Surrogate accounting of the corner build (anchor builds carry no
         provenance and contribute nothing here). *)
      List.iter
        (fun (_, r) ->
          match Characterize.report_surrogate r with
          | None -> ()
          | Some st ->
            Run_ledger.note_qor "surrogate.speedup"
              st.Characterize.fit_speedup;
            Run_ledger.note_qor "surrogate.predicted"
              (float_of_int st.Characterize.fit_predicted);
            Run_ledger.note_qor "surrogate.fallback"
              (float_of_int st.Characterize.fit_fallback))
        (Deg.build_reports deglib)
    end;
    if report then begin
      match Deg.build_reports deglib with
      | [] ->
        print_string
          "library served from cache; no characterization was performed\n"
      | reports ->
        List.iter
          (fun (name, r) ->
            Printf.printf "[%s]\n%s" name (Characterize.report_to_string r))
          reports
    end
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Build a degradation-aware cell library")
    Term.(const run $ telemetry_term $ corner_arg $ years_arg $ axes_arg
          $ cache_arg $ jobs_arg $ cells_arg $ out_arg $ report_arg
          $ fault_rate_arg $ fault_seed_arg $ surrogate_arg
          $ surrogate_tol_arg $ surrogate_sample_arg)

(* ------------------------------ report ------------------------------ *)

let report_cmd =
  let run tele name corner years axes cache jobs =
    with_telemetry ~cmd:"report" tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let fresh = Timing.analyze ~library:(Deg.fresh deglib) design in
    let aged = Timing.analyze ~library:(Deg.corner deglib corner) design in
    if tele.ledger_dir <> None then begin
      let fresh_ps = Timing.min_period fresh *. 1e12 in
      let aged_ps = Timing.min_period aged *. 1e12 in
      Run_ledger.note "design" (Obs.Json.String name);
      Run_ledger.note_qor "fresh_ps" fresh_ps;
      Run_ledger.note_qor "aged_ps" aged_ps;
      Run_ledger.note_qor "guardband_ps" (aged_ps -. fresh_ps)
    end;
    print_string (Report.summary fresh);
    print_string (Report.guardband ~fresh ~aged)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Static timing of a benchmark design, fresh vs aged")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg)

(* ---------------------------- guardband ---------------------------- *)

let guardband_cmd =
  let method_arg =
    Arg.(value & opt (enum [ ("full", `Full); ("vth-only", `Vth); ("single-opc", `Sopc);
                             ("cp-only", `Cp) ]) `Full
         & info [ "method" ] ~docv:"M"
             ~doc:"full | vth-only | single-opc | cp-only (prior-work models).")
  in
  let run tele name corner years axes cache jobs meth =
    with_telemetry ~cmd:"guardband" tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let g =
      match meth with
      | `Full -> Guardband.static ~deglib ~corner design
      | `Vth -> Guardband.static ~mode:Degradation.Vth_only ~deglib ~corner design
      | `Sopc -> Guardband.single_opc ~deglib ~corner design
      | `Cp -> Guardband.initial_cp_only ~deglib ~corner design
    in
    if tele.ledger_dir <> None then begin
      Run_ledger.note "design" (Obs.Json.String name);
      Run_ledger.note_qor "fresh_ps" (g.Guardband.fresh_period *. 1e12);
      Run_ledger.note_qor "aged_ps" (g.Guardband.aged_period *. 1e12);
      Run_ledger.note_qor "guardband_ps" (g.Guardband.guardband *. 1e12)
    end;
    Printf.printf "%s: fresh %.1f ps, aged %.1f ps, guardband %.1f ps (%.1f%%)\n"
      name
      (g.Guardband.fresh_period *. 1e12)
      (g.Guardband.aged_period *. 1e12)
      (g.Guardband.guardband *. 1e12)
      (g.Guardband.guardband /. g.Guardband.fresh_period *. 100.)
  in
  Cmd.v
    (Cmd.info "guardband" ~doc:"Estimate the aging guardband of a design")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg $ method_arg)

(* ------------------------------ synth ------------------------------ *)

let synth_cmd =
  let run tele name corner years axes cache jobs =
    with_telemetry ~cmd:"synth" tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let design = design_of name in
    let c = Aging_core.Aging_synthesis.run ~corner ~deglib design in
    let module AS = Aging_core.Aging_synthesis in
    if tele.ledger_dir <> None then begin
      Run_ledger.note "design" (Obs.Json.String name);
      Run_ledger.note_qor "trad_fresh_ps" (c.AS.trad_fresh_period *. 1e12);
      Run_ledger.note_qor "trad_aged_ps" (c.AS.trad_aged_period *. 1e12);
      Run_ledger.note_qor "aware_fresh_ps" (c.AS.aware_fresh_period *. 1e12);
      Run_ledger.note_qor "aware_aged_ps" (c.AS.aware_aged_period *. 1e12);
      Run_ledger.note_qor "guardband_reduction_pct"
        (AS.guardband_reduction c *. 100.);
      Run_ledger.note_qor "area_overhead_pct" (AS.area_overhead c *. 100.)
    end;
    Printf.printf
      "traditional: fresh %.1f ps, aged %.1f ps\n\
       aging-aware: fresh %.1f ps, aged %.1f ps\n\
       required guardband %.1f ps, contained %.1f ps (reduction %.1f%%)\n\
       frequency gain %.2f%%, area overhead %.2f%%\n"
      (c.AS.trad_fresh_period *. 1e12)
      (c.AS.trad_aged_period *. 1e12)
      (c.AS.aware_fresh_period *. 1e12)
      (c.AS.aware_aged_period *. 1e12)
      (AS.required_guardband c *. 1e12)
      (AS.contained_guardband c *. 1e12)
      (AS.guardband_reduction c *. 100.)
      (AS.frequency_gain c *. 100.)
      (AS.area_overhead c *. 100.)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Traditional vs aging-aware synthesis of a design")
    Term.(const run $ telemetry_term $ design_arg $ corner_arg $ years_arg
          $ axes_arg $ cache_arg $ jobs_arg)

(* ------------------------------ export ------------------------------ *)

let export_cmd =
  let what_arg =
    Arg.(required & pos 0 (some (enum [ ("verilog", `Verilog); ("sdf", `Sdf);
                                        ("liberty", `Liberty) ])) None
         & info [] ~docv:"WHAT" ~doc:"verilog | sdf | liberty")
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let design_opt =
    let all = [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ] in
    Arg.(value & opt (some (enum (List.map (fun d -> (d, d)) all))) None
         & info [ "design" ] ~docv:"NAME" ~doc:"Design (verilog/sdf exports).")
  in
  let run tele what name corner years axes cache jobs out =
    with_telemetry ~cmd:"export" tele @@ fun () ->
    let deglib = deglib_of ~axes ~years ~cache ~jobs in
    let required_design () =
      match name with
      | Some n -> design_of n
      | None -> failwith "--design is required for verilog/sdf exports"
    in
    begin
      match what with
      | `Liberty ->
        Aging_liberty.Liberty_format.save out (Deg.corner deglib corner)
      | `Verilog -> Aging_netlist.Export.save out (required_design ())
      | `Sdf ->
        let analysis =
          Timing.analyze ~library:(Deg.corner deglib corner) (required_design ())
        in
        Aging_sta.Sdf.save out analysis
    end;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write Verilog netlists, aged SDF files, or .lib libraries")
    Term.(const run $ telemetry_term $ what_arg $ design_opt $ corner_arg
          $ years_arg $ axes_arg $ cache_arg $ jobs_arg $ out_arg)

(* ---------------------------- experiment ---------------------------- *)

let experiment_cmd =
  let which_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIG"
             ~doc:"fig1 fig2 fig3 fig5a fig5b fig5c fig6a fig6b fig6c fig7 \
                   libgen ablate-backend ablate-slew ablate-topk")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced design set / image size.")
  in
  let run tele which quick cache jobs =
    with_telemetry ~cmd:("experiment-" ^ which) tele @@ fun () ->
    let t = Experiments.create ~quick ~cache_dir:cache ~jobs () in
    let report =
      match which with
      | "fig1" -> Experiments.fig1 t
      | "fig2" -> Experiments.fig2 t
      | "fig3" -> Experiments.fig3 t
      | "fig5a" -> Experiments.fig5a t
      | "fig5b" -> Experiments.fig5b t
      | "fig5c" -> Experiments.fig5c t
      | "fig6a" -> Experiments.fig6a t
      | "fig6b" -> Experiments.fig6b t
      | "fig6c" -> Experiments.fig6c t
      | "fig7" -> Experiments.fig7 t ()
      | "libgen" -> Experiments.libgen t ()
      | "ablate-backend" -> Experiments.ablate_backend t
      | "ablate-slew" -> Experiments.ablate_slew t
      | "ablate-topk" -> Experiments.ablate_topk t
      | other -> failwith ("unknown experiment: " ^ other)
    in
    print_string report
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's figures")
    Term.(const run $ telemetry_term $ which_arg $ quick_arg $ cache_arg
          $ jobs_arg)

(* ------------------------------ check ------------------------------ *)

(* Property-based differential verification: run the [Aging_check] oracle
   suite on random inputs with replayable seeds.  A failing case prints a
   shrunk minimal counterexample plus the exact command that replays it. *)

let check_cmd =
  let module Runner = Aging_check.Runner in
  let module Oracles = Aging_check.Oracles in
  let seed_arg =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base seed.  Case $(i,i) of a run derives its own seed \
                   from (SEED, i); the run is deterministic for a fixed \
                   seed, and a failure report names the derived case seed \
                   so $(b,--seed <it> --cases 1) replays just that case.")
  in
  let cases_arg =
    Arg.(value & opt int 200
         & info [ "cases" ] ~docv:"N" ~doc:"Random cases per oracle.")
  in
  let only_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"NAMES"
             ~doc:"Run only these comma-separated oracles (see $(b,--list)).")
  in
  let list_arg =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the oracles and exit.")
  in
  let run tele seed cases jobs only list_only =
    if list_only then
      List.iter
        (fun (o : Oracles.t) -> Printf.printf "%-20s %s\n" o.Oracles.name o.Oracles.doc)
        (Oracles.all ())
    else begin
      let failed = ref 0 in
      with_telemetry ~cmd:"check" tele (fun () ->
          (* Library builds inside the oracles narrate at info level;
             keep the report readable unless the user asked for detail. *)
          if (not tele.verbose) && not tele.quiet then
            Obs.Log.set_level Obs.Log.Warn;
          let oracles =
            match only with
            | None -> Oracles.all ()
            | Some names ->
              String.split_on_char ',' names
              |> List.map String.trim
              |> List.filter (fun n -> n <> "")
              |> List.map (fun n ->
                     match Oracles.find n with
                     | Some o -> o
                     | None -> failwith ("unknown oracle " ^ n ^ " (see --list)"))
          in
          if oracles = [] then failwith "no oracles selected";
          let total_cases = ref 0 in
          List.iter
            (fun (o : Oracles.t) ->
              let outcome = o.Oracles.run ~seed ~cases ~jobs in
              print_endline (Runner.pp_outcome outcome);
              total_cases := !total_cases + outcome.Runner.cases_run;
              let nfail = List.length outcome.Runner.failures in
              if nfail > 0 then incr failed;
              if tele.ledger_dir <> None then begin
                Run_ledger.note_qor
                  ("check." ^ o.Oracles.name ^ ".cases")
                  (float_of_int outcome.Runner.cases_run);
                Run_ledger.note_qor
                  ("check." ^ o.Oracles.name ^ ".failures")
                  (float_of_int nfail)
              end)
            oracles;
          if tele.ledger_dir <> None then begin
            Run_ledger.note "seed" (Obs.Json.String (Int64.to_string seed));
            Run_ledger.note_qor "check.oracles"
              (float_of_int (List.length oracles));
            Run_ledger.note_qor "check.cases" (float_of_int !total_cases);
            Run_ledger.note_qor "check.failed_oracles" (float_of_int !failed)
          end;
          if !failed = 0 then
            Printf.printf "all oracles passed (%d cases, seed %Ld)\n"
              !total_cases seed
          else
            Printf.printf "%d oracle(s) FAILED (seed %Ld)\n" !failed seed);
      if !failed > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Property-based differential verification with replayable seeds")
    Term.(const run $ telemetry_term $ seed_arg $ cases_arg $ jobs_arg
          $ only_arg $ list_arg)

(* ------------------------------- obs ------------------------------- *)

(* Readers over the run ledger: [obs report] (one record as a profile),
   [obs trace] (Chrome trace export) and [obs diff] (regression gate).
   These take their own --ledger (a place to read, default "runs") and do
   not go through [with_telemetry] — inspecting the ledger should never
   append to it. *)

let obs_ledger_arg =
  Arg.(value & opt string "runs"
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Ledger directory (reads $(docv)/ledger.jsonl).")

let load_ledger dir =
  match Run_ledger.load ~dir with
  | Ok [] -> failwith (Run_ledger.path ~dir ^ " holds no parseable records")
  | Ok records -> records
  | Error msg -> failwith msg

let select_run records sel =
  match Run_ledger.select records sel with
  | Ok r -> r
  | Error msg -> failwith msg

let run_selector_arg ~at ~default ~doc =
  Arg.(value & pos at string default & info [] ~docv:"RUN" ~doc)

let outcome_string = function
  | Run_ledger.Finished -> "finished"
  | Run_ledger.Failed msg -> "failed: " ^ msg

let utc_string epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d UTC" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Non-zero counters of a stored Metrics.to_json snapshot. *)
let counters_of_metrics = function
  | Obs.Json.Obj fields ->
    List.filter_map
      (fun (name, v) ->
        match
          (Obs.Json.member "type" v, Obs.Json.member "value" v)
        with
        | Some (Obs.Json.String "counter"), Some (Obs.Json.Int n) ->
          Some (name, n)
        | _ -> None)
      fields
  | _ -> []

let counter_value metrics name =
  Option.value ~default:0 (List.assoc_opt name (counters_of_metrics metrics))

let obs_report_cmd =
  let top_arg =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"N"
             ~doc:"Show the N hottest spans by self time (0 = all).")
  in
  let require_arg =
    Arg.(value & opt_all string []
         & info [ "require" ] ~docv:"QOR"
             ~doc:"Fail (exit 1) unless the record carries a QoR row named \
                   $(docv).  Repeatable; used by smoke gates.")
  in
  let run dir sel top required =
    let r = select_run (load_ledger dir) sel in
    List.iter
      (fun name ->
        if not (List.mem_assoc name r.Run_ledger.qor) then
          failwith
            (Printf.sprintf "run %s has no QoR row %S (rows: %s)"
               r.Run_ledger.id name
               (match r.Run_ledger.qor with
               | [] -> "none"
               | q -> String.concat ", " (List.map fst q))))
      required;
    print_string
      (Tablefmt.kv
         [ ("id", r.Run_ledger.id);
           ("command", r.Run_ledger.tool ^ " " ^ r.Run_ledger.subcommand);
           ("argv", String.concat " " r.Run_ledger.argv);
           ("git", Option.value ~default:"-" r.Run_ledger.git_rev);
           ("started", utc_string r.Run_ledger.started_at);
           ("wall", Printf.sprintf "%.3f s" r.Run_ledger.wall_s);
           ("outcome", outcome_string r.Run_ledger.outcome) ]);
    if r.Run_ledger.qor <> [] then begin
      print_string "\nqor:\n";
      print_string
        (Tablefmt.kv
           (List.map
              (fun (name, v) -> (name, Printf.sprintf "%.6g" v))
              r.Run_ledger.qor))
    end;
    let counters =
      List.filter (fun (_, n) -> n <> 0)
        (counters_of_metrics r.Run_ledger.metrics)
    in
    if counters <> [] then begin
      print_string "\ncounters:\n";
      print_string
        (Tablefmt.kv (List.map (fun (n, v) -> (n, string_of_int v)) counters))
    end;
    (match r.Run_ledger.spans with
     | [] -> print_string "\nno spans recorded\n"
     | spans ->
       let percentile name q =
         Option.bind
           (Obs.Json.member ("span." ^ name) r.Run_ledger.metrics)
           (fun entry ->
             Option.map
               (fun buckets -> Obs.Metrics.percentile_of_buckets buckets q)
               (Obs.Metrics.buckets_of_json entry))
       in
       let rows = Obs.Profile.of_spans ~percentile spans in
       print_newline ();
       print_string (Obs.Profile.to_table ~top rows);
       Printf.printf "self-time total %.6f s over %d root span(s) (%.6f s)\n"
         (Obs.Profile.total_self rows)
         (List.length spans)
         (Obs.Profile.total_roots spans);
       if r.Run_ledger.dropped_spans > 0 then
         Printf.printf "(%d spans dropped at record time)\n"
           r.Run_ledger.dropped_spans)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render one ledger record as a profile")
    Term.(const run $ obs_ledger_arg
          $ run_selector_arg ~at:0 ~default:"-1"
              ~doc:"Record selector: integer index (negative counts from \
                    the end, $(b,-1) = newest; place negative indices \
                    after a $(b,--) separator) or a unique id prefix."
          $ top_arg $ require_arg)

let obs_trace_cmd =
  let out_arg =
    Arg.(value & opt string "-"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Output path for the Chrome trace JSON ($(b,-) = stdout). \
                   Load it in Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let require_arg =
    Arg.(value & opt_all string []
         & info [ "require" ] ~docv:"NAME"
             ~doc:"Fail (exit 1) unless some recorded span's name starts \
                   with $(docv) (e.g. $(b,serve.req) asserts request-level \
                   spans).  Repeatable; used by smoke gates.")
  in
  let run dir sel out required =
    let r = select_run (load_ledger dir) sel in
    if r.Run_ledger.spans = [] then
      failwith
        (Printf.sprintf
           "run %s recorded no spans (was it run with --trace or --ledger?)"
           r.Run_ledger.id);
    let rec any_span pred spans =
      List.exists
        (fun s -> pred s || any_span pred s.Obs.Span.children)
        spans
    in
    List.iter
      (fun prefix ->
        if
          not
            (any_span
               (fun s ->
                 String.starts_with ~prefix s.Obs.Span.name)
               r.Run_ledger.spans)
        then
          failwith
            (Printf.sprintf "run %s has no span named %s*" r.Run_ledger.id
               prefix))
      required;
    write_file out
      (Obs.Trace_export.to_string r.Run_ledger.spans ^ "\n");
    if out <> "-" then
      Printf.printf "wrote %s: %d root span(s) from run %s\n" out
        (List.length r.Run_ledger.spans)
        r.Run_ledger.id
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export one ledger record's spans as a Chrome trace")
    Term.(const run $ obs_ledger_arg
          $ run_selector_arg ~at:0 ~default:"-1"
              ~doc:"Record selector (as in $(b,obs report))."
          $ out_arg $ require_arg)

(* Diff semantics: QoR rows gate at a relative tolerance (default 1%, per
   row overridable); the health counters gate one-sidedly on any increase
   (retries/repairs/corruption appearing where there were none is the
   regression, their disappearance is not); wall time is informational
   unless given an explicit tolerance — a cache-served rerun is legitimately
   ~100x faster than a cold build and must not trip the gate. *)
let health_counters =
  [ "characterize.points.retried"; "characterize.points.repaired";
    "characterize.points.failed"; "cache.corrupt" ]

let obs_diff_cmd =
  let tol_arg =
    Arg.(value & opt_all string []
         & info [ "tol" ] ~docv:"PCT|NAME=PCT"
             ~doc:"Relative tolerance in percent: a bare number replaces \
                   the 1% default for all QoR rows, $(i,NAME=PCT) sets one \
                   row (e.g. $(b,--tol wall_s=50) gates wall time). \
                   Repeatable.")
  in
  let parse_tols specs =
    List.fold_left
      (fun (dflt, named) spec ->
        let pct_of s =
          match float_of_string_opt (String.trim s) with
          | Some p when p >= 0. -> p
          | _ -> failwith ("--tol: bad percentage in " ^ spec)
        in
        match String.index_opt spec '=' with
        | Some i ->
          let name = String.trim (String.sub spec 0 i) in
          let pct =
            pct_of (String.sub spec (i + 1) (String.length spec - i - 1))
          in
          (dflt, (name, pct) :: named)
        | None -> (pct_of spec, named))
      (1., []) specs
  in
  let allow_missing_arg =
    Arg.(value & flag
         & info [ "allow-missing-baseline" ]
             ~doc:"Exit 0 with a note when the baseline record does not \
                   exist yet (e.g. the very first run of a freshly created \
                   ledger) instead of failing.  The candidate must still \
                   resolve.")
  in
  let run dir sel_a sel_b tols allow_missing =
    let default_tol, named_tols = parse_tols tols in
    let baseline =
      (* With --allow-missing-baseline, an unresolvable baseline — ledger
         unreadable or the selector out of range — means "nothing to diff
         against yet", not an error. *)
      match Run_ledger.load ~dir with
      | Ok (_ :: _ as records) -> (
        match Run_ledger.select records sel_a with
        | Ok a -> Ok (records, a)
        | Error msg -> Error msg)
      | Ok [] -> Error (Run_ledger.path ~dir ^ " holds no parseable records")
      | Error msg -> Error msg
    in
    match baseline with
    | Error msg when allow_missing ->
      Printf.printf "no baseline record (%s); nothing to diff yet\n" msg
    | Error msg -> failwith msg
    | Ok (records, a) ->
    let b = select_run records sel_b in
    Printf.printf "A %s  %s %s  %s\nB %s  %s %s  %s\n\n" a.Run_ledger.id
      a.Run_ledger.tool a.Run_ledger.subcommand
      (utc_string a.Run_ledger.started_at)
      b.Run_ledger.id b.Run_ledger.tool b.Run_ledger.subcommand
      (utc_string b.Run_ledger.started_at);
    let tol_for name ~fallback =
      match List.assoc_opt name named_tols with
      | Some t -> t
      | None -> fallback
    in
    (* One row per comparison; [gate] decides breach from the two values. *)
    let breached = ref [] in
    let fmt_v = function
      | None -> "-"
      | Some v -> Printf.sprintf "%.6g" v
    in
    let qor_names =
      List.map fst a.Run_ledger.qor
      @ List.filter
          (fun n -> not (List.mem_assoc n a.Run_ledger.qor))
          (List.map fst b.Run_ledger.qor)
    in
    let relative_row name va vb tol =
      let delta, status =
        match (va, vb) with
        | Some va, Some vb
          when Float.is_finite va && Float.is_finite vb ->
          let delta =
            if va <> 0. then Some ((vb -. va) /. Float.abs va *. 100.)
            else None
          in
          let breach =
            Float.is_finite tol
            && (match delta with
                | Some d -> Float.abs d > tol
                | None -> vb <> 0.)  (* A = 0: any move off zero gates *)
          in
          (delta, if breach then `Breach else if Float.is_finite tol then `Ok else `Info)
        | _ -> (None, `Info)  (* one-sided or non-finite: informational *)
      in
      (name, va, vb, delta, Printf.sprintf "%g%%" tol, status)
    in
    let counter_row name =
      let va = counter_value a.Run_ledger.metrics name in
      let vb = counter_value b.Run_ledger.metrics name in
      let delta =
        if va <> 0 then Some (float_of_int (vb - va) /. float_of_int va *. 100.)
        else None
      in
      ( name, Some (float_of_int va), Some (float_of_int vb), delta,
        "B<=A", if vb > va then `Breach else `Ok )
    in
    let rows =
      relative_row "wall_s" (Some a.Run_ledger.wall_s)
        (Some b.Run_ledger.wall_s)
        (tol_for "wall_s" ~fallback:infinity)
      :: List.map
           (fun name ->
             relative_row name
               (List.assoc_opt name a.Run_ledger.qor)
               (List.assoc_opt name b.Run_ledger.qor)
               (tol_for name ~fallback:default_tol))
           qor_names
      @ List.map counter_row health_counters
    in
    let body =
      List.map
        (fun (name, va, vb, delta, tol, status) ->
          (match status with
           | `Breach -> breached := name :: !breached
           | `Ok | `Info -> ());
          [ name; fmt_v va; fmt_v vb;
            (match delta with
             | Some d -> Printf.sprintf "%+.2f%%" d
             | None -> "-");
            tol;
            (match status with
             | `Breach -> "BREACH"
             | `Ok -> "ok"
             | `Info -> "info") ])
        rows
    in
    Tablefmt.print ~align:[ Tablefmt.Left ]
      ~header:[ "metric"; "A"; "B"; "delta"; "tol"; "status" ]
      body;
    match List.rev !breached with
    | [] -> print_string "\nno regressions\n"
    | names ->
      Printf.printf "\nregression: %s\n" (String.concat ", " names);
      exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two ledger records and gate on regressions")
    Term.(const run $ obs_ledger_arg
          $ run_selector_arg ~at:0 ~default:"-2"
              ~doc:"Baseline record (default $(b,-2), the second newest)."
          $ run_selector_arg ~at:1 ~default:"-1"
              ~doc:"Candidate record (default $(b,-1), the newest)."
          $ tol_arg $ allow_missing_arg)

(* Pretty-print a flight-recorder dump (JSONL from `relaware serve
   --flight-dump` + SIGQUIT, or a dump_flight query).  Timestamps render
   relative to the first surviving event — the absolute monotonic origin
   is process-local and meaningless to a reader. *)
let obs_flight_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Flight-recorder JSONL dump.")
  in
  let require_arg =
    Arg.(value & opt_all string []
         & info [ "require" ] ~docv:"KIND"
             ~doc:"Fail (exit 1) unless an event of kind $(docv) (e.g. \
                   $(b,worker.death)) is present.  Repeatable; used by \
                   smoke gates.")
  in
  let run file required =
    match Obs.Flightrec.load_jsonl file with
    | Error msg -> failwith (file ^ ": " ^ msg)
    | Ok [] -> failwith (file ^ ": empty flight dump")
    | Ok events ->
      let t0 =
        match events with e :: _ -> e.Obs.Flightrec.t_mono | [] -> 0.
      in
      let field_str (k, v) = k ^ "=" ^ Obs.Json.to_string v in
      Tablefmt.print
        ~align:[ Tablefmt.Right; Tablefmt.Right; Tablefmt.Left; Tablefmt.Left ]
        ~header:[ "seq"; "t+ms"; "kind"; "fields" ]
        (List.map
           (fun e ->
             [ string_of_int e.Obs.Flightrec.seq;
               Printf.sprintf "%.2f"
                 ((e.Obs.Flightrec.t_mono -. t0) *. 1e3);
               e.Obs.Flightrec.kind;
               String.concat " "
                 (List.map field_str e.Obs.Flightrec.fields) ])
           events);
      let kinds =
        List.sort_uniq compare
          (List.map (fun e -> e.Obs.Flightrec.kind) events)
      in
      Printf.printf "\n%d event(s), kinds: %s\n" (List.length events)
        (String.concat ", " kinds);
      List.iter
        (fun kind ->
          if not (List.mem kind kinds) then
            failwith
              (Printf.sprintf "%s: no event of kind %S" file kind))
        required
  in
  Cmd.v
    (Cmd.info "flight" ~doc:"Pretty-print a flight-recorder dump")
    Term.(const run $ file_arg $ require_arg)

(* Export one record's stored metrics snapshot in a machine-readable
   format — OpenMetrics text so archived runs can be pushed at anything
   that speaks Prometheus, or the raw stored JSON. *)
let obs_export_cmd =
  let format_arg =
    Arg.(value & opt (enum [ ("openmetrics", `Openmetrics); ("json", `Json) ])
           `Openmetrics
         & info [ "format" ] ~docv:"FMT"
             ~doc:"openmetrics (Prometheus text exposition) or json (the \
                   stored snapshot verbatim).")
  in
  let out_arg =
    Arg.(value & opt string "-"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Output path ($(b,-) = stdout).")
  in
  let run dir sel format out =
    let r = select_run (load_ledger dir) sel in
    let text =
      match format with
      | `Json -> Obs.Json.to_string ~pretty:true r.Run_ledger.metrics ^ "\n"
      | `Openmetrics -> begin
        match Obs.Openmetrics.render_stored r.Run_ledger.metrics with
        | Ok text -> text
        | Error msg ->
          failwith
            (Printf.sprintf "run %s: metrics snapshot unreadable: %s"
               r.Run_ledger.id msg)
      end
    in
    write_file out text;
    if out <> "-" then
      Printf.printf "wrote %s from run %s\n" out r.Run_ledger.id
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export one ledger record's metrics snapshot (OpenMetrics or \
             JSON)")
    Term.(const run $ obs_ledger_arg
          $ run_selector_arg ~at:0 ~default:"-1"
              ~doc:"Record selector (as in $(b,obs report))."
          $ format_arg $ out_arg)

(* Time-series view over the last N records: sparkline per metric, robust
   drift score of the newest value against the trailing window.  [--gate]
   turns the Drift verdicts into exit 1 — the multi-run complement of the
   pairwise [obs diff]. *)
let obs_history_cmd =
  let last_arg =
    Arg.(value & opt int 20
         & info [ "last" ] ~docv:"N"
             ~doc:"Consider only the newest $(docv) records (0 = all).")
  in
  let metric_arg =
    Arg.(value & opt_all string []
         & info [ "metric" ] ~docv:"NAME"
             ~doc:"Show only this metric (repeatable; default: every QoR \
                   row plus the standard health counters).")
  in
  let cmd_arg =
    Arg.(value & opt (some string) None
         & info [ "cmd" ] ~docv:"SUB"
             ~doc:"Consider only records of this subcommand (e.g. \
                   $(b,soak)), so series are not polluted by unrelated \
                   runs sharing the ledger.")
  in
  let gate_arg =
    Arg.(value & flag
         & info [ "gate" ]
             ~doc:"Exit 1 naming every drifting metric.  Rows whose \
                   trailing window is shorter than $(b,--min-window) are \
                   informational and never gate.")
  in
  let z_arg =
    Arg.(value & opt float 4.
         & info [ "z" ] ~docv:"Z"
             ~doc:"Robust z-score threshold (deviation from the trailing \
                   window's median in MAD-sigmas).")
  in
  let min_window_arg =
    Arg.(value & opt int 4
         & info [ "min-window" ] ~docv:"N"
             ~doc:"Minimum trailing-window size for a verdict.")
  in
  let run dir last metrics cmd gate z min_window =
    let records = load_ledger dir in
    let records =
      match cmd with
      | None -> records
      | Some sub ->
        List.filter (fun r -> r.Run_ledger.subcommand = sub) records
    in
    let records =
      if last <= 0 then records
      else begin
        let n = List.length records in
        if n <= last then records
        else List.filteri (fun i _ -> i >= n - last) records
      end
    in
    if records = [] then failwith "obs history: no records selected";
    let rows = Obs.History.rows_of_records records in
    let rows =
      match metrics with
      | [] -> rows
      | wanted ->
        List.iter
          (fun name ->
            if not (List.exists (fun r -> r.Obs.History.r_name = name) rows)
            then
              failwith
                (Printf.sprintf "obs history: no series named %S" name))
          wanted;
        List.filter (fun r -> List.mem r.Obs.History.r_name wanted) rows
    in
    if rows = [] then failwith "obs history: selected records carry no series";
    let gated =
      List.map (Obs.History.gate ~z_thresh:z ~min_window) rows
    in
    let fmt_f v = if Float.is_nan v then "-" else Printf.sprintf "%.6g" v in
    Tablefmt.print
      ~align:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ]
      ~header:[ "metric"; "n"; "trend"; "median"; "last"; "z"; "status" ]
      (List.map
         (fun (g : Obs.History.gated) ->
           let row = g.Obs.History.g_row in
           [ row.Obs.History.r_name;
             string_of_int (Array.length row.Obs.History.r_values);
             Obs.History.sparkline row.Obs.History.r_values;
             fmt_f g.Obs.History.g_median;
             fmt_f g.Obs.History.g_last;
             (if Float.is_nan g.Obs.History.g_z then "-"
              else Printf.sprintf "%.2f" g.Obs.History.g_z);
             (match g.Obs.History.g_status with
             | Obs.History.Pass -> "ok"
             | Obs.History.Drift -> "DRIFT"
             | Obs.History.Short -> "short") ])
         gated);
    Printf.printf "\n%d record(s), window = all but newest, z threshold %g\n"
      (List.length records) z;
    let drifting =
      List.filter_map
        (fun (g : Obs.History.gated) ->
          match g.Obs.History.g_status with
          | Obs.History.Drift -> Some g.Obs.History.g_row.Obs.History.r_name
          | Obs.History.Pass | Obs.History.Short -> None)
        gated
    in
    match drifting with
    | [] -> if gate then print_string "no drift\n"
    | names ->
      Printf.printf "drift: %s\n" (String.concat ", " names);
      if gate then exit 1
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Per-metric trends over the last N ledger records, with \
             sparklines and a robust drift gate")
    Term.(const run $ obs_ledger_arg $ last_arg $ metric_arg $ cmd_arg
          $ gate_arg $ z_arg $ min_window_arg)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Inspect run-ledger records: report, trace export, regression \
             diff, flight-recorder dumps, metric export, drift history")
    [ obs_report_cmd; obs_trace_cmd; obs_diff_cmd; obs_flight_cmd;
      obs_export_cmd; obs_history_cmd ]

(* ------------------------ serve / query / soak ------------------------ *)

module Serve = Aging_serve

let socket_arg =
  Arg.(value & opt string "relaware.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket path (limit ~100 chars).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Use loopback TCP port $(docv) instead of the unix socket.")

let addr_of socket port : Serve.Client.addr =
  match port with Some p -> `Tcp p | None -> `Unix socket

let chaos_term =
  let kill =
    Arg.(value & opt float 0.
         & info [ "chaos-kill" ] ~docv:"RATE"
             ~doc:"Fraction of requests that kill their worker domain \
                   (supervisor restart test).")
  in
  let crash =
    Arg.(value & opt float 0.
         & info [ "chaos-crash" ] ~docv:"RATE"
             ~doc:"Fraction of requests whose handler raises (typed \
                   $(b,internal) isolation test).")
  in
  let slow =
    Arg.(value & opt float 0.
         & info [ "chaos-slow" ] ~docv:"RATE"
             ~doc:"Fraction of requests stalled before execution \
                   (deadline and backpressure test).")
  in
  let slow_s =
    Arg.(value & opt float 0.1
         & info [ "chaos-slow-s" ] ~docv:"S" ~doc:"Stall length in seconds.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "chaos-seed" ] ~docv:"N"
             ~doc:"Chaos decision seed: a fixed seed sabotages the same \
                   request ids.")
  in
  Term.(const (fun kill_rate crash_rate slow_rate slow_s seed ->
            Serve.Chaos.validated
              { Serve.Chaos.kill_rate; crash_rate; slow_rate; slow_s; seed })
        $ kill $ crash $ slow $ slow_s $ seed)

let workers_arg =
  Arg.(value & opt int 2
       & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (>= 1).")

let queue_cap_arg =
  Arg.(value & opt int 64
       & info [ "queue-cap" ] ~docv:"N"
           ~doc:"Bounded request queue; a full queue sheds with a typed \
                 $(b,overloaded) refusal.")

let deadline_opt_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"S"
           ~doc:"Default per-request deadline in seconds (requests may \
                 override); expired requests get a typed $(b,timeout).")

let drain_arg =
  Arg.(value & opt float 5.
       & info [ "drain-timeout" ] ~docv:"S"
           ~doc:"On SIGTERM/SIGINT: finish in-flight work for up to \
                 $(docv) seconds before stopping.")

let slow_ms_arg =
  Arg.(value & opt (some float) None
       & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Warn-log requests slower than $(docv) ms end to end, with \
                 trace id and queue/exec phase breakdown (default: off).")

let flight_dump_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-dump" ] ~docv:"FILE"
           ~doc:"Dump the flight recorder (ring buffer of request/worker/\
                 chaos events) to $(docv) as JSONL on SIGQUIT and on crash. \
                 Inspect with $(b,relaware obs flight).")

let flight_cap_arg =
  Arg.(value & opt (some int) None
       & info [ "flight-cap" ] ~docv:"N"
           ~doc:"Resize the flight-recorder ring to hold $(docv) events \
                 (default 4096, or $(b,AGING_FLIGHT_CAP)).  A small cap \
                 keeps only the newest events — cheap always-on forensics.")

let apply_flight_cap cap =
  Option.iter
    (fun n ->
      if n <= 0 then failwith "--flight-cap must be positive";
      Obs.Flightrec.set_capacity Obs.Flightrec.global n)
    cap

let metrics_port_arg =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve the OpenMetrics exposition on \
                 http://127.0.0.1:$(docv)/metrics (plus /health); \
                 $(b,0) picks an ephemeral port (logged at startup).")

let stall_after_arg =
  Arg.(value & opt (some float) (Some 5.)
       & info [ "stall-after" ] ~docv:"S"
           ~doc:"Watchdog budget: flag a worker stalled when one job \
                 executes longer than $(docv) seconds (flight event, \
                 $(b,serve.worker.stalled) counter, $(b,health) verdict). \
                 Negative disables the watchdog.")

let rss_limit_arg =
  Arg.(value & opt (some float) None
       & info [ "rss-limit-mb" ] ~docv:"MB"
           ~doc:"Report $(b,unhealthy) when resident set size exceeds \
                 $(docv) MB.")

let server_config_of ~socket ~port ~workers ~queue_cap ~deadline ~drain ~chaos
    ~slow_ms ~metrics_port ~stall_after ~rss_limit =
  let stall_after_s =
    match stall_after with Some s when s <= 0. -> None | s -> s
  in
  {
    Serve.Server.addr = (addr_of socket port :> [ `Unix of string | `Tcp of int ]);
    workers;
    queue_cap;
    default_deadline_s = deadline;
    drain_timeout_s = drain;
    max_frame = Serve.Frame.default_max_frame;
    chaos;
    slow_ms;
    metrics_port;
    stall_after_s;
    rss_limit_mb = rss_limit;
  }

let note_serve_qor () =
  List.iter
    (fun name ->
      Option.iter (Run_ledger.note_qor name) (Obs.Metrics.value_by_name name))
    [ "serve.requests"; "serve.replies_ok"; "serve.refused_overloaded";
      "serve.refused_timeout"; "serve.worker_restarts"; "serve.bad_frames" ]

let serve_cmd =
  let run tele socket port workers queue_cap deadline drain chaos slow_ms
      flight_dump flight_cap metrics_port stall_after rss_limit axes years
      cache jobs cells =
    with_telemetry ~cmd:"serve" tele @@ fun () ->
    apply_flight_cap flight_cap;
    Obs.Runtime.start_global ();
    let go () =
      let queries =
        Serve.Queries.create ~axes ~years ~cache_dir:cache ~jobs
          ?cells:(cells_of cells) ()
      in
      let cfg =
        server_config_of ~socket ~port ~workers ~queue_cap ~deadline ~drain
          ~chaos ~slow_ms ~metrics_port ~stall_after ~rss_limit
      in
      let server =
        Serve.Server.start ~handler:(Serve.Queries.handle queries) cfg
      in
      Option.iter
        (fun p ->
          Obs.Log.infof "serve" "metrics on http://127.0.0.1:%d/metrics" p)
        (Serve.Server.metrics_port server);
      Serve.Server.install_signal_handlers ?flight_dump server;
      Serve.Server.await server;
      note_serve_qor ()
    in
    match go () with
    | () -> ()
    | exception e ->
      (* Post-mortem: the ring survives to the dump even when serve dies. *)
      Option.iter Serve.Server.dump_flight_to flight_dump;
      raise e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident aging-analysis daemon (drains gracefully on \
             SIGTERM/SIGINT; SIGQUIT dumps the flight recorder)")
    Term.(const run $ telemetry_term $ socket_arg $ port_arg $ workers_arg
          $ queue_cap_arg $ deadline_opt_arg $ drain_arg $ chaos_term
          $ slow_ms_arg $ flight_dump_arg $ flight_cap_arg $ metrics_port_arg
          $ stall_after_arg $ rss_limit_arg
          $ axes_arg $ years_arg $ cache_arg $ jobs_arg $ cells_arg)

let query_cmd =
  let op_arg =
    let ops =
      [ ("ping", `Ping); ("stats", `Stats); ("health", `Health);
        ("shutdown", `Shutdown); ("flight", `Flight);
        ("guardband", `Guardband); ("delay", `Delay); ("sleep", `Sleep) ]
    in
    Arg.(required & pos 0 (some (enum ops)) None
         & info [] ~docv:"OP"
             ~doc:"One of ping, stats, health (watchdog/saturation/RSS \
                   verdict with machine-readable reasons), shutdown, \
                   flight (on-demand flight-recorder dump), guardband, \
                   delay, sleep.")
  in
  let design_opt =
    let all = [ "DSP"; "FFT"; "RISC-6P"; "RISC-5P"; "VLIW"; "DCT"; "IDCT" ] in
    Arg.(value & opt (some (enum (List.map (fun d -> (d, d)) all))) None
         & info [ "design" ] ~docv:"NAME" ~doc:"Design for $(b,guardband).")
  in
  let cell_opt =
    Arg.(value & opt (some string) None
         & info [ "cell" ] ~docv:"NAME" ~doc:"Catalog cell for $(b,delay).")
  in
  let slew_opt =
    Arg.(value & opt (some float) None
         & info [ "slew" ] ~docv:"S" ~doc:"Input slew for $(b,delay).")
  in
  let load_opt =
    Arg.(value & opt (some float) None
         & info [ "load" ] ~docv:"F" ~doc:"Output load for $(b,delay).")
  in
  let seconds_arg =
    Arg.(value & opt float 0.1
         & info [ "seconds" ] ~docv:"S" ~doc:"Length of a $(b,sleep) request.")
  in
  let attempts_arg =
    Arg.(value & opt int Aging_util.Retry.default_backoff.Aging_util.Retry.max_attempts
         & info [ "attempts" ] ~docv:"N"
             ~doc:"Retry budget: capped exponential backoff over at most \
                   $(docv) attempts.")
  in
  let budget_arg =
    Arg.(value & opt float Aging_util.Retry.default_backoff.Aging_util.Retry.budget
         & info [ "budget" ] ~docv:"S"
             ~doc:"Total retry deadline across all attempts and sleeps.")
  in
  let seed_arg =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"N"
             ~doc:"Backoff jitter seed; a fixed seed gives a bit-identical \
                   retry schedule.")
  in
  let run tele socket port op design cell slew load seconds corner deadline
      attempts budget seed =
    with_telemetry ~cmd:"query" tele @@ fun () ->
    let req =
      match op with
      | `Ping -> Serve.Protocol.Ping
      | `Stats -> Serve.Protocol.Stats
      | `Health -> Serve.Protocol.Health
      | `Shutdown -> Serve.Protocol.Shutdown
      | `Flight -> Serve.Protocol.Dump_flight
      | `Sleep -> Serve.Protocol.Sleep seconds
      | `Guardband -> begin
        match design with
        | Some design -> Serve.Protocol.Guardband { design; corner }
        | None -> failwith "query guardband: --design is required"
      end
      | `Delay -> begin
        match cell with
        | Some cell -> Serve.Protocol.Delay { cell; corner; slew; load }
        | None -> failwith "query delay: --cell is required"
      end
    in
    let backoff =
      { Aging_util.Retry.default_backoff with max_attempts = attempts; budget }
    in
    let rng = Aging_util.Rng.create (Int64.of_int seed) in
    let outcome =
      Serve.Client.request ~backoff ~rng ?deadline_s:deadline
        (addr_of socket port) req
    in
    (match Aging_util.Retry.errors outcome with
    | [] -> ()
    | errors ->
      List.iter
        (fun e ->
          Obs.Log.warnf "query" "attempt failed: %s"
            (Serve.Client.error_to_string e))
        errors);
    match Aging_util.Retry.succeeded outcome with
    | Some data ->
      print_endline (Obs.Json.to_string ~pretty:true data);
      Run_ledger.note_qor "query.attempts"
        (float_of_int (Aging_util.Retry.attempts outcome))
    | None -> failwith "query failed: retry budget exhausted"
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Query a running daemon (capped exponential backoff with \
             seeded jitter)")
    Term.(const run $ telemetry_term $ socket_arg $ port_arg $ op_arg
          $ design_opt $ cell_opt $ slew_opt $ load_opt $ seconds_arg
          $ corner_arg $ deadline_opt_arg $ attempts_arg $ budget_arg
          $ seed_arg)

(* The soak forks the daemon into a child process before this process
   spawns any domain or thread, so the parent is a pure client fleet and
   the child's SIGTERM drain is exercised across a real process
   boundary. *)
let soak_cmd =
  let clients_arg =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let duration_arg =
    Arg.(value & opt float 2.
         & info [ "duration" ] ~docv:"S" ~doc:"Soak length in seconds.")
  in
  let soak_deadline_arg =
    Arg.(value & opt float 0.25
         & info [ "request-deadline" ] ~docv:"S"
             ~doc:"Per-request deadline during the soak.")
  in
  let soak_seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Workload and jitter seed.")
  in
  let corrupt_arg =
    Arg.(value & opt float 0.05
         & info [ "corrupt-rate" ] ~docv:"RATE"
             ~doc:"Fraction of iterations sending a deliberately corrupt \
                   frame.")
  in
  let heavy_arg =
    Arg.(value & opt float 0.15
         & info [ "heavy-rate" ] ~docv:"RATE"
             ~doc:"Fraction of iterations issuing a worker-occupying sleep.")
  in
  let attach_arg =
    Arg.(value & flag
         & info [ "attach" ]
             ~doc:"Soak an already-running daemon at --socket/--port \
                   instead of forking one.")
  in
  let server_obs_arg =
    Arg.(value & opt (some string) None
         & info [ "server-obs" ] ~docv:"DIR"
             ~doc:"Record the forked daemon's own telemetry: span recording \
                   on (per-request phase spans) and a $(b,serve) ledger \
                   record appended to $(docv) when the daemon drains.  \
                   Export with $(b,relaware obs trace).")
  in
  let expect_stall_arg =
    Arg.(value & flag
         & info [ "expect-stall" ]
             ~doc:"Fail unless the post-storm $(b,health) verdict proves \
                   the watchdog flagged at least one stalled worker \
                   (cumulative $(b,serve.worker.stalled) > 0).  Used by \
                   the health smoke gate with heavy $(b,--chaos-slow).")
  in
  let run tele socket port attach clients duration deadline seed corrupt
      heavy workers queue_cap drain chaos slow_ms flight_dump flight_cap
      metrics_port stall_after expect_stall server_obs =
    with_telemetry ~cmd:"soak" tele @@ fun () ->
    apply_flight_cap flight_cap;
    (match metrics_port with
    | Some 0 ->
      failwith
        "soak: --metrics-port 0 (ephemeral) is not scrapeable from the \
         parent; pass a concrete port"
    | _ -> ());
    Obs.Runtime.start_global ();
    let addr, child =
      if attach then (addr_of socket port, None)
      else begin
        let path =
          Printf.sprintf "%s/relaware-soak-%d.sock"
            (Filename.get_temp_dir_name ()) (Unix.getpid ())
        in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          (* Child: the daemon.  Exit without returning into cmdliner so
             the parent's telemetry dump is not duplicated. *)
          let code =
            try
              if server_obs <> None then Obs.Span.set_recording true;
              Obs.Runtime.start_global ();
              let started_at = Unix.gettimeofday () in
              let m0 = Obs.Span.elapsed () in
              let queries =
                Serve.Queries.create ~axes:Axes.coarse
                  ~cells:[ Aging_cells.Catalog.find_exn "INV_X1" ] ()
              in
              let cfg =
                server_config_of ~socket:path ~port:None ~workers ~queue_cap
                  ~deadline:None ~drain ~chaos ~slow_ms ~metrics_port
                  ~stall_after ~rss_limit:None
              in
              let server =
                Serve.Server.start ~handler:(Serve.Queries.handle queries) cfg
              in
              Serve.Server.install_signal_handlers ?flight_dump server;
              Serve.Server.await server;
              (* The daemon's own run record: serve.* QoR counters plus the
                 per-request spans, appended from inside the child so the
                 storm's server-side story survives the process. *)
              Option.iter
                (fun dir ->
                  note_serve_qor ();
                  let record =
                    Run_ledger.capture ~tool:"relaware" ~subcommand:"serve"
                      ~outcome:Run_ledger.Finished ~started_at
                      ~wall_s:(Obs.Span.elapsed () -. m0) ()
                  in
                  ignore (Run_ledger.append ~dir record))
                server_obs;
              0
            with e ->
              Printf.eprintf "soak daemon died: %s\n%!" (Printexc.to_string e);
              1
          in
          Stdlib.exit code
        | pid -> ((`Unix path : Serve.Client.addr), Some pid)
      end
    in
    (* Wait for the daemon to answer before unleashing the fleet. *)
    let rec wait_ready tries =
      if tries = 0 then failwith "soak: daemon did not come up"
      else
        match Serve.Client.connect addr with
        | Ok conn ->
          let alive =
            Serve.Client.call ~deadline_s:1. conn Serve.Protocol.Ping
          in
          Serve.Client.close conn;
          if Result.is_error alive then begin
            Unix.sleepf 0.05;
            wait_ready (tries - 1)
          end
        | Error _ ->
          Unix.sleepf 0.05;
          wait_ready (tries - 1)
    in
    wait_ready 100;
    let cfg =
      {
        (Serve.Soak.default ~addr) with
        clients;
        duration_s = duration;
        deadline_s = deadline;
        seed;
        corrupt_rate = corrupt;
        heavy_rate = heavy;
      }
    in
    let report = Serve.Soak.run cfg in
    print_endline (Serve.Soak.report_to_string report);
    Run_ledger.note_qor "soak.qps" report.Serve.Soak.qps;
    Run_ledger.note_qor "soak.ok" (float_of_int report.Serve.Soak.ok);
    Run_ledger.note_qor "soak.attempts"
      (float_of_int report.Serve.Soak.attempts);
    Run_ledger.note_qor "soak.exhausted"
      (float_of_int report.Serve.Soak.exhausted);
    (* Latency QoR rides the same ledger record as qps, so `obs diff`
       gates both throughput and tail latency. *)
    Option.iter (Run_ledger.note_qor "soak.p50_ms") report.Serve.Soak.lat_p50_ms;
    Option.iter (Run_ledger.note_qor "soak.p95_ms") report.Serve.Soak.lat_p95_ms;
    Run_ledger.note "soak.server_alive"
      (Obs.Json.Bool report.Serve.Soak.server_alive);
    (* The server's own runtime story (peak RSS, GC work) and the health
       verdict ride the same record, so drift gates cover them too. *)
    Option.iter (Run_ledger.note_qor "soak.srv_hwm_mb")
      report.Serve.Soak.srv_hwm_mb;
    Option.iter (Run_ledger.note_qor "soak.srv_minor_words")
      report.Serve.Soak.srv_minor_words;
    Option.iter (Run_ledger.note_qor "soak.srv_major_collections")
      report.Serve.Soak.srv_major_collections;
    Option.iter
      (fun (h : Serve.Dash.health) ->
        Run_ledger.note "soak.health_status" (Obs.Json.String h.Serve.Dash.status);
        Run_ledger.note_qor "soak.stalled_total"
          (float_of_int h.Serve.Dash.stalled_total))
      report.Serve.Soak.health;
    (* Live scrape validation: while the daemon still runs, GET /metrics
       and parse the exposition — names legal, buckets cumulative — then
       require the serve counters to actually be there. *)
    Option.iter
      (fun p ->
        match Serve.Metrics_http.fetch ~port:p ~path:"/metrics" with
        | Error msg -> failwith ("soak: /metrics scrape failed: " ^ msg)
        | Ok body ->
          match Obs.Openmetrics.parse body with
          | Error msg -> failwith ("soak: scrape did not parse: " ^ msg)
          | Ok samples ->
            if Obs.Openmetrics.find samples "serve_requests_total" = None
            then failwith "soak: scrape lacks serve_requests_total";
            Printf.printf "scraped /metrics: %d samples, exposition valid\n"
              (List.length samples);
            Run_ledger.note_qor "soak.scrape_samples"
              (float_of_int (List.length samples)))
      metrics_port;
    if expect_stall then begin
      let stalls =
        match report.Serve.Soak.health with
        | Some h -> h.Serve.Dash.stalled_total
        | None -> 0
      in
      if stalls = 0 then
        failwith
          "soak: --expect-stall, but health reports no stalled worker \
           (serve.worker.stalled = 0)"
      else Printf.printf "watchdog saw %d stall(s), as expected\n" stalls
    end;
    (* Post-storm forensics: SIGQUIT makes the (still running) child dump
       its flight recorder; wait for the file so the drain below cannot
       race the write. *)
    (match (child, flight_dump) with
    | Some pid, Some file ->
      Unix.kill pid Sys.sigquit;
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait_dump () =
        if Sys.file_exists file then ()
        else if Unix.gettimeofday () > deadline then
          Obs.Log.warnf "soak" "daemon never wrote flight dump %s" file
        else begin
          Unix.sleepf 0.02;
          wait_dump ()
        end
      in
      wait_dump ()
    | _ -> ());
    let child_clean =
      match child with
      | None -> true
      | Some pid ->
        (* SIGTERM must drain the child gracefully: exit 0, promptly. *)
        Unix.kill pid Sys.sigterm;
        let deadline = Unix.gettimeofday () +. 20. in
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              Obs.Log.warnf "soak" "daemon ignored SIGTERM; killing";
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid);
              false
            end
            else begin
              Unix.sleepf 0.02;
              reap ()
            end
          | _, Unix.WEXITED 0 -> true
          | _, Unix.WEXITED c ->
            Obs.Log.warnf "soak" "daemon exited %d" c;
            false
          | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
            Obs.Log.warnf "soak" "daemon killed by signal";
            false
        in
        reap ()
    in
    Run_ledger.note "soak.child_clean" (Obs.Json.Bool child_clean);
    if not report.Serve.Soak.server_alive then
      failwith "soak: server unresponsive after the storm";
    if report.Serve.Soak.ok = 0 then
      failwith "soak: no request ever succeeded";
    if not child_clean then failwith "soak: daemon did not drain cleanly"
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Chaos soak: fork a daemon, hammer it with concurrent clients \
             and injected faults, verify graceful degradation and drain")
    Term.(const run $ telemetry_term $ socket_arg $ port_arg $ attach_arg
          $ clients_arg $ duration_arg $ soak_deadline_arg $ soak_seed_arg
          $ corrupt_arg $ heavy_arg $ workers_arg $ queue_cap_arg $ drain_arg
          $ chaos_term $ slow_ms_arg $ flight_dump_arg $ flight_cap_arg
          $ metrics_port_arg $ stall_after_arg $ expect_stall_arg
          $ server_obs_arg)

(* A reader, not a run: no telemetry wrapper, no ledger record — watching
   a daemon should leave no artifacts of its own. *)
let top_cmd =
  let interval_arg =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"S" ~doc:"Seconds between polls.")
  in
  let count_arg =
    Arg.(value & opt int 0
         & info [ "count" ] ~docv:"N"
             ~doc:"Render $(docv) snapshots then exit (0 = until \
                   interrupted).  $(b,--count 1) is the scripting mode: one \
                   plain snapshot, no screen clearing.")
  in
  let no_clear_arg =
    Arg.(value & flag
         & info [ "no-clear" ]
             ~doc:"Do not clear the terminal between refreshes.")
  in
  let run socket port interval count no_clear =
    let addr = addr_of socket port in
    let fetch () =
      match Serve.Client.connect addr with
      | Error e -> Error (Serve.Client.error_to_string e)
      | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close conn)
          (fun () ->
            match
              Serve.Client.call ~deadline_s:2. conn Serve.Protocol.Stats
            with
            | Error e -> Error (Serve.Client.error_to_string e)
            | Ok stats ->
              (* Health is best-effort: an older daemon that predates the
                 op still renders the rest of the dashboard. *)
              let health =
                match
                  Serve.Client.call ~deadline_s:2. conn Serve.Protocol.Health
                with
                | Ok h -> Result.to_option (Serve.Dash.of_health_json h)
                | Error _ -> None
              in
              Result.map
                (fun snap -> (snap, health))
                (Serve.Dash.of_stats_json stats))
    in
    let clear = not (no_clear || count = 1) in
    let rec loop i prev =
      match fetch () with
      | Error msg -> failwith ("top: " ^ msg)
      | Ok (snap, health) ->
        let now = Obs.Span.elapsed () in
        let qps =
          Option.map
            (fun (p, t0) -> Serve.Dash.qps ~prev:p ~dt:(now -. t0) snap)
            prev
        in
        if clear then print_string "\027[H\027[2J";
        print_string (Serve.Dash.render ?qps ?health snap);
        flush stdout;
        if count = 0 || i + 1 < count then begin
          Unix.sleepf interval;
          loop (i + 1) (Some (snap, now))
        end
    in
    loop 0 None
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard of a running daemon: qps, queue depth, \
             in-flight, per-request-type latency percentiles, refusal and \
             restart counters")
    Term.(const run $ socket_arg $ port_arg $ interval_arg $ count_arg
          $ no_clear_arg)

let () =
  let info =
    Cmd.info "relaware" ~version:"1.0"
      ~doc:"Reliability-aware design to suppress aging (DAC'16 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ characterize_cmd; report_cmd; guardband_cmd; synth_cmd; export_cmd;
            experiment_cmd; check_cmd; obs_cmd; serve_cmd; query_cmd;
            soak_cmd; top_cmd ]))
