(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via Aging_core.Experiments) and, with the [micro] command,
   runs Bechamel microbenchmarks of the core kernels.

   Usage:
     bench/main.exe                 run all figure reproductions (full mode)
     bench/main.exe --quick         reduced design set / image size
     bench/main.exe fig1 fig5a ...  run selected experiments
     bench/main.exe micro           Bechamel microbenchmarks only
*)

module Experiments = Aging_core.Experiments

let all_figures =
  [ "fig1"; "fig2"; "fig3"; "fig5a"; "fig5b"; "fig5c"; "fig6a"; "fig6b";
    "fig6c"; "fig7"; "libgen"; "ablate-backend"; "ablate-slew"; "ablate-topk" ]

let run_experiment t name =
  let report =
    match name with
    | "fig1" -> Experiments.fig1 t
    | "fig2" -> Experiments.fig2 t
    | "fig3" -> Experiments.fig3 t
    | "fig5a" -> Experiments.fig5a t
    | "fig5b" -> Experiments.fig5b t
    | "fig5c" -> Experiments.fig5c t
    | "fig6a" -> Experiments.fig6a t
    | "fig6b" -> Experiments.fig6b t
    | "fig6c" -> Experiments.fig6c t
    | "fig7" -> Experiments.fig7 t ()
    | "libgen" -> Experiments.libgen t ()
    | "hold" -> Experiments.hold_check t
    | "ablate-backend" -> Experiments.ablate_backend t
    | "ablate-slew" -> Experiments.ablate_slew t
    | "ablate-topk" -> Experiments.ablate_topk t
    | other -> failwith ("unknown experiment " ^ other)
  in
  print_string report;
  print_newline ()

(* ------------------------- microbenchmarks ------------------------- *)

let micro () =
  let open Bechamel in
  let deglib =
    Aging_core.Degradation_library.create ~cache_dir:"_libcache" ()
  in
  let fresh = Aging_core.Degradation_library.fresh deglib in
  let nand = Aging_liberty.Library.find_exn fresh "NAND2_X1" in
  let arc = List.hd nand.Aging_liberty.Library.arcs in
  let design = Aging_designs.Designs.risc5 () in
  let structure = Aging_sta.Timing.prepare_structure design in
  let compiled = Aging_netlist.Netlist.compile design in
  let state = Aging_netlist.Netlist.initial_state design in
  let inputs =
    List.map (fun (p, _) -> (p, false)) design.Aging_netlist.Netlist.input_ports
  in
  let cell = Aging_cells.Catalog.find_exn "INV_X1" in
  let scenario =
    Aging_physics.Scenario.scenario Aging_physics.Scenario.worst_case
  in
  let inv_arc = List.hd (Aging_cells.Cell.arcs cell) in
  let tests =
    [
      Test.make ~name:"nldm-lookup" (Staged.stage (fun () ->
          Aging_liberty.Library.delay_of arc ~dir:Aging_liberty.Library.Rise
            ~slew:5.3e-11 ~load:3.1e-15));
      Test.make ~name:"sta-full-pass-risc5" (Staged.stage (fun () ->
          Aging_sta.Timing.analyze ~structure ~library:fresh design));
      Test.make ~name:"cycle-eval-risc5" (Staged.stage (fun () ->
          Aging_netlist.Netlist.compiled_cycle compiled state ~inputs));
      Test.make ~name:"transient-inv-arc" (Staged.stage (fun () ->
          Aging_liberty.Characterize.arc_measure
            Aging_liberty.Characterize.default_backend ~scenario ~cell
            ~arc:inv_arc ~dir:Aging_liberty.Library.Rise ~slew:4e-11
            ~load:2e-15));
      Test.make ~name:"bti-degradation" (Staged.stage (fun () ->
          Aging_physics.Degradation.of_stress
            (Aging_physics.Device.pmos ~w:1.8e-7)
            (Aging_physics.Bti.stress ~duty:0.7 ())));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:None ()) Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  if args = [ "micro" ] then micro ()
  else begin
    let t = Experiments.create ~quick () in
    let selected = if args = [] then all_figures else args in
    Printf.printf "reliability-aware design reproduction — %s mode\n\n%!"
      (if quick then "quick" else "full");
    List.iter
      (fun name ->
        let t0 = Unix.gettimeofday () in
        run_experiment t name;
        Printf.printf "[%s done in %.1f s]\n\n%!" name (Unix.gettimeofday () -. t0))
      selected
  end
