(** Building the complete degradation-aware library.

    The paper characterizes each cell under the 11x11 grid of
    (lambda_pmos, lambda_nmos) duty-cycle corners and merges the 121
    resulting libraries into one complete library in which identical cells
    are distinguished by corner indexes in their names (Sec. 4.1):
    ["NAND2_X1\@0.4_0.6"].  The same renaming is applied by the netlist
    annotation step of dynamic-stress analysis (Sec. 4.2). *)

val indexed_name : base:string -> Aging_physics.Scenario.corner -> string
(** ["NAND2_X1" + corner] -> ["NAND2_X1\@0.4_0.6"]. *)

val split_indexed : string -> string * Aging_physics.Scenario.corner option
(** Inverse: ["NAND2_X1\@0.4_0.6"] -> [("NAND2_X1", Some corner)];
    un-indexed names map to [(name, None)]. *)

val complete :
  ?backend:Characterize.backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?years:float ->
  axes:Axes.t ->
  corners:Aging_physics.Scenario.corner list ->
  name:string ->
  unit ->
  Library.t
(** Characterizes every cell under every corner (with indexed names) and
    merges the results.  This is the eager construction; the on-demand
    cached variant lives in [Aging_core.Degradation_library]. *)
