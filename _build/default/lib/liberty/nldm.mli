(** Non-Linear Delay Model tables.

    The standard industrial abstraction: delay and output transition time of
    a timing arc as 2-D lookup tables over (input slew, output load), with
    bilinear interpolation and linear extrapolation outside the
    characterized grid. *)

type table = {
  slews : float array;           (** input-slew axis [s], strictly increasing *)
  loads : float array;           (** load axis [F], strictly increasing *)
  values : float array array;    (** [values.(slew_index).(load_index)] [s] *)
}

val make :
  slews:float array -> loads:float array -> values:float array array -> table
(** @raise Invalid_argument on axis/shape mismatch or non-monotone axes. *)

val lookup : table -> slew:float -> load:float -> float
(** Bilinear interpolation / extrapolation. *)

val tabulate :
  slews:float array -> loads:float array -> (slew:float -> load:float -> float)
  -> table
(** Fills a table by evaluating [f] at every grid point. *)

val map : (float -> float) -> table -> table

val map2 : (float -> float -> float) -> table -> table -> table
(** Pointwise combination; the tables must share axes.
    @raise Invalid_argument otherwise. *)

val fold : ('a -> float -> 'a) -> 'a -> table -> 'a
(** Folds over every table value (row-major). *)

val max_value : table -> float
val min_value : table -> float

val dimensions : table -> int * int
(** (number of slews, number of loads). *)
