(** Textual library format (".alib"): save and reload characterized
    libraries.

    Mirrors the paper's "publicly available libraries ready to be used with
    existing tool flows": a characterized library can be written to disk and
    reloaded without re-running any transistor-level simulation.  The
    on-disk format is a simple line-oriented text format (one keyword per
    line, tables as rows of floats); cell metadata is restored by looking
    the catalog cell up by name. *)

val to_string : Library.t -> string
(** Serializes a library. *)

val of_string : string -> Library.t
(** Parses a serialized library.
    @raise Failure with a line-numbered message on malformed input or on a
    reference to a cell missing from the catalog. *)

val save : string -> Library.t -> unit
(** [save path lib] writes [to_string lib] to [path]. *)

val load : string -> Library.t
(** @raise Sys_error if the file cannot be read; @raise Failure on parse
    errors. *)
