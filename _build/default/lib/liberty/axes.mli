(** Characterization grids (operating conditions).

    The paper uses 49 OPCs per cell: 7 input slews spanning 5 ps - 947 ps and
    7 output loads spanning 0.5 fF - 20 fF (Sec. 4.4), the ranges of the
    Nangate 45 nm library.  [coarse] is a 3x3 subgrid for fast tests. *)

type t = { slews : float array; loads : float array }

val paper : t
(** The 7x7 grid of the paper. *)

val coarse : t
(** A 3x3 grid covering the same ranges (for unit tests). *)

val slew_min : float
val slew_max : float
val load_min : float
val load_max : float

val count : t -> int
(** Number of OPCs (|slews| * |loads|). *)
