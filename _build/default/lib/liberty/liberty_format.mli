(** Synopsys Liberty (.lib) text emission.

    Writes a characterized library in the industry .lib syntax (NLDM
    [lu_table_template] / [cell_rise] / [cell_fall] / [rise_transition] /
    [fall_transition] groups) so the degradation-aware libraries can be
    inspected with — and, modulo vendor lint, consumed by — existing tool
    flows, mirroring the paper's released artifact.  Emission only; the
    compact [Io] format remains the round-trip format of this project. *)

val to_liberty : Library.t -> string
(** Renders the whole library.  Corner-indexed cell names
    ("NAND2_X1\@0.4_0.6") are sanitized to Liberty identifiers
    ("NAND2_X1_c0p4_0p6"). *)

val save : string -> Library.t -> unit
(** [save path lib] writes the .lib text to [path]. *)

val sanitize_name : string -> string
(** The identifier mapping used for indexed names. *)
