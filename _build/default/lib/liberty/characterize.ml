module Device = Aging_physics.Device
module Scenario = Aging_physics.Scenario
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform
module Mosfet = Aging_spice.Mosfet
module Cell = Aging_cells.Cell

type backend = Transient of Engine.options | Analytic

(* Characterization runs many short cell-level transients; a shorter DC
   settle is plenty for single cells and the post-transition tail is cut by
   [stop_when] below. *)
let char_options = { Engine.default_options with Engine.settle_time = 0.8e-9 }

let default_backend = Transient char_options

let rail value = if value then Device.vdd else 0.

let in_direction (cell : Cell.t) (arc : Cell.arc) ~(dir : Library.direction) =
  match cell.Cell.kind with
  | Cell.Flipflop -> Library.Rise (* launch edge *)
  | Cell.Combinational ->
    if arc.Cell.positive_unate then dir
    else begin
      match dir with Library.Rise -> Library.Fall | Library.Fall -> Library.Rise
    end

let aged_circuit ~scenario (cell : Cell.t) =
  Circuit.map_devices (Scenario.age_device scenario) cell.Cell.built.circuit

(* ------------------------------------------------------------------ *)
(* Transient backend                                                    *)
(* ------------------------------------------------------------------ *)

let transient_measure options ~base_circuit ~(cell : Cell.t)
    ~(arc : Cell.arc) ~dir ~slew ~load =
  let circuit = Circuit.map_devices Fun.id base_circuit in
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let in_node = List.assoc arc.Cell.arc_input cell.Cell.built.input_nodes in
  Circuit.add_cap circuit out_node load;
  let in_dir = in_direction cell arc ~dir in
  let rising = in_dir = Library.Rise in
  let t_start = 5e-11 in
  let input_stim = Stimulus.ramp ~t_start ~slew ~rising () in
  let side_drives =
    List.map
      (fun (pin, value) ->
        (List.assoc pin cell.Cell.built.input_nodes, Stimulus.constant (rail value)))
      arc.Cell.side
  in
  let init =
    match cell.Cell.kind with
    | Cell.Combinational -> []
    | Cell.Flipflop ->
      (* Seed the slave latch storage node with the pre-edge state (the
         output is its complement); the clocked keeper maintains it through
         DC settling so the launch edge produces a real Q transition. *)
      let q_pre = (out_node, rail (dir = Library.Fall)) in
      begin
        match Circuit.find_node circuit "SLAVE" with
        | Some slave -> [ (slave, rail (dir = Library.Rise)); q_pre ]
        | None -> [ q_pre ]
      end
  in
  let t_stop = t_start +. Stimulus.full_ramp_time slew +. 3e-9 in
  let target = rail (dir = Library.Rise) in
  let stop_when time v =
    (* The output started at the opposite rail; once it is pinned to the
       target rail every crossing needed by the measurements has happened —
       but never stop before the input's own 50 % point, which a fast gate
       under a slow ramp can beat (negative delay). *)
    time > t_start +. (0.6 *. Stimulus.full_ramp_time slew)
    && Float.abs (v.(out_node) -. target) < 0.015
  in
  let result =
    Engine.transient ~options ~init ~stop_when circuit
      ~drives:((in_node, input_stim) :: side_drives)
      ~t_stop
  in
  let w_in = Engine.waveform result in_node in
  let w_out = Engine.waveform result out_node in
  let out_dir =
    match dir with Library.Rise -> Waveform.Rising | Library.Fall -> Waveform.Falling
  in
  let fail reason =
    failwith
      (Printf.sprintf "Characterize: %s arc %s->%s dir=%s slew=%.1fps load=%.2ffF: %s"
         cell.Cell.name arc.Cell.arc_input arc.Cell.arc_output
         (match dir with Library.Rise -> "rise" | Library.Fall -> "fall")
         (slew *. 1e12) (load *. 1e15) reason)
  in
  let final = Engine.final_voltage result out_node in
  if Float.abs (final -. target) > 0.15 then
    fail (Printf.sprintf "output did not settle (%.3f V, expected %.1f V)" final target);
  let delay =
    match Waveform.delay ~input:w_in ~output:w_out ~out_direction:out_dir ~vdd:Device.vdd with
    | Some d -> d
    | None -> fail "no 50%% crossing"
  in
  let out_slew =
    match Waveform.slew w_out ~direction:out_dir ~vdd:Device.vdd with
    | Some s -> s
    | None -> fail "no 20/80 transition"
  in
  (delay, out_slew)

(* ------------------------------------------------------------------ *)
(* Analytic backend (state-of-the-art closed form, for ablation)       *)
(* ------------------------------------------------------------------ *)

let stage_count circuit (cell : Cell.t) =
  let input_nodes = List.map snd cell.Cell.built.input_nodes in
  let internal_gates =
    List.sort_uniq compare
      (List.filter_map
         (fun (m : Circuit.mos) ->
           if List.mem m.Circuit.g input_nodes then None else Some m.Circuit.g)
         (Circuit.mosfets circuit))
  in
  1 + List.length internal_gates

let drive_resistance circuit ~out_node ~(dir : Library.direction) =
  let wanted =
    match dir with Library.Rise -> Device.Pmos | Library.Fall -> Device.Nmos
  in
  let total_current =
    List.fold_left
      (fun acc (m : Circuit.mos) ->
        if
          m.Circuit.dev.Device.polarity = wanted
          && (m.Circuit.d = out_node || m.Circuit.s = out_node)
        then
          let vov = Device.vdd -. Device.effective_vth m.Circuit.dev in
          acc +. Mosfet.saturation_current m.Circuit.dev ~vov
        else acc)
      0. (Circuit.mosfets circuit)
  in
  if total_current <= 0. then 1e6
  else 0.9 *. Device.vdd /. total_current

let analytic_measure ~base_circuit ~(cell : Cell.t) ~(arc : Cell.arc) ~dir
    ~slew ~load =
  let out_node = List.assoc arc.Cell.arc_output cell.Cell.built.output_nodes in
  let r = drive_resistance base_circuit ~out_node ~dir in
  let c = load +. Circuit.capacitance base_circuit out_node in
  let stages = stage_count base_circuit cell in
  let intrinsic = 1.2e-11 *. float_of_int (stages - 1) in
  let delay = intrinsic +. (0.69 *. r *. c) +. (0.2 *. slew) in
  let out_slew = (1.39 *. r *. c) +. (0.1 *. slew) in
  (delay, out_slew)

(* ------------------------------------------------------------------ *)
(* Entry / library assembly                                            *)
(* ------------------------------------------------------------------ *)

let measure backend ~base_circuit ~cell ~arc ~dir ~slew ~load =
  match backend with
  | Transient options ->
    transient_measure options ~base_circuit ~cell ~arc ~dir ~slew ~load
  | Analytic -> analytic_measure ~base_circuit ~cell ~arc ~dir ~slew ~load

let arc_measure backend ~scenario ~cell ~arc ~dir ~slew ~load =
  let base_circuit = aged_circuit ~scenario cell in
  measure backend ~base_circuit ~cell ~arc ~dir ~slew ~load

let mid_value table =
  let n_s, n_l = Nldm.dimensions table in
  table.Nldm.values.(n_s / 2).(n_l / 2)

let entry ?(backend = default_backend) ?(indexed = false) ~(axes : Axes.t)
    ~scenario (cell : Cell.t) =
  let base_circuit = aged_circuit ~scenario cell in
  let arc_tables (arc : Cell.arc) =
    let tables dir =
      let delays = Array.make_matrix (Array.length axes.Axes.slews)
          (Array.length axes.Axes.loads) 0.
      and slews_out = Array.make_matrix (Array.length axes.Axes.slews)
          (Array.length axes.Axes.loads) 0. in
      Array.iteri
        (fun i s ->
          Array.iteri
            (fun j l ->
              let d, os =
                measure backend ~base_circuit ~cell ~arc ~dir ~slew:s ~load:l
              in
              delays.(i).(j) <- d;
              slews_out.(i).(j) <- os)
            axes.Axes.loads)
        axes.Axes.slews;
      ( Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:delays,
        Nldm.make ~slews:axes.Axes.slews ~loads:axes.Axes.loads ~values:slews_out )
    in
    tables
  in
  let characterize_combinational (arc : Cell.arc) =
    let tables = arc_tables arc in
    let delay_rise, slew_rise = tables Library.Rise in
    let delay_fall, slew_fall = tables Library.Fall in
    {
      Library.from_pin = arc.Cell.arc_input;
      to_pin = arc.Cell.arc_output;
      sense =
        (if arc.Cell.positive_unate then Library.Positive else Library.Negative);
      when_side = arc.Cell.side;
      delay_rise;
      delay_fall;
      slew_rise;
      slew_fall;
    }
  in
  let arcs =
    match cell.Cell.kind with
    | Cell.Combinational ->
      List.map characterize_combinational (Cell.arcs cell)
    | Cell.Flipflop ->
      (* The two launch arcs (Q rise with D=1, Q fall with D=0) merge into
         one library arc; each capture value only yields its own output
         direction. *)
      let q_arcs = Cell.arcs cell in
      let rise_arc =
        List.find (fun (a : Cell.arc) -> a.Cell.positive_unate) q_arcs
      in
      let fall_arc =
        List.find (fun (a : Cell.arc) -> not a.Cell.positive_unate) q_arcs
      in
      let delay_rise, slew_rise = arc_tables rise_arc Library.Rise in
      let delay_fall, slew_fall = arc_tables fall_arc Library.Fall in
      [
        {
          Library.from_pin = rise_arc.Cell.arc_input;
          to_pin = rise_arc.Cell.arc_output;
          sense = Library.Positive;
          when_side = [];
          delay_rise;
          delay_fall;
          slew_rise;
          slew_fall;
        };
      ]
  in
  let setup_time =
    match cell.Cell.kind with
    | Cell.Combinational -> 0.
    | Cell.Flipflop ->
      (* A conservative constant-fraction model: setup tracks the clk->q
         delay of the aged cell. *)
      let worst_clkq =
        List.fold_left
          (fun acc (a : Library.arc) ->
            Float.max acc
              (Float.max (mid_value a.Library.delay_rise)
                 (mid_value a.Library.delay_fall)))
          0. arcs
      in
      0.6 *. worst_clkq
  in
  let indexed_name =
    if indexed then
      cell.Cell.name ^ "@" ^ Scenario.suffix scenario.Scenario.corner
    else cell.Cell.name
  in
  {
    Library.cell;
    indexed_name;
    corner = scenario.Scenario.corner;
    arcs;
    pin_caps =
      List.map (fun pin -> (pin, Cell.input_capacitance cell pin)) cell.Cell.inputs;
    setup_time;
  }

let library ?(backend = default_backend) ?cells ?(indexed = false) ~axes ~name
    ~scenario () =
  let cells = Option.value cells ~default:(Aging_cells.Catalog.all ()) in
  let entries = List.map (entry ~backend ~indexed ~axes ~scenario) cells in
  Library.create ~lib_name:name ~axes entries

let fresh_library ?backend ?cells ~axes () =
  library ?backend ?cells ~axes ~name:"initial"
    ~scenario:(Scenario.scenario Scenario.fresh) ()
