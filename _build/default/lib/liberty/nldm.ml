module Interp = Aging_util.Interp

type table = {
  slews : float array;
  loads : float array;
  values : float array array;
}

let make ~slews ~loads ~values =
  if Array.length slews < 2 || Array.length loads < 2 then
    invalid_arg "Nldm.make: axes need >= 2 points";
  if not (Interp.monotone_increasing slews) then
    invalid_arg "Nldm.make: slew axis not increasing";
  if not (Interp.monotone_increasing loads) then
    invalid_arg "Nldm.make: load axis not increasing";
  if Array.length values <> Array.length slews then
    invalid_arg "Nldm.make: row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length loads then
        invalid_arg "Nldm.make: column count mismatch")
    values;
  { slews; loads; values }

let lookup t ~slew ~load =
  Interp.bilinear ~rows:t.slews ~cols:t.loads t.values slew load

let tabulate ~slews ~loads f =
  let values =
    Array.map (fun s -> Array.map (fun l -> f ~slew:s ~load:l) loads) slews
  in
  make ~slews ~loads ~values

let map f t = { t with values = Array.map (Array.map f) t.values }

let same_axes a b = a.slews = b.slews && a.loads = b.loads

let map2 f a b =
  if not (same_axes a b) then invalid_arg "Nldm.map2: axis mismatch";
  {
    a with
    values = Array.map2 (fun ra rb -> Array.map2 f ra rb) a.values b.values;
  }

let fold f init t =
  Array.fold_left (fun acc row -> Array.fold_left f acc row) init t.values

let max_value t = fold Float.max neg_infinity t
let min_value t = fold Float.min infinity t
let dimensions t = (Array.length t.slews, Array.length t.loads)
