module Cell = Aging_cells.Cell

(* Liberty identifiers may not contain '@' or '.'; encode the duty-cycle
   corner suffix readably. *)
let sanitize_name name =
  let buf = Buffer.create (String.length name + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '@' -> Buffer.add_string buf "_c"
      | '.' -> Buffer.add_char buf 'p'
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

(* Units: ns for time, pF for capacitance (common industrial choice). *)
let ns t = t *. 1e9
let pf c = c *. 1e12

let float_list values f =
  String.concat ", " (Array.to_list (Array.map (fun v -> Printf.sprintf "%.6f" (f v)) values))

let emit_table buf ~indent ~group (t : Nldm.table) =
  let pad = String.make indent ' ' in
  Printf.bprintf buf "%s%s (delay_template) {\n" pad group;
  Printf.bprintf buf "%s  index_1 (\"%s\");\n" pad (float_list t.Nldm.slews ns);
  Printf.bprintf buf "%s  index_2 (\"%s\");\n" pad (float_list t.Nldm.loads pf);
  Printf.bprintf buf "%s  values ( \\\n" pad;
  Array.iteri
    (fun i row ->
      Printf.bprintf buf "%s    \"%s\"%s \\\n" pad (float_list row ns)
        (if i = Array.length t.Nldm.values - 1 then "" else ","))
    t.Nldm.values;
  Printf.bprintf buf "%s  );\n%s}\n" pad pad

let emit_arc buf (a : Library.arc) =
  Printf.bprintf buf "      timing () {\n";
  Printf.bprintf buf "        related_pin : \"%s\";\n" a.Library.from_pin;
  Printf.bprintf buf "        timing_sense : %s;\n"
    (match a.Library.sense with
    | Library.Positive -> "positive_unate"
    | Library.Negative -> "negative_unate");
  (match a.Library.when_side with
  | [] -> ()
  | side ->
    let cond =
      String.concat " & "
        (List.map (fun (p, v) -> if v then p else "!" ^ p) side)
    in
    Printf.bprintf buf "        when : \"%s\";\n" cond);
  emit_table buf ~indent:8 ~group:"cell_rise" a.Library.delay_rise;
  emit_table buf ~indent:8 ~group:"cell_fall" a.Library.delay_fall;
  emit_table buf ~indent:8 ~group:"rise_transition" a.Library.slew_rise;
  emit_table buf ~indent:8 ~group:"fall_transition" a.Library.slew_fall;
  Printf.bprintf buf "      }\n"

let emit_cell buf (e : Library.entry) =
  let cell = e.Library.cell in
  Printf.bprintf buf "  cell (%s) {\n" (sanitize_name e.Library.indexed_name);
  Printf.bprintf buf "    area : %.4f;\n" (cell.Cell.area *. 1e12);
  if cell.Cell.kind = Cell.Flipflop then
    Printf.bprintf buf "    ff (IQ, IQN) { clocked_on : \"CK\"; next_state : \"D\"; }\n";
  List.iter
    (fun pin ->
      Printf.bprintf buf "    pin (%s) {\n      direction : input;\n" pin;
      (match List.assoc_opt pin e.Library.pin_caps with
      | Some c -> Printf.bprintf buf "      capacitance : %.6f;\n" (pf c)
      | None -> ());
      if cell.Cell.kind = Cell.Flipflop && pin = "CK" then
        Printf.bprintf buf "      clock : true;\n";
      if cell.Cell.kind = Cell.Flipflop && pin = "D" then begin
        Printf.bprintf buf
          "      timing () { related_pin : \"CK\"; timing_type : setup_rising;\n";
        Printf.bprintf buf
          "        rise_constraint (scalar) { values (\"%.6f\"); }\n"
          (ns e.Library.setup_time);
        Printf.bprintf buf
          "        fall_constraint (scalar) { values (\"%.6f\"); }\n      }\n"
          (ns e.Library.setup_time)
      end;
      Printf.bprintf buf "    }\n")
    cell.Cell.inputs;
  List.iter
    (fun pin ->
      Printf.bprintf buf "    pin (%s) {\n      direction : output;\n" pin;
      let arcs =
        List.filter (fun (a : Library.arc) -> a.Library.to_pin = pin) e.Library.arcs
      in
      List.iter (emit_arc buf) arcs;
      Printf.bprintf buf "    }\n")
    cell.Cell.outputs;
  Printf.bprintf buf "  }\n"

let to_liberty lib =
  let axes = Library.axes lib in
  let buf = Buffer.create 65536 in
  Printf.bprintf buf "library (%s) {\n" (sanitize_name (Library.lib_name lib));
  Buffer.add_string buf
    "  delay_model : table_lookup;\n\
    \  time_unit : \"1ns\";\n\
    \  capacitive_load_unit (1, pf);\n\
    \  voltage_unit : \"1V\";\n\
    \  current_unit : \"1mA\";\n\
    \  nom_voltage : 1.1;\n\
    \  nom_temperature : 77.0;\n";
  Printf.bprintf buf "  lu_table_template (delay_template) {\n";
  Printf.bprintf buf "    variable_1 : input_net_transition;\n";
  Printf.bprintf buf "    variable_2 : total_output_net_capacitance;\n";
  Printf.bprintf buf "    index_1 (\"%s\");\n" (float_list axes.Axes.slews ns);
  Printf.bprintf buf "    index_2 (\"%s\");\n  }\n" (float_list axes.Axes.loads pf);
  List.iter (emit_cell buf) (Library.entries lib);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_liberty lib))
