(** Cell characterization: measuring NLDM tables under an aging scenario.

    The [Transient] backend reproduces the paper's HSPICE methodology: for
    every timing arc and every (input slew x output load) operating
    condition, the cell's transistor netlist — with every device aged
    according to the scenario — is simulated with {!Aging_spice.Engine} and
    the 50/50 delay and 20/80 output transition are measured.  Multi-stage
    cells (buffers, XOR, MUX, adders, flip-flops) are handled naturally
    because internal slopes are simulated, which is precisely what the paper
    faults closed-form approaches for missing.

    The [Analytic] backend is that faulted state-of-the-art: a closed-form
    switched-RC estimate from the output-stage drive resistance that cannot
    see internal slopes.  It exists for the ablation benchmark. *)

type backend =
  | Transient of Aging_spice.Engine.options
  | Analytic

val default_backend : backend
(** [Transient] with default engine options. *)

val entry :
  ?backend:backend ->
  ?indexed:bool ->
  axes:Axes.t ->
  scenario:Aging_physics.Scenario.t ->
  Aging_cells.Cell.t ->
  Library.entry
(** Characterizes one cell under the scenario.  When [indexed] is true the
    entry name carries the corner suffix ("NAND2_X1\@0.4_0.6"); default
    false (bare name).
    @raise Failure if a timing arc fails to produce a transition (indicates
    a sensitization or convergence problem — never expected for catalog
    cells). *)

val library :
  ?backend:backend ->
  ?cells:Aging_cells.Cell.t list ->
  ?indexed:bool ->
  axes:Axes.t ->
  name:string ->
  scenario:Aging_physics.Scenario.t ->
  unit ->
  Library.t
(** Characterizes a whole library (default: the full catalog) under one
    scenario. *)

val fresh_library :
  ?backend:backend -> ?cells:Aging_cells.Cell.t list -> axes:Axes.t ->
  unit -> Library.t
(** Convenience: the degradation-unaware (initial) library — zero-duty
    corner, bare names. *)

val arc_measure :
  backend ->
  scenario:Aging_physics.Scenario.t ->
  cell:Aging_cells.Cell.t ->
  arc:Aging_cells.Cell.arc ->
  dir:Library.direction ->
  slew:float ->
  load:float ->
  float * float
(** Measures a single (delay, output slew) point; exposed for the Fig. 1
    surface experiment and for tests. *)
