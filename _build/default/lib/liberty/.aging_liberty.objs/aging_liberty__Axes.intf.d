lib/liberty/axes.mli:
