lib/liberty/library.ml: Aging_cells Aging_physics Axes Float Hashtbl List Nldm
