lib/liberty/merge.mli: Aging_cells Aging_physics Axes Characterize Library
