lib/liberty/merge.ml: Aging_physics Characterize Library List Printf String
