lib/liberty/characterize.ml: Aging_cells Aging_physics Aging_spice Array Axes Float Fun Library List Nldm Option Printf
