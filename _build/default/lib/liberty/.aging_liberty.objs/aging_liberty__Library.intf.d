lib/liberty/library.mli: Aging_cells Aging_physics Axes Nldm
