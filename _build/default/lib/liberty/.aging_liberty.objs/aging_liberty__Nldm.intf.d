lib/liberty/nldm.mli:
