lib/liberty/liberty_format.ml: Aging_cells Array Axes Buffer Fun Library List Nldm Printf String
