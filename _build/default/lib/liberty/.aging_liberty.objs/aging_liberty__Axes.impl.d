lib/liberty/axes.ml: Array
