lib/liberty/liberty_format.mli: Library
