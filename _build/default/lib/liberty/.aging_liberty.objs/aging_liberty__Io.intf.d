lib/liberty/io.mli: Library
