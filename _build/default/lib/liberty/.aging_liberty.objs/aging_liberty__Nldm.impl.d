lib/liberty/nldm.ml: Aging_util Array Float
