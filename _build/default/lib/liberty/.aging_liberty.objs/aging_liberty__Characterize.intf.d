lib/liberty/characterize.mli: Aging_cells Aging_physics Aging_spice Axes Library
