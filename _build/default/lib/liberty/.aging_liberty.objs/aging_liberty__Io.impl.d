lib/liberty/io.ml: Aging_cells Aging_physics Array Axes Fun Library List Nldm Printf String
