type t = { slews : float array; loads : float array }

let slew_min = 5e-12
let slew_max = 947e-12
let load_min = 0.5e-15
let load_max = 20e-15

let paper =
  {
    slews = [| 5e-12; 15e-12; 40e-12; 90e-12; 200e-12; 450e-12; 947e-12 |];
    loads = [| 0.5e-15; 1e-15; 2e-15; 4e-15; 8e-15; 14e-15; 20e-15 |];
  }

let coarse =
  {
    slews = [| 5e-12; 90e-12; 947e-12 |];
    loads = [| 0.5e-15; 4e-15; 20e-15 |];
  }

let count t = Array.length t.slews * Array.length t.loads
