lib/designs/designs.ml: Aging_image Aging_netlist Array Bv Printf
