lib/designs/bv.mli: Aging_netlist
