lib/designs/designs.mli: Aging_netlist
