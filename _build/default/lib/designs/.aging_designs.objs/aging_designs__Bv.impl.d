lib/designs/bv.ml: Aging_netlist Array List Printf
