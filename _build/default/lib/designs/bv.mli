(** Bit-vector RTL builder on top of the gate-level netlist builder.

    Vectors are little-endian arrays of nets ([v.(0)] is the LSB).  Word
    operators instantiate catalog cells directly (FA chains for adders,
    MUX2 trees for selection, AND arrays for multipliers), producing the
    structural netlists the synthesis flow then re-optimizes — the stand-in
    for the paper's RTL designs. *)

type ctx
type t = Aging_netlist.Netlist.net array

val ctx : Aging_netlist.Netlist.Builder.b -> ctx
val builder : ctx -> Aging_netlist.Netlist.Builder.b

val zero_net : ctx -> Aging_netlist.Netlist.net
(** The constant-0 net (a shared TIELO instance). *)

val one_net : ctx -> Aging_netlist.Netlist.net

val input : ctx -> string -> int -> t
(** [input c name w] declares ports [name\[0\] .. name\[w-1\]]. *)

val output : ctx -> string -> t -> unit

val reg : ctx -> t -> t
(** One DFF per bit; returns the Q vector. *)

val feedback : ctx -> int -> t
(** Pre-allocates a Q vector for a feedback register; drive it later with
    {!reg_into}. *)

val reg_into : ctx -> d:t -> q:t -> unit
(** Creates the flip-flops of a feedback register: captures [d] into the
    previously allocated [q] nets.  @raise Invalid_argument on width
    mismatch. *)

val inv_net : ctx -> Aging_netlist.Netlist.net -> Aging_netlist.Netlist.net
val and2_net : ctx -> Aging_netlist.Netlist.net -> Aging_netlist.Netlist.net -> Aging_netlist.Netlist.net

val const : ctx -> int -> int -> t
(** [const c value w]: two's-complement constant of width [w]. *)

val width : t -> int
val bit : t -> int -> Aging_netlist.Netlist.net
val slice : t -> lo:int -> hi:int -> t
val concat : t -> t -> t
(** [concat lo hi] appends [hi] above [lo]. *)

val not_ : ctx -> t -> t
val and_ : ctx -> t -> t -> t
val or_ : ctx -> t -> t -> t
val xor_ : ctx -> t -> t -> t
(** Bitwise; widths must match. *)

val and_net : ctx -> t -> Aging_netlist.Netlist.net -> t
(** Mask every bit with a single net. *)

val mux : ctx -> sel:Aging_netlist.Netlist.net -> t -> t -> t
(** [mux ~sel a b] is [a] when [sel] = 0, [b] when 1. *)

val mux_tree : ctx -> sel:t -> t list -> t
(** Select among [2^|sel|] equally wide vectors.
    @raise Invalid_argument if the list is shorter than [2^|sel|]. *)

val add : ?cin:Aging_netlist.Netlist.net -> ctx -> t -> t -> t
(** Ripple adder, result has the common width (carry-out dropped). *)

val add_fast : ?cin:Aging_netlist.Netlist.net -> ctx -> t -> t -> t
(** Sklansky parallel-prefix adder (log-depth carries); same contract as
    {!add}.  This is what a performance-driven synthesis of wide adders
    produces. *)

val sub_fast : ctx -> t -> t -> t

val add_grow : ctx -> t -> t -> t
(** Like {!add} but one bit wider (keeps the carry, operands sign-extended). *)

val sub : ctx -> t -> t -> t
val neg : ctx -> t -> t

val sext : ctx -> t -> int -> t
(** Sign-extend (or truncate) to the given width. *)

val zext : ctx -> t -> int -> t

val shl_const : ctx -> t -> int -> t
(** Shift left by a constant, zero-filled, same width. *)

val asr_const : ctx -> t -> int -> t
(** Arithmetic shift right by a constant, same width. *)

val mul_const : ctx -> t -> int -> t
(** Shift-add multiplication by a (possibly negative) integer constant,
    same width (two's-complement wrap). *)

val add_const : ctx -> t -> int -> t

val mul : ctx -> t -> t -> t
(** Array multiplier; result width = sum of operand widths (unsigned). *)

val eq_const : ctx -> t -> int -> Aging_netlist.Netlist.net
(** Single-net comparison against a constant. *)

val reduce_or : ctx -> t -> Aging_netlist.Netlist.net
