module Netlist = Aging_netlist.Netlist
module Builder = Netlist.Builder

type ctx = {
  b : Builder.b;
  mutable c0 : Netlist.net option;
  mutable c1 : Netlist.net option;
}

type t = Netlist.net array

let ctx b = { b; c0 = None; c1 = None }
let builder c = c.b

let one_cell c cell_name ~inputs =
  match Builder.cell c.b cell_name ~inputs with
  | [ net ] -> net
  | [] | _ :: _ :: _ -> failwith ("Bv: expected single output from " ^ cell_name)

let zero_net c =
  match c.c0 with
  | Some n -> n
  | None ->
    let n = one_cell c "TIELO_X1" ~inputs:[] in
    c.c0 <- Some n;
    n

let one_net c =
  match c.c1 with
  | Some n -> n
  | None ->
    let n = one_cell c "TIEHI_X1" ~inputs:[] in
    c.c1 <- Some n;
    n

let input c name w =
  Array.init w (fun i -> Builder.input c.b (Printf.sprintf "%s[%d]" name i))

let output c name v =
  Array.iteri
    (fun i net -> Builder.output c.b (Printf.sprintf "%s[%d]" name i) net)
    v

let reg c v =
  Array.map
    (fun d ->
      match Builder.cell c.b "DFF_X1" ~inputs:[ ("D", d) ] with
      | [ q ] -> q
      | [] | _ :: _ :: _ -> failwith "Bv.reg: flip-flop arity")
    v

let feedback c w = Array.init w (fun _ -> Builder.fresh_net c.b)

let reg_into c ~d ~q =
  if Array.length d <> Array.length q then
    invalid_arg "Bv.reg_into: width mismatch";
  Array.iteri
    (fun i dn ->
      Builder.cell_into c.b "DFF_X1" ~inputs:[ ("D", dn) ]
        ~outputs:[ ("Q", q.(i)) ])
    d

let inv_net c n = one_cell c "INV_X1" ~inputs:[ ("A", n) ]
let and2_net c a b = one_cell c "AND2_X1" ~inputs:[ ("A1", a); ("A2", b) ]

let const c value w =
  Array.init w (fun i ->
      if (value asr i) land 1 = 1 then one_net c else zero_net c)

let width v = Array.length v
let bit v i = v.(i)

let slice v ~lo ~hi = Array.sub v lo (hi - lo + 1)
let concat lo hi = Array.append lo hi

let check_same_width name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": width mismatch")

let not_ c v = Array.map (fun n -> one_cell c "INV_X1" ~inputs:[ ("A", n) ]) v

let bitwise name cell c a b =
  check_same_width name a b;
  Array.map2
    (fun x y -> one_cell c cell ~inputs:[ ("A1", x); ("A2", y) ])
    a b

let and_ c a b = bitwise "Bv.and_" "AND2_X1" c a b
let or_ c a b = bitwise "Bv.or_" "OR2_X1" c a b
let xor_ c a b =
  check_same_width "Bv.xor_" a b;
  Array.map2 (fun x y -> one_cell c "XOR2_X1" ~inputs:[ ("A", x); ("B", y) ]) a b

let and_net c v net =
  Array.map (fun x -> one_cell c "AND2_X1" ~inputs:[ ("A1", x); ("A2", net) ]) v

let mux c ~sel a b =
  check_same_width "Bv.mux" a b;
  Array.map2
    (fun x y -> one_cell c "MUX2_X1" ~inputs:[ ("A", x); ("B", y); ("S", sel) ])
    a b

let rec mux_tree c ~sel choices =
  match Array.length sel with
  | 0 -> begin
    match choices with
    | v :: _ -> v
    | [] -> invalid_arg "Bv.mux_tree: no choices"
  end
  | _ ->
    let low_sel = Array.sub sel 0 (Array.length sel - 1) in
    let top = sel.(Array.length sel - 1) in
    let half = 1 lsl Array.length low_sel in
    let rec split i acc = function
      | rest when i = half -> (List.rev acc, rest)
      | x :: rest -> split (i + 1) (x :: acc) rest
      | [] -> invalid_arg "Bv.mux_tree: not enough choices"
    in
    let lo_choices, hi_choices = split 0 [] choices in
    let lo = mux_tree c ~sel:low_sel lo_choices in
    let hi = mux_tree c ~sel:low_sel hi_choices in
    mux c ~sel:top lo hi

let full_add c x y z =
  match Builder.cell c.b "FA_X1" ~inputs:[ ("A", x); ("B", y); ("CI", z) ] with
  | [ co; s ] -> (co, s)
  | _ -> failwith "Bv.full_add: FA arity"

let add ?cin c a b =
  check_same_width "Bv.add" a b;
  let cin = match cin with Some n -> n | None -> zero_net c in
  let w = Array.length a in
  let out = Array.make w cin in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let co, s = full_add c a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := co
  done;
  out

(* Sklansky parallel-prefix adder: generate/propagate per bit, log-depth
   prefix tree, sum by XOR with the incoming carries. *)
let add_fast ?cin c a b =
  check_same_width "Bv.add_fast" a b;
  let w = Array.length a in
  let cin = match cin with Some n -> n | None -> zero_net c in
  let p = Array.init w (fun i -> one_cell c "XOR2_X1" ~inputs:[ ("A", a.(i)); ("B", b.(i)) ]) in
  let g =
    Array.init w (fun i ->
        let gi = one_cell c "AND2_X1" ~inputs:[ ("A1", a.(i)); ("A2", b.(i)) ] in
        if i = 0 then begin
          (* Fold the carry-in into bit 0's generate. *)
          let via = one_cell c "AND2_X1" ~inputs:[ ("A1", p.(0)); ("A2", cin) ] in
          one_cell c "OR2_X1" ~inputs:[ ("A1", gi); ("A2", via) ]
        end
        else gi)
  in
  (* prefix.(i) = (G, P) over bits [0..i]. *)
  let gg = Array.copy g and pp = Array.copy p in
  let level = ref 1 in
  while !level < w do
    let step = !level in
    (* Sklansky: combine blocks of size [step]. *)
    for i = 0 to w - 1 do
      if i land step <> 0 then begin
        let j = (i lor (step - 1)) - step in
        (* (G,P)_{0..i} = (G_hi + P_hi G_lo, P_hi P_lo) with hi = current. *)
        let via = one_cell c "AND2_X1" ~inputs:[ ("A1", pp.(i)); ("A2", gg.(j)) ] in
        gg.(i) <- one_cell c "OR2_X1" ~inputs:[ ("A1", gg.(i)); ("A2", via) ];
        pp.(i) <- one_cell c "AND2_X1" ~inputs:[ ("A1", pp.(i)); ("A2", pp.(j)) ]
      end
    done;
    level := 2 * step
  done;
  Array.init w (fun i ->
      let carry_in = if i = 0 then cin else gg.(i - 1) in
      one_cell c "XOR2_X1" ~inputs:[ ("A", p.(i)); ("B", carry_in) ])

let msb v = v.(Array.length v - 1)

let sext c v w =
  ignore c;
  let current = Array.length v in
  if w <= current then Array.sub v 0 w
  else Array.init w (fun i -> if i < current then v.(i) else msb v)

let zext c v w =
  let current = Array.length v in
  if w <= current then Array.sub v 0 w
  else Array.init w (fun i -> if i < current then v.(i) else zero_net c)

let add_grow c a b =
  let w = max (Array.length a) (Array.length b) + 1 in
  add c (sext c a w) (sext c b w)

let sub c a b =
  check_same_width "Bv.sub" a b;
  add ~cin:(one_net c) c a (not_ c b)

let sub_fast c a b =
  check_same_width "Bv.sub_fast" a b;
  add_fast ~cin:(one_net c) c a (not_ c b)

let neg c v = sub c (const c 0 (Array.length v)) v

let shl_const c v k =
  let w = Array.length v in
  Array.init w (fun i -> if i < k then zero_net c else v.(i - k))

let asr_const c v k =
  ignore c;
  let w = Array.length v in
  Array.init w (fun i -> if i + k < w then v.(i + k) else msb v)

let add_const c v k =
  add c v (const c k (Array.length v))

(* Canonical signed-digit style decomposition: sum of +/- shifted copies. *)
let mul_const c v k =
  let w = Array.length v in
  if k = 0 then const c 0 w
  else begin
    let terms = ref [] in
    let k_abs = abs k in
    for i = 0 to 62 do
      if (k_abs asr i) land 1 = 1 then terms := shl_const c v i :: !terms
    done;
    let total =
      match !terms with
      | [] -> const c 0 w
      | first :: rest -> List.fold_left (fun acc t -> add_fast c acc t) first rest
    in
    if k < 0 then neg c total else total
  end

let mul c a b =
  let wa = Array.length a and wb = Array.length b in
  let w = wa + wb in
  let acc = ref (const c 0 w) in
  for i = 0 to wb - 1 do
    let partial = zext c (shl_const c (zext c a w) i) w in
    let masked = and_net c partial b.(i) in
    acc := add c !acc masked
  done;
  !acc

let eq_const c v k =
  let bits =
    Array.mapi
      (fun i n ->
        if (k asr i) land 1 = 1 then n
        else one_cell c "INV_X1" ~inputs:[ ("A", n) ])
      v
  in
  let rec tree = function
    | [] -> one_net c
    | [ x ] -> x
    | x :: y :: rest ->
      tree (one_cell c "AND2_X1" ~inputs:[ ("A1", x); ("A2", y) ] :: rest)
  in
  tree (Array.to_list bits)

let reduce_or c v =
  let rec tree = function
    | [] -> zero_net c
    | [ x ] -> x
    | x :: y :: rest ->
      tree (one_cell c "OR2_X1" ~inputs:[ ("A1", x); ("A2", y) ] :: rest)
  in
  tree (Array.to_list v)
