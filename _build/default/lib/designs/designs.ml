module Netlist = Aging_netlist.Netlist
module Builder = Netlist.Builder
module Dct = Aging_image.Dct

let transform_io_width = 13

(* ------------------------- DCT / IDCT ------------------------- *)

let make_transform ~name ~inverse () =
  let b = Builder.create name in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  let module A = struct
    type v = Bv.t

    let add = Bv.add_fast c
    let sub = Bv.sub_fast c
    let mul_const v k = Bv.mul_const c v k
    let add_const v k = Bv.add_const c v k
    let asr_const v k = Bv.asr_const c v k
  end in
  let module D = Dct.Make (A) in
  let inputs =
    Array.init 8 (fun i -> Bv.input c (Printf.sprintf "I%d" i) transform_io_width)
  in
  let staged = Array.map (fun v -> Bv.reg c v) inputs in
  let wide = Array.map (fun v -> Bv.sext c v Dct.width) staged in
  let transformed = if inverse then D.inverse_1d wide else D.forward_1d wide in
  Array.iteri
    (fun i v ->
      let narrowed = Bv.slice v ~lo:0 ~hi:(transform_io_width - 1) in
      Bv.output c (Printf.sprintf "O%d" i) (Bv.reg c narrowed))
    transformed;
  Builder.finish b

let dct () = make_transform ~name:"dct" ~inverse:false ()
let idct () = make_transform ~name:"idct" ~inverse:true ()

(* ----------------------------- DSP ----------------------------- *)

let dsp () =
  let b = Builder.create "dsp" in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  let a = Bv.reg c (Bv.input c "a" 8) in
  let x = Bv.reg c (Bv.input c "x" 8) in
  let clr = Builder.input b "clr" in
  let product = Bv.reg c (Bv.mul c a x) in
  let acc_width = 20 in
  let acc = Bv.feedback c acc_width in
  let kept = Bv.and_net c acc (Bv.inv_net c clr) in
  let next = Bv.add_fast c kept (Bv.zext c product acc_width) in
  Bv.reg_into c ~d:next ~q:acc;
  Bv.output c "acc" acc;
  Builder.finish b

(* ----------------------------- FFT ----------------------------- *)

(* One radix-2 DIT butterfly with the W8^1 twiddle (1 - j)/sqrt(2),
   scaled by 64: (45 - 45 j) / 64. *)
let fft () =
  let b = Builder.create "fft" in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  let w = 12 and internal = 18 in
  let widen name = Bv.sext c (Bv.reg c (Bv.input c name w)) internal in
  let ar = widen "ar" and ai = widen "ai" in
  let br = widen "br" and bi = widen "bi" in
  let scale v = Bv.asr_const c v 6 in
  (* b' = W * b with W = (45 - 45j)/64. *)
  let br' = scale (Bv.add_fast c (Bv.mul_const c br 45) (Bv.mul_const c bi 45)) in
  let bi' = scale (Bv.sub_fast c (Bv.mul_const c bi 45) (Bv.mul_const c br 45)) in
  let out name v =
    Bv.output c name (Bv.reg c (Bv.slice v ~lo:0 ~hi:(w - 1)))
  in
  out "x0r" (Bv.add_fast c ar br');
  out "x0i" (Bv.add_fast c ai bi');
  out "x1r" (Bv.sub_fast c ar br');
  out "x1i" (Bv.sub_fast c ai bi');
  Builder.finish b

(* --------------------- Shared processor pieces --------------------- *)

let word = 16
let nregs = 8
let regsel = 3

(* 8 x 16 register file: one write port, combinational reads by mux tree. *)
let register_file c ~we ~waddr ~wdata =
  let regs =
    Array.init nregs (fun i ->
        let q = Bv.feedback c word in
        let selected = Bv.and2_net c we (Bv.eq_const c waddr i) in
        let d = Bv.mux c ~sel:selected q wdata in
        Bv.reg_into c ~d ~q;
        q)
  in
  let read addr = Bv.mux_tree c ~sel:addr (Array.to_list regs) in
  read

(* Dual-write register file for the VLIW (port 1 wins on conflicts). *)
let register_file2 c ~we0 ~waddr0 ~wdata0 ~we1 ~waddr1 ~wdata1 =
  let regs =
    Array.init nregs (fun i ->
        let q = Bv.feedback c word in
        let sel0 = Bv.and2_net c we0 (Bv.eq_const c waddr0 i) in
        let sel1 = Bv.and2_net c we1 (Bv.eq_const c waddr1 i) in
        let d = Bv.mux c ~sel:sel0 q wdata0 in
        let d = Bv.mux c ~sel:sel1 d wdata1 in
        Bv.reg_into c ~d ~q;
        q)
  in
  let read addr = Bv.mux_tree c ~sel:addr (Array.to_list regs) in
  read

(* 16-bit ALU, op in [0,7]: add sub and or xor shl1 lsr1 passb. *)
let alu c ~op a bv =
  let results =
    [
      Bv.add_fast c a bv;
      Bv.sub_fast c a bv;
      Bv.and_ c a bv;
      Bv.or_ c a bv;
      Bv.xor_ c a bv;
      Bv.shl_const c a 1;
      Bv.concat (Bv.slice a ~lo:1 ~hi:(word - 1)) [| Bv.zero_net c |];
      bv;
    ]
  in
  Bv.mux_tree c ~sel:op results

(* Instruction word: [15]=we, [14:12]=op, [11:9]=rd, [8:6]=ra, [5:3]=rb,
   [5:0] doubles as a signed immediate, [2]=use_imm. *)
let decode instr =
  let f lo hi = Array.sub instr lo (hi - lo + 1) in
  ( instr.(15),          (* we *)
    f 12 14,             (* op *)
    f 9 11,              (* rd *)
    f 6 8,               (* ra *)
    f 3 5,               (* rb *)
    f 0 5,               (* imm6 *)
    instr.(2) )          (* use_imm *)

let eq_vec c a bv =
  let diff = Bv.xor_ c a bv in
  Bv.inv_net c (Bv.reduce_or c diff)

(* Forwarding mux: take [fwd_data] when [fwd_we] and tags match. *)
let forward c ~tag ~fwd_we ~fwd_tag ~fwd_data ~normal =
  let hit = Bv.and2_net c fwd_we (eq_vec c tag fwd_tag) in
  Bv.mux c ~sel:hit normal fwd_data

let risc_pipeline ~name ~six_stages () =
  let b = Builder.create name in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  (* Pre-allocate the MEM and WB pipeline registers: their Q nets feed the
     forwarding network and the register file before their D logic exists. *)
  let mem_data = Bv.feedback c word in
  let mem_rd = Bv.feedback c regsel in
  let mem_we = Bv.feedback c 1 in
  let wb_data = Bv.feedback c word in
  let wb_rd = Bv.feedback c regsel in
  let wb_we = Bv.feedback c 1 in
  (* IF: latch the incoming instruction word. *)
  let instr = Bv.reg c (Bv.input c "instr" word) in
  (* ID: decode + register read + operand selection. *)
  let we, op, rd, ra, rb, imm6, use_imm = decode instr in
  let read = register_file c ~we:(Bv.bit wb_we 0) ~waddr:wb_rd ~wdata:wb_data in
  let ra_data = read ra and rb_data = read rb in
  let operand_b = Bv.mux c ~sel:use_imm rb_data (Bv.sext c imm6 word) in
  (* ID/EX pipeline registers. *)
  let ex_a = Bv.reg c ra_data in
  let ex_b = Bv.reg c operand_b in
  let ex_op = Bv.reg c op in
  let ex_rd = Bv.reg c rd in
  let ex_we = Bv.reg c [| we |] in
  let ex_ra = Bv.reg c ra in
  let ex_rb = Bv.reg c rb in
  (* Forwarding from the MEM and WB stages. *)
  let fwd source tag =
    let once =
      forward c ~tag ~fwd_we:(Bv.bit mem_we 0) ~fwd_tag:mem_rd
        ~fwd_data:mem_data ~normal:source
    in
    forward c ~tag ~fwd_we:(Bv.bit wb_we 0) ~fwd_tag:wb_rd ~fwd_data:wb_data
      ~normal:once
  in
  let alu_a = fwd ex_a ex_ra in
  let alu_b = fwd ex_b ex_rb in
  (* EX (split over two stages in the 6-stage variant). *)
  let alu_out, post_rd, post_we =
    if six_stages then begin
      (* EX1 computes the arithmetic results, EX2 selects. *)
      let sum = Bv.reg c (Bv.add_fast c alu_a alu_b) in
      let dif = Bv.reg c (Bv.sub_fast c alu_a alu_b) in
      let a_q = Bv.reg c alu_a and b_q = Bv.reg c alu_b in
      let op_q = Bv.reg c ex_op in
      let rd_q = Bv.reg c ex_rd and we_q = Bv.reg c ex_we in
      let results =
        [
          sum;
          dif;
          Bv.and_ c a_q b_q;
          Bv.or_ c a_q b_q;
          Bv.xor_ c a_q b_q;
          Bv.shl_const c a_q 1;
          Bv.concat (Bv.slice a_q ~lo:1 ~hi:(word - 1)) [| Bv.zero_net c |];
          b_q;
        ]
      in
      (Bv.mux_tree c ~sel:op_q results, rd_q, we_q)
    end
    else (alu c ~op:ex_op alu_a alu_b, ex_rd, ex_we)
  in
  (* MEM and WB pipeline registers (pre-allocated above). *)
  Bv.reg_into c ~d:alu_out ~q:mem_data;
  Bv.reg_into c ~d:post_rd ~q:mem_rd;
  Bv.reg_into c ~d:post_we ~q:mem_we;
  Bv.reg_into c ~d:mem_data ~q:wb_data;
  Bv.reg_into c ~d:mem_rd ~q:wb_rd;
  Bv.reg_into c ~d:mem_we ~q:wb_we;
  Bv.output c "result" wb_data;
  Builder.finish b

let risc5 () = risc_pipeline ~name:"risc5" ~six_stages:false ()
let risc6 () = risc_pipeline ~name:"risc6" ~six_stages:true ()

(* ----------------------------- VLIW ----------------------------- *)

let vliw () =
  let b = Builder.create "vliw" in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  (* Two 16-bit instruction slots. *)
  let i0 = Bv.reg c (Bv.input c "slot0" word) in
  let i1 = Bv.reg c (Bv.input c "slot1" word) in
  let we0, op0, rd0, ra0, rb0, imm0, ui0 = decode i0 in
  let we1, op1, rd1, ra1, rb1, imm1, ui1 = decode i1 in
  (* Pre-allocated write-back registers of both lanes. *)
  let wbwe0 = Bv.feedback c 1 and wbwe1 = Bv.feedback c 1 in
  let wbrd0 = Bv.feedback c regsel and wbrd1 = Bv.feedback c regsel in
  let wbd0 = Bv.feedback c word and wbd1 = Bv.feedback c word in
  let read =
    register_file2 c ~we0:(Bv.bit wbwe0 0) ~waddr0:wbrd0 ~wdata0:wbd0
      ~we1:(Bv.bit wbwe1 0) ~waddr1:wbrd1 ~wdata1:wbd1
  in
  let lane we op rd ra rb imm use_imm (wb_we, wb_rd, wb_data) =
    let a = read ra in
    let bsrc = Bv.mux c ~sel:use_imm (read rb) (Bv.sext c imm word) in
    let ex_a = Bv.reg c a and ex_b = Bv.reg c bsrc in
    let ex_op = Bv.reg c op and ex_rd = Bv.reg c rd in
    let ex_we = Bv.reg c [| we |] in
    Bv.reg_into c ~d:(alu c ~op:ex_op ex_a ex_b) ~q:wb_data;
    Bv.reg_into c ~d:ex_rd ~q:wb_rd;
    Bv.reg_into c ~d:ex_we ~q:wb_we
  in
  lane we0 op0 rd0 ra0 rb0 imm0 ui0 (wbwe0, wbrd0, wbd0);
  lane we1 op1 rd1 ra1 rb1 imm1 ui1 (wbwe1, wbrd1, wbd1);
  Bv.output c "r0" wbd0;
  Bv.output c "r1" wbd1;
  Builder.finish b

(* ---------------------------- counter ---------------------------- *)

let counter ~bits =
  let b = Builder.create "counter" in
  let (_ : Netlist.net) = Builder.clock b "clk" in
  let c = Bv.ctx b in
  let enable = Builder.input b "en" in
  let q = Bv.feedback c bits in
  let incremented = Bv.add ~cin:enable c q (Bv.const c 0 bits) in
  Bv.reg_into c ~d:incremented ~q;
  Bv.output c "count" q;
  Builder.finish b

let all () =
  [
    ("DSP", dsp ());
    ("FFT", fft ());
    ("RISC-6P", risc6 ());
    ("RISC-5P", risc5 ());
    ("VLIW", vliw ());
    ("DCT", dct ());
    ("IDCT", idct ());
  ]

let by_name name =
  match name with
  | "DSP" -> Some (dsp ())
  | "FFT" -> Some (fft ())
  | "RISC-6P" -> Some (risc6 ())
  | "RISC-5P" -> Some (risc5 ())
  | "VLIW" -> Some (vliw ())
  | "DCT" -> Some (dct ())
  | "IDCT" -> Some (idct ())
  | _ -> None
