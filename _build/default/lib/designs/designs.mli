(** The benchmark designs of the evaluation (Sec. 5).

    Structural stand-ins for the paper's industrial-strength RTL: two image
    processing datapaths (DCT, IDCT), a MAC-based DSP, an FFT radix-2
    butterfly stage, two RISC pipelines (5 and 6 stages) and a 2-issue VLIW
    datapath.  Each generator returns a flat gate-level netlist built from
    catalog cells; the synthesis flow then re-optimizes it against a chosen
    library. *)

val transform_io_width : int
(** Bit width of the DCT/IDCT sample ports (13: wide enough for
    second-pass coefficients). *)

val dct : unit -> Aging_netlist.Netlist.t
(** Registered 8-point 1-D forward DCT: ports [I0..I7\[12:0\]] ->
    [O0..O7\[12:0\]], two cycles of latency (input and output registers).
    Bit-identical to {!Aging_image.Dct.forward_1d}. *)

val idct : unit -> Aging_netlist.Netlist.t
(** Registered 8-point 1-D inverse DCT (same interface). *)

val dsp : unit -> Aging_netlist.Netlist.t
(** Multiply-accumulate engine: 8x8 array multiplier with a 20-bit
    accumulator ([clr] input resets the accumulation chain input). *)

val fft : unit -> Aging_netlist.Netlist.t
(** Radix-2 decimation-in-time butterfly with a W8^1 twiddle (12-bit
    complex I/O, registered). *)

val risc5 : unit -> Aging_netlist.Netlist.t
(** 5-stage (IF/ID/EX/MEM/WB) 16-bit pipeline: 8x16 register file, ALU,
    EX/MEM forwarding. Instruction word fed through the [instr] port. *)

val risc6 : unit -> Aging_netlist.Netlist.t
(** 6-stage variant (split execute). *)

val vliw : unit -> Aging_netlist.Netlist.t
(** 2-issue VLIW: two ALU lanes over a shared dual-write register file. *)

val counter : bits:int -> Aging_netlist.Netlist.t
(** A small up-counter with enable (used by the quickstart example and the
    fast tests). *)

val all : unit -> (string * Aging_netlist.Netlist.t) list
(** The seven benchmark designs in the paper's order:
    DSP, FFT, RISC-6P, RISC-5P, VLIW, DCT, IDCT. *)

val by_name : string -> Aging_netlist.Netlist.t option
