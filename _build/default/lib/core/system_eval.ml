module Event_sim = Aging_sim.Event_sim
module Image = Aging_image.Image
module Dct = Aging_image.Dct
module Designs = Aging_designs.Designs

let io_width = Designs.transform_io_width
let io_mask = (1 lsl io_width) - 1
let latency = 2

let rated_period ?(cycles = 150) ?(seed = 17L) sim =
  let netlist = Event_sim.design sim in
  let rng = Aging_util.Rng.create seed in
  let vectors =
    Array.init cycles (fun _ ->
        List.map
          (fun (port, _) -> (port, Aging_util.Rng.bool rng))
          netlist.Aging_netlist.Netlist.input_ports)
  in
  let stimulus n = vectors.(min n (cycles - 1)) in
  let error_free period =
    let trace = Event_sim.run sim ~period ~cycles ~stimulus in
    trace.Event_sim.timing_errors = 0
  in
  let sta = Event_sim.min_period sim in
  let rec search lo hi iterations =
    (* Invariant: hi is error-free, lo is not (or untested floor). *)
    if iterations = 0 then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if error_free mid then search lo mid (iterations - 1)
      else search mid hi (iterations - 1)
    end
  in
  if error_free (0.5 *. sta) then 0.5 *. sta
  else search (0.5 *. sta) (1.05 *. sta) 7

let port_bits prefix lane value =
  List.init io_width (fun bit ->
      ( Printf.sprintf "%s%d[%d]" prefix lane bit,
        (value land io_mask) lsr bit land 1 = 1 ))

let decode_output outs lane =
  let raw = ref 0 in
  for bit = io_width - 1 downto 0 do
    let name = Printf.sprintf "O%d[%d]" lane bit in
    raw := (!raw lsl 1) lor (if List.assoc name outs then 1 else 0)
  done;
  if !raw >= 1 lsl (io_width - 1) then !raw - (1 lsl io_width) else !raw

let run_vectors sim ~period vectors =
  let vecs = Array.of_list vectors in
  let n = Array.length vecs in
  if n = 0 then []
  else begin
    let stimulus cycle =
      let v = vecs.(min cycle (n - 1)) in
      List.concat (List.init 8 (fun lane -> port_bits "I" lane v.(lane)))
    in
    let trace = Event_sim.run sim ~period ~cycles:(n + latency) ~stimulus in
    List.init n (fun i ->
        let outs = trace.Event_sim.outputs.(i + latency) in
        Array.init 8 (fun lane -> decode_output outs lane))
  end

(* One 1-D pass over every 8x8 block of a 64-vector list: [rows] selects
   row or column vectors. *)
let blocks_of image =
  let bw = (image.Image.width + 7) / 8 and bh = (image.Image.height + 7) / 8 in
  List.concat
    (List.init bh (fun by -> List.init bw (fun bx -> (bx, by))))

let pass sim ~period ~rows blocks =
  let vectors =
    List.concat_map
      (fun block ->
        List.init 8 (fun k ->
            Array.init 8 (fun j ->
                if rows then block.((k * 8) + j) else block.((j * 8) + k))))
      blocks
  in
  let transformed = run_vectors sim ~period vectors in
  let rec regroup acc = function
    | [] -> List.rev acc
    | v0 :: v1 :: v2 :: v3 :: v4 :: v5 :: v6 :: v7 :: rest ->
      let vecs = [| v0; v1; v2; v3; v4; v5; v6; v7 |] in
      let block = Array.make 64 0 in
      for k = 0 to 7 do
        for j = 0 to 7 do
          let index = if rows then (k * 8) + j else (j * 8) + k in
          block.(index) <- vecs.(k).(j)
        done
      done;
      regroup (block :: acc) rest
    | _ -> failwith "System_eval.pass: vector count not a multiple of 8"
  in
  regroup [] transformed

let process_image ~dct ~idct ~period image =
  let coords = blocks_of image in
  let centered =
    List.map
      (fun (bx, by) ->
        Array.map (fun p -> p - 128) (Image.block8 image ~bx ~by))
      coords
  in
  let coeffs =
    centered |> pass dct ~period ~rows:true |> pass dct ~period ~rows:false
  in
  let decoded =
    coeffs |> pass idct ~period ~rows:true |> pass idct ~period ~rows:false
  in
  let out = Image.create ~width:image.Image.width ~height:image.Image.height in
  List.iter2
    (fun (bx, by) block ->
      Image.set_block8 out ~bx ~by (Array.map (fun v -> v + 128) block))
    coords decoded;
  out

let reference_image = Dct.roundtrip_image

let psnr_vs_original original processed = Image.psnr ~reference:original processed

let rated_chain_period ?(margin = 1.03) ~dct ~idct image =
  let reference = reference_image image in
  let clean period =
    Image.equal (process_image ~dct ~idct ~period image) reference
  in
  let sta_bound =
    Float.max (Event_sim.min_period dct) (Event_sim.min_period idct)
  in
  let rec search lo hi iterations =
    if iterations = 0 then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if clean mid then search lo mid (iterations - 1)
      else search mid hi (iterations - 1)
    end
  in
  let edge =
    if clean (0.55 *. sta_bound) then 0.55 *. sta_bound
    else search (0.55 *. sta_bound) (1.02 *. sta_bound) 5
  in
  margin *. edge
