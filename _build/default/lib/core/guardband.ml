module Timing = Aging_sta.Timing
module Paths = Aging_sta.Paths
module Netlist = Aging_netlist.Netlist

type estimate = {
  fresh_period : float;
  aged_period : float;
  guardband : float;
}

let estimate ~fresh_period ~aged_period =
  { fresh_period; aged_period; guardband = aged_period -. fresh_period }

let static ?mode ?config ~deglib ~corner netlist =
  let fresh_lib = Degradation_library.fresh deglib in
  let aged_lib = Degradation_library.corner ?mode deglib corner in
  let fresh_period =
    Timing.min_period (Timing.analyze ?config ~library:fresh_lib netlist)
  in
  let aged_period =
    Timing.min_period (Timing.analyze ?config ~library:aged_lib netlist)
  in
  estimate ~fresh_period ~aged_period

let single_opc ?config ~deglib ~corner netlist =
  let fresh_lib = Degradation_library.fresh deglib in
  let pseudo = Degradation_library.single_opc deglib corner in
  let fresh_period =
    Timing.min_period (Timing.analyze ?config ~library:fresh_lib netlist)
  in
  let aged_period =
    Timing.min_period (Timing.analyze ?config ~library:pseudo netlist)
  in
  estimate ~fresh_period ~aged_period

let initial_cp_only ?config ~deglib ~corner netlist =
  let fresh_lib = Degradation_library.fresh deglib in
  let aged_lib = Degradation_library.corner deglib corner in
  let fresh_analysis = Timing.analyze ?config ~library:fresh_lib netlist in
  let fresh_period = Timing.min_period fresh_analysis in
  let cp = Paths.critical fresh_analysis in
  let cfg = Timing.config fresh_analysis in
  let retimed =
    Paths.retime ~library:aged_lib ~config:cfg ~analysis:fresh_analysis cp
    +. cp.Paths.endpoint.Timing.setup
  in
  estimate ~fresh_period ~aged_period:retimed

let dynamic ?config ?(cycles = 2000) ~deglib ~stimulus netlist =
  let fresh_lib = Degradation_library.fresh deglib in
  let fresh_period =
    Timing.min_period (Timing.analyze ?config ~library:fresh_lib netlist)
  in
  let profile = Aging_sim.Activity.profile netlist ~cycles ~stimulus in
  let annotated = Aging_sim.Activity.annotate netlist profile in
  let corners = Aging_sim.Activity.corners_used annotated in
  let complete = Degradation_library.complete deglib corners in
  let aged_period =
    Timing.min_period (Timing.analyze ?config ~library:complete annotated)
  in
  (estimate ~fresh_period ~aged_period, annotated)
