(** Guardband estimation (paper Sec. 4.2 and the Fig. 5 comparisons).

    The guardband of a netlist is the extra period an aged design needs on
    top of its fresh critical period:
    [guardband = min_period(aged) - min_period(fresh)]. *)

type estimate = {
  fresh_period : float;  (** [s] *)
  aged_period : float;   (** [s] *)
  guardband : float;     (** [aged_period - fresh_period] *)
}

val static :
  ?mode:Aging_physics.Degradation.mode ->
  ?config:Aging_sta.Timing.config ->
  deglib:Degradation_library.t ->
  corner:Aging_physics.Scenario.corner ->
  Aging_netlist.Netlist.t ->
  estimate
(** Static aging stress: all transistors at the corner duty cycles.
    [mode = Vth_only] reproduces prior work that ignores mobility
    degradation (Fig. 5a). *)

val single_opc :
  ?config:Aging_sta.Timing.config ->
  deglib:Degradation_library.t ->
  corner:Aging_physics.Scenario.corner ->
  Aging_netlist.Netlist.t ->
  estimate
(** Prior-work strawman for Fig. 5(b): aging applied as a single-OPC delay
    ratio per cell. *)

val initial_cp_only :
  ?config:Aging_sta.Timing.config ->
  deglib:Degradation_library.t ->
  corner:Aging_physics.Scenario.corner ->
  Aging_netlist.Netlist.t ->
  estimate
(** Prior-work strawman for Fig. 5(c): only the initially-critical path is
    re-timed under aging, missing critical-path switching.  [aged_period]
    is the re-timed delay of the fresh critical path. *)

val dynamic :
  ?config:Aging_sta.Timing.config ->
  ?cycles:int ->
  deglib:Degradation_library.t ->
  stimulus:(int -> (string * bool) list) ->
  Aging_netlist.Netlist.t ->
  estimate * Aging_netlist.Netlist.t
(** Dynamic aging stress under a workload: simulate [cycles] (default 2000)
    to extract per-transistor duty cycles, annotate the netlist with
    snapped corners, characterize the needed slices of the complete library
    and re-time.  Also returns the annotated netlist. *)
