(** Transistor-level two-path criticality-switch demo (paper Fig. 3).

    Two gate chains are simulated at the transistor level (the "measured by
    HSPICE" setup of the paper): every stage delay is measured fresh and
    under worst-case aging.  The chains are chosen so that the initially
    critical path becomes uncritical after aging — the slower-aging
    NAND-flavoured chain is overtaken by a chain whose weakly driven,
    slow-slew NOR stage ages disproportionately. *)

type stage_kind = Inv | Nand2 | Nor2

type stage = {
  kind : stage_kind;
  drive : int;
  extra_load : float;  (** grounded capacitance added at the stage output [F] *)
}

type measurement = {
  stage_delays : float array;  (** per-stage 50/50 delay [s] *)
  total : float;               (** worst of input-rise/input-fall totals [s] *)
}

val measure :
  ?scenario:Aging_physics.Scenario.t -> ?input_slew:float -> stage list ->
  measurement
(** Builds the chain, runs the transient engine for both input edges and
    measures per-stage delays of the slower edge.  [scenario] defaults to
    fresh; [input_slew] to 20 ps. *)

val path1 : stage list
(** The paper-style initially-critical path (NAND-flavoured, well driven). *)

val path2 : stage list
(** The initially-uncritical path with an aging-sensitive slow-slew NOR
    stage. *)
