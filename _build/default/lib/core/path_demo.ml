module Scenario = Aging_physics.Scenario
module Device = Aging_physics.Device
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform
module Pull = Aging_cells.Pull

type stage_kind = Inv | Nand2 | Nor2

type stage = { kind : stage_kind; drive : int; extra_load : float }

type measurement = { stage_delays : float array; total : float }

let build stages =
  let circuit = Circuit.create () in
  let input = Circuit.fresh_node ~name:"in" circuit in
  let taps =
    List.fold_left
      (fun taps stage ->
        let prev = match taps with n :: _ -> n | [] -> input in
        let out = Circuit.fresh_node circuit in
        begin
          match stage.kind with
          | Inv -> Pull.inverter circuit ~drive:stage.drive ~input:prev ~out
          | Nand2 ->
            (* Side input tied high: the stage is sensitized through the
               chain. *)
            Pull.stage circuit ~drive:stage.drive
              ~pdn:(Pull.S [ Pull.T prev; Pull.T Circuit.vdd ])
              ~out
          | Nor2 ->
            Pull.stage circuit ~drive:stage.drive
              ~pdn:(Pull.P [ Pull.T prev; Pull.T Circuit.gnd ])
              ~out
        end;
        if stage.extra_load > 0. then Circuit.add_cap circuit out stage.extra_load;
        out :: taps)
      [] stages
  in
  (circuit, input, List.rev taps)

(* All the demo stages invert, so the expected edge alternates. *)
let flip = function Waveform.Rising -> Waveform.Falling | Waveform.Falling -> Waveform.Rising

let measure_edge circuit input taps ~input_slew ~rising =
  let t_start = 5e-11 in
  let stim = Stimulus.ramp ~t_start ~slew:input_slew ~rising () in
  let result =
    Engine.transient circuit ~drives:[ (input, stim) ]
      ~t_stop:(t_start +. Stimulus.full_ramp_time input_slew +. 4e-9)
  in
  let mid = 0.5 *. Device.vdd in
  let crossing node direction =
    match
      Waveform.cross_last (Engine.waveform result node) ~level:mid ~direction
    with
    | Some t -> t
    | None ->
      failwith
        (Printf.sprintf "Path_demo: node %s did not switch"
           (Circuit.node_name circuit node))
  in
  let in_dir = if rising then Waveform.Rising else Waveform.Falling in
  let times, _ =
    List.fold_left
      (fun (times, dir) tap ->
        let dir = flip dir in
        (crossing tap dir :: times, dir))
      ([ crossing input in_dir ], in_dir)
      taps
  in
  let times = Array.of_list (List.rev times) in
  Array.init
    (Array.length times - 1)
    (fun i -> times.(i + 1) -. times.(i))

let measure ?(scenario = Scenario.scenario Scenario.fresh)
    ?(input_slew = 2e-11) stages =
  let circuit, input, taps = build stages in
  let circuit = Circuit.map_devices (Scenario.age_device scenario) circuit in
  let rise = measure_edge circuit input taps ~input_slew ~rising:true in
  let fall = measure_edge circuit input taps ~input_slew ~rising:false in
  let sum a = Array.fold_left ( +. ) 0. a in
  let stage_delays = if sum rise >= sum fall then rise else fall in
  { stage_delays; total = Float.max (sum rise) (sum fall) }

let path1 =
  [
    { kind = Inv; drive = 4; extra_load = 1e-15 };
    { kind = Nand2; drive = 1; extra_load = 1e-15 };
    { kind = Inv; drive = 2; extra_load = 2e-15 };
    { kind = Nand2; drive = 2; extra_load = 2e-15 };
    { kind = Inv; drive = 2; extra_load = 2e-15 };
    { kind = Nand2; drive = 1; extra_load = 1e-15 };
    { kind = Inv; drive = 2; extra_load = 6.5e-15 };
  ]

let path2 =
  [
    { kind = Inv; drive = 1; extra_load = 9e-15 };
    { kind = Nor2; drive = 1; extra_load = 1e-15 };
    { kind = Inv; drive = 2; extra_load = 4e-15 };
  ]
