module Scenario = Aging_physics.Scenario
module Degradation = Aging_physics.Degradation
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Characterize = Aging_liberty.Characterize
module Nldm = Aging_liberty.Nldm
module Io = Aging_liberty.Io
module Cell = Aging_cells.Cell

type t = {
  backend : Characterize.backend;
  cells : Cell.t list;
  axes : Axes.t;
  years : float;
  cache_dir : string option;
  memo : (string, Library.t) Hashtbl.t;
  fingerprint : string;
}

let backend_tag = function
  | Characterize.Transient _ -> "transient"
  | Characterize.Analytic -> "analytic"

let create ?(backend = Characterize.default_backend) ?cells ?(axes = Axes.paper)
    ?(years = 10.) ?cache_dir () =
  let cells = Option.value cells ~default:(Aging_cells.Catalog.all ()) in
  (* The fingerprint must change whenever anything that affects the tables
     changes: cell set, axes, backend, and the physics model itself (probed
     by sampling the degradation of a reference device). *)
  let model_probe =
    let stress = Aging_physics.Bti.stress ~duty:1.0 () in
    let d =
      Degradation.of_stress (Aging_physics.Device.pmos ~w:1e-7) stress
    in
    let dn =
      Degradation.of_stress (Aging_physics.Device.nmos ~w:1e-7) stress
    in
    (d.Degradation.delta_vth, d.Degradation.mu_factor, dn.Degradation.delta_vth)
  in
  let fingerprint =
    Printf.sprintf "%08x"
      (Hashtbl.hash
         ( List.map (fun (c : Cell.t) -> c.Cell.name) cells,
           Array.to_list axes.Axes.slews,
           Array.to_list axes.Axes.loads,
           backend_tag backend,
           model_probe ))
  in
  { backend; cells; axes; years; cache_dir; memo = Hashtbl.create 16; fingerprint }

let axes t = t.axes
let years t = t.years

let mode_tag = function Degradation.Full -> "full" | Degradation.Vth_only -> "vth"

let key t ~mode ~indexed corner =
  Printf.sprintf "%s_y%g_%s%s_%s" (mode_tag mode) t.years
    (Scenario.suffix corner)
    (if indexed then "_idx" else "")
    t.fingerprint

let cached t name build =
  match Hashtbl.find_opt t.memo name with
  | Some lib -> lib
  | None ->
    let from_disk =
      match t.cache_dir with
      | None -> None
      | Some dir ->
        let path = Filename.concat dir (name ^ ".alib") in
        if Sys.file_exists path then Some (Io.load path) else None
    in
    let lib =
      match from_disk with
      | Some lib -> lib
      | None ->
        let lib = build () in
        Option.iter
          (fun dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            Io.save (Filename.concat dir (name ^ ".alib")) lib)
          t.cache_dir;
        lib
    in
    Hashtbl.replace t.memo name lib;
    lib

let corner ?(mode = Degradation.Full) t c =
  let name = key t ~mode ~indexed:false c in
  cached t name (fun () ->
      let scenario = Scenario.scenario ~years:t.years ~mode c in
      Characterize.library ~backend:t.backend ~cells:t.cells ~axes:t.axes
        ~name ~scenario ())

let indexed_corner t c =
  let name = key t ~mode:Degradation.Full ~indexed:true c in
  cached t name (fun () ->
      let scenario = Scenario.scenario ~years:t.years c in
      Characterize.library ~backend:t.backend ~cells:t.cells ~indexed:true
        ~axes:t.axes ~name ~scenario ())

let fresh t = corner t Scenario.fresh
let worst_case ?mode t = corner ?mode t Scenario.worst_case

let complete t corners =
  match List.map (indexed_corner t) corners with
  | [] -> invalid_arg "Degradation_library.complete: no corners"
  | first :: rest ->
    let merged = List.fold_left Library.merge_entries first rest in
    Library.create ~lib_name:"complete" ~axes:(Library.axes merged)
      (Library.entries merged)

let single_opc ?slew ?load t c =
  let fresh_lib = fresh t in
  let aged_lib = corner t c in
  let slew = Option.value slew ~default:t.axes.Axes.slews.(Array.length t.axes.Axes.slews - 1) in
  let load = Option.value load ~default:t.axes.Axes.loads.(0) in
  let scale_entry (fresh_e : Library.entry) =
    let aged_e = Library.find_exn aged_lib fresh_e.Library.indexed_name in
    let scale_arc (fa : Library.arc) =
      match
        List.find_opt
          (fun (aa : Library.arc) ->
            aa.Library.from_pin = fa.Library.from_pin
            && aa.Library.to_pin = fa.Library.to_pin)
          aged_e.Library.arcs
      with
      | None -> fa
      | Some aa ->
        let ratio dir =
          let d0 = Library.delay_of fa ~dir ~slew ~load in
          let d1 = Library.delay_of aa ~dir ~slew ~load in
          if Float.abs d0 < 1e-13 then 1.
          else Float.max 0.2 (Float.min 8. (d1 /. d0))
        in
        let r_rise = ratio Library.Rise and r_fall = ratio Library.Fall in
        {
          fa with
          Library.delay_rise = Nldm.map (fun d -> d *. r_rise) fa.Library.delay_rise;
          delay_fall = Nldm.map (fun d -> d *. r_fall) fa.Library.delay_fall;
        }
    in
    {
      fresh_e with
      Library.arcs = List.map scale_arc fresh_e.Library.arcs;
      setup_time = aged_e.Library.setup_time;
    }
  in
  Library.create
    ~lib_name:(Printf.sprintf "single-opc[%s]" (Scenario.suffix c))
    ~axes:t.axes
    (List.map scale_entry (Library.entries fresh_lib))
