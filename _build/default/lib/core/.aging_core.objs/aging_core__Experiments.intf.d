lib/core/experiments.mli: Aging_netlist Aging_physics Degradation_library
