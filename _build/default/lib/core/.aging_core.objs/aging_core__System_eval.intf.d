lib/core/system_eval.mli: Aging_image Aging_sim
