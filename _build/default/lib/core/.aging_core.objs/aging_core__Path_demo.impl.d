lib/core/path_demo.ml: Aging_cells Aging_physics Aging_spice Array Float List Printf
