lib/core/system_eval.ml: Aging_designs Aging_image Aging_netlist Aging_sim Aging_util Array Float List Printf
