lib/core/guardband.mli: Aging_netlist Aging_physics Aging_sta Degradation_library
