lib/core/degradation_library.ml: Aging_cells Aging_liberty Aging_physics Array Filename Float Hashtbl List Option Printf Sys
