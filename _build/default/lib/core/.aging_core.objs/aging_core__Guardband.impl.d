lib/core/guardband.ml: Aging_netlist Aging_sim Aging_sta Degradation_library
