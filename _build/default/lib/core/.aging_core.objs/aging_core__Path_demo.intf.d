lib/core/path_demo.mli: Aging_physics
