lib/core/degradation_library.mli: Aging_cells Aging_liberty Aging_physics
