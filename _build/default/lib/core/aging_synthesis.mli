(** Aging-aware logic synthesis and guardband containment (Sec. 4.3,
    Fig. 6a/6b).

    Two flows over the same RTL netlist:
    {ul
    {- {e traditional}: synthesize with the initial (degradation-unaware)
       library; the design then needs the full measured guardband;}
    {- {e aging-aware}: synthesize with the worst-case degradation-aware
       library; the obtained period already includes aging, so the design
       carries only a smaller, inherent ("contained") guardband relative to
       the traditional fresh period.}} *)

type comparison = {
  traditional : Aging_netlist.Netlist.t;
  aware : Aging_netlist.Netlist.t;
  trad_fresh_period : float;  (** traditional netlist, fresh library *)
  trad_aged_period : float;   (** traditional netlist, aged library *)
  aware_fresh_period : float; (** aware netlist, fresh library *)
  aware_aged_period : float;  (** aware netlist, aged library *)
}

val run :
  ?options:Aging_synth.Flow.options ->
  ?corner:Aging_physics.Scenario.corner ->
  deglib:Degradation_library.t ->
  Aging_netlist.Netlist.t ->
  comparison
(** Runs both flows; [corner] defaults to worst case. *)

val required_guardband : comparison -> float
(** [trad_aged - trad_fresh]: the guardband a traditional design needs. *)

val contained_guardband : comparison -> float
(** [aware_aged - trad_fresh]: what remains when synthesis is aging-aware
    (the paper reports ~50 % smaller on average, up to 75 %). *)

val guardband_reduction : comparison -> float
(** [1 - contained/required], in [0, 1] when the aware flow wins. *)

val frequency_gain : comparison -> float
(** Aged-frequency advantage of the aware design:
    [trad_aged / aware_aged - 1] (paper: ~4 %, up to 6 %). *)

val area_overhead : comparison -> float
(** [area(aware) / area(traditional) - 1] (paper: ~0.2 %). *)
