module Scenario = Aging_physics.Scenario
module Netlist = Aging_netlist.Netlist
module Flow = Aging_synth.Flow

type comparison = {
  traditional : Netlist.t;
  aware : Netlist.t;
  trad_fresh_period : float;
  trad_aged_period : float;
  aware_fresh_period : float;
  aware_aged_period : float;
}

let run ?options ?(corner = Scenario.worst_case) ~deglib netlist =
  let fresh_lib = Degradation_library.fresh deglib in
  let aged_lib = Degradation_library.corner deglib corner in
  let traditional =
    (* Same post-compile polish budget as the aware flow gets below, against
       the only library a traditional flow has: the fresh one. *)
    let compiled = Flow.compile ?options ~library:fresh_lib netlist in
    let swept = Aging_synth.Sizing.variant_sweep ~library:fresh_lib compiled in
    Aging_synth.Sizing.resize ~passes:20 ~library:fresh_lib swept
  in
  (* The aging-aware implementation: a from-scratch compile against the
     degradation-aware library, and an incremental re-optimization of the
     traditional result against it (re-sizing towards aging-tolerant
     variants and repairing slow transitions).  Keep whichever ages best —
     a flow given the aged library can always at least re-optimize the
     baseline, so containment is never negative by construction. *)
  let aware_scratch = Flow.compile ?options ~library:aged_lib netlist in
  let aware_incremental =
    let swept = Aging_synth.Sizing.variant_sweep ~library:aged_lib traditional in
    let resized = Aging_synth.Sizing.resize ~passes:20 ~library:aged_lib swept in
    Aging_synth.Slew_repair.repair ~library:aged_lib resized
  in
  let aged_period nl = Flow.min_period ~library:aged_lib nl in
  let aware =
    if aged_period aware_scratch <= aged_period aware_incremental then
      aware_scratch
    else aware_incremental
  in
  {
    traditional;
    aware;
    trad_fresh_period = Flow.min_period ~library:fresh_lib traditional;
    trad_aged_period = Flow.min_period ~library:aged_lib traditional;
    aware_fresh_period = Flow.min_period ~library:fresh_lib aware;
    aware_aged_period = Flow.min_period ~library:aged_lib aware;
  }

let required_guardband c = c.trad_aged_period -. c.trad_fresh_period
let contained_guardband c = c.aware_aged_period -. c.trad_fresh_period

let guardband_reduction c =
  let required = required_guardband c in
  if required <= 0. then 0. else 1. -. (contained_guardband c /. required)

let frequency_gain c = (c.trad_aged_period /. c.aware_aged_period) -. 1.

let area_overhead c =
  (Netlist.area c.aware /. Netlist.area c.traditional) -. 1.
