(** System-level evaluation: the DCT-IDCT image chain under aging
    (Sec. 5, Figs. 6c and 7).

    Images are pushed block-by-block through gate-level simulations of the
    DCT and IDCT circuits — four 1-D passes (rows/columns of the forward
    transform, then rows/columns of the inverse) — at a fixed clock period.
    When the library annotating the simulation is aged and the period was
    chosen for the fresh design, flip-flops capture late data and the
    decoded image degrades; PSNR against the original quantifies it. *)

val rated_period :
  ?cycles:int -> ?seed:int64 -> Aging_sim.Event_sim.t -> float
(** The maximum achieved performance of a prepared design: the smallest
    clock period (within 1 %) at which [cycles] (default 150) random input
    vectors capture without a single flip-flop timing error.  This is the
    operating point of the paper's system-level experiment — the gate-level
    analogue of "maximum performance in the absence of aging"; data-
    dependent sensitization makes it faster than the STA bound. *)

val rated_chain_period :
  ?margin:float ->
  dct:Aging_sim.Event_sim.t ->
  idct:Aging_sim.Event_sim.t ->
  Aging_image.Image.t ->
  float
(** The operating point of the Fig. 6c experiment: the smallest clock
    period (1 % binary search) at which the full encode-decode of the given
    image is bit-identical to the error-free reference, times [margin]
    (default 1.03 — the sliver of slack a signoff would leave).  This is
    the gate-level measured "maximum performance in the absence of aging";
    rate it on simulations prepared with the fresh library. *)

val run_vectors :
  Aging_sim.Event_sim.t -> period:float -> int array list -> int array list
(** Streams 8-sample vectors through a prepared transform circuit (13-bit
    signed ports [I0..I7] / [O0..O7], two cycles of latency) and returns
    the transformed vectors in order. *)

val process_image :
  dct:Aging_sim.Event_sim.t ->
  idct:Aging_sim.Event_sim.t ->
  period:float ->
  Aging_image.Image.t ->
  Aging_image.Image.t
(** Full encode-decode of an image through the two simulated circuits. *)

val reference_image : Aging_image.Image.t -> Aging_image.Image.t
(** The timing-error-free result ({!Aging_image.Dct.roundtrip_image});
    what {!process_image} converges to at a sufficiently long period. *)

val psnr_vs_original : Aging_image.Image.t -> Aging_image.Image.t -> float
(** PSNR of a processed image against the original input. *)
