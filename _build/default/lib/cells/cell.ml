module Device = Aging_physics.Device
module Circuit = Aging_spice.Circuit

type kind = Combinational | Flipflop

type built = {
  circuit : Circuit.t;
  input_nodes : (string * Circuit.node) list;
  output_nodes : (string * Circuit.node) list;
}

type t = {
  name : string;
  base : string;
  drive : int;
  inputs : string list;
  outputs : string list;
  logic : bool list -> bool list;
  kind : kind;
  area : float;
  built : built;
}

type arc = {
  arc_input : string;
  arc_output : string;
  side : (string * bool) list;
  positive_unate : bool;
}

let area_per_width_unit = 1.0e-13

let make ~name ~base ~drive ~inputs ~outputs ~logic ~kind ~built =
  let pins_of assoc = List.map fst assoc in
  if pins_of built.input_nodes <> inputs then
    invalid_arg (name ^ ": input pins do not match built nodes");
  if pins_of built.output_nodes <> outputs then
    invalid_arg (name ^ ": output pins do not match built nodes");
  let area =
    area_per_width_unit *. (Pull.total_width built.circuit /. Device.w_min)
  in
  { name; base; drive; inputs; outputs; logic; kind; area; built }

let eval t values =
  if List.length values <> List.length t.inputs then
    invalid_arg (t.name ^ ": wrong input count");
  t.logic values

(* All assignments of the [n] side inputs, in lexicographic order with
   [false] first. *)
let assignments n =
  let rec go = function
    | 0 -> [ [] ]
    | k -> List.concat_map (fun rest -> [ false :: rest; true :: rest ]) (go (k - 1))
  in
  go n

let combinational_arcs t =
  let out_index o =
    match List.find_index (String.equal o) t.outputs with
    | Some i -> i
    | None -> assert false
  in
  List.concat_map
    (fun input ->
      let side_pins = List.filter (fun p -> p <> input) t.inputs in
      List.filter_map
        (fun output ->
          let oi = out_index output in
          let eval_with in_value side_values =
            let values =
              List.map
                (fun pin ->
                  if pin = input then in_value
                  else List.assoc pin (List.combine side_pins side_values))
                t.inputs
            in
            List.nth (t.logic values) oi
          in
          let rec search = function
            | [] -> None
            | side_values :: rest ->
              let lo = eval_with false side_values in
              let hi = eval_with true side_values in
              if lo <> hi then
                Some
                  {
                    arc_input = input;
                    arc_output = output;
                    side = List.combine side_pins side_values;
                    positive_unate = hi;
                  }
              else search rest
          in
          search (assignments (List.length side_pins)))
        t.outputs)
    t.inputs

let flipflop_arcs t =
  (* CK -> Q launch arcs; the D pin is held at the captured value. *)
  let side_pins = List.filter (fun p -> p <> "CK") t.inputs in
  List.concat_map
    (fun output ->
      List.map
        (fun d_value ->
          {
            arc_input = "CK";
            arc_output = output;
            side = List.map (fun p -> (p, d_value)) side_pins;
            positive_unate = d_value;
          })
        [ true; false ])
    t.outputs

let arcs t =
  match t.kind with
  | Combinational -> combinational_arcs t
  | Flipflop -> flipflop_arcs t

let input_capacitance t pin =
  match List.assoc_opt pin t.built.input_nodes with
  | None -> raise Not_found
  | Some node ->
    (* The node capacitance already accumulates the gate capacitance of the
       transistors the pin drives plus any junction parasitics (e.g. the
       transmission-gate terminal a flip-flop D pin lands on). *)
    Circuit.capacitance t.built.circuit node
