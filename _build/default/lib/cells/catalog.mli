(** The standard-cell catalog: a Nangate-45-style open library.

    Substitutes for the Nangate 45 nm Open Cell Library the paper
    characterizes (68 combinational + sequential cells).  The catalog holds
    50+ cells across 27 families (inverters, buffers, NAND/NOR/AND/OR 2-4,
    AOI/OAI complex gates, XOR/XNOR, multiplexers, half/full adders and a
    master-slave D flip-flop) at several drive strengths, each with a full
    transistor-level netlist including stack-aware sizing and terminal
    parasitics. *)

val all : unit -> Cell.t list
(** Every cell, in a stable order.  The list is built once and memoized. *)

val find : string -> Cell.t option
(** Look a cell up by full name, e.g. ["NAND2_X2"]. *)

val find_exn : string -> Cell.t
(** @raise Not_found if the cell does not exist. *)

val variants : string -> Cell.t list
(** All drive variants of a family, weakest first, e.g.
    [variants "INV"]. *)

val families : unit -> string list
(** All family names, in catalog order. *)

val combinational : unit -> Cell.t list
(** All non-flip-flop cells. *)
