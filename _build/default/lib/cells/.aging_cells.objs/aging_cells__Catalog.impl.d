lib/cells/catalog.ml: Aging_physics Aging_spice Cell Lazy List Printf Pull
