lib/cells/pull.mli: Aging_spice
