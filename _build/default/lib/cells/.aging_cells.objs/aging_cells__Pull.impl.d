lib/cells/pull.ml: Aging_physics Aging_spice List
