lib/cells/cell.ml: Aging_physics Aging_spice List Pull String
