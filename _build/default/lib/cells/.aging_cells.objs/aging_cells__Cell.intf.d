lib/cells/cell.mli: Aging_spice
