lib/cells/catalog.mli: Cell
