(** Standard-cell descriptors: logic function, transistor netlist, metadata.

    A cell couples a boolean function (used by logic simulation, synthesis
    and the netlist evaluator) with a transistor-level {!Aging_spice.Circuit}
    (used by characterization), plus the metadata a library needs (area,
    drive strength, pin capacitances, timing arcs). *)

type kind = Combinational | Flipflop

type built = {
  circuit : Aging_spice.Circuit.t;
  input_nodes : (string * Aging_spice.Circuit.node) list;
  output_nodes : (string * Aging_spice.Circuit.node) list;
}

type t = {
  name : string;        (** full name, e.g. ["NAND2_X2"] *)
  base : string;        (** family name, e.g. ["NAND2"] *)
  drive : int;          (** drive strength (the X number) *)
  inputs : string list; (** input pin names, in logic-argument order *)
  outputs : string list;(** output pin names, in logic-result order *)
  logic : bool list -> bool list;
      (** combinational function; for a flip-flop, the captured next-state
          function ([Q := D]) used by cycle-level evaluation *)
  kind : kind;
  area : float;         (** layout area [m^2] *)
  built : built;        (** reference transistor netlist (fresh devices) *)
}

type arc = {
  arc_input : string;
  arc_output : string;
  side : (string * bool) list;
      (** sensitizing values for the other input pins *)
  positive_unate : bool;
      (** under [side], the output follows the input direction *)
}

val make :
  name:string -> base:string -> drive:int -> inputs:string list ->
  outputs:string list -> logic:(bool list -> bool list) -> kind:kind ->
  built:built -> t
(** Computes the area from the total transistor width and validates that the
    pin lists match the built nodes.
    @raise Invalid_argument on inconsistent pins. *)

val arcs : t -> arc list
(** Sensitizable timing arcs.  For combinational cells these are derived
    from the logic function by searching side-input assignments (first
    sensitizing assignment in lexicographic order).  For flip-flops the arcs
    are CK -> Q with [D] held at 1 (rising Q) and 0 (falling Q). *)

val input_capacitance : t -> string -> float
(** Gate capacitance presented by an input pin [F].
    @raise Not_found if the pin does not exist. *)

val eval : t -> bool list -> bool list
(** [logic] with an arity check.
    @raise Invalid_argument on wrong input count. *)

val area_per_width_unit : float
(** Area model: [area = area_per_width_unit * total_width / w_min]. *)
