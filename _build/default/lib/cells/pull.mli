(** Pull-network DSL for building static CMOS stages.

    A complementary stage is described by its pull-down network (the nMOS
    expression between the output and ground); the pull-up network is the
    series/parallel dual, built automatically.  Transistor widths follow the
    usual sizing discipline: the base width scales with the cell drive
    strength, pMOS devices are twice as wide as nMOS (compensating the
    mobility ratio of the 45 nm card), and devices inside a series stack are
    widened by the stack depth. *)

type expr =
  | T of Aging_spice.Circuit.node  (** transistor gated by this node's signal *)
  | S of expr list                 (** series composition *)
  | P of expr list                 (** parallel composition *)

val stage :
  ?p_boost:float ->
  Aging_spice.Circuit.t ->
  drive:int ->
  pdn:expr ->
  out:Aging_spice.Circuit.node ->
  unit
(** Adds a full complementary stage computing the NOR/NAND-style complement
    of the pull-down condition onto [out].  [p_boost] (default 1.0) widens
    the pull-up network beyond the standard 2x nMOS width — the "high-beta"
    variants that tolerate NBTI-induced pull-up weakening.
    @raise Invalid_argument if [drive < 1], [p_boost <= 0] or the
    expression is empty. *)

val transmission_gate :
  Aging_spice.Circuit.t ->
  drive:int ->
  a:Aging_spice.Circuit.node ->
  b:Aging_spice.Circuit.node ->
  n_gate:Aging_spice.Circuit.node ->
  p_gate:Aging_spice.Circuit.node ->
  unit
(** Parallel nMOS/pMOS pass gate between [a] and [b]; conducting when
    [n_gate] is high (and [p_gate], its complement, low). *)

val inverter :
  ?p_boost:float ->
  Aging_spice.Circuit.t ->
  drive:int ->
  input:Aging_spice.Circuit.node ->
  out:Aging_spice.Circuit.node ->
  unit
(** Convenience: [stage] with a single-transistor pull-down. *)

val total_width : Aging_spice.Circuit.t -> float
(** Sum of all transistor widths [m]; input to the area model. *)
