module Circuit = Aging_spice.Circuit

(* Symbolic pull-down conduction expression over input pin names.  Both the
   transistor network and the boolean function of single-stage cells derive
   from it, so the two can never disagree. *)
type sym = V of string | And of sym list | Or of sym list

let rec conducts env = function
  | V pin -> env pin
  | And es -> List.for_all (conducts env) es
  | Or es -> List.exists (conducts env) es

let rec to_pull node_of = function
  | V pin -> Pull.T (node_of pin)
  | And es -> Pull.S (List.map (to_pull node_of) es)
  | Or es -> Pull.P (List.map (to_pull node_of) es)

let pins_env inputs values pin =
  match List.assoc_opt pin (List.combine inputs values) with
  | Some v -> v
  | None -> invalid_arg ("Catalog: unknown pin " ^ pin)

let high_beta = 1.6
(* Pull-up boost of the "H" (high-beta) variants: tolerant to NBTI. *)

let name_of ?(p_boost = 1.0) base drive =
  Printf.sprintf "%s_X%d%s" base drive (if p_boost > 1.0 then "H" else "")

(* Single complementary stage: Y = not (pdn conducts). *)
let inverting ?p_boost ~base ~drive ~inputs ~pdn () =
  let c = Circuit.create () in
  let in_nodes = List.map (fun p -> (p, Circuit.fresh_node ~name:p c)) inputs in
  let y = Circuit.fresh_node ~name:"Y" c in
  let node_of p = List.assoc p in_nodes in
  Pull.stage ?p_boost c ~drive ~pdn:(to_pull node_of pdn) ~out:y;
  let logic values = [ not (conducts (pins_env inputs values) pdn) ] in
  Cell.make ~name:(name_of ?p_boost base drive) ~base ~drive ~inputs
    ~outputs:[ "Y" ] ~logic ~kind:Cell.Combinational
    ~built:{ circuit = c; input_nodes = in_nodes; output_nodes = [ ("Y", y) ] }

(* Inverting stage followed by an output inverter: Y = pdn conducts. *)
let two_stage ?p_boost ~base ~drive ~inputs ~pdn () =
  let c = Circuit.create () in
  let in_nodes = List.map (fun p -> (p, Circuit.fresh_node ~name:p c)) inputs in
  let w = Circuit.fresh_node c in
  let y = Circuit.fresh_node ~name:"Y" c in
  let node_of p = List.assoc p in_nodes in
  Pull.stage ?p_boost c ~drive ~pdn:(to_pull node_of pdn) ~out:w;
  Pull.inverter ?p_boost c ~drive ~input:w ~out:y;
  let logic values = [ conducts (pins_env inputs values) pdn ] in
  Cell.make ~name:(name_of ?p_boost base drive) ~base ~drive ~inputs
    ~outputs:[ "Y" ] ~logic ~kind:Cell.Combinational
    ~built:{ circuit = c; input_nodes = in_nodes; output_nodes = [ ("Y", y) ] }

let buffer ~drive =
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"A" c in
  let w = Circuit.fresh_node c in
  let y = Circuit.fresh_node ~name:"Y" c in
  let first = max 1 (drive / 2) in
  Pull.inverter c ~drive:first ~input:a ~out:w;
  Pull.inverter c ~drive ~input:w ~out:y;
  Cell.make ~name:(name_of "BUF" drive) ~base:"BUF" ~drive ~inputs:[ "A" ]
    ~outputs:[ "Y" ]
    ~logic:(fun values -> values)
    ~kind:Cell.Combinational
    ~built:
      { circuit = c; input_nodes = [ ("A", a) ]; output_nodes = [ ("Y", y) ] }

(* XOR2 / XNOR2: two input inverters plus one complementary stage whose
   pull-down network mixes external and internal signals. *)
let xor_like ~base ~drive ~xnor =
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"A" c in
  let b = Circuit.fresh_node ~name:"B" c in
  let an = Circuit.fresh_node c in
  let bn = Circuit.fresh_node c in
  let y = Circuit.fresh_node ~name:"Y" c in
  Pull.inverter c ~drive ~input:a ~out:an;
  Pull.inverter c ~drive ~input:b ~out:bn;
  let pdn =
    if xnor then
      (* conducts when A xor B -> Y = XNOR *)
      Pull.P [ Pull.S [ Pull.T a; Pull.T bn ]; Pull.S [ Pull.T an; Pull.T b ] ]
    else
      (* conducts when A = B -> Y = XOR *)
      Pull.P [ Pull.S [ Pull.T a; Pull.T b ]; Pull.S [ Pull.T an; Pull.T bn ] ]
  in
  Pull.stage c ~drive ~pdn ~out:y;
  let logic = function
    | [ va; vb ] -> [ (if xnor then va = vb else va <> vb) ]
    | _ -> invalid_arg (base ^ ": arity")
  in
  Cell.make ~name:(name_of base drive) ~base ~drive ~inputs:[ "A"; "B" ]
    ~outputs:[ "Y" ] ~logic ~kind:Cell.Combinational
    ~built:
      {
        circuit = c;
        input_nodes = [ ("A", a); ("B", b) ];
        output_nodes = [ ("Y", y) ];
      }

(* MUX2: Y = S ? B : A, built as input inverter + AOI22-style stage +
   output inverter (three stages, as in static CMOS libraries). *)
let mux2 ~drive ~inverting_out =
  let base = if inverting_out then "MUXI2" else "MUX2" in
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"A" c in
  let b = Circuit.fresh_node ~name:"B" c in
  let s = Circuit.fresh_node ~name:"S" c in
  let sn = Circuit.fresh_node c in
  let y = Circuit.fresh_node ~name:"Y" c in
  Pull.inverter c ~drive ~input:s ~out:sn;
  let pdn =
    Pull.P [ Pull.S [ Pull.T a; Pull.T sn ]; Pull.S [ Pull.T b; Pull.T s ] ]
  in
  if inverting_out then Pull.stage c ~drive ~pdn ~out:y
  else begin
    let w = Circuit.fresh_node c in
    Pull.stage c ~drive ~pdn ~out:w;
    Pull.inverter c ~drive ~input:w ~out:y
  end;
  let logic = function
    | [ va; vb; vs ] ->
      let selected = if vs then vb else va in
      [ (if inverting_out then not selected else selected) ]
    | _ -> invalid_arg (base ^ ": arity")
  in
  Cell.make ~name:(name_of base drive) ~base ~drive ~inputs:[ "A"; "B"; "S" ]
    ~outputs:[ "Y" ] ~logic ~kind:Cell.Combinational
    ~built:
      {
        circuit = c;
        input_nodes = [ ("A", a); ("B", b); ("S", s) ];
        output_nodes = [ ("Y", y) ];
      }

(* Mirror full adder: CO and S through the classic shared-majority
   structure; both outputs are buffered by inverters. *)
let full_adder ~drive =
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"A" c in
  let b = Circuit.fresh_node ~name:"B" c in
  let ci = Circuit.fresh_node ~name:"CI" c in
  let nco = Circuit.fresh_node c in
  let nsum = Circuit.fresh_node c in
  let co = Circuit.fresh_node ~name:"CO" c in
  let sum = Circuit.fresh_node ~name:"S" c in
  Pull.stage c ~drive ~out:nco
    ~pdn:
      (Pull.P
         [
           Pull.S [ Pull.T a; Pull.T b ];
           Pull.S [ Pull.P [ Pull.T a; Pull.T b ]; Pull.T ci ];
         ]);
  Pull.stage c ~drive ~out:nsum
    ~pdn:
      (Pull.P
         [
           Pull.S [ Pull.T a; Pull.T b; Pull.T ci ];
           Pull.S [ Pull.P [ Pull.T a; Pull.T b; Pull.T ci ]; Pull.T nco ];
         ]);
  Pull.inverter c ~drive ~input:nco ~out:co;
  Pull.inverter c ~drive ~input:nsum ~out:sum;
  let logic = function
    | [ va; vb; vc ] ->
      let t = (if va then 1 else 0) + (if vb then 1 else 0) + (if vc then 1 else 0) in
      [ t >= 2; t land 1 = 1 ]
    | _ -> invalid_arg "FA: arity"
  in
  Cell.make ~name:(name_of "FA" drive) ~base:"FA" ~drive
    ~inputs:[ "A"; "B"; "CI" ] ~outputs:[ "CO"; "S" ] ~logic
    ~kind:Cell.Combinational
    ~built:
      {
        circuit = c;
        input_nodes = [ ("A", a); ("B", b); ("CI", ci) ];
        output_nodes = [ ("CO", co); ("S", sum) ];
      }

let half_adder ~drive =
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"A" c in
  let b = Circuit.fresh_node ~name:"B" c in
  let an = Circuit.fresh_node c in
  let bn = Circuit.fresh_node c in
  let nand_ab = Circuit.fresh_node c in
  let co = Circuit.fresh_node ~name:"CO" c in
  let sum = Circuit.fresh_node ~name:"S" c in
  Pull.inverter c ~drive ~input:a ~out:an;
  Pull.inverter c ~drive ~input:b ~out:bn;
  Pull.stage c ~drive ~pdn:(Pull.S [ Pull.T a; Pull.T b ]) ~out:nand_ab;
  Pull.inverter c ~drive ~input:nand_ab ~out:co;
  Pull.stage c ~drive ~out:sum
    ~pdn:(Pull.P [ Pull.S [ Pull.T a; Pull.T b ]; Pull.S [ Pull.T an; Pull.T bn ] ]);
  let logic = function
    | [ va; vb ] -> [ va && vb; va <> vb ]
    | _ -> invalid_arg "HA: arity"
  in
  Cell.make ~name:(name_of "HA" drive) ~base:"HA" ~drive ~inputs:[ "A"; "B" ]
    ~outputs:[ "CO"; "S" ] ~logic ~kind:Cell.Combinational
    ~built:
      {
        circuit = c;
        input_nodes = [ ("A", a); ("B", b) ];
        output_nodes = [ ("CO", co); ("S", sum) ];
      }

(* Master-slave transmission-gate D flip-flop with clocked feedback
   keepers (no ratioed contention). *)
let dff ~drive =
  let c = Circuit.create () in
  let d = Circuit.fresh_node ~name:"D" c in
  let ck = Circuit.fresh_node ~name:"CK" c in
  let ckn = Circuit.fresh_node c in
  let ckb = Circuit.fresh_node c in
  let q = Circuit.fresh_node ~name:"Q" c in
  Pull.inverter c ~drive:1 ~input:ck ~out:ckn;
  Pull.inverter c ~drive:1 ~input:ckn ~out:ckb;
  (* Master latch: transparent while CK is low. *)
  let m_in = Circuit.fresh_node c in
  let m_out = Circuit.fresh_node c in
  let m_fb = Circuit.fresh_node c in
  Pull.transmission_gate c ~drive:1 ~a:d ~b:m_in ~n_gate:ckn ~p_gate:ckb;
  Pull.inverter c ~drive:1 ~input:m_in ~out:m_out;
  Pull.inverter c ~drive:1 ~input:m_out ~out:m_fb;
  Pull.transmission_gate c ~drive:1 ~a:m_fb ~b:m_in ~n_gate:ckb ~p_gate:ckn;
  (* Slave latch: transparent while CK is high.  The storage node is named
     so characterization can seed the pre-edge state. *)
  let s_in = Circuit.fresh_node ~name:"SLAVE" c in
  let s_fb = Circuit.fresh_node c in
  Pull.transmission_gate c ~drive:1 ~a:m_out ~b:s_in ~n_gate:ckb ~p_gate:ckn;
  Pull.inverter c ~drive ~input:s_in ~out:q;
  Pull.inverter c ~drive:1 ~input:q ~out:s_fb;
  Pull.transmission_gate c ~drive:1 ~a:s_fb ~b:s_in ~n_gate:ckn ~p_gate:ckb;
  let logic = function
    | [ vd; _ck ] -> [ vd ]
    | _ -> invalid_arg "DFF: arity"
  in
  Cell.make ~name:(name_of "DFF" drive) ~base:"DFF" ~drive
    ~inputs:[ "D"; "CK" ] ~outputs:[ "Q" ] ~logic ~kind:Cell.Flipflop
    ~built:
      {
        circuit = c;
        input_nodes = [ ("D", d); ("CK", ck) ];
        output_nodes = [ ("Q", q) ];
      }

(* Tie cells: constant drivers (an always-on transistor to the rail). *)
let tie ~high =
  let base = if high then "TIEHI" else "TIELO" in
  let c = Circuit.create () in
  let y = Circuit.fresh_node ~name:"Y" c in
  if high then
    Circuit.add_mos c
      ~dev:(Aging_physics.Device.pmos ~w:(2. *. Aging_physics.Device.w_min))
      ~g:Circuit.gnd ~d:y ~s:Circuit.vdd
  else
    Circuit.add_mos c
      ~dev:(Aging_physics.Device.nmos ~w:Aging_physics.Device.w_min)
      ~g:Circuit.vdd ~d:y ~s:Circuit.gnd;
  Cell.make ~name:(name_of base 1) ~base ~drive:1 ~inputs:[] ~outputs:[ "Y" ]
    ~logic:(fun _ -> [ high ])
    ~kind:Cell.Combinational
    ~built:{ circuit = c; input_nodes = []; output_nodes = [ ("Y", y) ] }

let abc n = List.filteri (fun i _ -> i < n) [ "A1"; "A2"; "A3"; "A4" ]

let nand_family ?p_boost n drives =
  List.map
    (fun drive ->
      inverting ?p_boost ~base:(Printf.sprintf "NAND%d" n) ~drive
        ~inputs:(abc n)
        ~pdn:(And (List.map (fun p -> V p) (abc n)))
        ())
    drives

let nor_family ?p_boost n drives =
  List.map
    (fun drive ->
      inverting ?p_boost ~base:(Printf.sprintf "NOR%d" n) ~drive
        ~inputs:(abc n)
        ~pdn:(Or (List.map (fun p -> V p) (abc n)))
        ())
    drives

let and_family n drives =
  List.map
    (fun drive ->
      two_stage ~base:(Printf.sprintf "AND%d" n) ~drive ~inputs:(abc n)
        ~pdn:(And (List.map (fun p -> V p) (abc n)))
        ())
    drives

let or_family n drives =
  List.map
    (fun drive ->
      two_stage ~base:(Printf.sprintf "OR%d" n) ~drive ~inputs:(abc n)
        ~pdn:(Or (List.map (fun p -> V p) (abc n)))
        ())
    drives

let inv_family ?p_boost drives =
  List.map
    (fun drive -> inverting ?p_boost ~base:"INV" ~drive ~inputs:[ "A" ] ~pdn:(V "A") ())
    drives

let build_all () =
  List.concat
    [
      inv_family [ 1; 2; 4; 8 ];
      inv_family ~p_boost:high_beta [ 1; 2; 4 ];
      List.map (fun drive -> buffer ~drive) [ 1; 2; 4; 8 ];
      nand_family 2 [ 1; 2; 4 ];
      nand_family ~p_boost:high_beta 2 [ 1; 2; 4 ];
      nand_family 3 [ 1; 2 ];
      nand_family ~p_boost:high_beta 3 [ 1 ];
      nand_family 4 [ 1; 2 ];
      nor_family 2 [ 1; 2; 4 ];
      nor_family ~p_boost:high_beta 2 [ 1; 2; 4 ];
      nor_family 3 [ 1; 2 ];
      nor_family ~p_boost:high_beta 3 [ 1 ];
      nor_family 4 [ 1 ];
      and_family 2 [ 1; 2 ];
      and_family 3 [ 1; 2 ];
      and_family 4 [ 1 ];
      or_family 2 [ 1; 2 ];
      or_family 3 [ 1; 2 ];
      or_family 4 [ 1 ];
      List.concat_map
        (fun (p_boost, drives) ->
          List.map
            (fun drive ->
              inverting ?p_boost ~base:"AOI21" ~drive
                ~inputs:[ "A1"; "A2"; "B" ]
                ~pdn:(Or [ And [ V "A1"; V "A2" ]; V "B" ])
                ())
            drives)
        [ (None, [ 1; 2 ]); (Some high_beta, [ 1 ]) ];
      [
        inverting ~base:"AOI22" ~drive:1 ~inputs:[ "A1"; "A2"; "B1"; "B2" ]
          ~pdn:(Or [ And [ V "A1"; V "A2" ]; And [ V "B1"; V "B2" ] ])
          ();
      ];
      List.concat_map
        (fun (p_boost, drives) ->
          List.map
            (fun drive ->
              inverting ?p_boost ~base:"OAI21" ~drive
                ~inputs:[ "A1"; "A2"; "B" ]
                ~pdn:(And [ Or [ V "A1"; V "A2" ]; V "B" ])
                ())
            drives)
        [ (None, [ 1; 2 ]); (Some high_beta, [ 1 ]) ];
      [
        inverting ~base:"OAI22" ~drive:1 ~inputs:[ "A1"; "A2"; "B1"; "B2" ]
          ~pdn:(And [ Or [ V "A1"; V "A2" ]; Or [ V "B1"; V "B2" ] ])
          ();
        inverting ~base:"AOI211" ~drive:1 ~inputs:[ "A1"; "A2"; "B"; "C" ]
          ~pdn:(Or [ And [ V "A1"; V "A2" ]; V "B"; V "C" ])
          ();
        inverting ~base:"OAI211" ~drive:1 ~inputs:[ "A1"; "A2"; "B"; "C" ]
          ~pdn:(And [ Or [ V "A1"; V "A2" ]; V "B"; V "C" ])
          ();
      ];
      List.map (fun drive -> xor_like ~base:"XOR2" ~drive ~xnor:false) [ 1; 2 ];
      [ xor_like ~base:"XNOR2" ~drive:1 ~xnor:true ];
      List.map (fun drive -> mux2 ~drive ~inverting_out:false) [ 1; 2 ];
      [ mux2 ~drive:1 ~inverting_out:true ];
      [ full_adder ~drive:1; half_adder ~drive:1 ];
      [ tie ~high:false; tie ~high:true ];
      List.map (fun drive -> dff ~drive) [ 1; 2 ];
    ]

let table = lazy (build_all ())

let all () = Lazy.force table

let find name = List.find_opt (fun (c : Cell.t) -> c.Cell.name = name) (all ())

let find_exn name =
  match find name with Some c -> c | None -> raise Not_found

let variants base =
  List.filter (fun (c : Cell.t) -> c.Cell.base = base) (all ())
  |> List.sort (fun (a : Cell.t) b -> compare a.Cell.drive b.Cell.drive)

let families () =
  List.fold_left
    (fun acc (c : Cell.t) ->
      if List.mem c.Cell.base acc then acc else acc @ [ c.Cell.base ])
    [] (all ())

let combinational () =
  List.filter (fun (c : Cell.t) -> c.Cell.kind = Cell.Combinational) (all ())
