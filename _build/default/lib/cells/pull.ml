module Device = Aging_physics.Device
module Circuit = Aging_spice.Circuit

type expr = T of Circuit.node | S of expr list | P of expr list

let rec check = function
  | T _ -> ()
  | S [] | P [] -> invalid_arg "Pull.stage: empty composition"
  | S es | P es -> List.iter check es

(* Emit a network of [polarity] transistors realizing [expr] between
   [top] and [bottom]; series stacks deepen the width multiplier. *)
let rec emit circuit ~mk_dev ~stack expr ~top ~bottom =
  match expr with
  | T gate_node ->
    Circuit.add_mos circuit ~dev:(mk_dev ~stack) ~g:gate_node ~d:top ~s:bottom
  | P branches ->
    List.iter (fun e -> emit circuit ~mk_dev ~stack e ~top ~bottom) branches
  | S elements ->
    let n = List.length elements in
    let stack = stack * n in
    let rec chain prev = function
      | [] -> ()
      | [ last ] -> emit circuit ~mk_dev ~stack last ~top:prev ~bottom
      | e :: rest ->
        let mid = Circuit.fresh_node circuit in
        emit circuit ~mk_dev ~stack e ~top:prev ~bottom:mid;
        chain mid rest
    in
    chain top elements

(* Series/parallel dual for the pull-up network. *)
let rec dual = function
  | T n -> T n
  | S es -> P (List.map dual es)
  | P es -> S (List.map dual es)

let nmos_width ~drive ~stack =
  Device.w_min *. float_of_int drive *. float_of_int stack

let pmos_width ~drive ~stack = 2. *. nmos_width ~drive ~stack

let stage ?(p_boost = 1.0) circuit ~drive ~pdn ~out =
  if drive < 1 then invalid_arg "Pull.stage: drive < 1";
  if p_boost <= 0. then invalid_arg "Pull.stage: p_boost <= 0";
  check pdn;
  let mk_n ~stack = Device.nmos ~w:(nmos_width ~drive ~stack) in
  let mk_p ~stack = Device.pmos ~w:(p_boost *. pmos_width ~drive ~stack) in
  emit circuit ~mk_dev:mk_n ~stack:1 pdn ~top:out ~bottom:Circuit.gnd;
  emit circuit ~mk_dev:mk_p ~stack:1 (dual pdn) ~top:out ~bottom:Circuit.vdd

let transmission_gate circuit ~drive ~a ~b ~n_gate ~p_gate =
  if drive < 1 then invalid_arg "Pull.transmission_gate: drive < 1";
  let wn = nmos_width ~drive ~stack:1 in
  Circuit.add_mos circuit ~dev:(Device.nmos ~w:wn) ~g:n_gate ~d:a ~s:b;
  Circuit.add_mos circuit ~dev:(Device.pmos ~w:(2. *. wn)) ~g:p_gate ~d:a ~s:b

let inverter ?p_boost circuit ~drive ~input ~out =
  stage ?p_boost circuit ~drive ~pdn:(T input) ~out

let total_width circuit =
  List.fold_left
    (fun acc (m : Circuit.mos) -> acc +. m.Circuit.dev.Device.w)
    0. (Circuit.mosfets circuit)
