type mode = Full | Vth_only
type t = { delta_vth : float; mu_factor : float }

let electron_charge = 1.602176634e-19
let mu_alpha = 3.3e-18

let of_stress ?(mode = Full) ?(defect_scale = 1.0) (device : Device.params)
    stress =
  if defect_scale < 0. then
    invalid_arg "Degradation.of_stress: negative defect_scale";
  let n_it = defect_scale *. Bti.interface_traps device.Device.polarity stress in
  let n_ot = defect_scale *. Bti.oxide_traps device.Device.polarity stress in
  let delta_vth =
    electron_charge /. device.Device.cox_area *. (n_it +. n_ot)
  in
  let mu_factor =
    match mode with
    | Full -> 1. /. (1. +. (mu_alpha *. n_it))
    | Vth_only -> 1.
  in
  { delta_vth; mu_factor }

let apply ?mode ?defect_scale device stress =
  let d = of_stress ?mode ?defect_scale device stress in
  Device.with_aging ~delta_vth:d.delta_vth ~mu_factor:d.mu_factor device
