(** Transistor model parameters for a 45 nm-class high-k technology.

    Substitutes for the Predictive Technology Model cards the paper plugs
    into HSPICE.  The parameter set feeds the alpha-power-law MOSFET equations
    in {!Aging_spice.Mosfet}: only the quantities those equations need are
    modelled.  Values are chosen so that a minimum-size inverter driving a
    few fF switches in tens of picoseconds, matching the delay magnitudes the
    paper reports (Fig. 3). *)

type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  vth0 : float;        (** zero-bias threshold voltage magnitude [V] *)
  mu0 : float;         (** low-field carrier mobility [m^2/(V.s)] *)
  mu_factor : float;   (** aged mobility ratio mu/mu0, 1.0 when fresh *)
  delta_vth : float;   (** aging-induced threshold shift magnitude [V] *)
  beta : float;        (** drive constant: Id_sat = beta * (W/L) * Vov^alpha *)
  alpha_sat : float;   (** velocity-saturation exponent (alpha-power law) *)
  vdsat_frac : float;  (** V_dsat = vdsat_frac * Vov *)
  lambda_clm : float;  (** channel-length modulation [1/V] *)
  n_sub : float;       (** subthreshold slope factor *)
  i_sub0 : float;      (** subthreshold current prefactor [A] per (W/L) *)
  cox_area : float;    (** gate oxide capacitance per area [F/m^2] *)
  c_overlap : float;   (** gate-drain/source overlap capacitance per width [F/m] *)
  c_junction : float;  (** drain/source junction capacitance per width [F/m] *)
  w : float;           (** channel width [m] *)
  l : float;           (** channel length [m] *)
}

val vdd : float
(** Nominal supply voltage [V] of the technology (1.1 V). *)

val temperature : float
(** Nominal operating/stress temperature [K] (350 K, a hot-chip corner as in
    aging studies). *)

val l_min : float
(** Minimum channel length [m] (45 nm). *)

val w_min : float
(** Minimum channel width [m] (90 nm). *)

val nmos : w:float -> params
(** Fresh nMOS device of width [w] at minimum length. *)

val pmos : w:float -> params
(** Fresh pMOS device of width [w] at minimum length.  [vth0] and [beta] are
    magnitudes; the polarity field drives sign handling in the simulator. *)

val effective_vth : params -> float
(** [vth0 + delta_vth]: the aged threshold magnitude. *)

val with_aging : delta_vth:float -> mu_factor:float -> params -> params
(** Returns the device with aging degradations applied on top of its current
    state (shifts add, mobility factors multiply).
    @raise Invalid_argument if [mu_factor] is outside (0, 1] or [delta_vth]
    is negative. *)

val gate_capacitance : params -> float
(** Total gate capacitance [F]: area term plus both overlaps. *)

val drain_capacitance : params -> float
(** Drain junction + overlap capacitance [F]. *)
