type stress = { duty : float; years : float; temp_k : float; vstress : float }

let seconds_per_year = 365.25 *. 24. *. 3600.

let stress ?(years = 10.) ?(temp_k = Device.temperature)
    ?(vstress = Device.vdd) ~duty () =
  if duty < 0. || duty > 1. then invalid_arg "Bti.stress: duty outside [0,1]";
  if years < 0. then invalid_arg "Bti.stress: negative years";
  { duty; years; temp_k; vstress }

(* Recovery-limited AC factor: under 50 % duty the trap population settles at
   ~3/4 of the DC level, consistent with reaction-diffusion AC analyses. *)
let recovery_strength = 0.35

let duty_factor lambda =
  if lambda <= 0. then 0.
  else lambda /. (lambda +. (recovery_strength *. (1. -. lambda)))

(* Calibration (at T = 350 K, Vstress = Vdd, lambda = 1, t = 10 years):
   Delta N_IT ~ 1.06e16 /m^2 and Delta N_OT ~ 4.5e15 /m^2, which through
   Eq. 2 (q/Cox) yield Delta Vth ~ 70 mV for pMOS -- a typical worst-case
   NBTI budget for a 45 nm HP node. *)
let a_it = 4.06e14 (* prefactor of the t^{1/6} interface-trap law, [1/m^2] *)
let b_ot = 2.30e14 (* prefactor of the log-time oxide-trap law, [1/m^2] *)
let time_exponent = 1. /. 6.
let t0_ot = 1.0 (* onset time of oxide-trap capture [s] *)
let field_gamma = 3.0 (* field acceleration [1/V] *)
let ea_ev = 0.12 (* activation energy [eV] *)
let boltzmann_ev = 8.617e-5
let t_ref = 350.

let environment_factor s =
  let field = exp (field_gamma *. (s.vstress -. Device.vdd)) in
  let arrhenius =
    exp (ea_ev /. boltzmann_ev *. ((1. /. t_ref) -. (1. /. s.temp_k)))
  in
  field *. arrhenius

(* PBTI in high-k nMOS generates markedly fewer defects than NBTI in pMOS
   (Joshi et al. report a wide gap); the asymmetry is what makes pull-up
   stacks (NOR-class cells) age much faster than pull-down stacks. *)
let pbti_scale = 0.3

let polarity_scale = function Device.Pmos -> 1.0 | Device.Nmos -> pbti_scale

let interface_traps polarity s =
  let t = s.years *. seconds_per_year in
  if t <= 0. then 0.
  else
    a_it *. duty_factor s.duty *. environment_factor s
    *. (t ** time_exponent)
    *. polarity_scale polarity

let oxide_traps polarity s =
  let t = s.years *. seconds_per_year in
  if t <= 0. then 0.
  else
    b_ot *. duty_factor s.duty *. environment_factor s
    *. log (1. +. (t /. t0_ot))
    *. polarity_scale polarity
