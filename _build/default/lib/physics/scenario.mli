(** Aging stress scenarios and the corner grid of the complete library.

    A corner fixes the duty cycles of all pMOS transistors
    ([lambda_p]) and all nMOS transistors ([lambda_n]) of a cell, following
    the paper's simplifying assumption (Sec. 4.1, footnote 2).  The paper's
    grid steps both lambdas by 0.1 over [0, 1], yielding the 121
    degradation-aware libraries that are merged into the complete library. *)

type corner = {
  lambda_p : float;  (** duty cycle of the pMOS transistors, in [0, 1] *)
  lambda_n : float;  (** duty cycle of the nMOS transistors, in [0, 1] *)
}

val corner : lambda_p:float -> lambda_n:float -> corner
(** @raise Invalid_argument if a lambda is outside [0, 1]. *)

val fresh : corner
(** No aging: both lambdas 0. *)

val worst_case : corner
(** Static worst-case stress: both lambdas 1 (paper Sec. 4.2). *)

val balanced : corner
(** The balance case lambda = 0.5 targeted by duty-cycle-balancing
    techniques. *)

val grid : ?step:float -> unit -> corner list
(** [grid ()] is the 11x11 = 121 corner grid with [step] 0.1 (row-major:
    lambda_p outer, lambda_n inner).  @raise Invalid_argument if [step]
    does not evenly divide 1 (within 1e-9). *)

val snap : ?step:float -> corner -> corner
(** Rounds both lambdas to the nearest grid point (default step 0.1), as
    required when annotating a netlist with measured duty cycles for lookup
    in the complete library. *)

val suffix : corner -> string
(** Corner encoding used in indexed cell names, e.g. ["0.4_0.6"]
    (lambda_p first, as in the paper's [AND2_0.4_0.6]). *)

val of_suffix : string -> corner option
(** Inverse of {!suffix}; [None] on malformed input. *)

val equal : corner -> corner -> bool
(** Equality up to 1e-9 on both lambdas. *)

type t = {
  corner : corner;
  years : float;          (** lifetime, default 10 *)
  temp_k : float;         (** stress temperature [K] *)
  mode : Degradation.mode;
  defect_scale : float;   (** BTI-variability bound multiplier, default 1 *)
}
(** A full aging scenario: corner plus lifetime/temperature/analysis mode
    and an optional variability upper-bound factor (see
    {!Degradation.of_stress}). *)

val scenario :
  ?years:float -> ?temp_k:float -> ?mode:Degradation.mode ->
  ?defect_scale:float -> corner -> t

val stress_of : t -> lambda:float -> Bti.stress
(** The {!Bti.stress} a transistor with duty cycle [lambda] sees under
    scenario [t]. *)

val age_device : t -> Device.params -> Device.params
(** Ages a device according to the scenario, using [corner.lambda_p] for
    pMOS and [corner.lambda_n] for nMOS devices. *)
