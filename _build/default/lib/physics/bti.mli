(** Physics-based BTI defect generation (NBTI for pMOS, PBTI for nMOS).

    Substitutes for the Joshi et al. (IRPS'12) framework the paper uses: the
    long-term defect population is split into interface traps N_IT (broken
    Si-H bonds, reaction-diffusion kinetics, ~t^{1/6} growth) and oxide traps
    N_OT (charge capture in high-k vacancies, ~log(t) growth).  Both scale
    with the transistor duty cycle through an AC factor that models partial
    recovery during relaxation phases, and with stress voltage and
    temperature through field-acceleration and Arrhenius terms.

    NBTI in pMOS is stronger than PBTI in nMOS (paper Sec. 2, citing [6]);
    the ratio is exposed as {!pbti_scale}. *)

type stress = {
  duty : float;       (** duty cycle lambda in [0, 1]: fraction of time under stress *)
  years : float;      (** operating time [years], >= 0 *)
  temp_k : float;     (** stress temperature [K] *)
  vstress : float;    (** stress gate voltage magnitude [V] *)
}

val stress :
  ?years:float -> ?temp_k:float -> ?vstress:float -> duty:float -> unit ->
  stress
(** Builds a stress record with paper defaults: 10 years, 350 K, Vdd.
    @raise Invalid_argument if [duty] is outside [0, 1] or [years < 0]. *)

val duty_factor : float -> float
(** AC duty-cycle factor in [0, 1]: 0 at lambda = 0, 1 at lambda = 1,
    sub-linear in between (recovery during relaxation).  Monotone
    increasing. *)

val interface_traps : Device.polarity -> stress -> float
(** Generated interface-trap density Delta N_IT [1/m^2]. *)

val oxide_traps : Device.polarity -> stress -> float
(** Generated oxide-trap density Delta N_OT [1/m^2]. *)

val pbti_scale : float
(** Ratio of PBTI (nMOS) to NBTI (pMOS) defect generation, < 1. *)

val seconds_per_year : float
