type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  vth0 : float;
  mu0 : float;
  mu_factor : float;
  delta_vth : float;
  beta : float;
  alpha_sat : float;
  vdsat_frac : float;
  lambda_clm : float;
  n_sub : float;
  i_sub0 : float;
  cox_area : float;
  c_overlap : float;
  c_junction : float;
  w : float;
  l : float;
}

let vdd = 1.1
let temperature = 350.
let l_min = 45e-9
let w_min = 90e-9

(* Drive constants are calibrated so that a minimum nMOS (W/L = 2) carries
   ~90 uA of saturation current at Vgs = Vdd (roughly 1 mA/um, typical for a
   45 nm high-performance node), with the pMOS at ~half the per-width drive. *)
let beta_n = 7.1e-5
let beta_p = 3.8e-5

let nmos ~w =
  {
    polarity = Nmos;
    vth0 = 0.40;
    mu0 = 0.040;
    mu_factor = 1.0;
    delta_vth = 0.0;
    beta = beta_n;
    alpha_sat = 1.3;
    vdsat_frac = 0.9;
    lambda_clm = 0.06;
    n_sub = 1.4;
    i_sub0 = 4e-9;
    cox_area = 3.45e-2;
    c_overlap = 2.4e-10;
    c_junction = 4.5e-10;
    w;
    l = l_min;
  }

let pmos ~w =
  {
    polarity = Pmos;
    vth0 = 0.42;
    mu0 = 0.020;
    mu_factor = 1.0;
    delta_vth = 0.0;
    beta = beta_p;
    alpha_sat = 1.35;
    vdsat_frac = 0.9;
    lambda_clm = 0.06;
    n_sub = 1.4;
    i_sub0 = 2e-9;
    cox_area = 3.45e-2;
    c_overlap = 2.4e-10;
    c_junction = 4.8e-10;
    w;
    l = l_min;
  }

let effective_vth p = p.vth0 +. p.delta_vth

let with_aging ~delta_vth ~mu_factor p =
  if delta_vth < 0. then invalid_arg "Device.with_aging: negative delta_vth";
  if mu_factor <= 0. || mu_factor > 1. then
    invalid_arg "Device.with_aging: mu_factor outside (0,1]";
  {
    p with
    delta_vth = p.delta_vth +. delta_vth;
    mu_factor = p.mu_factor *. mu_factor;
  }

let gate_capacitance p =
  (p.cox_area *. p.w *. p.l) +. (2. *. p.c_overlap *. p.w)

let drain_capacitance p = (p.c_junction +. p.c_overlap) *. p.w
