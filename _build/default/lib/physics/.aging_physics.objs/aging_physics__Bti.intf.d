lib/physics/bti.mli: Device
