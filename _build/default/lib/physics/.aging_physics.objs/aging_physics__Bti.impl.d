lib/physics/bti.ml: Device
