lib/physics/degradation.ml: Bti Device
