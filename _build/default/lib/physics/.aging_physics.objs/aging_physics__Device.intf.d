lib/physics/device.mli:
