lib/physics/scenario.mli: Bti Degradation Device
