lib/physics/degradation.mli: Bti Device
