lib/physics/scenario.ml: Bti Degradation Device Float Fun List Printf String
