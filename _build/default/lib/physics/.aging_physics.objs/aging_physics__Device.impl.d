lib/physics/device.ml:
