type corner = { lambda_p : float; lambda_n : float }

let check_lambda name x =
  if x < 0. || x > 1. then
    invalid_arg (Printf.sprintf "Scenario.corner: %s outside [0,1]" name)

let corner ~lambda_p ~lambda_n =
  check_lambda "lambda_p" lambda_p;
  check_lambda "lambda_n" lambda_n;
  { lambda_p; lambda_n }

let fresh = { lambda_p = 0.; lambda_n = 0. }
let worst_case = { lambda_p = 1.; lambda_n = 1. }
let balanced = { lambda_p = 0.5; lambda_n = 0.5 }

let grid ?(step = 0.1) () =
  let n = int_of_float (Float.round (1. /. step)) in
  if Float.abs ((float_of_int n *. step) -. 1.) > 1e-9 then
    invalid_arg "Scenario.grid: step does not divide 1";
  List.concat_map
    (fun i ->
      let lp = float_of_int i *. step in
      List.map
        (fun j -> { lambda_p = lp; lambda_n = float_of_int j *. step })
        (List.init (n + 1) Fun.id))
    (List.init (n + 1) Fun.id)

let snap ?(step = 0.1) c =
  let snap1 x =
    let v = Float.round (x /. step) *. step in
    Float.max 0. (Float.min 1. v)
  in
  { lambda_p = snap1 c.lambda_p; lambda_n = snap1 c.lambda_n }

let suffix c = Printf.sprintf "%.1f_%.1f" c.lambda_p c.lambda_n

let of_suffix s =
  match String.split_on_char '_' s with
  | [ p; n ] -> begin
    match (float_of_string_opt p, float_of_string_opt n) with
    | Some lp, Some ln
      when lp >= 0. && lp <= 1. && ln >= 0. && ln <= 1. ->
      Some { lambda_p = lp; lambda_n = ln }
    | Some _, Some _ | None, _ | Some _, None -> None
  end
  | _ -> None

let equal a b =
  Float.abs (a.lambda_p -. b.lambda_p) < 1e-9
  && Float.abs (a.lambda_n -. b.lambda_n) < 1e-9

type t = {
  corner : corner;
  years : float;
  temp_k : float;
  mode : Degradation.mode;
  defect_scale : float;
}

let scenario ?(years = 10.) ?(temp_k = Device.temperature)
    ?(mode = Degradation.Full) ?(defect_scale = 1.0) corner =
  { corner; years; temp_k; mode; defect_scale }

let stress_of t ~lambda =
  Bti.stress ~years:t.years ~temp_k:t.temp_k ~duty:lambda ()

let age_device t (device : Device.params) =
  let lambda =
    match device.Device.polarity with
    | Device.Pmos -> t.corner.lambda_p
    | Device.Nmos -> t.corner.lambda_n
  in
  Degradation.apply ~mode:t.mode ~defect_scale:t.defect_scale device
    (stress_of t ~lambda)
