(** Mapping defect populations to electrical parameter degradation.

    Implements the paper's Eqs. 2 and 3:
    {ul
    {- Delta Vth = q / Cox * (Delta N_IT + Delta N_OT)}
    {- mu = mu0 / (1 + alpha * Delta N_IT)}}

    The [Vth_only] mode zeroes the mobility term; it models the
    state-of-the-art analyses the paper compares against (refs [9, 11, 12,
    13]), which is the ingredient of the Fig. 5(a) experiment. *)

type mode =
  | Full       (** both Vth and mu degrade (the paper's approach) *)
  | Vth_only   (** mobility degradation ignored (state of the art) *)

type t = {
  delta_vth : float;   (** threshold-voltage shift magnitude [V] *)
  mu_factor : float;   (** mobility ratio mu/mu0 in (0, 1] *)
}

val electron_charge : float
(** Elementary charge [C]. *)

val of_stress :
  ?mode:mode -> ?defect_scale:float -> Device.params -> Bti.stress -> t
(** Degradation of [device] under [stress]; [mode] defaults to [Full].
    Uses the device's own polarity (NBTI for pMOS, PBTI for nMOS) and gate
    capacitance per area.  [defect_scale] (default 1.0) multiplies the
    generated defect densities before Eqs. 2-3 — the hook for BTI
    variability upper bounds (the paper suggests taking e.g. the 6-sigma
    point of the Delta-Vth distribution; a mean-plus-k-sigma bound is a
    defect-count multiplier under the charge-sheet model).
    @raise Invalid_argument if [defect_scale < 0]. *)

val apply :
  ?mode:mode -> ?defect_scale:float -> Device.params -> Bti.stress ->
  Device.params
(** [apply device stress] returns the aged device:
    [Device.with_aging ~delta_vth ~mu_factor device]. *)

val mu_alpha : float
(** The alpha coefficient of Eq. 3 [m^2]; calibrated so that worst-case
    10-year mobility loss is a few percent, which reproduces the ~19 %
    guardband under-estimation of Fig. 5(a) when ignored. *)
