(** Workload activity profiling and netlist aging annotation.

    The dynamic-aging-stress front end of the paper's flow (Sec. 4.2): a
    gate-level simulation of the running workload yields per-net signal
    probabilities, from which per-transistor duty cycles follow — a pMOS
    transistor is under (NBTI) stress while its gate input is low, an nMOS
    (PBTI) while it is high.  Per cell, the pin-averaged (lambda_p,
    lambda_n) pair is snapped to the library grid and encoded into the
    instance's cell name so a complete degradation-aware library can time
    the annotated netlist directly. *)

type profile = {
  p_high : float array;   (** per-net probability of logic 1 *)
  toggles : int array;    (** per-net transition count over the run *)
  cycles : int;
}

val profile :
  Aging_netlist.Netlist.t -> cycles:int ->
  stimulus:(int -> (string * bool) list) -> profile
(** Zero-delay cycle-accurate profiling over the workload.
    @raise Invalid_argument if [cycles <= 0]. *)

val instance_corner :
  profile -> Aging_netlist.Netlist.instance -> Aging_physics.Scenario.corner
(** Pin-averaged duty cycles of one instance:
    [lambda_p = avg over input pins of P(pin = 0)],
    [lambda_n = avg over input pins of P(pin = 1)] (not snapped). *)

val annotate :
  ?step:float -> Aging_netlist.Netlist.t -> profile -> Aging_netlist.Netlist.t
(** Renames every combinational instance to
    ["<cell>\@<lambda_p>_<lambda_n>"] with corners snapped to the grid
    (default step 0.1), mirroring the paper's [AND2_0.4_0.6] scheme.
    Flip-flops are annotated too (their D/CK activity drives their aging). *)

val corners_used :
  Aging_netlist.Netlist.t -> Aging_physics.Scenario.corner list
(** Distinct corners appearing in an annotated netlist (sorted); used to
    characterize only the needed slices of the complete library. *)
