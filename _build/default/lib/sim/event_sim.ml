module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist
module Cell = Aging_cells.Cell
module Timing = Aging_sta.Timing

(* ----------------------- tiny binary min-heap ----------------------- *)

type 'a heap = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let heap_create dummy =
  {
    keys = Array.make 256 0.;
    seqs = Array.make 256 0;
    data = Array.make 256 dummy;
    size = 0;
    next_seq = 0;
    dummy;
  }

let heap_less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.seqs.(i) < h.seqs.(j))

let heap_swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let heap_push h key payload =
  if h.size = Array.length h.keys then begin
    let n = 2 * h.size in
    let keys = Array.make n 0. and seqs = Array.make n 0 in
    let data = Array.make n h.dummy in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.seqs 0 seqs 0 h.size;
    Array.blit h.data 0 data 0 h.size;
    h.keys <- keys;
    h.seqs <- seqs;
    h.data <- data
  end;
  let i = h.size in
  h.keys.(i) <- key;
  h.seqs.(i) <- h.next_seq;
  h.next_seq <- h.next_seq + 1;
  h.data.(i) <- payload;
  h.size <- h.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if heap_less h i parent then begin
        heap_swap h i parent;
        up parent
      end
    end
  in
  up i

let heap_peek_key h = if h.size = 0 then None else Some h.keys.(0)

let heap_pop h =
  if h.size = 0 then invalid_arg "heap_pop: empty";
  let key = h.keys.(0) and payload = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    heap_swap h 0 h.size;
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.size && heap_less h l !smallest then smallest := l;
      if r < h.size && heap_less h r !smallest then smallest := r;
      if !smallest <> i then begin
        heap_swap h i !smallest;
        down !smallest
      end
    in
    down 0
  end;
  (key, payload)

(* ------------------------------ model ------------------------------ *)

type gate = {
  logic : bool list -> bool list;
  in_nets : int array;
  out_nets : int array;
  (* delay.(pin).(out).(dir): propagation delay when input [pin] triggers a
     transition of output [out]; dir 0 = rise, 1 = fall. *)
  delay : float array array array;
}

type ff = {
  d_net : int;
  q_net : int;
  setup : float;
  clkq_rise : float;
  clkq_fall : float;
}

type t = {
  netlist : Netlist.t;
  analysis : Timing.analysis;
  gates : gate array;
  ffs : ff array;
  fanout_gates : int list array; (* net -> gate indices to re-evaluate *)
}

let dir_rise = 0
let dir_fall = 1

let prepare ?config ~library netlist =
  let analysis = Timing.analyze ?config ~library netlist in
  let comb = Array.of_list (Netlist.combinational_order netlist) in
  let resolve inst =
    match Library.find library inst.Netlist.cell_name with
    | Some e -> e
    | None -> (
      match Library.find library (Netlist.base_cell_name inst.Netlist.cell_name) with
      | Some e -> e
      | None -> failwith ("Event_sim: cell not in library: " ^ inst.Netlist.cell_name))
  in
  let gate_of inst =
    let entry = resolve inst in
    let cell = Netlist.catalog_cell inst in
    let in_nets = Array.of_list (List.map snd inst.Netlist.inputs) in
    let out_nets = Array.of_list (List.map snd inst.Netlist.outputs) in
    let pins = Array.of_list (List.map fst inst.Netlist.inputs) in
    let out_pins = Array.of_list (List.map fst inst.Netlist.outputs) in
    let delay =
      Array.init (Array.length pins) (fun pi ->
          Array.init (Array.length out_pins) (fun oi ->
              let in_net = in_nets.(pi) in
              let slew =
                Float.max
                  (Timing.slew_at analysis in_net Library.Rise)
                  (Timing.slew_at analysis in_net Library.Fall)
              in
              let load = Timing.load_on analysis out_nets.(oi) in
              match
                Library.arc_of entry ~from_pin:pins.(pi) ~to_pin:out_pins.(oi)
              with
              | Some arc ->
                [|
                  Library.delay_of arc ~dir:Library.Rise ~slew ~load;
                  Library.delay_of arc ~dir:Library.Fall ~slew ~load;
                |]
              | None -> [| nan; nan |]))
    in
    (* Fill non-sensitizable (pin,out) pairs with the worst delay of the
       output so logic-only sensitizations still propagate. *)
    let n_outs = Array.length out_pins in
    for oi = 0 to n_outs - 1 do
      let worst = ref 0. in
      Array.iter
        (fun per_out ->
          let d = per_out.(oi) in
          if not (Float.is_nan d.(0)) then begin
            worst := Float.max !worst d.(0);
            worst := Float.max !worst d.(1)
          end)
        delay;
      Array.iter
        (fun per_out ->
          let d = per_out.(oi) in
          if Float.is_nan d.(0) then begin
            d.(0) <- !worst;
            d.(1) <- !worst
          end)
        delay
    done;
    { logic = cell.Cell.logic; in_nets; out_nets; delay }
  in
  let gates = Array.map gate_of comb in
  let ffs =
    Array.of_list
      (List.map
         (fun inst ->
           let entry = resolve inst in
           let d_net =
             match List.assoc_opt "D" inst.Netlist.inputs with
             | Some n -> n
             | None -> failwith "Event_sim: flip-flop without D"
           in
           let q_net =
             match inst.Netlist.outputs with
             | [ (_, q) ] -> q
             | [] | _ :: _ :: _ -> failwith "Event_sim: flip-flop output arity"
           in
           let cfg = Timing.config analysis in
           let load = Timing.load_on analysis q_net in
           let clkq_rise, clkq_fall =
             match Library.arc_of entry ~from_pin:"CK" ~to_pin:"Q" with
             | Some arc ->
               ( Library.delay_of arc ~dir:Library.Rise
                   ~slew:cfg.Timing.clock_slew ~load,
                 Library.delay_of arc ~dir:Library.Fall
                   ~slew:cfg.Timing.clock_slew ~load )
             | None -> (0., 0.)
           in
           {
             d_net;
             q_net;
             setup = entry.Library.setup_time;
             clkq_rise;
             clkq_fall;
           })
         (Netlist.flipflops netlist))
  in
  let fanout_gates = Array.make netlist.Netlist.n_nets [] in
  Array.iteri
    (fun gi gate ->
      Array.iter
        (fun net ->
          if not (List.mem gi fanout_gates.(net)) then
            fanout_gates.(net) <- gi :: fanout_gates.(net))
        gate.in_nets)
    gates;
  { netlist; analysis; gates; ffs; fanout_gates }

let min_period t = Timing.min_period t.analysis
let design t = t.netlist

type trace = {
  outputs : (string * bool) list array;
  timing_errors : int;
}

type payload = Net_change of { net : int; value : bool; stamp : int } | Sample of int

let run_functional netlist ~cycles ~stimulus =
  let compiled = Netlist.compile netlist in
  let state = ref (Netlist.initial_state netlist) in
  Array.init cycles (fun n ->
      let outs, next = Netlist.compiled_cycle compiled !state ~inputs:(stimulus n) in
      state := next;
      outs)

let run t ~period ~cycles ~stimulus =
  if period <= 0. then invalid_arg "Event_sim.run: period <= 0";
  if cycles < 0 then invalid_arg "Event_sim.run: negative cycles";
  let netlist = t.netlist in
  let n_nets = netlist.Netlist.n_nets in
  let compiled = Netlist.compile netlist in
  (* Start in the settled state of the first input vector. *)
  let init_inputs = stimulus 0 in
  let init_state = Netlist.initial_state netlist in
  let values = Netlist.compiled_net_values compiled init_state ~inputs:init_inputs in
  let target = Array.copy values in
  let latest_stamp = Array.make n_nets 0 in
  let stamp_counter = ref 0 in
  let heap = heap_create (Sample (-1)) in
  let schedule time net value =
    incr stamp_counter;
    latest_stamp.(net) <- !stamp_counter;
    target.(net) <- value;
    heap_push heap time (Net_change { net; value; stamp = !stamp_counter })
  in
  let eval_gate time trigger_net gi =
    let g = t.gates.(gi) in
    let in_values = Array.to_list (Array.map (fun n -> values.(n)) g.in_nets) in
    let outs = g.logic in_values in
    List.iteri
      (fun oi v ->
        let out_net = g.out_nets.(oi) in
        if v <> target.(out_net) then begin
          (* Propagation delay of the pin(s) the triggering net drives (the
             worst when it feeds several pins of this gate). *)
          let dir = if v then dir_rise else dir_fall in
          let d = ref neg_infinity in
          Array.iteri
            (fun pi per_out ->
              if g.in_nets.(pi) = trigger_net then
                d := Float.max !d per_out.(oi).(dir))
            g.delay;
          let d = if Float.is_finite !d then !d else 0. in
          schedule (time +. d) out_net v
        end)
      outs
  in
  let apply_net_change time net value stamp =
    if stamp = latest_stamp.(net) && values.(net) <> value then begin
      values.(net) <- value;
      List.iter (eval_gate time net) t.fanout_gates.(net)
    end
  in
  let captured = Array.make (Array.length t.ffs) false in
  Array.iteri (fun i (_ : ff) -> captured.(i) <- init_state.(i)) t.ffs;
  let drain limit =
    let continue = ref true in
    while !continue do
      match heap_peek_key heap with
      | Some time when time <= limit ->
        let time, payload = heap_pop heap in
        begin
          match payload with
          | Net_change { net; value; stamp } -> apply_net_change time net value stamp
          | Sample fi -> captured.(fi) <- values.(t.ffs.(fi).d_net)
        end
      | Some _ | None -> continue := false
    done
  in
  (* Reference (zero-delay) execution to count timing errors. *)
  let ref_state = ref init_state in
  let timing_errors = ref 0 in
  let outputs = Array.make cycles [] in
  let q_values = Array.map (fun (ff : ff) -> values.(ff.q_net)) t.ffs in
  for cycle = 0 to cycles - 1 do
    let t_edge = float_of_int (cycle + 1) *. period in
    (* Schedule the D sampling points of this edge. *)
    Array.iteri
      (fun fi (ff : ff) -> heap_push heap (t_edge -. ff.setup) (Sample fi))
      t.ffs;
    (* Apply this cycle's inputs just after the previous edge. *)
    let t_inputs = (float_of_int cycle *. period) +. 1e-15 in
    List.iter
      (fun (port, value) ->
        match List.assoc_opt port netlist.Netlist.input_ports with
        | Some net -> if target.(net) <> value then schedule t_inputs net value
        | None -> failwith ("Event_sim.run: unknown input " ^ port))
      (stimulus cycle);
    drain t_edge;
    (* Record primary outputs as seen by the capturing edge. *)
    outputs.(cycle) <-
      List.map (fun (port, net) -> (port, values.(net))) netlist.Netlist.output_ports;
    (* Reference execution for this cycle. *)
    let _, ref_next =
      Netlist.compiled_cycle compiled !ref_state ~inputs:(stimulus cycle)
    in
    (* Captures become visible on Q after clk->q. *)
    Array.iteri
      (fun fi (ff : ff) ->
        if captured.(fi) <> ref_next.(fi) then incr timing_errors;
        if captured.(fi) <> q_values.(fi) then begin
          q_values.(fi) <- captured.(fi);
          let d = if captured.(fi) then ff.clkq_rise else ff.clkq_fall in
          schedule (t_edge +. d) ff.q_net captured.(fi)
        end)
      t.ffs;
    ref_state := ref_next
  done;
  { outputs; timing_errors = !timing_errors }
