module Netlist = Aging_netlist.Netlist
module Scenario = Aging_physics.Scenario

type profile = { p_high : float array; toggles : int array; cycles : int }

let profile netlist ~cycles ~stimulus =
  if cycles <= 0 then invalid_arg "Activity.profile: cycles <= 0";
  let compiled = Netlist.compile netlist in
  let n = netlist.Netlist.n_nets in
  let high = Array.make n 0 in
  let toggles = Array.make n 0 in
  let previous = Array.make n false in
  let state = ref (Netlist.initial_state netlist) in
  for cycle = 0 to cycles - 1 do
    let values = Netlist.compiled_net_values compiled !state ~inputs:(stimulus cycle) in
    for net = 0 to n - 1 do
      if values.(net) then high.(net) <- high.(net) + 1;
      if cycle > 0 && values.(net) <> previous.(net) then
        toggles.(net) <- toggles.(net) + 1;
      previous.(net) <- values.(net)
    done;
    state := Netlist.next_state_of_values compiled values
  done;
  {
    p_high = Array.map (fun h -> float_of_int h /. float_of_int cycles) high;
    toggles;
    cycles;
  }

let instance_corner profile (inst : Netlist.instance) =
  let pins = List.filter (fun (pin, _) -> pin <> "CK") inst.Netlist.inputs in
  match pins with
  | [] -> Scenario.fresh
  | _ :: _ ->
    let n = float_of_int (List.length pins) in
    let sum_high =
      List.fold_left (fun acc (_, net) -> acc +. profile.p_high.(net)) 0. pins
    in
    let lambda_n = sum_high /. n in
    Scenario.corner ~lambda_p:(1. -. lambda_n) ~lambda_n

let annotate ?(step = 0.1) netlist profile =
  Netlist.rename_cells
    (fun inst ->
      let base = Netlist.base_cell_name inst.Netlist.cell_name in
      let corner = Scenario.snap ~step (instance_corner profile inst) in
      base ^ "@" ^ Scenario.suffix corner)
    netlist

let corners_used netlist =
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun (inst : Netlist.instance) ->
      match String.index_opt inst.Netlist.cell_name '@' with
      | None -> ()
      | Some i ->
        let suffix =
          String.sub inst.Netlist.cell_name (i + 1)
            (String.length inst.Netlist.cell_name - i - 1)
        in
        begin
          match Scenario.of_suffix suffix with
          | Some corner -> Hashtbl.replace seen (Scenario.suffix corner) corner
          | None -> ()
        end)
    netlist.Netlist.instances;
  Hashtbl.fold (fun _ corner acc -> corner :: acc) seen []
  |> List.sort (fun a b ->
         compare
           (a.Scenario.lambda_p, a.Scenario.lambda_n)
           (b.Scenario.lambda_p, b.Scenario.lambda_n))
