(** Event-driven gate-level simulation with library-annotated delays.

    The ModelSim + SDF substitute: instance delays are extracted from a
    timing library (using the slews and loads of a full STA pass, like an
    SDF annotation), events propagate with inertial semantics, and
    flip-flops sample their D input [setup] before each rising clock edge.
    Running a netlist at a frequency its aged delays cannot sustain produces
    exactly the timing errors whose system-level impact the paper studies on
    the DCT-IDCT chain (Sec. 5, Figs. 6c and 7). *)

type t
(** A simulatable design: netlist + annotated delays. *)

val prepare :
  ?config:Aging_sta.Timing.config ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  t
(** Runs STA against [library] and freezes per-instance pin-to-pin delays
    (rise/fall, per triggering pin). *)

val min_period : t -> float
(** The STA minimum period of the prepared design under its library. *)

val design : t -> Aging_netlist.Netlist.t
(** The netlist this simulation was prepared from. *)

type trace = {
  outputs : (string * bool) list array;
      (** primary-output values captured at each rising edge (the edge at
          the *end* of each cycle) *)
  timing_errors : int;
      (** number of flip-flop captures that differed from the zero-delay
          reference during the run *)
}

val run :
  t ->
  period:float ->
  cycles:int ->
  stimulus:(int -> (string * bool) list) ->
  trace
(** Simulates [cycles] clock cycles at the given period.  [stimulus n]
    provides the primary-input values applied at the start of cycle [n]
    (held for the whole cycle).  Flip-flops start at 0.
    @raise Invalid_argument if [period <= 0] or [cycles < 0]. *)

val run_functional :
  Aging_netlist.Netlist.t -> cycles:int ->
  stimulus:(int -> (string * bool) list) -> (string * bool) list array
(** Zero-delay cycle-accurate reference using the netlist evaluator, with
    the same output convention as {!run} (values captured at the end-of-
    cycle edge). *)
