lib/sim/event_sim.mli: Aging_liberty Aging_netlist Aging_sta
