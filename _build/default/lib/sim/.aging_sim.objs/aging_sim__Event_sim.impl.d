lib/sim/event_sim.ml: Aging_cells Aging_liberty Aging_netlist Aging_sta Array Float List
