lib/sim/activity.ml: Aging_netlist Aging_physics Array Hashtbl List String
