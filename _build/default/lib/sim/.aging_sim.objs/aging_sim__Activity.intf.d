lib/sim/activity.mli: Aging_netlist Aging_physics
