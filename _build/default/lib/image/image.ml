type t = { width : int; height : int; pixels : int array }

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: bad dimensions";
  { width; height; pixels = Array.make (width * height) 0 }

let in_bounds t ~x ~y = x >= 0 && x < t.width && y >= 0 && y < t.height

let get t ~x ~y =
  if not (in_bounds t ~x ~y) then invalid_arg "Image.get: out of bounds";
  t.pixels.((y * t.width) + x)

let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

let set t ~x ~y v =
  if not (in_bounds t ~x ~y) then invalid_arg "Image.set: out of bounds";
  t.pixels.((y * t.width) + x) <- clamp v

let init ~width ~height f =
  let t = create ~width ~height in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      set t ~x ~y (f ~x ~y)
    done
  done;
  t

let map f t = { t with pixels = Array.map (fun p -> clamp (f p)) t.pixels }

let equal a b = a.width = b.width && a.height = b.height && a.pixels = b.pixels

let mse a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.mse: dimension mismatch";
  let total = ref 0. in
  Array.iteri
    (fun i p ->
      let d = float_of_int (p - b.pixels.(i)) in
      total := !total +. (d *. d))
    a.pixels;
  !total /. float_of_int (Array.length a.pixels)

let psnr ~reference t =
  let e = mse reference t in
  if e = 0. then infinity else 10. *. log10 (255. *. 255. /. e)

let get_clamped t ~x ~y =
  let x = if x < 0 then 0 else if x >= t.width then t.width - 1 else x in
  let y = if y < 0 then 0 else if y >= t.height then t.height - 1 else y in
  get t ~x ~y

let block8 t ~bx ~by =
  Array.init 64 (fun i ->
      let x = (bx * 8) + (i mod 8) and y = (by * 8) + (i / 8) in
      get_clamped t ~x ~y)

let set_block8 t ~bx ~by values =
  if Array.length values <> 64 then invalid_arg "Image.set_block8: need 64 values";
  Array.iteri
    (fun i v ->
      let x = (bx * 8) + (i mod 8) and y = (by * 8) + (i / 8) in
      if in_bounds t ~x ~y then set t ~x ~y v)
    values
