module Rng = Aging_util.Rng

let gradient ~width ~height =
  Image.init ~width ~height (fun ~x ~y ->
      255 * (x + y) / (width + height - 2))

let checkerboard ?(cell = 4) ~width ~height () =
  Image.init ~width ~height (fun ~x ~y ->
      if (x / cell + (y / cell)) mod 2 = 0 then 40 else 215)

let blobs ?(seed = 7L) ?(count = 6) ~width ~height () =
  let rng = Rng.create seed in
  let centers =
    List.init count (fun _ ->
        let cx = Rng.float rng *. float_of_int width in
        let cy = Rng.float rng *. float_of_int height in
        let sigma = (0.08 +. (0.15 *. Rng.float rng)) *. float_of_int width in
        let amp = 60. +. (120. *. Rng.float rng) in
        let sign = if Rng.bool rng then 1. else -1. in
        (cx, cy, sigma, sign *. amp))
  in
  Image.init ~width ~height (fun ~x ~y ->
      let v =
        List.fold_left
          (fun acc (cx, cy, sigma, amp) ->
            let dx = float_of_int x -. cx and dy = float_of_int y -. cy in
            acc
            +. (amp *. exp (-.((dx *. dx) +. (dy *. dy)) /. (2. *. sigma *. sigma))))
          128. centers
      in
      int_of_float v)

let portrait ~width ~height =
  let w = float_of_int width and h = float_of_int height in
  Image.init ~width ~height (fun ~x ~y ->
      let fx = float_of_int x /. w and fy = float_of_int y /. h in
      (* Smooth background vignette. *)
      let dx = fx -. 0.5 and dy = fy -. 0.45 in
      let r2 = (dx *. dx) +. (dy *. dy) in
      let background = 200. -. (180. *. r2 *. 2.) in
      (* An elliptical "face" patch with soft edge. *)
      let face =
        let fr = ((dx /. 0.22) ** 2.) +. ((dy /. 0.3) ** 2.) in
        if fr < 1. then 60. *. (1. -. fr) else 0.
      in
      (* Fine texture band across the lower third. *)
      let texture =
        if fy > 0.66 then 25. *. sin (fx *. 40.) *. cos (fy *. 31.) else 0.
      in
      int_of_float (background +. face +. texture))

let all ~width ~height =
  [
    ("gradient", gradient ~width ~height);
    ("checker", checkerboard ~width ~height ());
    ("blobs", blobs ~width ~height ());
    ("portrait", portrait ~width ~height);
  ]
