(** Fixed-point 8-point DCT-II / IDCT dataflow (Chen factorization).

    The transform matrix is the orthonormal DCT scaled by 128 and rounded to
    integers; all arithmetic is adds, subtracts, constant multiplies and
    arithmetic shifts on a signed two's-complement datapath of {!width}
    bits.  The dataflow is written once as a functor over an abstract
    arithmetic so that the software reference (this module, over wrapped
    OCaml ints) and the gate-level DCT/IDCT circuits (over netlist bit
    vectors in [Aging_designs]) are bit-identical by construction. *)

val width : int
(** Datapath width in bits (18): wide enough that no overflow occurs for
    any 8-bit input block through both 2-D passes. *)

val scale_shift : int
(** The fixed-point scale: transform outputs are [>> scale_shift] (7). *)

val coefficients : int array array
(** The 8x8 integer transform matrix [round (128 * C)]. *)

module type ARITH = sig
  type v

  val add : v -> v -> v
  val sub : v -> v -> v
  val mul_const : v -> int -> v
  (** Multiplication by a (possibly negative) integer constant. *)

  val add_const : v -> int -> v
  val asr_const : v -> int -> v
  (** Arithmetic shift right by a constant. *)
end

module Make (A : ARITH) : sig
  val forward_1d : A.v array -> A.v array
  (** 8 inputs -> 8 DCT coefficients (rounded, [>> scale_shift]).
      @raise Invalid_argument unless exactly 8 values are given. *)

  val inverse_1d : A.v array -> A.v array
  (** 8 coefficients -> 8 samples. *)
end

(** {1 Integer reference instance} *)

val forward_1d : int array -> int array
val inverse_1d : int array -> int array

val forward_8x8 : int array -> int array
(** 2-D DCT of a 64-element block of *centered* samples (pixel - 128):
    rows then columns.  @raise Invalid_argument unless 64 values. *)

val inverse_8x8 : int array -> int array
(** 2-D IDCT; output is centered samples (add 128 and clamp for pixels). *)

val roundtrip_image : Image.t -> Image.t
(** Reference DCT -> IDCT of a whole image (blockwise); this is what a
    timing-error-free hardware chain produces. *)
