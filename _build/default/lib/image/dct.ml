let width = 18
let scale_shift = 7

let coefficients =
  let pi = 4. *. atan 1. in
  Array.init 8 (fun i ->
      Array.init 8 (fun j ->
          let k = if i = 0 then 1. /. sqrt 2. else 1. in
          let c =
            0.5 *. k
            *. cos (float_of_int ((2 * j) + 1) *. float_of_int i *. pi /. 16.)
          in
          int_of_float (Float.round (128. *. c))))

module type ARITH = sig
  type v

  val add : v -> v -> v
  val sub : v -> v -> v
  val mul_const : v -> int -> v
  val add_const : v -> int -> v
  val asr_const : v -> int -> v
end

module Make (A : ARITH) = struct
  let half = 1 lsl (scale_shift - 1)

  let round_shift v = A.asr_const (A.add_const v half) scale_shift

  (* Linear combination with shared structure left to the caller. *)
  let lincomb = function
    | [] -> invalid_arg "Dct.lincomb: empty"
    | (c, v) :: rest ->
      List.fold_left
        (fun acc (c, v) -> A.add acc (A.mul_const v c))
        (A.mul_const v c) rest

  let forward_1d x =
    if Array.length x <> 8 then invalid_arg "Dct.forward_1d: need 8 values";
    let s j = A.add x.(j) x.(7 - j) and d j = A.sub x.(j) x.(7 - j) in
    let s0 = s 0 and s1 = s 1 and s2 = s 2 and s3 = s 3 in
    let d0 = d 0 and d1 = d 1 and d2 = d 2 and d3 = d 3 in
    let t0 = A.add s0 s3 and t1 = A.add s1 s2 in
    let t2 = A.sub s1 s2 and t3 = A.sub s0 s3 in
    let x0 = round_shift (A.mul_const (A.add t0 t1) 45) in
    let x4 = round_shift (A.mul_const (A.sub t0 t1) 45) in
    let x2 = round_shift (lincomb [ (59, t3); (24, t2) ]) in
    let x6 = round_shift (lincomb [ (24, t3); (-59, t2) ]) in
    let x1 = round_shift (lincomb [ (63, d0); (53, d1); (36, d2); (12, d3) ]) in
    let x3 = round_shift (lincomb [ (53, d0); (-12, d1); (-63, d2); (-36, d3) ]) in
    let x5 = round_shift (lincomb [ (36, d0); (-63, d1); (12, d2); (53, d3) ]) in
    let x7 = round_shift (lincomb [ (12, d0); (-36, d1); (53, d2); (-63, d3) ]) in
    [| x0; x1; x2; x3; x4; x5; x6; x7 |]

  let inverse_1d x =
    if Array.length x <> 8 then invalid_arg "Dct.inverse_1d: need 8 values";
    let p45_0 = A.mul_const x.(0) 45 and p45_4 = A.mul_const x.(4) 45 in
    let p59_2 = A.mul_const x.(2) 59 and p24_2 = A.mul_const x.(2) 24 in
    let p24_6 = A.mul_const x.(6) 24 and p59_6 = A.mul_const x.(6) 59 in
    let e0 = A.add (A.add p45_0 p45_4) (A.add p59_2 p24_6) in
    let e1 = A.add (A.sub p45_0 p45_4) (A.sub p24_2 p59_6) in
    let e2 = A.sub (A.sub p45_0 p45_4) (A.sub p24_2 p59_6) in
    let e3 = A.sub (A.add p45_0 p45_4) (A.add p59_2 p24_6) in
    let o0 = lincomb [ (63, x.(1)); (53, x.(3)); (36, x.(5)); (12, x.(7)) ] in
    let o1 = lincomb [ (53, x.(1)); (-12, x.(3)); (-63, x.(5)); (-36, x.(7)) ] in
    let o2 = lincomb [ (36, x.(1)); (-63, x.(3)); (12, x.(5)); (53, x.(7)) ] in
    let o3 = lincomb [ (12, x.(1)); (-36, x.(3)); (53, x.(5)); (-63, x.(7)) ] in
    let out e o = (round_shift (A.add e o), round_shift (A.sub e o)) in
    let y0, y7 = out e0 o0 in
    let y1, y6 = out e1 o1 in
    let y2, y5 = out e2 o2 in
    let y3, y4 = out e3 o3 in
    [| y0; y1; y2; y3; y4; y5; y6; y7 |]
end

(* Integer reference: OCaml ints wrapped to [width]-bit two's complement
   after every operation, so the hardware instance is bit-identical. *)
module Int_arith = struct
  type v = int

  let mask = (1 lsl width) - 1
  let sign = 1 lsl (width - 1)
  let wrap x = ((x + sign) land mask) - sign
  let add a b = wrap (a + b)
  let sub a b = wrap (a - b)
  let mul_const v c = wrap (v * c)
  let add_const v c = wrap (v + c)
  let asr_const v k = wrap (v asr k)
end

module Ref = Make (Int_arith)

let forward_1d = Ref.forward_1d
let inverse_1d = Ref.inverse_1d

let apply_rows f block =
  let out = Array.make 64 0 in
  for r = 0 to 7 do
    let row = Array.init 8 (fun c -> block.((r * 8) + c)) in
    let t = f row in
    Array.iteri (fun c v -> out.((r * 8) + c) <- v) t
  done;
  out

let apply_cols f block =
  let out = Array.make 64 0 in
  for c = 0 to 7 do
    let col = Array.init 8 (fun r -> block.((r * 8) + c)) in
    let t = f col in
    Array.iteri (fun r v -> out.((r * 8) + c) <- v) t
  done;
  out

let check64 name block =
  if Array.length block <> 64 then invalid_arg (name ^ ": need 64 values")

let forward_8x8 block =
  check64 "Dct.forward_8x8" block;
  apply_cols forward_1d (apply_rows forward_1d block)

let inverse_8x8 block =
  check64 "Dct.inverse_8x8" block;
  apply_cols inverse_1d (apply_rows inverse_1d block)

let roundtrip_image image =
  let out = Image.create ~width:image.Image.width ~height:image.Image.height in
  let blocks_x = (image.Image.width + 7) / 8 in
  let blocks_y = (image.Image.height + 7) / 8 in
  for by = 0 to blocks_y - 1 do
    for bx = 0 to blocks_x - 1 do
      let block = Image.block8 image ~bx ~by in
      let centered = Array.map (fun p -> p - 128) block in
      let decoded = inverse_8x8 (forward_8x8 centered) in
      Image.set_block8 out ~bx ~by (Array.map (fun v -> v + 128) decoded)
    done
  done;
  out
