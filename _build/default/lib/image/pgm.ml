let to_string ?(binary = true) (img : Image.t) =
  let buf = Buffer.create (img.Image.width * img.Image.height + 32) in
  if binary then begin
    Buffer.add_string buf
      (Printf.sprintf "P5\n%d %d\n255\n" img.Image.width img.Image.height);
    Array.iter (fun p -> Buffer.add_char buf (Char.chr (p land 0xff))) img.Image.pixels
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "P2\n%d %d\n255\n" img.Image.width img.Image.height);
    Array.iteri
      (fun i p ->
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf (if (i + 1) mod img.Image.width = 0 then '\n' else ' '))
      img.Image.pixels
  end;
  Buffer.contents buf

(* Tokenizer for the header (and P2 body): whitespace-separated tokens,
   with '#' comments running to end of line. *)
let tokenize_from s start limit =
  let tokens = ref [] in
  let i = ref start in
  let n = min limit (String.length s) in
  while !i < n do
    let c = s.[!i] in
    if c = '#' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start_tok = !i in
      while
        !i < n
        && not
             (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r'
             || s.[!i] = '#')
      do
        incr i
      done;
      tokens := (String.sub s start_tok (!i - start_tok), !i) :: !tokens
    end
  done;
  List.rev !tokens

let of_string s =
  if String.length s < 2 then failwith "Pgm.of_string: truncated";
  let magic = String.sub s 0 2 in
  match magic with
  | "P2" -> begin
    match tokenize_from s 2 (String.length s) with
    | (w, _) :: (h, _) :: (maxval, _) :: pixels -> begin
      match (int_of_string_opt w, int_of_string_opt h, int_of_string_opt maxval) with
      | Some w, Some h, Some 255 ->
        let img = Image.create ~width:w ~height:h in
        let values =
          List.map
            (fun (tok, _) ->
              match int_of_string_opt tok with
              | Some v -> v
              | None -> failwith "Pgm.of_string: bad pixel")
            pixels
        in
        if List.length values <> w * h then failwith "Pgm.of_string: pixel count";
        List.iteri (fun i v -> img.Image.pixels.(i) <- max 0 (min 255 v)) values;
        img
      | _ -> failwith "Pgm.of_string: bad header or unsupported depth"
    end
    | _ -> failwith "Pgm.of_string: truncated header"
  end
  | "P5" -> begin
    (* Parse three header tokens, then read binary pixels after the single
       whitespace byte following maxval. *)
    let rec grab_tokens pos acc =
      if List.length acc = 3 then (List.rev acc, pos)
      else begin
        match tokenize_from s pos (String.length s) with
        | (tok, after) :: _ -> grab_tokens after (tok :: acc)
        | [] -> failwith "Pgm.of_string: truncated header"
      end
    in
    let tokens, data_start = grab_tokens 2 [] in
    match tokens with
    | [ w; h; maxval ] -> begin
      match (int_of_string_opt w, int_of_string_opt h, int_of_string_opt maxval) with
      | Some w, Some h, Some 255 ->
        let start = data_start + 1 in
        if String.length s < start + (w * h) then
          failwith "Pgm.of_string: truncated pixel data";
        let img = Image.create ~width:w ~height:h in
        for i = 0 to (w * h) - 1 do
          img.Image.pixels.(i) <- Char.code s.[start + i]
        done;
        img
      | _ -> failwith "Pgm.of_string: bad header or unsupported depth"
    end
    | _ -> failwith "Pgm.of_string: bad header"
  end
  | _ -> failwith ("Pgm.of_string: unsupported magic " ^ magic)

let write ?binary path img =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?binary img))

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
