(** Deterministic synthetic test images.

    Substitutes for the benchmark video frames the paper feeds the DCT-IDCT
    chain (we have no image corpus offline).  All generators are seeded and
    deterministic. *)

val gradient : width:int -> height:int -> Image.t
(** Diagonal luminance ramp. *)

val checkerboard : ?cell:int -> width:int -> height:int -> unit -> Image.t
(** High-frequency content.  Default cell 4 px. *)

val blobs : ?seed:int64 -> ?count:int -> width:int -> height:int -> unit -> Image.t
(** Sum of Gaussian blobs on a mid-gray background: smooth natural-image
    statistics.  Defaults: seed 7, 6 blobs. *)

val portrait : width:int -> height:int -> Image.t
(** A composite with smooth regions, edges and texture — the most
    photograph-like of the set (used as the "Fig. 7" stand-in). *)

val all : width:int -> height:int -> (string * Image.t) list
(** The named suite of test images. *)
