(** Portable graymap (PGM) reading and writing.

    Supports the ASCII [P2] and binary [P5] variants with 8-bit depth, so
    results (e.g. the Fig. 7 aged outputs) can be inspected with standard
    image viewers and external images can be fed to the pipeline. *)

val write : ?binary:bool -> string -> Image.t -> unit
(** Defaults to binary [P5]. *)

val read : string -> Image.t
(** @raise Failure on malformed files or unsupported depth;
    @raise Sys_error on I/O errors. *)

val to_string : ?binary:bool -> Image.t -> string
val of_string : string -> Image.t
