lib/image/pgm.ml: Array Buffer Char Fun Image List Printf String
