lib/image/synthetic.ml: Aging_util Image List
