lib/image/dct.ml: Array Float Image List
