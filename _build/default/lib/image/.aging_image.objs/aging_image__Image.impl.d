lib/image/image.ml: Array
