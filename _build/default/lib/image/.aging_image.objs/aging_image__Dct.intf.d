lib/image/dct.mli: Image
