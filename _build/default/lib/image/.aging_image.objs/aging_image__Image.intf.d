lib/image/image.mli:
