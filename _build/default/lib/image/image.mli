(** 8-bit grayscale images. *)

type t = { width : int; height : int; pixels : int array }
(** Row-major; pixel values in [0, 255]. *)

val create : width:int -> height:int -> t
(** All-black image.  @raise Invalid_argument on non-positive dimensions. *)

val get : t -> x:int -> y:int -> int
(** @raise Invalid_argument out of bounds. *)

val set : t -> x:int -> y:int -> int -> unit
(** Clamps the value to [0, 255].  @raise Invalid_argument out of bounds. *)

val init : width:int -> height:int -> (x:int -> y:int -> int) -> t

val map : (int -> int) -> t -> t

val equal : t -> t -> bool

val mse : t -> t -> float
(** Mean squared error.  @raise Invalid_argument on dimension mismatch. *)

val psnr : reference:t -> t -> float
(** Peak signal-to-noise ratio in dB against 255 peak; [infinity] for
    identical images. *)

val block8 : t -> bx:int -> by:int -> int array
(** Extracts the 8x8 block at block coordinates [(bx, by)] as 64 values
    (row-major).  Out-of-image samples are edge-replicated. *)

val set_block8 : t -> bx:int -> by:int -> int array -> unit
(** Writes an 8x8 block back (values clamped; out-of-image parts dropped). *)
