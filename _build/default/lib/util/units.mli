(** Unit conversions and engineering-notation formatting.

    All library code computes in SI units (seconds, farads, volts, meters,
    amperes); these helpers convert to the units the paper reports
    (picoseconds, femtofarads, square micrometers) at the printing boundary. *)

val ps : float -> float
(** Seconds to picoseconds. *)

val of_ps : float -> float
(** Picoseconds to seconds. *)

val ff : float -> float
(** Farads to femtofarads. *)

val of_ff : float -> float
(** Femtofarads to farads. *)

val um2 : float -> float
(** Square meters to square micrometers. *)

val of_nm : float -> float
(** Nanometers to meters. *)

val pp_ps : Format.formatter -> float -> unit
(** Prints a time in seconds as ["12.3 ps"]. *)

val pp_percent : Format.formatter -> float -> unit
(** Prints a ratio as a signed percentage, e.g. 0.19 -> ["+19.0 %"]. *)
