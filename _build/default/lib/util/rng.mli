(** Deterministic splitmix64 pseudo-random generator.

    Every stochastic piece of the reproduction (workload stimuli, synthetic
    images, property-test inputs that are not driven by qcheck) draws from
    this generator so that experiments are bit-reproducible across runs. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] derives an independent generator stream and advances [t]. *)
