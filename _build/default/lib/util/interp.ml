let monotone_increasing a =
  let rec ok i = i >= Array.length a - 1 || (a.(i) < a.(i + 1) && ok (i + 1)) in
  ok 0

let bracket axis x =
  let n = Array.length axis in
  if n < 2 then invalid_arg "Interp.bracket: axis needs >= 2 points";
  (* Binary search for the segment containing x, clamped to the grid. *)
  if x <= axis.(0) then 0
  else if x >= axis.(n - 1) then n - 2
  else begin
    let rec go lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if axis.(mid) <= x then go mid hi else go lo mid
    in
    let i = go 0 (n - 1) in
    if not (axis.(i) < axis.(i + 1)) then
      invalid_arg "Interp.bracket: axis not strictly increasing";
    i
  end

let linear xs ys x =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.linear: length mismatch";
  let i = bracket xs x in
  let x0 = xs.(i) and x1 = xs.(i + 1) in
  let t = (x -. x0) /. (x1 -. x0) in
  ys.(i) +. (t *. (ys.(i + 1) -. ys.(i)))

let bilinear ~rows ~cols z r c =
  let i = bracket rows r and j = bracket cols c in
  let r0 = rows.(i) and r1 = rows.(i + 1) in
  let c0 = cols.(j) and c1 = cols.(j + 1) in
  let tr = (r -. r0) /. (r1 -. r0) in
  let tc = (c -. c0) /. (c1 -. c0) in
  let z00 = z.(i).(j) and z01 = z.(i).(j + 1) in
  let z10 = z.(i + 1).(j) and z11 = z.(i + 1).(j + 1) in
  let lo = z00 +. (tc *. (z01 -. z00)) in
  let hi = z10 +. (tc *. (z11 -. z10)) in
  lo +. (tr *. (hi -. lo))
