(** Piecewise-linear interpolation on monotone grids.

    These are the lookup primitives behind NLDM delay/slew tables: 1-D linear
    interpolation and 2-D bilinear interpolation over rectangular grids with
    strictly increasing axes.  Queries outside the grid are linearly
    extrapolated from the outermost segment, matching the behaviour of
    industrial timing tools on out-of-range slew/load values. *)

val bracket : float array -> float -> int
(** [bracket axis x] returns the index [i] such that the segment
    [axis.(i), axis.(i+1)] is used to interpolate at [x].  For [x] below
    (resp. above) the grid the first (resp. last) segment index is returned.
    @raise Invalid_argument if [axis] has fewer than 2 points or is not
    strictly increasing at the chosen segment. *)

val linear : float array -> float array -> float -> float
(** [linear xs ys x] interpolates [ys] over grid [xs] at [x], extrapolating
    linearly beyond the ends.  [Array.length xs = Array.length ys >= 2]. *)

val bilinear :
  rows:float array -> cols:float array -> float array array ->
  float -> float -> float
(** [bilinear ~rows ~cols z r c] bilinearly interpolates the matrix [z]
    (indexed [z.(row).(col)]) at coordinates [(r, c)], extrapolating beyond
    the grid edges. *)

val monotone_increasing : float array -> bool
(** [monotone_increasing a] is [true] iff [a] is strictly increasing. *)
