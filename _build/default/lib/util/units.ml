let ps t = t *. 1e12
let of_ps t = t *. 1e-12
let ff c = c *. 1e15
let of_ff c = c *. 1e-15
let um2 a = a *. 1e12
let of_nm x = x *. 1e-9
let pp_ps fmt t = Format.fprintf fmt "%.1f ps" (ps t)
let pp_percent fmt r = Format.fprintf fmt "%+.1f %%" (r *. 100.)
