lib/util/rng.mli:
