lib/util/stats.mli:
