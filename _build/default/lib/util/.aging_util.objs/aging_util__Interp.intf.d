lib/util/interp.mli:
