lib/netlist/netlist.ml: Aging_cells Array Hashtbl List Option Printf Queue Seq String
