lib/netlist/netlist.mli: Aging_cells
