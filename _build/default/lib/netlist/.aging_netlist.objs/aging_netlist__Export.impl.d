lib/netlist/export.ml: Array Buffer Fun List Netlist Printf String
