(** Gate-level netlists.

    A netlist is a set of cell instances connected by nets, with named
    primary inputs/outputs and an optional clock net driving the flip-flops.
    Cell names refer to the {!Aging_cells.Catalog} — possibly carrying an
    aging-corner index suffix ("NAND2_X1\@0.4_0.6") after annotation, which
    is transparent to structural operations. *)

type net = int

type instance = {
  inst_name : string;
  cell_name : string;
  inputs : (string * net) list;   (** input pin -> net, in cell pin order *)
  outputs : (string * net) list;  (** output pin -> net *)
}

type t = {
  design_name : string;
  n_nets : int;
  instances : instance array;
  input_ports : (string * net) list;
  output_ports : (string * net) list;
  clock : net option;
}

val base_cell_name : string -> string
(** Strips a corner index suffix: ["NAND2_X1\@0.4_0.6"] -> ["NAND2_X1"]. *)

val catalog_cell : instance -> Aging_cells.Cell.t
(** Resolves the instance's catalog cell (index suffix ignored).
    @raise Failure on unknown cells. *)

val is_flipflop : instance -> bool

(** {1 Construction} *)

module Builder : sig
  type netlist = t
  type b

  val create : string -> b
  val fresh_net : b -> net
  val input : b -> string -> net
  (** Declares a primary input and returns its net. *)

  val output : b -> string -> net -> unit
  (** Declares a primary output fed by [net]. *)

  val clock : b -> string -> net
  (** Declares the clock input (at most once).
      @raise Invalid_argument on a second clock. *)

  val cell :
    b -> ?name:string -> string -> inputs:(string * net) list -> net list
  (** [cell b cell_name ~inputs] instantiates a catalog cell, allocates one
      fresh net per output pin and returns them in cell pin order.  For
      flip-flops the CK pin is wired to the clock automatically (and must
      not be passed in [inputs]).
      @raise Failure on unknown cell or missing pins. *)

  val cell_into :
    b -> ?name:string -> string -> inputs:(string * net) list ->
    outputs:(string * net) list -> unit
  (** Like {!cell} but connecting the outputs to caller-allocated nets
      (needed when an output net must exist before the instance, e.g.
      flip-flop Q nets during technology mapping). *)

  val finish : b -> netlist
  (** @raise Failure if a declared clock is required (flip-flops present)
      but missing, or a net has multiple drivers. *)
end

(** {1 Queries} *)

val combinational_order : t -> instance list
(** Combinational instances in topological order (flip-flop outputs and
    primary inputs are sources).
    @raise Failure on a combinational cycle. *)

val flipflops : t -> instance list

val driver_of : t -> net -> (instance * string) option
(** The instance/output-pin pair driving a net, if any (primary inputs have
    no driver). *)

val fanout_of : t -> net -> (instance * string) list
(** Instance/input-pin pairs reading a net. *)

val area : t -> float
(** Total cell area [m^2] from catalog metadata. *)

val count_cells : t -> (string * int) list
(** Instance count per base cell name, sorted by name. *)

val rename_cells : (instance -> string) -> t -> t
(** Rewrites every instance's [cell_name] (used by aging annotation). *)

(** {1 Cycle-accurate functional evaluation} *)

type state = bool array
(** One bool per flip-flop, in [flipflops] order. *)

val initial_state : t -> state

val eval_cycle :
  t -> state -> inputs:(string * bool) list -> (string * bool) list * state
(** Evaluates one clock cycle: combinational settle from primary inputs and
    current FF outputs, returning primary-output values and the next FF
    state.  @raise Failure on missing input bindings. *)

val eval_combinational :
  t -> inputs:(string * bool) list -> (string * bool) list
(** [eval_cycle] for purely combinational netlists.
    @raise Invalid_argument if the netlist has flip-flops. *)

val net_values :
  t -> state -> inputs:(string * bool) list -> bool array
(** The settled value of every net for the given inputs/state (clock nets
    read as [false]); used by activity profiling. *)

type compiled
(** Pre-levelized evaluator for repeated cycle evaluation (the topological
    sort and catalog lookups are done once). *)

val compile : t -> compiled

val compiled_cycle :
  compiled -> state -> inputs:(string * bool) list ->
  (string * bool) list * state
(** Same contract as {!eval_cycle}. *)

val compiled_net_values :
  compiled -> state -> inputs:(string * bool) list -> bool array
(** Same contract as {!net_values}. *)

val next_state_of_values : compiled -> bool array -> state
(** Extracts the captured flip-flop state from a settled net-value vector
    (as returned by {!compiled_net_values}). *)
