(** Structural Verilog emission for gate-level netlists.

    Writes a flat module instantiating the library cells by (sanitized)
    name with named port connections, so synthesized or annotated netlists
    can be inspected or fed to external tools.  Emission only. *)

val to_verilog : Netlist.t -> string
(** One flat module named after the design.  Nets become [n<id>] wires;
    ports keep their names (with [\[i\]] indices turned into vector-free
    [_i] suffixes). *)

val save : string -> Netlist.t -> unit

val sanitize_identifier : string -> string
(** The identifier mapping used for cell, port and instance names. *)
