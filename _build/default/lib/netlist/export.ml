let sanitize_identifier name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf ch
      | '[' -> Buffer.add_char buf '_'
      | ']' -> ()
      | '@' -> Buffer.add_string buf "_c"
      | '.' -> Buffer.add_char buf 'p'
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let to_verilog (t : Netlist.t) =
  let buf = Buffer.create 65536 in
  let port_names =
    List.map (fun (name, _) -> sanitize_identifier name)
      (t.Netlist.input_ports @ t.Netlist.output_ports)
  in
  let clock_name = if t.Netlist.clock = None then [] else [ "clk" ] in
  Printf.bprintf buf "module %s (%s);\n"
    (sanitize_identifier t.Netlist.design_name)
    (String.concat ", " (clock_name @ port_names));
  List.iter (fun name -> Printf.bprintf buf "  input %s;\n" name) clock_name;
  List.iter
    (fun (name, _) -> Printf.bprintf buf "  input %s;\n" (sanitize_identifier name))
    t.Netlist.input_ports;
  List.iter
    (fun (name, _) -> Printf.bprintf buf "  output %s;\n" (sanitize_identifier name))
    t.Netlist.output_ports;
  (* Net naming: ports alias their nets, everything else is n<id>. *)
  let net_name = Array.make t.Netlist.n_nets None in
  List.iter
    (fun (name, net) -> net_name.(net) <- Some (sanitize_identifier name))
    (t.Netlist.input_ports @ t.Netlist.output_ports);
  (match t.Netlist.clock with
  | Some net -> net_name.(net) <- Some "clk"
  | None -> ());
  let name_of net =
    match net_name.(net) with Some n -> n | None -> Printf.sprintf "n%d" net
  in
  Array.iteri
    (fun net name -> if name = None then Printf.bprintf buf "  wire n%d;\n" net)
    net_name;
  Array.iter
    (fun (inst : Netlist.instance) ->
      let conns =
        List.map
          (fun (pin, net) -> Printf.sprintf ".%s(%s)" pin (name_of net))
          (inst.Netlist.inputs @ inst.Netlist.outputs)
      in
      Printf.bprintf buf "  %s %s (%s);\n"
        (sanitize_identifier inst.Netlist.cell_name)
        (sanitize_identifier inst.Netlist.inst_name)
        (String.concat ", " conns))
    t.Netlist.instances;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_verilog t))
