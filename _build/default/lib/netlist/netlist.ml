module Cell = Aging_cells.Cell
module Catalog = Aging_cells.Catalog

type net = int

type instance = {
  inst_name : string;
  cell_name : string;
  inputs : (string * net) list;
  outputs : (string * net) list;
}

type t = {
  design_name : string;
  n_nets : int;
  instances : instance array;
  input_ports : (string * net) list;
  output_ports : (string * net) list;
  clock : net option;
}

let base_cell_name name =
  match String.index_opt name '@' with
  | None -> name
  | Some i -> String.sub name 0 i

let catalog_cell inst =
  let base = base_cell_name inst.cell_name in
  match Catalog.find base with
  | Some c -> c
  | None -> failwith ("Netlist: unknown cell " ^ inst.cell_name)

let is_flipflop inst = (catalog_cell inst).Cell.kind = Cell.Flipflop

module Builder = struct
  type netlist = t

  type b = {
    name : string;
    mutable next_net : int;
    mutable next_inst : int;
    mutable rev_instances : instance list;
    mutable rev_inputs : (string * net) list;
    mutable rev_outputs : (string * net) list;
    mutable clk : (string * net) option;
  }

  let create name =
    {
      name;
      next_net = 0;
      next_inst = 0;
      rev_instances = [];
      rev_inputs = [];
      rev_outputs = [];
      clk = None;
    }

  let fresh_net b =
    let n = b.next_net in
    b.next_net <- n + 1;
    n

  let input b port_name =
    let n = fresh_net b in
    b.rev_inputs <- (port_name, n) :: b.rev_inputs;
    n

  let output b port_name net = b.rev_outputs <- (port_name, net) :: b.rev_outputs

  let clock b port_name =
    match b.clk with
    | Some _ -> invalid_arg "Builder.clock: clock already declared"
    | None ->
      let n = fresh_net b in
      b.clk <- Some (port_name, n);
      n

  let add_instance b ?name cell_name ~inputs ~mk_outputs =
    let catalog_cell =
      match Catalog.find (base_cell_name cell_name) with
      | Some c -> c
      | None -> failwith ("Builder.cell: unknown cell " ^ cell_name)
    in
    let is_ff = catalog_cell.Cell.kind = Cell.Flipflop in
    let resolve pin =
      if is_ff && pin = "CK" then begin
        match b.clk with
        | Some (_, n) -> n
        | None -> failwith "Builder.cell: flip-flop before clock declaration"
      end
      else
        match List.assoc_opt pin inputs with
        | Some n -> n
        | None ->
          failwith
            (Printf.sprintf "Builder.cell: %s missing input pin %s" cell_name pin)
    in
    let conns_in = List.map (fun pin -> (pin, resolve pin)) catalog_cell.Cell.inputs in
    List.iter
      (fun (pin, _) ->
        if not (List.mem pin catalog_cell.Cell.inputs) then
          failwith (Printf.sprintf "Builder.cell: %s has no pin %s" cell_name pin))
      inputs;
    let conns_out = mk_outputs catalog_cell in
    let inst_name =
      match name with
      | Some n -> n
      | None ->
        b.next_inst <- b.next_inst + 1;
        Printf.sprintf "U%d" b.next_inst
    in
    b.rev_instances <-
      { inst_name; cell_name; inputs = conns_in; outputs = conns_out }
      :: b.rev_instances;
    List.map snd conns_out

  let cell b ?name cell_name ~inputs =
    add_instance b ?name cell_name ~inputs ~mk_outputs:(fun catalog_cell ->
        List.map (fun pin -> (pin, fresh_net b)) catalog_cell.Cell.outputs)

  let cell_into b ?name cell_name ~inputs ~outputs =
    let (_ : net list) =
      add_instance b ?name cell_name ~inputs ~mk_outputs:(fun catalog_cell ->
          List.map
            (fun pin ->
              match List.assoc_opt pin outputs with
              | Some n -> (pin, n)
              | None ->
                failwith
                  (Printf.sprintf "Builder.cell_into: %s missing output pin %s"
                     cell_name pin))
            catalog_cell.Cell.outputs)
    in
    ()

  let finish b =
    let instances = Array.of_list (List.rev b.rev_instances) in
    let names = Hashtbl.create (Array.length instances) in
    Array.iter
      (fun inst ->
        if Hashtbl.mem names inst.inst_name then
          failwith ("Builder.finish: duplicate instance name " ^ inst.inst_name);
        Hashtbl.add names inst.inst_name ())
      instances;
    let drivers = Array.make b.next_net 0 in
    Array.iter
      (fun inst ->
        List.iter (fun (_, n) -> drivers.(n) <- drivers.(n) + 1) inst.outputs)
      instances;
    List.iter
      (fun (_, n) -> drivers.(n) <- drivers.(n) + 1)
      (b.rev_inputs @ Option.to_list b.clk);
    Array.iteri
      (fun n count ->
        if count > 1 then
          failwith (Printf.sprintf "Builder.finish: net %d has %d drivers" n count))
      drivers;
    {
      design_name = b.name;
      n_nets = b.next_net;
      instances;
      input_ports = List.rev b.rev_inputs;
      output_ports = List.rev b.rev_outputs;
      clock = Option.map snd b.clk;
    }
end

let flipflops t =
  Array.to_list (Array.of_seq (Seq.filter is_flipflop (Array.to_seq t.instances)))

let combinational_order t =
  let driver = Hashtbl.create (t.n_nets * 2) in
  Array.iteri
    (fun idx inst ->
      List.iter (fun (_, n) -> Hashtbl.replace driver n idx) inst.outputs)
    t.instances;
  let comb = Array.map (fun inst -> not (is_flipflop inst)) t.instances in
  (* In-degree of each combinational instance counted over nets driven by
     other combinational instances. *)
  let indegree = Array.make (Array.length t.instances) 0 in
  let dependents = Array.make (Array.length t.instances) [] in
  Array.iteri
    (fun idx inst ->
      if comb.(idx) then
        List.iter
          (fun (_, n) ->
            match Hashtbl.find_opt driver n with
            | Some d when comb.(d) ->
              indegree.(idx) <- indegree.(idx) + 1;
              dependents.(d) <- idx :: dependents.(d)
            | Some _ | None -> ())
          inst.inputs)
    t.instances;
  let queue = Queue.create () in
  Array.iteri
    (fun idx _ -> if comb.(idx) && indegree.(idx) = 0 then Queue.add idx queue)
    t.instances;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let idx = Queue.pop queue in
    order := t.instances.(idx) :: !order;
    incr seen;
    List.iter
      (fun d ->
        indegree.(d) <- indegree.(d) - 1;
        if indegree.(d) = 0 then Queue.add d queue)
      dependents.(idx)
  done;
  let total_comb = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 comb in
  if !seen <> total_comb then
    failwith ("Netlist.combinational_order: combinational cycle in " ^ t.design_name);
  List.rev !order

let driver_of t net =
  let found = ref None in
  Array.iter
    (fun inst ->
      List.iter (fun (pin, n) -> if n = net then found := Some (inst, pin)) inst.outputs)
    t.instances;
  !found

let fanout_of t net =
  Array.fold_left
    (fun acc inst ->
      List.fold_left
        (fun acc (pin, n) -> if n = net then (inst, pin) :: acc else acc)
        acc inst.inputs)
    [] t.instances
  |> List.rev

let area t =
  Array.fold_left
    (fun acc inst -> acc +. (catalog_cell inst).Cell.area)
    0. t.instances

let count_cells t =
  let table = Hashtbl.create 32 in
  Array.iter
    (fun inst ->
      let base = base_cell_name inst.cell_name in
      Hashtbl.replace table base
        (1 + Option.value (Hashtbl.find_opt table base) ~default:0))
    t.instances;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let rename_cells f t =
  {
    t with
    instances =
      Array.map (fun inst -> { inst with cell_name = f inst }) t.instances;
  }

type state = bool array

let initial_state t = Array.make (List.length (flipflops t)) false

type compiled = {
  netlist : t;
  (* Combinational instances in topological order, with resolved logic and
     net indices. *)
  steps : (bool list -> bool list) array;
  step_inputs : int array array;
  step_outputs : int array array;
  ff_q : int array;  (* output net per flip-flop *)
  ff_d : int array;  (* D net per flip-flop *)
}

let compile t =
  let order = Array.of_list (combinational_order t) in
  let steps = Array.map (fun inst -> (catalog_cell inst).Cell.logic) order in
  let step_inputs =
    Array.map (fun inst -> Array.of_list (List.map snd inst.inputs)) order
  in
  let step_outputs =
    Array.map (fun inst -> Array.of_list (List.map snd inst.outputs)) order
  in
  let ffs = flipflops t in
  let ff_q =
    Array.of_list
      (List.map
         (fun inst ->
           match inst.outputs with
           | [ (_, q) ] -> q
           | [] | _ :: _ :: _ ->
             failwith "Netlist.compile: flip-flop must have exactly one output")
         ffs)
  in
  let ff_d =
    Array.of_list
      (List.map
         (fun inst ->
           match List.assoc_opt "D" inst.inputs with
           | Some d -> d
           | None -> failwith "Netlist.compile: flip-flop without D pin")
         ffs)
  in
  { netlist = t; steps; step_inputs; step_outputs; ff_q; ff_d }

let compiled_net_values c state ~inputs =
  let t = c.netlist in
  let values = Array.make t.n_nets false in
  List.iter
    (fun (port, net) ->
      match List.assoc_opt port inputs with
      | Some v -> values.(net) <- v
      | None -> failwith ("Netlist.eval: missing input " ^ port))
    t.input_ports;
  Array.iteri (fun i q -> values.(q) <- state.(i)) c.ff_q;
  Array.iteri
    (fun k logic ->
      let in_values =
        Array.to_list (Array.map (fun n -> values.(n)) c.step_inputs.(k))
      in
      let out_values = logic in_values in
      List.iteri
        (fun oi v -> values.(c.step_outputs.(k).(oi)) <- v)
        out_values)
    c.steps;
  values

let next_state_of_values c values = Array.map (fun d -> values.(d)) c.ff_d

let compiled_cycle c state ~inputs =
  let values = compiled_net_values c state ~inputs in
  let next = next_state_of_values c values in
  let outs =
    List.map (fun (port, n) -> (port, values.(n))) c.netlist.output_ports
  in
  (outs, next)

let net_values t state ~inputs = compiled_net_values (compile t) state ~inputs

let eval_cycle t state ~inputs = compiled_cycle (compile t) state ~inputs

let eval_combinational t ~inputs =
  if flipflops t <> [] then
    invalid_arg "Netlist.eval_combinational: netlist has flip-flops";
  fst (eval_cycle t (initial_state t) ~inputs)
