module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist
module Cell = Aging_cells.Cell
module Timing = Aging_sta.Timing
module Paths = Aging_sta.Paths

let family_variants library base =
  List.filter
    (fun (e : Library.entry) -> e.Library.cell.Cell.base = base)
    (Library.entries library)

let swap_cell netlist ~inst_name ~cell_name =
  Netlist.rename_cells
    (fun inst ->
      if inst.Netlist.inst_name = inst_name then cell_name
      else inst.Netlist.cell_name)
    netlist

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* Objective: worst endpoint first, then the total lateness of all
   endpoints inside a near-critical window below it.  The second component
   lets the optimizer fix parallel near-critical paths even when no single
   move improves the global period. *)
type cost = { period : float; lateness : float }

let eps = 1e-14

let cost_of ~threshold analysis =
  let period = Timing.min_period analysis in
  let lateness =
    List.fold_left
      (fun acc (e : Timing.endpoint_timing) ->
        let total = e.Timing.data_arrival +. e.Timing.setup in
        acc +. Float.max 0. (total -. threshold))
      0. (Timing.endpoints analysis)
  in
  { period; lateness }

let better a b =
  a.period < b.period -. eps
  || (a.period < b.period +. eps && a.lateness < b.lateness -. eps)

let resize ?(passes = 10) ?(max_trials = 250) ?config ~library netlist =
  (* Cell swaps preserve connectivity, so the topological structure is
     computed once for the whole optimization. *)
  let structure = Timing.prepare_structure netlist in
  let analyze nl = Timing.analyze ?config ~structure ~library nl in
  let trials = ref 0 in
  let one_pass nl =
    let analysis = analyze nl in
    let base_period = Timing.min_period analysis in
    (* Near-critical window: endpoints within 5 % of the worst. *)
    let threshold = base_period *. 0.95 in
    let base_cost = cost_of ~threshold analysis in
    let paths = take 8 (Paths.per_endpoint analysis) in
    let candidates =
      List.sort_uniq compare
        (List.concat_map
           (fun (p : Paths.t) ->
             List.map
               (fun (s : Paths.step) ->
                 ( s.Paths.inst.Netlist.inst_name,
                   (Netlist.catalog_cell s.Paths.inst).Cell.base ))
               p.Paths.steps)
           paths)
    in
    let try_instance (nl, current_cost) (inst_name, base) =
      if !trials >= max_trials then (nl, current_cost)
      else
      let current =
        let found = ref None in
        Array.iter
          (fun (inst : Netlist.instance) ->
            if inst.Netlist.inst_name = inst_name then
              found := Some inst.Netlist.cell_name)
          nl.Netlist.instances;
        !found
      in
      match current with
      | None -> (nl, current_cost)
      | Some current_cell ->
        List.fold_left
          (fun (nl, current_cost) (variant : Library.entry) ->
            if variant.Library.indexed_name = current_cell then
              (nl, current_cost)
            else begin
              let candidate =
                swap_cell nl ~inst_name ~cell_name:variant.Library.indexed_name
              in
              incr trials;
              let c = cost_of ~threshold (analyze candidate) in
              if better c current_cost then (candidate, c)
              else (nl, current_cost)
            end)
          (nl, current_cost) (family_variants library base)
    in
    let nl', cost' = List.fold_left try_instance (nl, base_cost) candidates in
    (nl', better cost' base_cost)
  in
  let rec loop nl remaining =
    if remaining = 0 || !trials >= max_trials then nl
    else begin
      trials := 0;
      let nl', improved = one_pass nl in
      if improved then loop nl' (remaining - 1) else nl'
    end
  in
  loop netlist passes

(* ----------------------- global variant sweep ----------------------- *)

let worst_arc_delay (entry : Library.entry) ~slew ~load =
  List.fold_left
    (fun acc (a : Library.arc) ->
      let d =
        Float.max
          (Library.delay_of a ~dir:Library.Rise ~slew ~load)
          (Library.delay_of a ~dir:Library.Fall ~slew ~load)
      in
      Float.max acc d)
    neg_infinity entry.Library.arcs

let total_input_cap (entry : Library.entry) =
  List.fold_left (fun acc (_, c) -> acc +. c) 0. entry.Library.pin_caps

(* Cost of presenting a bigger pin to the (unknown) upstream driver. *)
let upstream_resistance_estimate = 3e3

let variant_sweep ?(rounds = 3) ?config ~library netlist =
  let structure = Timing.prepare_structure netlist in
  let one_round nl =
    let analysis = Timing.analyze ?config ~structure ~library nl in
    let base_period = Timing.min_period analysis in
    let choose (inst : Netlist.instance) =
      let cell = Netlist.catalog_cell inst in
      if cell.Cell.kind <> Cell.Combinational || inst.Netlist.inputs = [] then
        inst.Netlist.cell_name
      else begin
        let slew =
          List.fold_left
            (fun acc (_, net) ->
              Float.max acc
                (Float.max
                   (Timing.slew_at analysis net Library.Rise)
                   (Timing.slew_at analysis net Library.Fall)))
            0. inst.Netlist.inputs
        in
        let load =
          List.fold_left
            (fun acc (_, net) -> Float.max acc (Timing.load_on analysis net))
            0. inst.Netlist.outputs
        in
        let score (e : Library.entry) =
          worst_arc_delay e ~slew ~load
          +. (upstream_resistance_estimate *. total_input_cap e)
        in
        let variants = family_variants library cell.Cell.base in
        match variants with
        | [] -> inst.Netlist.cell_name
        | first :: rest ->
          let best =
            List.fold_left
              (fun best e -> if score e < score best then e else best)
              first rest
          in
          best.Library.indexed_name
      end
    in
    let swept = Netlist.rename_cells choose nl in
    let new_period =
      Timing.min_period (Timing.analyze ?config ~structure ~library swept)
    in
    if new_period < base_period +. eps then (swept, new_period < base_period -. eps)
    else (nl, false)
  in
  let rec loop nl remaining =
    if remaining = 0 then nl
    else begin
      let nl', improved = one_round nl in
      if improved then loop nl' (remaining - 1) else nl'
    end
  in
  loop netlist rounds
