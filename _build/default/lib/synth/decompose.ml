module Netlist = Aging_netlist.Netlist
module Cell = Aging_cells.Cell

let arity_fail base = failwith ("Decompose: arity mismatch for " ^ base)

let and_all g = function
  | [] -> failwith "Decompose: empty conjunction"
  | x :: rest -> List.fold_left (Subject.and2 g) x rest

let or_all g = function
  | [] -> failwith "Decompose: empty disjunction"
  | x :: rest -> List.fold_left (Subject.or2 g) x rest

let cell_outputs g ~base inputs =
  match (base, inputs) with
  | "TIELO", [] -> [ Subject.constant g false ]
  | "TIEHI", [] -> [ Subject.constant g true ]
  | "INV", [ a ] -> [ Subject.inv g a ]
  | "BUF", [ a ] -> [ Subject.inv g (Subject.inv g a) ]
  | ("NAND2" | "NAND3" | "NAND4"), (_ :: _ :: _ as ins) ->
    [ Subject.inv g (and_all g ins) ]
  | ("NOR2" | "NOR3" | "NOR4"), (_ :: _ :: _ as ins) ->
    [ Subject.inv g (or_all g ins) ]
  | ("AND2" | "AND3" | "AND4"), (_ :: _ :: _ as ins) -> [ and_all g ins ]
  | ("OR2" | "OR3" | "OR4"), (_ :: _ :: _ as ins) -> [ or_all g ins ]
  | "AOI21", [ a1; a2; b ] ->
    [ Subject.inv g (Subject.or2 g (Subject.and2 g a1 a2) b) ]
  | "AOI22", [ a1; a2; b1; b2 ] ->
    [ Subject.inv g (Subject.or2 g (Subject.and2 g a1 a2) (Subject.and2 g b1 b2)) ]
  | "OAI21", [ a1; a2; b ] ->
    [ Subject.inv g (Subject.and2 g (Subject.or2 g a1 a2) b) ]
  | "OAI22", [ a1; a2; b1; b2 ] ->
    [ Subject.inv g (Subject.and2 g (Subject.or2 g a1 a2) (Subject.or2 g b1 b2)) ]
  | "AOI211", [ a1; a2; b; c ] ->
    [ Subject.inv g (or_all g [ Subject.and2 g a1 a2; b; c ]) ]
  | "OAI211", [ a1; a2; b; c ] ->
    [ Subject.inv g (and_all g [ Subject.or2 g a1 a2; b; c ]) ]
  | "XOR2", [ a; b ] -> [ Subject.xor2 g a b ]
  | "XNOR2", [ a; b ] -> [ Subject.inv g (Subject.xor2 g a b) ]
  | "MUX2", [ a; b; s ] -> [ Subject.mux g ~sel:s ~a0:a ~a1:b ]
  | "MUXI2", [ a; b; s ] -> [ Subject.inv g (Subject.mux g ~sel:s ~a0:a ~a1:b) ]
  | "FA", [ a; b; ci ] ->
    let ab = Subject.and2 g a b in
    let a_or_b = Subject.or2 g a b in
    let co = Subject.or2 g ab (Subject.and2 g ci a_or_b) in
    let sum = Subject.xor2 g (Subject.xor2 g a b) ci in
    [ co; sum ]
  | "HA", [ a; b ] -> [ Subject.and2 g a b; Subject.xor2 g a b ]
  | ( ( "TIELO" | "TIEHI"
      | "INV" | "BUF" | "NAND2" | "NAND3" | "NAND4" | "NOR2" | "NOR3" | "NOR4"
      | "AND2" | "AND3" | "AND4" | "OR2" | "OR3" | "OR4" | "AOI21" | "AOI22"
      | "OAI21" | "OAI22" | "AOI211" | "OAI211" | "XOR2" | "XNOR2" | "MUX2"
      | "MUXI2" | "FA" | "HA" ),
      _ ) ->
    arity_fail base
  | base, _ -> failwith ("Decompose: unknown cell family " ^ base)

type boundaries = { ff_cells : (string * string) list }

let of_netlist (netlist : Netlist.t) =
  let g = Subject.create () in
  let net_node = Hashtbl.create (netlist.Netlist.n_nets * 2) in
  List.iter
    (fun (port, net) ->
      Hashtbl.replace net_node net (Subject.source g ("in:" ^ port)))
    netlist.Netlist.input_ports;
  let ffs = Netlist.flipflops netlist in
  List.iter
    (fun (inst : Netlist.instance) ->
      List.iter
        (fun (_, qnet) ->
          Hashtbl.replace net_node qnet
            (Subject.source g ("ffq:" ^ inst.Netlist.inst_name)))
        inst.Netlist.outputs)
    ffs;
  let node_of net =
    match Hashtbl.find_opt net_node net with
    | Some n -> n
    | None -> failwith "Decompose: net read before being driven"
  in
  List.iter
    (fun (inst : Netlist.instance) ->
      let cell = Netlist.catalog_cell inst in
      let input_nodes = List.map (fun (_, n) -> node_of n) inst.Netlist.inputs in
      let outs = cell_outputs g ~base:cell.Cell.base input_nodes in
      List.iter2
        (fun (_, net) out_node -> Hashtbl.replace net_node net out_node)
        inst.Netlist.outputs outs)
    (Netlist.combinational_order netlist);
  List.iter
    (fun (port, net) -> Subject.set_output g ("out:" ^ port) (node_of net))
    netlist.Netlist.output_ports;
  List.iter
    (fun (inst : Netlist.instance) ->
      match List.assoc_opt "D" inst.Netlist.inputs with
      | Some dnet ->
        Subject.set_output g ("ffd:" ^ inst.Netlist.inst_name) (node_of dnet)
      | None -> failwith "Decompose: flip-flop without D pin")
    ffs;
  let boundaries =
    {
      ff_cells =
        List.map
          (fun (inst : Netlist.instance) ->
            (inst.Netlist.inst_name, Netlist.base_cell_name inst.Netlist.cell_name))
          ffs;
    }
  in
  (g, boundaries)
