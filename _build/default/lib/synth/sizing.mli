(** Timing-driven drive-strength selection.

    Greedy critical-path sizing: instances on the worst paths are tried at
    every drive variant the target library offers for their family, keeping
    a change whenever the full-design minimum period improves.  Because
    every evaluation is a complete STA pass against the target library,
    handing an aged library here sizes against aged delays. *)

val resize :
  ?passes:int ->
  ?max_trials:int ->
  ?config:Aging_sta.Timing.config ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  Aging_netlist.Netlist.t
(** Defaults: [passes = 10], [max_trials = 250] full timing evaluations
    per pass.  Stops early when a pass finds no improving move. *)

val variant_sweep :
  ?rounds:int ->
  ?config:Aging_sta.Timing.config ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  Aging_netlist.Netlist.t
(** Global gate selection at measured operating conditions: every
    combinational instance is swapped to the family variant whose worst arc
    delay at the instance's measured (input slew, output load) — plus a
    penalty for the extra input capacitance it presents to its driver — is
    smallest.  One STA pass scores a whole round, so the sweep scales to
    large designs; a round is kept only if the design's minimum period does
    not degrade.  Against a degradation-aware library this is precisely the
    paper's "select the most suitable gate/cell for each OPC" (Sec. 4.3).
    Defaults: [rounds = 3]. *)
