(** The complete synthesis flow (the stand-in for Design Compiler's
    [compile_ultra] with performance objective).

    [compile] runs: technology decomposition -> delay-oriented mapping
    against the target library -> high-fanout buffering -> greedy
    drive-strength sizing.  The target library is the only aging-related
    input: synthesizing with the degradation-aware (worst-case) library
    yields the paper's aging-optimized netlists, synthesizing with the
    initial library yields the traditional baseline (Sec. 4.3). *)

type options = {
  estimates : Mapper.estimate_config;
  sta_config : Aging_sta.Timing.config;
  sizing_passes : int;
  max_fanout : int;
  map_rounds : int;
      (** mapping rounds; rounds after the first re-map at the measured
          slews/loads of the previous implementation *)
  repair_slew : float option;
      (** max-transition limit handed to {!Slew_repair} (None disables) *)
}

val default_options : options

val compile :
  ?options:options ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  Aging_netlist.Netlist.t
(** Re-synthesizes the netlist against [library].  The result is
    functionally equivalent to the input (same ports, same flip-flop
    instances). *)

val min_period :
  ?config:Aging_sta.Timing.config ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  float
(** Convenience: critical period of a netlist under a library. *)
