(** High-fanout net buffering.

    Nets driving more than [max_fanout] input pins are split by inserting
    buffer cells, one per group of consumers (repeatedly, so very wide nets
    get a buffer tree).  The clock net is left untouched (ideal clock). *)

val buffer_fanout :
  ?max_fanout:int -> ?buf_cell:string -> Aging_netlist.Netlist.t ->
  Aging_netlist.Netlist.t
(** Defaults: [max_fanout = 8], [buf_cell = "BUF_X4"]. *)
