lib/synth/slew_repair.mli: Aging_liberty Aging_netlist Aging_sta
