lib/synth/buffering.mli: Aging_netlist
