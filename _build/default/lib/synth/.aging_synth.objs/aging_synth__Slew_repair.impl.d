lib/synth/slew_repair.ml: Aging_cells Aging_liberty Aging_netlist Aging_sta Array Float Hashtbl List Option Printf
