lib/synth/sizing.mli: Aging_liberty Aging_netlist Aging_sta
