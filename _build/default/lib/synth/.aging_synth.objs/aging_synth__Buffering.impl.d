lib/synth/buffering.ml: Aging_netlist Array Hashtbl List Printf
