lib/synth/decompose.mli: Aging_netlist Subject
