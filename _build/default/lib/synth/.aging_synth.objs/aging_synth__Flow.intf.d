lib/synth/flow.mli: Aging_liberty Aging_netlist Aging_sta Mapper
