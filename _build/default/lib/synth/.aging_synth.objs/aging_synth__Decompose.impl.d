lib/synth/decompose.ml: Aging_cells Aging_netlist Hashtbl List Subject
