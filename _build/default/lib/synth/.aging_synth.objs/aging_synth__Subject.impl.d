lib/synth/subject.ml: Array Hashtbl List
