lib/synth/mapper.ml: Aging_cells Aging_liberty Aging_netlist Array Decompose Float Hashtbl List Option String Subject
