lib/synth/subject.mli:
