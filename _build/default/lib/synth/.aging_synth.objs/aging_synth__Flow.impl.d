lib/synth/flow.ml: Aging_liberty Aging_netlist Aging_sta Array Buffering Decompose Float Mapper Sizing Slew_repair
