lib/synth/mapper.mli: Aging_liberty Aging_netlist Decompose Subject
