module Netlist = Aging_netlist.Netlist
module Timing = Aging_sta.Timing

type options = {
  estimates : Mapper.estimate_config;
  sta_config : Timing.config;
  sizing_passes : int;
  max_fanout : int;
  map_rounds : int;
  repair_slew : float option;
}

let default_options =
  {
    estimates = Mapper.default_estimates;
    sta_config = Timing.default_config;
    sizing_passes = 12;
    max_fanout = 16;
    map_rounds = 2;
    repair_slew = Some 2.5e-10;
  }

let compile ?(options = default_options) ~library (netlist : Netlist.t) =
  let subject, boundaries = Decompose.of_netlist netlist in
  let clock_name = "clk" in
  let one_round hints =
    let mapped =
      Mapper.map ~estimates:options.estimates ?hints ~library
        ~design_name:netlist.Netlist.design_name ~clock_name subject boundaries
    in
    let buffered =
      Buffering.buffer_fanout ~max_fanout:options.max_fanout
        mapped.Mapper.netlist
    in
    let swept =
      Sizing.variant_sweep ~config:options.sta_config ~library buffered
    in
    let sized =
      Sizing.resize ~passes:options.sizing_passes ~config:options.sta_config
        ~library swept
    in
    let repaired =
      match options.repair_slew with
      | None -> sized
      | Some slew_limit ->
        Slew_repair.repair ~slew_limit ~config:options.sta_config ~library sized
    in
    (repaired, mapped.Mapper.net_of_node)
  in
  (* Round 1 maps with static operating-condition estimates; later rounds
     re-map at the slews/loads measured on the previous implementation, so
     covering decisions are taken at real OPCs — where a degradation-aware
     library separates aging-tolerant from aging-sensitive cells. *)
  let extract_hints sized net_of_node =
    let analysis = Timing.analyze ~config:options.sta_config ~library sized in
    let n = Array.length net_of_node in
    let node_slew = Array.make n 0. and node_load = Array.make n 0. in
    Array.iteri
      (fun id net ->
        match net with
        | None -> ()
        | Some net ->
          node_slew.(id) <-
            Float.max
              (Timing.slew_at analysis net Aging_liberty.Library.Rise)
              (Timing.slew_at analysis net Aging_liberty.Library.Fall);
          node_load.(id) <- Timing.load_on analysis net)
      net_of_node;
    { Mapper.node_slew; node_load }
  in
  let rec rounds remaining best best_period hints =
    if remaining = 0 then best
    else begin
      let sized, net_of_node = one_round hints in
      let period =
        Timing.min_period (Timing.analyze ~config:options.sta_config ~library sized)
      in
      let best, best_period =
        if period < best_period then (sized, period) else (best, best_period)
      in
      if remaining = 1 then best
      else rounds (remaining - 1) best best_period
             (Some (extract_hints sized net_of_node))
    end
  in
  rounds (max 1 options.map_rounds) netlist infinity None

let min_period ?config ~library netlist =
  Timing.min_period (Timing.analyze ?config ~library netlist)

