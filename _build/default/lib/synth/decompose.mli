(** Technology decomposition: gate-level netlist -> subject graph.

    Every combinational catalog cell family has a structural NAND2/INV
    decomposition; flip-flops become sequential boundaries (their Q pins are
    subject sources named ["ffq:<instance>"], their D pins subject outputs
    named ["ffd:<instance>"]).  The same per-family decompositions drive
    pattern generation in {!Mapper}, so the mapper can always recover at
    least the original cells. *)

val cell_outputs :
  Subject.t -> base:string -> Subject.id list -> Subject.id list
(** [cell_outputs g ~base inputs] builds the decomposition of one cell
    family over the given input nodes and returns its output nodes (in cell
    pin order).  [base] is a family name with drive suffix stripped, e.g.
    ["NAND3"].
    @raise Failure on an unknown family or arity mismatch. *)

type boundaries = {
  ff_cells : (string * string) list;
      (** flip-flop instance name -> cell name, for reconstruction *)
}

val of_netlist : Aging_netlist.Netlist.t -> Subject.t * boundaries
(** Decomposes a netlist.  Subject sources are ["in:<port>"] and
    ["ffq:<instance>"]; outputs are ["out:<port>"] and ["ffd:<instance>"]. *)
