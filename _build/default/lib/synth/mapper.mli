(** Delay-oriented technology mapping (DP tree covering).

    Library cells are turned into NAND2/INV patterns (via the same
    decompositions as {!Decompose}); the subject graph is covered bottom-up,
    choosing at every node the match that minimizes the estimated arrival
    time.  Delay estimates come from the target library's NLDM tables — so
    handing the mapper a degradation-aware library makes every covering
    decision aging-conscious, which is exactly how the paper retrofits aging
    optimization into an unmodified synthesis flow (Sec. 4.3). *)

type estimate_config = {
  est_slew : float;        (** input slew assumed during covering [s] *)
  est_load_base : float;   (** intrinsic load estimate [F] *)
  est_load_fanout : float; (** additional load per fanout [F] *)
  slew_aware : bool;
      (** when false, delay estimates ignore the slew axis (ablation) *)
}

val default_estimates : estimate_config

type hints = {
  node_slew : float array;   (** measured transition per subject node [s] *)
  node_load : float array;   (** measured load per subject node [F] *)
}
(** Per-node operating-condition feedback from a previous mapping round
    (see {!Flow.compile}): with hints, covering decisions are taken at the
    OPCs the node actually experiences — which is where aged libraries
    differentiate cells (paper Sec. 4.3). *)

type result = {
  netlist : Aging_netlist.Netlist.t;
  net_of_node : Aging_netlist.Netlist.net option array;
      (** net implementing each subject node (indexed by node id), for
          extracting hints from a timing analysis of [netlist] *)
}

val map :
  ?estimates:estimate_config ->
  ?hints:hints ->
  library:Aging_liberty.Library.t ->
  design_name:string ->
  clock_name:string ->
  Subject.t ->
  Decompose.boundaries ->
  result
(** Covers the subject graph and reconstructs a netlist (flip-flops
    reinstated from the boundaries).
    @raise Failure if some live node cannot be covered (the library must
    contain at least NAND2 and INV). *)
