(** Max-transition repair against the target library.

    Nets whose transition time (as reported by STA {e against the target
    library}) exceeds a limit get their driver upsized, or a buffer
    inserted when the driver is already at the strongest available drive.
    Because aged libraries report larger transitions — and aged cell delays
    are far more slew-sensitive (Fig. 1) — running this pass against a
    degradation-aware library repairs precisely the spots where aging
    hurts, while the same pass against the fresh library leaves them
    untouched.  This mirrors how an unmodified synthesis tool's
    max_transition fixing becomes an aging optimization once it is fed the
    degradation-aware library. *)

val repair :
  ?slew_limit:float ->
  ?max_iterations:int ->
  ?config:Aging_sta.Timing.config ->
  library:Aging_liberty.Library.t ->
  Aging_netlist.Netlist.t ->
  Aging_netlist.Netlist.t
(** Defaults: [slew_limit = 100 ps], [max_iterations = 5].  Keeps a change
    only if it does not worsen the design's minimum period. *)
