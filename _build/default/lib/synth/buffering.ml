module Netlist = Aging_netlist.Netlist

let chunks k xs =
  let rec go current count acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = k then go [ x ] 1 (List.rev current :: acc) rest
      else go (x :: current) (count + 1) acc rest
  in
  go [] 0 [] xs

let buffer_fanout ?(max_fanout = 8) ?(buf_cell = "BUF_X4") (t : Netlist.t) =
  let next_inst = ref 0 in
  let fresh_name () =
    incr next_inst;
    Printf.sprintf "FBUF%d" !next_inst
  in
  let rec pass (t : Netlist.t) =
    (* Consumers per net: (instance index, pin). *)
    let readers = Array.make t.Netlist.n_nets [] in
    Array.iteri
      (fun idx (inst : Netlist.instance) ->
        List.iter
          (fun (pin, net) -> readers.(net) <- (idx, pin) :: readers.(net))
          inst.Netlist.inputs)
      t.Netlist.instances;
    let is_clock net = t.Netlist.clock = Some net in
    let offender = ref None in
    Array.iteri
      (fun net consumers ->
        if
          !offender = None
          && (not (is_clock net))
          && List.length consumers > max_fanout
        then offender := Some (net, List.rev consumers))
      readers;
    match !offender with
    | None -> t
    | Some (net, consumers) ->
      (* Buffer every consumer group: the offending net then only drives
         the buffers, so the per-pass fanout strictly shrinks and wide nets
         converge to a buffer tree. *)
      let to_buffer = chunks max_fanout consumers in
      let n_nets = ref t.Netlist.n_nets in
      let rewires = Hashtbl.create 16 in
      let new_instances = ref [] in
      List.iter
        (fun group ->
          let buf_net = !n_nets in
          incr n_nets;
          new_instances :=
            {
              Netlist.inst_name = fresh_name ();
              cell_name = buf_cell;
              inputs = [ ("A", net) ];
              outputs = [ ("Y", buf_net) ];
            }
            :: !new_instances;
          List.iter
            (fun (idx, pin) -> Hashtbl.replace rewires (idx, pin) buf_net)
            group)
        to_buffer;
      let instances =
        Array.mapi
          (fun idx (inst : Netlist.instance) ->
            {
              inst with
              Netlist.inputs =
                List.map
                  (fun (pin, n) ->
                    match Hashtbl.find_opt rewires (idx, pin) with
                    | Some n' -> (pin, n')
                    | None -> (pin, n))
                  inst.Netlist.inputs;
            })
          t.Netlist.instances
      in
      pass
        {
          t with
          Netlist.n_nets = !n_nets;
          instances =
            Array.append instances (Array.of_list (List.rev !new_instances));
        }
  in
  pass t
