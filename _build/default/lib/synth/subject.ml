type id = int

type node = Source of string | Const of bool | Nand of id * id | Inv of id

type t = {
  mutable nodes : node array;
  mutable n : int;
  hash : (node, id) Hashtbl.t;
  source_ids : (string, id) Hashtbl.t;
  mutable rev_outputs : (string * id) list;
}

let create () =
  {
    nodes = Array.make 1024 (Const false);
    n = 0;
    hash = Hashtbl.create 1024;
    source_ids = Hashtbl.create 64;
    rev_outputs = [];
  }

let node t i =
  if i < 0 || i >= t.n then invalid_arg "Subject.node: bad id";
  t.nodes.(i)

let size t = t.n

let push t nd =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) (Const false) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  t.nodes.(t.n) <- nd;
  t.n <- t.n + 1;
  t.n - 1

let hashed t nd =
  match Hashtbl.find_opt t.hash nd with
  | Some i -> i
  | None ->
    let i = push t nd in
    Hashtbl.replace t.hash nd i;
    i

let source t name =
  match Hashtbl.find_opt t.source_ids name with
  | Some i -> i
  | None ->
    let i = push t (Source name) in
    Hashtbl.replace t.source_ids name i;
    i

let constant t b = hashed t (Const b)

let rec inv t x =
  match node t x with
  | Const b -> constant t (not b)
  | Inv y -> y
  | Source _ | Nand _ -> hashed t (Inv x)

and nand t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  match (node t a, node t b) with
  | Const false, _ | _, Const false -> constant t true
  | Const true, _ -> inv t b
  | _, Const true -> inv t a
  | (Source _ | Nand _ | Inv _), _ when a = b -> inv t a
  | (Source _ | Nand _ | Inv _), (Source _ | Nand _ | Inv _) ->
    hashed t (Nand (a, b))

let and2 t a b = inv t (nand t a b)
let or2 t a b = nand t (inv t a) (inv t b)

let xor2 t a b =
  let nab = nand t a b in
  nand t (nand t a nab) (nand t b nab)

let mux t ~sel ~a0 ~a1 =
  nand t (nand t a0 (inv t sel)) (nand t a1 sel)

let set_output t name i = t.rev_outputs <- (name, i) :: t.rev_outputs

let outputs t = List.rev t.rev_outputs

let sources t =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.source_ids []
  |> List.sort compare

let live t =
  let seen = Array.make t.n false in
  let rec mark i =
    if not seen.(i) then begin
      seen.(i) <- true;
      match t.nodes.(i) with
      | Source _ | Const _ -> ()
      | Inv a -> mark a
      | Nand (a, b) ->
        mark a;
        mark b
    end
  in
  List.iter (fun (_, i) -> mark i) t.rev_outputs;
  seen

let fanout_counts t =
  let counts = Array.make t.n 0 in
  let seen = live t in
  for i = 0 to t.n - 1 do
    if seen.(i) then begin
      match t.nodes.(i) with
      | Source _ | Const _ -> ()
      | Inv a -> counts.(a) <- counts.(a) + 1
      | Nand (a, b) ->
        counts.(a) <- counts.(a) + 1;
        counts.(b) <- counts.(b) + 1
    end
  done;
  List.iter (fun (_, i) -> counts.(i) <- counts.(i) + 1) t.rev_outputs;
  counts

let topological t =
  (* Ids are created children-first, so ascending id order is topological;
     keep only live nodes. *)
  let seen = live t in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if seen.(i) then i :: acc else acc)
  in
  collect (t.n - 1) []

let eval t env root =
  let memo = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt memo i with
    | Some v -> v
    | None ->
      let v =
        match node t i with
        | Source name -> env name
        | Const b -> b
        | Inv a -> not (go a)
        | Nand (a, b) -> not (go a && go b)
      in
      Hashtbl.replace memo i v;
      v
  in
  go root
