(** Technology-independent subject graph (NAND2/INV form).

    Logic is decomposed into 2-input NANDs and inverters with structural
    hashing (common-subexpression elimination) and local simplification;
    technology mapping then covers this graph with library cells.  Sources
    are named: primary inputs and flip-flop Q pins. *)

type t
type id = int

type node =
  | Source of string
  | Const of bool
  | Nand of id * id
  | Inv of id

val create : unit -> t

val source : t -> string -> id
(** Returns the existing node when the name was already declared. *)

val constant : t -> bool -> id

val nand : t -> id -> id -> id
(** Structurally hashed; simplifies [nand x x = inv x] and constant
    operands. *)

val inv : t -> id -> id
(** Simplifies double inversion and constants. *)

val and2 : t -> id -> id -> id
val or2 : t -> id -> id -> id
val xor2 : t -> id -> id -> id
val mux : t -> sel:id -> a0:id -> a1:id -> id
(** [mux ~sel ~a0 ~a1] is [a0] when [sel] is false. *)

val set_output : t -> string -> id -> unit
(** Registers a named output (primary output or flip-flop D). *)

val node : t -> id -> node
val size : t -> int
val outputs : t -> (string * id) list
val sources : t -> (string * id) list

val fanout_counts : t -> int array
(** Structural fanout of every node (outputs add one). *)

val topological : t -> id list
(** All live nodes (reachable from outputs), sources first. *)

val eval : t -> (string -> bool) -> id -> bool
(** Evaluates a node under a source assignment (memoised per call). *)
