module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist
module Cell = Aging_cells.Cell

type estimate_config = {
  est_slew : float;
  est_load_base : float;
  est_load_fanout : float;
  slew_aware : bool;
}

let default_estimates =
  {
    est_slew = 4e-11;
    est_load_base = 1e-15;
    est_load_fanout = 1e-15;
    slew_aware = true;
  }

(* A mappable pattern: the cell's NAND2/INV decomposition as a mini subject
   graph, with its sources named after the cell pins. *)
type pattern = {
  entry : Library.entry;
  graph : Subject.t;
  root : Subject.id;
  pin_sources : (string * Subject.id) list;
  pattern_fanout : int array;
}

let pattern_of_entry (entry : Library.entry) =
  let cell = entry.Library.cell in
  if cell.Cell.kind <> Cell.Combinational then None
  else
    match cell.Cell.outputs with
    | [ _ ] -> begin
      let g = Subject.create () in
      let pins = List.map (fun p -> (p, Subject.source g p)) cell.Cell.inputs in
      match Decompose.cell_outputs g ~base:cell.Cell.base (List.map snd pins) with
      | exception Failure _ -> None
      | [ root ] -> begin
        match Subject.node g root with
        | Subject.Source _ | Subject.Const _ ->
          None (* degenerate (e.g. BUF simplifies away) *)
        | Subject.Nand _ | Subject.Inv _ ->
          Subject.set_output g "root" root;
          Some
            { entry; graph = g; root; pin_sources = pins;
              pattern_fanout = Subject.fanout_counts g }
      end
      | _ -> None
    end
    | _ -> None

(* Structural match of [pattern] rooted at subject node [n]; bindings map
   pattern ids to subject ids.  Pattern-internal nodes must be absorbed
   exactly: their subject counterpart's fanout must equal their fanout
   within the pattern. *)
let try_match subject fanout p n =
  let is_internal pid =
    pid <> p.root
    &&
    match Subject.node p.graph pid with
    | Subject.Source _ -> false
    | Subject.Const _ | Subject.Nand _ | Subject.Inv _ -> true
  in
  let rec go pid sid bind =
    match List.assoc_opt pid bind with
    | Some sid' -> if sid' = sid then Some bind else None
    | None ->
      let bind = (pid, sid) :: bind in
      begin
        match (Subject.node p.graph pid, Subject.node subject sid) with
        | Subject.Source _, _ -> Some bind
        | Subject.Const b, Subject.Const b' -> if b = b' then Some bind else None
        | Subject.Const _, (Subject.Source _ | Subject.Nand _ | Subject.Inv _) ->
          None
        | Subject.Inv pa, Subject.Inv sa -> descend pa sa bind
        | Subject.Inv _, (Subject.Source _ | Subject.Const _ | Subject.Nand _) ->
          None
        | Subject.Nand (pa, pb), Subject.Nand (sa, sb) -> begin
          match descend2 pa sa pb sb bind with
          | Some r -> Some r
          | None -> descend2 pa sb pb sa bind
        end
        | Subject.Nand _, (Subject.Source _ | Subject.Const _ | Subject.Inv _)
          ->
          None
      end
  and descend pa sa bind =
    if is_internal pa && fanout.(sa) <> p.pattern_fanout.(pa) then None
    else go pa sa bind
  and descend2 pa sa pb sb bind =
    match descend pa sa bind with
    | Some bind -> descend pb sb bind
    | None -> None
  in
  match go p.root n [] with
  | None -> None
  | Some bind ->
    (* Resolve each cell pin to its bound subject node. *)
    let leaves =
      List.map
        (fun (pin, src_id) ->
          match List.assoc_opt src_id bind with
          | Some sid -> Some (pin, sid)
          | None -> None)
        p.pin_sources
    in
    if List.for_all Option.is_some leaves then
      Some (List.map Option.get leaves)
    else None

(* Per-pin delay/slew estimate helpers. *)
let pin_arc (entry : Library.entry) pin =
  let to_pin =
    match entry.Library.cell.Cell.outputs with
    | [ o ] -> o
    | [] | _ :: _ :: _ -> failwith "Mapper: pattern cell must be single-output"
  in
  Library.arc_of entry ~from_pin:pin ~to_pin

(* Penalty modelling the extra load a big input pin puts on its driver. *)
let driver_resistance_estimate = 4e3

type hints = { node_slew : float array; node_load : float array }

type result = {
  netlist : Netlist.t;
  net_of_node : Netlist.net option array;
}

let map ?(estimates = default_estimates) ?hints ~library ~design_name
    ~clock_name subject (boundaries : Decompose.boundaries) =
  let patterns =
    List.filter_map pattern_of_entry (Library.entries library)
  in
  if patterns = [] then failwith "Mapper.map: no mappable cells in library";
  let fanout = Subject.fanout_counts subject in
  let order = Subject.topological subject in
  let n = Subject.size subject in
  let arrival = Array.make n infinity in
  let out_slew = Array.make n estimates.est_slew in
  let choice = Array.make n None in
  let hint_load node_id =
    match hints with
    | Some h when h.node_load.(node_id) > 0. -> Some h.node_load.(node_id)
    | Some _ | None -> None
  in
  let hint_slew node_id =
    match hints with
    | Some h when h.node_slew.(node_id) > 0. -> Some h.node_slew.(node_id)
    | Some _ | None -> None
  in
  let eval_candidate node_id p =
    match try_match subject fanout p node_id with
    | None -> None
    | Some leaves ->
      let load =
        match hint_load node_id with
        | Some l -> l
        | None ->
          estimates.est_load_base
          +. (estimates.est_load_fanout *. float_of_int (max 1 fanout.(node_id)))
      in
      let rec fold_pins acc_arr acc_slew = function
        | [] -> Some (acc_arr, acc_slew)
        | (pin, leaf) :: rest -> begin
          match pin_arc p.entry pin with
          | None -> None (* non-sensitizable pin; cannot estimate *)
          | Some arc ->
            let slew_in =
              match hint_slew leaf with
              | Some s -> s
              | None ->
                if estimates.slew_aware then out_slew.(leaf)
                else estimates.est_slew
            in
            let d =
              Float.max
                (Library.delay_of arc ~dir:Library.Rise ~slew:slew_in ~load)
                (Library.delay_of arc ~dir:Library.Fall ~slew:slew_in ~load)
            in
            let s =
              Float.max
                (Library.out_slew_of arc ~dir:Library.Rise ~slew:slew_in ~load)
                (Library.out_slew_of arc ~dir:Library.Fall ~slew:slew_in ~load)
            in
            let cap_penalty =
              driver_resistance_estimate *. Library.input_cap p.entry pin
            in
            fold_pins
              (Float.max acc_arr (arrival.(leaf) +. d +. cap_penalty))
              (Float.max acc_slew s) rest
        end
      in
      Option.map
        (fun (arr, slw) -> (arr, slw, leaves))
        (fold_pins neg_infinity 0. leaves)
  in
  List.iter
    (fun node_id ->
      match Subject.node subject node_id with
      | Subject.Source _ | Subject.Const _ ->
        arrival.(node_id) <- 0.;
        out_slew.(node_id) <- estimates.est_slew
      | Subject.Nand _ | Subject.Inv _ ->
        List.iter
          (fun p ->
            match eval_candidate node_id p with
            | Some (arr, slw, leaves) when arr < arrival.(node_id) ->
              arrival.(node_id) <- arr;
              out_slew.(node_id) <- slw;
              choice.(node_id) <- Some (p, leaves)
            | Some _ | None -> ())
          patterns;
        if choice.(node_id) = None then
          failwith "Mapper.map: uncoverable node (library lacks NAND2/INV?)")
    order;
  (* Cover from the outputs, reconstructing a netlist. *)
  let b = Netlist.Builder.create design_name in
  let has_ffs = boundaries.Decompose.ff_cells <> [] in
  if has_ffs then ignore (Netlist.Builder.clock b clock_name : Netlist.net);
  let net_of = Hashtbl.create 1024 in
  List.iter
    (fun (name, id) ->
      match name with
      | _ when String.length name > 3 && String.sub name 0 3 = "in:" ->
        let port = String.sub name 3 (String.length name - 3) in
        Hashtbl.replace net_of id (Netlist.Builder.input b port)
      | _ -> ())
    (Subject.sources subject);
  let ff_q_nets =
    List.map
      (fun (inst_name, cell_name) ->
        let qnet = Netlist.Builder.fresh_net b in
        (inst_name, (cell_name, qnet)))
      boundaries.Decompose.ff_cells
  in
  List.iter
    (fun (name, id) ->
      match name with
      | _ when String.length name > 4 && String.sub name 0 4 = "ffq:" ->
        let inst_name = String.sub name 4 (String.length name - 4) in
        begin
          match List.assoc_opt inst_name ff_q_nets with
          | Some (_, qnet) -> Hashtbl.replace net_of id qnet
          | None -> failwith ("Mapper.map: unknown flip-flop " ^ inst_name)
        end
      | _ -> ())
    (Subject.sources subject);
  let rec cover id =
    match Hashtbl.find_opt net_of id with
    | Some net -> net
    | None -> begin
      match Subject.node subject id with
      | Subject.Source name -> failwith ("Mapper.map: unbound source " ^ name)
      | Subject.Const _ ->
        failwith "Mapper.map: constant outputs are not supported"
      | Subject.Nand _ | Subject.Inv _ -> begin
        match choice.(id) with
        | None -> failwith "Mapper.map: covering an unchosen node"
        | Some (p, leaves) ->
          let inputs = List.map (fun (pin, leaf) -> (pin, cover leaf)) leaves in
          let net =
            match
              Netlist.Builder.cell b p.entry.Library.indexed_name ~inputs
            with
            | [ net ] -> net
            | [] | _ :: _ :: _ ->
              failwith "Mapper.map: pattern cell must be single-output"
          in
          Hashtbl.replace net_of id net;
          net
      end
    end
  in
  List.iter
    (fun (name, id) ->
      if String.length name > 4 && String.sub name 0 4 = "out:" then begin
        let port = String.sub name 4 (String.length name - 4) in
        Netlist.Builder.output b port (cover id)
      end)
    (Subject.outputs subject);
  List.iter
    (fun (name, id) ->
      if String.length name > 4 && String.sub name 0 4 = "ffd:" then begin
        let inst_name = String.sub name 4 (String.length name - 4) in
        match List.assoc_opt inst_name ff_q_nets with
        | Some (cell_name, qnet) ->
          (* Prefix flip-flop names so they can never collide with the
             freshly numbered combinational instances. *)
          Netlist.Builder.cell_into b ~name:("FF_" ^ inst_name) cell_name
            ~inputs:[ ("D", cover id) ]
            ~outputs:[ ("Q", qnet) ]
        | None -> failwith ("Mapper.map: unknown flip-flop output " ^ inst_name)
      end)
    (Subject.outputs subject);
  let netlist = Netlist.Builder.finish b in
  let net_of_node =
    Array.init n (fun id -> Hashtbl.find_opt net_of id)
  in
  { netlist; net_of_node }
