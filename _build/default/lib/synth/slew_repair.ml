module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist
module Cell = Aging_cells.Cell
module Timing = Aging_sta.Timing

let default_slew_limit = 1e-10

let worst_slew analysis net =
  Float.max
    (Timing.slew_at analysis net Library.Rise)
    (Timing.slew_at analysis net Library.Fall)

(* Upsize: next stronger drive variant in the library, preserving any
   corner index suffix semantics by swapping the whole cell name. *)
let upsized library (inst : Netlist.instance) =
  let cell = Netlist.catalog_cell inst in
  let stronger =
    List.filter
      (fun (e : Library.entry) ->
        e.Library.cell.Cell.base = cell.Cell.base
        && e.Library.cell.Cell.drive > cell.Cell.drive)
      (Library.entries library)
  in
  match
    List.sort
      (fun (a : Library.entry) b ->
        compare a.Library.cell.Cell.drive b.Library.cell.Cell.drive)
      stronger
  with
  | [] -> None
  | e :: _ -> Some e.Library.indexed_name

let insert_buffer (t : Netlist.t) ~net ~buf_cell ~inst_name =
  let buf_net = t.Netlist.n_nets in
  let instances =
    Array.map
      (fun (inst : Netlist.instance) ->
        {
          inst with
          Netlist.inputs =
            List.map
              (fun (pin, n) -> (pin, if n = net then buf_net else n))
              inst.Netlist.inputs;
        })
      t.Netlist.instances
  in
  let buffer =
    {
      Netlist.inst_name;
      cell_name = buf_cell;
      inputs = [ ("A", net) ];
      outputs = [ ("Y", buf_net) ];
    }
  in
  {
    t with
    Netlist.n_nets = t.Netlist.n_nets + 1;
    instances = Array.append instances [| buffer |];
  }

let repair ?(slew_limit = default_slew_limit) ?(max_iterations = 5) ?config
    ~library netlist =
  let next_buf = ref 0 in
  let rec iterate netlist remaining =
    if remaining = 0 then netlist
    else begin
      let analysis = Timing.analyze ?config ~library netlist in
      let base_period = Timing.min_period analysis in
      (* Driver map: net -> instance index. *)
      let driver = Hashtbl.create 256 in
      Array.iteri
        (fun idx (inst : Netlist.instance) ->
          List.iter (fun (_, n) -> Hashtbl.replace driver n idx) inst.Netlist.outputs)
        netlist.Netlist.instances;
      let offenders = ref [] in
      Hashtbl.iter
        (fun net _ ->
          let s = worst_slew analysis net in
          if s > slew_limit then offenders := (s, net) :: !offenders)
        driver;
      let offenders =
        List.sort (fun (a, _) (b, _) -> compare b a) !offenders
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      let offenders = take 20 offenders in
      if offenders = [] then netlist
      else begin
        let improved = ref false in
        let current = ref netlist in
        let current_period = ref base_period in
        List.iter
          (fun (_, net) ->
            match Hashtbl.find_opt driver net with
            | None -> ()
            | Some idx ->
              let inst = netlist.Netlist.instances.(idx) in
              let candidate =
                match upsized library inst with
                | Some stronger ->
                  Some
                    (Netlist.rename_cells
                       (fun i ->
                         if i.Netlist.inst_name = inst.Netlist.inst_name then
                           stronger
                         else i.Netlist.cell_name)
                       !current)
                | None ->
                  incr next_buf;
                  Some
                    (insert_buffer !current ~net ~buf_cell:"BUF_X4"
                       ~inst_name:(Printf.sprintf "SRBUF%d" !next_buf))
              in
              Option.iter
                (fun cand ->
                  let p =
                    Timing.min_period (Timing.analyze ?config ~library cand)
                  in
                  if p <= !current_period +. 1e-13 then begin
                    current := cand;
                    current_period := p;
                    improved := true
                  end)
                candidate)
          offenders;
        if !improved then iterate !current (remaining - 1) else !current
      end
    end
  in
  iterate netlist max_iterations
