type t = { times : float array; values : float array }
type direction = Rising | Falling

let value_at w time =
  let n = Array.length w.times in
  if n = 0 then invalid_arg "Waveform.value_at: empty waveform";
  if time <= w.times.(0) then w.values.(0)
  else if time >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    let i = Aging_util.Interp.bracket w.times time in
    let t0 = w.times.(i) and t1 = w.times.(i + 1) in
    let f = (time -. t0) /. (t1 -. t0) in
    w.values.(i) +. (f *. (w.values.(i + 1) -. w.values.(i)))
  end

let crossing_at w i level =
  let v0 = w.values.(i) and v1 = w.values.(i + 1) in
  let t0 = w.times.(i) and t1 = w.times.(i + 1) in
  t0 +. ((level -. v0) /. (v1 -. v0) *. (t1 -. t0))

let crosses w i level = function
  | Rising -> w.values.(i) < level && w.values.(i + 1) >= level
  | Falling -> w.values.(i) > level && w.values.(i + 1) <= level

let cross w ~level ~direction =
  let n = Array.length w.times in
  let rec go i =
    if i >= n - 1 then None
    else if crosses w i level direction then Some (crossing_at w i level)
    else go (i + 1)
  in
  go 0

let cross_last w ~level ~direction =
  let n = Array.length w.times in
  let rec go i =
    if i < 0 then None
    else if crosses w i level direction then Some (crossing_at w i level)
    else go (i - 1)
  in
  go (n - 2)

let slew w ~direction ~vdd =
  let lo = 0.2 *. vdd and hi = 0.8 *. vdd in
  match direction with
  | Rising -> begin
    (* Anchor on the last 80% crossing, then find the matching 20% crossing
       before it so a single edge is measured. *)
    match cross_last w ~level:hi ~direction with
    | None -> None
    | Some t_hi -> begin
      match cross_last w ~level:lo ~direction with
      | Some t_lo when t_lo <= t_hi -> Some (t_hi -. t_lo)
      | Some _ | None -> None
    end
  end
  | Falling -> begin
    match cross_last w ~level:lo ~direction with
    | None -> None
    | Some t_lo -> begin
      match cross_last w ~level:hi ~direction with
      | Some t_hi when t_hi <= t_lo -> Some (t_lo -. t_hi)
      | Some _ | None -> None
    end
  end

let delay ~input ~output ~out_direction ~vdd =
  let mid = 0.5 *. vdd in
  let in_dir =
    (* Prefer the opposite direction (inverting stage); fall back to the same
       direction for non-inverting cells. *)
    let opposite = match out_direction with Rising -> Falling | Falling -> Rising in
    match cross_last input ~level:mid ~direction:opposite with
    | Some _ -> opposite
    | None -> out_direction
  in
  match
    ( cross_last input ~level:mid ~direction:in_dir,
      cross_last output ~level:mid ~direction:out_direction )
  with
  | Some t_in, Some t_out -> Some (t_out -. t_in)
  | None, _ | _, None -> None

let settled w ~vdd ~tolerance =
  let n = Array.length w.values in
  n > 0
  &&
  let v = w.values.(n - 1) in
  Float.abs v < tolerance || Float.abs (v -. vdd) < tolerance
