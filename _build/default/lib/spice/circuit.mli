(** Transistor-level circuit netlists for the transient engine.

    Nodes are small integers; node {!gnd} is the 0 V rail and node {!vdd}
    the supply rail.  Capacitors are lumped to ground (internal coupling
    capacitance is folded into the grounded node capacitance, a standard
    simplification for gate-delay characterization).  Adding a MOSFET
    automatically attaches its gate / drain / source parasitic capacitances
    to the corresponding nodes, so cell topologies stay declarative. *)

type node = int

val gnd : node
val vdd : node

type mos = {
  dev : Aging_physics.Device.params;
  g : node;
  d : node;
  s : node;
}

type res = { a : node; b : node; ohms : float }

type t
(** Mutable circuit under construction. *)

val create : unit -> t
(** Fresh circuit containing only the two rails. *)

val fresh_node : ?name:string -> t -> node
(** Allocates a new node. *)

val node_count : t -> int
(** Number of nodes allocated so far (including the rails). *)

val add_mos : t -> dev:Aging_physics.Device.params -> g:node -> d:node -> s:node -> unit
(** Adds a transistor and its terminal parasitics. *)

val add_cap : t -> node -> float -> unit
(** Adds an explicit grounded capacitance [F] (accumulates). *)

val add_res : t -> a:node -> b:node -> ohms:float -> unit
(** Adds a resistor.  @raise Invalid_argument if [ohms <= 0]. *)

val map_devices :
  (Aging_physics.Device.params -> Aging_physics.Device.params) -> t -> t
(** A copy of the circuit with every transistor's parameters transformed
    (used to produce the aged twin of a cell netlist).  Parasitic node
    capacitances are rebuilt from the transformed devices. *)

val mosfets : t -> mos list
val resistors : t -> res list

val capacitance : t -> node -> float
(** Total grounded capacitance on a node [F] (0 if none). *)

val node_name : t -> node -> string
(** Diagnostic name ("gnd", "vdd", "n3" or the registered name). *)

val find_node : t -> string -> node option
(** Looks a node up by registered name. *)
