lib/spice/engine.ml: Aging_physics Array Circuit Float List Mosfet Waveform
