lib/spice/stimulus.mli:
