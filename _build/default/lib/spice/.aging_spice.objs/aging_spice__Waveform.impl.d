lib/spice/waveform.ml: Aging_util Array Float
