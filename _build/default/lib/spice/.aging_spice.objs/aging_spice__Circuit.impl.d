lib/spice/circuit.ml: Aging_physics Hashtbl List Option Printf
