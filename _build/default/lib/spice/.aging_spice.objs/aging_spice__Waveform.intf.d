lib/spice/waveform.mli:
