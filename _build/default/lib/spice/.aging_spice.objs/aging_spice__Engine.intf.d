lib/spice/engine.mli: Circuit Stimulus Waveform
