lib/spice/mosfet.mli: Aging_physics
