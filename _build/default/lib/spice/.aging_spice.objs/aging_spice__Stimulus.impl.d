lib/spice/stimulus.ml: Aging_physics
