lib/spice/circuit.mli: Aging_physics
