lib/spice/mosfet.ml: Aging_physics
