(** Alpha-power-law MOSFET current equations.

    Substitutes for BSIM4: a Sakurai-Newton alpha-power model with triode /
    saturation regions, channel-length modulation and a continuous
    subthreshold tail.  Mobility enters the drive current linearly and the
    threshold shift reduces the overdrive, which is exactly the coupling the
    paper exploits (Eq. 1: delay ∝ 1/Id, Id ≈ mu/2 (Vdd − Vth − ΔVth)^2),
    so aged devices slow down in the same first-order way as in HSPICE. *)

val thermal_voltage : float
(** kT/q at the nominal 350 K [V]. *)

val channel_current : Aging_physics.Device.params -> vg:float -> vd:float -> vs:float -> float
(** [channel_current dev ~vg ~vd ~vs] is the conventional current flowing
    from the drain terminal to the source terminal through the channel [A]
    (positive when a conducting nMOS has [vd > vs]).  Terminal symmetry
    (drain/source swap) and pMOS polarity are handled internally, so the
    caller can wire the device by position and forget about operating
    region. *)

val saturation_current : Aging_physics.Device.params -> vov:float -> float
(** Saturation current at overdrive [vov] (no channel-length modulation);
    0 for non-positive overdrive.  Exposed for calibration and tests. *)
