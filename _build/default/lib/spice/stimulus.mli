(** Input waveforms for transient analysis.

    Slews follow the library convention used throughout this project: a slew
    [s] is the 20 %-80 % transition time, so a full-swing linear ramp lasts
    [s / 0.6]. *)

type t = float -> float
(** Voltage as a function of time [s -> V]. *)

val constant : float -> t

val ramp :
  ?v_low:float -> ?v_high:float -> t_start:float -> slew:float ->
  rising:bool -> unit -> t
(** Linear ramp beginning at [t_start]; [slew] is the 20-80 transition time.
    Defaults: [v_low = 0], [v_high = Device.vdd].
    @raise Invalid_argument if [slew <= 0]. *)

val full_ramp_time : float -> float
(** [full_ramp_time slew] is the 0-100 % duration of a ramp with the given
    20-80 slew, i.e. [slew /. 0.6]. *)
