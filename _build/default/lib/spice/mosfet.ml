module Device = Aging_physics.Device

let thermal_voltage = 1.380649e-23 *. 350. /. 1.602176634e-19

let saturation_current (dev : Device.params) ~vov =
  if vov <= 0. then 0.
  else
    dev.Device.mu_factor *. dev.Device.beta *. (dev.Device.w /. dev.Device.l)
    *. (vov ** dev.Device.alpha_sat)

(* Normalized nMOS-style current for vgs/vds referenced to the true source
   (the lower-potential terminal); always >= 0. *)
let forward_current (dev : Device.params) ~vgs ~vds =
  let vth = Device.effective_vth dev in
  let vov = vgs -. vth in
  let wl = dev.Device.w /. dev.Device.l in
  let vt = thermal_voltage in
  let drain_factor = 1. -. exp (-.vds /. vt) in
  let sub =
    (* Continuous across vov = 0: exponential below threshold, constant
       floor above (the strong-inversion term dominates there anyway). *)
    let gate_factor = if vov < 0. then exp (vov /. (dev.Device.n_sub *. vt)) else 1. in
    dev.Device.i_sub0 *. wl *. gate_factor *. drain_factor
  in
  let strong =
    if vov <= 0. then 0.
    else begin
      let idsat = saturation_current dev ~vov in
      let vdsat = dev.Device.vdsat_frac *. vov in
      let clm = 1. +. (dev.Device.lambda_clm *. vds) in
      if vds >= vdsat then idsat *. clm
      else
        let x = vds /. vdsat in
        idsat *. ((2. -. x) *. x) *. clm
    end
  in
  sub +. strong

let channel_current (dev : Device.params) ~vg ~vd ~vs =
  match dev.Device.polarity with
  | Device.Nmos ->
    if vd >= vs then forward_current dev ~vgs:(vg -. vs) ~vds:(vd -. vs)
    else -.forward_current dev ~vgs:(vg -. vd) ~vds:(vs -. vd)
  | Device.Pmos ->
    (* Mirror: the source of a pMOS is its higher-potential terminal; the
       conventional channel current then flows source -> drain, i.e. the
       drain->source current is negative. *)
    if vd <= vs then -.forward_current dev ~vgs:(vs -. vg) ~vds:(vs -. vd)
    else forward_current dev ~vgs:(vd -. vg) ~vds:(vd -. vs)
