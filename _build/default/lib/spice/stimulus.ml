type t = float -> float

let constant v = fun _ -> v

let full_ramp_time slew = slew /. 0.6

let ramp ?(v_low = 0.) ?(v_high = Aging_physics.Device.vdd) ~t_start ~slew
    ~rising () =
  if slew <= 0. then invalid_arg "Stimulus.ramp: non-positive slew";
  let duration = full_ramp_time slew in
  let v_from = if rising then v_low else v_high in
  let v_to = if rising then v_high else v_low in
  fun time ->
    if time <= t_start then v_from
    else if time >= t_start +. duration then v_to
    else v_from +. ((v_to -. v_from) *. ((time -. t_start) /. duration))
