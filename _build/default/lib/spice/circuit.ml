module Device = Aging_physics.Device

type node = int

let gnd = 0
let vdd = 1

type mos = { dev : Device.params; g : node; d : node; s : node }
type res = { a : node; b : node; ohms : float }

type t = {
  mutable n_nodes : int;
  mutable mos_rev : mos list;
  mutable res_rev : res list;
  caps : (node, float) Hashtbl.t;
  names : (string, node) Hashtbl.t;
}

let create () =
  {
    n_nodes = 2;
    mos_rev = [];
    res_rev = [];
    caps = Hashtbl.create 16;
    names = Hashtbl.create 16;
  }

let fresh_node ?name t =
  let n = t.n_nodes in
  t.n_nodes <- n + 1;
  Option.iter (fun s -> Hashtbl.replace t.names s n) name;
  n

let node_count t = t.n_nodes

let add_cap t n farads =
  let prev = Option.value (Hashtbl.find_opt t.caps n) ~default:0. in
  Hashtbl.replace t.caps n (prev +. farads)

let attach_parasitics t (m : mos) =
  add_cap t m.g (Device.gate_capacitance m.dev);
  add_cap t m.d (Device.drain_capacitance m.dev);
  add_cap t m.s (Device.drain_capacitance m.dev)

let add_mos t ~dev ~g ~d ~s =
  let m = { dev; g; d; s } in
  t.mos_rev <- m :: t.mos_rev;
  attach_parasitics t m

let add_res t ~a ~b ~ohms =
  if ohms <= 0. then invalid_arg "Circuit.add_res: non-positive resistance";
  t.res_rev <- { a; b; ohms } :: t.res_rev

let mosfets t = List.rev t.mos_rev
let resistors t = List.rev t.res_rev

let capacitance t n = Option.value (Hashtbl.find_opt t.caps n) ~default:0.

let map_devices f t =
  (* Rebuild so parasitics reflect the transformed devices (widths etc. are
     preserved by aging, but this stays correct for arbitrary transforms). *)
  let t' = create () in
  t'.n_nodes <- t.n_nodes;
  Hashtbl.iter (fun k v -> Hashtbl.replace t'.names k v) t.names;
  (* Explicit caps = total caps minus the device parasitics of the original
     circuit; recompute by first copying explicit-only capacitance. *)
  let parasitic = Hashtbl.create 16 in
  let note n c =
    let prev = Option.value (Hashtbl.find_opt parasitic n) ~default:0. in
    Hashtbl.replace parasitic n (prev +. c)
  in
  List.iter
    (fun (m : mos) ->
      note m.g (Device.gate_capacitance m.dev);
      note m.d (Device.drain_capacitance m.dev);
      note m.s (Device.drain_capacitance m.dev))
    (mosfets t);
  Hashtbl.iter
    (fun n total ->
      let para = Option.value (Hashtbl.find_opt parasitic n) ~default:0. in
      let explicit = total -. para in
      if explicit > 0. then add_cap t' n explicit)
    t.caps;
  List.iter
    (fun (m : mos) -> add_mos t' ~dev:(f m.dev) ~g:m.g ~d:m.d ~s:m.s)
    (mosfets t);
  List.iter (fun (r : res) -> add_res t' ~a:r.a ~b:r.b ~ohms:r.ohms)
    (resistors t);
  t'

let node_name t n =
  if n = gnd then "gnd"
  else if n = vdd then "vdd"
  else
    let found =
      Hashtbl.fold
        (fun name id acc -> if id = n then Some name else acc)
        t.names None
    in
    Option.value found ~default:(Printf.sprintf "n%d" n)

let find_node t name = Hashtbl.find_opt t.names name
