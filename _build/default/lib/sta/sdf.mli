(** Standard Delay Format (SDF 3.0) emission from a timing analysis.

    Freezes the per-instance pin-to-pin delays of an analysis — evaluated
    at each instance's measured input slews and output loads, exactly as
    the event-driven simulator annotates itself — into IOPATH entries.
    This is the "sdf files generated from the synthesis tool under the
    targeted aging scenario" artifact of the paper's Sec. 5 setup. *)

val to_sdf : Timing.analysis -> string
(** One DELAYFILE with a CELL per instance; delays in nanoseconds with
    (rise:rise:rise) (fall:fall:fall) triples. *)

val save : string -> Timing.analysis -> unit
