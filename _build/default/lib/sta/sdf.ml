module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist

let ns t = t *. 1e9

let triple d = Printf.sprintf "(%.4f:%.4f:%.4f)" (ns d) (ns d) (ns d)

let to_sdf analysis =
  let netlist = Timing.netlist analysis in
  let library = Timing.library analysis in
  let buf = Buffer.create 65536 in
  Printf.bprintf buf
    "(DELAYFILE\n  (SDFVERSION \"3.0\")\n  (DESIGN \"%s\")\n  (DIVIDER /)\n\
    \  (TIMESCALE 1ns)\n"
    netlist.Netlist.design_name;
  Array.iter
    (fun (inst : Netlist.instance) ->
      let entry =
        match Library.find library inst.Netlist.cell_name with
        | Some e -> Some e
        | None ->
          Library.find library (Netlist.base_cell_name inst.Netlist.cell_name)
      in
      match entry with
      | None -> ()
      | Some entry when entry.Library.arcs = [] -> ()
      | Some entry ->
        Printf.bprintf buf
          "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n    (DELAY (ABSOLUTE\n"
          inst.Netlist.cell_name inst.Netlist.inst_name;
        List.iter
          (fun (arc : Library.arc) ->
            match
              ( List.assoc_opt arc.Library.from_pin inst.Netlist.inputs,
                List.assoc_opt arc.Library.to_pin inst.Netlist.outputs )
            with
            | Some in_net, Some out_net ->
              let slew =
                Float.max
                  (Timing.slew_at analysis in_net Library.Rise)
                  (Timing.slew_at analysis in_net Library.Fall)
              in
              let load = Timing.load_on analysis out_net in
              let rise = Library.delay_of arc ~dir:Library.Rise ~slew ~load in
              let fall = Library.delay_of arc ~dir:Library.Fall ~slew ~load in
              Printf.bprintf buf "      (IOPATH %s %s %s %s)\n"
                arc.Library.from_pin arc.Library.to_pin (triple rise)
                (triple fall)
            | None, _ | _, None -> ())
          entry.Library.arcs;
        Printf.bprintf buf "    ))\n  )\n")
    netlist.Netlist.instances;
  Buffer.add_string buf ")\n";
  Buffer.contents buf

let save path analysis =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_sdf analysis))
