module Netlist = Aging_netlist.Netlist
module Units = Aging_util.Units

let describe_endpoint (e : Timing.endpoint_timing) =
  match e.Timing.endpoint with
  | Timing.Output_port (name, _) -> Printf.sprintf "out:%s" name
  | Timing.Flipflop_d (inst, _) -> Printf.sprintf "ff:%s/D" inst

let summary analysis =
  let netlist = Timing.netlist analysis in
  let period = Timing.min_period analysis in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "design %s: %d cells, area %.1f um^2\n"
       netlist.Netlist.design_name
       (Array.length netlist.Netlist.instances)
       (Units.um2 (Netlist.area netlist)));
  Buffer.add_string buf
    (Printf.sprintf "min period %.1f ps (max frequency %.3f GHz)\n"
       (Units.ps period)
       (1e-9 /. period));
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  endpoint %-24s arrival %8.1f ps  setup %6.1f ps\n"
           (describe_endpoint e)
           (Units.ps e.Timing.data_arrival)
           (Units.ps e.Timing.setup)))
    (take 5 (Timing.endpoints analysis));
  Buffer.contents buf

let guardband ~fresh ~aged =
  let t0 = Timing.min_period fresh in
  let t1 = Timing.min_period aged in
  Printf.sprintf
    "guardband: fresh %.1f ps, aged %.1f ps -> required guardband %.1f ps (%+.1f %%)\n"
    (Units.ps t0) (Units.ps t1)
    (Units.ps (t1 -. t0))
    ((t1 -. t0) /. t0 *. 100.)
