(** Human-readable timing reports. *)

val summary : Timing.analysis -> string
(** Design name, min period / max frequency, worst endpoints, cell and area
    statistics. *)

val guardband :
  fresh:Timing.analysis -> aged:Timing.analysis -> string
(** Report of the timing guardband [min_period aged - min_period fresh]
    (paper Sec. 4.2). *)
