lib/sta/paths.ml: Aging_liberty Aging_netlist List Printf String Timing
