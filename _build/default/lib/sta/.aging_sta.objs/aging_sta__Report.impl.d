lib/sta/report.ml: Aging_netlist Aging_util Array Buffer List Printf Timing
