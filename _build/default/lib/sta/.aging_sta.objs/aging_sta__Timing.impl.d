lib/sta/timing.ml: Aging_liberty Aging_netlist Array Float Hashtbl List Printf
