lib/sta/timing.mli: Aging_liberty Aging_netlist
