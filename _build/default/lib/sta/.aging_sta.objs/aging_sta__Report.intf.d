lib/sta/report.mli: Timing
