lib/sta/sdf.ml: Aging_liberty Aging_netlist Array Buffer Float Fun List Printf Timing
