lib/sta/sdf.mli: Timing
