lib/sta/paths.mli: Aging_liberty Aging_netlist Timing
