(** Block-based static timing analysis with slew propagation.

    Arrival times and transitions are propagated per net and per edge
    direction (rise/fall) through NLDM lookups, exactly as an industrial
    timing engine consumes the degradation-aware libraries: plugging in an
    aged library re-times the whole design with no tool changes — the
    paper's central workflow claim.

    Clocks are ideal (zero skew, zero latency).  Flip-flop Q nets launch at
    the clk->q delay; flip-flop D pins and primary outputs are endpoints. *)

type config = {
  input_slew : float;       (** transition assumed at primary inputs [s] *)
  clock_slew : float;       (** transition of the clock at flip-flops [s] *)
  output_load : float;      (** capacitance on primary outputs [F] *)
  wire_cap_per_fanout : float;  (** lumped interconnect model [F] *)
}

val default_config : config

type analysis
(** Result of one timing pass over a netlist. *)

type structure
(** Topology of a netlist (combinational order, flip-flop list) that is
    independent of cell selection: reusable across re-timings of
    drive-swapped variants of the same netlist. *)

val prepare_structure : Aging_netlist.Netlist.t -> structure

val analyze :
  ?config:config -> ?structure:structure ->
  library:Aging_liberty.Library.t -> Aging_netlist.Netlist.t ->
  analysis
(** Times the netlist against the library.  Instance cell names are resolved
    first as-is (supporting corner-indexed names in a complete library) and
    then by base name.  A [structure] from a netlist with identical
    connectivity (e.g. before a cell swap) skips the topological sort.
    @raise Failure if a cell cannot be resolved in the library. *)

val netlist : analysis -> Aging_netlist.Netlist.t
val library : analysis -> Aging_liberty.Library.t
val config : analysis -> config

val arrival :
  analysis -> Aging_netlist.Netlist.net -> Aging_liberty.Library.direction ->
  float
(** Latest arrival time of the given edge on a net; [neg_infinity] if the
    edge is unreachable. *)

val slew_at :
  analysis -> Aging_netlist.Netlist.net -> Aging_liberty.Library.direction ->
  float
(** Transition time of the latest such edge. *)

val min_arrival :
  analysis -> Aging_netlist.Netlist.net -> Aging_liberty.Library.direction ->
  float
(** Earliest arrival of the given edge (shortest-path propagation);
    [infinity] if unreachable.  The early side of the analysis: aging that
    *speeds a gate up* (e.g. the NOR fall improvement of Fig. 1b) shortens
    these and can create hold hazards. *)

val hold_slacks : analysis -> (string * float) list
(** Per flip-flop: instance name and hold slack
    [earliest D arrival - hold requirement] (hold modelled as a fixed
    fraction of the cell's setup window).  Negative slack = violation. *)

val worst_hold_slack : analysis -> float
(** Smallest hold slack over all flip-flops ([infinity] if none). *)

val load_on : analysis -> Aging_netlist.Netlist.net -> float
(** Capacitive load used for the net. *)

type endpoint =
  | Output_port of string * Aging_netlist.Netlist.net
  | Flipflop_d of string * Aging_netlist.Netlist.net
      (** instance name and the net feeding its D pin *)

type endpoint_timing = {
  endpoint : endpoint;
  data_arrival : float;   (** latest data arrival at the endpoint [s] *)
  direction : Aging_liberty.Library.direction;  (** edge achieving it *)
  setup : float;          (** setup requirement (0 for output ports) [s] *)
}

val endpoints : analysis -> endpoint_timing list
(** All endpoints, worst (largest [data_arrival + setup]) first. *)

val min_period : analysis -> float
(** Smallest clock period that meets every endpoint:
    max over endpoints of (data_arrival + setup).  For a purely
    combinational design this is the critical-path delay. *)

val provenance :
  analysis -> Aging_netlist.Netlist.net -> Aging_liberty.Library.direction ->
  (Aging_netlist.Netlist.instance * string * Aging_liberty.Library.direction) option
(** The instance, input pin and input edge that produced the latest arrival
    on (net, direction); [None] for timing start points. *)
