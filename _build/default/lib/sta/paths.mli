(** Critical-path extraction and path re-timing.

    Paths are recovered by walking the provenance pointers of a timing
    {!Timing.analysis}.  A recovered path can be re-timed under a different
    library ({!retime}) — the ingredient of the Fig. 5(c) experiment, where
    the state of the art re-times only the initially critical path under
    aging instead of re-analyzing the whole design. *)

type step = {
  inst : Aging_netlist.Netlist.instance;
  from_pin : string;
  to_pin : string;
  in_dir : Aging_liberty.Library.direction;
  out_dir : Aging_liberty.Library.direction;
  stage_delay : float;   (** this stage's contribution under the analysis library *)
  arrival_after : float; (** arrival at the stage output *)
}

type t = {
  start_net : Aging_netlist.Netlist.net;
  steps : step list;        (** in propagation order *)
  endpoint : Timing.endpoint_timing;
  total : float;            (** data arrival at the endpoint *)
}

val critical : Timing.analysis -> t
(** The worst path of the design.  @raise Failure on an empty design. *)

val per_endpoint : Timing.analysis -> t list
(** One worst path per endpoint, sorted worst-first.  This is the path set
    used to detect critical-path switching under aging. *)

val retime :
  library:Aging_liberty.Library.t -> config:Timing.config ->
  analysis:Timing.analysis -> t -> float
(** Re-evaluates the delay of exactly this gate sequence under another
    library, propagating slews stage by stage while keeping each stage's
    capacitive load as computed on the full netlist.  Returns the new
    endpoint arrival (including the launch clk->q stage if the path starts
    at a flip-flop).
    @raise Failure if a cell of the path is missing from [library]. *)

val describe : t -> string
(** One-line human-readable rendering ("IN -> U3:NAND2_X1 -> ... (123.4 ps)"). *)
