module Library = Aging_liberty.Library
module Netlist = Aging_netlist.Netlist

type step = {
  inst : Netlist.instance;
  from_pin : string;
  to_pin : string;
  in_dir : Library.direction;
  out_dir : Library.direction;
  stage_delay : float;
  arrival_after : float;
}

type t = {
  start_net : Netlist.net;
  steps : step list;
  endpoint : Timing.endpoint_timing;
  total : float;
}

let endpoint_net (e : Timing.endpoint_timing) =
  match e.Timing.endpoint with
  | Timing.Output_port (_, net) -> net
  | Timing.Flipflop_d (_, net) -> net

let output_pin_for inst net =
  match
    List.find_opt (fun (_, n) -> n = net) inst.Netlist.outputs
  with
  | Some (pin, _) -> pin
  | None -> failwith "Paths: provenance instance does not drive the net"

let input_net_for inst pin =
  match List.assoc_opt pin inst.Netlist.inputs with
  | Some n -> n
  | None -> failwith "Paths: provenance pin missing"

let trace analysis (e : Timing.endpoint_timing) =
  let rec walk net dir acc =
    match Timing.provenance analysis net dir with
    | None -> (net, acc)
    | Some (inst, from_pin, in_dir) ->
      let in_net = input_net_for inst from_pin in
      let step =
        {
          inst;
          from_pin;
          to_pin = output_pin_for inst net;
          in_dir;
          out_dir = dir;
          stage_delay =
            Timing.arrival analysis net dir -. Timing.arrival analysis in_net in_dir;
          arrival_after = Timing.arrival analysis net dir;
        }
      in
      walk in_net in_dir (step :: acc)
  in
  let start_net, steps = walk (endpoint_net e) e.Timing.direction [] in
  { start_net; steps; endpoint = e; total = e.Timing.data_arrival }

let per_endpoint analysis =
  List.map (trace analysis) (Timing.endpoints analysis)

let critical analysis =
  match Timing.endpoints analysis with
  | [] -> failwith "Paths.critical: no endpoints"
  | worst :: _ -> trace analysis worst

let resolve_entry_exn library (inst : Netlist.instance) =
  let found =
    match Library.find library inst.Netlist.cell_name with
    | Some e -> Some e
    | None ->
      Library.find library (Netlist.base_cell_name inst.Netlist.cell_name)
  in
  match found with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "Paths.retime: cell %s not in library %s"
         inst.Netlist.cell_name (Library.lib_name library))

let retime ~library ~(config : Timing.config) ~analysis path =
  let netlist = Timing.netlist analysis in
  (* Launch stage: either a primary input or a flip-flop Q pin. *)
  let first_dir =
    match path.steps with
    | s :: _ -> s.in_dir
    | [] -> path.endpoint.Timing.direction
  in
  let start_arrival, start_slew =
    match Netlist.driver_of netlist path.start_net with
    | None -> (0., config.Timing.input_slew)
    | Some (ff_inst, qpin) ->
      let entry = resolve_entry_exn library ff_inst in
      begin
        match Library.arc_of entry ~from_pin:"CK" ~to_pin:qpin with
        | None -> (0., config.Timing.input_slew)
        | Some arc ->
          let load = Timing.load_on analysis path.start_net in
          ( Library.delay_of arc ~dir:first_dir ~slew:config.Timing.clock_slew
              ~load,
            Library.out_slew_of arc ~dir:first_dir
              ~slew:config.Timing.clock_slew ~load )
      end
  in
  let final_arrival, _ =
    List.fold_left
      (fun (arrival_in, slew_in) step ->
        let entry = resolve_entry_exn library step.inst in
        let arc =
          match
            Library.arc_of entry ~from_pin:step.from_pin ~to_pin:step.to_pin
          with
          | Some a -> a
          | None ->
            failwith
              (Printf.sprintf "Paths.retime: no arc %s->%s on %s" step.from_pin
                 step.to_pin step.inst.Netlist.cell_name)
        in
        let out_net =
          match List.assoc_opt step.to_pin step.inst.Netlist.outputs with
          | Some n -> n
          | None -> failwith "Paths.retime: step output pin missing"
        in
        let load = Timing.load_on analysis out_net in
        let delay = Library.delay_of arc ~dir:step.out_dir ~slew:slew_in ~load in
        let out_slew =
          Library.out_slew_of arc ~dir:step.out_dir ~slew:slew_in ~load
        in
        (arrival_in +. delay, out_slew))
      (start_arrival, start_slew) path.steps
  in
  final_arrival

let describe path =
  let stage_strings =
    List.map
      (fun s ->
        Printf.sprintf "%s:%s[%s->%s,%s] %.1fps" s.inst.Netlist.inst_name
          s.inst.Netlist.cell_name s.from_pin s.to_pin
          (match s.out_dir with Library.Rise -> "r" | Library.Fall -> "f")
          (s.stage_delay *. 1e12)
      )
      path.steps
  in
  Printf.sprintf "net%d -> %s (total %.1f ps)" path.start_net
    (String.concat " -> " stage_strings)
    (path.total *. 1e12)
