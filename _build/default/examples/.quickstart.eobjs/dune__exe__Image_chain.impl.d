examples/image_chain.ml: Aging_core Aging_designs Aging_image Aging_liberty Aging_netlist Aging_physics Aging_sim Array Printf
