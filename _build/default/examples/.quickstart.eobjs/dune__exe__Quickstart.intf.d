examples/quickstart.mli:
