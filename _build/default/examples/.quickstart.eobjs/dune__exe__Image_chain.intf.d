examples/image_chain.mli:
