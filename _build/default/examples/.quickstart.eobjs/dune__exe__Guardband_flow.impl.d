examples/guardband_flow.ml: Aging_core Aging_designs Aging_liberty Aging_netlist Aging_physics Aging_sim Aging_util Array List Printf
