examples/aging_aware_synthesis.ml: Aging_core Aging_designs Aging_liberty Aging_netlist Array Printf String
