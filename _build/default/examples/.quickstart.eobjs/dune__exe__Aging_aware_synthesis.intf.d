examples/aging_aware_synthesis.mli:
