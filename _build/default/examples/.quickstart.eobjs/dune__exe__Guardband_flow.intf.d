examples/guardband_flow.mli:
