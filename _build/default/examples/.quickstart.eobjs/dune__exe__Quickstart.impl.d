examples/quickstart.ml: Aging_cells Aging_designs Aging_liberty Aging_physics Aging_sta List Printf
