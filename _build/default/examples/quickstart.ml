(* Quickstart: characterize a few cells fresh and aged, time a small design
   against both libraries and read off the required guardband.

     dune exec examples/quickstart.exe

   This exercises the whole core loop of the paper in miniature:
   physics-based BTI aging -> transistor-level characterization ->
   degradation-aware NLDM library -> unmodified static timing analysis. *)

module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Characterize = Aging_liberty.Characterize
module Catalog = Aging_cells.Catalog
module Timing = Aging_sta.Timing
module Report = Aging_sta.Report
module Designs = Aging_designs.Designs

let () =
  (* 1. Pick a handful of cells and characterize them on a coarse 3x3
     operating-condition grid — once fresh, once under 10-year worst-case
     aging (every transistor stressed with duty cycle 1). *)
  let cells =
    List.map Catalog.find_exn
      [ "INV_X1"; "INV_X2"; "NAND2_X1"; "NAND2_X2"; "NOR2_X1"; "XOR2_X1";
        "AND2_X1"; "OR2_X1"; "MUX2_X1"; "FA_X1"; "HA_X1"; "DFF_X1";
        "TIELO_X1"; "TIEHI_X1"; "BUF_X4" ]
  in
  let characterize name corner =
    Characterize.library ~cells ~axes:Axes.coarse ~name
      ~scenario:(Scenario.scenario corner) ()
  in
  Printf.printf "characterizing %d cells (transistor-level transients)...\n%!"
    (List.length cells);
  let fresh_lib = characterize "fresh" Scenario.fresh in
  let aged_lib = characterize "aged-worst" Scenario.worst_case in

  (* 2. Inspect how aging moved one delay table entry. *)
  let nand_delay lib =
    let entry = Library.find_exn lib "NAND2_X1" in
    Library.delay_of (List.hd entry.Library.arcs) ~dir:Library.Rise
      ~slew:40e-12 ~load:4e-15
  in
  Printf.printf "NAND2_X1 rise delay @ (40 ps, 4 fF): fresh %.1f ps, aged %.1f ps (%+.1f%%)\n"
    (nand_delay fresh_lib *. 1e12)
    (nand_delay aged_lib *. 1e12)
    ((nand_delay aged_lib /. nand_delay fresh_lib -. 1.) *. 100.);

  (* 3. Time a small sequential design with both libraries — the guardband
     is simply the difference of the two minimum periods. *)
  let design = Designs.counter ~bits:8 in
  let fresh = Timing.analyze ~library:fresh_lib design in
  let aged = Timing.analyze ~library:aged_lib design in
  print_newline ();
  print_string (Report.summary fresh);
  print_string (Report.guardband ~fresh ~aged)
