(* System-level aging: pushing an image through gate-level DCT-IDCT
   simulations at a fixed frequency (paper Sec. 5, Figs. 6c / 7).

     dune exec examples/image_chain.exe

   The raw (unsynthesized) DCT and IDCT datapaths are simulated with
   library-annotated delays.  At a relaxed clock the chain is bit-identical
   to the software reference; with 10-year worst-case aged delays at the
   fresh-rated clock, flip-flops capture late data and the decoded image
   degrades.  Writes before/after images as PGM files. *)

module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module Deg = Aging_core.Degradation_library
module System_eval = Aging_core.System_eval
module Event_sim = Aging_sim.Event_sim
module Image = Aging_image.Image
module Designs = Aging_designs.Designs

let () =
  let deglib = Deg.create ~axes:Axes.coarse ~cache_dir:"_libcache_coarse" () in
  let fresh_lib = Deg.fresh deglib in
  let aged_lib = Deg.worst_case deglib in
  let dct = Designs.dct () and idct = Designs.idct () in
  Printf.printf "preparing gate-level simulations (%d + %d cells)...\n%!"
    (Array.length dct.Aging_netlist.Netlist.instances)
    (Array.length idct.Aging_netlist.Netlist.instances);
  let sim lib nl = Event_sim.prepare ~library:lib nl in
  let dct_fresh = sim fresh_lib dct and idct_fresh = sim fresh_lib idct in
  let dct_aged = sim aged_lib dct and idct_aged = sim aged_lib idct in
  let original = Aging_image.Synthetic.portrait ~width:24 ~height:24 in
  (* Operating point: the fastest clock at which the fresh chain still
     decodes this image perfectly. *)
  let period =
    System_eval.rated_chain_period ~dct:dct_fresh ~idct:idct_fresh original
  in
  Printf.printf "rated period (fresh, error-free): %.1f ps\n%!" (period *. 1e12);
  let run label d i =
    let processed = System_eval.process_image ~dct:d ~idct:i ~period original in
    let psnr = Image.psnr ~reference:original processed in
    Printf.printf "%-22s PSNR %s dB\n%!" label
      (if psnr = infinity then "inf" else Printf.sprintf "%.1f" psnr);
    processed
  in
  let fresh_img = run "fresh (year 0)" dct_fresh idct_fresh in
  let aged_img = run "worst-case, 10 years" dct_aged idct_aged in
  Aging_image.Pgm.write "chain_original.pgm" original;
  Aging_image.Pgm.write "chain_fresh.pgm" fresh_img;
  Aging_image.Pgm.write "chain_aged.pgm" aged_img;
  print_endline "wrote chain_original.pgm / chain_fresh.pgm / chain_aged.pgm"
